#include <gtest/gtest.h>

#include "ontology/role.h"
#include "ontology/saturation.h"
#include "ontology/tbox.h"
#include "ontology/vocabulary.h"
#include "ontology/word_graph.h"

namespace owlqr {
namespace {

// The ontology of Example 11:
//   P(x,y) -> S(x,y),   P(x,y) -> R(y,x),
// plus normalization (A_rho <-> exists rho for every role).
TBox Example11(Vocabulary* vocab) {
  TBox tbox(vocab);
  int p = vocab->InternPredicate("P");
  int r = vocab->InternPredicate("R");
  int s = vocab->InternPredicate("S");
  tbox.AddRoleInclusion(RoleOf(p), RoleOf(s));
  tbox.AddRoleInclusion(RoleOf(p), RoleOf(r, /*inverse=*/true));
  tbox.Normalize();
  return tbox;
}

TEST(RoleTest, InverseIsInvolutive) {
  RoleId p = RoleOf(3);
  EXPECT_EQ(Inverse(Inverse(p)), p);
  EXPECT_TRUE(IsInverse(Inverse(p)));
  EXPECT_FALSE(IsInverse(p));
  EXPECT_EQ(PredicateOf(Inverse(p)), 3);
}

TEST(TBoxTest, NormalizeCreatesExistsConcepts) {
  Vocabulary vocab;
  TBox tbox = Example11(&vocab);
  int p = vocab.FindPredicate("P");
  ASSERT_GE(p, 0);
  EXPECT_GE(tbox.ExistsConcept(RoleOf(p)), 0);
  EXPECT_GE(tbox.ExistsConcept(RoleOf(p, true)), 0);
  EXPECT_NE(tbox.ExistsConcept(RoleOf(p)), tbox.ExistsConcept(RoleOf(p, true)));
  // Round trip.
  int a_p = tbox.ExistsConcept(RoleOf(p));
  EXPECT_EQ(tbox.RoleOfExistsConcept(a_p), RoleOf(p));
}

TEST(TBoxTest, NormalizeIsIdempotent) {
  Vocabulary vocab;
  TBox tbox = Example11(&vocab);
  int axioms = tbox.NumAxioms();
  tbox.Normalize();
  EXPECT_EQ(tbox.NumAxioms(), axioms);
}

TEST(TBoxTest, RolesClosedUnderInverse) {
  Vocabulary vocab;
  TBox tbox = Example11(&vocab);
  EXPECT_EQ(tbox.roles().size(), 6u);  // P, P-, R, R-, S, S-.
}

TEST(SaturationTest, RoleInclusionClosure) {
  Vocabulary vocab;
  TBox tbox = Example11(&vocab);
  Saturation sat(tbox);
  RoleId p = RoleOf(vocab.FindPredicate("P"));
  RoleId r = RoleOf(vocab.FindPredicate("R"));
  RoleId s = RoleOf(vocab.FindPredicate("S"));
  EXPECT_TRUE(sat.SubRole(p, s));
  EXPECT_TRUE(sat.SubRole(p, Inverse(r)));
  EXPECT_TRUE(sat.SubRole(Inverse(p), Inverse(s)));
  EXPECT_TRUE(sat.SubRole(Inverse(p), r));
  EXPECT_FALSE(sat.SubRole(s, p));
  EXPECT_FALSE(sat.SubRole(r, s));
  // T |= P(x,y) -> R(y,x).
  EXPECT_TRUE(sat.RoleToInverse(p, r));
  EXPECT_FALSE(sat.RoleToInverse(p, s));
}

TEST(SaturationTest, TransitiveRoleInclusions) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  int p = vocab.InternPredicate("P");
  int q = vocab.InternPredicate("Q");
  int r = vocab.InternPredicate("R");
  tbox.AddRoleInclusion(RoleOf(p), RoleOf(q, true));
  tbox.AddRoleInclusion(RoleOf(q), RoleOf(r));
  tbox.Normalize();
  Saturation sat(tbox);
  // P <= Q^- and Q <= R give Q^- <= R^- and so P <= R^-.
  EXPECT_TRUE(sat.SubRole(RoleOf(p), RoleOf(r, true)));
  EXPECT_FALSE(sat.SubRole(RoleOf(p), RoleOf(r)));
}

TEST(SaturationTest, ConceptClosureThroughExists) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  // A <= exists P, exists P^- <= B, P <= S.
  tbox.AddExistsRhs("A", "P");
  tbox.AddExistsLhs("P", "B", /*inverse=*/true);
  tbox.AddRoleInclusion(RoleOf(vocab.InternPredicate("P")),
                        RoleOf(vocab.InternPredicate("S")));
  tbox.Normalize();
  Saturation sat(tbox);
  int a = vocab.FindConcept("A");
  int b = vocab.FindConcept("B");
  RoleId p = RoleOf(vocab.FindPredicate("P"));
  RoleId s = RoleOf(vocab.FindPredicate("S"));
  // A <= exists P <= exists S.
  EXPECT_TRUE(sat.SubConcept(BasicConcept::Atomic(a), BasicConcept::Exists(p)));
  EXPECT_TRUE(sat.SubConcept(BasicConcept::Atomic(a), BasicConcept::Exists(s)));
  EXPECT_TRUE(sat.InverseExistsImpliesConcept(p, b));
  EXPECT_FALSE(sat.InverseExistsImpliesConcept(s, b));
  EXPECT_FALSE(sat.SubConcept(BasicConcept::Atomic(b), BasicConcept::Atomic(a)));
  // Everything entails TOP.
  EXPECT_TRUE(sat.SubConcept(BasicConcept::Atomic(a), BasicConcept::Top()));
}

TEST(SaturationTest, ReflexivityClosure) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  int p = vocab.InternPredicate("P");
  int q = vocab.InternPredicate("Q");
  tbox.AddReflexivity(RoleOf(p));
  tbox.AddRoleInclusion(RoleOf(p), RoleOf(q));
  tbox.Normalize();
  Saturation sat(tbox);
  EXPECT_TRUE(sat.Reflexive(RoleOf(p)));
  EXPECT_TRUE(sat.Reflexive(RoleOf(p, true)));
  EXPECT_TRUE(sat.Reflexive(RoleOf(q)));
  // TOP <= exists Q for a reflexive Q.
  EXPECT_TRUE(sat.SubConcept(BasicConcept::Top(),
                             BasicConcept::Exists(RoleOf(q))));
}

TEST(WordGraphTest, Example11HasDepthOne) {
  Vocabulary vocab;
  TBox tbox = Example11(&vocab);
  Saturation sat(tbox);
  WordGraph graph(tbox, sat);
  EXPECT_EQ(graph.depth(), 1);
  EXPECT_EQ(graph.nodes().size(), 6u);
}

TEST(WordGraphTest, DepthZeroOntology) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  tbox.AddAtomicInclusion("A", "B");
  tbox.Normalize();
  Saturation sat(tbox);
  WordGraph graph(tbox, sat);
  EXPECT_EQ(graph.depth(), 0);
  EXPECT_TRUE(graph.nodes().empty());
}

TEST(WordGraphTest, ChainOntologyDepth) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  // A <= exists P1, exists P1^- <= exists P2, exists P2^- <= exists P3.
  tbox.AddExistsRhs("A", "P1");
  tbox.AddConceptInclusion(
      BasicConcept::Exists(RoleOf(vocab.InternPredicate("P1"), true)),
      BasicConcept::Exists(RoleOf(vocab.InternPredicate("P2"))));
  tbox.AddConceptInclusion(
      BasicConcept::Exists(RoleOf(vocab.InternPredicate("P2"), true)),
      BasicConcept::Exists(RoleOf(vocab.InternPredicate("P3"))));
  tbox.Normalize();
  Saturation sat(tbox);
  WordGraph graph(tbox, sat);
  EXPECT_EQ(graph.depth(), 3);  // P1.P2.P3.
}

TEST(WordGraphTest, InfiniteDepthDetected) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  // exists P^- <= exists P: infinite chain.
  RoleId p = RoleOf(vocab.InternPredicate("P"));
  tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(p)),
                           BasicConcept::Exists(p));
  tbox.Normalize();
  Saturation sat(tbox);
  WordGraph graph(tbox, sat);
  EXPECT_EQ(graph.depth(), WordGraph::kInfiniteDepth);
}

TEST(WordGraphTest, InverseEntailmentSuppressesEdge) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  // exists P^- <= exists P^-: trivially true, but the W_T condition
  // T |/= P(x,y) -> P^-(y,x) fails only if P <= P; edge P -> P^- requires
  // not (P <= (P^-)^-) = not (P <= P), which is false, so no edge.
  RoleId p = RoleOf(vocab.InternPredicate("P"));
  tbox.AddConceptInclusion(BasicConcept::Exists(p), BasicConcept::Atomic(
      vocab.InternConcept("Dom")));
  tbox.Normalize();
  Saturation sat(tbox);
  WordGraph graph(tbox, sat);
  EXPECT_FALSE(graph.HasEdge(p, Inverse(p)));
  EXPECT_EQ(graph.depth(), 1);  // Normalization words of length 1 only.
}

TEST(WordTableTest, InterningAndEnumeration) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  tbox.AddExistsRhs("A", "P1");
  tbox.AddConceptInclusion(
      BasicConcept::Exists(RoleOf(vocab.InternPredicate("P1"), true)),
      BasicConcept::Exists(RoleOf(vocab.InternPredicate("P2"))));
  tbox.Normalize();
  Saturation sat(tbox);
  WordGraph graph(tbox, sat);
  WordTable words(&graph);
  RoleId p1 = RoleOf(vocab.FindPredicate("P1"));
  RoleId p2 = RoleOf(vocab.FindPredicate("P2"));
  int w1 = words.Extend(WordTable::kEpsilon, p1);
  ASSERT_GE(w1, 0);
  int w12 = words.Extend(w1, p2);
  ASSERT_GE(w12, 0);
  EXPECT_EQ(words.Extend(w1, p2), w12);  // Interned.
  EXPECT_EQ(words.Length(w12), 2);
  EXPECT_EQ(words.FirstRole(w12), p1);
  EXPECT_EQ(words.LastRole(w12), p2);
  EXPECT_EQ(words.Parent(w12), w1);
  // P2 cannot follow P2.
  EXPECT_EQ(words.Extend(w12, p2), -1);

  std::vector<int> all = words.AllWordsUpTo(2);
  // epsilon + all length-1 nodes + valid length-2 words.
  EXPECT_GE(all.size(), 3u);
  EXPECT_EQ(all[0], WordTable::kEpsilon);
  EXPECT_EQ(words.Name(w12, vocab), "P1.P2");
}

}  // namespace
}  // namespace owlqr
