#include <gtest/gtest.h>

#include "data/data_instance.h"
#include "ndl/evaluator.h"
#include "ndl/program.h"

namespace owlqr {
namespace {

// G(x, y) <- R(x, u) & R(u, y): quadratically many results on a dense R.
NdlProgram JoinProgram(Vocabulary* vocab) {
  NdlProgram program(vocab);
  int r = program.AddRolePredicate(vocab->InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
  c.body.push_back({r, {Term::Var(2), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);
  return program;
}

DataInstance DenseGraph(Vocabulary* vocab, int n) {
  DataInstance data(vocab);
  int r = vocab->InternPredicate("R");
  std::vector<int> inds;
  for (int i = 0; i < n; ++i) {
    inds.push_back(data.AddIndividual("v" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) data.AddRoleAssertion(r, inds[i], inds[j]);
    }
  }
  return data;
}

TEST(EvaluatorLimitsTest, BudgetAborts) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 30);  // 900 result tuples.
  EvaluatorLimits limits;
  limits.max_generated_tuples = 100;
  Evaluator eval(program, data, limits);
  EvaluationStats stats;
  auto answers = eval.Evaluate(&stats);
  EXPECT_TRUE(stats.aborted);
  EXPECT_LE(stats.generated_tuples, 102);
  EXPECT_LT(answers.size(), 900u);
}

TEST(EvaluatorLimitsTest, NoBudgetCompletes) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 20);
  Evaluator eval(program, data);
  EvaluationStats stats;
  auto answers = eval.Evaluate(&stats);
  EXPECT_FALSE(stats.aborted);
  EXPECT_EQ(answers.size(), 400u);  // All pairs incl. (v, v) via a middle.
}

TEST(EvaluatorLimitsTest, DeadlineAborts) {
  Vocabulary vocab;
  // G(x, y) <- R(x, u) & R(u, v) & R(v, y): ~40^4 join emissions, far more
  // than a few milliseconds of work.
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
  c.body.push_back({r, {Term::Var(2), Term::Var(3)}});
  c.body.push_back({r, {Term::Var(3), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);
  DataInstance data = DenseGraph(&vocab, 40);
  EvaluatorLimits limits;
  limits.deadline_ms = 5;
  Evaluator eval(program, data, limits);
  EvaluationStats stats;
  eval.Evaluate(&stats);
  EXPECT_TRUE(stats.aborted);
  EXPECT_TRUE(stats.deadline_exceeded);
}

TEST(EvaluatorLimitsTest, GenerousDeadlineCompletes) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 10);
  EvaluatorLimits limits;
  limits.deadline_ms = 60'000;
  Evaluator eval(program, data, limits);
  EvaluationStats stats;
  auto answers = eval.Evaluate(&stats);
  EXPECT_FALSE(stats.aborted);
  EXPECT_FALSE(stats.deadline_exceeded);
  EXPECT_EQ(answers.size(), 100u);
}

TEST(EvaluatorLimitsTest, PerPredicateStats) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 10);
  Evaluator eval(program, data);
  EvaluationStats stats;
  auto answers = eval.Evaluate(&stats);
  ASSERT_EQ(stats.predicate_tuples.size(),
            static_cast<size_t>(program.num_predicates()));
  long sum = 0;
  for (long n : stats.predicate_tuples) sum += n;
  EXPECT_EQ(sum, stats.generated_tuples);
  EXPECT_EQ(stats.predicate_tuples[program.goal()],
            static_cast<long>(answers.size()));
  // The two-atom self-join builds at least one index over R.
  EXPECT_GE(stats.index_builds, 1);
}

TEST(EvaluatorLimitsTest, BudgetLargerThanResultIsHarmless) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 10);
  EvaluatorLimits limits;
  limits.max_generated_tuples = 1'000'000;
  Evaluator eval(program, data, limits);
  EvaluationStats stats;
  auto answers = eval.Evaluate(&stats);
  EXPECT_FALSE(stats.aborted);
  EXPECT_EQ(answers.size(), 100u);
}

// G(x) <- A(x) & R(x, y) over a data instance where A holds one individual
// and R is adversarially wide (every edge points into one hub).  The join
// emits a single tuple, so the deadline can only be caught inside the EDB
// materialisation / index-build loops — the paths a per-emission poll never
// reaches.  Regression test for the pre-fix evaluator, which polled the
// deadline only every 1024 join emissions and blew far past deadline_ms
// here.
TEST(EvaluatorLimitsTest, DeadlineHonouredDuringIndexBuildOnWideEdb) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int a = program.AddConceptPredicate(vocab.InternConcept("A"));
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 1);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};
  c.body.push_back({a, {Term::Var(0)}});
  c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  DataInstance data(&vocab);
  int concept_a = vocab.InternConcept("A");
  int role_r = vocab.InternPredicate("R");
  int hub = data.AddIndividual("hub");
  constexpr int kSpokes = 500'000;
  for (int i = 0; i < kSpokes; ++i) {
    int s = data.AddIndividual("s" + std::to_string(i));
    data.AddRoleAssertion(role_r, s, hub);
    if (i == 0) data.AddConceptAssertion(concept_a, s);
  }

  EvaluatorLimits limits;
  limits.deadline_ms = 1;  // Materialising 500k rows takes well over 1 ms.
  Evaluator eval(program, data, limits);
  EvaluationStats stats;
  eval.Evaluate(&stats);
  EXPECT_TRUE(stats.aborted);
  EXPECT_TRUE(stats.deadline_exceeded);
}

// A deadline that trips while an EDB relation is still streaming in leaves
// that extension silently incomplete; stats.partial_edbs must surface it,
// and it must only ever appear together with a deadline abort.
TEST(EvaluatorLimitsTest, PartialEdbReportedOnDeadlineCut) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int a = program.AddConceptPredicate(vocab.InternConcept("A"));
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 1);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};
  c.body.push_back({a, {Term::Var(0)}});
  c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  DataInstance data(&vocab);
  int concept_a = vocab.InternConcept("A");
  int role_r = vocab.InternPredicate("R");
  int hub = data.AddIndividual("hub");
  constexpr int kSpokes = 500'000;
  for (int i = 0; i < kSpokes; ++i) {
    int s = data.AddIndividual("s" + std::to_string(i));
    data.AddRoleAssertion(role_r, s, hub);
    if (i == 0) data.AddConceptAssertion(concept_a, s);
  }

  EvaluatorLimits limits;
  limits.deadline_ms = 1;  // Streaming 500k rows takes well over 1 ms.
  Evaluator eval(program, data, limits);
  EvaluationStats stats;
  eval.Evaluate(&stats);
  EXPECT_TRUE(stats.aborted);
  EXPECT_TRUE(stats.deadline_exceeded);
  // The wide role relation is the first thing materialised, so the cut
  // lands mid-stream and must be recorded.
  EXPECT_GE(stats.partial_edbs, 1);
  // The invariant documented on EvaluationStats: a nonzero partial_edbs
  // implies the deadline-abort flags.
  if (stats.partial_edbs > 0) {
    EXPECT_TRUE(stats.aborted);
    EXPECT_TRUE(stats.deadline_exceeded);
  }
}

TEST(EvaluatorLimitsTest, NoPartialEdbsWithoutDeadline) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 20);
  EvaluationStats stats;
  Evaluator(program, data).Evaluate(&stats);
  EXPECT_FALSE(stats.aborted);
  EXPECT_EQ(stats.partial_edbs, 0);
}

// The limits machinery and the stats fields must behave identically on the
// sequential and the parallel path.
TEST(EvaluatorLimitsTest, SequentialAndParallelStatsAgree) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 20);

  EvaluationStats seq_stats;
  auto seq_answers =
      Evaluator(program, data).Evaluate(&seq_stats);
  EvaluationStats par_stats;
  auto par_answers =
      Evaluator(program, data).EvaluateParallel(4, &par_stats);

  EXPECT_EQ(seq_answers, par_answers);
  EXPECT_EQ(seq_stats.generated_tuples, par_stats.generated_tuples);
  EXPECT_EQ(seq_stats.goal_tuples, par_stats.goal_tuples);
  EXPECT_EQ(seq_stats.predicates_evaluated, par_stats.predicates_evaluated);
  EXPECT_EQ(seq_stats.index_builds, par_stats.index_builds);
  EXPECT_EQ(seq_stats.predicate_tuples, par_stats.predicate_tuples);
  EXPECT_FALSE(seq_stats.aborted);
  EXPECT_FALSE(par_stats.aborted);
  EXPECT_FALSE(seq_stats.deadline_exceeded);
  EXPECT_FALSE(par_stats.deadline_exceeded);
}

TEST(EvaluatorLimitsTest, SequentialAndParallelAbortFlagsAgree) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 30);
  EvaluatorLimits limits;
  limits.max_generated_tuples = 100;

  EvaluationStats seq_stats;
  Evaluator(program, data, limits).Evaluate(&seq_stats);
  EvaluationStats par_stats;
  Evaluator(program, data, limits).EvaluateParallel(4, &par_stats);

  // Tuple counts differ under an abort (workers race to the budget), but
  // the flags and the stats shape must agree.
  EXPECT_TRUE(seq_stats.aborted);
  EXPECT_TRUE(par_stats.aborted);
  EXPECT_FALSE(seq_stats.deadline_exceeded);
  EXPECT_FALSE(par_stats.deadline_exceeded);
  EXPECT_EQ(seq_stats.predicate_tuples.size(), par_stats.predicate_tuples.size());
}

}  // namespace
}  // namespace owlqr
