// Durability soak (DESIGN.md §14): a store-backed engine lives through
// several process incarnations.  Within each, executor threads hammer
// Execute while a single updater applies fact batches and occasionally
// forces a checkpoint; a tiny compaction threshold makes the automatic
// inline compaction fire constantly, and a tiny residency budget makes
// every reopen start cold so executions race the lazy column faults.
// Between incarnations the engine is destroyed and reopened through
// Engine::Open — recovery must land on exactly the acknowledged version.
//
// Correctness oracle: an ordinary in-memory engine (its own vocabulary,
// never restarted) applies the same batches in the same order.  Because a
// restarted process interns ids in its own order, answers are compared as
// NAME tuples.  Expected answers for version v are recorded BEFORE v is
// installed in the durable engine, so an executor can always check the
// version it pinned.  At each quiesce the governor budget must account to
// zero.  Part of the `sanitize` and `soak` ctest labels.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "store/store.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

constexpr int kIncarnations = 4;
constexpr int kBatchesPerIncarnation = 5;
constexpr int kExecutorThreads = 4;
const char* const kWords[] = {"RS", "RSR", "RRSR"};
constexpr int kNumQueries = 3;

// One "process": its own vocabulary, the Example 11 ontology, the
// deterministic seed dataset, and an engine — durable or oracle.
struct Incarnation {
  std::unique_ptr<Vocabulary> vocab;
  std::unique_ptr<TBox> tbox;
  std::unique_ptr<Engine> engine;
  std::vector<ConjunctiveQuery> queries;
  Status open_status;
};

Incarnation OpenIncarnation(const std::string& store_dir) {
  Incarnation inc;
  inc.vocab = std::make_unique<Vocabulary>();
  inc.tbox = MakeExample11TBox(inc.vocab.get());
  DataInstance data = GenerateDataset(inc.vocab.get(), *inc.tbox,
                                      DatasetConfig{"c", 40, 0.1, 0.12, 13});

  EngineOptions options;
  options.plan_cache_capacity = 4;
  options.governor.max_memory_bytes = 32 << 20;
  options.answer_cache_capacity = 16;
  if (!store_dir.empty()) {
    store::StoreOptions store_options;
    store_options.dir = store_dir;
    // Throughput over durability for the soak: the fsync-on-every-append
    // policy is crash-correctness, which store_recovery_test.cc owns.
    store_options.fsync = false;
    // A few KB of log triggers the inline compaction almost every batch.
    store_options.compact_log_bytes = 4096;
    std::shared_ptr<store::DurableStore> durable;
    Status status = store::DurableStore::Open(store_options, &durable);
    if (!status.ok()) {
      inc.open_status = status;
      return inc;
    }
    options.store = std::move(durable);
    // Fits roughly one small column: every reopen starts mostly cold and
    // the executor threads race the faults.
    options.store_resident_bytes = 256;
  }
  inc.engine =
      Engine::Open(*inc.tbox, data, nullptr, options, &inc.open_status);
  if (inc.engine != nullptr) {
    for (const char* word : kWords) {
      inc.queries.push_back(SequenceQuery(inc.vocab.get(), word));
    }
  }
  return inc;
}

// The same deterministic batch in any vocabulary: an R/S chain plus one
// exists-P witness (the shape engine_soak_test.cc uses), at the NAME level.
FactBatch MakeBatch(Incarnation* inc, int b) {
  Vocabulary* vocab = inc->vocab.get();
  const int r = vocab->InternPredicate("R");
  const int s = vocab->InternPredicate("S");
  const int label =
      inc->tbox->ExistsConcept(RoleOf(vocab->InternPredicate("P")));
  const std::string prefix = "soak" + std::to_string(b) + "_";
  auto ind = [&](int i) {
    return vocab->InternIndividual(prefix + std::to_string(i));
  };
  FactBatch batch;
  batch.roles.push_back({r, ind(0), ind(1)});
  batch.roles.push_back({s, ind(1), ind(2)});
  batch.roles.push_back({r, ind(2), ind(3)});
  batch.roles.push_back({r, ind(3), ind(4)});
  batch.concepts.push_back({label, ind(4)});
  return batch;
}

// An answer set as sorted name tuples — comparable across vocabularies.
std::set<std::string> NameTuples(const std::vector<std::vector<int>>& answers,
                                 const Vocabulary& vocab) {
  std::set<std::string> out;
  for (const std::vector<int>& tuple : answers) {
    std::string key;
    for (int id : tuple) {
      key += vocab.IndividualName(id);
      key += ',';
    }
    out.insert(key);
  }
  return out;
}

struct ExpectedAnswers {
  std::mutex mu;
  // version -> per-query expected name tuples.
  std::map<uint64_t, std::vector<std::set<std::string>>> by_version;

  void Record(uint64_t version, std::vector<std::set<std::string>> answers) {
    std::lock_guard<std::mutex> lock(mu);
    by_version[version] = std::move(answers);
  }
  bool Lookup(uint64_t version, int query,
              std::set<std::string>* out) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_version.find(version);
    if (it == by_version.end()) return false;
    *out = it->second[query];
    return true;
  }
};

std::vector<std::set<std::string>> SingleShot(Incarnation* inc) {
  std::vector<std::set<std::string>> out;
  for (int q = 0; q < kNumQueries; ++q) {
    Status status;
    ExecuteResult result = inc->engine->Query(inc->queries[q], {}, &status);
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_FALSE(result.partial);
    out.push_back(NameTuples(result.answers, *inc->vocab));
  }
  return out;
}

TEST(StoreSoakTest, RestartChaosKeepsAnswersExactAcrossIncarnations) {
  std::string dir_template = ::testing::TempDir() + "store_soak.XXXXXX";
  std::vector<char> dir_buf(dir_template.begin(), dir_template.end());
  dir_buf.push_back('\0');
  ASSERT_NE(mkdtemp(dir_buf.data()), nullptr);
  const std::string store_dir(dir_buf.data());

  // The oracle lives across all incarnations and is never restarted.
  Incarnation oracle = OpenIncarnation("");
  ASSERT_NE(oracle.engine, nullptr) << oracle.open_status.ToString();

  ExpectedAnswers expected;
  expected.Record(1, SingleShot(&oracle));

  int next_batch = 0;
  uint64_t acknowledged_version = 1;

  for (int life = 0; life < kIncarnations; ++life) {
    SCOPED_TRACE("incarnation " + std::to_string(life));
    Incarnation inc = OpenIncarnation(store_dir);
    ASSERT_NE(inc.engine, nullptr) << inc.open_status.ToString();
    // Recovery must land exactly on the last acknowledged version…
    ASSERT_EQ(inc.engine->snapshot_version(), acknowledged_version);
    // …and its warm single-shot answers must match the oracle's.
    {
      std::vector<std::set<std::string>> warm = SingleShot(&inc);
      for (int q = 0; q < kNumQueries; ++q) {
        std::set<std::string> want;
        ASSERT_TRUE(expected.Lookup(acknowledged_version, q, &want));
        EXPECT_EQ(warm[q], want) << "query " << q;
      }
    }

    std::atomic<bool> stop{false};
    std::atomic<int> verified{0};
    std::vector<std::thread> executors;
    for (int t = 0; t < kExecutorThreads; ++t) {
      executors.emplace_back([&, t] {
        std::mt19937 rng(1000 * life + t);
        while (!stop.load(std::memory_order_relaxed)) {
          const int q = static_cast<int>(rng() % kNumQueries);
          ExecuteRequest request;
          request.incremental = (rng() % 2) == 0;
          Status status;
          ExecuteResult result =
              inc.engine->Query(inc.queries[q], request, &status);
          ASSERT_TRUE(status.ok()) << status.ToString();
          if (!result.status.ok() || result.partial) continue;
          std::set<std::string> want;
          // Expected answers are recorded before the version installs, so
          // any pinned version is already in the map.
          ASSERT_TRUE(expected.Lookup(result.snapshot_version, q, &want))
              << "version " << result.snapshot_version;
          EXPECT_EQ(NameTuples(result.answers, *inc.vocab), want)
              << "query " << q << " at version " << result.snapshot_version;
          verified.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    std::mt19937 rng(7000 + life);
    for (int b = 0; b < kBatchesPerIncarnation; ++b) {
      // Oracle first: record version v's expected answers before the
      // durable engine can serve v.
      uint64_t oracle_version = 0;
      ASSERT_TRUE(oracle.engine
                      ->ApplyFactsOrError(MakeBatch(&oracle, next_batch),
                                          &oracle_version)
                      .ok());
      expected.Record(oracle_version, SingleShot(&oracle));

      uint64_t version = 0;
      ASSERT_TRUE(inc.engine
                      ->ApplyFactsOrError(MakeBatch(&inc, next_batch),
                                          &version)
                      .ok());
      ASSERT_EQ(version, oracle_version);
      acknowledged_version = version;
      ++next_batch;

      if (rng() % 3 == 0) {
        // An explicit checkpoint racing executions and the inline
        // compaction path.
        EXPECT_TRUE(inc.engine->Checkpoint().ok());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : executors) t.join();
    EXPECT_GT(verified.load(), 0);

    // Quiesce: once the retained caches release their charges, every byte
    // of the budget must be back.
    inc.engine->ClearIncrementalState();
    inc.engine->ClearAnswerCache();
    EXPECT_EQ(inc.engine->governor_counters().memory_used, 0u);
    // The tiny threshold must have compacted at least once by now.
    EXPECT_GE(inc.engine->store()->counters().segments_written, 1u);
  }

  // One last cold start: the full history survived every restart.
  Incarnation last = OpenIncarnation(store_dir);
  ASSERT_NE(last.engine, nullptr) << last.open_status.ToString();
  ASSERT_EQ(last.engine->snapshot_version(), acknowledged_version);
  std::vector<std::set<std::string>> warm = SingleShot(&last);
  for (int q = 0; q < kNumQueries; ++q) {
    std::set<std::string> want;
    ASSERT_TRUE(expected.Lookup(acknowledged_version, q, &want));
    EXPECT_EQ(warm[q], want) << "query " << q;
  }
}

}  // namespace
}  // namespace owlqr
