// Differential testing of the NDL evaluator: random nonrecursive programs
// are evaluated both by the bottom-up engine and via their PE unfolding
// (an independent relational-algebra implementation); results must match.

#include <gtest/gtest.h>

#include <random>

#include "data/data_instance.h"
#include "ndl/evaluator.h"
#include "ndl/program.h"
#include "ndl/skinny.h"
#include "ndl/transforms.h"
#include "pe/pe_formula.h"

namespace owlqr {
namespace {

struct RandomProgram {
  Vocabulary vocab;
  NdlProgram program{&vocab};
};

std::unique_ptr<RandomProgram> MakeRandomProgram(std::mt19937_64* rng) {
  auto rp = std::make_unique<RandomProgram>();
  NdlProgram& p = rp->program;
  std::vector<int> edb;
  edb.push_back(p.AddConceptPredicate(rp->vocab.InternConcept("A")));
  edb.push_back(p.AddConceptPredicate(rp->vocab.InternConcept("B")));
  edb.push_back(p.AddRolePredicate(rp->vocab.InternPredicate("R")));
  edb.push_back(p.AddRolePredicate(rp->vocab.InternPredicate("S")));

  // Layered IDB predicates: layer k may use EDBs and layers < k.
  std::vector<int> idb;
  int layers = 2 + static_cast<int>((*rng)() % 2);
  for (int layer = 0; layer < layers; ++layer) {
    int arity = 1 + static_cast<int>((*rng)() % 2);
    int pred = p.AddIdbPredicate("I" + std::to_string(layer), arity);
    int clauses = 1 + static_cast<int>((*rng)() % 2);
    for (int c = 0; c < clauses; ++c) {
      NdlClause clause;
      clause.head.predicate = pred;
      int num_vars = arity + 1 + static_cast<int>((*rng)() % 2);
      for (int i = 0; i < arity; ++i) {
        clause.head.args.push_back(
            Term::Var(static_cast<int>((*rng)() % num_vars)));
      }
      int atoms = 1 + static_cast<int>((*rng)() % 3);
      for (int a = 0; a < atoms; ++a) {
        int choice = static_cast<int>((*rng)() % (edb.size() + idb.size()));
        int atom_pred = choice < static_cast<int>(edb.size())
                            ? edb[choice]
                            : idb[choice - edb.size()];
        NdlAtom atom;
        atom.predicate = atom_pred;
        for (int i = 0; i < p.predicate(atom_pred).arity; ++i) {
          atom.args.push_back(
              Term::Var(static_cast<int>((*rng)() % num_vars)));
        }
        clause.body.push_back(std::move(atom));
      }
      p.AddClause(std::move(clause));
    }
    idb.push_back(pred);
  }
  p.SetGoal(idb.back());
  EnsureSafety(&p);
  return rp;
}

DataInstance MakeRandomData(Vocabulary* vocab, std::mt19937_64* rng) {
  DataInstance data(vocab);
  std::vector<int> inds;
  for (int i = 0; i < 4; ++i) {
    inds.push_back(data.AddIndividual("d" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    switch ((*rng)() % 4) {
      case 0:
        data.AddConceptAssertion(vocab->FindConcept("A"),
                                 inds[(*rng)() % 4]);
        break;
      case 1:
        data.AddConceptAssertion(vocab->FindConcept("B"),
                                 inds[(*rng)() % 4]);
        break;
      case 2:
        data.AddRoleAssertion(vocab->FindPredicate("R"), inds[(*rng)() % 4],
                              inds[(*rng)() % 4]);
        break;
      default:
        data.AddRoleAssertion(vocab->FindPredicate("S"), inds[(*rng)() % 4],
                              inds[(*rng)() % 4]);
        break;
    }
  }
  return data;
}

class DifferentialEvaluation : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialEvaluation, EvaluatorMatchesPeUnfolding) {
  std::mt19937_64 rng(1234 + GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    auto rp = MakeRandomProgram(&rng);
    ASSERT_TRUE(rp->program.IsNonrecursive());
    DataInstance data = MakeRandomData(&rp->vocab, &rng);

    Evaluator eval(rp->program, data);
    auto bottom_up = eval.Evaluate();

    bool truncated = false;
    PeFormula pe = UnfoldToPe(rp->program, 1 << 20, &truncated);
    ASSERT_FALSE(truncated);
    EXPECT_EQ(EvaluatePe(pe, data), bottom_up)
        << "iter " << iter << "\n"
        << rp->program.ToString();

    // The skinny transform must agree too.
    NdlProgram skinny = SkinnyTransform(rp->program);
    Evaluator eval2(skinny, data);
    EXPECT_EQ(eval2.Evaluate(), bottom_up) << "skinny, iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialEvaluation,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace owlqr
