#include "util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "data/data_instance.h"
#include "ndl/evaluator.h"
#include "ndl/program.h"
#include "util/json.h"

namespace owlqr {
namespace {

// Installs a registry as the process-global sink for the test's lifetime.
class GlobalRegistry {
 public:
  GlobalRegistry() { MetricsRegistry::SetGlobal(&registry_); }
  ~GlobalRegistry() { MetricsRegistry::SetGlobal(nullptr); }
  MetricsRegistry& operator*() { return registry_; }
  MetricsRegistry* operator->() { return &registry_; }

 private:
  MetricsRegistry registry_;
};

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.Count("a", 2);
  registry.Count("a", 3);
  registry.Count("b");
  EXPECT_EQ(registry.counter("a"), 5);
  EXPECT_EQ(registry.counter("b"), 1);
  EXPECT_EQ(registry.counter("absent"), 0);
}

TEST(MetricsTest, TimersTrackMinMaxSumCount) {
  MetricsRegistry registry;
  registry.Record("t", 3.0);
  registry.Record("t", 1.0);
  registry.Record("t", 2.0);
  MetricsRegistry::TimerStats t = registry.timer("t");
  EXPECT_EQ(t.count, 3);
  EXPECT_DOUBLE_EQ(t.sum, 6.0);
  EXPECT_DOUBLE_EQ(t.min, 1.0);
  EXPECT_DOUBLE_EQ(t.max, 3.0);
  EXPECT_EQ(registry.timer("absent").count, 0);
}

TEST(MetricsTest, SpansNestAndClose) {
  MetricsRegistry registry;
  {
    ScopedSpan outer(&registry, "outer");
    ScopedSpan inner(&registry, "inner");
    inner.Attr("k", 7);
  }
  std::vector<MetricsRegistry::Span> spans = registry.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  for (const auto& span : spans) EXPECT_GE(span.duration_ms, 0);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].first, "k");
  EXPECT_EQ(spans[1].attrs[0].second, 7);
}

TEST(MetricsTest, MacrosAreNoOpsWithoutGlobalRegistry) {
  ASSERT_EQ(MetricsRegistry::Global(), nullptr);
  // Must not crash or leak; there is nothing to observe.
  OWLQR_COUNT("noop", 1);
  OWLQR_RECORD("noop", 1.0);
  OWLQR_SPAN("noop");
  EXPECT_FALSE(OWLQR_METRICS_ENABLED());
}

TEST(MetricsTest, MacrosReportToGlobalRegistry) {
  GlobalRegistry global;
  {
    OWLQR_NAMED_SPAN(span, "stage");
    span.Attr("n", 1);
    OWLQR_COUNT("c", 4);
    OWLQR_RECORD("r", 2.5);
  }
  EXPECT_EQ(global->counter("c"), 4);
  EXPECT_EQ(global->timer("r").count, 1);
  ASSERT_EQ(global->spans().size(), 1u);
  EXPECT_EQ(global->spans()[0].name, "stage");
}

TEST(MetricsTest, JsonSerialisesAllSections) {
  MetricsRegistry registry;
  registry.Count("counter\"quoted", 1);
  registry.Record("timer", 1.5);
  {
    ScopedSpan span(&registry, "span");
    span.Attr("rows", 3);
  }
  // The trace must round-trip through the repo's own parser: the emitter
  // and the serving layer's reader share one implementation of escaping.
  JsonValue trace;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(registry.ToJson(), &trace, &error)) << error;
  const JsonValue* counters = trace.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("counter\"quoted"), nullptr);
  EXPECT_EQ(counters->Find("counter\"quoted")->AsLong(), 1);
  const JsonValue* timers = trace.Find("timers");
  ASSERT_NE(timers, nullptr);
  ASSERT_NE(timers->Find("timer"), nullptr);
  EXPECT_EQ(timers->Find("timer")->Find("count")->AsLong(), 1);
  EXPECT_DOUBLE_EQ(timers->Find("timer")->Find("sum")->AsDouble(), 1.5);
  const JsonValue* spans = trace.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items().size(), 1u);
  const JsonValue& span = spans->items()[0];
  EXPECT_EQ(span.Find("name")->AsString(), "span");
  ASSERT_NE(span.Find("attrs"), nullptr);
  EXPECT_EQ(span.Find("attrs")->Find("rows")->AsLong(), 3);
}

TEST(MetricsTest, EmptyRegistrySerialisesToValidSkeleton) {
  MetricsRegistry registry;
  JsonValue trace;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(registry.ToJson(), &trace, &error)) << error;
  ASSERT_NE(trace.Find("counters"), nullptr);
  EXPECT_EQ(trace.Find("counters")->size(), 0u);
  ASSERT_NE(trace.Find("timers"), nullptr);
  EXPECT_EQ(trace.Find("timers")->size(), 0u);
  ASSERT_NE(trace.Find("spans"), nullptr);
  EXPECT_TRUE(trace.Find("spans")->is_array());
  EXPECT_EQ(trace.Find("spans")->size(), 0u);
}

// Direct concurrent hammering of one registry (runs under ctest -L sanitize
// in the TSan build).
TEST(MetricsTest, ConcurrentRecordingIsThreadSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOps = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kOps; ++i) {
        registry.Count("ops");
        registry.Record("value", static_cast<double>(i));
        ScopedSpan span(&registry, "worker");
        span.Attr("i", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("ops"), kThreads * kOps);
  EXPECT_EQ(registry.timer("value").count, kThreads * kOps);
  EXPECT_EQ(registry.spans().size(),
            static_cast<size_t>(kThreads) * kOps);
}

// The registry collects from EvaluateParallel workers: every clause
// evaluation emits a span and flushes its emission tallies concurrently.
TEST(MetricsTest, EvaluateParallelReportsThroughGlobalRegistry) {
  GlobalRegistry global;

  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  // Eight independent IDB predicates on one level so several workers record
  // concurrently, plus a goal joining two of them.
  std::vector<int> mids;
  for (int i = 0; i < 8; ++i) {
    int m = program.AddIdbPredicate("M" + std::to_string(i), 2);
    NdlClause c;
    c.head = {m, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
    c.body.push_back({r, {Term::Var(2), Term::Var(1)}});
    program.AddClause(std::move(c));
    mids.push_back(m);
  }
  int g = program.AddIdbPredicate("G", 2);
  // Intersects all eight (cheap fully-bound probes) so every predicate is
  // goal-reachable without a combinatorial chain join.
  NdlClause top;
  top.head = {g, {Term::Var(0), Term::Var(1)}};
  for (int m : mids) {
    top.body.push_back({m, {Term::Var(0), Term::Var(1)}});
  }
  program.AddClause(std::move(top));
  program.SetGoal(g);

  DataInstance data(&vocab);
  int role_r = vocab.InternPredicate("R");
  std::vector<int> inds;
  for (int i = 0; i < 15; ++i) {
    inds.push_back(data.AddIndividual("v" + std::to_string(i)));
  }
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < 15; ++j) {
      if (i != j) data.AddRoleAssertion(role_r, inds[i], inds[j]);
    }
  }

  EvaluationStats stats;
  Evaluator eval(program, data);
  auto answers = eval.EvaluateParallel(4, &stats);
  EXPECT_FALSE(answers.empty());

  // One evaluate/join span per clause, all closed.
  long join_spans = 0;
  for (const auto& span : global->spans()) {
    if (span.name == "evaluate/join") {
      ++join_spans;
      EXPECT_GE(span.duration_ms, 0);
    }
  }
  EXPECT_EQ(join_spans, static_cast<long>(program.num_clauses()));
  EXPECT_GT(global->counter("evaluator/join_emissions"), 0);
  EXPECT_GE(global->counter("evaluator/join_emissions"),
            global->counter("evaluator/new_tuples"));
  EXPECT_EQ(global->counter("evaluator/new_tuples"),
            stats.generated_tuples);
  EXPECT_GT(global->timer("evaluator/index_build_ms").count, 0);
}

}  // namespace
}  // namespace owlqr