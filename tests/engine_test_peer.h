#ifndef OWLQR_TESTS_ENGINE_TEST_PEER_H_
#define OWLQR_TESTS_ENGINE_TEST_PEER_H_

// White-box access to Engine internals for tests that pin down behaviour
// the public surface deliberately hides: delta-log range composition and
// trimming, the incremental path's forward re-pin, and the in-flight
// coalescing table.  Defined ONCE here (Engine befriends exactly this
// class) so every test TU shares one definition.

#include <cstdint>
#include <memory>
#include <mutex>

#include "engine/engine.h"

namespace owlqr {

class EngineTestPeer {
 public:
  static bool DeltaBetween(const Engine& engine, uint64_t from, uint64_t to,
                           SnapshotDelta* out) {
    return engine.DeltaBetween(from, to, out);
  }

  static size_t DeltaLogSize(const Engine& engine) {
    std::lock_guard<std::mutex> lock(engine.snapshot_mutex_);
    return engine.delta_log_.size();
  }

  static uint64_t DeltaLogFrontVersion(const Engine& engine) {
    std::lock_guard<std::mutex> lock(engine.snapshot_mutex_);
    return engine.delta_log_.empty() ? 0 : engine.delta_log_.front().version;
  }

  static bool ExecuteIncremental(const Engine& engine,
                                 const PreparedQuery& prepared,
                                 const ExecuteRequest& request,
                                 std::shared_ptr<const DataSnapshot>* snap,
                                 ExecuteResult* result) {
    return engine.ExecuteIncremental(prepared, request, snap, result);
  }

  static size_t InFlightSize(const Engine& engine) {
    return engine.inflight_.size();
  }
};

}  // namespace owlqr

#endif  // OWLQR_TESTS_ENGINE_TEST_PEER_H_
