#include <gtest/gtest.h>

#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "ndl/linear_evaluator.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

// The Theorem 2 reachability procedure must agree with the bottom-up
// evaluator on Lin rewritings (the paper's NL evaluation story).
TEST(LinearReachabilityTest, AgreesWithBottomUpOnLinRewritings) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("R", "b", "c");
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  data.AddConceptAssertion(a_p, vocab.FindIndividual("b"));

  for (const char* word : {"R", "RS", "RSR", "RSRR"}) {
    ConjunctiveQuery q = SequenceQuery(&vocab, word);
    RewriteOptions options;
    options.arbitrary_instances = true;
    RewriteResult program_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kLin, options);
    OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
    NdlProgram program = std::move(program_rw.program);
    ASSERT_TRUE(program.IsLinear()) << word;

    Evaluator eval(program, data);
    auto answers = eval.Evaluate();
    std::set<std::vector<int>> answer_set(answers.begin(), answers.end());

    LinearReachabilityEvaluator reach(program, data);
    for (int u : data.individuals()) {
      for (int v : data.individuals()) {
        bool expected = answer_set.count({u, v}) > 0;
        EXPECT_EQ(reach.Decide({u, v}), expected)
            << word << " (" << vocab.IndividualName(u) << ", "
            << vocab.IndividualName(v) << ")";
      }
    }
  }
}

TEST(LinearReachabilityTest, HandcraftedChain) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int h = program.AddIdbPredicate("H", 2);
  int g = program.AddIdbPredicate("G", 2);
  program.mutable_predicate(h).parameter_positions = {false, true};
  program.mutable_predicate(g).parameter_positions = {true, true};
  {
    NdlClause c;  // H(x, y) <- R(x, y).
    c.head = {h, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  {
    NdlClause c;  // G(x, y) <- R(x, u) & H(u, y).
    c.head = {g, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
    c.body.push_back({h, {Term::Var(2), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);

  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("R", "b", "c");
  LinearReachabilityEvaluator reach(program, data);
  int a = vocab.FindIndividual("a");
  int b = vocab.FindIndividual("b");
  int c = vocab.FindIndividual("c");
  EXPECT_TRUE(reach.Decide({a, c}));
  EXPECT_FALSE(reach.Decide({a, b}));
  EXPECT_FALSE(reach.Decide({b, a}));
  EXPECT_GT(reach.num_edges(), 0);
}

}  // namespace
}  // namespace owlqr
