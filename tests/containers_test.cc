#include <gtest/gtest.h>

#include "data/data_instance.h"
#include "data/table_store.h"
#include "ndl/program.h"
#include "ontology/tbox.h"

namespace owlqr {
namespace {

TEST(VocabularyTest, SeparateSymbolSpaces) {
  Vocabulary vocab;
  int c = vocab.InternConcept("X");
  int p = vocab.InternPredicate("X");
  int i = vocab.InternIndividual("X");
  EXPECT_EQ(c, 0);
  EXPECT_EQ(p, 0);
  EXPECT_EQ(i, 0);  // Same name, three independent id spaces.
  EXPECT_EQ(vocab.RoleName(RoleOf(p)), "X");
  EXPECT_EQ(vocab.RoleName(RoleOf(p, true)), "X-");
  EXPECT_EQ(vocab.num_roles(), 2);
}

TEST(DataInstanceTest, DeduplicationAndIndividualTracking) {
  Vocabulary vocab;
  DataInstance data(&vocab);
  data.Assert("A", "a");
  data.Assert("A", "a");
  data.Assert("R", "a", "b");
  data.Assert("R", "a", "b");
  EXPECT_EQ(data.NumAtoms(), 2);
  EXPECT_EQ(data.num_individuals(), 2);
  // Individuals can exist without atoms.
  data.AddIndividual("lonely");
  EXPECT_EQ(data.num_individuals(), 3);
  EXPECT_EQ(data.NumAtoms(), 2);
  // Sorted individual list.
  for (size_t i = 1; i < data.individuals().size(); ++i) {
    EXPECT_LT(data.individuals()[i - 1], data.individuals()[i]);
  }
}

TEST(DataInstanceTest, RoleDirectionHelpers) {
  Vocabulary vocab;
  DataInstance data(&vocab);
  int p = vocab.InternPredicate("P");
  int a = vocab.InternIndividual("a");
  int b = vocab.InternIndividual("b");
  data.AddRoleAssertionForRole(RoleOf(p, /*inverse=*/true), a, b);
  // P^-(a, b) means P(b, a).
  EXPECT_TRUE(data.HasRoleAssertion(p, b, a));
  EXPECT_TRUE(data.HasRoleAssertionForRole(RoleOf(p, true), a, b));
  EXPECT_FALSE(data.HasRoleAssertion(p, a, b));
}

TEST(TableStoreTest, TablesAndActiveDomain) {
  Vocabulary vocab;
  TableStore tables(&vocab);
  int t = tables.AddTable("emp", 3);
  EXPECT_EQ(tables.AddTable("emp", 3), t);  // Idempotent.
  tables.AddRow("emp", {"a", "b", "c"});
  tables.AddRow("emp", {"a", "b", "d"});
  EXPECT_EQ(tables.NumRows(), 2);
  EXPECT_EQ(tables.TableArity(t), 3);
  EXPECT_EQ(tables.ActiveDomain().size(), 4u);
  EXPECT_EQ(tables.FindTable("missing"), -1);
}

TEST(NdlProgramTest, SizeInSymbolsAndToString) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 1);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};
  c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);
  // Head 1+1 symbols, body atom 1+2.
  EXPECT_EQ(program.SizeInSymbols(), 5);
  std::string text = program.ToString();
  EXPECT_NE(text.find("goal: G"), std::string::npos);
  EXPECT_NE(text.find("G(v0) <- R(v0, v1)"), std::string::npos);
}

TEST(TBoxTest, ConvenienceBuilders) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  tbox.AddExistsRhs("A", "P", /*inverse=*/true);
  tbox.AddExistsLhs("P", "B");
  ASSERT_EQ(tbox.concept_inclusions().size(), 2u);
  EXPECT_EQ(tbox.concept_inclusions()[0].rhs.kind,
            BasicConcept::Kind::kExists);
  EXPECT_TRUE(IsInverse(tbox.concept_inclusions()[0].rhs.id));
  EXPECT_EQ(tbox.concept_inclusions()[1].lhs.kind,
            BasicConcept::Kind::kExists);
  EXPECT_FALSE(IsInverse(tbox.concept_inclusions()[1].lhs.id));
  EXPECT_TRUE(tbox.MentionsRole(RoleOf(vocab.FindPredicate("P"))));
  EXPECT_FALSE(tbox.MentionsRole(RoleOf(vocab.InternPredicate("Q"))));
}

}  // namespace
}  // namespace owlqr
