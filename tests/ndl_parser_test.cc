#include <gtest/gtest.h>

#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "syntax/ndl_parser.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

TEST(NdlParserTest, BasicProgram) {
  Vocabulary vocab;
  std::string error;
  auto program = ParseNdlProgram(R"(
      goal: G
      G(v0, v1) <- R(v0, v2) & H(v2, v1)
      H(v0, v1) <- S(v0, v1)
      H(v0, v1) <- =(v0, v1) & TOP(v0)
  )",
                                 &vocab, &error);
  ASSERT_TRUE(program.has_value()) << error;
  EXPECT_EQ(program->num_clauses(), 3);
  EXPECT_TRUE(program->IsNonrecursive());
  ASSERT_GE(program->goal(), 0);
  EXPECT_EQ(program->predicate(program->goal()).name, "G");
  // R and S became role EDBs; H is IDB.
  EXPECT_GE(vocab.FindPredicate("R"), 0);
  EXPECT_GE(vocab.FindPredicate("S"), 0);

  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("S", "b", "c");
  Evaluator eval(*program, data);
  auto answers = eval.Evaluate();
  // (a, c) via S, plus (a, b) via the equality clause.
  EXPECT_EQ(answers.size(), 2u);
}

TEST(NdlParserTest, ConstantsInBody) {
  Vocabulary vocab;
  std::string error;
  auto program = ParseNdlProgram(R"(
      goal: G
      G(v0) <- R(v0, bob)
  )",
                                 &vocab, &error);
  ASSERT_TRUE(program.has_value()) << error;
  DataInstance data(&vocab);
  data.Assert("R", "ann", "bob");
  data.Assert("R", "cid", "dee");
  Evaluator eval(*program, data);
  auto answers = eval.Evaluate();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], vocab.FindIndividual("ann"));
}

TEST(NdlParserTest, Errors) {
  Vocabulary vocab;
  std::string error;
  EXPECT_FALSE(ParseNdlProgram("G(v0) R(v0, v1)", &vocab, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(
      ParseNdlProgram("goal: Missing\nG(v0) <- R(v0, v1)", &vocab, &error)
          .has_value());
}

class RoundTrip : public ::testing::TestWithParam<RewriterKind> {};

TEST_P(RoundTrip, PrintParseEvaluate) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRR");
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(&ctx, q, GetParam(), options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);

  std::string printed = program.ToString();
  std::string error;
  auto reparsed = ParseNdlProgram(printed, &vocab, &error);
  ASSERT_TRUE(reparsed.has_value()) << error << "\n" << printed;
  EXPECT_EQ(reparsed->num_clauses(), program.num_clauses());

  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("P", "b", "x");
  data.Assert("R", "b", "c");
  Evaluator e1(program, data);
  Evaluator e2(*reparsed, data);
  EXPECT_EQ(e1.Evaluate(), e2.Evaluate());
}

INSTANTIATE_TEST_SUITE_P(
    AllRewriters, RoundTrip,
    ::testing::Values(RewriterKind::kLin, RewriterKind::kLog,
                      RewriterKind::kTw, RewriterKind::kTwStar,
                      RewriterKind::kUcq, RewriterKind::kPrestoLike),
    [](const ::testing::TestParamInfo<RewriterKind>& info) {
      std::string name = RewriterName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace owlqr
