#include <gtest/gtest.h>

#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "ndl/optimize.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

TEST(OptimizeTest, EmptyPredicateClausesDropped) {
  // The Table 2 datasets contain no S and no P edges, so all clauses
  // matching S or P directly can be dropped without changing the answers.
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRRS");
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kLog, options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);

  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("R", "b", "c");
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  data.AddConceptAssertion(a_p, vocab.FindIndividual("b"));

  Evaluator baseline(program, data);
  auto expected = baseline.Evaluate();

  NdlProgram optimized = program;
  int removed = DropEmptyPredicateClauses(&optimized, data);
  EXPECT_GT(removed, 0);
  EXPECT_LT(optimized.num_clauses(), program.num_clauses());
  Evaluator eval(optimized, data);
  EXPECT_EQ(eval.Evaluate(), expected);
}

TEST(OptimizeTest, DuplicateClausesSubsumed) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 1);
  for (int copy = 0; copy < 2; ++copy) {
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  EXPECT_EQ(RemoveSubsumedClauses(&program), 1);
  EXPECT_EQ(program.num_clauses(), 1);
}

TEST(OptimizeTest, StricterClauseSubsumed) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int a_pred = program.AddConceptPredicate(vocab.InternConcept("A"));
  int g = program.AddIdbPredicate("G", 1);
  {
    // G(x) <- R(x, y): the general clause.
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  {
    // G(x) <- R(x, y) & A(y): strictly more constrained, hence redundant.
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    c.body.push_back({a_pred, {Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  {
    // G(x) <- R(y, x): different direction, not redundant.
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({r, {Term::Var(1), Term::Var(0)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  EXPECT_EQ(RemoveSubsumedClauses(&program), 1);
  EXPECT_EQ(program.num_clauses(), 2);
}

TEST(OptimizeTest, SelfLoopDoesNotSubsumeEdge) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 1);
  {
    // G(x) <- R(x, x): more specific than R(x, y)...
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(0)}});
    program.AddClause(std::move(c));
  }
  {
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  // ... so the self-loop clause goes and the general one stays.
  EXPECT_EQ(RemoveSubsumedClauses(&program), 1);
  ASSERT_EQ(program.num_clauses(), 1);
  EXPECT_EQ(program.clause(0).body[0].args[0].value, 0);
  EXPECT_EQ(program.clause(0).body[0].args[1].value, 1);
}

TEST(OptimizeTest, SubsumptionPreservesRewritingAnswers) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSR");
  RewriteOptions options;
  options.arbitrary_instances = true;
  for (RewriterKind kind : {RewriterKind::kUcq, RewriterKind::kTw}) {
    RewriteResult program_rw = RewriteOmqOrError(&ctx, q, kind, options);
    OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
    NdlProgram program = std::move(program_rw.program);
    NdlProgram optimized = program;
    RemoveSubsumedClauses(&optimized);

    DataInstance data(&vocab);
    data.Assert("R", "a", "b");
    data.Assert("P", "b", "z");
    data.Assert("S", "b", "c");
    data.Assert("R", "c", "d");
    Evaluator e1(program, data);
    Evaluator e2(optimized, data);
    EXPECT_EQ(e1.Evaluate(), e2.Evaluate()) << RewriterName(kind);
  }
}

}  // namespace
}  // namespace owlqr
