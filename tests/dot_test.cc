#include <gtest/gtest.h>

#include "chase/canonical_model.h"
#include "core/rewriters.h"
#include "util/dot.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

TEST(DotTest, DependenceGraph) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSR");
  RewriteResult program_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kTw);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);
  std::string dot = DependenceGraphToDot(program);
  EXPECT_NE(dot.find("digraph dependence"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // EDB boxes only when requested.
  EXPECT_EQ(dot.find("shape=box"), std::string::npos);
  std::string with_edb = DependenceGraphToDot(program, /*include_edb=*/true);
  EXPECT_NE(with_edb.find("shape=box"), std::string::npos);
  EXPECT_GT(with_edb.size(), dot.size());
}

TEST(DotTest, CanonicalModel) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  Saturation sat(*tbox);
  WordGraph graph(*tbox, sat);
  DataInstance data(&vocab);
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  data.AddConceptAssertion(a_p, data.AddIndividual("a"));
  CanonicalModel model(*tbox, sat, graph, data, 3);
  std::string dot = CanonicalModelToDot(model, vocab);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // A null.
  EXPECT_NE(dot.find("label=\"P\""), std::string::npos);   // A tree edge.
}

TEST(DotTest, ElementCapRespected) {
  // An infinite-depth ontology: the export must stop at the cap.
  Vocabulary vocab;
  TBox tbox(&vocab);
  RoleId p = RoleOf(vocab.InternPredicate("P"));
  tbox.AddExistsRhs("A", "P");
  tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(p)),
                           BasicConcept::Exists(p));
  tbox.Normalize();
  Saturation sat(tbox);
  WordGraph graph(tbox, sat);
  DataInstance data(&vocab);
  data.Assert("A", "a");
  CanonicalModel model(tbox, sat, graph, data, 1000);
  std::string dot = CanonicalModelToDot(model, vocab, /*max_elements=*/10);
  EXPECT_LE(model.num_elements(), 30);  // Laziness kept it small.
}

}  // namespace
}  // namespace owlqr
