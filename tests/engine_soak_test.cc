// Randomized governor soak: one Engine with a 1-slot admission pool and a
// small shared memory budget, hammered by 8 threads mixing Prepare, Execute
// (sequential and parallel, with and without deadlines, sometimes refusing
// to queue), ApplyFacts and asynchronous cancellation — with the answer
// cache and in-flight coalescing enabled, and half the traffic carrying no
// cancel token so it is coalescing-eligible.  Part of the `sanitize` AND
// `soak` ctest labels — under ThreadSanitizer this proves the admission
// queue, the memory accounting, the cancel-token plumbing, the answer
// cache, the in-flight table and the governor counters race-free.
//
// Correctness is checked the same way as engine_concurrency_test.cc: fact
// batches are applied in a fixed order by a single updater, so snapshot
// version v always holds the same facts; any admitted execution that ends
// kOk and non-partial must return exactly the single-shot answers for the
// version it pinned.  Aborted/shed executions are checked for the governor's
// contract instead: a distinct status code, a `partial` marker, and sane
// stats.  At quiesce the shared budget must account to exactly zero.
//
// Randomness is seeded deterministically per thread; only thread scheduling
// varies between runs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/rewriters.h"
#include "engine/engine.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

constexpr int kNumBatches = 6;
constexpr int kExecutorThreads = 5;
constexpr int kIterationsPerThread = 150;

const char* const kWords[] = {"RS", "RSR", "RRSR"};
constexpr int kNumQueries = 3;

// Deterministic fact batch b (same shape as engine_concurrency_test.cc): a
// fresh R/S chain plus one exists-P witness label, enough to change the
// answers of every kWords query.
FactBatch MakeBatch(Vocabulary* vocab, const TBox& tbox, int b) {
  int r = vocab->InternPredicate("R");
  int s = vocab->InternPredicate("S");
  int label = tbox.ExistsConcept(RoleOf(vocab->InternPredicate("P")));
  std::string prefix = "soak" + std::to_string(b) + "_";
  auto ind = [&](int i) {
    return vocab->InternIndividual(prefix + std::to_string(i));
  };
  FactBatch batch;
  batch.roles.push_back({r, ind(0), ind(1)});
  batch.roles.push_back({s, ind(1), ind(2)});
  batch.roles.push_back({r, ind(2), ind(3)});
  batch.roles.push_back({r, ind(3), ind(4)});
  batch.concepts.push_back({label, ind(4)});
  return batch;
}

void ApplyBatchToInstance(DataInstance* data, const FactBatch& batch) {
  for (const FactBatch::ConceptFact& fact : batch.concepts) {
    data->AddConceptAssertion(fact.concept_id, fact.individual);
  }
  for (const FactBatch::RoleFact& fact : batch.roles) {
    data->AddRoleAssertion(fact.role_id, fact.subject, fact.object);
  }
}

// One executor's currently cancellable token, shared with the canceller
// thread.  A plain mutex-guarded slot: the canceller copies the shared_ptr
// out and fires it outside the evaluator's sight, exactly like a remote
// disconnect would.
struct CancelSlot {
  std::mutex mu;
  std::shared_ptr<CancelToken> token;

  void Set(std::shared_ptr<CancelToken> t) {
    std::lock_guard<std::mutex> lock(mu);
    token = std::move(t);
  }
  void FireIfSet() {
    std::shared_ptr<CancelToken> t;
    {
      std::lock_guard<std::mutex> lock(mu);
      t = token;
    }
    if (t != nullptr) t->Cancel();
  }
};

TEST(EngineSoakTest, GovernedChaosKeepsAnswersExactAndAccountsToZero) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  DataInstance base =
      GenerateDataset(&vocab, *tbox, DatasetConfig{"c", 50, 0.1, 0.12, 13});

  std::vector<FactBatch> batches;
  for (int b = 0; b < kNumBatches; ++b) {
    batches.push_back(MakeBatch(&vocab, *tbox, b));
  }

  // Interned and compiled up front: the Vocabulary is not thread-safe.
  std::vector<ConjunctiveQuery> queries;
  for (const char* word : kWords) {
    queries.push_back(SequenceQuery(&vocab, word));
  }
  RewritingContext ctx(*tbox);
  RewriteOptions options;
  options.arbitrary_instances = true;
  std::vector<NdlProgram> programs;
  for (const ConjunctiveQuery& q : queries) {
    RewriteResult rewritten =
        RewriteOmqOrError(&ctx, q, RewriterKind::kTw, options);
    ASSERT_TRUE(rewritten.ok()) << rewritten.status.ToString();
    programs.push_back(std::move(rewritten.program));
  }

  // expected[v - 1][q]: single-shot answers at snapshot version v.
  std::vector<std::vector<std::vector<std::vector<int>>>> expected(
      kNumBatches + 1);
  DataInstance grown = base;
  for (int v = 0; v <= kNumBatches; ++v) {
    if (v > 0) ApplyBatchToInstance(&grown, batches[v - 1]);
    for (int q = 0; q < kNumQueries; ++q) {
      Evaluator eval(programs[q], grown);
      expected[v].push_back(eval.Run(ExecuteRequest{}).answers);
    }
  }
  ASSERT_NE(expected.front(), expected.back());

  PrepareOptions prepare_options;
  prepare_options.auto_kind = false;
  prepare_options.kind = RewriterKind::kTw;

  // The governed engine under stress: ONE execution slot (everything else
  // queues), a small but workable shared budget, a small plan cache, and a
  // degraded-retry limit so memory rejections exercise the retry path too.
  EngineOptions engine_options;
  engine_options.plan_cache_capacity = 2;
  engine_options.governor.max_concurrent = 1;
  engine_options.governor.max_queue = 16;
  engine_options.governor.queue_timeout_ms = 5'000;
  engine_options.governor.max_memory_bytes = 512 * 1024;
  engine_options.governor.degraded_max_generated_tuples = 10'000;
  // Cross-request memoization on, sized so version churn and budget
  // pressure both force evictions mid-soak.  Coalescing defaults on; only
  // requests without a cancel token are eligible.
  engine_options.answer_cache_capacity = 32;
  engine_options.answer_cache_max_bytes = 256 * 1024;
  Engine engine(*tbox, base, nullptr, engine_options);

  std::atomic<int> failures{0};
  std::atomic<int> exact_results{0};
  std::atomic<int> cancelled_results{0};
  std::atomic<int> rejected_results{0};
  std::atomic<int> cached_results{0};
  std::atomic<int> coalesced_results{0};
  std::atomic<bool> done{false};
  std::vector<CancelSlot> slots(kExecutorThreads);

  // Thread 1/8 (main counts as 8): the single updater.  Versions must come
  // out strictly in batch order.
  std::thread updater([&] {
    for (int b = 0; b < kNumBatches; ++b) {
      uint64_t version = 0;
      if (!engine.ApplyFactsOrError(batches[b], &version).ok() ||
          version != static_cast<uint64_t>(b) + 2) {
        failures.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  // Thread 2/8: the canceller, firing random executors' tokens until every
  // executor is done.
  std::thread canceller([&] {
    std::mt19937 rng(99);
    while (!done.load(std::memory_order_acquire)) {
      slots[rng() % kExecutorThreads].FireIfSet();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Threads 3-7/8: executors mixing every request shape the governor
  // distinguishes.
  std::vector<std::thread> executors;
  for (int t = 0; t < kExecutorThreads; ++t) {
    executors.emplace_back([&, t] {
      std::mt19937 rng(1000 + t);
      for (int i = 0; i < kIterationsPerThread; ++i) {
        int q = static_cast<int>(rng() % kNumQueries);
        PrepareResult prepared = engine.Prepare(queries[q], prepare_options);
        if (!prepared.ok()) {
          failures.fetch_add(1);
          continue;
        }
        ExecuteRequest request;
        request.num_threads = i % 3 == 0 ? 3 : 1;
        // Half the traffic asks for incremental maintenance: retained
        // states churn through checkout / publish / budget-pressure
        // eviction concurrently with full runs, updates and cancellation,
        // and must never change what an un-aborted run answers.
        request.incremental = i % 2 == 0;
        unsigned shape = rng() % 8;
        if (shape == 0) request.limits.deadline_ms = 1;  // Likely deadline.
        if (shape == 1) request.queue_timeout_ms = 0;    // Shed if busy.
        // Half the traffic carries no cancel token: those requests are
        // eligible to hit the answer cache's key fast path and to coalesce
        // onto identical in-flight executions (cancellable requests never
        // lead or follow — they must stay interruptible).
        if (shape < 4) {
          auto cancel = std::make_shared<CancelToken>();
          request.cancel = cancel;
          slots[t].Set(cancel);
        }
        ExecuteResult result = engine.Execute(*prepared.query, request);
        slots[t].Set(nullptr);

        if (result.cached || result.coalesced) {
          // Served without evaluating: a cache hit is always a clean,
          // complete, byte-identical replay; a coalesced result is a copy
          // of the leader's outcome (whose request had the same limits
          // signature, but whose failure modes are its own), so only the
          // answer-exactness contract applies here — the per-status stats
          // contracts below belong to the runs that actually executed.
          if (result.cached) cached_results.fetch_add(1);
          if (result.coalesced) coalesced_results.fetch_add(1);
          if (result.cached &&
              (!result.status.ok() || result.partial || result.degraded)) {
            failures.fetch_add(1);  // Only clean runs may be cached.
          }
          if (result.status.ok() && !result.partial) {
            size_t v = static_cast<size_t>(result.snapshot_version);
            if (v < 1 || v > static_cast<size_t>(kNumBatches) + 1 ||
                result.answers != expected[v - 1][q]) {
              failures.fetch_add(1);
            } else {
              exact_results.fetch_add(1);
            }
          }
          continue;
        }

        switch (result.status.code()) {
          case StatusCode::kOk:
            if (!result.partial) {
              // The governor's core promise: an admitted, un-aborted run is
              // answer-exact for the version it pinned.
              size_t v = static_cast<size_t>(result.snapshot_version);
              if (v < 1 || v > static_cast<size_t>(kNumBatches) + 1 ||
                  result.answers != expected[v - 1][q]) {
                failures.fetch_add(1);
              } else {
                exact_results.fetch_add(1);
              }
            } else if (!result.degraded && result.stats.aborted) {
              // kOk + partial must mean a plain limit truncation or a
              // degraded retry, never an unexplained abort.
              if (!result.stats.row_ceiling) failures.fetch_add(1);
            }
            break;
          case StatusCode::kCancelled:
            if (!result.partial || !result.stats.cancelled) {
              failures.fetch_add(1);
            }
            cancelled_results.fetch_add(1);
            break;
          case StatusCode::kDeadlineExceeded:
            if (!result.partial || !result.stats.deadline_exceeded) {
              failures.fetch_add(1);
            }
            break;
          case StatusCode::kMemoryExceeded:
            if (!result.partial || !result.stats.memory_exceeded) {
              failures.fetch_add(1);
            }
            break;
          case StatusCode::kRejected:
            // Shed before evaluation: no answers, no pinned snapshot.
            if (!result.answers.empty() || result.snapshot_version != 0) {
              failures.fetch_add(1);
            }
            rejected_results.fetch_add(1);
            break;
          default:
            failures.fetch_add(1);
            break;
        }
      }
    });
  }

  for (std::thread& thread : executors) thread.join();
  done.store(true, std::memory_order_release);
  updater.join();
  canceller.join();
  EXPECT_EQ(failures.load(), 0);
  // The soak must actually have exercised the happy path, not just aborts.
  EXPECT_GT(exact_results.load(), 0);

  // Quiesce: every account died with its execution and the only remaining
  // budget charges belong to retained incremental states and cached answer
  // sets, so after dropping both the shared budget is back to exactly
  // zero, and the counters add up.
  engine.ClearIncrementalState();
  engine.ClearAnswerCache();
  QueryGovernor::Counters counters = engine.governor_counters();
  EXPECT_EQ(counters.memory_used, 0u);
  EXPECT_EQ(counters.cancelled, cancelled_results.load());
  EXPECT_EQ(counters.rejected(), rejected_results.load());
  EXPECT_GT(counters.admitted, 0);
  // Memoization accounting: hits and coalesced followers are exactly the
  // results marked as such, and every request is accounted once — it was
  // admitted, shed, served from cache, or parked on a leader.
  EXPECT_EQ(counters.answer_cache_hits, cached_results.load());
  EXPECT_EQ(counters.coalesced, coalesced_results.load());
  EXPECT_EQ(
      counters.admitted + counters.rejected() + counters.answer_cache_hits +
          counters.coalesced,
      static_cast<long>(kExecutorThreads) * kIterationsPerThread);

  // And the engine still serves exact answers on the final snapshot.
  EXPECT_EQ(engine.snapshot_version(), static_cast<uint64_t>(kNumBatches) + 1);
  for (int q = 0; q < kNumQueries; ++q) {
    Status status;
    ExecuteResult result = engine.Query(queries[q], ExecuteRequest{}, &status,
                                        prepare_options);
    ASSERT_TRUE(status.ok());
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.answers, expected[kNumBatches][q]) << kWords[q];
  }
}

}  // namespace
}  // namespace owlqr
