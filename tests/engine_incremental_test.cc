// Differential and contract tests for incremental answer maintenance
// (ExecuteRequest::incremental): interleaved ApplyFacts / Execute rounds
// where every incremental answer set must be byte-identical to a full
// re-evaluation of the same snapshot version, including duplicate-fact and
// empty-batch rounds; plus the ApplyFactsOrError validation contract and
// the no-op version semantics of effectively-empty batches.  Part of the
// `sanitize` ctest label.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/rewriters.h"
#include "engine/engine.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

const char* const kWords[] = {"RS", "RSR", "RRSR"};
constexpr int kNumQueries = 3;

void ApplyBatchToInstance(DataInstance* data, const FactBatch& batch) {
  for (const FactBatch::ConceptFact& fact : batch.concepts) {
    data->AddConceptAssertion(fact.concept_id, fact.individual);
  }
  for (const FactBatch::RoleFact& fact : batch.roles) {
    data->AddRoleAssertion(fact.role_id, fact.subject, fact.object);
  }
}

class EngineIncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tbox_ = MakeExample11TBox(&vocab_);
    base_ = std::make_unique<DataInstance>(
        GenerateDataset(&vocab_, *tbox_, DatasetConfig{"c", 40, 0.1, 0.12, 7}));
    for (const char* word : kWords) {
      queries_.push_back(SequenceQuery(&vocab_, word));
    }
    RewritingContext ctx(*tbox_);
    RewriteOptions options;
    options.arbitrary_instances = true;
    for (const ConjunctiveQuery& q : queries_) {
      RewriteResult rewritten =
          RewriteOmqOrError(&ctx, q, RewriterKind::kTw, options);
      ASSERT_TRUE(rewritten.ok()) << rewritten.status.ToString();
      programs_.push_back(std::move(rewritten.program));
    }
    prepare_options_.auto_kind = false;
    prepare_options_.kind = RewriterKind::kTw;
  }

  // The full-evaluation oracle: a fresh evaluator over the mirror instance.
  std::vector<std::vector<int>> Oracle(const DataInstance& grown, int q) {
    Evaluator eval(programs_[q], grown);
    ExecuteResult result = eval.Run(ExecuteRequest{});
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    return result.answers;
  }

  Vocabulary vocab_;
  std::unique_ptr<TBox> tbox_;
  std::unique_ptr<DataInstance> base_;
  std::vector<ConjunctiveQuery> queries_;
  std::vector<NdlProgram> programs_;
  PrepareOptions prepare_options_;
};

// N interleaved ApplyFacts / Execute rounds: fresh batches, verbatim
// re-application of old batches (no-op), mixed batches (one new fact among
// duplicates), and empty batches, each followed by incremental executions
// whose answers must equal a from-scratch evaluation of the mirror
// instance at the same version.
TEST_F(EngineIncrementalTest, RandomizedDifferentialDeltaVsFull) {
  Engine engine(*tbox_, *base_);
  std::vector<std::shared_ptr<const PreparedQuery>> prepared;
  for (const ConjunctiveQuery& q : queries_) {
    PrepareResult p = engine.Prepare(q, prepare_options_);
    ASSERT_TRUE(p.ok()) << p.status.ToString();
    prepared.push_back(p.query);
  }

  int r_id = vocab_.InternPredicate("R");
  int s_id = vocab_.InternPredicate("S");
  int label = tbox_->ExistsConcept(RoleOf(vocab_.InternPredicate("P")));
  ASSERT_GE(label, 0);

  std::mt19937 rng(4242);
  DataInstance grown = *base_;     // The oracle's mirror of the snapshot.
  std::vector<FactBatch> applied;  // Accepted batches, for duplicate rounds.
  std::vector<int> pool;           // Individuals introduced by fresh rounds.
  uint64_t version = engine.snapshot_version();
  ASSERT_EQ(version, 1u);
  int incremental_served = 0;

  constexpr int kRounds = 14;
  for (int round = 0; round < kRounds; ++round) {
    FactBatch batch;
    bool expect_bump = false;
    switch (round % 4) {
      case 0:
      case 2: {
        // Fresh chain (guaranteed-new facts) plus random edges within the
        // pool, which may or may not duplicate earlier rounds' edges.
        std::string prefix = "inc" + std::to_string(round) + "_";
        std::vector<int> chain;
        for (int i = 0; i < 5; ++i) {
          chain.push_back(vocab_.InternIndividual(prefix + std::to_string(i)));
        }
        batch.roles.push_back({r_id, chain[0], chain[1]});
        batch.roles.push_back({s_id, chain[1], chain[2]});
        batch.roles.push_back({r_id, chain[2], chain[3]});
        batch.roles.push_back({r_id, chain[3], chain[4]});
        batch.concepts.push_back({label, chain[4]});
        for (int k = 0; !pool.empty() && k < 3; ++k) {
          batch.roles.push_back({rng() % 2 == 0 ? r_id : s_id,
                                 pool[rng() % pool.size()],
                                 pool[rng() % pool.size()]});
        }
        pool.insert(pool.end(), chain.begin(), chain.end());
        expect_bump = true;
        break;
      }
      case 1: {
        // Verbatim duplicate of an accepted batch: every fact is already
        // present, so this must be a version-preserving no-op.
        if (!applied.empty()) batch = applied[rng() % applied.size()];
        expect_bump = false;
        break;
      }
      case 3: {
        // Empty batch half the time; otherwise duplicates plus exactly one
        // genuinely new fact, which must bump the version by one.
        if (rng() % 2 == 0 && !applied.empty()) {
          batch = applied[rng() % applied.size()];
          int fresh = vocab_.InternIndividual("mix" + std::to_string(round));
          batch.roles.push_back({r_id, fresh, fresh});
          pool.push_back(fresh);
          expect_bump = true;
        }
        break;
      }
    }

    uint64_t new_version = 0;
    ASSERT_TRUE(engine.ApplyFactsOrError(batch, &new_version).ok());
    if (expect_bump) {
      EXPECT_EQ(new_version, version + 1) << "round " << round;
    } else {
      EXPECT_EQ(new_version, version) << "round " << round;
    }
    version = new_version;
    ApplyBatchToInstance(&grown, batch);  // Insert dedups; mirror stays equal.

    // One mid-run state wipe: the next executions miss, re-capture from a
    // full run (a parallel one below), and the rounds after that go back
    // to serving deltas off the re-captured state.
    if (round == 9) engine.ClearIncrementalState();

    for (int q = 0; q < kNumQueries; ++q) {
      ExecuteRequest request;
      request.incremental = true;
      request.num_threads = round % 5 == 4 ? 2 : 1;
      ExecuteResult result = engine.Execute(*prepared[q], request);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_FALSE(result.partial);
      EXPECT_EQ(result.snapshot_version, version);
      if (result.incremental) ++incremental_served;
      EXPECT_EQ(result.answers, Oracle(grown, q))
          << "round " << round << " query " << kWords[q]
          << (result.incremental ? " (incremental)" : " (full)");
    }
  }

  // The delta path must actually have served most rounds: after each
  // query's first (capturing) full run, every later round is one delta
  // behind at most.
  EXPECT_GT(incremental_served, kRounds);
  EXPECT_GT(engine.incremental_state_size(), 0u);

  // Retained states are the only surviving budget charges; dropping them
  // accounts the engine back to zero.
  engine.ClearIncrementalState();
  EXPECT_EQ(engine.incremental_state_size(), 0u);
  EXPECT_EQ(engine.governor_counters().memory_used, 0u);
}

// A request with tuple/work limits must transparently fall back to the full
// path: a truncated retained state would poison every later delta run.
TEST_F(EngineIncrementalTest, LimitedRequestsFallBackToFullEvaluation) {
  Engine engine(*tbox_, *base_);
  PrepareResult p = engine.Prepare(queries_[0], prepare_options_);
  ASSERT_TRUE(p.ok()) << p.status.ToString();

  // Seed retained state with a clean incremental-capturing run.
  ExecuteRequest request;
  request.incremental = true;
  ExecuteResult seed = engine.Execute(*p.query, request);
  ASSERT_TRUE(seed.status.ok());
  EXPECT_EQ(engine.incremental_state_size(), 1u);

  ExecuteRequest limited = request;
  limited.limits.max_generated_tuples = 1;
  ExecuteResult truncated = engine.Execute(*p.query, limited);
  EXPECT_FALSE(truncated.incremental);
  // The retained state survives untouched and still serves the next
  // unlimited incremental request.
  EXPECT_EQ(engine.incremental_state_size(), 1u);
  ExecuteResult again = engine.Execute(*p.query, request);
  ASSERT_TRUE(again.status.ok());
  EXPECT_TRUE(again.incremental);
  EXPECT_EQ(again.answers, seed.answers);
}

// Unknown or negative ids must reject the whole batch atomically: nothing
// installed, version unchanged, and no orphan relations for later valid
// updates to trip over.
TEST_F(EngineIncrementalTest, InvalidIdsAreRejectedAtomically) {
  Engine engine(*tbox_, *base_);
  const uint64_t version = engine.snapshot_version();
  const long atoms = engine.snapshot()->num_atoms();
  int r_id = vocab_.InternPredicate("R");
  int known = vocab_.InternIndividual("known");

  FactBatch bad_concept;
  bad_concept.concepts.push_back({vocab_.num_concepts() + 5, known});
  FactBatch negative_concept;
  negative_concept.concepts.push_back({-1, known});
  FactBatch bad_role;
  bad_role.roles.push_back({vocab_.num_predicates(), known, known});
  FactBatch bad_individual;
  bad_individual.roles.push_back({r_id, known, vocab_.num_individuals() + 9});
  // A batch mixing one valid and one invalid fact must install NEITHER.
  FactBatch mixed;
  mixed.roles.push_back({r_id, known, known});
  mixed.roles.push_back({-3, known, known});

  for (const FactBatch* batch : {&bad_concept, &negative_concept, &bad_role,
                                 &bad_individual, &mixed}) {
    uint64_t out = 77;
    Status status = engine.ApplyFactsOrError(*batch, &out);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << status.ToString();
    EXPECT_EQ(engine.snapshot_version(), version);
    EXPECT_EQ(engine.snapshot()->num_atoms(), atoms);
  }

  // The same valid fact goes through once the poison pill is gone.
  FactBatch good;
  good.roles.push_back({r_id, known, known});
  uint64_t out = 0;
  ASSERT_TRUE(engine.ApplyFactsOrError(good, &out).ok());
  EXPECT_EQ(out, version + 1);
  EXPECT_EQ(engine.snapshot()->num_atoms(), atoms + 1);
}

// The explicit no-op contract of WithFacts through the engine: empty and
// all-duplicate batches return the parent snapshot unchanged — same
// version, same object — and never log a phantom delta.
TEST_F(EngineIncrementalTest, DuplicateAndEmptyBatchesAreNoOps) {
  Engine engine(*tbox_, *base_);
  std::shared_ptr<const DataSnapshot> before = engine.snapshot();

  uint64_t out = 0;
  ASSERT_TRUE(engine.ApplyFactsOrError(FactBatch{}, &out).ok());
  EXPECT_EQ(out, before->version());
  EXPECT_EQ(engine.snapshot(), before);  // Same object, not just version.

  int r_id = vocab_.InternPredicate("R");
  FactBatch batch;
  batch.roles.push_back({r_id, vocab_.InternIndividual("dup_a"),
                         vocab_.InternIndividual("dup_b")});
  // The batch also duplicates itself; one row must land, once.
  batch.roles.push_back(batch.roles.front());
  ASSERT_TRUE(engine.ApplyFactsOrError(batch, &out).ok());
  EXPECT_EQ(out, before->version() + 1);
  std::shared_ptr<const DataSnapshot> after = engine.snapshot();
  EXPECT_EQ(after->num_atoms(), before->num_atoms() + 1);

  // Re-applying the identical batch is a no-op at the new version.
  ASSERT_TRUE(engine.ApplyFactsOrError(batch, &out).ok());
  EXPECT_EQ(out, after->version());
  EXPECT_EQ(engine.snapshot(), after);
}

}  // namespace
}  // namespace owlqr
