// Differential and contract tests for incremental answer maintenance
// (ExecuteRequest::incremental): interleaved ApplyFacts / Execute rounds
// where every incremental answer set must be byte-identical to a full
// re-evaluation of the same snapshot version, including duplicate-fact and
// empty-batch rounds; plus the ApplyFactsOrError validation contract and
// the no-op version semantics of effectively-empty batches.  Part of the
// `sanitize` ctest label.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/rewriters.h"
#include "engine/engine.h"
#include "engine_test_peer.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

const char* const kWords[] = {"RS", "RSR", "RRSR"};
constexpr int kNumQueries = 3;

// Applies `batch` asserting success, returning the installed version.
uint64_t MustApply(Engine& engine, const FactBatch& batch) {
  uint64_t version = 0;
  EXPECT_TRUE(engine.ApplyFactsOrError(batch, &version).ok());
  return version;
}

void ApplyBatchToInstance(DataInstance* data, const FactBatch& batch) {
  for (const FactBatch::ConceptFact& fact : batch.concepts) {
    data->AddConceptAssertion(fact.concept_id, fact.individual);
  }
  for (const FactBatch::RoleFact& fact : batch.roles) {
    data->AddRoleAssertion(fact.role_id, fact.subject, fact.object);
  }
}

class EngineIncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tbox_ = MakeExample11TBox(&vocab_);
    base_ = std::make_unique<DataInstance>(
        GenerateDataset(&vocab_, *tbox_, DatasetConfig{"c", 40, 0.1, 0.12, 7}));
    for (const char* word : kWords) {
      queries_.push_back(SequenceQuery(&vocab_, word));
    }
    RewritingContext ctx(*tbox_);
    RewriteOptions options;
    options.arbitrary_instances = true;
    for (const ConjunctiveQuery& q : queries_) {
      RewriteResult rewritten =
          RewriteOmqOrError(&ctx, q, RewriterKind::kTw, options);
      ASSERT_TRUE(rewritten.ok()) << rewritten.status.ToString();
      programs_.push_back(std::move(rewritten.program));
    }
    prepare_options_.auto_kind = false;
    prepare_options_.kind = RewriterKind::kTw;
  }

  // The full-evaluation oracle: a fresh evaluator over the mirror instance.
  std::vector<std::vector<int>> Oracle(const DataInstance& grown, int q) {
    Evaluator eval(programs_[q], grown);
    ExecuteResult result = eval.Run(ExecuteRequest{});
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    return result.answers;
  }

  Vocabulary vocab_;
  std::unique_ptr<TBox> tbox_;
  std::unique_ptr<DataInstance> base_;
  std::vector<ConjunctiveQuery> queries_;
  std::vector<NdlProgram> programs_;
  PrepareOptions prepare_options_;
};

// N interleaved ApplyFacts / Execute rounds: fresh batches, verbatim
// re-application of old batches (no-op), mixed batches (one new fact among
// duplicates), and empty batches, each followed by incremental executions
// whose answers must equal a from-scratch evaluation of the mirror
// instance at the same version.
TEST_F(EngineIncrementalTest, RandomizedDifferentialDeltaVsFull) {
  Engine engine(*tbox_, *base_);
  std::vector<std::shared_ptr<const PreparedQuery>> prepared;
  for (const ConjunctiveQuery& q : queries_) {
    PrepareResult p = engine.Prepare(q, prepare_options_);
    ASSERT_TRUE(p.ok()) << p.status.ToString();
    prepared.push_back(p.query);
  }

  int r_id = vocab_.InternPredicate("R");
  int s_id = vocab_.InternPredicate("S");
  int label = tbox_->ExistsConcept(RoleOf(vocab_.InternPredicate("P")));
  ASSERT_GE(label, 0);

  std::mt19937 rng(4242);
  DataInstance grown = *base_;     // The oracle's mirror of the snapshot.
  std::vector<FactBatch> applied;  // Accepted batches, for duplicate rounds.
  std::vector<int> pool;           // Individuals introduced by fresh rounds.
  uint64_t version = engine.snapshot_version();
  ASSERT_EQ(version, 1u);
  int incremental_served = 0;

  constexpr int kRounds = 14;
  for (int round = 0; round < kRounds; ++round) {
    FactBatch batch;
    bool expect_bump = false;
    switch (round % 4) {
      case 0:
      case 2: {
        // Fresh chain (guaranteed-new facts) plus random edges within the
        // pool, which may or may not duplicate earlier rounds' edges.
        std::string prefix = "inc" + std::to_string(round) + "_";
        std::vector<int> chain;
        for (int i = 0; i < 5; ++i) {
          chain.push_back(vocab_.InternIndividual(prefix + std::to_string(i)));
        }
        batch.roles.push_back({r_id, chain[0], chain[1]});
        batch.roles.push_back({s_id, chain[1], chain[2]});
        batch.roles.push_back({r_id, chain[2], chain[3]});
        batch.roles.push_back({r_id, chain[3], chain[4]});
        batch.concepts.push_back({label, chain[4]});
        for (int k = 0; !pool.empty() && k < 3; ++k) {
          batch.roles.push_back({rng() % 2 == 0 ? r_id : s_id,
                                 pool[rng() % pool.size()],
                                 pool[rng() % pool.size()]});
        }
        pool.insert(pool.end(), chain.begin(), chain.end());
        expect_bump = true;
        break;
      }
      case 1: {
        // Verbatim duplicate of an accepted batch: every fact is already
        // present, so this must be a version-preserving no-op.
        if (!applied.empty()) batch = applied[rng() % applied.size()];
        expect_bump = false;
        break;
      }
      case 3: {
        // Empty batch half the time; otherwise duplicates plus exactly one
        // genuinely new fact, which must bump the version by one.
        if (rng() % 2 == 0 && !applied.empty()) {
          batch = applied[rng() % applied.size()];
          int fresh = vocab_.InternIndividual("mix" + std::to_string(round));
          batch.roles.push_back({r_id, fresh, fresh});
          pool.push_back(fresh);
          expect_bump = true;
        }
        break;
      }
    }

    uint64_t new_version = 0;
    ASSERT_TRUE(engine.ApplyFactsOrError(batch, &new_version).ok());
    if (expect_bump) {
      EXPECT_EQ(new_version, version + 1) << "round " << round;
    } else {
      EXPECT_EQ(new_version, version) << "round " << round;
    }
    version = new_version;
    ApplyBatchToInstance(&grown, batch);  // Insert dedups; mirror stays equal.

    // One mid-run state wipe: the next executions miss, re-capture from a
    // full run (a parallel one below), and the rounds after that go back
    // to serving deltas off the re-captured state.
    if (round == 9) engine.ClearIncrementalState();

    for (int q = 0; q < kNumQueries; ++q) {
      ExecuteRequest request;
      request.incremental = true;
      request.num_threads = round % 5 == 4 ? 2 : 1;
      ExecuteResult result = engine.Execute(*prepared[q], request);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_FALSE(result.partial);
      EXPECT_EQ(result.snapshot_version, version);
      if (result.incremental) ++incremental_served;
      EXPECT_EQ(result.answers, Oracle(grown, q))
          << "round " << round << " query " << kWords[q]
          << (result.incremental ? " (incremental)" : " (full)");
    }
  }

  // The delta path must actually have served most rounds: after each
  // query's first (capturing) full run, every later round is one delta
  // behind at most.
  EXPECT_GT(incremental_served, kRounds);
  EXPECT_GT(engine.incremental_state_size(), 0u);

  // Retained states are the only surviving budget charges; dropping them
  // accounts the engine back to zero.
  engine.ClearIncrementalState();
  EXPECT_EQ(engine.incremental_state_size(), 0u);
  EXPECT_EQ(engine.governor_counters().memory_used, 0u);
}

// A request with tuple/work limits must transparently fall back to the full
// path: a truncated retained state would poison every later delta run.
TEST_F(EngineIncrementalTest, LimitedRequestsFallBackToFullEvaluation) {
  Engine engine(*tbox_, *base_);
  PrepareResult p = engine.Prepare(queries_[0], prepare_options_);
  ASSERT_TRUE(p.ok()) << p.status.ToString();

  // Seed retained state with a clean incremental-capturing run.
  ExecuteRequest request;
  request.incremental = true;
  ExecuteResult seed = engine.Execute(*p.query, request);
  ASSERT_TRUE(seed.status.ok());
  EXPECT_EQ(engine.incremental_state_size(), 1u);

  ExecuteRequest limited = request;
  limited.limits.max_generated_tuples = 1;
  ExecuteResult truncated = engine.Execute(*p.query, limited);
  EXPECT_FALSE(truncated.incremental);
  // The retained state survives untouched and still serves the next
  // unlimited incremental request.
  EXPECT_EQ(engine.incremental_state_size(), 1u);
  ExecuteResult again = engine.Execute(*p.query, request);
  ASSERT_TRUE(again.status.ok());
  EXPECT_TRUE(again.incremental);
  EXPECT_EQ(again.answers, seed.answers);
}

// Unknown or negative ids must reject the whole batch atomically: nothing
// installed, version unchanged, and no orphan relations for later valid
// updates to trip over.
TEST_F(EngineIncrementalTest, InvalidIdsAreRejectedAtomically) {
  Engine engine(*tbox_, *base_);
  const uint64_t version = engine.snapshot_version();
  const long atoms = engine.snapshot()->num_atoms();
  int r_id = vocab_.InternPredicate("R");
  int known = vocab_.InternIndividual("known");

  FactBatch bad_concept;
  bad_concept.concepts.push_back({vocab_.num_concepts() + 5, known});
  FactBatch negative_concept;
  negative_concept.concepts.push_back({-1, known});
  FactBatch bad_role;
  bad_role.roles.push_back({vocab_.num_predicates(), known, known});
  FactBatch bad_individual;
  bad_individual.roles.push_back({r_id, known, vocab_.num_individuals() + 9});
  // A batch mixing one valid and one invalid fact must install NEITHER.
  FactBatch mixed;
  mixed.roles.push_back({r_id, known, known});
  mixed.roles.push_back({-3, known, known});

  for (const FactBatch* batch : {&bad_concept, &negative_concept, &bad_role,
                                 &bad_individual, &mixed}) {
    uint64_t out = 77;
    Status status = engine.ApplyFactsOrError(*batch, &out);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << status.ToString();
    EXPECT_EQ(engine.snapshot_version(), version);
    EXPECT_EQ(engine.snapshot()->num_atoms(), atoms);
  }

  // The same valid fact goes through once the poison pill is gone.
  FactBatch good;
  good.roles.push_back({r_id, known, known});
  uint64_t out = 0;
  ASSERT_TRUE(engine.ApplyFactsOrError(good, &out).ok());
  EXPECT_EQ(out, version + 1);
  EXPECT_EQ(engine.snapshot()->num_atoms(), atoms + 1);
}

// The explicit no-op contract of WithFacts through the engine: empty and
// all-duplicate batches return the parent snapshot unchanged — same
// version, same object — and never log a phantom delta.
TEST_F(EngineIncrementalTest, DuplicateAndEmptyBatchesAreNoOps) {
  Engine engine(*tbox_, *base_);
  std::shared_ptr<const DataSnapshot> before = engine.snapshot();

  uint64_t out = 0;
  ASSERT_TRUE(engine.ApplyFactsOrError(FactBatch{}, &out).ok());
  EXPECT_EQ(out, before->version());
  EXPECT_EQ(engine.snapshot(), before);  // Same object, not just version.

  int r_id = vocab_.InternPredicate("R");
  FactBatch batch;
  batch.roles.push_back({r_id, vocab_.InternIndividual("dup_a"),
                         vocab_.InternIndividual("dup_b")});
  // The batch also duplicates itself; one row must land, once.
  batch.roles.push_back(batch.roles.front());
  ASSERT_TRUE(engine.ApplyFactsOrError(batch, &out).ok());
  EXPECT_EQ(out, before->version() + 1);
  std::shared_ptr<const DataSnapshot> after = engine.snapshot();
  EXPECT_EQ(after->num_atoms(), before->num_atoms() + 1);

  // Re-applying the identical batch is a no-op at the new version.
  ASSERT_TRUE(engine.ApplyFactsOrError(batch, &out).ok());
  EXPECT_EQ(out, after->version());
  EXPECT_EQ(engine.snapshot(), after);
}

// DeltaBetween's range edges, pinned white-box: from == to is the trivial
// empty delta (even for a version the log never held); a range whose first
// needed entry is exactly `delta_log_.front()` still composes after
// trimming; one version older has fallen off and must miss; backwards
// ranges never compose.
TEST_F(EngineIncrementalTest, DeltaBetweenHandlesRangeEdgesAndTrimming) {
  EngineOptions engine_options;
  engine_options.delta_log_capacity = 2;
  Engine engine(*tbox_, *base_, nullptr, engine_options);
  int r_id = vocab_.InternPredicate("R");
  auto bump = [&](int tag) {
    FactBatch batch;
    batch.roles.push_back(
        {r_id, vocab_.InternIndividual("dl" + std::to_string(tag) + "a"),
         vocab_.InternIndividual("dl" + std::to_string(tag) + "b")});
    return MustApply(engine, batch);
  };

  SnapshotDelta identity;
  EXPECT_TRUE(EngineTestPeer::DeltaBetween(engine, 1, 1, &identity));
  EXPECT_TRUE(identity.empty());
  // from == to does not consult the log at all, so it holds even for
  // versions the engine has never seen.
  EXPECT_TRUE(EngineTestPeer::DeltaBetween(engine, 9, 9, &identity));
  EXPECT_TRUE(identity.empty());

  ASSERT_EQ(bump(0), 2u);
  ASSERT_EQ(bump(1), 3u);
  ASSERT_EQ(bump(2), 4u);  // Capacity 2: only the v3 and v4 entries survive.
  EXPECT_EQ(EngineTestPeer::DeltaLogSize(engine), 2u);
  EXPECT_EQ(EngineTestPeer::DeltaLogFrontVersion(engine), 3u);

  // [2 -> 4] needs entries {3, 4} — exactly the surviving run, starting at
  // the log's front.
  SnapshotDelta at_front;
  EXPECT_TRUE(EngineTestPeer::DeltaBetween(engine, 2, 4, &at_front));
  EXPECT_FALSE(at_front.empty());
  // Each bump introduced two fresh individuals; both trimmed-in deltas
  // contribute theirs.
  EXPECT_EQ(at_front.new_individuals.size(), 4u);

  // [1 -> 4] additionally needs the trimmed v2 entry: a clean miss, with
  // the output left untouched for the caller to discard.
  SnapshotDelta trimmed;
  EXPECT_FALSE(EngineTestPeer::DeltaBetween(engine, 1, 4, &trimmed));
  // Backwards ranges never compose (a retained state ahead of the target
  // version is the caller's re-pin problem, not a merge problem).
  SnapshotDelta backwards;
  EXPECT_FALSE(EngineTestPeer::DeltaBetween(engine, 4, 3, &backwards));
  // And from == to stays trivially true at the current version.
  SnapshotDelta current;
  EXPECT_TRUE(EngineTestPeer::DeltaBetween(engine, 4, 4, &current));
  EXPECT_TRUE(current.empty());
}

// A no-op ApplyFacts (verbatim duplicate or empty batch) must not append a
// delta-log entry: the log's versions are assumed ascending and gap-free by
// DeltaBetween's indexing, and a phantom empty entry would also evict a
// real one once the log is at capacity.
TEST_F(EngineIncrementalTest, NoOpApplyFactsAppendsNoDeltaLogEntry) {
  Engine engine(*tbox_, *base_);
  EXPECT_EQ(EngineTestPeer::DeltaLogSize(engine), 0u);

  int r_id = vocab_.InternPredicate("R");
  FactBatch batch;
  batch.roles.push_back({r_id, vocab_.InternIndividual("nolog_a"),
                         vocab_.InternIndividual("nolog_b")});
  ASSERT_EQ(MustApply(engine, batch), 2u);
  EXPECT_EQ(EngineTestPeer::DeltaLogSize(engine), 1u);
  EXPECT_EQ(EngineTestPeer::DeltaLogFrontVersion(engine), 2u);

  // Verbatim duplicate: version preserved, log untouched.
  ASSERT_EQ(MustApply(engine, batch), 2u);
  EXPECT_EQ(EngineTestPeer::DeltaLogSize(engine), 1u);
  // Empty batch: likewise.
  ASSERT_EQ(MustApply(engine, FactBatch{}), 2u);
  EXPECT_EQ(EngineTestPeer::DeltaLogSize(engine), 1u);
  EXPECT_EQ(EngineTestPeer::DeltaLogFrontVersion(engine), 2u);
}

// The incremental path's forward re-pin: when the retained state was
// captured on a snapshot NEWER than the one this request pinned (an
// ApplyFacts plus a re-capturing run landed between pin and serve), the
// serve must re-pin forward and answer for the re-pinned version — versions
// are monotone, so reconverging forward is always correct.
TEST_F(EngineIncrementalTest, RetainedStateAheadOfPinForcesForwardRePin) {
  Engine engine(*tbox_, *base_);
  PrepareResult p = engine.Prepare(queries_[0], prepare_options_);
  ASSERT_TRUE(p.ok()) << p.status.ToString();
  ExecuteRequest request;
  request.incremental = true;

  // Pin version 1 the way Execute would, BEFORE the world moves.
  std::shared_ptr<const DataSnapshot> stale = engine.snapshot();
  ASSERT_EQ(stale->version(), 1u);

  // Seed retained state at v1, move the engine to v2, re-capture at v2.
  ASSERT_TRUE(engine.Execute(*p.query, request).status.ok());
  int r_id = vocab_.InternPredicate("R");
  int s_id = vocab_.InternPredicate("S");
  FactBatch batch;
  int a = vocab_.InternIndividual("repin_a");
  int b = vocab_.InternIndividual("repin_b");
  int c = vocab_.InternIndividual("repin_c");
  batch.roles.push_back({r_id, a, b});
  batch.roles.push_back({s_id, b, c});
  ASSERT_EQ(MustApply(engine, batch), 2u);
  ExecuteResult at2 = engine.Execute(*p.query, request);
  ASSERT_TRUE(at2.status.ok());
  ASSERT_EQ(at2.snapshot_version, 2u);

  // Serve with the stale pin: state.version (2) > snap->version (1), so
  // the peer call must re-pin forward and serve the delta run at v2.
  DataInstance grown = *base_;
  ApplyBatchToInstance(&grown, batch);
  std::shared_ptr<const DataSnapshot> snap = stale;
  ExecuteResult result;
  ASSERT_TRUE(EngineTestPeer::ExecuteIncremental(engine, *p.query, request,
                                                 &snap, &result));
  EXPECT_EQ(snap->version(), 2u);  // Re-pinned, not the stale pin.
  EXPECT_TRUE(result.incremental);
  EXPECT_EQ(result.snapshot_version, 2u);
  EXPECT_EQ(result.answers, Oracle(grown, 0));
}

// Differential check that RetainedIdbState.version is stamped from the
// snapshot the capturing run actually evaluated (the pinned one), not from
// whatever the engine's current version happens to be at publish time:
// capture-publish races ApplyFacts here, and a mis-stamped state would make
// a later delta run merge the wrong version range and answer incorrectly
// for the version it reports.
TEST_F(EngineIncrementalTest, CapturePublishRacingApplyFactsStampsPinnedVersion) {
  constexpr int kBatches = 8;
  constexpr int kExecutions = 48;

  int r_id = vocab_.InternPredicate("R");
  int s_id = vocab_.InternPredicate("S");
  int label = tbox_->ExistsConcept(RoleOf(vocab_.InternPredicate("P")));
  ASSERT_GE(label, 0);

  // Deterministic batches and per-version expected answers, precomputed on
  // this thread (the Vocabulary is not thread-safe).
  std::vector<FactBatch> batches;
  for (int b = 0; b < kBatches; ++b) {
    std::string prefix = "race" + std::to_string(b) + "_";
    auto ind = [&](int i) {
      return vocab_.InternIndividual(prefix + std::to_string(i));
    };
    FactBatch batch;
    batch.roles.push_back({r_id, ind(0), ind(1)});
    batch.roles.push_back({s_id, ind(1), ind(2)});
    batch.roles.push_back({r_id, ind(2), ind(3)});
    batch.concepts.push_back({label, ind(3)});
    batches.push_back(batch);
  }
  std::vector<std::vector<std::vector<int>>> expected;  // expected[v - 1].
  DataInstance grown = *base_;
  expected.push_back(Oracle(grown, 0));
  for (const FactBatch& batch : batches) {
    ApplyBatchToInstance(&grown, batch);
    expected.push_back(Oracle(grown, 0));
  }
  ASSERT_NE(expected.front(), expected.back());

  Engine engine(*tbox_, *base_);
  PrepareResult p = engine.Prepare(queries_[0], prepare_options_);
  ASSERT_TRUE(p.ok()) << p.status.ToString();

  std::atomic<int> failures{0};
  std::atomic<int> incremental_served{0};
  std::thread updater([&] {
    for (int b = 0; b < kBatches; ++b) {
      uint64_t version = 0;
      if (!engine.ApplyFactsOrError(batches[b], &version).ok() ||
          version != static_cast<uint64_t>(b) + 2) {
        failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  std::thread executor([&] {
    for (int i = 0; i < kExecutions; ++i) {
      ExecuteRequest request;
      request.incremental = true;
      ExecuteResult result = engine.Execute(*p.query, request);
      if (!result.status.ok() || result.partial) {
        failures.fetch_add(1);
        continue;
      }
      size_t v = static_cast<size_t>(result.snapshot_version);
      if (v < 1 || v > static_cast<size_t>(kBatches) + 1 ||
          result.answers != expected[v - 1]) {
        failures.fetch_add(1);
      }
      if (result.incremental) incremental_served.fetch_add(1);
    }
  });
  updater.join();
  executor.join();
  EXPECT_EQ(failures.load(), 0);
  // Once the updater stops, every later execution serves off retained
  // state: the delta path must actually have fired.
  EXPECT_GT(incremental_served.load(), 0);

  // And a final run agrees with the fully-grown oracle at the final
  // version — the retained state reconverged exactly.
  ExecuteRequest request;
  request.incremental = true;
  ExecuteResult last = engine.Execute(*p.query, request);
  ASSERT_TRUE(last.status.ok());
  EXPECT_EQ(last.snapshot_version, static_cast<uint64_t>(kBatches) + 1);
  EXPECT_EQ(last.answers, expected.back());
}

}  // namespace
}  // namespace owlqr
