// Concurrency test for the prepared-OMQ engine: one Engine hammered by
// threads that Prepare, Execute and ApplyFacts simultaneously.  Part of the
// `sanitize` ctest label — run under ThreadSanitizer this proves the plan
// cache, the shared snapshot index caches, the join-order hint slots and the
// copy-on-write snapshot swap race-free.
//
// Correctness is checked deterministically: a single updater thread applies
// fact batches in a fixed order, so snapshot version v always holds the same
// facts; every execution reports the version it pinned, and its answers must
// equal a fresh single-shot evaluation over a DataInstance grown to exactly
// that version (computed up front, before any threads start).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rewriters.h"
#include "engine/engine.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

constexpr int kNumBatches = 6;
constexpr int kExecutorThreads = 4;
constexpr int kIterationsPerThread = 24;

const char* const kWords[] = {"RS", "RSR", "RRSR"};
constexpr int kNumQueries = 3;

// Deterministic fact batch b: a fresh R/S chain plus one exists-P witness
// label, enough to change the answers of every kWords query.
FactBatch MakeBatch(Vocabulary* vocab, const TBox& tbox, int b) {
  int r = vocab->InternPredicate("R");
  int s = vocab->InternPredicate("S");
  int label = tbox.ExistsConcept(RoleOf(vocab->InternPredicate("P")));
  std::string prefix = "batch" + std::to_string(b) + "_";
  auto ind = [&](int i) {
    return vocab->InternIndividual(prefix + std::to_string(i));
  };
  FactBatch batch;
  batch.roles.push_back({r, ind(0), ind(1)});
  batch.roles.push_back({s, ind(1), ind(2)});
  batch.roles.push_back({r, ind(2), ind(3)});
  batch.roles.push_back({r, ind(3), ind(4)});
  batch.concepts.push_back({label, ind(4)});
  return batch;
}

void ApplyBatchToInstance(DataInstance* data, const FactBatch& batch) {
  for (const FactBatch::ConceptFact& fact : batch.concepts) {
    data->AddConceptAssertion(fact.concept_id, fact.individual);
  }
  for (const FactBatch::RoleFact& fact : batch.roles) {
    data->AddRoleAssertion(fact.role_id, fact.subject, fact.object);
  }
}

TEST(EngineConcurrencyTest, ConcurrentPrepareExecuteApplyFactsAgree) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  DataInstance base =
      GenerateDataset(&vocab, *tbox, DatasetConfig{"c", 50, 0.1, 0.12, 11});

  std::vector<FactBatch> batches;
  for (int b = 0; b < kNumBatches; ++b) {
    batches.push_back(MakeBatch(&vocab, *tbox, b));
  }

  // Built before any thread starts: the Vocabulary is not thread-safe, so
  // every symbol and query is interned up front and only read afterwards.
  std::vector<ConjunctiveQuery> queries;
  for (const char* word : kWords) {
    queries.push_back(SequenceQuery(&vocab, word));
  }

  // Expected answers per (snapshot version, query), from fresh single-shot
  // runs over incrementally grown DataInstances.  Version v = 1 + batches
  // applied.
  RewritingContext ctx(*tbox);
  RewriteOptions options;
  options.arbitrary_instances = true;
  std::vector<NdlProgram> programs;
  for (const ConjunctiveQuery& q : queries) {
    RewriteResult rewritten =
        RewriteOmqOrError(&ctx, q, RewriterKind::kTw, options);
    ASSERT_TRUE(rewritten.ok()) << rewritten.status.ToString();
    programs.push_back(std::move(rewritten.program));
  }
  std::vector<std::vector<std::vector<std::vector<int>>>> expected(
      kNumBatches + 1);  // expected[v - 1][q] = answer tuples.
  DataInstance grown = base;
  for (int v = 0; v <= kNumBatches; ++v) {
    if (v > 0) ApplyBatchToInstance(&grown, batches[v - 1]);
    for (int q = 0; q < kNumQueries; ++q) {
      Evaluator eval(programs[q], grown);
      expected[v].push_back(eval.Run(ExecuteRequest{}).answers);
    }
  }
  // The batches must actually change the final answers, or this test
  // wouldn't notice an execution reading across versions.
  ASSERT_NE(expected.front(), expected.back());

  // Forced kind so engine plans match the `programs` used for `expected`.
  PrepareOptions prepare_options;
  prepare_options.auto_kind = false;
  prepare_options.kind = RewriterKind::kTw;

  // Small cache: with 3 live queries and capacity 2, concurrent executions
  // keep plans alive across evictions and recompiles.
  EngineOptions engine_options;
  engine_options.plan_cache_capacity = 2;
  Engine engine(*tbox, base, nullptr, engine_options);

  std::atomic<int> failures{0};
  std::thread updater([&] {
    for (int b = 0; b < kNumBatches; ++b) {
      uint64_t version = 0;
      if (!engine.ApplyFactsOrError(batches[b], &version).ok() ||
          version != static_cast<uint64_t>(b) + 2) {
        failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> executors;
  for (int t = 0; t < kExecutorThreads; ++t) {
    executors.emplace_back([&, t] {
      for (int i = 0; i < kIterationsPerThread; ++i) {
        int q = (t + i) % kNumQueries;
        PrepareResult prepared = engine.Prepare(queries[q], prepare_options);
        if (!prepared.ok()) {
          failures.fetch_add(1);
          continue;
        }
        ExecuteRequest request;
        request.num_threads = i % 3 == 0 ? 2 : 1;
        ExecuteResult result = engine.Execute(*prepared.query, request);
        size_t v = static_cast<size_t>(result.snapshot_version);
        if (v < 1 || v > static_cast<size_t>(kNumBatches) + 1 ||
            result.answers != expected[v - 1][q]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  updater.join();
  for (std::thread& thread : executors) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles: every query on the final snapshot agrees with
  // its fresh single-shot run.
  EXPECT_EQ(engine.snapshot_version(), static_cast<uint64_t>(kNumBatches) + 1);
  for (int q = 0; q < kNumQueries; ++q) {
    Status status;
    ExecuteResult result = engine.Query(queries[q], ExecuteRequest{}, &status,
                                        prepare_options);
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(result.answers, expected[kNumBatches][q]) << kWords[q];
  }
  PlanCache::Stats stats = engine.cache_stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
}

// Regression for a data race in Engine::Prepare: the auto-kind profiling
// pass (ProfileOmq) used to run before `prepare_mutex_` was taken, reading
// the RewritingContext's interned word table while a concurrent cache-miss
// rewrite grew it.  With N threads preparing disjoint fresh queries, every
// Prepare is a miss whose rewrite mutates the shared context while every
// other thread's profiler reads it.  Run under ThreadSanitizer (`ctest -L
// sanitize`) this pins the fix: profiling holds `ctx_mutex_` shared,
// rewrites hold it exclusive.
TEST(EngineConcurrencyTest, ConcurrentAutoKindPrepareIsRaceFree) {
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 6;

  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  DataInstance base =
      GenerateDataset(&vocab, *tbox, DatasetConfig{"c", 30, 0.1, 0.12, 3});

  // A distinct word per (thread, query): the binary digits of a unique
  // integer spelled in R/S.  All interned up front — the Vocabulary is not
  // thread-safe — and pairwise distinct, so no thread ever gets a plan
  // cache hit and every Prepare races a rewrite against the profilers.
  std::vector<std::vector<ConjunctiveQuery>> queries(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kQueriesPerThread; ++i) {
      std::string word;
      for (int code = t * kQueriesPerThread + i + 2; code > 0; code >>= 1) {
        word += (code & 1) ? 'S' : 'R';
      }
      queries[t].push_back(SequenceQuery(&vocab, word));
    }
  }

  EngineOptions engine_options;
  engine_options.plan_cache_capacity =
      static_cast<size_t>(kThreads * kQueriesPerThread);
  Engine engine(*tbox, base, nullptr, engine_options);

  PrepareOptions prepare_options;  // auto_kind on: every miss profiles.
  ASSERT_TRUE(prepare_options.auto_kind);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const ConjunctiveQuery& query : queries[t]) {
        PrepareResult prepared = engine.Prepare(query, prepare_options);
        if (!prepared.ok()) {
          failures.fetch_add(1);
          continue;
        }
        ExecuteResult result =
            engine.Execute(*prepared.query, ExecuteRequest{});
        if (!result.status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Disjoint queries: every Prepare was a miss, none a hit.
  PlanCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, static_cast<long>(kThreads * kQueriesPerThread));
  EXPECT_EQ(stats.hits, 0);
}

}  // namespace
}  // namespace owlqr
