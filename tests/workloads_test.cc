#include <gtest/gtest.h>

#include "cq/gaifman.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

TEST(WorkloadsTest, SequencesMatchThePaper) {
  EXPECT_STREQ(kSequence1, "RRSRSRSRRSRRSSR");
  EXPECT_STREQ(kSequence2, "SRRRRRSRSRRRRRR");
  EXPECT_STREQ(kSequence3, "SRRSSRSRSRRSRRS");
  EXPECT_EQ(std::string(kSequence1).size(), 15u);
}

TEST(WorkloadsTest, SequenceQueryShape) {
  Vocabulary vocab;
  for (int len = 1; len <= 15; ++len) {
    ConjunctiveQuery q = SequenceQuery(&vocab, std::string(kSequence1, len));
    EXPECT_EQ(q.atoms().size(), static_cast<size_t>(len));
    EXPECT_EQ(q.num_vars(), len + 1);
    EXPECT_EQ(q.answer_vars().size(), 2u);
    GaifmanGraph g(q);
    EXPECT_TRUE(g.IsLinear());
  }
}

TEST(WorkloadsTest, DatasetGenerationIsDeterministic) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  auto configs = Table2Configs(0.05);
  DataInstance d1 = GenerateDataset(&vocab, *tbox, configs[0]);
  DataInstance d2 = GenerateDataset(&vocab, *tbox, configs[0]);
  EXPECT_EQ(d1.NumAtoms(), d2.NumAtoms());
  EXPECT_EQ(d1.num_individuals(), d2.num_individuals());
}

TEST(WorkloadsTest, DatasetStatisticsMatchConfig) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  auto configs = Table2Configs(/*scale=*/0.2);
  // Dataset 1 scaled: V = 200 with average degree ~50 preserved.
  const DatasetConfig& c = configs[0];
  EXPECT_EQ(c.num_vertices, 200);
  DataInstance data = GenerateDataset(&vocab, *tbox, c);
  EXPECT_EQ(data.num_individuals(), 200);
  long edges = static_cast<long>(
      data.RolePairs(vocab.FindPredicate("R")).size());
  double degree = static_cast<double>(edges) / data.num_individuals();
  EXPECT_GT(degree, 35.0);
  EXPECT_LT(degree, 55.0);
  // Witness-triggering labels present.
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  EXPECT_FALSE(data.ConceptMembers(a_p).empty());
  // No S or P edges: the paper's datasets only contain R.
  EXPECT_TRUE(data.RolePairs(vocab.FindPredicate("S")).empty());
  EXPECT_TRUE(data.RolePairs(vocab.FindPredicate("P")).empty());
}

TEST(WorkloadsTest, FullScaleConfigsMatchTable2) {
  auto configs = Table2Configs(1.0);
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].num_vertices, 1000);
  EXPECT_DOUBLE_EQ(configs[0].edge_probability, 0.050);
  EXPECT_DOUBLE_EQ(configs[0].label_probability, 0.050);
  EXPECT_EQ(configs[3].num_vertices, 20000);
  EXPECT_DOUBLE_EQ(configs[3].edge_probability, 0.002);
  EXPECT_DOUBLE_EQ(configs[3].label_probability, 0.010);
}

}  // namespace
}  // namespace owlqr
