// Pins the exact clause counts of all six rewritings on the Figure 2 /
// Table 1 workload (sequence 1).  These are the headline numbers of
// EXPERIMENTS.md; any change to a rewriter that silently alters its output
// shape shows up here first.

#include <gtest/gtest.h>

#include "core/rewriters.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

TEST(Fig2RegressionTest, Sequence1ClauseCounts) {
  // Rows: prefix lengths 1..15; columns: UCQ, PrestoLike, Lin, Log, Tw, Tw*.
  const int kExpected[15][6] = {
      {1, 1, 3, 1, 1, 1},          {1, 1, 4, 2, 3, 1},
      {2, 6, 7, 5, 6, 3},          {3, 12, 10, 8, 9, 4},
      {5, 25, 13, 12, 12, 6},      {8, 48, 16, 17, 16, 8},
      {13, 91, 19, 20, 21, 13},    {21, 168, 22, 23, 26, 18},
      {21, 189, 23, 27, 30, 22},   {42, 420, 26, 32, 33, 22},
      {63, 693, 29, 35, 34, 22},   {63, 756, 30, 37, 42, 31},
      {126, 1638, 33, 47, 49, 34}, {126, 1764, 34, 47, 53, 40},
      {252, 3780, 37, 46, 51, 36},
  };
  const RewriterKind kKinds[6] = {
      RewriterKind::kUcq, RewriterKind::kPrestoLike, RewriterKind::kLin,
      RewriterKind::kLog, RewriterKind::kTw,          RewriterKind::kTwStar};

  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  for (int length = 1; length <= 15; ++length) {
    ConjunctiveQuery query =
        SequenceQuery(&vocab, std::string(kSequence1, length));
    for (int k = 0; k < 6; ++k) {
      RewriteResult program_rw = RewriteOmqOrError(&ctx, query, kKinds[k]);
      OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
      NdlProgram program = std::move(program_rw.program);
      EXPECT_EQ(program.num_clauses(), kExpected[length - 1][k])
          << "len " << length << " " << RewriterName(kKinds[k]);
    }
  }
}

}  // namespace
}  // namespace owlqr
