#include <gtest/gtest.h>

#include "chase/canonical_model.h"
#include "chase/certain_answers.h"
#include "chase/homomorphism.h"
#include "data/completion.h"
#include "ontology/word_graph.h"

namespace owlqr {
namespace {

struct Scenario {
  Vocabulary vocab;
  TBox tbox{&vocab};
};

// Example 11 ontology.
void BuildExample11(Scenario* s) {
  int p = s->vocab.InternPredicate("P");
  int r = s->vocab.InternPredicate("R");
  int ss = s->vocab.InternPredicate("S");
  s->tbox.AddRoleInclusion(RoleOf(p), RoleOf(ss));
  s->tbox.AddRoleInclusion(RoleOf(p), RoleOf(r, true));
  s->tbox.Normalize();
}

TEST(CompletionTest, RoleAndExistentialConsequences) {
  Scenario s;
  BuildExample11(&s);
  Saturation sat(s.tbox);
  DataInstance data(&s.vocab);
  data.Assert("P", "a", "b");
  DataInstance completed = CompleteInstance(data, s.tbox, sat);
  int p = s.vocab.FindPredicate("P");
  int r = s.vocab.FindPredicate("R");
  int ss = s.vocab.FindPredicate("S");
  int a = s.vocab.FindIndividual("a");
  int b = s.vocab.FindIndividual("b");
  EXPECT_TRUE(completed.HasRoleAssertion(p, a, b));
  EXPECT_TRUE(completed.HasRoleAssertion(ss, a, b));
  EXPECT_TRUE(completed.HasRoleAssertion(r, b, a));
  EXPECT_FALSE(completed.HasRoleAssertion(r, a, b));
  // Existential concepts: A[P](a), A[P-](b), A[S](a), A[R](b), ...
  EXPECT_TRUE(completed.HasConceptAssertion(
      s.tbox.ExistsConcept(RoleOf(p)), a));
  EXPECT_TRUE(completed.HasConceptAssertion(
      s.tbox.ExistsConcept(RoleOf(p, true)), b));
  EXPECT_TRUE(completed.HasConceptAssertion(
      s.tbox.ExistsConcept(RoleOf(ss)), a));
  EXPECT_TRUE(completed.HasConceptAssertion(
      s.tbox.ExistsConcept(RoleOf(r)), b));
  EXPECT_FALSE(completed.HasConceptAssertion(
      s.tbox.ExistsConcept(RoleOf(p)), b));
  EXPECT_TRUE(IsComplete(completed, s.tbox, sat));
  EXPECT_FALSE(IsComplete(data, s.tbox, sat));
}

TEST(CompletionTest, AtomicHierarchy) {
  Scenario s;
  s.tbox.AddAtomicInclusion("Manager", "Employee");
  s.tbox.AddAtomicInclusion("Employee", "Person");
  s.tbox.Normalize();
  Saturation sat(s.tbox);
  DataInstance data(&s.vocab);
  data.Assert("Manager", "m");
  DataInstance completed = CompleteInstance(data, s.tbox, sat);
  int m = s.vocab.FindIndividual("m");
  EXPECT_TRUE(completed.HasConceptAssertion(s.vocab.FindConcept("Person"), m));
  EXPECT_TRUE(
      completed.HasConceptAssertion(s.vocab.FindConcept("Employee"), m));
}

TEST(CompletionTest, Reflexivity) {
  Scenario s;
  int p = s.vocab.InternPredicate("Knows");
  s.tbox.AddReflexivity(RoleOf(p));
  s.tbox.Normalize();
  Saturation sat(s.tbox);
  DataInstance data(&s.vocab);
  data.Assert("A", "a");
  DataInstance completed = CompleteInstance(data, s.tbox, sat);
  int a = s.vocab.FindIndividual("a");
  EXPECT_TRUE(completed.HasRoleAssertion(p, a, a));
}

TEST(CanonicalModelTest, Example11TreeShape) {
  Scenario s;
  BuildExample11(&s);
  Saturation sat(s.tbox);
  WordGraph graph(s.tbox, sat);
  DataInstance data(&s.vocab);
  // A[P](a): a has an anonymous P-successor.
  int a_p = s.tbox.ExistsConcept(RoleOf(s.vocab.FindPredicate("P")));
  int a = data.AddIndividual("a");
  data.AddConceptAssertion(a_p, a);

  CanonicalModel model(s.tbox, sat, graph, data, /*max_depth=*/3);
  int ea = model.ElementOfIndividual(a);
  ASSERT_GE(ea, 0);
  // Depth 1: the paper's chase creates a witness for every *entailed*
  // existential, so A[P](a) yields the nulls a.P, a.S (A[P] <= exists S) and
  // a.R- (A[P] <= exists R-).
  ASSERT_EQ(model.Children(ea).size(), 3u);
  RoleId p = RoleOf(s.vocab.FindPredicate("P"));
  RoleId r = RoleOf(s.vocab.FindPredicate("R"));
  RoleId ss = RoleOf(s.vocab.FindPredicate("S"));
  int null_ap = -1;
  for (int child : model.Children(ea)) {
    if (model.element(child).last_role == p) null_ap = child;
  }
  ASSERT_GE(null_ap, 0);
  EXPECT_FALSE(model.IsIndividual(null_ap));
  // P(a, aP), S(a, aP), R(aP, a).
  EXPECT_TRUE(model.HasRole(p, ea, null_ap));
  EXPECT_TRUE(model.HasRole(ss, ea, null_ap));
  EXPECT_TRUE(model.HasRole(r, null_ap, ea));
  EXPECT_FALSE(model.HasRole(r, ea, null_ap));
  // Depth 1 ontology: the null has no children.
  EXPECT_TRUE(model.Children(null_ap).empty());
  // Concept membership at the null: A[P-] holds (it is a P-successor).
  EXPECT_TRUE(model.HasConcept(null_ap,
                               s.tbox.ExistsConcept(Inverse(p))));
  EXPECT_FALSE(model.HasConcept(null_ap, a_p));
  // RoleSuccessors from a via S: a.P (P <= S) and a.S.
  auto s_succ = model.RoleSuccessors(ss, ea);
  EXPECT_EQ(s_succ.size(), 2u);
  EXPECT_TRUE(std::find(s_succ.begin(), s_succ.end(), null_ap) != s_succ.end());
  // Via R-: a.P (P <= R-) and a.R-.
  auto r_succ = model.RoleSuccessors(Inverse(r), ea);
  EXPECT_EQ(r_succ.size(), 2u);
  EXPECT_TRUE(std::find(r_succ.begin(), r_succ.end(), null_ap) != r_succ.end());
}

TEST(CanonicalModelTest, InfiniteDepthTruncated) {
  Scenario s;
  RoleId p = RoleOf(s.vocab.InternPredicate("P"));
  s.tbox.AddExistsRhs("A", "P");
  s.tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(p)),
                             BasicConcept::Exists(p));
  s.tbox.Normalize();
  Saturation sat(s.tbox);
  WordGraph graph(s.tbox, sat);
  EXPECT_EQ(graph.depth(), WordGraph::kInfiniteDepth);

  DataInstance data(&s.vocab);
  data.Assert("A", "a");
  CanonicalModel model(s.tbox, sat, graph, data, /*max_depth=*/4);
  // A chain a -> aP -> aPP -> ... of length 4.
  int e = model.ElementOfIndividual(s.vocab.FindIndividual("a"));
  for (int depth = 1; depth <= 4; ++depth) {
    ASSERT_EQ(model.Children(e).size(), 1u) << "depth " << depth;
    e = model.Children(e)[0];
    EXPECT_EQ(model.element(e).depth, depth);
  }
  EXPECT_TRUE(model.Children(e).empty());
}

TEST(HomomorphismTest, LinearQueryOverData) {
  Scenario s;
  BuildExample11(&s);
  Saturation sat(s.tbox);
  WordGraph graph(s.tbox, sat);
  DataInstance data(&s.vocab);
  data.Assert("R", "a", "b");
  data.Assert("S", "b", "c");
  CanonicalModel model(s.tbox, sat, graph, data, 2);

  ConjunctiveQuery q(&s.vocab);
  q.AddBinary("R", "x", "y");
  q.AddBinary("S", "y", "z");
  q.MarkAnswerVariable(q.FindVariable("x"));
  q.MarkAnswerVariable(q.FindVariable("z"));
  HomomorphismSearch search(q, model);
  auto answers = search.AllAnswers();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], s.vocab.FindIndividual("a"));
  EXPECT_EQ(answers[0][1], s.vocab.FindIndividual("c"));
}

TEST(HomomorphismTest, MatchIntoAnonymousPart) {
  Scenario s;
  BuildExample11(&s);
  Saturation sat(s.tbox);
  WordGraph graph(s.tbox, sat);
  DataInstance data(&s.vocab);
  data.Assert("P", "a", "b");  // Gives A[P](a): anonymous P-successor too.

  CanonicalModel model(s.tbox, sat, graph, data, 3);
  // q(x) = exists y, z: S(x, y) & R(y, x): satisfied with y -> a.P.
  ConjunctiveQuery q(&s.vocab);
  q.AddBinary("S", "x", "y");
  q.AddBinary("R", "y", "x");
  q.MarkAnswerVariable(q.FindVariable("x"));
  HomomorphismSearch search(q, model);
  auto answers = search.AllAnswers();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], s.vocab.FindIndividual("a"));
}

TEST(CertainAnswersTest, BooleanQueryWithExistentials) {
  Scenario s;
  s.tbox.AddExistsRhs("Professor", "teaches");
  s.tbox.AddExistsLhs("teaches", "Course", true);
  s.tbox.Normalize();
  DataInstance data(&s.vocab);
  data.Assert("Professor", "ann");

  // exists x, y: teaches(x, y) & Course(y).
  ConjunctiveQuery q(&s.vocab);
  q.AddBinary("teaches", "x", "y");
  q.AddUnary("Course", "y");
  auto result = ComputeCertainAnswers(s.tbox, q, data);
  ASSERT_TRUE(result.consistent);
  ASSERT_EQ(result.answers.size(), 1u);  // Boolean "yes".

  // With an answer variable x, the certain answer is ann.
  ConjunctiveQuery q2(&s.vocab);
  q2.AddBinary("teaches", "x", "y");
  q2.AddUnary("Course", "y");
  q2.MarkAnswerVariable(q2.FindVariable("x"));
  auto result2 = ComputeCertainAnswers(s.tbox, q2, data);
  ASSERT_EQ(result2.answers.size(), 1u);
  EXPECT_EQ(result2.answers[0][0], s.vocab.FindIndividual("ann"));
  EXPECT_TRUE(IsCertainAnswer(s.tbox, q2, data,
                              {s.vocab.FindIndividual("ann")}));

  // But y has no certain binding (it is a labelled null).
  ConjunctiveQuery q3(&s.vocab);
  q3.AddBinary("teaches", "x", "y");
  q3.MarkAnswerVariable(q3.FindVariable("y"));
  auto result3 = ComputeCertainAnswers(s.tbox, q3, data);
  EXPECT_TRUE(result3.answers.empty());
}

TEST(CertainAnswersTest, InfiniteDepthOntology) {
  Scenario s;
  RoleId p = RoleOf(s.vocab.InternPredicate("P"));
  s.tbox.AddExistsRhs("A", "P");
  s.tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(p)),
                             BasicConcept::Exists(p));
  s.tbox.Normalize();
  DataInstance data(&s.vocab);
  data.Assert("A", "a");
  // A P-chain of any fixed length is certain.
  ConjunctiveQuery q(&s.vocab);
  q.AddBinary("P", "x0", "x1");
  q.AddBinary("P", "x1", "x2");
  q.AddBinary("P", "x2", "x3");
  q.AddBinary("P", "x3", "x4");
  q.MarkAnswerVariable(q.FindVariable("x0"));
  auto result = ComputeCertainAnswers(s.tbox, q, data);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0][0], s.vocab.FindIndividual("a"));
}

TEST(ConsistencyTest, DisjointnessViolations) {
  Scenario s;
  int male = s.vocab.InternConcept("Male");
  int female = s.vocab.InternConcept("Female");
  s.tbox.AddConceptDisjointness(BasicConcept::Atomic(male),
                                BasicConcept::Atomic(female));
  s.tbox.Normalize();
  DataInstance ok(&s.vocab);
  ok.Assert("Male", "a");
  ok.Assert("Female", "b");
  EXPECT_TRUE(IsConsistent(s.tbox, ok));

  DataInstance bad(&s.vocab);
  bad.Assert("Male", "a");
  bad.Assert("Female", "a");
  EXPECT_FALSE(IsConsistent(s.tbox, bad));
}

TEST(ConsistencyTest, DerivedClash) {
  Scenario s;
  // Dog <= Animal, disjoint(Animal, Plant); Dog+Plant clashes indirectly.
  s.tbox.AddAtomicInclusion("Dog", "Animal");
  s.tbox.AddConceptDisjointness(
      BasicConcept::Atomic(s.vocab.InternConcept("Animal")),
      BasicConcept::Atomic(s.vocab.InternConcept("Plant")));
  s.tbox.Normalize();
  DataInstance bad(&s.vocab);
  bad.Assert("Dog", "x");
  bad.Assert("Plant", "x");
  EXPECT_FALSE(IsConsistent(s.tbox, bad));
}

TEST(ConsistencyTest, IrreflexivityAndRoleDisjointness) {
  Scenario s;
  int p = s.vocab.InternPredicate("P");
  int q = s.vocab.InternPredicate("Q");
  s.tbox.AddIrreflexivity(RoleOf(p));
  s.tbox.AddRoleDisjointness(RoleOf(p), RoleOf(q));
  s.tbox.Normalize();
  DataInstance ok(&s.vocab);
  ok.Assert("P", "a", "b");
  ok.Assert("Q", "b", "a");
  EXPECT_TRUE(IsConsistent(s.tbox, ok));

  DataInstance loop(&s.vocab);
  loop.Assert("P", "a", "a");
  EXPECT_FALSE(IsConsistent(s.tbox, loop));

  DataInstance overlap(&s.vocab);
  overlap.Assert("P", "a", "b");
  overlap.Assert("Q", "a", "b");
  EXPECT_FALSE(IsConsistent(s.tbox, overlap));
}

}  // namespace
}  // namespace owlqr

namespace owlqr {
namespace {

TEST(CanonicalModelTest, RepresentativeNullsOnePerLetter) {
  // Depth-3 chain: letters P1, P2, P3 at depths 1, 2, 3.
  Vocabulary vocab;
  TBox tbox(&vocab);
  tbox.AddExistsRhs("A", "P1");
  tbox.AddConceptInclusion(
      BasicConcept::Exists(RoleOf(vocab.FindPredicate("P1"), true)),
      BasicConcept::Exists(RoleOf(vocab.InternPredicate("P2"))));
  tbox.AddConceptInclusion(
      BasicConcept::Exists(RoleOf(vocab.FindPredicate("P2"), true)),
      BasicConcept::Exists(RoleOf(vocab.InternPredicate("P3"))));
  tbox.Normalize();
  Saturation sat(tbox);
  WordGraph graph(tbox, sat);
  DataInstance data(&vocab);
  data.Assert("A", "a");
  data.Assert("A", "b");  // Two individuals; representatives stay one/letter.
  CanonicalModel model(tbox, sat, graph, data, 10);
  std::set<RoleId> letters;
  int max_depth = 0;
  for (int e : model.RepresentativeNulls()) {
    EXPECT_TRUE(letters.insert(model.element(e).last_role).second)
        << "duplicate letter representative";
    max_depth = std::max(max_depth, model.element(e).depth);
  }
  EXPECT_EQ(letters.size(), 3u);  // P1, P2, P3 (inverses are not generated).
  EXPECT_LE(max_depth, 3);        // Each at its shallowest occurrence.
}

}  // namespace
}  // namespace owlqr
