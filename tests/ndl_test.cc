#include <gtest/gtest.h>

#include "data/data_instance.h"
#include "ndl/evaluator.h"
#include "ndl/program.h"

namespace owlqr {
namespace {

TEST(NdlProgramTest, PredicateInterning) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int g1 = program.AddIdbPredicate("G", 2);
  int g2 = program.AddIdbPredicate("G", 2);
  EXPECT_EQ(g1, g2);
  int c = vocab.InternConcept("A");
  EXPECT_EQ(program.AddConceptPredicate(c), program.AddConceptPredicate(c));
  int p = vocab.InternPredicate("P");
  EXPECT_EQ(program.AddRolePredicate(p), program.AddRolePredicate(p));
  EXPECT_EQ(program.EqualityPredicate(), program.EqualityPredicate());
}

// G(x, y) <- R(x, z) & H(z, y);  H(x, y) <- R(x, y).
NdlProgram ChainProgram(Vocabulary* vocab) {
  NdlProgram program(vocab);
  int r = program.AddRolePredicate(vocab->InternPredicate("R"));
  int h = program.AddIdbPredicate("H", 2);
  int g = program.AddIdbPredicate("G", 2);
  {
    NdlClause c;
    c.head = {h, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  {
    NdlClause c;
    c.head = {g, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
    c.body.push_back({h, {Term::Var(2), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  return program;
}

TEST(NdlProgramTest, Analysis) {
  Vocabulary vocab;
  NdlProgram program = ChainProgram(&vocab);
  EXPECT_TRUE(program.IsNonrecursive());
  EXPECT_TRUE(program.IsLinear());
  EXPECT_TRUE(program.IsSkinny());
  EXPECT_EQ(program.Depth(), 2);
  auto order = program.TopologicalOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(program.predicate(order[0]).name, "H");
  EXPECT_EQ(program.predicate(order[1]).name, "G");
}

TEST(NdlProgramTest, RecursionDetected) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int g = program.AddIdbPredicate("G", 1);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};
  c.body.push_back({g, {Term::Var(0)}});
  program.AddClause(std::move(c));
  EXPECT_FALSE(program.IsNonrecursive());
}

TEST(NdlProgramTest, WidthWithParameters) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int q = program.AddIdbPredicate("Q", 1);
  int g = program.AddIdbPredicate("G", 1);
  program.mutable_predicate(q).parameter_positions = {true};
  program.mutable_predicate(g).parameter_positions = {true};
  // Example 1 of the paper: G(x) <- R(x,y) & Q(x); Q(x) <- R(y,x).
  {
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    c.body.push_back({q, {Term::Var(0)}});
    program.AddClause(std::move(c));
  }
  {
    NdlClause c;
    c.head = {q, {Term::Var(0)}};
    c.body.push_back({r, {Term::Var(1), Term::Var(0)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  // x is a parameter in both clauses; the only non-parameter variable is y.
  EXPECT_EQ(program.Width(), 1);
}

TEST(EvaluatorTest, ChainJoin) {
  Vocabulary vocab;
  NdlProgram program = ChainProgram(&vocab);
  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("R", "b", "c");
  data.Assert("R", "c", "d");
  Evaluator eval(program, data);
  EvaluationStats stats;
  auto answers = eval.Evaluate(&stats);
  // Paths of length 2: (a,c), (b,d).
  ASSERT_EQ(answers.size(), 2u);
  int a = vocab.FindIndividual("a"), b = vocab.FindIndividual("b");
  int c = vocab.FindIndividual("c"), d = vocab.FindIndividual("d");
  std::vector<std::vector<int>> expected = {{a, c}, {b, d}};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(answers, expected);
  EXPECT_EQ(stats.goal_tuples, 2);
  EXPECT_EQ(stats.generated_tuples, 3 + 2);  // |H| + |G|.
  EXPECT_EQ(stats.predicates_evaluated, 2);
}

TEST(EvaluatorTest, EqualityBindsVariables) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int a_pred = program.AddConceptPredicate(vocab.InternConcept("A"));
  int eq = program.EqualityPredicate();
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({a_pred, {Term::Var(0)}});
  c.body.push_back({eq, {Term::Var(0), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  DataInstance data(&vocab);
  data.Assert("A", "a");
  data.Assert("A", "b");
  Evaluator eval(program, data);
  auto answers = eval.Evaluate();
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0][0], answers[0][1]);
}

TEST(EvaluatorTest, AdomEnumerates) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int adom = program.AdomPredicate();
  int g = program.AddIdbPredicate("G", 1);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};
  c.body.push_back({adom, {Term::Var(0)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  DataInstance data(&vocab);
  data.Assert("A", "a");
  data.Assert("R", "b", "c");
  Evaluator eval(program, data);
  EXPECT_EQ(eval.Evaluate().size(), 3u);
}

TEST(EvaluatorTest, ConstantsInBody) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 1);
  int b_ind = vocab.InternIndividual("b");
  NdlClause c;
  c.head = {g, {Term::Var(0)}};
  c.body.push_back({r, {Term::Var(0), Term::Const(b_ind)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("R", "c", "d");
  Evaluator eval(program, data);
  auto answers = eval.Evaluate();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], vocab.FindIndividual("a"));
}

TEST(EvaluatorTest, RepeatedVariableInAtom) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 1);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};
  c.body.push_back({r, {Term::Var(0), Term::Var(0)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  DataInstance data(&vocab);
  data.Assert("R", "a", "a");
  data.Assert("R", "a", "b");
  Evaluator eval(program, data);
  auto answers = eval.Evaluate();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], vocab.FindIndividual("a"));
}

TEST(EvaluatorTest, DisjunctionAcrossClauses) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int a_pred = program.AddConceptPredicate(vocab.InternConcept("A"));
  int b_pred = program.AddConceptPredicate(vocab.InternConcept("B"));
  int g = program.AddIdbPredicate("G", 1);
  for (int pred : {a_pred, b_pred}) {
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({pred, {Term::Var(0)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);

  DataInstance data(&vocab);
  data.Assert("A", "a");
  data.Assert("B", "b");
  data.Assert("A", "c");
  data.Assert("B", "c");
  Evaluator eval(program, data);
  EXPECT_EQ(eval.Evaluate().size(), 3u);  // Deduplicated.
}

TEST(EvaluatorTest, ZeroAryGoal) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int a_pred = program.AddConceptPredicate(vocab.InternConcept("A"));
  int g = program.AddIdbPredicate("G", 0);
  NdlClause c;
  c.head = {g, {}};
  c.body.push_back({a_pred, {Term::Var(0)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  DataInstance empty(&vocab);
  EXPECT_TRUE(Evaluator(program, empty).Evaluate().empty());

  DataInstance data(&vocab);
  data.Assert("A", "a");
  auto answers = Evaluator(program, data).Evaluate();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].empty());
}

}  // namespace
}  // namespace owlqr
