#include "server/api.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "server/registry.h"
#include "store/fs.h"
#include "util/json.h"
#include "util/status.h"

namespace owlqr {
namespace {

// The quickstart ontology/data pair every serving test reuses.
constexpr char kOntology[] = R"(
    Professor SUB EX teaches
    EX teaches- SUB Course
    lectures SUBR teaches
    Dean SUB Professor
)";
constexpr char kData[] = R"(
    Professor(ann).
    Dean(dana).
    lectures(bob, algebra).
)";
constexpr char kQuery[] = "q(x) :- teaches(x, y), Course(y)";

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(text, &value, &error))
      << error << " in: " << text;
  return value;
}

// ---------------------------------------------------------------------------
// The Status <-> HTTP table.
// ---------------------------------------------------------------------------

TEST(StatusHttpMappingTest, TableDrivenForward) {
  const struct {
    StatusCode code;
    int http;
  } kTable[] = {
      {StatusCode::kOk, 200},
      {StatusCode::kInvalidArgument, 400},
      {StatusCode::kNotFound, 404},
      {StatusCode::kUnsupportedShape, 422},
      {StatusCode::kRejected, 429},
      {StatusCode::kCancelled, 499},
      {StatusCode::kMemoryExceeded, 503},
      {StatusCode::kDeadlineExceeded, 504},
  };
  for (const auto& row : kTable) {
    EXPECT_EQ(api::HttpStatusFor(row.code), row.http)
        << StatusCodeName(row.code);
    // The inverse of every row in the table is exact.
    EXPECT_EQ(api::StatusCodeForHttp(row.http), row.code) << row.http;
    EXPECT_STRNE(api::HttpReasonPhrase(row.http), "") << row.http;
  }
  // kDataLoss encodes to 500, but the inverse is deliberately NOT exact: a
  // bare 500 is any internal server error, and decoding it as durable-state
  // data loss would mislead callers that branch on the code.  A real
  // kDataLoss still round-trips through the error envelope's code name.
  EXPECT_EQ(api::HttpStatusFor(StatusCode::kDataLoss), 500);
  EXPECT_STRNE(api::HttpReasonPhrase(500), "");
  EXPECT_EQ(api::StatusCodeForHttp(500), StatusCode::kRejected);
  JsonValue body = MustParse(api::ErrorBody(Status::DataLoss("log torn")));
  Status parsed;
  ASSERT_TRUE(api::ParseErrorBody(body, &parsed));
  EXPECT_EQ(parsed.code(), StatusCode::kDataLoss);
  EXPECT_EQ(body.Find("error")->Find("http")->AsLong(), 500);
}

TEST(StatusHttpMappingTest, UnknownCodesMapConservatively) {
  // Unknown 4xx: the request was wrong, retrying as-is cannot help.
  EXPECT_EQ(api::StatusCodeForHttp(405), StatusCode::kInvalidArgument);
  EXPECT_EQ(api::StatusCodeForHttp(431), StatusCode::kInvalidArgument);
  // Anything else: treat as retryable-with-backoff.
  EXPECT_EQ(api::StatusCodeForHttp(502), StatusCode::kRejected);
}

TEST(StatusHttpMappingTest, ErrorBodyRoundTrips) {
  Status original = Status::Rejected("queue full; back off");
  JsonValue body = MustParse(api::ErrorBody(original));
  Status parsed;
  ASSERT_TRUE(api::ParseErrorBody(body, &parsed));
  EXPECT_EQ(parsed.code(), StatusCode::kRejected);
  EXPECT_EQ(parsed.message(), "queue full; back off");
  EXPECT_EQ(body.Find("error")->Find("http")->AsLong(), 429);

  // A non-envelope body is recognised as such, not misparsed.
  Status ignored;
  EXPECT_FALSE(api::ParseErrorBody(MustParse("{\"answers\": []}"), &ignored));
}

// ---------------------------------------------------------------------------
// Codec round trips, one per verb body.
// ---------------------------------------------------------------------------

TEST(WireCodecTest, ExecuteRequestRoundTripsEveryField) {
  api::WireExecuteRequest original;
  original.query = kQuery;
  original.rewriter = "twstar";
  original.complete_instances = true;
  original.exec.num_threads = 4;
  original.exec.incremental = true;
  original.exec.queue_timeout_ms = 250;
  original.exec.limits.max_generated_tuples = 1000;
  original.exec.limits.max_work = 50000;
  original.exec.limits.deadline_ms = 750;
  original.exec.limits.morsel_rows = 512;
  original.exec.limits.batch_rows = 256;

  api::WireExecuteRequest decoded;
  ASSERT_TRUE(api::ExecuteRequestFromJson(
                  MustParse(api::ExecuteRequestToJson(original)), &decoded)
                  .ok());
  EXPECT_EQ(decoded.query, original.query);
  EXPECT_EQ(decoded.rewriter, original.rewriter);
  EXPECT_EQ(decoded.complete_instances, original.complete_instances);
  EXPECT_EQ(decoded.exec.num_threads, 4);
  EXPECT_TRUE(decoded.exec.incremental);
  EXPECT_EQ(decoded.exec.queue_timeout_ms, 250);
  EXPECT_EQ(decoded.exec.limits.max_generated_tuples, 1000);
  EXPECT_EQ(decoded.exec.limits.max_work, 50000);
  EXPECT_EQ(decoded.exec.limits.deadline_ms, 750);
  EXPECT_EQ(decoded.exec.limits.morsel_rows, 512);
  EXPECT_EQ(decoded.exec.limits.batch_rows, 256);
}

TEST(WireCodecTest, ExecuteRequestDefaultsEverythingButQuery) {
  api::WireExecuteRequest decoded;
  ASSERT_TRUE(api::ExecuteRequestFromJson(
                  MustParse("{\"query\": \"q(x) :- A(x)\"}"), &decoded)
                  .ok());
  EXPECT_EQ(decoded.rewriter, "auto");
  EXPECT_FALSE(decoded.complete_instances);
  EXPECT_EQ(decoded.exec.num_threads, 1);
  EXPECT_EQ(decoded.exec.queue_timeout_ms, -1);
}

TEST(WireCodecTest, ExecuteRequestRejectsMissingOrMistypedFields) {
  api::WireExecuteRequest decoded;
  Status s = api::ExecuteRequestFromJson(MustParse("{}"), &decoded);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("query"), std::string::npos);

  s = api::ExecuteRequestFromJson(
      MustParse("{\"query\": \"q(x) :- A(x)\", \"num_threads\": \"four\"}"),
      &decoded);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("num_threads"), std::string::npos);
}

TEST(WireCodecTest, ExecuteResultRoundTrips) {
  api::WireExecuteResult original;
  original.status = Status::DeadlineExceeded("out of time");
  original.answers = {{"ann"}, {"bob", "algebra"}};
  original.snapshot_version = 7;
  original.partial = true;
  original.degraded = true;
  original.incremental = false;
  original.cached = true;
  original.coalesced = true;
  original.goal_tuples = 2;
  original.generated_tuples = 17;
  original.join_emissions = 30;

  api::WireExecuteResult decoded;
  ASSERT_TRUE(api::ExecuteResultFromJson(
                  MustParse(api::ExecuteResultToJson(original)), &decoded)
                  .ok());
  EXPECT_EQ(decoded.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded.status.message(), "out of time");
  EXPECT_EQ(decoded.answers, original.answers);
  EXPECT_EQ(decoded.snapshot_version, 7u);
  EXPECT_TRUE(decoded.partial);
  EXPECT_TRUE(decoded.degraded);
  EXPECT_FALSE(decoded.incremental);
  EXPECT_TRUE(decoded.cached);
  EXPECT_TRUE(decoded.coalesced);
  EXPECT_EQ(decoded.goal_tuples, 2);
  EXPECT_EQ(decoded.generated_tuples, 17);
  EXPECT_EQ(decoded.join_emissions, 30);
}

TEST(WireCodecTest, FactBatchRoundTrips) {
  api::WireFactBatch original;
  original.concepts.push_back({"Professor", "carol"});
  original.concepts.push_back({"Dean", "drew"});
  original.roles.push_back({"lectures", "carol", "logic"});

  api::WireFactBatch decoded;
  ASSERT_TRUE(
      api::FactBatchFromJson(MustParse(api::FactBatchToJson(original)),
                             &decoded)
          .ok());
  ASSERT_EQ(decoded.concepts.size(), 2u);
  EXPECT_EQ(decoded.concepts[0].concept_name, "Professor");
  EXPECT_EQ(decoded.concepts[0].individual, "carol");
  EXPECT_EQ(decoded.concepts[1].concept_name, "Dean");
  ASSERT_EQ(decoded.roles.size(), 1u);
  EXPECT_EQ(decoded.roles[0].role, "lectures");
  EXPECT_EQ(decoded.roles[0].subject, "carol");
  EXPECT_EQ(decoded.roles[0].object, "logic");
}

TEST(WireCodecTest, FactBatchRejectsMistypedMembers) {
  api::WireFactBatch decoded;
  Status s = api::FactBatchFromJson(
      MustParse("{\"concepts\": [{\"concept\": 3, \"individual\": \"a\"}]}"),
      &decoded);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  s = api::FactBatchFromJson(MustParse("{\"roles\": \"nope\"}"), &decoded);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, GovernorCountersRoundTrip) {
  QueryGovernor::Counters original;
  original.admitted = 10;
  original.queued = 3;
  original.rejected_queue_full = 2;
  original.rejected_timeout = 1;
  original.cancelled = 4;
  original.deadline_exceeded = 5;
  original.memory_exceeded = 6;
  original.degraded_retries = 7;
  original.answer_cache_hits = 8;
  original.coalesced = 9;
  original.memory_used = 1234;
  original.memory_high_water = 5678;

  QueryGovernor::Counters decoded;
  ASSERT_TRUE(api::GovernorCountersFromJson(
                  MustParse(api::GovernorCountersToJson(original)), &decoded)
                  .ok());
  EXPECT_EQ(decoded.admitted, 10);
  EXPECT_EQ(decoded.queued, 3);
  EXPECT_EQ(decoded.rejected_queue_full, 2);
  EXPECT_EQ(decoded.rejected_timeout, 1);
  EXPECT_EQ(decoded.cancelled, 4);
  EXPECT_EQ(decoded.deadline_exceeded, 5);
  EXPECT_EQ(decoded.memory_exceeded, 6);
  EXPECT_EQ(decoded.degraded_retries, 7);
  EXPECT_EQ(decoded.answer_cache_hits, 8);
  EXPECT_EQ(decoded.coalesced, 9);
  EXPECT_EQ(decoded.memory_used, 1234u);
  EXPECT_EQ(decoded.memory_high_water, 5678u);
}

// ---------------------------------------------------------------------------
// Service dispatch against a real registry (no socket).
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<server::EngineRegistry>();
    ASSERT_TRUE(registry_->RegisterParsed("uni", kOntology, kData).ok());
    service_ = std::make_unique<api::Service>(registry_.get());
  }

  api::Response Call(api::Verb verb, const std::string& tenant,
                     const std::string& body) {
    api::Request request;
    request.verb = verb;
    request.tenant = tenant;
    request.body = body;
    return service_->Handle(request);
  }

  std::unique_ptr<server::EngineRegistry> registry_;
  std::unique_ptr<api::Service> service_;
};

TEST_F(ServiceTest, ExecuteReturnsAnswersMatchingTheEngine) {
  api::WireExecuteRequest wire;
  wire.query = kQuery;
  api::Response response =
      Call(api::Verb::kExecute, "uni", api::ExecuteRequestToJson(wire));
  ASSERT_TRUE(response.status.ok()) << response.body;
  api::WireExecuteResult result;
  ASSERT_TRUE(
      api::ExecuteResultFromJson(MustParse(response.body), &result).ok());
  std::sort(result.answers.begin(), result.answers.end());
  std::vector<std::vector<std::string>> expected = {
      {"ann"}, {"bob"}, {"dana"}};
  EXPECT_EQ(result.answers, expected);
  EXPECT_EQ(result.snapshot_version, 1u);
}

TEST_F(ServiceTest, PrepareReportsPlanShapeAndCacheHits) {
  api::WireExecuteRequest wire;
  wire.query = kQuery;
  wire.rewriter = "tw";
  api::Response first =
      Call(api::Verb::kPrepare, "uni", api::ExecuteRequestToJson(wire));
  ASSERT_TRUE(first.status.ok()) << first.body;
  JsonValue body = MustParse(first.body);
  EXPECT_EQ(body.Find("rewriter")->AsString(), "tw");
  EXPECT_GT(body.Find("clauses")->AsLong(), 0);
  EXPECT_FALSE(body.Find("cache_hit")->AsBool(true));

  api::Response second =
      Call(api::Verb::kPrepare, "uni", api::ExecuteRequestToJson(wire));
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(MustParse(second.body).Find("cache_hit")->AsBool(false));
}

TEST_F(ServiceTest, ApplyFactsInstallsAVersionAndExecuteSeesIt) {
  api::WireFactBatch batch;
  batch.roles.push_back({"lectures", "carol", "logic"});
  api::Response applied =
      Call(api::Verb::kApplyFacts, "uni", api::FactBatchToJson(batch));
  ASSERT_TRUE(applied.status.ok()) << applied.body;
  EXPECT_EQ(MustParse(applied.body).Find("snapshot_version")->AsLong(), 2);

  api::WireExecuteRequest wire;
  wire.query = kQuery;
  api::Response response =
      Call(api::Verb::kExecute, "uni", api::ExecuteRequestToJson(wire));
  ASSERT_TRUE(response.status.ok());
  api::WireExecuteResult result;
  ASSERT_TRUE(
      api::ExecuteResultFromJson(MustParse(response.body), &result).ok());
  EXPECT_EQ(result.snapshot_version, 2u);
  std::sort(result.answers.begin(), result.answers.end());
  std::vector<std::vector<std::string>> expected = {
      {"ann"}, {"bob"}, {"carol"}, {"dana"}};
  EXPECT_EQ(result.answers, expected);
}

TEST_F(ServiceTest, ApplyFactsRejectsUndeclaredNames) {
  api::WireFactBatch batch;
  batch.concepts.push_back({"NoSuchConcept", "x"});
  api::Response response =
      Call(api::Verb::kApplyFacts, "uni", api::FactBatchToJson(batch));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  Status parsed;
  ASSERT_TRUE(api::ParseErrorBody(MustParse(response.body), &parsed));
  EXPECT_NE(parsed.message().find("NoSuchConcept"), std::string::npos);
}

TEST_F(ServiceTest, UnknownTenantIsNotFound) {
  api::Response response = Call(api::Verb::kStats, "nope", "");
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  JsonValue body = MustParse(response.body);
  EXPECT_EQ(body.Find("error")->Find("http")->AsLong(), 404);
}

TEST_F(ServiceTest, MalformedBodiesAreInvalidArgument) {
  for (const char* body : {"", "not json", "[1,2,3]", "{\"query\": 5}"}) {
    api::Response response = Call(api::Verb::kExecute, "uni", body);
    EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument) << body;
  }
}

TEST_F(ServiceTest, UnknownRewriterNamesTheField) {
  api::Response response = Call(api::Verb::kExecute, "uni",
                                "{\"query\": \"q(x) :- Professor(x)\", "
                                "\"rewriter\": \"fancy\"}");
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(response.status.message().find("fancy"), std::string::npos);
}

TEST_F(ServiceTest, StatsCountsTheTrafficWeSent) {
  api::WireExecuteRequest wire;
  wire.query = kQuery;
  ASSERT_TRUE(
      Call(api::Verb::kExecute, "uni", api::ExecuteRequestToJson(wire))
          .status.ok());
  api::Response stats = Call(api::Verb::kStats, "uni", "");
  ASSERT_TRUE(stats.status.ok());
  JsonValue body = MustParse(stats.body);
  EXPECT_EQ(body.Find("tenant")->AsString(), "uni");
  QueryGovernor::Counters counters;
  ASSERT_NE(body.Find("governor"), nullptr);
  ASSERT_TRUE(
      api::GovernorCountersFromJson(*body.Find("governor"), &counters).ok());
  EXPECT_GE(counters.admitted, 1);
}

TEST_F(ServiceTest, TenantsListsEveryRegistration) {
  api::Response response = Call(api::Verb::kTenants, "", "");
  ASSERT_TRUE(response.status.ok());
  JsonValue body = MustParse(response.body);
  EXPECT_EQ(body.Find("api_version")->AsLong(), api::kApiVersion);
  ASSERT_EQ(body.Find("tenants")->items().size(), 1u);
  const JsonValue& tenant = body.Find("tenants")->items()[0];
  EXPECT_EQ(tenant.Find("name")->AsString(), "uni");
  EXPECT_FALSE(tenant.Find("fingerprint")->AsString().empty());
}

TEST_F(ServiceTest, MetricsAlwaysReturnsTheTraceSkeleton) {
  api::Response response = Call(api::Verb::kMetrics, "", "");
  ASSERT_TRUE(response.status.ok());
  JsonValue body = MustParse(response.body);
  EXPECT_NE(body.Find("counters"), nullptr);
  EXPECT_NE(body.Find("timers"), nullptr);
  EXPECT_NE(body.Find("spans"), nullptr);
}

TEST(RegistryTest, DuplicateTBoxIsRejectedByFingerprint) {
  server::EngineRegistry registry;
  ASSERT_TRUE(registry.RegisterParsed("a", kOntology, kData).ok());
  Status dup = registry.RegisterParsed("b", kOntology, "");
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  // But the same alias plus a different TBox is also a duplicate.
  Status alias = registry.RegisterParsed("a", "X SUB Y", "");
  EXPECT_EQ(alias.code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, CarveSplitsTheProcessBudget) {
  server::RegistryOptions options;
  options.max_tenants = 2;
  options.process_memory_bytes = 4096;
  options.process_slots = 4;
  server::EngineRegistry registry(options);
  EXPECT_EQ(registry.tenant_memory_bytes(), 2048u);
  EXPECT_EQ(registry.tenant_slots(), 2);
  ASSERT_TRUE(registry.RegisterParsed("a", kOntology, kData).ok());
  // A third registration in a 2-tenant registry is shed.
  ASSERT_TRUE(registry.RegisterParsed("b", "A SUB B", "").ok());
  EXPECT_EQ(registry.RegisterParsed("c", "C SUB D", "").code(),
            StatusCode::kRejected);
}

TEST(RegistryTest, StoreDirNamesAreInjectiveAndPathSafe) {
  // Names that used to collapse onto one '_'-mangled directory — colliding
  // store dirs mean two tenants interleaving appends into one LOG.
  const std::vector<std::string> names = {
      "a/b",  "a:b",  "a_b",  "a%2Fb", "a%b",  "a.b", "a-b",
      "a b",  "a..b", ".",    "..",    "%2E",  "a",   "A",
  };
  std::set<std::string> dirs;
  for (const std::string& name : names) {
    const std::string dir = server::StoreDirNameForTenant(name);
    EXPECT_TRUE(dirs.insert(dir).second)
        << "'" << name << "' collides onto '" << dir << "'";
    // No path separators or relative components may survive encoding.
    EXPECT_EQ(dir.find('/'), std::string::npos) << dir;
    EXPECT_NE(dir, ".");
    EXPECT_NE(dir, "..");
  }
  // Portable names pass through unchanged (existing store dirs stay valid).
  EXPECT_EQ(server::StoreDirNameForTenant("default"), "default");
  EXPECT_EQ(server::StoreDirNameForTenant("Tenant-1.prod"), "Tenant-1.prod");
}

TEST(RegistryTest, HostileTenantNamesGetDistinctStoreDirs) {
  std::string templ = ::testing::TempDir() + "registry_store.XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  ASSERT_NE(mkdtemp(buf.data()), nullptr);
  const std::string root(buf.data());

  server::RegistryOptions options;
  options.store.dir = root;
  server::EngineRegistry registry(options);
  // Distinct TBoxes (the fingerprint check would otherwise reject the
  // second), names that the old '_'-mangling collapsed together.
  ASSERT_TRUE(registry.RegisterParsed("a/b", kOntology, kData).ok());
  ASSERT_TRUE(registry.RegisterParsed("a_b", "X SUB Y", "").ok());
  EXPECT_TRUE(store::PathExists(root + "/a%2Fb/CURRENT"));
  EXPECT_TRUE(store::PathExists(root + "/a_b/CURRENT"));
  for (const char* tenant : {"a%2Fb", "a_b"}) {
    store::RemoveDirRecursive(root + "/" + tenant + "/seg-1");
    store::RemoveDirRecursive(root + "/" + tenant);
  }
  store::RemoveDirRecursive(root);
}

}  // namespace
}  // namespace owlqr
