// Tests for the resource governor stack: MemoryBudget/MemoryAccount
// exactness, cooperative cancellation through every evaluator poll point,
// memory-abort behaviour, admission control (slots, FIFO queue, timeouts,
// shedding), graceful degradation, the Rows row-ceiling saturation (the
// morsel-shard merge regression), and the abortable shared snapshot index
// build.  Part of the `sanitize` ctest label.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/data_instance.h"
#include "data/relation.h"
#include "data/snapshot.h"
#include "engine/engine.h"
#include "engine/governor.h"
#include "ndl/evaluator.h"
#include "ndl/program.h"
#include "util/budget.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

// G(x, y) <- R(x, u) & R(u, y): quadratically many results on a dense R,
// with an index probe on the second atom.
NdlProgram JoinProgram(Vocabulary* vocab) {
  NdlProgram program(vocab);
  int r = program.AddRolePredicate(vocab->InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
  c.body.push_back({r, {Term::Var(2), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);
  return program;
}

// G(x, y) <- R(x, y): a pure scan copy, so the execution's only charged
// allocation (on the snapshot path) is the G arena itself.
NdlProgram CopyProgram(Vocabulary* vocab) {
  NdlProgram program(vocab);
  int r = program.AddRolePredicate(vocab->InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);
  return program;
}

DataInstance DenseGraph(Vocabulary* vocab, int n) {
  DataInstance data(vocab);
  int r = vocab->InternPredicate("R");
  std::vector<int> inds;
  for (int i = 0; i < n; ++i) {
    inds.push_back(data.AddIndividual("v" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) data.AddRoleAssertion(r, inds[i], inds[j]);
    }
  }
  return data;
}

// Restores the real row ceiling even when an assertion fails mid-test.
struct RowCeilingGuard {
  explicit RowCeilingGuard(size_t max_rows) {
    Rows::SetMaxRowsForTest(max_rows);
  }
  ~RowCeilingGuard() { Rows::SetMaxRowsForTest(0); }
};

// --- MemoryBudget / MemoryAccount -----------------------------------------

TEST(MemoryBudgetTest, ChargeReleaseAndHighWater) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(400));
  EXPECT_TRUE(budget.Charge(600));  // Exactly at the limit: not exceeded.
  EXPECT_EQ(budget.used(), 1000u);
  EXPECT_FALSE(budget.Charge(1));  // Now over — but still recorded.
  EXPECT_EQ(budget.used(), 1001u);
  EXPECT_EQ(budget.high_water(), 1001u);
  budget.Release(1001);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.high_water(), 1001u);  // High water persists.
  EXPECT_TRUE(budget.Charge(1000));       // Back under: charges succeed.
}

TEST(MemoryBudgetTest, ZeroLimitTracksOnly) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.Charge(1'000'000'000));
  EXPECT_EQ(budget.used(), 1'000'000'000u);
}

TEST(MemoryAccountTest, DestructionReleasesEverythingToBudget) {
  MemoryBudget budget(0);
  {
    MemoryAccount account(&budget);
    EXPECT_TRUE(account.Charge(123));
    EXPECT_TRUE(account.Charge(877));
    account.Release(100);
    EXPECT_EQ(account.used(), 900u);
    EXPECT_EQ(budget.used(), 900u);
  }
  EXPECT_EQ(budget.used(), 0u);  // The account died owing nothing.
  EXPECT_EQ(budget.high_water(), 1000u);
}

TEST(MemoryAccountTest, PerExecutionCapTripsBeforeBudget) {
  MemoryBudget budget(1'000'000);
  MemoryAccount account(&budget, /*limit_bytes=*/100);
  EXPECT_FALSE(account.Charge(200));  // Over the per-execution cap.
  EXPECT_EQ(account.used(), 200u);    // Still recorded...
  EXPECT_EQ(budget.used(), 200u);     // ...and forwarded.
}

TEST(MemoryAccountTest, SharedBudgetTripsAcrossAccounts) {
  MemoryBudget budget(1000);
  MemoryAccount a(&budget);
  MemoryAccount b(&budget);
  EXPECT_TRUE(a.Charge(600));
  EXPECT_FALSE(b.Charge(600));  // a + b exceed the shared budget.
}

// --- Memory accounting through the evaluator ------------------------------

// The executed memory numbers must be *exact*: on the snapshot path the only
// charged allocations of a pure scan are the goal arena (EDB arenas and
// shared indexes are engine-lifetime, deliberately uncharged), so the
// account must equal the arena's MemoryBytes to the byte — reproduced here
// by replaying the same inserts (same order, same Reserve hint) into a
// local Rows.
TEST(GovernorMemoryTest, ScanChargesExactlyTheGoalArena) {
  Vocabulary vocab;
  NdlProgram program = CopyProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 40);  // 1560 R pairs.
  auto snapshot = DataSnapshot::FromInstance(data);
  const Rows& r_rows = snapshot->Role(vocab.InternPredicate("R"))->rows();

  MemoryBudget budget(0);
  MemoryAccount account(&budget);
  Evaluator eval(program, snapshot);
  eval.set_memory_account(&account);
  EvaluationStats stats;
  auto answers = eval.Evaluate(&stats);
  ASSERT_FALSE(stats.aborted);
  ASSERT_EQ(answers.size(), r_rows.size());

  Rows replay;
  replay.arity = 2;
  replay.Reserve(r_rows.size());  // RunJoin's scan-driver hint.
  for (size_t i = 0; i < r_rows.size(); ++i) replay.Insert(r_rows.row(i));
  EXPECT_EQ(static_cast<size_t>(stats.memory_bytes), replay.MemoryBytes());
  EXPECT_EQ(account.used(), replay.MemoryBytes());
  // The batch executor's column scratch is charged while a clause runs and
  // released when its context dies, so the high water exceeds the retained
  // arena but the final usage reconciles to it exactly (asserted above).
  EXPECT_GE(account.high_water(), replay.MemoryBytes());
  EXPECT_EQ(budget.used(), account.used());

  // With batching disabled nothing is ever released mid-run, so the high
  // water equals the retained arena byte for byte.
  MemoryBudget scalar_budget(0);
  MemoryAccount scalar_account(&scalar_budget);
  EvaluatorLimits scalar_limits;
  scalar_limits.batch_rows = 0;
  Evaluator scalar_eval(program, snapshot, scalar_limits);
  scalar_eval.set_memory_account(&scalar_account);
  EvaluationStats scalar_stats;
  auto scalar_answers = scalar_eval.Evaluate(&scalar_stats);
  ASSERT_FALSE(scalar_stats.aborted);
  EXPECT_EQ(scalar_answers, answers);
  EXPECT_EQ(scalar_account.used(), replay.MemoryBytes());
  EXPECT_EQ(scalar_account.high_water(), replay.MemoryBytes());
}

TEST(GovernorMemoryTest, BudgetReturnsToZeroAfterExecution) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 30);
  auto snapshot = DataSnapshot::FromInstance(data);
  MemoryBudget budget(0);
  {
    MemoryAccount account(&budget);
    Evaluator eval(program, snapshot);
    eval.set_memory_account(&account);
    EvaluationStats stats;
    eval.Evaluate(&stats);
    EXPECT_FALSE(stats.aborted);
    EXPECT_GT(budget.used(), 0u);
  }
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_GT(budget.high_water(), 0u);
}

TEST(GovernorMemoryTest, MemoryAbortMidJoin) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 60);  // 3600 goal tuples.
  auto snapshot = DataSnapshot::FromInstance(data);
  MemoryBudget budget(16 * 1024);  // Far less than the goal arena needs.
  MemoryAccount account(&budget);
  Evaluator eval(program, snapshot);
  eval.set_memory_account(&account);
  ExecuteResult result = eval.Run(ExecuteRequest{});
  EXPECT_EQ(result.status.code(), StatusCode::kMemoryExceeded);
  EXPECT_TRUE(result.partial);
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_TRUE(result.stats.memory_exceeded);
  EXPECT_FALSE(result.stats.cancelled);
  EXPECT_FALSE(result.stats.deadline_exceeded);
  // Truncated, not garbage: a sound subset with sane counters.
  EXPECT_LT(result.answers.size(), 3600u);
  EXPECT_GE(result.stats.generated_tuples, 0);
  EXPECT_EQ(result.stats.predicate_tuples.size(),
            static_cast<size_t>(program.num_predicates()));
  EXPECT_GE(result.stats.memory_high_water,
            static_cast<long>(budget.limit()));
}

// --- Cancellation ----------------------------------------------------------

TEST(GovernorCancelTest, CancelBeforeStartDoesNoWork) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 30);
  auto snapshot = DataSnapshot::FromInstance(data);
  auto cancel = std::make_shared<CancelToken>();
  cancel->Cancel();
  Evaluator eval(program, snapshot);
  ExecuteRequest request;
  request.cancel = cancel;
  ExecuteResult result = eval.Run(request);
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(result.partial);
  EXPECT_TRUE(result.stats.cancelled);
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_TRUE(result.answers.empty());
  EXPECT_EQ(result.stats.generated_tuples, 0);
}

TEST(GovernorCancelTest, CancelMidEvaluationAborts) {
  Vocabulary vocab;
  // Three-way self-join: ~40^4 emissions, seconds of work if left alone.
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
  c.body.push_back({r, {Term::Var(2), Term::Var(3)}});
  c.body.push_back({r, {Term::Var(3), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);
  DataInstance data = DenseGraph(&vocab, 40);
  auto snapshot = DataSnapshot::FromInstance(data);

  auto cancel = std::make_shared<CancelToken>();
  std::thread canceller([cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel->Cancel();
  });
  Evaluator eval(program, snapshot);
  ExecuteRequest request;
  request.cancel = cancel;
  const auto start = std::chrono::steady_clock::now();
  ExecuteResult result = eval.Run(request);
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  canceller.join();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(result.stats.cancelled);
  EXPECT_FALSE(result.stats.deadline_exceeded);
  // Cooperative, but prompt: the poll cadence is every 1024 emissions /
  // rows, so the abort lands long before the uncancelled runtime.
  EXPECT_LT(elapsed_ms, 5000);
}

TEST(GovernorCancelTest, CancelOutranksDeadlineInStatus) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 30);
  auto snapshot = DataSnapshot::FromInstance(data);
  auto cancel = std::make_shared<CancelToken>();
  cancel->Cancel();
  Evaluator eval(program, snapshot);
  ExecuteRequest request;
  request.cancel = cancel;
  request.limits.deadline_ms = 1;
  ExecuteResult result = eval.Run(request);
  // The cancel token is polled first, so even with an already-expired
  // deadline the reported cause is the cancellation.
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
}

// --- Row ceiling -----------------------------------------------------------

// A relation at the 32-bit row ceiling must refuse inserts and surface a
// cooperative abort — not OWLQR_CHECK-abort the process.  Sequential path.
TEST(RowCeilingTest, SequentialJoinSaturatesAtCeiling) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 30);  // 900 goal tuples unbounded.
  auto snapshot = DataSnapshot::FromInstance(data);
  // Installed only after the snapshot's EDB arenas are built: the lowered
  // ceiling should bite the execution's IDB arena, not the data load.
  RowCeilingGuard guard(100);
  Evaluator eval(program, snapshot);
  ExecuteResult result = eval.Run(ExecuteRequest{});
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_TRUE(result.stats.row_ceiling);
  EXPECT_TRUE(result.partial);
  // A ceiling stop is a truncation, not a caller error: status stays OK.
  EXPECT_TRUE(result.status.ok());
  EXPECT_LE(result.answers.size(), 100u);
}

// Regression: the morsel-shard merge path writes through Rows::Insert too;
// merging shards whose union passes the ceiling must saturate, flag the
// abort, and leave a sound prefix — under the old code the merge loop
// OWLQR_CHECKed and took the whole process down.
TEST(RowCeilingTest, MorselShardMergeSaturatesAtCeiling) {
  Vocabulary vocab;
  NdlProgram program = JoinProgram(&vocab);
  DataInstance data = DenseGraph(&vocab, 30);  // 900 > 400 merged rows.
  auto snapshot = DataSnapshot::FromInstance(data);
  RowCeilingGuard guard(400);  // After the EDB arenas exist; see above.
  Evaluator eval(program, snapshot);
  ExecuteRequest request;
  request.num_threads = 4;
  request.limits.morsel_rows = 64;  // Force intra-clause fan-out.
  ExecuteResult result = eval.Run(request);
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_TRUE(result.stats.row_ceiling);
  EXPECT_TRUE(result.partial);
  EXPECT_LE(result.answers.size(), 400u);
  EXPECT_GT(result.stats.morsels, 0);  // The fan-out actually happened.
}

// --- Abortable shared snapshot index build ---------------------------------

// An abort poll that fires mid-build must abandon the shared index WITHOUT
// publishing it; the next (unaborted) request rebuilds a complete one.
TEST(SnapshotIndexTest, AbortedSharedBuildIsDiscardedAndRebuilt) {
  Vocabulary vocab;
  DataInstance data(&vocab);
  int role_r = vocab.InternPredicate("R");
  int hub = data.AddIndividual("hub");
  constexpr int kSpokes = 500'000;  // Hundreds of poll intervals.
  for (int i = 0; i < kSpokes; ++i) {
    int s = data.AddIndividual("s" + std::to_string(i));
    data.AddRoleAssertion(role_r, s, hub);
  }
  auto snapshot = DataSnapshot::FromInstance(data);
  const EdbRelation* rel = snapshot->Role(role_r);
  ASSERT_NE(rel, nullptr);

  // Poll that trips on its third call: the build gets through a couple of
  // 1024-row intervals, then must stop.
  int calls = 0;
  bool built_now = true;
  const HashIndex* aborted = rel->Index(
      /*mask=*/1u,
      [](void* arg) { return ++*static_cast<int*>(arg) >= 3; }, &calls,
      &built_now);
  EXPECT_EQ(aborted, nullptr);
  EXPECT_FALSE(built_now);
  EXPECT_GE(calls, 3);

  // The slot was reset, not poisoned: an unaborted request builds the full
  // index and every key probes correctly.
  const HashIndex& full = rel->Index(1u, &built_now);
  EXPECT_TRUE(built_now);
  EXPECT_EQ(full.ids.size(), static_cast<size_t>(kSpokes));
  const Rows& rows = rel->rows();
  int first_spoke = rows.row(0)[0];
  auto [first, last] = full.Find(HashTuple(&first_spoke, 1));
  ASSERT_NE(first, last);
}

// End-to-end: a deadline trips while (or before) the evaluator builds the
// lazily shared snapshot index over a 500k-row EDB; the run aborts with
// DEADLINE_EXCEEDED and a later uncancelled run on the SAME snapshot gets
// exact answers — proving no partial index was published.
TEST(SnapshotIndexTest, DeadlineDuringLazySharedIndexBuild) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int a = program.AddConceptPredicate(vocab.InternConcept("A"));
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 1);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};
  c.body.push_back({a, {Term::Var(0)}});
  c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  DataInstance data(&vocab);
  int concept_a = vocab.InternConcept("A");
  int role_r = vocab.InternPredicate("R");
  int hub = data.AddIndividual("hub");
  constexpr int kSpokes = 500'000;
  for (int i = 0; i < kSpokes; ++i) {
    int s = data.AddIndividual("s" + std::to_string(i));
    data.AddRoleAssertion(role_r, s, hub);
    if (i == 0) data.AddConceptAssertion(concept_a, s);
  }
  auto snapshot = DataSnapshot::FromInstance(data);

  {
    Evaluator eval(program, snapshot);
    ExecuteRequest request;
    request.limits.deadline_ms = 1;  // Indexing 500k rows takes well over.
    ExecuteResult result = eval.Run(request);
    EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(result.stats.deadline_exceeded);
  }
  {
    Evaluator eval(program, snapshot);
    ExecuteResult result = eval.Run(ExecuteRequest{});
    ASSERT_TRUE(result.status.ok());
    EXPECT_FALSE(result.stats.aborted);
    ASSERT_EQ(result.answers.size(), 1u);  // Exactly the one A-member.
  }
}

// --- Admission control ------------------------------------------------------

TEST(AdmissionTest, UnlimitedGovernorAlwaysAdmits) {
  QueryGovernor governor(GovernorOptions{});
  auto a = governor.Admit();
  auto b = governor.Admit();
  EXPECT_TRUE(a.admitted());
  EXPECT_TRUE(b.admitted());
  EXPECT_EQ(governor.counters().admitted, 2);
}

TEST(AdmissionTest, SaturatedPoolShedsWithoutQueueing) {
  GovernorOptions options;
  options.max_concurrent = 1;
  QueryGovernor governor(options);
  auto slot = governor.Admit();
  ASSERT_TRUE(slot.admitted());
  // timeout 0: never queue.
  auto shed = governor.Admit(/*request_timeout_ms=*/0);
  EXPECT_FALSE(shed.admitted());
  EXPECT_EQ(shed.status().code(), StatusCode::kRejected);
  QueryGovernor::Counters counters = governor.counters();
  EXPECT_EQ(counters.admitted, 1);
  EXPECT_EQ(counters.rejected(), 1);
}

TEST(AdmissionTest, FullQueueShedsImmediately) {
  GovernorOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;  // No waiting room at all.
  QueryGovernor governor(options);
  auto slot = governor.Admit();
  auto shed = governor.Admit(/*request_timeout_ms=*/1000);
  EXPECT_FALSE(shed.admitted());
  EXPECT_EQ(shed.status().code(), StatusCode::kRejected);
  EXPECT_EQ(governor.counters().rejected_queue_full, 1);
}

TEST(AdmissionTest, QueueTimeoutSheds) {
  GovernorOptions options;
  options.max_concurrent = 1;
  QueryGovernor governor(options);
  auto slot = governor.Admit();
  const auto start = std::chrono::steady_clock::now();
  auto shed = governor.Admit(/*request_timeout_ms=*/30);
  const double waited_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  EXPECT_FALSE(shed.admitted());
  EXPECT_EQ(shed.status().code(), StatusCode::kRejected);
  EXPECT_GE(waited_ms, 25.0);  // It genuinely waited its turn.
  EXPECT_EQ(governor.counters().rejected_timeout, 1);
}

TEST(AdmissionTest, ReleaseHandsSlotToWaitersInFifoOrder) {
  GovernorOptions options;
  options.max_concurrent = 1;
  QueryGovernor governor(options);
  auto slot = std::make_unique<QueryGovernor::Admission>(governor.Admit());
  ASSERT_TRUE(slot->admitted());

  std::atomic<int> order{0};
  std::atomic<int> first_granted{-1};
  std::atomic<int> second_granted{-1};
  auto waiter = [&](int id, std::atomic<int>* granted_at) {
    auto admission = governor.Admit(/*request_timeout_ms=*/10'000);
    EXPECT_TRUE(admission.admitted()) << "waiter " << id;
    granted_at->store(order.fetch_add(1));
    // Hold briefly so the other waiter observably waits behind us.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  std::thread first(waiter, 0, &first_granted);
  // Deterministic enqueue order: the second waiter starts only after the
  // first is provably parked in the queue.
  while (governor.counters().queued < 1) std::this_thread::yield();
  std::thread second(waiter, 1, &second_granted);
  while (governor.counters().queued < 2) std::this_thread::yield();

  slot.reset();  // Release: the slot must go to the FIRST waiter.
  first.join();
  second.join();
  EXPECT_EQ(first_granted.load(), 0);
  EXPECT_EQ(second_granted.load(), 1);
  QueryGovernor::Counters counters = governor.counters();
  EXPECT_EQ(counters.admitted, 3);
  EXPECT_EQ(counters.queued, 2);
  EXPECT_EQ(counters.rejected(), 0);
}

// --- Engine integration -----------------------------------------------------

class GovernedEngineTest : public ::testing::Test {
 protected:
  // A real OMQ: the paper's Example 11 ontology with the two-step chain
  // query q(x0, x2) :- R(x0, x1), R(x1, x2), through the engine's own
  // rewrite and snapshot path.
  void SetUp() override { tbox_ = MakeExample11TBox(&vocab_); }

  ConjunctiveQuery ChainQuery() { return SequenceQuery(&vocab_, "RR"); }

  // Two R-layers through a single middle node: a_i -> mid -> c_j.  The
  // chain query produces m^2 distinct answers from ~m^2 emissions (every
  // emission is a fresh tuple), so a memory budget trips after only a few
  // hundred thousand emissions — fast even under sanitizers.
  DataInstance LayeredGraph(int m) {
    DataInstance data(&vocab_);
    int r = vocab_.InternPredicate("R");
    int mid = data.AddIndividual("mid");
    for (int i = 0; i < m; ++i) {
      data.AddRoleAssertion(r, data.AddIndividual("a" + std::to_string(i)),
                            mid);
      data.AddRoleAssertion(r, mid,
                            data.AddIndividual("c" + std::to_string(i)));
    }
    return data;
  }

  // Dense n-clique: the chain join runs n * (n-1)^2 emissions (~64M at
  // n = 400) while producing only n^2 distinct answers — an execution that
  // keeps a slot busy for a long time without much memory.
  DataInstance DenseData(int n) {
    DataInstance data(&vocab_);
    int r = vocab_.InternPredicate("R");
    std::vector<int> inds;
    for (int i = 0; i < n; ++i) {
      inds.push_back(data.AddIndividual("v" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) data.AddRoleAssertion(r, inds[i], inds[j]);
      }
    }
    return data;
  }

  Vocabulary vocab_;
  std::unique_ptr<TBox> tbox_;
};

TEST_F(GovernedEngineTest, MemoryRejectionSurfacesThroughExecute) {
  DataInstance data = LayeredGraph(1000);  // 1M chain answers unbudgeted.
  EngineOptions options;
  options.governor.max_memory_bytes = 256 * 1024;
  Engine engine(*tbox_, data, nullptr, options);
  Status status;
  ExecuteResult result = engine.Query(ChainQuery(), ExecuteRequest{}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(result.status.code(), StatusCode::kMemoryExceeded);
  EXPECT_TRUE(result.partial);
  EXPECT_TRUE(result.stats.memory_exceeded);
  QueryGovernor::Counters counters = engine.governor_counters();
  EXPECT_EQ(counters.memory_exceeded, 1);
  // Accounting is back to zero the moment the execution returns.
  EXPECT_EQ(counters.memory_used, 0u);
  EXPECT_GT(counters.memory_high_water, 0u);
}

TEST_F(GovernedEngineTest, DegradedRetryReturnsTruncatedResult) {
  DataInstance data = LayeredGraph(1000);
  EngineOptions options;
  // Big enough for a tuple-limited run (whose arenas are dominated by the
  // bounded Reserve hints), far too small for the 1M-tuple full answer set.
  options.governor.max_memory_bytes = 4 * 1024 * 1024;
  options.governor.degraded_max_generated_tuples = 50;
  Engine engine(*tbox_, data, nullptr, options);
  Status status;
  ExecuteResult result = engine.Query(ChainQuery(), ExecuteRequest{}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // The retry fit under the tightened tuple limit: a usable truncated
  // result instead of a memory error.
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.partial);
  EXPECT_LE(result.stats.generated_tuples, 52);
  QueryGovernor::Counters counters = engine.governor_counters();
  EXPECT_EQ(counters.degraded_retries, 1);
  EXPECT_EQ(counters.memory_exceeded, 0);  // The final outcome was OK.
  EXPECT_EQ(counters.memory_used, 0u);
}

TEST_F(GovernedEngineTest, DegradedRetryReconcilesBudgetAndCountsOnce) {
  DataInstance data = LayeredGraph(1000);
  EngineOptions options;
  options.governor.max_memory_bytes = 4 * 1024 * 1024;
  options.governor.degraded_max_generated_tuples = 50;
  Engine engine(*tbox_, data, nullptr, options);
  PrepareResult prepared = engine.Prepare(ChainQuery());
  ASSERT_TRUE(prepared.ok()) << prepared.status.ToString();

  int r = vocab_.FindPredicate("R");
  ASSERT_GE(r, 0);
  constexpr int kRounds = 3;
  for (int i = 0; i < kRounds; ++i) {
    ExecuteResult result = engine.Execute(*prepared.query, ExecuteRequest{});
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(result.degraded);
    EXPECT_TRUE(result.partial);
    // The retry ran on a freshly pinned snapshot: the reported version is
    // the engine's current one, including the facts applied below on
    // earlier rounds.
    EXPECT_EQ(result.snapshot_version, engine.snapshot_version());

    QueryGovernor::Counters counters = engine.governor_counters();
    // The aborted first attempt's account reconciled fully: no residue
    // accumulates across memory-abort-then-retry rounds.
    EXPECT_EQ(counters.memory_used, 0u);
    // Exactly ONE outcome per Execute, and it is the retry's: the retry
    // counter advances once per round while the abort of the first attempt
    // never surfaces as a memory_exceeded outcome.
    EXPECT_EQ(counters.degraded_retries, i + 1);
    EXPECT_EQ(counters.memory_exceeded, 0);
    EXPECT_EQ(counters.cancelled, 0);
    EXPECT_EQ(counters.deadline_exceeded, 0);

    // Grow the data between rounds so each retry answers a later version.
    FactBatch batch;
    batch.roles.push_back(
        {r, vocab_.InternIndividual("fresh" + std::to_string(i)),
         vocab_.InternIndividual("mid2" + std::to_string(i))});
    uint64_t version = 0;
    ASSERT_TRUE(engine.ApplyFactsOrError(batch, &version).ok());
    EXPECT_EQ(version, static_cast<uint64_t>(i) + 2);
  }
}

TEST_F(GovernedEngineTest, RejectedExecutionCostsNothing) {
  DataInstance data = DenseData(400);
  EngineOptions options;
  options.governor.max_concurrent = 1;
  options.governor.queue_timeout_ms = 5'000;
  Engine engine(*tbox_, data, nullptr, options);
  PrepareResult prepared = engine.Prepare(ChainQuery());
  ASSERT_TRUE(prepared.ok()) << prepared.status.ToString();

  // Occupy the only slot with a cancellable run over the dense graph
  // (tens of millions of join emissions uncancelled — it cannot finish
  // before the assertions below complete).
  auto cancel = std::make_shared<CancelToken>();
  std::thread holder([&] {
    ExecuteRequest request;
    request.cancel = cancel;
    // No deadline: only the cancel ends it.
    ExecuteResult result = engine.Execute(*prepared.query, request);
    EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  });
  while (engine.governor_counters().admitted < 1) std::this_thread::yield();

  ExecuteRequest reject_me;
  reject_me.queue_timeout_ms = 0;  // Don't wait: shed immediately.
  ExecuteResult rejected = engine.Execute(*prepared.query, reject_me);
  EXPECT_EQ(rejected.status.code(), StatusCode::kRejected);
  EXPECT_TRUE(rejected.answers.empty());
  EXPECT_EQ(rejected.snapshot_version, 0u);  // Never pinned a snapshot.

  cancel->Cancel();
  holder.join();
  QueryGovernor::Counters counters = engine.governor_counters();
  EXPECT_EQ(counters.rejected(), 1);
  EXPECT_EQ(counters.cancelled, 1);
  EXPECT_EQ(counters.memory_used, 0u);
}

}  // namespace
}  // namespace owlqr
