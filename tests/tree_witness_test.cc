#include <gtest/gtest.h>

#include <algorithm>

#include "core/tree_witness.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

std::vector<int> SortedAnswerVars(const ConjunctiveQuery& q) {
  std::vector<int> v = q.answer_vars();
  std::sort(v.begin(), v.end());
  return v;
}

TEST(TreeWitnessTest, Example8Witnesses) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  // R S R R S R R: each S segment carries two conflicting witnesses.
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRRSRR");
  TreeWitnessEnumerator enumerator(&ctx, q);
  std::vector<int> atoms = {0, 1, 2, 3, 4, 5, 6};
  auto witnesses = enumerator.Enumerate(atoms, SortedAnswerVars(q), -1);
  ASSERT_EQ(witnesses.size(), 4u);

  RoleId p = RoleOf(vocab.FindPredicate("P"));
  for (const TreeWitness& tw : witnesses) {
    ASSERT_EQ(tw.ti.size(), 1u);
    int var = tw.ti[0];
    std::string name = q.VarName(var);
    ASSERT_EQ(tw.generators.size(), 1u);
    // x1, x4 are covered by P^- (the segment enters via R); x2, x5 by P.
    if (name == "x1" || name == "x4") {
      EXPECT_EQ(tw.generators[0], Inverse(p)) << name;
    } else if (name == "x2" || name == "x5") {
      EXPECT_EQ(tw.generators[0], p) << name;
    } else {
      FAIL() << "unexpected witness variable " << name;
    }
    // Each witness covers exactly the two atoms around its variable.
    EXPECT_EQ(tw.atoms.size(), 2u);
    EXPECT_EQ(tw.tr.size(), 2u);
  }
}

TEST(TreeWitnessTest, RequiredVarFilter) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSR");
  TreeWitnessEnumerator enumerator(&ctx, q);
  std::vector<int> atoms = {0, 1, 2};
  int x1 = q.FindVariable("x1");
  int x2 = q.FindVariable("x2");
  auto with_x1 = enumerator.Enumerate(atoms, SortedAnswerVars(q), x1);
  ASSERT_EQ(with_x1.size(), 1u);
  EXPECT_EQ(with_x1[0].ti, std::vector<int>{x1});
  auto with_x2 = enumerator.Enumerate(atoms, SortedAnswerVars(q), x2);
  ASSERT_EQ(with_x2.size(), 1u);
  EXPECT_EQ(with_x2[0].ti, std::vector<int>{x2});
}

TEST(TreeWitnessTest, NoWitnessesWithoutExistentialAxioms) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  tbox.AddAtomicInclusion("A", "B");  // Depth 0: no anonymous part.
  vocab.InternPredicate("R");
  tbox.AddRoleInclusion(RoleOf(vocab.FindPredicate("R")),
                        RoleOf(vocab.InternPredicate("Q")));
  tbox.Normalize();
  RewritingContext ctx(tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("R", "x", "y");
  q.AddBinary("R", "y", "z");
  q.MarkAnswerVariable(q.FindVariable("x"));
  TreeWitnessEnumerator enumerator(&ctx, q);
  // Normalisation gives every role an A[rho] <-> E rho pair, so depth-1
  // nulls exist; but no witness can cover both R atoms around y unless the
  // chase realises R both into and out of a null, which needs role axioms
  // that this ontology lacks except trivial ones.
  auto witnesses =
      enumerator.Enumerate({0, 1}, SortedAnswerVars(q), q.FindVariable("y"));
  for (const TreeWitness& tw : witnesses) {
    EXPECT_FALSE(tw.generators.empty());
  }
}

TEST(TreeWitnessTest, MultiVariableWitness) {
  // Depth-2 ontology: A <= E T1, E T1^- <= E T2; query T1(x,y), T2(y,z)
  // has a two-variable witness {y, z} anchored at x.
  Vocabulary vocab;
  TBox tbox(&vocab);
  tbox.AddExistsRhs("A", "T1");
  tbox.AddConceptInclusion(
      BasicConcept::Exists(RoleOf(vocab.FindPredicate("T1"), true)),
      BasicConcept::Exists(RoleOf(vocab.InternPredicate("T2"))));
  tbox.Normalize();
  RewritingContext ctx(tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("T1", "x", "y");
  q.AddBinary("T2", "y", "z");
  q.MarkAnswerVariable(q.FindVariable("x"));
  TreeWitnessEnumerator enumerator(&ctx, q);
  auto witnesses = enumerator.Enumerate({0, 1}, SortedAnswerVars(q), -1);
  bool found_two_var = false;
  for (const TreeWitness& tw : witnesses) {
    if (tw.ti.size() == 2) {
      found_two_var = true;
      EXPECT_EQ(tw.tr, std::vector<int>{q.FindVariable("x")});
      EXPECT_EQ(tw.atoms.size(), 2u);
    }
  }
  EXPECT_TRUE(found_two_var);
}

}  // namespace
}  // namespace owlqr
