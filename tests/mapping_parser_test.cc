#include <gtest/gtest.h>

#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "syntax/mapping_parser.h"
#include "syntax/parser.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

TEST(MappingParserTest, ParseAndRun) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  std::string error;
  ASSERT_TRUE(ParseTBox(R"(
      Professor SUB EX teaches
      EX teaches- SUB Course
  )", &tbox, &error)) << error;
  tbox.Normalize();

  TableStore tables(&vocab);
  GavMapping mapping(&vocab, &tables);
  ASSERT_TRUE(ParseMapping(R"(
      # staff(person, position); courses(course, lecturer)
      Professor(x) <- staff(x, "professor")
      teaches(x, y) <- courses(y, x)
  )", &mapping, &error)) << error;
  EXPECT_EQ(mapping.rules().size(), 2u);
  EXPECT_EQ(tables.num_tables(), 2);
  EXPECT_EQ(tables.TableArity(tables.FindTable("staff")), 2);

  tables.AddRow("staff", {"ann", "professor"});
  tables.AddRow("staff", {"eve", "admin"});
  tables.AddRow("courses", {"logic", "bob"});

  auto query = ParseQuery("q(x) :- teaches(x, y), Course(y)", &vocab, &error);
  ASSERT_TRUE(query.has_value()) << error;
  RewritingContext ctx(tbox);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult rewriting_rw = RewriteOmqOrError(&ctx, *query, RewriterKind::kLin, options);
  OWLQR_CHECK_MSG(rewriting_rw.ok(), rewriting_rw.status.message().c_str());
  NdlProgram rewriting = std::move(rewriting_rw.program);
  NdlProgram unfolded = UnfoldThroughMapping(rewriting, mapping);
  DataInstance empty(&vocab);
  Evaluator eval(unfolded, empty, tables);
  auto answers = eval.Evaluate();
  ASSERT_EQ(answers.size(), 2u);  // ann (anonymous course) and bob.
}

TEST(MappingParserTest, Errors) {
  Vocabulary vocab;
  TableStore tables(&vocab);
  GavMapping mapping(&vocab, &tables);
  std::string error;
  EXPECT_FALSE(ParseMapping("Professor(x) staff(x)", &mapping, &error));
  EXPECT_FALSE(ParseMapping("P(x, y, z) <- t(x, y, z)", &mapping, &error));
  EXPECT_FALSE(ParseMapping("P(\"c\") <- t(x)", &mapping, &error));
  EXPECT_FALSE(ParseMapping("P(x) <- ", &mapping, &error));
  EXPECT_FALSE(ParseMapping("P(x) <- t(y)", &mapping, &error));  // x unbound.
  EXPECT_FALSE(
      ParseMapping("P(x) <- t(x)\nQ(x) <- t(x, x)", &mapping, &error));
  EXPECT_FALSE(ParseMapping("P(x) <- t(x, 'unterminated", &mapping, &error));
}

TEST(MappingParserTest, QuotedConstantsAndSharedVariables) {
  Vocabulary vocab;
  TableStore tables(&vocab);
  GavMapping mapping(&vocab, &tables);
  std::string error;
  ASSERT_TRUE(ParseMapping(
      "knows(x, y) <- meet(x, y, 'paris'), meet(y, x, \"paris\")",
      &mapping, &error)) << error;
  const MappingRule& rule = mapping.rules()[0];
  EXPECT_FALSE(rule.is_concept);
  ASSERT_EQ(rule.body.size(), 2u);
  EXPECT_TRUE(rule.body[0].args[2].is_constant);
  EXPECT_EQ(rule.body[0].args[2].value, vocab.FindIndividual("paris"));
  // x and y are shared across the two atoms.
  EXPECT_EQ(rule.body[0].args[0].value, rule.body[1].args[1].value);
}

}  // namespace
}  // namespace owlqr
