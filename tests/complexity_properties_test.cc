// Quantitative checks of the paper's structural theorems on actual rewriter
// output, across every prefix of the three sequences (ontology depth d = 1,
// treewidth t = 1, leaves l = 2):
//   Theorem 12: Lin is a linear NDL program of width <= 2l.
//   Theorem 9 (via Lemma 5): Log has width <= 3(t+1) and skinny depth
//     O(log |Q|) — i.e. the class is skinny-reducible.
//   Theorem 13 (via Lemma 14): Tw has logarithmic depth and width ~ l + 1
//     (our subquery interfaces may carry one extra variable).

#include <gtest/gtest.h>

#include <cmath>

#include "core/rewriters.h"
#include "ndl/skinny.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

struct BoundsCase {
  int sequence;
  int length;
};

class StructuralBounds : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(StructuralBounds, TheoremBoundsHold) {
  const BoundsCase& param = GetParam();
  const char* words[3] = {kSequence1, kSequence2, kSequence3};
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  std::string word(words[param.sequence], 0,
                   static_cast<size_t>(param.length));
  ConjunctiveQuery query = SequenceQuery(&vocab, word);
  constexpr int kLeaves = 2;     // l.
  constexpr int kTreewidth = 1;  // t.

  // Theorem 12: linear NDL of width <= 2l, polynomially many clauses.
  {
    RewriteResult lin_rw = RewriteOmqOrError(&ctx, query, RewriterKind::kLin);
    OWLQR_CHECK_MSG(lin_rw.ok(), lin_rw.status.message().c_str());
    NdlProgram lin = std::move(lin_rw.program);
    EXPECT_TRUE(lin.IsLinear());
    EXPECT_LE(lin.Width(), 2 * kLeaves);
    EXPECT_LE(lin.num_clauses(), 10 * param.length + 10);
  }
  // Theorem 9: width <= 3(t+1); skinny depth <= 6 log |Q| (we allow the
  // constant the paper's Section 3.2 computes).
  {
    RewriteResult log_p_rw = RewriteOmqOrError(&ctx, query, RewriterKind::kLog);
    OWLQR_CHECK_MSG(log_p_rw.ok(), log_p_rw.status.message().c_str());
    NdlProgram log_p = std::move(log_p_rw.program);
    EXPECT_LE(log_p.Width(), 3 * (kTreewidth + 1));
    double omq_size =
        static_cast<double>(tbox->NumAxioms() + 3 * param.length);
    EXPECT_LE(SkinnyDepth(log_p), 6.0 * std::log2(omq_size) + 6.0);
    // The skinny transform realises the bound.
    NdlProgram skinny = SkinnyTransform(log_p);
    EXPECT_TRUE(skinny.IsSkinny());
    EXPECT_LE(skinny.Depth(), SkinnyDepth(log_p));
  }
  // Theorem 13: depth <= log |q| + O(1); width <= l + 2.
  {
    RewriteResult tw_rw = RewriteOmqOrError(&ctx, query, RewriterKind::kTw);
    OWLQR_CHECK_MSG(tw_rw.ok(), tw_rw.status.message().c_str());
    NdlProgram tw = std::move(tw_rw.program);
    EXPECT_LE(tw.Depth(),
              static_cast<int>(std::ceil(std::log2(param.length + 1))) + 2);
    EXPECT_LE(tw.Width(), kLeaves + 2);
  }
}

std::vector<BoundsCase> AllCases() {
  std::vector<BoundsCase> cases;
  for (int s = 0; s < 3; ++s) {
    for (int l = 1; l <= 15; ++l) cases.push_back({s, l});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrefixes, StructuralBounds, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<BoundsCase>& info) {
      return "seq" + std::to_string(info.param.sequence + 1) + "_len" +
             std::to_string(info.param.length);
    });

}  // namespace
}  // namespace owlqr
