// Robustness: all text parsers must reject garbage cleanly (error message,
// no crash, no partial-state corruption that breaks later use).

#include <gtest/gtest.h>

#include "syntax/mapping_parser.h"
#include "syntax/ndl_parser.h"
#include "syntax/parser.h"

namespace owlqr {
namespace {

const char* kGarbage[] = {
    "",
    "   \n\t\n",
    "((((",
    "SUB SUB SUB",
    "EX EX EX",
    "A SUB",
    "<- <-",
    "q( :- )",
    "q(x) :- ,,,",
    "goal:",
    "goal: \n <- ",
    "DISJOINT",
    "REFLEXIVE P Q R",
    "a(b(c(d)))",
    "P(x) <- ')",
    "\x01\x02\x03",
    "q(x) :- R(x, y), ",
    "name_with_(paren <- t(x)",
};

TEST(ParserFuzzTest, TBoxParserNeverCrashes) {
  for (const char* input : kGarbage) {
    Vocabulary vocab;
    TBox tbox(&vocab);
    std::string error;
    ParseTBox(input, &tbox, &error);  // Outcome irrelevant.
  }
}

TEST(ParserFuzzTest, QueryParserNeverCrashes) {
  for (const char* input : kGarbage) {
    Vocabulary vocab;
    std::string error;
    ParseQuery(input, &vocab, &error);
  }
}

TEST(ParserFuzzTest, DataParserNeverCrashes) {
  for (const char* input : kGarbage) {
    Vocabulary vocab;
    DataInstance data(&vocab);
    std::string error;
    ParseData(input, &data, &error);
  }
}

TEST(ParserFuzzTest, NdlParserNeverCrashes) {
  for (const char* input : kGarbage) {
    Vocabulary vocab;
    std::string error;
    ParseNdlProgram(input, &vocab, &error);
  }
}

TEST(ParserFuzzTest, MappingParserNeverCrashes) {
  for (const char* input : kGarbage) {
    Vocabulary vocab;
    TableStore tables(&vocab);
    GavMapping mapping(&vocab, &tables);
    std::string error;
    ParseMapping(input, &mapping, &error);
  }
}

TEST(ParserFuzzTest, VocabularyUsableAfterFailedParse) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  std::string error;
  ParseTBox("A SUB EX", &tbox, &error);  // Fails mid-line.
  // The vocabulary and TBox remain usable.
  ASSERT_TRUE(ParseTBox("A SUB B", &tbox, &error)) << error;
  tbox.Normalize();
  EXPECT_GE(tbox.NumAxioms(), 1);
}

}  // namespace
}  // namespace owlqr
