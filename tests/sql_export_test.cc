// End-to-end validation of the SQL/view export (the Section 6 "views in
// standard DBMSs" question): the generated DDL + views are executed on an
// in-memory SQLite database loaded with the same data the NDL evaluator
// sees, and the goal view must return exactly the same answers.

#include <gtest/gtest.h>
#include <sqlite3.h>

#include <set>

#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "syntax/sql_export.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

class SqliteDb {
 public:
  SqliteDb() { EXPECT_EQ(sqlite3_open(":memory:", &db_), SQLITE_OK); }
  ~SqliteDb() { sqlite3_close(db_); }

  void Exec(const std::string& sql) {
    char* message = nullptr;
    int rc = sqlite3_exec(db_, sql.c_str(), nullptr, nullptr, &message);
    ASSERT_EQ(rc, SQLITE_OK) << (message ? message : "") << "\n" << sql;
  }

  std::set<std::vector<std::string>> Query(const std::string& sql) {
    std::set<std::vector<std::string>> rows;
    char* message = nullptr;
    auto callback = [](void* out, int argc, char** argv, char**) -> int {
      std::vector<std::string> row;
      for (int i = 0; i < argc; ++i) row.push_back(argv[i] ? argv[i] : "");
      static_cast<std::set<std::vector<std::string>>*>(out)->insert(row);
      return 0;
    };
    int rc = sqlite3_exec(db_, sql.c_str(), callback, &rows, &message);
    EXPECT_EQ(rc, SQLITE_OK) << (message ? message : "") << "\n" << sql;
    return rows;
  }

 private:
  sqlite3* db_ = nullptr;
};

// Loads the instance into the base tables the export declared.
void LoadData(SqliteDb* db, const SqlExport& sql, const NdlProgram& program,
              const DataInstance& data) {
  const Vocabulary& vocab = *program.vocabulary();
  // Recover table names from the DDL by re-deriving them per predicate: the
  // exporter emits tables in predicate order, so parse CREATE TABLE lines.
  std::vector<std::string> table_names;
  size_t pos = 0;
  while ((pos = sql.create_tables.find("CREATE TABLE ", pos)) !=
         std::string::npos) {
    pos += 13;
    size_t paren = sql.create_tables.find('(', pos);
    table_names.push_back(sql.create_tables.substr(pos, paren - pos));
  }
  size_t next = 0;
  for (int p = 0; p < program.num_predicates(); ++p) {
    const PredicateInfo& info = program.predicate(p);
    if (info.kind == PredicateKind::kConceptEdb) {
      const std::string& table = table_names[next++];
      for (int a : data.ConceptMembers(info.external_id)) {
        db->Exec("INSERT INTO " + table + " VALUES('" +
                 vocab.IndividualName(a) + "');");
      }
    } else if (info.kind == PredicateKind::kRoleEdb) {
      const std::string& table = table_names[next++];
      for (auto [s, o] : data.RolePairs(info.external_id)) {
        db->Exec("INSERT INTO " + table + " VALUES('" +
                 vocab.IndividualName(s) + "', '" + vocab.IndividualName(o) +
                 "');");
      }
    }
  }
}

class SqlExportRewriters : public ::testing::TestWithParam<RewriterKind> {};

TEST_P(SqlExportRewriters, SqliteAgreesWithEvaluator) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRR");
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(&ctx, q, GetParam(), options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);

  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("P", "b", "w");
  data.Assert("R", "b", "c");
  data.Assert("S", "c", "d");
  data.Assert("R", "d", "e");

  Evaluator eval(program, data);
  std::set<std::vector<std::string>> expected;
  for (const auto& tuple : eval.Evaluate()) {
    std::vector<std::string> row;
    for (int ind : tuple) row.push_back(vocab.IndividualName(ind));
    expected.insert(row);
  }

  SqlExport sql = ExportSql(program);
  SqliteDb db;
  db.Exec(sql.create_tables);
  LoadData(&db, sql, program, data);
  db.Exec(sql.create_views);
  auto actual = db.Query("SELECT * FROM " + sql.goal_view + ";");
  EXPECT_EQ(actual, expected) << RewriterName(GetParam());
  EXPECT_FALSE(expected.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllRewriters, SqlExportRewriters,
    ::testing::Values(RewriterKind::kLin, RewriterKind::kLog,
                      RewriterKind::kTw, RewriterKind::kTwStar,
                      RewriterKind::kUcq, RewriterKind::kPrestoLike),
    [](const ::testing::TestParamInfo<RewriterKind>& info) {
      std::string name = RewriterName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(SqlExportTest, BooleanQuery) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("S", "x", "y");  // Boolean: exists an S-edge (or a P witness).
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kTw, options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);
  SqlExport sql = ExportSql(program);

  SqliteDb db;
  db.Exec(sql.create_tables);
  db.Exec(sql.create_views);
  EXPECT_TRUE(db.Query("SELECT * FROM " + sql.goal_view + ";").empty());

  SqliteDb db2;
  SqlExport sql2 = ExportSql(program);
  db2.Exec(sql2.create_tables);
  LoadData(&db2, sql2, program, [&] {
    DataInstance d(&vocab);
    d.Assert("P", "a", "b");
    return d;
  }());
  db2.Exec(sql2.create_views);
  EXPECT_FALSE(db2.Query("SELECT * FROM " + sql2.goal_view + ";").empty());
}

}  // namespace
}  // namespace owlqr
