// The Log rewriter is the only optimal one that handles non-tree CQs
// (bounded treewidth > 1).  These tests validate it — and the UCQ baseline,
// whose tree-witness machinery is also shape-agnostic — on cyclic queries
// against the reference engine, plus the Lemma 5 skinny transformation on
// top of real rewriter output.

#include <gtest/gtest.h>

#include <random>

#include "chase/certain_answers.h"
#include "core/lin_rewriter.h"
#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "ndl/skinny.h"
#include "ndl/transforms.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

DataInstance RandomGraphData(Vocabulary* vocab, const TBox& tbox,
                             std::mt19937_64* rng) {
  DataInstance data(vocab);
  std::vector<int> inds;
  for (int i = 0; i < 6; ++i) {
    inds.push_back(data.AddIndividual("g" + std::to_string(i)));
  }
  int r = vocab->FindPredicate("R");
  int s = vocab->FindPredicate("S");
  for (int i = 0; i < 10; ++i) {
    int pred = (*rng)() % 2 == 0 ? r : s;
    data.AddRoleAssertion(pred, inds[(*rng)() % 6], inds[(*rng)() % 6]);
  }
  int a_p = tbox.ExistsConcept(RoleOf(vocab->FindPredicate("P")));
  data.AddConceptAssertion(a_p, inds[(*rng)() % 6]);
  return data;
}

class CyclicQueries : public ::testing::TestWithParam<int> {};

TEST_P(CyclicQueries, LogAndUcqMatchReferenceOnCycles) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  std::mt19937_64 rng(31 + GetParam());

  // A random cyclic query: a cycle of length 3-4 plus a pendant path.
  ConjunctiveQuery q(&vocab);
  int cycle_len = 3 + static_cast<int>(rng() % 2);
  std::vector<int> cycle;
  for (int i = 0; i < cycle_len; ++i) {
    cycle.push_back(q.AddVariable("c" + std::to_string(i)));
  }
  auto pred = [&] { return rng() % 2 == 0 ? vocab.FindPredicate("R")
                                          : vocab.FindPredicate("S"); };
  for (int i = 0; i < cycle_len; ++i) {
    q.AddBinaryAtom(pred(), cycle[i], cycle[(i + 1) % cycle_len]);
  }
  int tail = q.AddVariable("t0");
  q.AddBinaryAtom(pred(), cycle[0], tail);
  int tail2 = q.AddVariable("t1");
  q.AddBinaryAtom(pred(), tail, tail2);
  if (rng() % 2 == 0) q.MarkAnswerVariable(cycle[1]);
  if (rng() % 2 == 0) q.MarkAnswerVariable(tail2);

  DataInstance data = RandomGraphData(&vocab, *tbox, &rng);
  auto reference = ComputeCertainAnswers(*tbox, q, data);
  ASSERT_TRUE(reference.consistent);

  for (RewriterKind kind : {RewriterKind::kLog, RewriterKind::kUcq}) {
    RewriteOptions options;
    options.arbitrary_instances = true;
    RewriteResult program_rw = RewriteOmqOrError(&ctx, q, kind, options);
    OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
    NdlProgram program = std::move(program_rw.program);
    Evaluator eval(program, data);
    EXPECT_EQ(eval.Evaluate(), reference.answers)
        << RewriterName(kind) << "\n"
        << q.ToString();

    // Lemma 5 on the real rewriting: the skinny form stays equivalent.
    NdlProgram skinny = SkinnyTransform(program);
    EXPECT_TRUE(skinny.IsSkinny());
    Evaluator eval2(skinny, data);
    EXPECT_EQ(eval2.Evaluate(), reference.answers)
        << RewriterName(kind) << " (skinny)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicQueries, ::testing::Range(0, 16));

TEST(LinRootChoiceTest, AnyRootGivesTheSameAnswers) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRR");
  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  data.AddConceptAssertion(a_p, vocab.FindIndividual("b"));
  data.Assert("R", "b", "c");

  auto reference = ComputeCertainAnswers(*tbox, q, data);
  for (int root = 0; root < q.num_vars(); ++root) {
    NdlProgram lin = LinRewrite(&ctx, q, root);
    EXPECT_TRUE(lin.IsLinear()) << "root " << root;
    NdlProgram program =
        LinearStarTransform(lin, ctx.tbox(), ctx.saturation());
    Evaluator eval(program, data);
    EXPECT_EQ(eval.Evaluate(), reference.answers) << "root " << root;
  }
}

}  // namespace
}  // namespace owlqr
