// End-to-end soak of the serving stack: 8 concurrent HTTP clients against a
// 2-slot-per-tenant governed registry of two tenants.  Every OK response
// must be byte-identical (same tuples, same order) to an in-process
// Service::Handle of the same request at the same snapshot version; the
// governor must shed overload as 429s whose bodies still parse as full
// execute results; and per tenant the terminal outcomes must account for
// every execute attempt:
//   admitted + rejected() + answer_cache_hits + coalesced == attempts.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/api.h"
#include "server/client.h"
#include "server/http_server.h"
#include "server/registry.h"
#include "util/json.h"

namespace owlqr {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 25;
constexpr int kCourses = 4;
constexpr int kLecturersPerCourse = 25;
constexpr int kSoloMembers = 6;

// One tenant's vocabulary theme: the same axiom shapes under different
// names, so the two TBoxes get distinct fingerprints.
struct TenantSpec {
  std::string alias;
  std::string ontology;
  std::string data;
  std::string query;
  std::string subrole;  // Role name for the apply-facts batch.
  std::string course0;  // An existing object individual for the new fact.
};

TenantSpec MakeSpec(const std::string& alias, const std::string& concept_name,
                    const std::string& role, const std::string& subrole,
                    const std::string& range, const char* person,
                    const char* course) {
  TenantSpec spec;
  spec.alias = alias;
  spec.ontology = concept_name + " SUB EX " + role + "\nEX " + role + "- SUB " +
                  range + "\n" + subrole + " SUBR " + role + "\n";
  // A blocky join graph: the 4-atom path query below walks each course's
  // lecturer set against itself twice (~kCourses * kLecturersPerCourse^3
  // join emissions per execute) -- enough sustained work per admitted run
  // that concurrent requests overlap on the governor's two slots and
  // saturation actually sheds.
  for (int c = 0; c < kCourses; ++c) {
    for (int i = 0; i < kLecturersPerCourse; ++i) {
      spec.data += subrole + "(" + person +
                   std::to_string(c * kLecturersPerCourse + i) + ", " +
                   course + std::to_string(c) + ").\n";
    }
  }
  // Concept-only members answer through the anonymous EX witness: each
  // contributes exactly the reflexive pair.
  for (int i = 0; i < kSoloMembers; ++i) {
    spec.data += concept_name + "(solo" + std::to_string(i) + ").\n";
  }
  spec.query = "q(x, w) :- " + role + "(x, y), " + role + "(z, y), " +
               role + "(z, v), " + role + "(w, v)";
  spec.subrole = subrole;
  spec.course0 = course + std::string("0");
  return spec;
}

// What one client thread saw; aggregated (and asserted on) by the main
// thread only, because gtest assertions are not thread-safe.
struct ThreadOutcome {
  std::vector<api::WireExecuteResult> ok;
  std::vector<long> ok_limits;  // The unique limit key each OK run used.
  long rejected = 0;
  long unexpected = 0;
  std::string first_error;
};

class HttpSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    specs_.push_back(MakeSpec("alpha", "Professor", "teaches", "lectures",
                              "Course", "p", "c"));
    specs_.push_back(MakeSpec("beta", "Student", "enrolled", "takes",
                              "Module", "s", "m"));
    // The fingerprint hashes the normalized TBox *structure*, not its
    // names: two isomorphic ontologies over fresh vocabularies intern to
    // identical ids and would collide as duplicates.  One extra axiom
    // makes beta a genuinely different TBox.
    specs_[1].ontology += "Tutor SUB Student\n";

    server::RegistryOptions registry_options;
    registry_options.max_tenants = 2;
    registry_options.process_slots = 4;  // Carved to 2 slots per tenant.
    registry_options.engine.governor.max_queue = 0;  // Saturated -> 429 now.
    registry_options.engine.answer_cache_capacity = 64;
    registry_options.engine.coalesce = true;
    registry_ = std::make_unique<server::EngineRegistry>(registry_options);
    for (const TenantSpec& spec : specs_) {
      ASSERT_TRUE(
          registry_->RegisterParsed(spec.alias, spec.ontology, spec.data)
              .ok());
    }
    ASSERT_EQ(registry_->tenant_slots(), 2);
    service_ = std::make_unique<api::Service>(registry_.get());

    server::HttpServerOptions options;
    // Thread-per-connection: every concurrent keep-alive client needs its
    // own worker, plus headroom for the main thread's own clients.
    options.num_workers = kThreads + 4;
    server_ = std::make_unique<server::HttpServer>(service_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  static api::WireExecuteRequest RequestFor(const TenantSpec& spec) {
    api::WireExecuteRequest request;
    request.query = spec.query;
    return request;
  }

  // The in-process oracle: the same protocol-agnostic dispatch the HTTP
  // layer fronts, with no socket.  Counts as one execute attempt against
  // the tenant's governor.
  api::WireExecuteResult Oracle(const TenantSpec& spec,
                                const api::WireExecuteRequest& request) {
    api::Request raw;
    raw.verb = api::Verb::kExecute;
    raw.tenant = spec.alias;
    raw.body = api::ExecuteRequestToJson(request);
    api::Response response = service_->Handle(raw);
    api::WireExecuteResult result;
    JsonValue parsed;
    EXPECT_TRUE(JsonValue::Parse(response.body, &parsed));
    EXPECT_TRUE(api::ExecuteResultFromJson(parsed, &result).ok());
    return result;
  }

  std::vector<TenantSpec> specs_;
  std::unique_ptr<server::EngineRegistry> registry_;
  std::unique_ptr<api::Service> service_;
  std::unique_ptr<server::HttpServer> server_;
};

TEST_F(HttpSoakTest, ConcurrentClientsSeeExactAnswersAndAccountedSheds) {
  // --- Phase 1: 8 clients (4 per tenant) pound unique-keyed executes. ----
  std::vector<ThreadOutcome> outcomes(kThreads);
  std::promise<void> go;
  std::shared_future<void> gate = go.get_future().share();
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([this, t, gate, &outcomes] {
      const TenantSpec& spec = specs_[static_cast<size_t>(t % 2)];
      ThreadOutcome& out = outcomes[static_cast<size_t>(t)];
      server::HttpClient client("127.0.0.1", server_->port());
      gate.wait();
      for (int k = 0; k < kIters; ++k) {
        api::WireExecuteRequest request = RequestFor(spec);
        // A per-request unique limit defeats the answer-cache and coalesce
        // keys, so every admitted run really evaluates and saturation
        // really sheds.
        long limit = 10'000'000 + t * 1000 + k;
        request.exec.limits.max_generated_tuples = limit;
        api::WireExecuteResult result;
        Status status = client.Execute(spec.alias, request, &result);
        if (status.ok()) {
          out.ok.push_back(std::move(result));
          out.ok_limits.push_back(limit);
        } else if (status.code() == StatusCode::kRejected &&
                   result.status.code() == StatusCode::kRejected) {
          // A governed shed: the 429 body parsed as a full execute result.
          ++out.rejected;
          if (!result.answers.empty()) {
            ++out.unexpected;
            out.first_error = "shed result carried answers";
          }
        } else {
          ++out.unexpected;
          if (out.first_error.empty()) out.first_error = status.ToString();
        }
      }
    });
  }
  go.set_value();
  for (std::thread& client : clients) client.join();

  long total_rejected = 0;
  std::vector<long> ok_per_tenant(2, 0);
  for (int t = 0; t < kThreads; ++t) {
    const ThreadOutcome& out = outcomes[static_cast<size_t>(t)];
    EXPECT_EQ(out.unexpected, 0) << "thread " << t << ": " << out.first_error;
    EXPECT_EQ(out.ok.size() + static_cast<size_t>(out.rejected),
              static_cast<size_t>(kIters))
        << "thread " << t;
    total_rejected += out.rejected;
    ok_per_tenant[static_cast<size_t>(t % 2)] +=
        static_cast<long>(out.ok.size());
  }
  // With 4 clients per tenant contending for 2 slots and no queue, the
  // governor must have shed; zero rejections would mean it never engaged.
  EXPECT_GT(total_rejected, 0);

  // --- Phase 2: every OK response replays byte-identically in process. ---
  std::vector<long> oracle_per_tenant(2, 0);
  for (int t = 0; t < kThreads; ++t) {
    const TenantSpec& spec = specs_[static_cast<size_t>(t % 2)];
    const ThreadOutcome& out = outcomes[static_cast<size_t>(t)];
    for (size_t i = 0; i < out.ok.size(); ++i) {
      EXPECT_EQ(out.ok[i].snapshot_version, 1u);
      api::WireExecuteRequest request = RequestFor(spec);
      request.exec.limits.max_generated_tuples = out.ok_limits[i];
      api::WireExecuteResult expected = Oracle(spec, request);
      ++oracle_per_tenant[static_cast<size_t>(t % 2)];
      ASSERT_TRUE(expected.status.ok());
      EXPECT_EQ(expected.snapshot_version, out.ok[i].snapshot_version);
      // Byte-identical: same tuples in the same (engine-sorted) order.
      EXPECT_EQ(expected.answers, out.ok[i].answers)
          << spec.alias << " thread " << t << " iter " << i;
    }
  }

  // --- Phase 3: per tenant — cache hit, snapshot bump, and accounting. --
  for (size_t tenant = 0; tenant < specs_.size(); ++tenant) {
    const TenantSpec& spec = specs_[tenant];
    server::HttpClient client("127.0.0.1", server_->port());
    api::WireExecuteRequest fixed = RequestFor(spec);  // Default limits.
    api::WireExecuteResult first;
    ASSERT_TRUE(client.Execute(spec.alias, fixed, &first).ok());
    EXPECT_FALSE(first.cached);  // This limit key was never used above.
    api::WireExecuteResult second;
    ASSERT_TRUE(client.Execute(spec.alias, fixed, &second).ok());
    EXPECT_TRUE(second.cached);  // Same plan, version and limits: memoized.
    EXPECT_EQ(second.answers, first.answers);

    // A new fact through the wire bumps the snapshot and shows up in the
    // next execute (the version changes the cache key, so it evaluates).
    api::WireFactBatch batch;
    batch.roles.push_back({spec.subrole, "fresh", spec.course0});
    uint64_t version = 0;
    ASSERT_TRUE(client.ApplyFacts(spec.alias, batch, &version).ok());
    EXPECT_EQ(version, 2u);
    api::WireExecuteResult bumped;
    ASSERT_TRUE(client.Execute(spec.alias, fixed, &bumped).ok());
    EXPECT_EQ(bumped.snapshot_version, 2u);
    EXPECT_GT(bumped.answers.size(), first.answers.size());
    bool saw_fresh = false;
    for (const std::vector<std::string>& tuple : bumped.answers) {
      for (const std::string& name : tuple) {
        if (name == "fresh") saw_fresh = true;
      }
    }
    EXPECT_TRUE(saw_fresh);

    // Terminal-outcome accounting: the four buckets partition every
    // execute attempt this test made against the tenant.
    QueryGovernor::Counters counters;
    ASSERT_TRUE(client.Stats(spec.alias, &counters).ok());
    long phase1 = (kThreads / 2) * kIters;
    long attempts = phase1 + oracle_per_tenant[tenant] + 3;
    EXPECT_EQ(counters.admitted + counters.rejected() +
                  counters.answer_cache_hits + counters.coalesced,
              attempts)
        << spec.alias;
    EXPECT_EQ(counters.rejected_queue_full + counters.rejected_timeout,
              counters.rejected())
        << spec.alias;
  }
}

}  // namespace
}  // namespace owlqr
