// Transport-level tests for the HTTP/1.1 front end: well-formed round trips
// through HttpClient, and the hostile-client cases (malformed bodies,
// oversized heads, slowloris trickle, bad framing) that must be answered
// with the right 4xx/5xx instead of a hang or a crash.

#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "server/api.h"
#include "server/client.h"
#include "server/registry.h"
#include "util/json.h"

namespace owlqr {
namespace {

constexpr char kOntology[] = R"(
    Professor SUB EX teaches
    EX teaches- SUB Course
    lectures SUBR teaches
)";
constexpr char kData[] = "Professor(ann).\nlectures(bob, algebra).\n";
constexpr char kQuery[] = "q(x) :- teaches(x, y), Course(y)";

// A hand-driven connection for requests HttpClient refuses to produce.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ =
        fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(const std::string& data) {
    return ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(data.size());
  }

  // Blocks until the status line arrives; returns its numeric code (0 on a
  // closed/failed read).
  int ReadStatus() {
    std::string buf;
    char chunk[512];
    while (buf.find("\r\n") == std::string::npos) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buf.append(chunk, static_cast<size_t>(n));
    }
    if (buf.rfind("HTTP/1.1 ", 0) != 0 || buf.size() < 12) return 0;
    return std::atoi(buf.c_str() + 9);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<server::EngineRegistry>();
    ASSERT_TRUE(registry_->RegisterParsed("uni", kOntology, kData).ok());
    service_ = std::make_unique<api::Service>(registry_.get());
    server::HttpServerOptions options;
    options.num_workers = 2;
    options.max_header_bytes = 1024;
    options.max_body_bytes = 2048;
    options.header_timeout_ms = 300;  // Fast slowloris verdicts.
    options.io_timeout_ms = 5000;
    options.watch_poll_ms = 20;
    server_ = std::make_unique<server::HttpServer>(service_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  std::string ExecutePath() const { return "/v1/t/uni/execute"; }

  std::unique_ptr<server::EngineRegistry> registry_;
  std::unique_ptr<api::Service> service_;
  std::unique_ptr<server::HttpServer> server_;
};

TEST_F(HttpServerTest, ExecuteRoundTripsThroughTheClient) {
  server::HttpClient client("127.0.0.1", server_->port());
  api::WireExecuteRequest request;
  request.query = kQuery;
  api::WireExecuteResult result;
  ASSERT_TRUE(client.Execute("uni", request, &result).ok());
  ASSERT_EQ(result.answers.size(), 2u);
  EXPECT_EQ(result.snapshot_version, 1u);
  EXPECT_GT(result.goal_tuples, 0);
}

TEST_F(HttpServerTest, PrepareApplyFactsStatsOverOneConnection) {
  server::HttpClient client("127.0.0.1", server_->port());
  api::WireExecuteRequest request;
  request.query = kQuery;
  std::string prepare_body;
  ASSERT_TRUE(client.Prepare("uni", request, &prepare_body).ok());
  JsonValue prepared;
  ASSERT_TRUE(JsonValue::Parse(prepare_body, &prepared));
  EXPECT_GT(prepared.Find("clauses")->AsLong(), 0);

  api::WireFactBatch batch;
  batch.roles.push_back({"lectures", "carol", "logic"});
  uint64_t version = 0;
  ASSERT_TRUE(client.ApplyFacts("uni", batch, &version).ok());
  EXPECT_EQ(version, 2u);

  QueryGovernor::Counters counters;
  ASSERT_TRUE(client.Stats("uni", &counters).ok());
  // Prepare/apply-facts do not pass the governor; only executes do.
  api::WireExecuteResult result;
  ASSERT_TRUE(client.Execute("uni", request, &result).ok());
  EXPECT_EQ(result.snapshot_version, 2u);
  ASSERT_TRUE(client.Stats("uni", &counters).ok());
  EXPECT_GE(counters.admitted, 1);
}

TEST_F(HttpServerTest, UnknownTenantAndPathAre404) {
  server::HttpClient client("127.0.0.1", server_->port());
  api::WireExecuteRequest request;
  request.query = kQuery;
  api::WireExecuteResult result;
  EXPECT_EQ(client.Execute("ghost", request, &result).code(),
            StatusCode::kNotFound);

  int http = 0;
  std::string body;
  ASSERT_TRUE(client.Get("/nope", &http, &body).ok());
  EXPECT_EQ(http, 404);
}

TEST_F(HttpServerTest, MalformedBodyIs400WithAnErrorEnvelope) {
  server::HttpClient client("127.0.0.1", server_->port());
  int http = 0;
  std::string body;
  ASSERT_TRUE(client.Post(ExecutePath(), "this is not json", &http, &body).ok());
  EXPECT_EQ(http, 400);
  JsonValue envelope;
  ASSERT_TRUE(JsonValue::Parse(body, &envelope));
  Status status;
  ASSERT_TRUE(api::ParseErrorBody(envelope, &status));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(HttpServerTest, WrongMethodIs405) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send("DELETE /v1/tenants HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_EQ(conn.ReadStatus(), 405);
}

TEST_F(HttpServerTest, PostWithoutContentLengthIs411) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(
      conn.Send("POST /v1/t/uni/execute HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_EQ(conn.ReadStatus(), 411);
}

TEST_F(HttpServerTest, ChunkedTransferIs501) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send(
      "POST /v1/t/uni/execute HTTP/1.1\r\nHost: x\r\n"
      "Transfer-Encoding: chunked\r\n\r\n"));
  EXPECT_EQ(conn.ReadStatus(), 501);
}

TEST_F(HttpServerTest, OversizedBodyIs413) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send(
      "POST /v1/t/uni/execute HTTP/1.1\r\nHost: x\r\n"
      "Content-Length: 1000000\r\n\r\n"));
  EXPECT_EQ(conn.ReadStatus(), 413);
}

TEST_F(HttpServerTest, OversizedHeaderIs431) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  std::string head = "GET /v1/tenants HTTP/1.1\r\nX-Filler: ";
  head.append(4096, 'a');  // Past the fixture's 1024-byte head cap.
  head += "\r\n\r\n";
  ASSERT_TRUE(conn.Send(head));
  EXPECT_EQ(conn.ReadStatus(), 431);
}

TEST_F(HttpServerTest, SlowlorisTrickleIs408) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  // Send a partial head and go silent; the server must give up after
  // header_timeout_ms, not hold the worker forever.
  ASSERT_TRUE(conn.Send("GET /v1/tenants HTTP/1.1\r\nX-Slow: d"));
  EXPECT_EQ(conn.ReadStatus(), 408);
}

TEST_F(HttpServerTest, BadHttpVersionIs505) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send("GET /v1/tenants HTTP/2.0\r\nHost: x\r\n\r\n"));
  EXPECT_EQ(conn.ReadStatus(), 505);
}

TEST_F(HttpServerTest, GarbageRequestLineIs400) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send("complete garbage\r\n\r\n"));
  EXPECT_EQ(conn.ReadStatus(), 400);
}

TEST_F(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  server::HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 5; ++i) {
    int http = 0;
    std::string body;
    ASSERT_TRUE(client.Get("/v1/tenants", &http, &body).ok()) << i;
    EXPECT_EQ(http, 200) << i;
  }
}

TEST_F(HttpServerTest, MetricsEndpointServesTraceJson) {
  server::HttpClient client("127.0.0.1", server_->port());
  int http = 0;
  std::string body;
  ASSERT_TRUE(client.Get("/metrics", &http, &body).ok());
  EXPECT_EQ(http, 200);
  JsonValue metrics;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(body, &metrics, &error)) << error;
  EXPECT_NE(metrics.Find("counters"), nullptr);
  EXPECT_NE(metrics.Find("spans"), nullptr);
}

TEST_F(HttpServerTest, HandoffOverflowShedsWith503) {
  // One worker, one handoff slot.  Park the worker on a keep-alive
  // connection, fill the handoff with a second, and the third must be shed
  // at the door with 503 instead of waiting.
  server::HttpServerOptions options;
  options.num_workers = 1;
  options.handoff_capacity = 1;
  options.header_timeout_ms = 400;  // Bound the parked connections' drain.
  server::HttpServer small(service_.get(), options);
  ASSERT_TRUE(small.Start().ok());
  server::HttpClient holder("127.0.0.1", small.port());
  int http = 0;
  std::string body;
  ASSERT_TRUE(holder.Get("/v1/tenants", &http, &body).ok());
  ASSERT_EQ(http, 200);  // The worker is now parked on this connection.
  RawConn parked(small.port());
  ASSERT_TRUE(parked.connected());
  // Give the acceptor time to enqueue `parked` before overflowing.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  RawConn shed(small.port());
  ASSERT_TRUE(shed.connected());
  EXPECT_EQ(shed.ReadStatus(), 503);
  small.Stop();
}

TEST_F(HttpServerTest, StopIsIdempotentAndClosesTheListener) {
  int port = server_->port();
  server_->Stop();
  // The listener is gone: a fresh connection must fail or be reset, and a
  // second Stop must be a no-op.
  server_->Stop();
  server::HttpClient client("127.0.0.1", port);
  int http = 0;
  std::string body;
  EXPECT_EQ(client.Get("/v1/tenants", &http, &body).code(),
            StatusCode::kRejected);
}

}  // namespace
}  // namespace owlqr
