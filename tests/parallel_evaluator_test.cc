#include <gtest/gtest.h>

#include <random>

#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

TEST(TopologicalLevelsTest, LevelsAreDependenceRanks) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int a = program.AddIdbPredicate("A1", 2);
  int b = program.AddIdbPredicate("B1", 2);
  int g = program.AddIdbPredicate("G", 2);
  for (int pred : {a, b}) {
    NdlClause c;
    c.head = {pred, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({a, {Term::Var(0), Term::Var(2)}});
  c.body.push_back({b, {Term::Var(2), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  auto levels = program.TopologicalLevels();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].size(), 2u);  // A1 and B1 are independent.
  EXPECT_EQ(levels[1], std::vector<int>{g});
}

class ParallelAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ParallelAgreement, ParallelMatchesSequential) {
  int threads = GetParam();
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  std::mt19937_64 rng(500 + threads);
  DatasetConfig config{"p", 80, 0.1, 0.1, 99};
  DataInstance data = GenerateDataset(&vocab, *tbox, config);

  for (int seq = 0; seq < 3; ++seq) {
    std::string word(std::vector<const char*>{kSequence1, kSequence2, kSequence3}[seq], 0, 8);
    ConjunctiveQuery q = SequenceQuery(&vocab, word);
    for (RewriterKind kind :
         {RewriterKind::kLog, RewriterKind::kTw, RewriterKind::kUcq}) {
      RewriteOptions options;
      options.arbitrary_instances = true;
      NdlProgram program = RewriteOmq(&ctx, q, kind, options);
      Evaluator sequential(program, data);
      EvaluationStats s1;
      auto expected = sequential.Evaluate(&s1);
      Evaluator parallel(program, data);
      EvaluationStats s2;
      auto actual = parallel.EvaluateParallel(threads, &s2);
      EXPECT_EQ(actual, expected)
          << RewriterName(kind) << " seq " << seq << " threads " << threads;
      EXPECT_EQ(s1.goal_tuples, s2.goal_tuples);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelAgreement,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace owlqr
