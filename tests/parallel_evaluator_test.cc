#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/rewriters.h"
#include "data/table_store.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

TEST(TopologicalLevelsTest, LevelsAreDependenceRanks) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int a = program.AddIdbPredicate("A1", 2);
  int b = program.AddIdbPredicate("B1", 2);
  int g = program.AddIdbPredicate("G", 2);
  for (int pred : {a, b}) {
    NdlClause c;
    c.head = {pred, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({a, {Term::Var(0), Term::Var(2)}});
  c.body.push_back({b, {Term::Var(2), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  auto levels = program.TopologicalLevels();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].size(), 2u);  // A1 and B1 are independent.
  EXPECT_EQ(levels[1], std::vector<int>{g});
}

class ParallelAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ParallelAgreement, ParallelMatchesSequential) {
  int threads = GetParam();
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  std::mt19937_64 rng(500 + threads);
  DatasetConfig config{"p", 80, 0.1, 0.1, 99};
  DataInstance data = GenerateDataset(&vocab, *tbox, config);

  for (int seq = 0; seq < 3; ++seq) {
    std::string word(std::vector<const char*>{kSequence1, kSequence2, kSequence3}[seq], 0, 8);
    ConjunctiveQuery q = SequenceQuery(&vocab, word);
    for (RewriterKind kind :
         {RewriterKind::kLog, RewriterKind::kTw, RewriterKind::kUcq}) {
      RewriteOptions options;
      options.arbitrary_instances = true;
      RewriteResult program_rw = RewriteOmqOrError(&ctx, q, kind, options);
      OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
      NdlProgram program = std::move(program_rw.program);
      Evaluator sequential(program, data);
      EvaluationStats s1;
      auto expected = sequential.Evaluate(&s1);
      Evaluator parallel(program, data);
      EvaluationStats s2;
      auto actual = parallel.EvaluateParallel(threads, &s2);
      EXPECT_EQ(actual, expected)
          << RewriterName(kind) << " seq " << seq << " threads " << threads;
      EXPECT_EQ(s1.goal_tuples, s2.goal_tuples);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelAgreement,
                         ::testing::Values(1, 2, 4, 8));

// Regression for the kTableEdb pre-materialisation race: a mapped
// (TableStore-backed) program whose first dependence level is wide enough
// that >= 4 workers race to materialise and index the shared table EDB.
// Run under ThreadSanitizer (ctest -L sanitize in an OWLQR_SANITIZE=thread
// build) this proves table rows are frozen before workers start.
TEST(ParallelRegressionTest, TableEdbIsPreMaterialized) {
  Vocabulary vocab;
  DataInstance empty(&vocab);
  TableStore tables(&vocab);
  int edges = tables.AddTable("edges", 2);
  // Big enough that level-1 workers genuinely overlap (a tiny workload lets
  // the first worker drain the whole level before the second even spawns,
  // which would hide the historical race from TSan).
  constexpr int kNodes = 400;
  for (int i = 0; i < kNodes; ++i) {
    for (int d : {3, 11, 17}) {
      tables.AddRow(edges,
                    {vocab.InternIndividual("n" + std::to_string(i)),
                     vocab.InternIndividual(
                         "n" + std::to_string((i * 7 + d) % kNodes))});
    }
  }

  NdlProgram program(&vocab);
  int t = program.AddTablePredicate("edges", 2, edges);
  int goal = program.AddIdbPredicate("G", 2);
  // Many independent level-1 predicates, each joining the table with
  // itself (forcing concurrent EdbRows + GetIndex on the same predicate).
  for (int k = 0; k < 24; ++k) {
    int p = program.AddIdbPredicate("P" + std::to_string(k), 2);
    NdlClause c;
    c.head = {p, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({t, {Term::Var(0), Term::Var(2)}});
    c.body.push_back({t, {Term::Var(2), Term::Var(1)}});
    program.AddClause(std::move(c));
    NdlClause g;
    g.head = {goal, {Term::Var(0), Term::Var(1)}};
    g.body.push_back({p, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(g));
  }
  program.SetGoal(goal);

  Evaluator sequential(program, empty, tables);
  EvaluationStats s1;
  auto expected = sequential.Evaluate(&s1);
  EXPECT_FALSE(expected.empty());
  for (int threads : {4, 8}) {
    Evaluator parallel(program, empty, tables);
    EvaluationStats s2;
    auto actual = parallel.EvaluateParallel(threads, &s2);
    EXPECT_EQ(actual, expected) << "threads " << threads;
    EXPECT_EQ(s1.goal_tuples, s2.goal_tuples);
  }
}

// Regression for the lazy ActiveDomain race: the only active-domain use is
// the both-variables-open equality path, reached concurrently by several
// level-1 predicates.  EvaluateParallel must compute the domain eagerly.
TEST(ParallelRegressionTest, AdomViaOpenEqualityIsEager) {
  Vocabulary vocab;
  DataInstance data(&vocab);
  for (int i = 0; i < 1500; ++i) {
    data.AddIndividual("a" + std::to_string(i));
  }
  TableStore tables(&vocab);
  int names = tables.AddTable("names", 1);
  for (int i = 0; i < 500; ++i) {
    tables.AddRow(names, {vocab.InternIndividual("t" + std::to_string(i))});
  }

  NdlProgram program(&vocab);
  int eq = program.EqualityPredicate();
  int goal = program.AddIdbPredicate("G", 2);
  for (int k = 0; k < 24; ++k) {
    int p = program.AddIdbPredicate("E" + std::to_string(k), 2);
    NdlClause c;  // E_k(x, y) <- x = y, both open: enumerates adom.
    c.head = {p, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({eq, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
    NdlClause g;
    g.head = {goal, {Term::Var(0), Term::Var(1)}};
    g.body.push_back({p, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(g));
  }
  program.SetGoal(goal);

  Evaluator sequential(program, data, tables);
  auto expected = sequential.Evaluate();
  // adom = 1500 ABox individuals + 500 table cells.
  EXPECT_EQ(expected.size(), 2000u);
  for (int threads : {4, 8}) {
    Evaluator parallel(program, data, tables);
    auto actual = parallel.EvaluateParallel(threads);
    EXPECT_EQ(actual, expected) << "threads " << threads;
  }
}

// Randomized differential check across programs mixing role/concept EDBs,
// table EDBs, equality atoms and adom atoms: EvaluateParallel(k) must agree
// with Evaluate() exactly, including goal_tuples, for k in {2, 4, 8}.
TEST(ParallelRegressionTest, RandomizedDifferential) {
  for (unsigned seed = 0; seed < 12; ++seed) {
    std::mt19937_64 rng(1234 + seed);
    Vocabulary vocab;
    DataInstance data(&vocab);
    TableStore tables(&vocab);
    std::vector<int> inds;
    for (int i = 0; i < 20; ++i) {
      inds.push_back(vocab.InternIndividual("i" + std::to_string(i)));
      data.AddIndividual(inds.back());
    }
    int concept_id = vocab.InternConcept("C");
    int role = vocab.InternPredicate("R");
    for (int i = 0; i < 15; ++i) {
      data.AddConceptAssertion(concept_id, inds[rng() % inds.size()]);
      data.AddRoleAssertion(role, inds[rng() % inds.size()],
                            inds[rng() % inds.size()]);
    }
    int table = tables.AddTable("T", 2);
    for (int i = 0; i < 12; ++i) {
      tables.AddRow(table, {inds[rng() % inds.size()],
                            inds[rng() % inds.size()]});
    }

    NdlProgram program(&vocab);
    int c_edb = program.AddConceptPredicate(concept_id);
    int r_edb = program.AddRolePredicate(role);
    int t_edb = program.AddTablePredicate("T", 2, table);
    int eq = program.EqualityPredicate();
    int adom = program.AdomPredicate();

    // Three levels of binary IDB predicates; clause bodies draw from the
    // EDBs, equality, adom, and strictly earlier IDB predicates.
    std::vector<int> idbs;
    for (int layer = 0; layer < 3; ++layer) {
      int width = 2 + static_cast<int>(rng() % 3);
      std::vector<int> layer_preds;
      for (int k = 0; k < width; ++k) {
        int p = program.AddIdbPredicate(
            "P" + std::to_string(layer) + "_" + std::to_string(k), 2);
        NdlClause c;
        c.head = {p, {Term::Var(0), Term::Var(1)}};
        // Anchor atom guaranteeing head safety.
        switch (rng() % 3) {
          case 0:
            c.body.push_back({r_edb, {Term::Var(0), Term::Var(1)}});
            break;
          case 1:
            c.body.push_back({t_edb, {Term::Var(0), Term::Var(1)}});
            break;
          default:
            if (idbs.empty()) {
              c.body.push_back({r_edb, {Term::Var(0), Term::Var(1)}});
            } else {
              c.body.push_back(
                  {static_cast<int>(idbs[rng() % idbs.size()]),
                   {Term::Var(0), Term::Var(1)}});
            }
            break;
        }
        // 0-2 extra atoms over vars {0, 1, 2}.
        int extras = static_cast<int>(rng() % 3);
        for (int e = 0; e < extras; ++e) {
          int v1 = static_cast<int>(rng() % 3);
          int v2 = static_cast<int>(rng() % 3);
          switch (rng() % 5) {
            case 0:
              c.body.push_back({c_edb, {Term::Var(v1)}});
              break;
            case 1:
              c.body.push_back({r_edb, {Term::Var(v1), Term::Var(v2)}});
              break;
            case 2:
              c.body.push_back({t_edb, {Term::Var(v1), Term::Var(v2)}});
              break;
            case 3:
              c.body.push_back({eq, {Term::Var(v1), Term::Var(v2)}});
              break;
            default:
              c.body.push_back({adom, {Term::Var(v1)}});
              break;
          }
        }
        program.AddClause(std::move(c));
        layer_preds.push_back(p);
      }
      idbs.insert(idbs.end(), layer_preds.begin(), layer_preds.end());
    }
    int goal = program.AddIdbPredicate("Goal", 2);
    for (int src : idbs) {
      if (rng() % 2 == 0 || src == idbs.back()) {
        NdlClause g;
        g.head = {goal, {Term::Var(0), Term::Var(1)}};
        g.body.push_back({src, {Term::Var(0), Term::Var(1)}});
        program.AddClause(std::move(g));
      }
    }
    program.SetGoal(goal);
    ASSERT_TRUE(program.IsNonrecursive());

    Evaluator sequential(program, data, tables);
    EvaluationStats s1;
    auto expected = sequential.Evaluate(&s1);
    for (int threads : {2, 4, 8}) {
      Evaluator parallel(program, data, tables);
      EvaluationStats s2;
      auto actual = parallel.EvaluateParallel(threads, &s2);
      EXPECT_EQ(actual, expected) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(s1.goal_tuples, s2.goal_tuples)
          << "seed " << seed << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace owlqr
