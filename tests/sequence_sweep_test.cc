// End-to-end parameterised sweep over the full Section 6 workload: every
// prefix of every sequence, rewritten by all six algorithms and evaluated
// over a fixed small dataset; all rewriters must agree with the reference
// chase engine.  This is the test-suite version of Tables 3-5.

#include <gtest/gtest.h>

#include "chase/certain_answers.h"
#include "core/rewriters.h"
#include "data/completion.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

struct SweepCase {
  int sequence;
  int length;
};

class SequenceSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static constexpr const char* kWords[3] = {kSequence1, kSequence2,
                                            kSequence3};
};

TEST_P(SequenceSweep, AllRewritersAgreeWithReference) {
  const SweepCase& param = GetParam();
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  std::string word(kWords[param.sequence], 0,
                   static_cast<size_t>(param.length));
  ConjunctiveQuery query = SequenceQuery(&vocab, word);

  // A small fixed dataset exercising data matches, A[P] / A[P-] witnesses
  // and dead ends.
  DataInstance data(&vocab);
  int r = vocab.FindPredicate("R");
  int s = vocab.FindPredicate("S");
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  int a_pi = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P"), true));
  std::vector<int> v;
  for (int i = 0; i < 6; ++i) {
    v.push_back(data.AddIndividual("v" + std::to_string(i)));
  }
  data.AddRoleAssertion(r, v[0], v[1]);
  data.AddRoleAssertion(r, v[1], v[2]);
  data.AddRoleAssertion(r, v[2], v[0]);
  data.AddRoleAssertion(r, v[2], v[3]);
  data.AddRoleAssertion(s, v[3], v[4]);
  data.AddRoleAssertion(r, v[4], v[5]);
  data.AddConceptAssertion(a_p, v[1]);
  data.AddConceptAssertion(a_pi, v[4]);
  data.AddConceptAssertion(a_p, v[5]);

  auto reference = ComputeCertainAnswers(*tbox, query, data);
  ASSERT_TRUE(reference.consistent);

  DataInstance completed = CompleteInstance(data, *tbox, ctx.saturation());
  for (RewriterKind kind :
       {RewriterKind::kLog, RewriterKind::kLin, RewriterKind::kTw,
        RewriterKind::kTwStar, RewriterKind::kUcq,
        RewriterKind::kPrestoLike}) {
    RewriteOptions arbitrary;
    arbitrary.arbitrary_instances = true;
    RewriteResult program_rw = RewriteOmqOrError(&ctx, query, kind, arbitrary);
    OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
    NdlProgram program = std::move(program_rw.program);
    Evaluator eval(program, data);
    EXPECT_EQ(eval.Evaluate(), reference.answers)
        << RewriterName(kind) << " over raw data, word " << word;

    RewriteResult complete_program_rw = RewriteOmqOrError(&ctx, query, kind);
    OWLQR_CHECK_MSG(complete_program_rw.ok(), complete_program_rw.status.message().c_str());
    NdlProgram complete_program = std::move(complete_program_rw.program);
    Evaluator eval2(complete_program, completed);
    EXPECT_EQ(eval2.Evaluate(), reference.answers)
        << RewriterName(kind) << " over completed data, word " << word;
  }
}

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (int sequence = 0; sequence < 3; ++sequence) {
    for (int length = 1; length <= 15; ++length) {
      cases.push_back({sequence, length});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrefixes, SequenceSweep, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seq" + std::to_string(info.param.sequence + 1) + "_len" +
             std::to_string(info.param.length);
    });

}  // namespace
}  // namespace owlqr
