#include <gtest/gtest.h>

#include "chase/certain_answers.h"
#include "core/inconsistency_guard.h"
#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

struct GuardScenario {
  Vocabulary vocab;
  TBox tbox{&vocab};
};

// Builds a guarded Lin rewriting of q(x) :- R(x, y), A(y).
NdlProgram BuildGuarded(GuardScenario* s, RewritingContext* ctx) {
  ConjunctiveQuery q(&s->vocab);
  q.AddBinary("R", "x", "y");
  q.AddUnary("A", "y");
  q.MarkAnswerVariable(q.FindVariable("x"));
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(ctx, q, RewriterKind::kLin, options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);
  AddInconsistencyGuard(ctx, &program);
  return program;
}

TEST(InconsistencyGuardTest, ConceptDisjointness) {
  GuardScenario s;
  s.tbox.AddConceptDisjointness(
      BasicConcept::Atomic(s.vocab.InternConcept("Male")),
      BasicConcept::Atomic(s.vocab.InternConcept("Female")));
  s.vocab.InternPredicate("R");
  s.vocab.InternConcept("A");
  s.tbox.Normalize();
  RewritingContext ctx(s.tbox);
  NdlProgram program = BuildGuarded(&s, &ctx);

  DataInstance consistent(&s.vocab);
  consistent.Assert("R", "a", "b");
  consistent.Assert("A", "b");
  consistent.Assert("Male", "a");
  EXPECT_TRUE(IsConsistent(s.tbox, consistent));
  Evaluator e1(program, consistent);
  EXPECT_EQ(e1.Evaluate().size(), 1u);  // Just {a}.

  DataInstance inconsistent(&s.vocab);
  inconsistent.Assert("R", "a", "b");
  inconsistent.Assert("Male", "c");
  inconsistent.Assert("Female", "c");
  EXPECT_FALSE(IsConsistent(s.tbox, inconsistent));
  Evaluator e2(program, inconsistent);
  // Every individual becomes an answer.
  EXPECT_EQ(e2.Evaluate().size(),
            static_cast<size_t>(inconsistent.num_individuals()));
}

TEST(InconsistencyGuardTest, DerivedConceptClash) {
  GuardScenario s;
  s.tbox.AddAtomicInclusion("Dog", "Animal");
  s.tbox.AddConceptDisjointness(
      BasicConcept::Atomic(s.vocab.FindConcept("Animal")),
      BasicConcept::Atomic(s.vocab.InternConcept("Plant")));
  s.vocab.InternPredicate("R");
  s.vocab.InternConcept("A");
  s.tbox.Normalize();
  RewritingContext ctx(s.tbox);
  NdlProgram program = BuildGuarded(&s, &ctx);

  DataInstance data(&s.vocab);
  data.Assert("R", "a", "b");
  data.Assert("Dog", "b");
  data.Assert("Plant", "b");
  EXPECT_FALSE(IsConsistent(s.tbox, data));
  Evaluator eval(program, data);
  EXPECT_EQ(eval.Evaluate().size(), 2u);
}

TEST(InconsistencyGuardTest, AnonymousClash) {
  // B <= exists T with exists T^- entailing two disjoint concepts: any
  // B-individual makes the KB inconsistent through the anonymous part.
  GuardScenario s;
  RoleId t = RoleOf(s.vocab.InternPredicate("T"));
  s.tbox.AddExistsRhs("B", "T");
  s.tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(t)),
                             BasicConcept::Atomic(s.vocab.InternConcept("C1")));
  s.tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(t)),
                             BasicConcept::Atomic(s.vocab.InternConcept("C2")));
  s.tbox.AddConceptDisjointness(
      BasicConcept::Atomic(s.vocab.FindConcept("C1")),
      BasicConcept::Atomic(s.vocab.FindConcept("C2")));
  s.vocab.InternPredicate("R");
  s.vocab.InternConcept("A");
  s.tbox.Normalize();
  RewritingContext ctx(s.tbox);
  NdlProgram program = BuildGuarded(&s, &ctx);

  DataInstance no_b(&s.vocab);
  no_b.Assert("R", "a", "b");
  no_b.Assert("A", "b");
  EXPECT_TRUE(IsConsistent(s.tbox, no_b));
  Evaluator e1(program, no_b);
  EXPECT_EQ(e1.Evaluate().size(), 1u);

  DataInstance with_b = no_b;
  with_b.Assert("B", "c");
  EXPECT_FALSE(IsConsistent(s.tbox, with_b));
  Evaluator e2(program, with_b);
  EXPECT_EQ(e2.Evaluate().size(), 3u);
}

TEST(InconsistencyGuardTest, RoleDisjointnessAndIrreflexivity) {
  GuardScenario s;
  int p = s.vocab.InternPredicate("P");
  int q_pred = s.vocab.InternPredicate("Q");
  s.tbox.AddRoleDisjointness(RoleOf(p), RoleOf(q_pred));
  s.tbox.AddIrreflexivity(RoleOf(p));
  s.vocab.InternPredicate("R");
  s.vocab.InternConcept("A");
  s.tbox.Normalize();
  RewritingContext ctx(s.tbox);
  NdlProgram program = BuildGuarded(&s, &ctx);

  DataInstance overlap(&s.vocab);
  overlap.Assert("P", "a", "b");
  overlap.Assert("Q", "a", "b");
  EXPECT_FALSE(IsConsistent(s.tbox, overlap));
  Evaluator e1(program, overlap);
  EXPECT_EQ(e1.Evaluate().size(), 2u);

  DataInstance loop(&s.vocab);
  loop.Assert("P", "a", "a");
  loop.Assert("R", "a", "b");
  EXPECT_FALSE(IsConsistent(s.tbox, loop));
  Evaluator e2(program, loop);
  EXPECT_EQ(e2.Evaluate().size(), 2u);

  DataInstance fine(&s.vocab);
  fine.Assert("P", "a", "b");
  fine.Assert("Q", "b", "a");
  EXPECT_TRUE(IsConsistent(s.tbox, fine));
  Evaluator e3(program, fine);
  EXPECT_TRUE(e3.Evaluate().empty());
}

}  // namespace
}  // namespace owlqr
