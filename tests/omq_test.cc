#include <gtest/gtest.h>

#include "core/omq.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

TEST(OmqProfileTest, Example8IsInAllThreeClasses) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRRSRR");
  OmqProfile profile = ProfileOmq(ctx, q);
  EXPECT_EQ(profile.ontology_depth, 1);
  EXPECT_TRUE(profile.tree_shaped);
  EXPECT_EQ(profile.num_leaves, 2);
  EXPECT_EQ(profile.treewidth, 1);
  EXPECT_TRUE(profile.InOmqDT());
  EXPECT_TRUE(profile.InOmqDL());
  EXPECT_TRUE(profile.InOmqL());
  EXPECT_EQ(profile.Complexity(), ComplexityClass::kNl);
  EXPECT_EQ(profile.RecommendedRewriter(), RewriterKind::kLin);
  EXPECT_NE(profile.ToString().find("NL"), std::string::npos);
}

TEST(OmqProfileTest, InfiniteDepthTreeQuery) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  RoleId p = RoleOf(vocab.InternPredicate("P"));
  tbox.AddExistsRhs("A", "P");
  tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(p)),
                           BasicConcept::Exists(p));
  tbox.Normalize();
  RewritingContext ctx(tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("P", "x", "y");
  q.AddBinary("P", "y", "z");
  OmqProfile profile = ProfileOmq(ctx, q);
  EXPECT_FALSE(profile.finite_depth());
  EXPECT_TRUE(profile.InOmqL());
  EXPECT_FALSE(profile.InOmqDL());
  EXPECT_EQ(profile.Complexity(), ComplexityClass::kLogCfl);
  EXPECT_EQ(profile.RecommendedRewriter(), RewriterKind::kTw);
}

TEST(OmqProfileTest, CyclicQueryFiniteDepth) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("R", "x", "y");
  q.AddBinary("R", "y", "z");
  q.AddBinary("R", "z", "x");
  OmqProfile profile = ProfileOmq(ctx, q);
  EXPECT_FALSE(profile.tree_shaped);
  EXPECT_EQ(profile.treewidth, 2);
  EXPECT_TRUE(profile.treewidth_exact);
  EXPECT_EQ(profile.Complexity(), ComplexityClass::kLogCfl);
  EXPECT_EQ(profile.RecommendedRewriter(), RewriterKind::kLog);
}

TEST(OmqProfileTest, WorstCaseIsNp) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  RoleId p = RoleOf(vocab.InternPredicate("P"));
  tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(p)),
                           BasicConcept::Exists(p));
  tbox.Normalize();
  RewritingContext ctx(tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("P", "x", "y");
  q.AddBinary("P", "y", "z");
  q.AddBinary("P", "z", "x");
  OmqProfile profile = ProfileOmq(ctx, q);
  EXPECT_EQ(profile.Complexity(), ComplexityClass::kNp);
  EXPECT_EQ(profile.RecommendedRewriter(), RewriterKind::kUcq);
}

}  // namespace
}  // namespace owlqr
