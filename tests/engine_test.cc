// Tests for the prepared-OMQ engine facade: the plan cache (hit / miss /
// eviction, key sensitivity), the no-rewrite-on-warm-execute guarantee, the
// non-aborting Prepare error path, and copy-on-write ApplyFacts snapshots.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/rewriters.h"
#include "engine/engine.h"
#include "engine/plan_cache.h"
#include "ndl/evaluator.h"
#include "util/metrics.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

std::shared_ptr<const PreparedQuery> DummyPlan(Vocabulary* vocab,
                                               const std::string& key) {
  NdlProgram program(vocab);
  int g = program.AddIdbPredicate("G", 1);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};
  c.body.push_back({program.AdomPredicate(), {Term::Var(0)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);
  return std::make_shared<const PreparedQuery>(
      std::move(program), RewriterKind::kTw, RewriteDiagnostics{}, key);
}

TEST(PlanCacheTest, HitMissEvictionLru) {
  Vocabulary vocab;
  PlanCache cache(2);
  EXPECT_EQ(cache.Get("a"), nullptr);

  auto a = DummyPlan(&vocab, "a");
  auto b = DummyPlan(&vocab, "b");
  auto c = DummyPlan(&vocab, "c");
  cache.Put("a", a);
  cache.Put("b", b);
  EXPECT_EQ(cache.Get("a"), a);
  EXPECT_EQ(cache.Get("b"), b);
  EXPECT_EQ(cache.size(), 2u);

  // "a" was touched more recently than nothing; touch it again so "b" is
  // the LRU entry, then overflow.
  EXPECT_EQ(cache.Get("a"), a);
  cache.Put("c", c);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get("b"), nullptr);  // Evicted.
  EXPECT_EQ(cache.Get("a"), a);        // Survived (recently used).
  EXPECT_EQ(cache.Get("c"), c);

  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.misses, 2);  // Initial "a" and post-eviction "b".
  EXPECT_EQ(stats.hits, 5);

  // An evicted plan stays alive for holders of the shared_ptr.
  EXPECT_EQ(b->cache_key(), "b");
}

TEST(PlanCacheTest, CanonicalCqKeyIgnoresVariableNames) {
  Vocabulary vocab;
  ConjunctiveQuery q1(&vocab);
  q1.AddBinary("R", "x", "y");
  q1.AddUnary("A", "y");
  q1.MarkAnswerVariable(q1.FindVariable("x"));

  ConjunctiveQuery q2(&vocab);  // Alpha-renamed copy.
  q2.AddBinary("R", "u", "v");
  q2.AddUnary("A", "v");
  q2.MarkAnswerVariable(q2.FindVariable("u"));

  ConjunctiveQuery q3(&vocab);  // Different structure: answer var flipped.
  q3.AddBinary("R", "x", "y");
  q3.AddUnary("A", "y");
  q3.MarkAnswerVariable(q3.FindVariable("y"));

  EXPECT_EQ(CanonicalCqKey(q1), CanonicalCqKey(q2));
  EXPECT_NE(CanonicalCqKey(q1), CanonicalCqKey(q3));
}

TEST(PlanCacheTest, FingerprintIsSensitiveToTBoxEdits) {
  Vocabulary vocab;
  auto tbox1 = MakeExample11TBox(&vocab);
  auto tbox2 = MakeExample11TBox(&vocab);
  EXPECT_EQ(FingerprintTBox(*tbox1), FingerprintTBox(*tbox2));

  // One extra axiom must change the fingerprint (and thus the cache key).
  tbox2->AddAtomicInclusion("FreshConcept", "OtherFreshConcept");
  tbox2->Normalize();
  EXPECT_NE(FingerprintTBox(*tbox1), FingerprintTBox(*tbox2));

  ConjunctiveQuery q = SequenceQuery(&vocab, "RS");
  EXPECT_NE(MakePlanCacheKey(FingerprintTBox(*tbox1), q, RewriterKind::kTw,
                             RewriteOptions{}),
            MakePlanCacheKey(FingerprintTBox(*tbox2), q, RewriterKind::kTw,
                             RewriteOptions{}));
  // Kind and options are part of the key too.
  EXPECT_NE(MakePlanCacheKey(FingerprintTBox(*tbox1), q, RewriterKind::kTw,
                             RewriteOptions{}),
            MakePlanCacheKey(FingerprintTBox(*tbox1), q, RewriterKind::kLin,
                             RewriteOptions{}));
  RewriteOptions star;
  star.arbitrary_instances = true;
  EXPECT_NE(MakePlanCacheKey(FingerprintTBox(*tbox1), q, RewriterKind::kTw,
                             RewriteOptions{}),
            MakePlanCacheKey(FingerprintTBox(*tbox1), q, RewriterKind::kTw,
                             star));
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : tbox_(MakeExample11TBox(&vocab_)),
        data_(GenerateDataset(&vocab_, *tbox_,
                              DatasetConfig{"t", 60, 0.12, 0.15, 7})) {}

  Engine MakeEngine(size_t cache_capacity = 64) {
    EngineOptions options;
    options.plan_cache_capacity = cache_capacity;
    return Engine(*tbox_, data_, nullptr, options);
  }

  Vocabulary vocab_;
  std::unique_ptr<TBox> tbox_;
  DataInstance data_;
};

TEST_F(EngineTest, PrepareCachesAndExecuteAnswersMatchSingleShot) {
  Engine engine = MakeEngine();
  ConjunctiveQuery q = SequenceQuery(&vocab_, "RSR");

  PrepareResult cold = engine.Prepare(q);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.cache_hit);
  PrepareResult warm = engine.Prepare(q);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.query.get(), cold.query.get());  // Same shared plan.

  ExecuteResult result = engine.Execute(*warm.query);
  EXPECT_EQ(result.snapshot_version, 1u);

  // Against the pre-engine single-shot path: same program family, fresh
  // rewrite, evaluation directly over the DataInstance.
  RewritingContext ctx(*tbox_);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult rewritten =
      RewriteOmqOrError(&ctx, q, warm.query->kind(), options);
  ASSERT_TRUE(rewritten.ok());
  Evaluator single_shot(rewritten.program, data_);
  ExecuteResult expected = single_shot.Run(ExecuteRequest{});
  EXPECT_EQ(result.answers, expected.answers);
  EXPECT_FALSE(result.answers.empty());
}

TEST_F(EngineTest, WarmPrepareSkipsRewritePipeline) {
  Engine engine = MakeEngine();
  ConjunctiveQuery q = SequenceQuery(&vocab_, "RRS");
  ASSERT_TRUE(engine.Prepare(q).ok());  // Cold: compiles.

  MetricsRegistry metrics;
  MetricsRegistry::SetGlobal(&metrics);
  PrepareResult warm = engine.Prepare(q);
  ExecuteResult result = engine.Execute(*warm.query);
  MetricsRegistry::SetGlobal(nullptr);

  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(result.answers.empty());
  bool saw_execute = false;
  for (const MetricsRegistry::Span& span : metrics.spans()) {
    // The whole rewrite/transform pipeline must be absent from a warm
    // serve; only prepare (the cache probe), execute and join-level spans
    // may appear.
    EXPECT_NE(span.name.substr(0, 7), "rewrite") << span.name;
    EXPECT_NE(span.name.substr(0, 9), "transform") << span.name;
    if (span.name == "engine/execute") saw_execute = true;
  }
  EXPECT_TRUE(saw_execute);
}

TEST_F(EngineTest, EvictionRecompiles) {
  Engine engine = MakeEngine(/*cache_capacity=*/2);
  ConjunctiveQuery q1 = SequenceQuery(&vocab_, "R");
  ConjunctiveQuery q2 = SequenceQuery(&vocab_, "S");
  ConjunctiveQuery q3 = SequenceQuery(&vocab_, "RS");

  EXPECT_FALSE(engine.Prepare(q1).cache_hit);
  EXPECT_FALSE(engine.Prepare(q2).cache_hit);
  EXPECT_FALSE(engine.Prepare(q3).cache_hit);  // Evicts q1.
  EXPECT_EQ(engine.cache_size(), 2u);
  EXPECT_FALSE(engine.Prepare(q1).cache_hit);  // Recompile after eviction.
  EXPECT_TRUE(engine.Prepare(q1).cache_hit);
  EXPECT_EQ(engine.cache_stats().evictions, 2);
}

TEST_F(EngineTest, UnsupportedShapeIsAStatusNotAnAbort) {
  Engine engine = MakeEngine();
  // A triangle: not tree-shaped, so Tw must be rejected.
  ConjunctiveQuery cyclic(&vocab_);
  cyclic.AddBinary("R", "x", "y");
  cyclic.AddBinary("R", "y", "z");
  cyclic.AddBinary("R", "z", "x");

  PrepareOptions force_tw;
  force_tw.auto_kind = false;
  force_tw.kind = RewriterKind::kTw;
  PrepareResult result = engine.Prepare(cyclic, force_tw);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kUnsupportedShape);
  EXPECT_NE(result.status.message().find("tree-shaped"), std::string::npos);
  EXPECT_EQ(result.query, nullptr);

  // Auto mode routes the same query to an applicable rewriter instead.
  PrepareResult auto_result = engine.Prepare(cyclic);
  EXPECT_TRUE(auto_result.ok());

  Status status;
  ExecuteResult answers = engine.Query(cyclic, ExecuteRequest{}, &status);
  EXPECT_TRUE(status.ok());
}

TEST_F(EngineTest, ApplyFactsIsCopyOnWriteAndVersioned) {
  Engine engine = MakeEngine();
  ConjunctiveQuery q = SequenceQuery(&vocab_, "RS");
  PrepareResult prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());

  // Pin version 1, then update the engine.
  std::shared_ptr<const DataSnapshot> v1 = engine.snapshot();
  ExecuteResult before = engine.Execute(*prepared.query);
  EXPECT_EQ(before.snapshot_version, 1u);

  // A fresh R/S chain from new individuals must add answers for q = R;S.
  int r = vocab_.InternPredicate("R");
  int s = vocab_.InternPredicate("S");
  FactBatch batch;
  int n0 = vocab_.InternIndividual("fresh0");
  int n1 = vocab_.InternIndividual("fresh1");
  int n2 = vocab_.InternIndividual("fresh2");
  batch.roles.push_back({r, n0, n1});
  batch.roles.push_back({s, n1, n2});
  uint64_t version = 0;
  ASSERT_TRUE(engine.ApplyFactsOrError(batch, &version).ok());
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(engine.snapshot_version(), 2u);

  ExecuteResult after = engine.Execute(*prepared.query);
  EXPECT_EQ(after.snapshot_version, 2u);
  EXPECT_GT(after.answers.size(), before.answers.size());
  std::vector<int> fresh_answer = {n0, n2};
  EXPECT_NE(std::find(after.answers.begin(), after.answers.end(),
                      fresh_answer),
            after.answers.end());

  // The pinned version-1 snapshot still evaluates to the old answers.
  Evaluator pinned(prepared.query->program(), v1);
  ExecuteResult old_again = pinned.Run(ExecuteRequest{});
  EXPECT_EQ(old_again.answers, before.answers);
  EXPECT_EQ(old_again.snapshot_version, 1u);

  // And matches a single-shot evaluation over the equivalently grown
  // DataInstance.
  DataInstance grown = data_;
  grown.AddRoleAssertion(r, n0, n1);
  grown.AddRoleAssertion(s, n1, n2);
  Evaluator fresh(prepared.query->program(), grown);
  ExecuteResult expected = fresh.Run(ExecuteRequest{});
  EXPECT_EQ(after.answers, expected.answers);
}

TEST_F(EngineTest, ParallelExecuteMatchesSequential) {
  Engine engine = MakeEngine();
  ConjunctiveQuery q = SequenceQuery(&vocab_, "RSRS");
  PrepareResult prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());

  ExecuteRequest sequential;
  ExecuteRequest parallel;
  parallel.num_threads = 4;
  ExecuteResult a = engine.Execute(*prepared.query, sequential);
  ExecuteResult b = engine.Execute(*prepared.query, parallel);
  EXPECT_EQ(a.answers, b.answers);
}

}  // namespace
}  // namespace owlqr
