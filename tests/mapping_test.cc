#include <gtest/gtest.h>

#include "chase/certain_answers.h"
#include "core/mapping.h"
#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "syntax/parser.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

// A relational HR database mapped to a university ontology.
struct ObdaSetup {
  Vocabulary vocab;
  TBox tbox{&vocab};
  TableStore tables{&vocab};
  std::unique_ptr<GavMapping> mapping;
  ConjunctiveQuery query{&vocab};

  ObdaSetup() {
    std::string error;
    OWLQR_CHECK(ParseTBox(R"(
        Professor SUB EX teaches
        EX teaches- SUB Course
        Dean SUB Professor
    )",
                          &tbox, &error));
    tbox.Normalize();

    // Source schema: staff(person, position), courses(course, lecturer).
    int staff = tables.AddTable("staff", 2);
    int courses = tables.AddTable("courses", 2);
    tables.AddRow("staff", {"ann", "professor"});
    tables.AddRow("staff", {"dana", "dean"});
    tables.AddRow("staff", {"eve", "admin"});
    tables.AddRow("courses", {"algebra", "bob"});

    mapping = std::make_unique<GavMapping>(&vocab, &tables);
    int prof_pos = vocab.FindIndividual("professor");
    int dean_pos = vocab.FindIndividual("dean");
    // Professor(x) <- staff(x, 'professor').
    mapping->AddConceptRule(
        vocab.InternConcept("Professor"), 0,
        {{staff, {Term::Var(0), Term::Const(prof_pos)}}});
    // Dean(x) <- staff(x, 'dean').
    mapping->AddConceptRule(vocab.InternConcept("Dean"), 0,
                            {{staff, {Term::Var(0), Term::Const(dean_pos)}}});
    // teaches(x, y) <- courses(y, x).
    mapping->AddRoleRule(vocab.InternPredicate("teaches"), 1, 0,
                         {{courses, {Term::Var(0), Term::Var(1)}}});

    auto parsed =
        ParseQuery("q(x) :- teaches(x, y), Course(y)", &vocab, &error);
    OWLQR_CHECK(parsed.has_value());
    query = std::move(*parsed);
  }
};

TEST(MappingTest, MaterializeMapping) {
  ObdaSetup s;
  DataInstance virtual_abox = MaterializeMapping(*s.mapping, s.tables);
  EXPECT_TRUE(virtual_abox.HasConceptAssertion(
      s.vocab.FindConcept("Professor"), s.vocab.FindIndividual("ann")));
  EXPECT_TRUE(virtual_abox.HasConceptAssertion(
      s.vocab.FindConcept("Dean"), s.vocab.FindIndividual("dana")));
  EXPECT_FALSE(virtual_abox.HasConceptAssertion(
      s.vocab.FindConcept("Professor"), s.vocab.FindIndividual("eve")));
  EXPECT_TRUE(virtual_abox.HasRoleAssertion(
      s.vocab.FindPredicate("teaches"), s.vocab.FindIndividual("bob"),
      s.vocab.FindIndividual("algebra")));
  // 'admin' rows map to nothing; position constants are data, not ABox.
  EXPECT_EQ(virtual_abox.NumAtoms(), 3);
}

TEST(MappingTest, UnfoldingAvoidsMaterialisation) {
  ObdaSetup s;
  RewritingContext ctx(s.tbox);
  // The classical pipeline: materialise M(D) and evaluate the rewriting.
  DataInstance virtual_abox = MaterializeMapping(*s.mapping, s.tables);
  RewriteOptions options;
  options.arbitrary_instances = true;
  for (RewriterKind kind : {RewriterKind::kLin, RewriterKind::kLog,
                            RewriterKind::kTwStar, RewriterKind::kUcq}) {
    RewriteResult rewriting_rw = RewriteOmqOrError(&ctx, s.query, kind, options);
    OWLQR_CHECK_MSG(rewriting_rw.ok(), rewriting_rw.status.message().c_str());
    NdlProgram rewriting = std::move(rewriting_rw.program);
    Evaluator over_abox(rewriting, virtual_abox);
    auto expected = over_abox.Evaluate();

    // The unfolded pipeline: evaluate directly over the source tables.
    NdlProgram unfolded = UnfoldThroughMapping(rewriting, *s.mapping);
    ASSERT_TRUE(unfolded.IsNonrecursive());
    DataInstance empty(&s.vocab);
    Evaluator over_tables(unfolded, empty, s.tables);
    EXPECT_EQ(over_tables.Evaluate(), expected) << RewriterName(kind);

    // And both agree with the reference engine over M(D): ann and dana get
    // anonymous courses, bob a real one.
    auto reference = ComputeCertainAnswers(s.tbox, s.query, virtual_abox);
    EXPECT_EQ(expected, reference.answers) << RewriterName(kind);
    EXPECT_EQ(reference.answers.size(), 3u);
  }
}

TEST(MappingTest, UnmappedPredicatesAreEmpty) {
  ObdaSetup s;
  RewritingContext ctx(s.tbox);
  std::string error;
  // "supervises" has no mapping rule: no answers, no crash.
  auto q = ParseQuery("q(x) :- supervises(x, y)", &s.vocab, &error);
  ASSERT_TRUE(q.has_value()) << error;
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult rewriting_rw = RewriteOmqOrError(&ctx, *q, RewriterKind::kTw, options);
  OWLQR_CHECK_MSG(rewriting_rw.ok(), rewriting_rw.status.message().c_str());
  NdlProgram rewriting = std::move(rewriting_rw.program);
  NdlProgram unfolded = UnfoldThroughMapping(rewriting, *s.mapping);
  DataInstance empty(&s.vocab);
  Evaluator eval(unfolded, empty, s.tables);
  EXPECT_TRUE(eval.Evaluate().empty());
}

}  // namespace
}  // namespace owlqr
