// Differential tests for the vector-at-a-time (columnar batch) join
// executor: with batching enabled (any EvaluatorLimits::batch_rows > 0) the
// answers, the deterministic counters and the limit-abort points must all be
// identical to the scalar tuple-at-a-time oracle (batch_rows = 0) — across
// every rewriter kind, random programs covering every batch-step recipe
// (scans, probes under every key mask, equality and adom built-ins,
// constants, repeated variables), partial-EDB truncation at the row
// ceiling, deadline aborts mid-batch, and the semi-naive delta path.  Part
// of the `sanitize` binary, so TSan/ASan builds cover the batch scratch and
// the morsel/steal interaction directly.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/rewriters.h"
#include "core/rewriting_context.h"
#include "data/data_instance.h"
#include "engine/engine.h"
#include "ndl/evaluator.h"
#include "ndl/program.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

// The stats fields that are deterministic across executor paths (the batch
// tallies themselves differ by design; memory readings depend on scratch).
void ExpectStatsMatch(const EvaluationStats& batch,
                      const EvaluationStats& scalar,
                      const std::string& label) {
  EXPECT_EQ(batch.generated_tuples, scalar.generated_tuples) << label;
  EXPECT_EQ(batch.goal_tuples, scalar.goal_tuples) << label;
  EXPECT_EQ(batch.join_emissions, scalar.join_emissions) << label;
  EXPECT_EQ(batch.predicate_tuples, scalar.predicate_tuples) << label;
  EXPECT_EQ(batch.aborted, scalar.aborted) << label;
  EXPECT_EQ(batch.row_ceiling, scalar.row_ceiling) << label;
}

EvaluatorLimits BatchLimits(long batch_rows) {
  EvaluatorLimits limits;
  limits.batch_rows = batch_rows;
  return limits;
}

// A small data instance whose individuals double as the constant pool of
// the random programs below.
DataInstance RandomInstance(Vocabulary* vocab, std::mt19937_64* rng, int n,
                            int edges) {
  DataInstance data(vocab);
  int r = vocab->InternPredicate("R");
  int s = vocab->InternPredicate("S");
  int c = vocab->InternConcept("C");
  std::vector<int> inds;
  for (int i = 0; i < n; ++i) {
    inds.push_back(data.AddIndividual("i" + std::to_string(i)));
  }
  for (int i = 0; i < edges; ++i) {
    data.AddRoleAssertion(r, inds[(*rng)() % inds.size()],
                          inds[(*rng)() % inds.size()]);
    if (i % 2 == 0) {
      data.AddRoleAssertion(s, inds[(*rng)() % inds.size()],
                            inds[(*rng)() % inds.size()]);
    }
  }
  for (int i = 0; i < n; ++i) {
    if ((*rng)() % 3 == 0) data.AddConceptAssertion(c, inds[i]);
  }
  return data;
}

// Random nonrecursive program exercising every batch recipe: IDB heads of
// arity 1-3, bodies mixing EDB scans/probes (every boundness mask arises
// from the greedy join order), repeated variables (tuple-position checks),
// individual constants (constant keys, checks and head outputs), and
// equality / adom atoms in filter, bind and expand positions.
NdlProgram RandomProgram(Vocabulary* vocab, std::mt19937_64* rng,
                         int num_individuals) {
  NdlProgram program(vocab);
  int r = program.AddRolePredicate(vocab->InternPredicate("R"));
  int s = program.AddRolePredicate(vocab->InternPredicate("S"));
  int c = program.AddConceptPredicate(vocab->InternConcept("C"));
  struct Pred {
    int id;
    int arity;
  };
  std::vector<Pred> pool = {{r, 2}, {s, 2}, {c, 1}};
  auto rnd = [&](int m) { return static_cast<int>((*rng)() % m); };
  // A term over variables 0..3: mostly variables, sometimes a constant
  // (individual ids are dense from 0, so any id below num_individuals is
  // real) — constants exercise the negative term codes end to end.
  auto term = [&]() {
    if (rnd(6) == 0) return Term::Const(rnd(num_individuals));
    return Term::Var(rnd(4));
  };
  int last = -1;
  for (int layer = 0; layer < 3; ++layer) {
    for (int k = 0; k < 2; ++k) {
      int arity = 1 + rnd(3);
      int p = program.AddIdbPredicate(
          "P" + std::to_string(layer) + "_" + std::to_string(k), arity);
      NdlClause clause;
      int atoms = 1 + rnd(2);
      std::vector<char> var_bound(4, 0);
      for (int a = 0; a < atoms; ++a) {
        const Pred& src = pool[rnd(static_cast<int>(pool.size()))];
        NdlAtom atom;
        atom.predicate = src.id;
        for (int i = 0; i < src.arity; ++i) {
          Term t = term();
          if (!t.is_constant) var_bound[t.value] = 1;
          atom.args.push_back(t);
        }
        clause.body.push_back(std::move(atom));
      }
      // Sprinkle the built-ins over bound and open variables alike, so
      // filter (both bound), bind (one side), and expand (all open)
      // recipes all arise across seeds.
      if (rnd(3) == 0) {
        NdlAtom eq;
        eq.predicate = program.EqualityPredicate();
        eq.args.push_back(term());
        eq.args.push_back(term());
        for (const Term& t : eq.args) {
          if (!t.is_constant) var_bound[t.value] = 1;
        }
        clause.body.push_back(std::move(eq));
      }
      if (rnd(3) == 0) {
        NdlAtom adom;
        adom.predicate = program.AdomPredicate();
        Term t = term();
        if (!t.is_constant) var_bound[t.value] = 1;
        adom.args.push_back(t);
        clause.body.push_back(std::move(adom));
      }
      // Safe head: arguments are body-bound variables or constants, with a
      // repeat now and then (repeated head variables are legal).
      std::vector<int> bound_vars;
      for (int v = 0; v < 4; ++v) {
        if (var_bound[v]) bound_vars.push_back(v);
      }
      clause.head.predicate = p;
      for (int i = 0; i < arity; ++i) {
        if (bound_vars.empty() || rnd(5) == 0) {
          clause.head.args.push_back(Term::Const(rnd(num_individuals)));
        } else {
          clause.head.args.push_back(
              Term::Var(bound_vars[rnd(static_cast<int>(bound_vars.size()))]));
        }
      }
      program.AddClause(std::move(clause));
      pool.push_back({p, arity});
      last = p;
    }
  }
  program.SetGoal(last);
  return program;
}

// Random programs, several batch widths (1 forces a flush per element, 3
// exercises mid-expansion flushes, 1024 is the default) against the scalar
// oracle: answers and deterministic stats must match exactly.
TEST(BatchExecutorTest, RandomizedProgramDifferential) {
  for (unsigned seed = 0; seed < 12; ++seed) {
    std::mt19937_64 rng(7100 + seed);
    Vocabulary vocab;
    NdlProgram program = RandomProgram(&vocab, &rng, 24);
    ASSERT_TRUE(program.IsNonrecursive());
    DataInstance data = RandomInstance(&vocab, &rng, 24, 120);

    EvaluationStats scalar_stats;
    auto expected =
        Evaluator(program, data, BatchLimits(0)).Evaluate(&scalar_stats);

    for (long batch_rows : {1L, 3L, 1024L}) {
      EvaluationStats stats;
      auto actual = Evaluator(program, data, BatchLimits(batch_rows))
                        .Evaluate(&stats);
      std::string label =
          "seed " + std::to_string(seed) + " batch_rows " +
          std::to_string(batch_rows);
      EXPECT_EQ(actual, expected) << label;
      ExpectStatsMatch(stats, scalar_stats, label);
      EXPECT_GT(stats.batch_rows + stats.batch_probes, 0) << label;
    }
  }
}

// The same differential through the DAG scheduler and the morsel/steal
// machinery: thread counts > 1 with a low morsel threshold so clauses fan
// out, with and without batching.
TEST(BatchExecutorTest, ParallelDifferential) {
  for (unsigned seed = 0; seed < 4; ++seed) {
    std::mt19937_64 rng(7300 + seed);
    Vocabulary vocab;
    NdlProgram program = RandomProgram(&vocab, &rng, 30);
    DataInstance data = RandomInstance(&vocab, &rng, 30, 400);

    EvaluationStats scalar_stats;
    auto expected =
        Evaluator(program, data, BatchLimits(0)).Evaluate(&scalar_stats);

    for (int threads : {2, 4}) {
      for (long batch_rows : {0L, 4L, 1024L}) {
        EvaluatorLimits limits = BatchLimits(batch_rows);
        limits.morsel_rows = 16;
        EvaluationStats stats;
        auto actual = Evaluator(program, data, limits)
                          .EvaluateParallel(threads, &stats);
        std::string label = "seed " + std::to_string(seed) + " threads " +
                            std::to_string(threads) + " batch_rows " +
                            std::to_string(batch_rows);
        EXPECT_EQ(actual, expected) << label;
        ExpectStatsMatch(stats, scalar_stats, label);
      }
    }
  }
}

// Every rewriter kind over the Example 11 scenario: the production-shaped
// programs (UCQ unions, Presto-style, Lin/Log/Tw/TwStar) all run the batch
// executor and must agree with the scalar oracle on answers and counters.
TEST(BatchExecutorTest, RewriterKindsDifferential) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  DataInstance data = GenerateDataset(
      &vocab, *tbox, DatasetConfig{"c", 60, 0.1, 0.12, 7});
  RewriteOptions options;
  options.arbitrary_instances = true;
  for (RewriterKind kind :
       {RewriterKind::kUcq, RewriterKind::kPrestoLike, RewriterKind::kLin,
        RewriterKind::kLog, RewriterKind::kTw, RewriterKind::kTwStar}) {
    for (const char* word : {"RS", "RSRRS"}) {
      ConjunctiveQuery query = SequenceQuery(&vocab, word);
      RewriteResult rewritten = RewriteOmqOrError(&ctx, query, kind, options);
      ASSERT_TRUE(rewritten.ok()) << rewritten.status.ToString();
      const NdlProgram& program = rewritten.program;

      EvaluationStats scalar_stats;
      auto expected =
          Evaluator(program, data, BatchLimits(0)).Evaluate(&scalar_stats);
      EvaluationStats stats;
      auto actual =
          Evaluator(program, data, BatchLimits(1024)).Evaluate(&stats);
      std::string label = std::string("kind ") +
                          std::to_string(static_cast<int>(kind)) + " word " +
                          word;
      EXPECT_EQ(actual, expected) << label;
      ExpectStatsMatch(stats, scalar_stats, label);
    }
  }
}

// Limit-abort parity: for a sweep of max_generated_tuples and max_work
// cutoffs the batch path must stop on exactly the same emission as the
// scalar path — identical truncated answers and identical counters.
TEST(BatchExecutorTest, LimitAbortPointParity) {
  // Random instances are occasionally degenerate (a goal that derives
  // almost nothing); scan forward from the base seed to the first one
  // productive enough to cut at interesting points.
  std::unique_ptr<Vocabulary> vocab;
  std::unique_ptr<NdlProgram> program;
  std::unique_ptr<DataInstance> data;
  EvaluationStats full;
  for (uint64_t seed = 7500;; ++seed) {
    ASSERT_LT(seed, 7532u) << "no productive random instance found";
    std::mt19937_64 rng(seed);
    vocab = std::make_unique<Vocabulary>();
    program =
        std::make_unique<NdlProgram>(RandomProgram(vocab.get(), &rng, 24));
    data = std::make_unique<DataInstance>(
        RandomInstance(vocab.get(), &rng, 24, 200));
    full = EvaluationStats();
    Evaluator(*program, *data, BatchLimits(0)).Evaluate(&full);
    if (full.generated_tuples > 40) break;
  }

  for (long cut : {1L, 2L, 7L, full.generated_tuples / 2,
                   full.generated_tuples - 1}) {
    for (bool limit_work : {false, true}) {
      EvaluatorLimits scalar_limits = BatchLimits(0);
      EvaluatorLimits batch_limits = BatchLimits(1024);
      if (limit_work) {
        scalar_limits.max_work = cut;
        batch_limits.max_work = cut;
      } else {
        scalar_limits.max_generated_tuples = cut;
        batch_limits.max_generated_tuples = cut;
      }
      EvaluationStats scalar_stats;
      auto expected =
          Evaluator(*program, *data, scalar_limits).Evaluate(&scalar_stats);
      EvaluationStats stats;
      auto actual =
          Evaluator(*program, *data, batch_limits).Evaluate(&stats);
      std::string label = std::string(limit_work ? "work " : "tuples ") +
                          std::to_string(cut);
      EXPECT_EQ(actual, expected) << label;
      ExpectStatsMatch(stats, scalar_stats, label);
      EXPECT_TRUE(stats.aborted) << label;
    }
  }
}

// Partial-EDB case: a lowered row ceiling truncates relations mid-insert;
// the batch path must refuse, flag and abort exactly like the scalar path.
TEST(BatchExecutorTest, RowCeilingParity) {
  std::mt19937_64 rng(7700);
  Vocabulary vocab;
  NdlProgram program = RandomProgram(&vocab, &rng, 20);
  DataInstance data = RandomInstance(&vocab, &rng, 20, 150);

  Rows::SetMaxRowsForTest(12);
  EvaluationStats scalar_stats;
  auto expected =
      Evaluator(program, data, BatchLimits(0)).Evaluate(&scalar_stats);
  EvaluationStats stats;
  auto actual = Evaluator(program, data, BatchLimits(1024)).Evaluate(&stats);
  Rows::SetMaxRowsForTest(0);

  EXPECT_EQ(actual, expected);
  ExpectStatsMatch(stats, scalar_stats, "row ceiling");
  EXPECT_TRUE(stats.row_ceiling);
}

// A deadline that expires mid-evaluation: the abort point is wall-clock
// nondeterministic, so only soundness is asserted — whatever the batch path
// returns must be a subset of the complete answer set, with the abort
// reported.  (Loops until a run actually hits the deadline.)
TEST(BatchExecutorTest, DeadlineMidBatchSoundness) {
  std::mt19937_64 rng(7900);
  Vocabulary vocab;
  NdlProgram program = RandomProgram(&vocab, &rng, 40);
  DataInstance data = RandomInstance(&vocab, &rng, 40, 1500);

  auto complete = Evaluator(program, data, BatchLimits(1024)).Evaluate();

  bool saw_abort = false;
  for (int attempt = 0; attempt < 20 && !saw_abort; ++attempt) {
    EvaluatorLimits limits = BatchLimits(1024);
    limits.deadline_ms = 1;
    EvaluationStats stats;
    auto truncated = Evaluator(program, data, limits).Evaluate(&stats);
    for (const auto& tuple : truncated) {
      EXPECT_TRUE(std::binary_search(complete.begin(), complete.end(), tuple));
    }
    if (stats.aborted) {
      EXPECT_TRUE(stats.deadline_exceeded);
      saw_abort = true;
    }
  }
  // On any realistic machine 1 ms expires at least once in 20 attempts;
  // if not, the subset checks above still validated soundness.
}

// The semi-naive delta path through the engine: interleaved ApplyFacts /
// incremental Execute rounds where the batch-path incremental answers must
// equal both the scalar-path incremental answers and a full re-evaluation
// of the grown instance.
TEST(BatchExecutorTest, DeltaPathDifferential) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  DataInstance base = GenerateDataset(
      &vocab, *tbox, DatasetConfig{"c", 40, 0.1, 0.12, 7});
  ConjunctiveQuery query = SequenceQuery(&vocab, "RSR");

  PrepareOptions prepare_options;
  prepare_options.auto_kind = false;
  prepare_options.kind = RewriterKind::kTw;

  // Two engines over the same base so retained IDB state evolves under
  // each executor path independently.
  Engine batch_engine(*tbox, base);
  Engine scalar_engine(*tbox, base);
  PrepareResult bp = batch_engine.Prepare(query, prepare_options);
  PrepareResult sp = scalar_engine.Prepare(query, prepare_options);
  ASSERT_TRUE(bp.ok()) << bp.status.ToString();
  ASSERT_TRUE(sp.ok()) << sp.status.ToString();

  RewritingContext ctx(*tbox);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult oracle_program =
      RewriteOmqOrError(&ctx, query, RewriterKind::kTw, options);
  ASSERT_TRUE(oracle_program.ok());

  ExecuteRequest batch_request;
  batch_request.incremental = true;
  ExecuteRequest scalar_request;
  scalar_request.incremental = true;
  scalar_request.limits.batch_rows = 0;

  // Warm both retained states with a full execution each.
  ASSERT_TRUE(batch_engine.Execute(*bp.query, batch_request).status.ok());
  ASSERT_TRUE(scalar_engine.Execute(*sp.query, scalar_request).status.ok());

  int r_id = vocab.InternPredicate("R");
  int s_id = vocab.InternPredicate("S");
  DataInstance grown = base;
  std::mt19937_64 rng(8100);
  for (int round = 0; round < 6; ++round) {
    FactBatch batch;
    std::string prefix = "d" + std::to_string(round) + "_";
    std::vector<int> chain;
    for (int i = 0; i < 4; ++i) {
      chain.push_back(vocab.InternIndividual(prefix + std::to_string(i)));
    }
    batch.roles.push_back({r_id, chain[0], chain[1]});
    batch.roles.push_back({s_id, chain[1], chain[2]});
    batch.roles.push_back({r_id, chain[2], chain[3]});
    uint64_t batch_version = 0;
    uint64_t scalar_version = 0;
    ASSERT_TRUE(batch_engine.ApplyFactsOrError(batch, &batch_version).ok());
    ASSERT_TRUE(scalar_engine.ApplyFactsOrError(batch, &scalar_version).ok());
    ASSERT_EQ(batch_version, scalar_version);
    for (const FactBatch::RoleFact& fact : batch.roles) {
      grown.AddRoleAssertion(fact.role_id, fact.subject, fact.object);
    }

    ExecuteResult br = batch_engine.Execute(*bp.query, batch_request);
    ExecuteResult sr = scalar_engine.Execute(*sp.query, scalar_request);
    ASSERT_TRUE(br.status.ok()) << br.status.ToString();
    ASSERT_TRUE(sr.status.ok()) << sr.status.ToString();
    EXPECT_EQ(br.answers, sr.answers) << "round " << round;

    Evaluator oracle(oracle_program.program, grown);
    EXPECT_EQ(br.answers, oracle.Evaluate()) << "round " << round;
  }
}

}  // namespace
}  // namespace owlqr
