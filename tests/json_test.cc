#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace owlqr {
namespace {

TEST(JsonWriterTest, NestedContainersAndSeparators) {
  JsonWriter w;
  w.BeginObject();
  w.KV("a", 1);
  w.Key("b");
  w.BeginArray();
  w.Int(1);
  w.String("two");
  w.Bool(false);
  w.Null();
  w.EndArray();
  w.Key("c");
  w.BeginObject();
  w.KV("d", true);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[1,\"two\",false,null],\"c\":{\"d\":true}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.KV("quote\"back\\slash", "line\nbreak\ttab\rret");
  w.KV("ctl", std::string("\x01", 1));
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"quote\\\"back\\\\slash\":\"line\\nbreak\\ttab\\rret\","
            "\"ctl\":\"\\u0001\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesClampToZero) {
  JsonWriter w;
  w.BeginArray();
  w.Double(1.5);
  w.Double(0.0 / 0.0);  // NaN: JSON has no spelling for it.
  w.EndArray();
  EXPECT_EQ(w.str(), "[1.5,0]");
}

TEST(JsonWriterTest, RawSplicesAValue) {
  JsonWriter inner;
  inner.BeginObject();
  inner.KV("x", 1);
  inner.EndObject();
  JsonWriter w;
  w.BeginObject();
  w.KV("a", 0);
  w.Key("nested");
  w.Raw(inner.str());
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":0,\"nested\":{\"x\":1}}");
}

TEST(JsonWriterTest, OutputRoundTripsThroughTheParser) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "weird \"name\"\n");
  w.KV("count", 42);
  w.KV("ratio", 0.25);
  w.EndObject();
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &value, &error)) << error;
  EXPECT_EQ(value.Find("name")->AsString(), "weird \"name\"\n");
  EXPECT_EQ(value.Find("count")->AsLong(), 42);
  EXPECT_DOUBLE_EQ(value.Find("ratio")->AsDouble(), 0.25);
}

TEST(JsonParserTest, ParsesScalars) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse("null", &v));
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(JsonValue::Parse("true", &v));
  EXPECT_TRUE(v.AsBool());
  ASSERT_TRUE(JsonValue::Parse("-12.5e2", &v));
  EXPECT_DOUBLE_EQ(v.AsDouble(), -1250.0);
  ASSERT_TRUE(JsonValue::Parse("\"hi\"", &v));
  EXPECT_EQ(v.AsString(), "hi");
}

TEST(JsonParserTest, ParsesEscapesIncludingSurrogatePairs) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(R"("a\"b\\c\/d\n\t\u0041")", &v));
  EXPECT_EQ(v.AsString(), "a\"b\\c/d\n\tA");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  ASSERT_TRUE(JsonValue::Parse(R"("\uD83D\uDE00")", &v));
  EXPECT_EQ(v.AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, ObjectAndArrayStructure) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(
      R"({"a": [1, 2, {"b": null}], "c": {"d": "e"}})", &v, &error))
      << error;
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[1].AsLong(), 2);
  EXPECT_TRUE(a->items()[2].Find("b")->is_null());
  EXPECT_EQ(v.Find("c")->Find("d")->AsString(), "e");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedInputs) {
  const char* bad[] = {
      "",
      "{",
      "[1, 2",
      "{\"a\": }",
      "{\"a\" 1}",
      "{a: 1}",
      "[1,]x",
      "\"unterminated",
      "\"bad \\q escape\"",
      "\"\\uD83D\"",       // unpaired high surrogate
      "01x",
      "truex",
      "{} trailing",
      "nul",
      "\"raw \x01 control\"",
  };
  for (const char* text : bad) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonValue::Parse(text, &v, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonParserTest, AcceptsTrailingWhitespaceOnly) {
  JsonValue v;
  EXPECT_TRUE(JsonValue::Parse("  { }  \n\t", &v));
  EXPECT_FALSE(JsonValue::Parse("{} {}", &v));
}

TEST(JsonParserTest, DepthCapStopsRunawayNesting) {
  std::string deep_ok, deep_bad;
  for (int i = 0; i < JsonValue::kMaxDepth; ++i) deep_ok += "[";
  deep_ok += "1";
  for (int i = 0; i < JsonValue::kMaxDepth; ++i) deep_ok += "]";
  for (int i = 0; i < JsonValue::kMaxDepth + 8; ++i) deep_bad += "[";
  deep_bad += "1";
  for (int i = 0; i < JsonValue::kMaxDepth + 8; ++i) deep_bad += "]";
  JsonValue v;
  EXPECT_TRUE(JsonValue::Parse(deep_ok, &v));
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(deep_bad, &v, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos);
}

TEST(JsonParserTest, DuplicateKeysKeepTheLastOccurrence) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(R"({"k": 1, "k": 2})", &v));
  EXPECT_EQ(v.Find("k")->AsLong(), 2);
  EXPECT_EQ(v.size(), 1u);
}

TEST(JsonParserTest, TypedAccessorsFallBackOnWrongType) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse("\"not a number\"", &v));
  EXPECT_EQ(v.AsLong(7), 7);
  EXPECT_FALSE(v.AsBool(false));
  ASSERT_TRUE(JsonValue::Parse("3", &v));
  EXPECT_EQ(v.AsString(), "");
}

}  // namespace
}  // namespace owlqr
