#include <gtest/gtest.h>

#include "cq/cq.h"
#include "cq/gaifman.h"
#include "cq/splitting.h"
#include "cq/tree_decomposition.h"

namespace owlqr {
namespace {

// The linear CQ of Example 8: q(x0, x7) with atom word R S R R S R R.
ConjunctiveQuery Example8(Vocabulary* vocab) {
  ConjunctiveQuery q(vocab);
  const char* word = "RSRRSRR";
  for (int i = 0; i < 7; ++i) {
    std::string u = "x" + std::to_string(i);
    std::string v = "x" + std::to_string(i + 1);
    q.AddBinary(std::string(1, word[i]), u, v);
  }
  q.MarkAnswerVariable(q.FindVariable("x0"));
  q.MarkAnswerVariable(q.FindVariable("x7"));
  return q;
}

TEST(CqTest, BasicConstruction) {
  Vocabulary vocab;
  ConjunctiveQuery q = Example8(&vocab);
  EXPECT_EQ(q.num_vars(), 8);
  EXPECT_EQ(q.atoms().size(), 7u);
  EXPECT_EQ(q.answer_vars().size(), 2u);
  EXPECT_TRUE(q.IsAnswerVar(q.FindVariable("x0")));
  EXPECT_FALSE(q.IsAnswerVar(q.FindVariable("x3")));
  EXPECT_FALSE(q.IsBoolean());
  EXPECT_EQ(q.AtomsOn(q.FindVariable("x3")).size(), 2u);
}

TEST(GaifmanTest, LinearQueryIsTreeWithTwoLeaves) {
  Vocabulary vocab;
  ConjunctiveQuery q = Example8(&vocab);
  GaifmanGraph g(q);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.IsTree());
  EXPECT_TRUE(g.IsLinear());
  EXPECT_EQ(g.NumLeaves(), 2);
  EXPECT_EQ(g.num_edges(), 7);
}

TEST(GaifmanTest, StarQueryLeaves) {
  Vocabulary vocab;
  ConjunctiveQuery q(&vocab);
  q.AddBinary("P", "c", "l1");
  q.AddBinary("P", "c", "l2");
  q.AddBinary("P", "c", "l3");
  GaifmanGraph g(q);
  EXPECT_TRUE(g.IsTree());
  EXPECT_EQ(g.NumLeaves(), 3);
  EXPECT_FALSE(g.IsLinear());
}

TEST(GaifmanTest, SelfLoopIsNotAnEdge) {
  Vocabulary vocab;
  ConjunctiveQuery q(&vocab);
  q.AddBinary("P", "x", "x");
  q.AddBinary("R", "x", "y");
  GaifmanGraph g(q);
  EXPECT_TRUE(g.IsTree());
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GaifmanTest, CycleIsNotATree) {
  Vocabulary vocab;
  ConjunctiveQuery q(&vocab);
  q.AddBinary("P", "x", "y");
  q.AddBinary("P", "y", "z");
  q.AddBinary("P", "z", "x");
  GaifmanGraph g(q);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_FALSE(g.IsTree());
}

TEST(GaifmanTest, ComponentsOfDisconnectedQuery) {
  Vocabulary vocab;
  ConjunctiveQuery q(&vocab);
  q.AddBinary("P", "a", "b");
  q.AddBinary("P", "c", "d");
  q.AddUnary("A", "e");
  GaifmanGraph g(q);
  EXPECT_FALSE(g.IsConnected());
  EXPECT_EQ(g.Components().size(), 3u);
}

TEST(GaifmanTest, BfsLayersOfChain) {
  Vocabulary vocab;
  ConjunctiveQuery q = Example8(&vocab);
  GaifmanGraph g(q);
  auto layers = g.BfsLayers(q.FindVariable("x0"));
  ASSERT_EQ(layers.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(layers[i].size(), 1u);
    EXPECT_EQ(layers[i][0], q.FindVariable("x" + std::to_string(i)));
  }
}

TEST(TreeDecompositionTest, TreeQueryDecomposition) {
  Vocabulary vocab;
  ConjunctiveQuery q = Example8(&vocab);
  GaifmanGraph g(q);
  TreeDecomposition td = DecomposeTreeQuery(q, g);
  EXPECT_EQ(td.num_nodes(), 7);
  EXPECT_EQ(td.width(), 1);
  EXPECT_TRUE(td.Validate(q));
}

TEST(TreeDecompositionTest, StarQueryDecomposition) {
  Vocabulary vocab;
  ConjunctiveQuery q(&vocab);
  for (int i = 0; i < 5; ++i) {
    q.AddBinary("P", "c", "l" + std::to_string(i));
  }
  GaifmanGraph g(q);
  TreeDecomposition td = DecomposeTreeQuery(q, g);
  EXPECT_EQ(td.width(), 1);
  EXPECT_TRUE(td.Validate(q));
}

TEST(TreeDecompositionTest, MinFillOnCycle) {
  Vocabulary vocab;
  ConjunctiveQuery q(&vocab);
  q.AddBinary("P", "x", "y");
  q.AddBinary("P", "y", "z");
  q.AddBinary("P", "z", "w");
  q.AddBinary("P", "w", "x");
  TreeDecomposition td = MinFillDecomposition(q);
  EXPECT_TRUE(td.Validate(q));
  EXPECT_EQ(td.width(), 2);  // Treewidth of a 4-cycle.
}

TEST(TreeDecompositionTest, ExactTreewidthValues) {
  Vocabulary vocab;
  {
    ConjunctiveQuery chain(&vocab);
    chain.AddBinary("P", "a", "b");
    chain.AddBinary("P", "b", "c");
    EXPECT_EQ(ExactTreewidth(chain), 1);
  }
  {
    ConjunctiveQuery cycle(&vocab);
    cycle.AddBinary("P", "x", "y");
    cycle.AddBinary("P", "y", "z");
    cycle.AddBinary("P", "z", "x");
    EXPECT_EQ(ExactTreewidth(cycle), 2);
  }
  {
    // K4 has treewidth 3.
    ConjunctiveQuery k4(&vocab);
    const char* names[] = {"a", "b", "c", "d"};
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        k4.AddBinary("P", names[i], names[j]);
      }
    }
    EXPECT_EQ(ExactTreewidth(k4), 3);
    EXPECT_FALSE(ExactDecomposition(k4, 2).has_value());
    auto td = ExactDecomposition(k4, 3);
    ASSERT_TRUE(td.has_value());
    EXPECT_TRUE(td->Validate(k4));
  }
}

TEST(SplittingTest, CentroidOfChain) {
  SimpleTree tree;
  tree.Resize(7);
  for (int i = 0; i < 6; ++i) tree.AddEdge(i, i + 1);
  int c = TreeCentroid(tree);
  EXPECT_EQ(c, 3);
}

TEST(SplittingTest, SubsetComponents) {
  SimpleTree tree;
  tree.Resize(7);
  for (int i = 0; i < 6; ++i) tree.AddEdge(i, i + 1);
  std::vector<int> subset = {1, 2, 3, 4, 5};
  auto comps = SubsetComponents(tree, subset, 3);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(comps[1], (std::vector<int>{4, 5}));
}

TEST(SplittingTest, BoundaryNodes) {
  SimpleTree tree;
  tree.Resize(7);
  for (int i = 0; i < 6; ++i) tree.AddEdge(i, i + 1);
  std::vector<int> comp = {2, 3, 4};
  auto boundary = BoundaryNodes(tree, comp);
  EXPECT_EQ(boundary, (std::vector<int>{2, 4}));
}

TEST(SplittingTest, Lemma10OnChainWholeTree) {
  SimpleTree tree;
  tree.Resize(8);
  for (int i = 0; i < 7; ++i) tree.AddEdge(i, i + 1);
  std::vector<int> d = {0, 1, 2, 3, 4, 5, 6, 7};
  int t = FindLemma10Splitter(tree, d);
  auto comps = SubsetComponents(tree, d, t);
  for (const auto& comp : comps) {
    EXPECT_LE(2 * comp.size(), d.size());
    EXPECT_LE(BoundaryNodes(tree, comp).size(), 2u);
  }
}

TEST(SplittingTest, Lemma10RespectsDegreeTwoSubtrees) {
  // A "caterpillar": a path with a big pendant subtree in the middle.
  SimpleTree tree;
  tree.Resize(10);
  for (int i = 0; i < 5; ++i) tree.AddEdge(i, i + 1);  // Path 0..5.
  tree.AddEdge(2, 6);
  tree.AddEdge(6, 7);
  tree.AddEdge(7, 8);
  tree.AddEdge(8, 9);
  // D = the path 0..5; its boundary towards the pendant is node 2.
  std::vector<int> d = {0, 1, 2, 3, 4, 5};
  int t = FindLemma10Splitter(tree, d);
  auto comps = SubsetComponents(tree, d, t);
  int oversize = 0;
  for (const auto& comp : comps) {
    EXPECT_LE(BoundaryNodes(tree, comp).size(), 2u);
    if (2 * comp.size() > d.size()) ++oversize;
  }
  EXPECT_LE(oversize, 1);
}

}  // namespace
}  // namespace owlqr
