#include <gtest/gtest.h>

#include "chase/certain_answers.h"
#include "syntax/parser.h"

namespace owlqr {
namespace {

TEST(ParserTest, TBoxRoundTrip) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  std::string error;
  ASSERT_TRUE(ParseTBox(R"(
      # a small org ontology
      Manager SUB Employee
      Employee SUB EX worksFor
      EX worksFor- SUB Project
      TOP SUB Thing
      manages SUBR worksFor
      reports- SUBR worksFor
      REFLEXIVE knows
      DISJOINT Manager Intern
      DISJOINT-ROLES manages reports-
      IRREFLEXIVE manages
  )",
                        &tbox, &error))
      << error;
  EXPECT_EQ(tbox.concept_inclusions().size(), 4u);
  EXPECT_EQ(tbox.role_inclusions().size(), 2u);
  EXPECT_EQ(tbox.reflexive_roles().size(), 1u);
  EXPECT_EQ(tbox.concept_disjointness().size(), 1u);
  EXPECT_EQ(tbox.role_disjointness().size(), 1u);
  EXPECT_EQ(tbox.irreflexive_roles().size(), 1u);
  EXPECT_TRUE(tbox.role_inclusions()[1].lhs ==
              RoleOf(vocab.FindPredicate("reports"), true));

  // Round trip: re-parse the printed form.
  std::string printed = TBoxToString(tbox);
  Vocabulary vocab2;
  TBox tbox2(&vocab2);
  ASSERT_TRUE(ParseTBox(printed, &tbox2, &error)) << error;
  EXPECT_EQ(tbox2.NumAxioms(), tbox.NumAxioms());
}

TEST(ParserTest, TBoxErrors) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  std::string error;
  EXPECT_FALSE(ParseTBox("Manager Employee", &tbox, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(ParseTBox("A SUB EX", &tbox, &error));
  EXPECT_FALSE(ParseTBox("REFLEXIVE", &tbox, &error));
  EXPECT_FALSE(ParseTBox("A SUB B C", &tbox, &error));
}

TEST(ParserTest, QueryParsing) {
  Vocabulary vocab;
  std::string error;
  auto query = ParseQuery(
      "q(x, y) :- worksFor(x, z), Manager(z), knows(z, y)", &vocab, &error);
  ASSERT_TRUE(query.has_value()) << error;
  EXPECT_EQ(query->num_vars(), 3);
  EXPECT_EQ(query->atoms().size(), 3u);
  EXPECT_EQ(query->answer_vars().size(), 2u);
  EXPECT_TRUE(query->IsAnswerVar(query->FindVariable("x")));
  EXPECT_FALSE(query->IsAnswerVar(query->FindVariable("z")));
  EXPECT_GE(vocab.FindConcept("Manager"), 0);
  EXPECT_GE(vocab.FindPredicate("knows"), 0);
}

TEST(ParserTest, BooleanQuery) {
  Vocabulary vocab;
  std::string error;
  auto query = ParseQuery("q() :- A(x), R(x, y)", &vocab, &error);
  ASSERT_TRUE(query.has_value()) << error;
  EXPECT_TRUE(query->IsBoolean());
}

TEST(ParserTest, QueryErrors) {
  Vocabulary vocab;
  std::string error;
  EXPECT_FALSE(ParseQuery("q(x) R(x, y)", &vocab, &error).has_value());
  EXPECT_FALSE(ParseQuery("q(x) :- R(x, y, z)", &vocab, &error).has_value());
  EXPECT_FALSE(ParseQuery("q(x) :- R(x", &vocab, &error).has_value());
}

TEST(ParserTest, DataParsing) {
  Vocabulary vocab;
  DataInstance data(&vocab);
  std::string error;
  ASSERT_TRUE(ParseData(R"(
      Manager(ann).  worksFor(bob, crm).
      knows(ann, bob)
      # comment line
  )",
                        &data, &error))
      << error;
  EXPECT_EQ(data.NumAtoms(), 3);
  EXPECT_EQ(data.num_individuals(), 3);
  EXPECT_TRUE(data.HasConceptAssertion(vocab.FindConcept("Manager"),
                                       vocab.FindIndividual("ann")));
}

TEST(ParserTest, EndToEndPipeline) {
  // Parse an ontology, query and data; answer through the reference engine.
  Vocabulary vocab;
  TBox tbox(&vocab);
  std::string error;
  ASSERT_TRUE(ParseTBox(R"(
      Professor SUB EX teaches
      EX teaches- SUB Course
  )",
                        &tbox, &error))
      << error;
  tbox.Normalize();
  auto query =
      ParseQuery("q(x) :- teaches(x, y), Course(y)", &vocab, &error);
  ASSERT_TRUE(query.has_value()) << error;
  DataInstance data(&vocab);
  ASSERT_TRUE(ParseData("Professor(ann). teaches(bob, algebra).", &data,
                        &error))
      << error;
  auto result = ComputeCertainAnswers(tbox, *query, data);
  ASSERT_TRUE(result.consistent);
  ASSERT_EQ(result.answers.size(), 2u);  // ann (anonymous course) and bob.
}

}  // namespace
}  // namespace owlqr
