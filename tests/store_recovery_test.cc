// Crash-recovery fault injection for the durable store (DESIGN.md §14):
//
//  - a crash-point sweep truncating the fact log at EVERY byte boundary of
//    its final record: reopening must recover exactly the longest valid
//    record prefix, never crash, and answer byte-identically to an
//    in-memory oracle engine fed the same surviving batches;
//  - single-bit flips over every byte of the log: a flipped header is a
//    clean DATA_LOSS, a flipped record truncates the log back to the last
//    intact record before it;
//  - single-bit flips over every byte of every segment file and of
//    CURRENT: all of them are checksum- or header-covered, so recovery
//    must refuse (field-naming Status) rather than serve corrupt columns;
//  - the recovery state machine's edges: a LOG with no CURRENT is data
//    loss, a fingerprint mismatch is refused, a fully-cold recovery
//    (store_resident_bytes = 1) still answers exactly.
//
// Engines are compared ACROSS vocabularies (a restarted process interns in
// a different order), so answers are compared by individual name, not id.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "store/format.h"
#include "store/fs.h"
#include "store/log.h"
#include "store/store.h"
#include "syntax/parser.h"

namespace owlqr {
namespace {

constexpr char kOntology[] = "A SUB B\nEX R SUB C\n";
constexpr char kSeedData[] = "A(seed0). R(seed0, seed1).\n";
constexpr char kQueryB[] = "q(x) :- B(x)";
constexpr char kQueryC[] = "q(x) :- C(x)";

// A batch at the name level, so it can be interned into any vocabulary.
struct NamedBatch {
  std::vector<std::pair<std::string, std::string>> concepts;  // (A, a)
  std::vector<std::array<std::string, 3>> roles;              // (R, a, b)
};

NamedBatch MakeBatch(int b) {
  const std::string p = "ind" + std::to_string(b) + "_";
  NamedBatch batch;
  batch.concepts.push_back({"A", p + "0"});
  batch.roles.push_back({"R", p + "0", p + "1"});
  batch.roles.push_back({"R", p + "1", p + "2"});
  return batch;
}

FactBatch Intern(const NamedBatch& named, Vocabulary* vocab) {
  FactBatch batch;
  for (const auto& [concept_name, ind] : named.concepts) {
    batch.concepts.push_back({vocab->InternConcept(concept_name),
                              vocab->InternIndividual(ind)});
  }
  for (const auto& [role, a, b] : named.roles) {
    batch.roles.push_back({vocab->InternPredicate(role),
                           vocab->InternIndividual(a),
                           vocab->InternIndividual(b)});
  }
  return batch;
}

std::string MakeTempDir(const char* tag) {
  std::string templ = ::testing::TempDir() + tag + ".XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

// One self-contained engine: its own vocabulary + parsed TBox + seed data,
// optionally store-backed.  Everything a "process" would rebuild at start.
struct Instance {
  std::unique_ptr<Vocabulary> vocab;
  std::unique_ptr<TBox> tbox;
  std::unique_ptr<Engine> engine;
  Status open_status;
};

Instance OpenInstance(const std::string& store_dir,
                      size_t resident_bytes = 0,
                      const std::string& ontology = kOntology) {
  Instance inst;
  inst.vocab = std::make_unique<Vocabulary>();
  inst.tbox = std::make_unique<TBox>(inst.vocab.get());
  std::string error;
  EXPECT_TRUE(ParseTBox(ontology, inst.tbox.get(), &error)) << error;
  DataInstance data(inst.vocab.get());
  EXPECT_TRUE(ParseData(kSeedData, &data, &error)) << error;

  EngineOptions options;
  if (!store_dir.empty()) {
    store::StoreOptions store_options;
    store_options.dir = store_dir;
    std::shared_ptr<store::DurableStore> durable;
    Status status = store::DurableStore::Open(store_options, &durable);
    if (!status.ok()) {
      inst.open_status = status;
      return inst;
    }
    options.store = std::move(durable);
    options.store_resident_bytes = resident_bytes;
  }
  inst.engine =
      Engine::Open(*inst.tbox, data, nullptr, options, &inst.open_status);
  return inst;
}

// Sorted answer names for `query_text` — the cross-vocabulary currency.
std::multiset<std::string> AnswerNames(Instance* inst,
                                       const std::string& query_text) {
  std::string error;
  auto query = ParseQuery(query_text, inst->vocab.get(), &error);
  EXPECT_TRUE(query.has_value()) << error;
  Status status;
  ExecuteResult result = inst->engine->Query(*query, {}, &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  std::multiset<std::string> names;
  for (const auto& tuple : result.answers) {
    for (int id : tuple) names.insert(inst->vocab->IndividualName(id));
  }
  return names;
}

// The in-memory oracle: a fresh engine over the seed data plus the first
// `num_batches` batches, no store anywhere near it.
std::multiset<std::string> OracleNames(int num_batches,
                                       const std::string& query_text) {
  Instance oracle = OpenInstance("");
  EXPECT_NE(oracle.engine, nullptr) << oracle.open_status.ToString();
  for (int b = 0; b < num_batches; ++b) {
    EXPECT_TRUE(oracle.engine
                    ->ApplyFactsOrError(Intern(MakeBatch(b),
                                               oracle.vocab.get()))
                    .ok());
  }
  return AnswerNames(&oracle, query_text);
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string ReadBytes(const std::string& path) {
  std::string out;
  Status status = store::ReadWholeFile(path, &out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

// Copies a store directory (flat files + one level of segment dirs) so a
// fault can be injected without disturbing the pristine original.
void CopyDir(const std::string& from, const std::string& to) {
  ASSERT_TRUE(store::MakeDir(to).ok());
  std::vector<std::string> entries;
  ASSERT_TRUE(store::ListDir(from, &entries).ok());
  for (const std::string& name : entries) {
    const std::string src = from + "/" + name;
    if (store::IsDirectory(src)) {
      CopyDir(src, to + "/" + name);
    } else {
      WriteBytes(to + "/" + name, ReadBytes(src));
    }
  }
}

// Builds the store under test: seed data, `num_batches` applied batches,
// engine closed (as a crash would leave it, modulo the torn tail the
// individual tests then inject).
void BuildStore(const std::string& dir, int num_batches) {
  Instance inst = OpenInstance(dir);
  ASSERT_NE(inst.engine, nullptr) << inst.open_status.ToString();
  for (int b = 0; b < num_batches; ++b) {
    uint64_t version = 0;
    ASSERT_TRUE(inst.engine
                    ->ApplyFactsOrError(Intern(MakeBatch(b), inst.vocab.get()),
                                        &version)
                    .ok());
    ASSERT_EQ(version, static_cast<uint64_t>(b) + 2);
  }
}

// Byte offsets of each record boundary in a log image: offsets[k] is where
// record k starts; offsets.back() is the end of the last record.
std::vector<size_t> RecordBoundaries(const std::string& log_bytes) {
  std::vector<store::LogRecord> records;
  size_t valid_end = 0;
  size_t dropped = 0;
  Status status =
      store::ScanLog(reinterpret_cast<const uint8_t*>(log_bytes.data()),
                     log_bytes.size(), &records, &valid_end, &dropped);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(valid_end, log_bytes.size());
  std::vector<size_t> offsets;
  offsets.push_back(store::kFileHeaderBytes);
  for (const store::LogRecord& record : records) {
    std::string encoded;
    store::EncodeLogRecord(record, &encoded);
    offsets.push_back(offsets.back() + encoded.size());
  }
  EXPECT_EQ(offsets.back(), log_bytes.size());
  return offsets;
}

TEST(StoreRecoveryTest, RoundTripPreservesVersionAndAnswers) {
  const std::string dir = MakeTempDir("store_roundtrip");
  BuildStore(dir, 3);

  Instance reopened = OpenInstance(dir);
  ASSERT_NE(reopened.engine, nullptr) << reopened.open_status.ToString();
  EXPECT_EQ(reopened.engine->snapshot_version(), 4u);
  EXPECT_EQ(AnswerNames(&reopened, kQueryB), OracleNames(3, kQueryB));
  EXPECT_EQ(AnswerNames(&reopened, kQueryC), OracleNames(3, kQueryC));
  // The reopened engine keeps serving updates durably.
  uint64_t version = 0;
  ASSERT_TRUE(reopened.engine
                  ->ApplyFactsOrError(
                      Intern(MakeBatch(3), reopened.vocab.get()), &version)
                  .ok());
  EXPECT_EQ(version, 5u);
  reopened.engine.reset();

  Instance again = OpenInstance(dir);
  ASSERT_NE(again.engine, nullptr) << again.open_status.ToString();
  EXPECT_EQ(again.engine->snapshot_version(), 5u);
  EXPECT_EQ(AnswerNames(&again, kQueryB), OracleNames(4, kQueryB));
}

TEST(StoreRecoveryTest, CrashPointSweepOverFinalRecord) {
  constexpr int kBatches = 3;
  const std::string dir = MakeTempDir("store_sweep");
  BuildStore(dir, kBatches);
  const std::string log_bytes = ReadBytes(dir + "/LOG");
  const std::vector<size_t> offsets = RecordBoundaries(log_bytes);
  ASSERT_EQ(offsets.size(), static_cast<size_t>(kBatches) + 1);

  // Oracle answers per surviving-prefix length, computed once.
  std::vector<std::multiset<std::string>> oracle_b, oracle_c;
  for (int k = 0; k <= kBatches; ++k) {
    oracle_b.push_back(OracleNames(k, kQueryB));
    oracle_c.push_back(OracleNames(k, kQueryC));
  }

  // Truncate at every byte boundary inside the FINAL record (the torn tail
  // a crash mid-append leaves), inclusive of both "record fully missing"
  // and "record fully present".
  const size_t last_start = offsets[kBatches - 1];
  for (size_t cut = last_start; cut <= log_bytes.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::string trial = MakeTempDir("store_sweep_cut");
    CopyDir(dir, trial);
    WriteBytes(trial + "/LOG", log_bytes.substr(0, cut));

    Instance reopened = OpenInstance(trial);
    ASSERT_NE(reopened.engine, nullptr) << reopened.open_status.ToString();
    const int survived = cut >= offsets[kBatches] ? kBatches : kBatches - 1;
    EXPECT_EQ(reopened.engine->snapshot_version(),
              static_cast<uint64_t>(survived) + 1);
    EXPECT_EQ(AnswerNames(&reopened, kQueryB), oracle_b[survived]);
    EXPECT_EQ(AnswerNames(&reopened, kQueryC), oracle_c[survived]);
    reopened.engine.reset();
    store::RemoveDirRecursive(trial + "/seg-1");
    store::RemoveDirRecursive(trial);
  }
}

TEST(StoreRecoveryTest, LogBitFlipsTruncateToLastIntactRecord) {
  constexpr int kBatches = 2;
  const std::string dir = MakeTempDir("store_logflip");
  BuildStore(dir, kBatches);
  const std::string log_bytes = ReadBytes(dir + "/LOG");
  const std::vector<size_t> offsets = RecordBoundaries(log_bytes);

  std::vector<std::multiset<std::string>> oracle_b;
  for (int k = 0; k <= kBatches; ++k) oracle_b.push_back(OracleNames(k, kQueryB));

  for (size_t pos = 0; pos < log_bytes.size(); ++pos) {
    SCOPED_TRACE("flip at " + std::to_string(pos));
    const std::string trial = MakeTempDir("store_logflip_trial");
    CopyDir(dir, trial);
    std::string corrupt = log_bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    WriteBytes(trial + "/LOG", corrupt);

    Instance reopened = OpenInstance(trial);
    if (pos < store::kFileHeaderBytes) {
      // Header corruption is never survivable: a log that can't prove what
      // it is must not be replayed.
      EXPECT_EQ(reopened.engine, nullptr);
      EXPECT_EQ(reopened.open_status.code(), StatusCode::kDataLoss)
          << reopened.open_status.ToString();
    } else {
      // A flip inside record k kills k and everything after it; the prefix
      // before k must survive exactly.
      ASSERT_NE(reopened.engine, nullptr) << reopened.open_status.ToString();
      int record = 0;
      while (offsets[record + 1] <= pos) ++record;
      EXPECT_EQ(reopened.engine->snapshot_version(),
                static_cast<uint64_t>(record) + 1);
      EXPECT_EQ(AnswerNames(&reopened, kQueryB), oracle_b[record]);
    }
    reopened.engine.reset();
    store::RemoveDirRecursive(trial + "/seg-1");
    store::RemoveDirRecursive(trial);
  }
}

// Regression: FactLog::Append rolled a failed append back with ftruncate
// but never repositioned the (non-O_APPEND) fd, so the next successful
// append wrote past a zero-filled hole — acknowledged and fsynced, yet
// unrecoverable because the scan stops at the hole.  The log is now opened
// O_APPEND; this test reproduces the mechanism by shrinking the file out
// from under the open fd (exactly what the rollback ftruncate does) and
// asserts the next append lands at the real EOF, not at the stale offset.
TEST(StoreRecoveryTest, AppendAfterRollbackTruncationLeavesNoHole) {
  const std::string dir = MakeTempDir("store_log_hole");
  const std::string path = dir + "/LOG";
  std::unique_ptr<store::FactLog> log;
  std::vector<store::LogRecord> recovered;
  uint64_t dropped = 0;
  ASSERT_TRUE(
      store::FactLog::Open(path, /*fsync=*/false, &log, &recovered, &dropped)
          .ok());

  store::LogRecord r1;
  r1.version = 1;
  r1.batch.concepts.push_back({"A", "a1"});
  ASSERT_TRUE(log->Append(r1).ok());
  // The error-path rollback: the file shrinks back to the header while the
  // fd's offset (under the old bug) still sits past the end of r1.
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(store::kFileHeaderBytes)),
            0);
  store::LogRecord r2;
  r2.version = 2;
  r2.batch.concepts.push_back({"A", "a2"});
  ASSERT_TRUE(log->Append(r2).ok());
  log.reset();

  const std::string bytes = ReadBytes(path);
  std::vector<store::LogRecord> records;
  size_t valid_end = 0;
  size_t drop = 0;
  ASSERT_TRUE(store::ScanLog(reinterpret_cast<const uint8_t*>(bytes.data()),
                             bytes.size(), &records, &valid_end, &drop)
                  .ok());
  // r2 must be fully recoverable: no hole, no dropped tail.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].version, 2u);
  ASSERT_EQ(records[0].batch.concepts.size(), 1u);
  EXPECT_EQ(records[0].batch.concepts[0].individual, "a2");
  EXPECT_EQ(valid_end, bytes.size());
  EXPECT_EQ(drop, 0u);
  store::RemoveDirRecursive(dir);
}

TEST(StoreRecoveryTest, SegmentAndCurrentBitFlipsAreAlwaysRefused) {
  const std::string dir = MakeTempDir("store_segflip");
  BuildStore(dir, 1);

  // Every byte of every non-LOG file is header- or checksum-covered, so a
  // single flipped bit anywhere must make recovery refuse with a Status —
  // serving silently-corrupt columns is the one unacceptable outcome.
  std::vector<std::string> files = {"CURRENT"};
  std::vector<std::string> seg_entries;
  ASSERT_TRUE(store::ListDir(dir + "/seg-1", &seg_entries).ok());
  for (const std::string& name : seg_entries) files.push_back("seg-1/" + name);

  for (const std::string& file : files) {
    const std::string pristine = ReadBytes(dir + "/" + file);
    for (size_t pos = 0; pos < pristine.size(); ++pos) {
      SCOPED_TRACE(file + " flip at " + std::to_string(pos));
      const std::string trial = MakeTempDir("store_segflip_trial");
      CopyDir(dir, trial);
      std::string corrupt = pristine;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
      WriteBytes(trial + "/" + file, corrupt);

      Instance reopened = OpenInstance(trial);
      EXPECT_EQ(reopened.engine, nullptr)
          << file << " byte " << pos << " flip was silently accepted";
      EXPECT_FALSE(reopened.open_status.ok());
      EXPECT_FALSE(reopened.open_status.message().empty());
      store::RemoveDirRecursive(trial + "/seg-1");
      store::RemoveDirRecursive(trial);
    }
  }
}

TEST(StoreRecoveryTest, LogWithoutCurrentIsDataLoss) {
  const std::string dir = MakeTempDir("store_orphanlog");
  BuildStore(dir, 1);
  // Simulate losing the baseline: CURRENT (and the segment) vanish but the
  // log survives.  Replaying it against nothing would silently drop the
  // seed facts, so recovery must refuse.
  ASSERT_TRUE(store::RemoveFile(dir + "/CURRENT").ok());
  ASSERT_TRUE(store::RemoveDirRecursive(dir + "/seg-1").ok());

  Instance reopened = OpenInstance(dir);
  EXPECT_EQ(reopened.engine, nullptr);
  EXPECT_EQ(reopened.open_status.code(), StatusCode::kDataLoss)
      << reopened.open_status.ToString();
}

TEST(StoreRecoveryTest, FingerprintMismatchIsRefused) {
  const std::string dir = MakeTempDir("store_fpmismatch");
  BuildStore(dir, 1);
  Instance reopened =
      OpenInstance(dir, 0, "A SUB B\nEX R SUB C\nB SUB C\n");
  EXPECT_EQ(reopened.engine, nullptr);
  EXPECT_EQ(reopened.open_status.code(), StatusCode::kDataLoss)
      << reopened.open_status.ToString();
}

TEST(StoreRecoveryTest, FullyColdRecoveryFaultsColumnsInExactly) {
  const std::string dir = MakeTempDir("store_cold");
  BuildStore(dir, 3);
  {
    // Compact so the whole state lives in the segment: a log-tail replay
    // would touch (and thereby materialise) every relation the batches
    // mention, defeating the cold-start this test is about.
    Instance compactor = OpenInstance(dir);
    ASSERT_NE(compactor.engine, nullptr) << compactor.open_status.ToString();
    ASSERT_TRUE(compactor.engine->Checkpoint().ok());
  }

  // A 1-byte residency budget fits nothing: every column starts cold and
  // must fault in through the snapshot's ColumnSource on first touch.
  Instance reopened = OpenInstance(dir, /*resident_bytes=*/1);
  ASSERT_NE(reopened.engine, nullptr) << reopened.open_status.ToString();
  const auto snap = reopened.engine->snapshot();
  EXPECT_EQ(snap->ResidentColumns(), 0u);
  EXPECT_GT(snap->ColdColumns(), 0u);
  EXPECT_EQ(AnswerNames(&reopened, kQueryB), OracleNames(3, kQueryB));
  EXPECT_EQ(AnswerNames(&reopened, kQueryC), OracleNames(3, kQueryC));
  // The touched columns are resident now and stay so for this snapshot.
  EXPECT_GT(snap->ResidentColumns(), 0u);

  // Updates on a cold-backed snapshot keep working (WithFacts must see the
  // parent rows of any relation the batch touches).
  uint64_t version = 0;
  ASSERT_TRUE(reopened.engine
                  ->ApplyFactsOrError(
                      Intern(MakeBatch(3), reopened.vocab.get()), &version)
                  .ok());
  EXPECT_EQ(version, 5u);
  EXPECT_EQ(AnswerNames(&reopened, kQueryB), OracleNames(4, kQueryB));
}

}  // namespace
}  // namespace owlqr
