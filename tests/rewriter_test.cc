#include <gtest/gtest.h>

#include <random>

#include "chase/certain_answers.h"
#include "core/rewriters.h"
#include "data/completion.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

constexpr RewriterKind kAllKinds[] = {
    RewriterKind::kLog, RewriterKind::kLin,       RewriterKind::kTw,
    RewriterKind::kTwStar, RewriterKind::kUcq,    RewriterKind::kPrestoLike};

// Evaluates the rewriting of (tbox, query) by `kind` over `data` (raw, with
// the arbitrary-instance transformation) and checks it against the reference
// engine's certain answers.
void CheckRewriter(RewritingContext* ctx, const ConjunctiveQuery& query,
                   const DataInstance& data, RewriterKind kind,
                   const std::vector<std::vector<int>>& expected,
                   const std::string& label) {
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(ctx, query, kind, options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);
  ASSERT_TRUE(program.IsNonrecursive()) << label;
  Evaluator eval(program, data);
  EXPECT_EQ(eval.Evaluate(), expected)
      << label << " kind=" << RewriterName(kind) << "\n"
      << query.ToString();

  // The complete-instance rewriting over the completed instance must agree.
  RewriteResult complete_program_rw = RewriteOmqOrError(ctx, query, kind);
  OWLQR_CHECK_MSG(complete_program_rw.ok(), complete_program_rw.status.message().c_str());
  NdlProgram complete_program = std::move(complete_program_rw.program);
  DataInstance completed =
      CompleteInstance(data, ctx->tbox(), ctx->saturation());
  Evaluator eval2(complete_program, completed);
  EXPECT_EQ(eval2.Evaluate(), expected)
      << label << " (complete) kind=" << RewriterName(kind) << "\n"
      << query.ToString();
}

TEST(UcqRewriterTest, Example8MatchesAppendixCount) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRRSRR");
  NdlProgram ucq = UcqRewrite(&ctx, q);
  // Appendix A.6.1: exactly 9 CQs in the UCQ rewriting.
  EXPECT_EQ(ucq.num_clauses(), 9);
}

TEST(LinRewriterTest, ProducesLinearProgram) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRRSRR");
  RewriteResult lin_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kLin);
  OWLQR_CHECK_MSG(lin_rw.ok(), lin_rw.status.message().c_str());
  NdlProgram lin = std::move(lin_rw.program);
  EXPECT_TRUE(lin.IsLinear());
  // Width <= 2 * leaves = 4 over complete instances.
  EXPECT_LE(lin.Width(), 4);
  RewriteOptions arb;
  arb.arbitrary_instances = true;
  RewriteResult lin_arb_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kLin, arb);
  OWLQR_CHECK_MSG(lin_arb_rw.ok(), lin_arb_rw.status.message().c_str());
  NdlProgram lin_arb = std::move(lin_arb_rw.program);
  EXPECT_TRUE(lin_arb.IsLinear());
  EXPECT_LE(lin_arb.Width(), 5);  // Lemma 3: width grows by at most 1.
}

TEST(LogRewriterTest, WidthBound) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRRSRR");
  RewriteResult log_program_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kLog);
  OWLQR_CHECK_MSG(log_program_rw.ok(), log_program_rw.status.message().c_str());
  NdlProgram log_program = std::move(log_program_rw.program);
  // Treewidth 1: width <= 3 (t + 1) = 6.
  EXPECT_LE(log_program.Width(), 6);
}

TEST(TwRewriterTest, InliningPreservesAnswers) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSR");
  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  data.AddConceptAssertion(a_p, vocab.InternIndividual("b"));
  data.AddIndividual("b");

  RewriteOptions arb;
  arb.arbitrary_instances = true;
  RewriteResult tw_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kTw, arb);
  OWLQR_CHECK_MSG(tw_rw.ok(), tw_rw.status.message().c_str());
  NdlProgram tw = std::move(tw_rw.program);
  RewriteResult tw_star_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kTwStar, arb);
  OWLQR_CHECK_MSG(tw_star_rw.ok(), tw_star_rw.status.message().c_str());
  NdlProgram tw_star = std::move(tw_star_rw.program);
  EXPECT_LE(tw_star.num_clauses(), tw.num_clauses());
  Evaluator e1(tw, data);
  Evaluator e2(tw_star, data);
  EXPECT_EQ(e1.Evaluate(), e2.Evaluate());
}

TEST(RewriterTest, Example8EndToEnd) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRRSRR");

  // Direct data match plus anonymous witnesses: R(c0,c1), A[P](c1) covers
  // R S R via the tree below c1 (S(c1, c1.P), R(c1.P, c1)), so x3 = c1, and
  // then R(c1,c4), A[P](c4) covers the second R S R with x6 = c4, and
  // finally R(c4, c7)... but that would reuse the R edges.  Build the data
  // so that the expected answers are known from the reference engine.
  DataInstance data(&vocab);
  data.Assert("R", "c0", "c1");
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  data.AddConceptAssertion(a_p, vocab.FindIndividual("c1"));
  data.Assert("R", "c1", "c4");
  data.AddConceptAssertion(a_p, vocab.FindIndividual("c4"));
  data.Assert("R", "c4", "c7");

  auto reference = ComputeCertainAnswers(*tbox, q, data);
  ASSERT_TRUE(reference.consistent);
  ASSERT_FALSE(reference.answers.empty());
  for (RewriterKind kind : kAllKinds) {
    CheckRewriter(&ctx, q, data, kind, reference.answers, "example8");
  }
}

// ---------------------------------------------------------------------------
// Randomised cross-validation against the reference engine.
// ---------------------------------------------------------------------------

struct RandomScenario {
  Vocabulary vocab;
  std::unique_ptr<TBox> tbox;
  std::vector<int> predicates;
  std::vector<int> concepts;
  bool finite_depth = true;
};

std::unique_ptr<RandomScenario> MakeScenario(int which) {
  auto s = std::make_unique<RandomScenario>();
  switch (which) {
    case 0: {  // Example 11 (depth 1).
      s->tbox = MakeExample11TBox(&s->vocab);
      break;
    }
    case 1: {  // Depth 2 with concept hierarchy and both-direction roles.
      s->tbox = std::make_unique<TBox>(&s->vocab);
      s->tbox->AddExistsRhs("A", "T1");
      s->tbox->AddConceptInclusion(
          BasicConcept::Exists(RoleOf(s->vocab.InternPredicate("T1"), true)),
          BasicConcept::Exists(RoleOf(s->vocab.InternPredicate("T2"))));
      s->tbox->AddExistsLhs("T2", "B", /*inverse=*/true);
      s->tbox->AddRoleInclusion(RoleOf(s->vocab.InternPredicate("T1")),
                                RoleOf(s->vocab.InternPredicate("U")));
      s->tbox->AddAtomicInclusion("B", "C");
      s->tbox->Normalize();
      break;
    }
    case 2: {  // Reflexive role plus inverse games (depth 1).
      s->tbox = std::make_unique<TBox>(&s->vocab);
      int k = s->vocab.InternPredicate("K");
      s->tbox->AddReflexivity(RoleOf(k));
      s->tbox->AddRoleInclusion(RoleOf(k), RoleOf(s->vocab.InternPredicate("R")));
      s->tbox->AddExistsRhs("A", "S");
      s->tbox->AddExistsLhs("S", "B", /*inverse=*/true);
      s->tbox->Normalize();
      break;
    }
    case 4: {  // Depth 3 with branching existentials and a long role chain.
      s->tbox = std::make_unique<TBox>(&s->vocab);
      s->tbox->AddExistsRhs("A", "E1");
      s->tbox->AddExistsRhs("A", "F1");
      s->tbox->AddConceptInclusion(
          BasicConcept::Exists(RoleOf(s->vocab.InternPredicate("E1"), true)),
          BasicConcept::Exists(RoleOf(s->vocab.InternPredicate("E2"))));
      s->tbox->AddConceptInclusion(
          BasicConcept::Exists(RoleOf(s->vocab.InternPredicate("E2"), true)),
          BasicConcept::Exists(RoleOf(s->vocab.InternPredicate("E3"))));
      s->tbox->AddRoleInclusion(RoleOf(s->vocab.InternPredicate("E1")),
                                RoleOf(s->vocab.InternPredicate("U")));
      s->tbox->AddExistsLhs("E3", "Deep", /*inverse=*/true);
      s->tbox->Normalize();
      break;
    }
    case 5: {  // Concept-heavy: hierarchies feeding existentials.
      s->tbox = std::make_unique<TBox>(&s->vocab);
      s->tbox->AddAtomicInclusion("C1", "C2");
      s->tbox->AddAtomicInclusion("C2", "C3");
      s->tbox->AddExistsRhs("C3", "G1");
      s->tbox->AddExistsLhs("G1", "C0", /*inverse=*/true);
      s->tbox->AddRoleInclusion(RoleOf(s->vocab.InternPredicate("G1")),
                                RoleOf(s->vocab.InternPredicate("G2"), true));
      s->tbox->Normalize();
      break;
    }
    case 3: {  // Infinite depth (Tw / baselines only).
      s->tbox = std::make_unique<TBox>(&s->vocab);
      RoleId p = RoleOf(s->vocab.InternPredicate("P"));
      s->tbox->AddExistsRhs("A", "P");
      s->tbox->AddConceptInclusion(BasicConcept::Exists(Inverse(p)),
                                   BasicConcept::Exists(p));
      s->tbox->AddRoleInclusion(p, RoleOf(s->vocab.InternPredicate("R")));
      s->tbox->AddExistsLhs("P", "B", /*inverse=*/true);
      s->tbox->Normalize();
      s->finite_depth = false;
      break;
    }
  }
  for (int p = 0; p < s->vocab.num_predicates(); ++p) {
    s->predicates.push_back(p);
  }
  for (int c = 0; c < s->vocab.num_concepts(); ++c) s->concepts.push_back(c);
  return s;
}

ConjunctiveQuery RandomTreeQuery(RandomScenario* s, std::mt19937_64* rng,
                                 int num_vars) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  ConjunctiveQuery q(&s->vocab);
  for (int v = 0; v < num_vars; ++v) {
    q.AddVariable("y" + std::to_string(v));
  }
  auto pred = [&] {
    return s->predicates[(*rng)() % s->predicates.size()];
  };
  for (int v = 1; v < num_vars; ++v) {
    int parent = static_cast<int>((*rng)() % v);
    if (unit(*rng) < 0.5) {
      q.AddBinaryAtom(pred(), parent, v);
    } else {
      q.AddBinaryAtom(pred(), v, parent);
    }
  }
  // A few unary atoms.
  int unary = static_cast<int>((*rng)() % 3);
  for (int i = 0; i < unary && !s->concepts.empty(); ++i) {
    q.AddUnaryAtom(s->concepts[(*rng)() % s->concepts.size()],
                   static_cast<int>((*rng)() % num_vars));
  }
  for (int v = 0; v < num_vars; ++v) {
    if (unit(*rng) < 0.35) q.MarkAnswerVariable(v);
  }
  return q;
}

DataInstance RandomData(RandomScenario* s, std::mt19937_64* rng,
                        int num_individuals, int num_atoms) {
  DataInstance data(&s->vocab);
  std::vector<int> inds;
  for (int i = 0; i < num_individuals; ++i) {
    inds.push_back(data.AddIndividual("i" + std::to_string(i)));
  }
  for (int a = 0; a < num_atoms; ++a) {
    if ((*rng)() % 3 == 0 && !s->concepts.empty()) {
      data.AddConceptAssertion(s->concepts[(*rng)() % s->concepts.size()],
                               inds[(*rng)() % inds.size()]);
    } else {
      data.AddRoleAssertion(s->predicates[(*rng)() % s->predicates.size()],
                            inds[(*rng)() % inds.size()],
                            inds[(*rng)() % inds.size()]);
    }
  }
  return data;
}

class RandomizedAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedAgreement, AllRewritersMatchReference) {
  int scenario_id = GetParam();
  auto s = MakeScenario(scenario_id);
  RewritingContext ctx(*s->tbox);
  std::mt19937_64 rng(977 + scenario_id);
  int iterations = 40;
  for (int iter = 0; iter < iterations; ++iter) {
    int num_vars = 2 + static_cast<int>(rng() % 4);
    ConjunctiveQuery q = RandomTreeQuery(s.get(), &rng, num_vars);
    DataInstance data = RandomData(s.get(), &rng, 5, 8);
    auto reference = ComputeCertainAnswers(*s->tbox, q, data);
    ASSERT_TRUE(reference.consistent);
    std::string label =
        "scenario " + std::to_string(scenario_id) + " iter " +
        std::to_string(iter);
    for (RewriterKind kind : kAllKinds) {
      if (!s->finite_depth &&
          (kind == RewriterKind::kLog || kind == RewriterKind::kLin)) {
        continue;
      }
      CheckRewriter(&ctx, q, data, kind, reference.answers, label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, RandomizedAgreement,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
}  // namespace owlqr

namespace owlqr {
namespace {

TEST(RewriterTest, IsolatedAnswerVariable) {
  // q(x, y) :- R(x, z): y is an isolated answer variable ranging over the
  // active domain (regression: Log used to build a goal of the wrong arity).
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("R", "x", "z");
  int y = q.AddVariable("y");
  q.MarkAnswerVariable(q.FindVariable("x"));
  q.MarkAnswerVariable(y);

  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  data.AddConceptAssertion(a_p, vocab.InternIndividual("c"));

  auto reference = ComputeCertainAnswers(*tbox, q, data);
  ASSERT_EQ(reference.answers.size(), 3u);  // (a, a), (a, b), (a, c).
  for (RewriterKind kind : kAllKinds) {
    CheckRewriter(&ctx, q, data, kind, reference.answers, "isolated-var");
  }
}

}  // namespace
}  // namespace owlqr
