#include <gtest/gtest.h>

#include "util/interner.h"
#include "util/strings.h"

namespace owlqr {
namespace {

TEST(InternerTest, AssignsDenseIdsInOrder) {
  Interner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0);
  EXPECT_EQ(interner.Intern("beta"), 1);
  EXPECT_EQ(interner.Intern("alpha"), 0);  // Idempotent.
  EXPECT_EQ(interner.size(), 2);
  EXPECT_EQ(interner.Name(1), "beta");
  EXPECT_EQ(interner.Find("gamma"), -1);
  EXPECT_FALSE(interner.Contains("gamma"));
  EXPECT_TRUE(interner.Contains("alpha"));
}

TEST(InternerTest, EmptyAndOddNames) {
  Interner interner;
  EXPECT_EQ(interner.Intern(""), 0);
  EXPECT_EQ(interner.Intern("A[P-]"), 1);
  EXPECT_EQ(interner.Intern("name with spaces"), 2);
  EXPECT_EQ(interner.Find("A[P-]"), 1);
}

TEST(InternerTest, NamesStableAcrossGrowth) {
  Interner interner;
  interner.Intern("first");
  const std::string& ref = interner.Name(0);
  for (int i = 0; i < 1000; ++i) {
    interner.Intern("n" + std::to_string(i));
  }
  EXPECT_EQ(ref, "first");  // References survive rehashing.
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, JoinAndStartsWith) {
  std::vector<int> xs = {1, 2, 3};
  EXPECT_EQ(Join(xs, ", "), "1, 2, 3");
  EXPECT_EQ(Join(std::vector<int>{}, ","), "");
  EXPECT_TRUE(StartsWith("goal: G", "goal:"));
  EXPECT_FALSE(StartsWith("go", "goal:"));
}

}  // namespace
}  // namespace owlqr
