// Corruption fuzzing for the store's on-disk decoders (DESIGN.md §14):
// hostile headers, lying length prefixes, format-version skew, zero-length
// and 4 GiB-claiming records, truncated META tables, out-of-range cells.
// Style of parser_fuzz_test.cc: the asserted property is that every input
// comes back as a Status (or a clean torn-tail report) — never a crash, an
// over-read, or a silently-accepted corrupt file.  Runs under the sanitize
// label so ASan/UBSan watch every byte.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ontology/vocabulary.h"
#include "store/format.h"
#include "store/log.h"
#include "store/segment.h"
#include "store/store.h"

namespace owlqr {
namespace store {
namespace {

// Deterministic 64-bit LCG — the fuzz corpus must reproduce bit-for-bit.
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 17;
  }
  uint8_t Byte() { return static_cast<uint8_t>(Next()); }
};

std::string RandomBytes(Lcg* rng, size_t n) {
  std::string out(n, '\0');
  for (char& c : out) c = static_cast<char>(rng->Byte());
  return out;
}

std::string HeaderFor(FileType type) {
  std::string out;
  AppendFileHeader(&out, type);
  return out;
}

// Scans a log image and reports the decoded-record count, asserting the
// call survived; -1 means the header itself was refused.
int ScanCount(const std::string& image) {
  std::vector<LogRecord> records;
  size_t valid_end = 0;
  size_t dropped = 0;
  Status status = ScanLog(reinterpret_cast<const uint8_t*>(image.data()),
                          image.size(), &records, &valid_end, &dropped);
  if (!status.ok()) {
    EXPECT_FALSE(status.message().empty());
    return -1;
  }
  EXPECT_LE(valid_end, image.size());
  EXPECT_EQ(valid_end + dropped, image.size());
  return static_cast<int>(records.size());
}

std::string EncodeValidRecord(uint64_t version) {
  LogRecord record;
  record.version = version;
  record.batch.concepts.push_back({"A", "ind" + std::to_string(version)});
  record.batch.roles.push_back({"R", "a", "b"});
  std::string out;
  EncodeLogRecord(record, &out);
  return out;
}

TEST(StoreFuzzTest, FileHeaderRejectsEveryMutation) {
  const std::string good = HeaderFor(FileType::kLog);
  ASSERT_EQ(good.size(), kFileHeaderBytes);
  EXPECT_TRUE(CheckFileHeader(reinterpret_cast<const uint8_t*>(good.data()),
                              good.size(), FileType::kLog, "fuzz")
                  .ok());

  // Too short, at every length.
  for (size_t n = 0; n < kFileHeaderBytes; ++n) {
    Status status =
        CheckFileHeader(reinterpret_cast<const uint8_t*>(good.data()), n,
                        FileType::kLog, "fuzz");
    EXPECT_FALSE(status.ok()) << "length " << n;
  }
  // Every single-byte mutation: magic, type tag, version and reserved bytes
  // are all load-bearing, so no flip may pass.
  for (size_t pos = 0; pos < kFileHeaderBytes; ++pos) {
    for (uint8_t flip : {0x01, 0x80, 0xFF}) {
      std::string bad = good;
      bad[pos] = static_cast<char>(bad[pos] ^ flip);
      Status status =
          CheckFileHeader(reinterpret_cast<const uint8_t*>(bad.data()),
                          bad.size(), FileType::kLog, "fuzz");
      EXPECT_FALSE(status.ok()) << "pos " << pos << " flip " << int(flip);
    }
  }
  // Type confusion: a column header offered as a log is refused.
  const std::string column = HeaderFor(FileType::kColumn);
  EXPECT_FALSE(CheckFileHeader(reinterpret_cast<const uint8_t*>(column.data()),
                               column.size(), FileType::kLog, "fuzz")
                   .ok());
}

TEST(StoreFuzzTest, ScanLogSurvivesLyingLengthPrefixes) {
  const std::string header = HeaderFor(FileType::kLog);
  const std::string valid = EncodeValidRecord(2);

  // A zero-length record, a below-minimum record, a 4 GiB claim and the
  // all-ones claim: each is the torn tail, keeping the records before it.
  for (uint32_t lie : {0u, static_cast<uint32_t>(kMinLogPayloadBytes) - 1,
                       static_cast<uint32_t>(kMaxLogPayloadBytes + 1),
                       0xFFFFFFFFu}) {
    std::string image = header + valid;
    PutU32(&image, lie);
    PutU32(&image, 0xDEADBEEFu);          // CRC of nothing in particular.
    image += std::string(64, '\x5A');     // Far less than the claim.
    EXPECT_EQ(ScanCount(image), 1) << "lie " << lie;
  }

  // A length that points exactly at EOF but whose CRC is wrong: dropped.
  {
    std::string image = header + valid;
    std::string payload(kMinLogPayloadBytes, '\x00');
    PutU32(&image, static_cast<uint32_t>(payload.size()));
    PutU32(&image, Crc32(payload.data(), payload.size()) ^ 1);
    image += payload;
    EXPECT_EQ(ScanCount(image), 1);
  }

  // Truncation at every byte of a two-record log: the count must only ever
  // step down at record boundaries, never crash in between.
  const std::string full = header + EncodeValidRecord(2) + EncodeValidRecord(3);
  for (size_t n = 0; n <= full.size(); ++n) {
    const int count = ScanCount(full.substr(0, n));
    if (n < kFileHeaderBytes) {
      EXPECT_EQ(count, -1) << "n " << n;
    } else {
      EXPECT_GE(count, 0) << "n " << n;
      EXPECT_LE(count, 2) << "n " << n;
    }
  }
}

TEST(StoreFuzzTest, ScanLogRefusesNonAscendingVersions) {
  const std::string header = HeaderFor(FileType::kLog);
  // 2 then 2: the duplicate ends the valid prefix (replaying it would
  // double-apply), as does 3 then 1.
  EXPECT_EQ(ScanCount(header + EncodeValidRecord(2) + EncodeValidRecord(2)),
            1);
  EXPECT_EQ(ScanCount(header + EncodeValidRecord(3) + EncodeValidRecord(1)),
            1);
  EXPECT_EQ(ScanCount(header + EncodeValidRecord(2) + EncodeValidRecord(3)),
            2);
}

TEST(StoreFuzzTest, ScanLogPayloadCountLiesNeverOverread) {
  const std::string header = HeaderFor(FileType::kLog);
  // Hand-build payloads whose declared fact counts exceed what the payload
  // holds; CRC is made VALID so the lie reaches the payload decoder.
  for (uint32_t n_concepts : {1u, 1000u, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    std::string payload;
    PutU64(&payload, 2);           // version
    PutU32(&payload, n_concepts);  // concepts it does not have
    PutU32(&payload, 0);           // roles
    std::string image = header;
    PutU32(&image, static_cast<uint32_t>(payload.size()));
    PutU32(&image, Crc32(payload.data(), payload.size()));
    image += payload;
    EXPECT_EQ(ScanCount(image), 0) << "n_concepts " << n_concepts;
  }
}

TEST(StoreFuzzTest, ScanLogNeverCrashesOnRandomBytes) {
  Lcg rng(0x5EEDF00Du);
  for (int i = 0; i < 2000; ++i) {
    const size_t n = rng.Next() % 300;
    const std::string junk = RandomBytes(&rng, n);
    ScanCount(junk);  // Asserts internally; outcome (-1 or >= 0) is free.
  }
  // And random bytes after a valid header: must be OK with 0 records (the
  // odds of the PRNG forging a CRC32 are ignorable and deterministic).
  const std::string header = HeaderFor(FileType::kLog);
  for (int i = 0; i < 2000; ++i) {
    const size_t n = rng.Next() % 300;
    const std::string image = header + RandomBytes(&rng, n);
    EXPECT_GE(ScanCount(image), 0);
  }
}

SegmentMeta MakeValidMeta() {
  SegmentMeta meta;
  meta.snapshot_version = 7;
  meta.tbox_fingerprint = 0x1234567890ABCDEFull;
  meta.concept_names = {"A", "B"};
  meta.predicate_names = {"R"};
  meta.individual_names = {"a", "b", "c"};
  meta.num_adom = 3;
  meta.adom_crc = 0xAAAA5555u;
  ColumnInfo concept_col;
  concept_col.role = false;
  concept_col.stored_id = 0;
  concept_col.arity = 1;
  concept_col.num_rows = 2;
  concept_col.crc = 0x11112222u;
  ColumnInfo role_col;
  role_col.role = true;
  role_col.stored_id = 0;
  role_col.arity = 2;
  role_col.num_rows = 1;
  role_col.crc = 0x33334444u;
  meta.columns = {concept_col, role_col};
  return meta;
}

Status DecodeMetaBytes(const std::string& bytes, SegmentMeta* out) {
  return DecodeMeta(reinterpret_cast<const uint8_t*>(bytes.data()),
                    bytes.size(), out);
}

TEST(StoreFuzzTest, DecodeMetaRoundTripsAndRefusesEveryTruncation) {
  const SegmentMeta meta = MakeValidMeta();
  std::string encoded;
  EncodeMeta(meta, &encoded);

  SegmentMeta decoded;
  ASSERT_TRUE(DecodeMetaBytes(encoded, &decoded).ok());
  EXPECT_EQ(decoded.snapshot_version, meta.snapshot_version);
  EXPECT_EQ(decoded.tbox_fingerprint, meta.tbox_fingerprint);
  EXPECT_EQ(decoded.concept_names, meta.concept_names);
  EXPECT_EQ(decoded.predicate_names, meta.predicate_names);
  EXPECT_EQ(decoded.individual_names, meta.individual_names);
  EXPECT_EQ(decoded.columns.size(), meta.columns.size());

  // Every proper prefix must be refused (the trailing CRC covers all of
  // it), as must trailing slack bytes.
  for (size_t n = 0; n < encoded.size(); ++n) {
    SegmentMeta out;
    EXPECT_FALSE(DecodeMetaBytes(encoded.substr(0, n), &out).ok())
        << "prefix " << n;
  }
  SegmentMeta out;
  EXPECT_FALSE(DecodeMetaBytes(encoded + "x", &out).ok());
}

TEST(StoreFuzzTest, DecodeMetaRefusesEveryBitFlip) {
  std::string encoded;
  EncodeMeta(MakeValidMeta(), &encoded);
  for (size_t pos = 0; pos < encoded.size(); ++pos) {
    std::string bad = encoded;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    SegmentMeta out;
    Status status = DecodeMetaBytes(bad, &out);
    EXPECT_FALSE(status.ok()) << "pos " << pos;
    EXPECT_FALSE(status.message().empty());
  }
}

TEST(StoreFuzzTest, DecodeMetaNeverCrashesOnRandomBytes) {
  Lcg rng(0xC0FFEEull);
  for (int i = 0; i < 2000; ++i) {
    const size_t n = rng.Next() % 400;
    const std::string junk = RandomBytes(&rng, n);
    SegmentMeta out;
    DecodeMetaBytes(junk, &out);  // Any Status; just must not crash.
  }
}

// ---- Hostile store DIRECTORIES through the full Open + Recover path ----

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "store_fuzz.XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// Opens + recovers a hostile directory; the property under test is that
// the result is a Status, never a crash.
Status RecoverDir(const std::string& dir) {
  StoreOptions options;
  options.dir = dir;
  std::shared_ptr<DurableStore> durable;
  Status status = DurableStore::Open(options, &durable);
  if (!status.ok()) return status;
  Vocabulary vocab;
  RecoveredState recovered;
  return durable->Recover(&vocab, /*tbox_fingerprint=*/1, 0, &recovered);
}

std::string EncodeCurrent(const std::string& segment_name) {
  std::string out;
  AppendFileHeader(&out, FileType::kCurrent);
  PutString(&out, segment_name);
  PutU32(&out, Crc32(segment_name.data(), segment_name.size()));
  return out;
}

TEST(StoreFuzzTest, RecoverRefusesHostileCurrentFiles) {
  Lcg rng(0xBADC0DEull);
  // Random CURRENT contents.
  for (int i = 0; i < 200; ++i) {
    const std::string dir = MakeTempDir();
    WriteRaw(dir + "/CURRENT", RandomBytes(&rng, rng.Next() % 128));
    EXPECT_FALSE(RecoverDir(dir).ok()) << "iter " << i;
  }
  // Structurally valid CURRENT files with hostile payloads.
  const std::string dir = MakeTempDir();
  // Name with a path separator: must be refused, not traversed.
  WriteRaw(dir + "/CURRENT", EncodeCurrent("../../etc"));
  EXPECT_FALSE(RecoverDir(dir).ok());
  // Pointer to a segment that does not exist.
  WriteRaw(dir + "/CURRENT", EncodeCurrent("seg-999"));
  EXPECT_FALSE(RecoverDir(dir).ok());
  // Valid name, corrupted name-CRC.
  std::string current = EncodeCurrent("seg-1");
  current.back() = static_cast<char>(current.back() ^ 1);
  WriteRaw(dir + "/CURRENT", current);
  EXPECT_FALSE(RecoverDir(dir).ok());
}

TEST(StoreFuzzTest, RecoverRefusesHostileSegments) {
  const SegmentMeta meta = MakeValidMeta();

  // META present but every other file missing.
  {
    const std::string dir = MakeTempDir();
    ASSERT_TRUE(MakeDir(dir + "/seg-7").ok());
    WriteRaw(dir + "/CURRENT", EncodeCurrent("seg-7"));
    std::string meta_file;
    AppendFileHeader(&meta_file, FileType::kSegmentMeta);
    EncodeMeta(meta, &meta_file);
    WriteRaw(dir + "/seg-7/META", meta_file);
    EXPECT_FALSE(RecoverDir(dir).ok());
  }

  // Column files exist but the sizes and cells lie.
  {
    const std::string dir = MakeTempDir();
    ASSERT_TRUE(MakeDir(dir + "/seg-7").ok());
    WriteRaw(dir + "/CURRENT", EncodeCurrent("seg-7"));

    // adom claims 3 cells; write 2 (size mismatch) with a matching CRC of
    // the short payload, so only the size check can catch it.
    std::string adom_cells;
    PutU32(&adom_cells, 0);
    PutU32(&adom_cells, 1);
    SegmentMeta lying = meta;
    lying.adom_crc = Crc32(adom_cells.data(), adom_cells.size());
    std::string adom_file;
    AppendFileHeader(&adom_file, FileType::kColumn);
    adom_file += adom_cells;
    WriteRaw(dir + "/seg-7/adom", adom_file);

    auto write_column = [&](const char* name, const std::string& cells,
                            uint32_t* crc_out) {
      *crc_out = Crc32(cells.data(), cells.size());
      std::string file;
      AppendFileHeader(&file, FileType::kColumn);
      file += cells;
      WriteRaw(dir + "/seg-7/" + name, file);
    };
    // c0: 2 rows arity 1, but one cell is OUT OF RANGE for the 3-entry
    // individual table — CRC-valid, so only the cell-range check stands
    // between this file and out-of-bounds indexing at load time.
    std::string c0_cells;
    PutU32(&c0_cells, 1);
    PutU32(&c0_cells, 0xFFFFFFF0u);
    write_column("c0", c0_cells, &lying.columns[0].crc);
    std::string r0_cells;
    PutU32(&r0_cells, 0);
    PutU32(&r0_cells, 1);
    write_column("r0", r0_cells, &lying.columns[1].crc);

    std::string meta_file;
    AppendFileHeader(&meta_file, FileType::kSegmentMeta);
    EncodeMeta(lying, &meta_file);
    WriteRaw(dir + "/seg-7/META", meta_file);
    EXPECT_FALSE(RecoverDir(dir).ok());
  }
}

TEST(StoreFuzzTest, RecoverNeverCrashesOnRandomFiles) {
  Lcg rng(0xFEEDFACEull);
  for (int i = 0; i < 100; ++i) {
    const std::string dir = MakeTempDir();
    ASSERT_TRUE(MakeDir(dir + "/seg-1").ok());
    WriteRaw(dir + "/CURRENT", EncodeCurrent("seg-1"));
    WriteRaw(dir + "/seg-1/META", RandomBytes(&rng, rng.Next() % 256));
    WriteRaw(dir + "/seg-1/adom", RandomBytes(&rng, rng.Next() % 64));
    WriteRaw(dir + "/LOG", RandomBytes(&rng, rng.Next() % 128));
    RecoverDir(dir);  // Any Status; must not crash or leak (ASan watches).
  }
}

}  // namespace
}  // namespace store
}  // namespace owlqr
