#include <gtest/gtest.h>

#include "chase/certain_answers.h"
#include "reductions/clique.h"
#include "reductions/hardest_logcfl.h"
#include "reductions/hitting_set.h"
#include "reductions/sat.h"

namespace owlqr {
namespace {

// --- Theorem 15: hitting set ------------------------------------------------

bool HittingSetOmqHolds(const Hypergraph& h, int k) {
  Vocabulary vocab;
  HittingSetOmq omq = MakeHittingSetOmq(&vocab, h, k);
  return IsCertainAnswer(*omq.tbox, omq.query, omq.data, {});
}

TEST(HittingSetReduction, PositiveInstances) {
  // Example from the paper: V = {1,2,3}, e1 = {1,3}, e2 = {2,3}, e3 = {1,2}.
  Hypergraph h{3, {{1, 3}, {2, 3}, {1, 2}}};
  ASSERT_TRUE(HasHittingSet(h, 2));
  EXPECT_TRUE(HittingSetOmqHolds(h, 2));
}

TEST(HittingSetReduction, NegativeInstances) {
  // A triangle of pairwise-disjoint edges cannot be hit by one vertex.
  Hypergraph h{3, {{1, 3}, {2, 3}, {1, 2}}};
  ASSERT_FALSE(HasHittingSet(h, 1));
  EXPECT_FALSE(HittingSetOmqHolds(h, 1));
}

TEST(HittingSetReduction, SingleVertexHits) {
  Hypergraph h{3, {{2}, {2, 3}}};
  ASSERT_TRUE(HasHittingSet(h, 1));
  EXPECT_TRUE(HittingSetOmqHolds(h, 1));
}

TEST(HittingSetReduction, RandomAgreement) {
  // Sweep all hypergraphs with 3 vertices and 2 fixed-shape edges.
  for (int mask1 = 1; mask1 < 8; ++mask1) {
    for (int mask2 = 1; mask2 < 8; ++mask2) {
      Hypergraph h;
      h.num_vertices = 3;
      for (int mask : {mask1, mask2}) {
        std::vector<int> edge;
        for (int v = 1; v <= 3; ++v) {
          if (mask & (1 << (v - 1))) edge.push_back(v);
        }
        h.edges.push_back(edge);
      }
      for (int k = 1; k <= 2; ++k) {
        EXPECT_EQ(HittingSetOmqHolds(h, k), HasHittingSet(h, k))
            << "masks " << mask1 << "," << mask2 << " k=" << k;
      }
    }
  }
}

// --- Theorem 16: partitioned clique ----------------------------------------

bool CliqueOmqHolds(const PartitionedGraph& g) {
  Vocabulary vocab;
  CliqueOmq omq = MakeCliqueOmq(&vocab, g);
  return IsCertainAnswer(*omq.tbox, omq.query, omq.data, {});
}

TEST(CliqueReduction, PaperExample) {
  // p = 3, V1 = {v1, v2}, V2 = {v3}, V3 = {v4, v5},
  // E = {{v1,v3}, {v3,v5}}: clique {v1?,...}: v1-v3 edge, v3-v5 edge, but
  // v1-v5 missing, so no partitioned clique.
  PartitionedGraph g;
  g.num_vertices = 5;
  g.num_partitions = 3;
  g.partition_of = {0, 1, 1, 2, 3, 3};
  g.edges = {{1, 3}, {3, 5}};
  ASSERT_FALSE(HasPartitionedClique(g));
  EXPECT_FALSE(CliqueOmqHolds(g));
  // Adding {v1, v5} completes the clique {v1, v3, v5}.
  g.edges.push_back({1, 5});
  ASSERT_TRUE(HasPartitionedClique(g));
  EXPECT_TRUE(CliqueOmqHolds(g));
}

TEST(CliqueReduction, TwoPartitions) {
  PartitionedGraph g;
  g.num_vertices = 3;
  g.num_partitions = 2;
  g.partition_of = {0, 1, 1, 2};
  g.edges = {{2, 3}};
  ASSERT_TRUE(HasPartitionedClique(g));
  EXPECT_TRUE(CliqueOmqHolds(g));

  PartitionedGraph g2 = g;
  g2.edges = {{1, 2}};  // Within V1: useless.
  ASSERT_FALSE(HasPartitionedClique(g2));
  EXPECT_FALSE(CliqueOmqHolds(g2));
}

// --- Theorem 17: SAT with the fixed ontology T-dagger -----------------------

bool SatOmqHolds(const Cnf& phi) {
  Vocabulary vocab;
  auto tbox = MakeTDagger(&vocab);
  ConjunctiveQuery query = MakeSatQuery(&vocab, *tbox, phi);
  DataInstance data = MakeSatData(&vocab);
  return IsCertainAnswer(*tbox, query, data, {});
}

TEST(SatReduction, PaperExample) {
  // phi = (p1 | p2) & !p1: satisfiable with p1 = 0, p2 = 1.
  Cnf phi{2, {{1, 2}, {-1}}};
  ASSERT_TRUE(IsSatisfiable(phi));
  EXPECT_TRUE(SatOmqHolds(phi));
}

TEST(SatReduction, Unsatisfiable) {
  Cnf phi{1, {{1}, {-1}}};
  ASSERT_FALSE(IsSatisfiable(phi));
  EXPECT_FALSE(SatOmqHolds(phi));
}

TEST(SatReduction, SweepTwoVariableFormulas) {
  // All CNFs over 2 variables with 2 clauses drawn from the 8 nonempty
  // clauses over {p1, p2}.
  std::vector<std::vector<int>> clause_pool = {
      {1}, {-1}, {2}, {-2}, {1, 2}, {1, -2}, {-1, 2}, {-1, -2}};
  for (size_t i = 0; i < clause_pool.size(); ++i) {
    for (size_t j = i; j < clause_pool.size(); ++j) {
      Cnf phi{2, {clause_pool[i], clause_pool[j]}};
      EXPECT_EQ(SatOmqHolds(phi), IsSatisfiable(phi))
          << "clauses " << i << "," << j;
    }
  }
}

// --- Theorem 20 / Lemma 26: q-bar over tree instances -----------------------

TEST(SatReduction, Lemma26MonotoneFunction) {
  Vocabulary vocab;
  auto tbox = MakeTDagger(&vocab);
  // phi with 2 variables and 4 clauses (power of two).
  Cnf phi{2, {{1}, {-1}, {2}, {-1, -2}}};
  ConjunctiveQuery query = MakeSatQueryBar(&vocab, *tbox, phi);
  for (unsigned mask = 0; mask < 16; ++mask) {
    std::vector<bool> alpha(4);
    for (int i = 0; i < 4; ++i) alpha[i] = (mask >> i) & 1;
    DataInstance data = MakeTreeInstance(&vocab, alpha);
    bool expected = MonotoneSatFunction(phi, alpha);
    bool actual = IsCertainAnswer(*tbox, query, data,
                                  {vocab.FindIndividual("a")});
    EXPECT_EQ(actual, expected) << "alpha mask " << mask;
  }
}

// --- Theorem 22: the hardest LOGCFL language --------------------------------

TEST(HardestLanguage, BaseLanguage) {
  EXPECT_TRUE(InBaseLanguage(""));
  EXPECT_TRUE(InBaseLanguage("ab"));
  EXPECT_TRUE(InBaseLanguage("acdb"));
  EXPECT_TRUE(InBaseLanguage("abcd"));
  EXPECT_FALSE(InBaseLanguage("ad"));
  EXPECT_FALSE(InBaseLanguage("ba"));
  EXPECT_FALSE(InBaseLanguage("a"));
}

TEST(HardestLanguage, BlockFormed) {
  EXPECT_TRUE(IsBlockFormed("[ab]"));
  EXPECT_TRUE(IsBlockFormed("[a#b][c]"));
  EXPECT_FALSE(IsBlockFormed("ab"));
  EXPECT_FALSE(IsBlockFormed("[]"));
  EXPECT_FALSE(IsBlockFormed("[a]["));
  EXPECT_FALSE(IsBlockFormed("[a]b[c]"));
  EXPECT_FALSE(IsBlockFormed("[[a]]"));
}

TEST(HardestLanguage, PaperExamples) {
  // (12) - (15) with a1 a2 b2 b1 spelled acdb.
  EXPECT_FALSE(InHardestLanguage("[ac#db]"));
  EXPECT_TRUE(InHardestLanguage("[ac#db][db]"));
  EXPECT_FALSE(InHardestLanguage("[ac#db][ab]"));
  EXPECT_TRUE(InHardestLanguage("[#ac#db][ab]"));
}

class HardestLanguageOmq : public ::testing::TestWithParam<const char*> {};

TEST_P(HardestLanguageOmq, OmqAgreesWithLanguage) {
  std::string word = GetParam();
  Vocabulary vocab;
  auto tbox = MakeTDoubleDagger(&vocab);
  ConjunctiveQuery query = MakeWordQuery(&vocab, word);
  DataInstance data = MakeWordData(&vocab);
  EXPECT_EQ(IsCertainAnswer(*tbox, query, data, {}),
            InHardestLanguage(word))
      << word;
}

INSTANTIATE_TEST_SUITE_P(
    Words, HardestLanguageOmq,
    ::testing::Values("[ab]", "[ba]", "[a#b]", "[ac#db]", "[ac#db][db]",
                      "[ac#db][ab]", "[#ac#db][ab]", "[#]", "[a][b]",
                      "[cd]", "[c][d]", "ab", "[ab"));

}  // namespace
}  // namespace owlqr
