// Cross-request answer memoization and in-flight coalescing
// (engine/answer_cache.h): cache hits must be byte-identical to fresh
// evaluation and cost no admission slot; partial / degraded / aborted
// results must never be memoized; eviction is LRU-first under the entry
// cap, the byte cap and shared-budget pressure; ApplyFacts invalidates
// stale versions; coalesced followers share one evaluation and a failed
// leader propagates its failure without poisoning the cache.  Part of the
// `sanitize` ctest label.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rewriters.h"
#include "engine/answer_cache.h"
#include "engine/engine.h"
#include "engine_test_peer.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

const char* const kWords[] = {"RS", "RSR", "RRSR"};
constexpr int kNumQueries = 3;

void ApplyBatchToInstance(DataInstance* data, const FactBatch& batch) {
  for (const FactBatch::ConceptFact& fact : batch.concepts) {
    data->AddConceptAssertion(fact.concept_id, fact.individual);
  }
  for (const FactBatch::RoleFact& fact : batch.roles) {
    data->AddRoleAssertion(fact.role_id, fact.subject, fact.object);
  }
}

class EngineAnswerCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tbox_ = MakeExample11TBox(&vocab_);
    base_ = std::make_unique<DataInstance>(
        GenerateDataset(&vocab_, *tbox_, DatasetConfig{"c", 40, 0.1, 0.12, 7}));
    for (const char* word : kWords) {
      queries_.push_back(SequenceQuery(&vocab_, word));
    }
    RewritingContext ctx(*tbox_);
    RewriteOptions options;
    options.arbitrary_instances = true;
    for (const ConjunctiveQuery& q : queries_) {
      RewriteResult rewritten =
          RewriteOmqOrError(&ctx, q, RewriterKind::kTw, options);
      ASSERT_TRUE(rewritten.ok()) << rewritten.status.ToString();
      programs_.push_back(std::move(rewritten.program));
    }
    prepare_options_.auto_kind = false;
    prepare_options_.kind = RewriterKind::kTw;
  }

  static EngineOptions CachedOptions() {
    EngineOptions options;
    options.answer_cache_capacity = 16;
    return options;
  }

  // A fresh-chain batch whose facts change every kWords query's answers.
  FactBatch FreshBatch(int tag) {
    int r = vocab_.InternPredicate("R");
    int s = vocab_.InternPredicate("S");
    int label = tbox_->ExistsConcept(RoleOf(vocab_.InternPredicate("P")));
    std::string prefix = "ac" + std::to_string(tag) + "_";
    auto ind = [&](int i) {
      return vocab_.InternIndividual(prefix + std::to_string(i));
    };
    FactBatch batch;
    batch.roles.push_back({r, ind(0), ind(1)});
    batch.roles.push_back({s, ind(1), ind(2)});
    batch.roles.push_back({r, ind(2), ind(3)});
    batch.roles.push_back({r, ind(3), ind(4)});
    batch.concepts.push_back({label, ind(4)});
    return batch;
  }

  // The fresh-evaluation oracle over a mirror instance.
  std::vector<std::vector<int>> Oracle(const DataInstance& grown, int q) {
    Evaluator eval(programs_[q], grown);
    ExecuteResult result = eval.Run(ExecuteRequest{});
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    return result.answers;
  }

  Vocabulary vocab_;
  std::unique_ptr<TBox> tbox_;
  std::unique_ptr<DataInstance> base_;
  std::vector<ConjunctiveQuery> queries_;
  std::vector<NdlProgram> programs_;
  PrepareOptions prepare_options_;
};

// A fabricated complete result of a given payload size, for unit-testing
// the cache container without an engine.
std::shared_ptr<const ExecuteResult> FakeResult(uint64_t version, int rows) {
  auto result = std::make_shared<ExecuteResult>();
  result->snapshot_version = version;
  for (int i = 0; i < rows; ++i) result->answers.push_back({i, i + 1});
  return result;
}

TEST(AnswerCacheUnitTest, LruEvictionAndStats) {
  AnswerCache cache(/*capacity=*/2, /*max_bytes=*/0, /*budget=*/nullptr);
  ASSERT_TRUE(cache.enabled());
  cache.Put("a", 1, FakeResult(1, 4));
  cache.Put("b", 1, FakeResult(1, 4));
  EXPECT_EQ(cache.size(), 2u);
  // Touch "a" so "b" is the LRU entry when "c" pushes past capacity.
  EXPECT_NE(cache.Get("a"), nullptr);
  cache.Put("c", 1, FakeResult(1, 4));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 1);
}

TEST(AnswerCacheUnitTest, ByteCapKeepsAtLeastTheFreshEntry) {
  const size_t one = FakeResult(1, 64)->MemoryBytes();
  AnswerCache cache(/*capacity=*/16, /*max_bytes=*/one + one / 2,
                    /*budget=*/nullptr);
  cache.Put("a", 1, FakeResult(1, 64));
  cache.Put("b", 1, FakeResult(1, 64));  // Two don't fit: "a" is shed.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("b"), nullptr);
  EXPECT_LE(cache.bytes(), one + one / 2);
  // An entry larger than the whole cap still resides alone (the cap sheds
  // down to one entry, never to zero — a cache that can't hold the result
  // it just computed would thrash forever).
  cache.Put("big", 1, FakeResult(1, 4096));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Get("big"), nullptr);
}

TEST(AnswerCacheUnitTest, BudgetChargedAndShedUnderPressure) {
  const size_t one = FakeResult(1, 32)->MemoryBytes();
  MemoryBudget budget(/*limit_bytes=*/3 * one + one / 2);
  AnswerCache cache(/*capacity=*/16, /*max_bytes=*/0, &budget);
  cache.Put("a", 1, FakeResult(1, 32));
  cache.Put("b", 1, FakeResult(1, 32));
  EXPECT_EQ(budget.used(), cache.bytes());
  // An outside charge (a live execution's arenas) pushes the budget over
  // its limit: the next publish sheds LRU-first until under, keeping the
  // entry just published.
  budget.Charge(2 * one);
  cache.Put("c", 1, FakeResult(1, 32));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Get("c"), nullptr);
  budget.Release(2 * one);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(AnswerCacheUnitTest, InvalidateBelowDropsOnlyStaleVersions) {
  MemoryBudget budget;
  AnswerCache cache(/*capacity=*/16, /*max_bytes=*/0, &budget);
  cache.Put("v1", 1, FakeResult(1, 8));
  cache.Put("v2", 2, FakeResult(2, 8));
  cache.Put("v3", 3, FakeResult(3, 8));
  cache.InvalidateBelow(3);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("v1"), nullptr);
  EXPECT_EQ(cache.Get("v2"), nullptr);
  EXPECT_NE(cache.Get("v3"), nullptr);
  EXPECT_EQ(cache.stats().invalidated, 2);
  EXPECT_EQ(budget.used(), cache.bytes());
}

TEST(AnswerCacheUnitTest, KeySeparatesVersionsAndLimits) {
  EvaluatorLimits unlimited;
  EvaluatorLimits capped;
  capped.max_generated_tuples = 100;
  EvaluatorLimits deadline;
  deadline.deadline_ms = 50;
  const std::string base = AnswerCacheKey("plan", 1, unlimited);
  EXPECT_NE(base, AnswerCacheKey("plan", 2, unlimited));
  EXPECT_NE(base, AnswerCacheKey("plan", 1, capped));
  EXPECT_NE(base, AnswerCacheKey("plan", 1, deadline));
  EXPECT_NE(base, AnswerCacheKey("nalp", 1, unlimited));
  EXPECT_EQ(base, AnswerCacheKey("plan", 1, EvaluatorLimits{}));
}

TEST(InFlightTableUnitTest, OneLeaderManyFollowersPerKey) {
  InFlightTable table;
  InFlightTable::Ticket leader = table.JoinOrLead("k");
  ASSERT_TRUE(leader.leader);
  InFlightTable::Ticket f1 = table.JoinOrLead("k");
  InFlightTable::Ticket f2 = table.JoinOrLead("k");
  EXPECT_FALSE(f1.leader);
  EXPECT_FALSE(f2.leader);
  EXPECT_EQ(f1.flight, leader.flight);
  EXPECT_EQ(table.size(), 1u);
  // A different key leads its own flight.
  InFlightTable::Ticket other = table.JoinOrLead("k2");
  EXPECT_TRUE(other.leader);

  table.Finish("k", leader.flight, FakeResult(1, 2));
  EXPECT_EQ(f1.flight->future.get()->snapshot_version, 1u);
  EXPECT_EQ(f2.flight->future.get()->snapshot_version, 1u);
  // The key is free again: the next request leads a fresh execution, and
  // retiring the old flight twice can't erase the successor.
  InFlightTable::Ticket next = table.JoinOrLead("k");
  EXPECT_TRUE(next.leader);
  EXPECT_NE(next.flight, leader.flight);
  table.Finish("k", next.flight, FakeResult(2, 2));
  table.Finish("k2", other.flight, FakeResult(1, 0));
  EXPECT_EQ(table.size(), 0u);
}

TEST_F(EngineAnswerCacheTest, HitIsByteIdenticalAndTakesNoSlot) {
  Engine engine(*tbox_, *base_, nullptr, CachedOptions());
  PrepareResult prepared = engine.Prepare(queries_[1], prepare_options_);
  ASSERT_TRUE(prepared.ok()) << prepared.status.ToString();

  ExecuteResult fresh = engine.Execute(*prepared.query);
  ASSERT_TRUE(fresh.status.ok()) << fresh.status.ToString();
  EXPECT_FALSE(fresh.cached);
  EXPECT_FALSE(fresh.answers.empty());
  EXPECT_EQ(engine.answer_cache_size(), 1u);
  const long admitted_before = engine.governor_counters().admitted;

  ExecuteResult hit = engine.Execute(*prepared.query);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.answers, fresh.answers);
  EXPECT_EQ(hit.snapshot_version, fresh.snapshot_version);
  EXPECT_EQ(hit.stats.goal_tuples, fresh.stats.goal_tuples);
  // Served without admission or evaluation.
  EXPECT_EQ(engine.governor_counters().admitted, admitted_before);
  EXPECT_EQ(engine.governor_counters().answer_cache_hits, 1);
  EXPECT_EQ(engine.answer_cache_stats().hits, 1);

  // Cached copies hold the only surviving budget charges; clearing them
  // accounts the engine back to zero.
  engine.ClearAnswerCache();
  EXPECT_EQ(engine.answer_cache_size(), 0u);
  EXPECT_EQ(engine.governor_counters().memory_used, 0u);
}

TEST_F(EngineAnswerCacheTest, LimitsSignatureKeysSeparateEntries) {
  Engine engine(*tbox_, *base_, nullptr, CachedOptions());
  PrepareResult prepared = engine.Prepare(queries_[0], prepare_options_);
  ASSERT_TRUE(prepared.ok());

  ExecuteResult unlimited = engine.Execute(*prepared.query);
  ASSERT_TRUE(unlimited.status.ok());
  // A generous limit the run never reaches still yields a complete (and
  // cacheable) result — under a DIFFERENT key, so it misses and evaluates.
  ExecuteRequest roomy;
  roomy.limits.max_generated_tuples = 1'000'000;
  ExecuteResult limited = engine.Execute(*prepared.query, roomy);
  ASSERT_TRUE(limited.status.ok());
  EXPECT_FALSE(limited.partial);
  EXPECT_FALSE(limited.cached);
  EXPECT_EQ(limited.answers, unlimited.answers);
  EXPECT_EQ(engine.answer_cache_size(), 2u);
  // Each signature now hits its own entry.
  EXPECT_TRUE(engine.Execute(*prepared.query).cached);
  EXPECT_TRUE(engine.Execute(*prepared.query, roomy).cached);
}

TEST_F(EngineAnswerCacheTest, PartialDegradedAndAbortedRunsAreNeverCached) {
  // Truncated: a tuple limit of 1 forces partial=true.
  {
    Engine engine(*tbox_, *base_, nullptr, CachedOptions());
    PrepareResult prepared = engine.Prepare(queries_[2], prepare_options_);
    ASSERT_TRUE(prepared.ok());
    ExecuteRequest request;
    request.limits.max_generated_tuples = 1;
    ExecuteResult truncated = engine.Execute(*prepared.query, request);
    EXPECT_TRUE(truncated.partial);
    EXPECT_EQ(engine.answer_cache_size(), 0u);
    // The same truncated request again: still a miss, still evaluated.
    ExecuteResult again = engine.Execute(*prepared.query, request);
    EXPECT_FALSE(again.cached);
    EXPECT_EQ(engine.answer_cache_stats().insertions, 0);
  }
  // Cancelled: pre-fired token aborts the run; nothing is published.
  {
    Engine engine(*tbox_, *base_, nullptr, CachedOptions());
    PrepareResult prepared = engine.Prepare(queries_[2], prepare_options_);
    ASSERT_TRUE(prepared.ok());
    auto cancel = std::make_shared<CancelToken>();
    cancel->Cancel();
    ExecuteRequest request;
    request.cancel = cancel;
    ExecuteResult cancelled = engine.Execute(*prepared.query, request);
    EXPECT_EQ(cancelled.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(engine.answer_cache_size(), 0u);
  }
  // Degraded: a memory abort retried under a tightened tuple limit is
  // surfaced degraded+partial and must not be memoized either.  Two
  // R-layers through one middle node (governor_test's LayeredGraph): the
  // RR chain yields m^2 answers, far past the 1 MB budget.
  {
    DataInstance layered(&vocab_);
    int r = vocab_.InternPredicate("R");
    int mid = layered.AddIndividual("mid");
    for (int i = 0; i < 800; ++i) {
      layered.AddRoleAssertion(
          r, layered.AddIndividual("a" + std::to_string(i)), mid);
      layered.AddRoleAssertion(
          r, mid, layered.AddIndividual("c" + std::to_string(i)));
    }
    EngineOptions options = CachedOptions();
    options.governor.max_memory_bytes = 1024 * 1024;
    options.governor.degraded_max_generated_tuples = 50;
    Engine engine(*tbox_, layered, nullptr, options);
    ConjunctiveQuery chain = SequenceQuery(&vocab_, "RR");
    PrepareResult prepared = engine.Prepare(chain, prepare_options_);
    ASSERT_TRUE(prepared.ok());
    ExecuteResult degraded = engine.Execute(*prepared.query);
    ASSERT_TRUE(degraded.degraded) << degraded.status.ToString();
    EXPECT_TRUE(degraded.partial);
    EXPECT_EQ(engine.answer_cache_size(), 0u);
    EXPECT_EQ(engine.answer_cache_stats().insertions, 0);
  }
}

TEST_F(EngineAnswerCacheTest, ApplyFactsInvalidatesStaleEntries) {
  Engine engine(*tbox_, *base_, nullptr, CachedOptions());
  std::vector<std::shared_ptr<const PreparedQuery>> prepared;
  for (const ConjunctiveQuery& q : queries_) {
    PrepareResult p = engine.Prepare(q, prepare_options_);
    ASSERT_TRUE(p.ok());
    prepared.push_back(p.query);
  }
  for (int q = 0; q < kNumQueries; ++q) {
    ASSERT_TRUE(engine.Execute(*prepared[q]).status.ok());
  }
  EXPECT_EQ(engine.answer_cache_size(), 3u);

  // A version bump sweeps every v1 entry in one pass — none could ever hit
  // again — and releases their budget charges.
  ASSERT_TRUE(engine.ApplyFactsOrError(FreshBatch(0)).ok());
  EXPECT_EQ(engine.answer_cache_size(), 0u);
  EXPECT_EQ(engine.answer_cache_stats().invalidated, 3);
  EXPECT_EQ(engine.governor_counters().memory_used, 0u);

  // A no-op batch (same facts again) keeps the version and the entries.
  ASSERT_TRUE(engine.Execute(*prepared[0]).status.ok());
  EXPECT_EQ(engine.answer_cache_size(), 1u);
  ASSERT_TRUE(engine.ApplyFactsOrError(FreshBatch(0)).ok());
  EXPECT_EQ(engine.answer_cache_size(), 1u);
}

// Interleaved updates and executions, differential against a fresh
// evaluator: every served answer set — cached or freshly evaluated — must
// be byte-identical to a from-scratch run at the version it reports.
TEST_F(EngineAnswerCacheTest, RandomizedDifferentialCachedVsFresh) {
  EngineOptions options = CachedOptions();
  options.answer_cache_capacity = 4;  // Small: hits, misses AND evictions.
  Engine engine(*tbox_, *base_, nullptr, options);
  std::vector<std::shared_ptr<const PreparedQuery>> prepared;
  for (const ConjunctiveQuery& q : queries_) {
    PrepareResult p = engine.Prepare(q, prepare_options_);
    ASSERT_TRUE(p.ok());
    prepared.push_back(p.query);
  }

  DataInstance grown = *base_;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    if (round % 2 == 1) {
      FactBatch batch = FreshBatch(round);
      ASSERT_TRUE(engine.ApplyFactsOrError(batch).ok());
      ApplyBatchToInstance(&grown, batch);
    }
    for (int rep = 0; rep < 2; ++rep) {
      for (int q = 0; q < kNumQueries; ++q) {
        ExecuteResult result = engine.Execute(*prepared[q]);
        ASSERT_TRUE(result.status.ok()) << result.status.ToString();
        EXPECT_FALSE(result.partial);
        EXPECT_EQ(result.snapshot_version, engine.snapshot_version());
        EXPECT_EQ(result.answers, Oracle(grown, q))
            << "round " << round << " rep " << rep << " query " << kWords[q]
            << (result.cached ? " (cached)" : " (fresh)");
      }
    }
  }
  AnswerCache::Stats stats = engine.answer_cache_stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.insertions, 0);
  engine.ClearAnswerCache();
  EXPECT_EQ(engine.governor_counters().memory_used, 0u);
}

// Identical concurrent requests share one evaluation: every request is
// either admitted (a leader / solo run), a cache hit, or a coalesced
// follower, and all of them return the same answers.  Overlap is forced
// deterministically, not left to scheduling: a cancellable run occupies
// the engine's only admission slot, so the leader parks in the admission
// queue with its flight already registered, and every follower launched
// while it is parked joins that flight.  Releasing the holder then lets
// the leader run to a clean completion that all followers share.
TEST_F(EngineAnswerCacheTest, CoalescedFollowersShareOneEvaluation) {
  // The slot holder needs a run that lasts until cancelled: the dense
  // R-clique's RR chain join (n * (n-1)^2 emissions) runs for minutes at
  // n = 600 unless the cancel token stops it.
  DataInstance dense(&vocab_);
  {
    int r = vocab_.InternPredicate("R");
    int s = vocab_.InternPredicate("S");
    std::vector<int> inds;
    for (int i = 0; i < 600; ++i) {
      inds.push_back(dense.AddIndividual("v" + std::to_string(i)));
    }
    for (size_t i = 0; i < inds.size(); ++i) {
      for (size_t j = 0; j < inds.size(); ++j) {
        if (i != j) dense.AddRoleAssertion(r, inds[i], inds[j]);
      }
    }
    // A few S edges give the leader's cheap RS query non-empty answers.
    for (int i = 0; i < 3; ++i) {
      dense.AddRoleAssertion(s, inds[i], inds[i + 1]);
    }
  }
  EngineOptions options;  // Answer cache OFF: isolate coalescing.
  options.governor.max_concurrent = 1;
  options.governor.max_queue = 16;
  options.governor.queue_timeout_ms = 30'000;  // Parked, never shed.
  Engine engine(*tbox_, dense, nullptr, options);
  ConjunctiveQuery chain = SequenceQuery(&vocab_, "RR");
  PrepareResult holder_prepared = engine.Prepare(chain, prepare_options_);
  ASSERT_TRUE(holder_prepared.ok()) << holder_prepared.status.ToString();
  PrepareResult prepared = engine.Prepare(queries_[0], prepare_options_);
  ASSERT_TRUE(prepared.ok()) << prepared.status.ToString();
  const ExecuteResult seed = engine.Execute(*prepared.query);
  ASSERT_TRUE(seed.status.ok()) << seed.status.ToString();
  const std::vector<std::vector<int>>& expected = seed.answers;
  ASSERT_FALSE(expected.empty());

  // Occupy the only slot with a cancellable run (cancel tokens never
  // coalesce, so it owns the slot without touching the in-flight table).
  auto cancel = std::make_shared<CancelToken>();
  std::thread holder([&] {
    ExecuteRequest request;
    request.cancel = cancel;
    ExecuteResult result = engine.Execute(*holder_prepared.query, request);
    EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  });
  while (engine.governor_counters().admitted < 2) std::this_thread::yield();

  // The leader registers its flight, then parks in the admission queue
  // until the holder releases the slot.
  std::atomic<int> failures{0};
  std::atomic<int> coalesced_seen{0};
  std::thread leader_thread([&] {
    ExecuteResult result = engine.Execute(*prepared.query);
    if (!result.status.ok() || result.answers != expected) {
      failures.fetch_add(1);
    }
    if (result.coalesced) coalesced_seen.fetch_add(1);
  });
  while (engine.governor_counters().queued < 1) std::this_thread::yield();
  ASSERT_EQ(EngineTestPeer::InFlightSize(engine), 1u);

  // Followers launched while the leader is parked join its flight.  The
  // entered counter plus a grace sleep lets each one reach JoinOrLead
  // before the holder is cancelled.
  constexpr int kFollowers = 6;
  std::atomic<int> entered{0};
  std::vector<std::thread> followers;
  for (int t = 0; t < kFollowers; ++t) {
    followers.emplace_back([&] {
      entered.fetch_add(1);
      ExecuteResult result = engine.Execute(*prepared.query);
      if (!result.status.ok() || result.answers != expected) {
        failures.fetch_add(1);
      }
      if (result.coalesced) coalesced_seen.fetch_add(1);
    });
  }
  while (entered.load() < kFollowers) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cancel->Cancel();
  holder.join();
  leader_thread.join();
  for (std::thread& thread : followers) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(coalesced_seen.load(), 0);
  QueryGovernor::Counters counters = engine.governor_counters();
  EXPECT_EQ(counters.coalesced, coalesced_seen.load());
  // Every request is accounted exactly once: it either took a slot or
  // followed a leader — never both, never neither.  Total requests: the
  // expected-seeding run, the holder, the leader and kFollowers.
  EXPECT_EQ(counters.admitted + counters.coalesced, 3 + kFollowers);
  EXPECT_EQ(counters.rejected(), 0);
  EXPECT_EQ(EngineTestPeer::InFlightSize(engine), 0u);
  EXPECT_EQ(counters.memory_used, 0u);
}

// A leader that is shed propagates its failure to the followers parked on
// it — they surface the same kRejected, marked coalesced — and publishes
// nothing: the next identical request evaluates fresh and gets answers.
TEST_F(EngineAnswerCacheTest, FailedLeaderPropagatesWithoutPoisoningCache) {
  // Dense n-clique (same shape as governor_test's DenseData): the RR chain
  // join runs n * (n-1)^2 emissions — hundreds of millions at n = 600 —
  // while the cancel token is the only thing that ends it.  It occupies
  // the single slot for far longer than the 150 ms queue timeout below.
  DataInstance dense(&vocab_);
  {
    int r = vocab_.InternPredicate("R");
    std::vector<int> inds;
    for (int i = 0; i < 600; ++i) {
      inds.push_back(dense.AddIndividual("v" + std::to_string(i)));
    }
    for (size_t i = 0; i < inds.size(); ++i) {
      for (size_t j = 0; j < inds.size(); ++j) {
        if (i != j) dense.AddRoleAssertion(r, inds[i], inds[j]);
      }
    }
  }
  EngineOptions options = CachedOptions();
  options.governor.max_concurrent = 1;
  options.governor.max_queue = 16;
  options.governor.queue_timeout_ms = 150;
  Engine engine(*tbox_, dense, nullptr, options);
  ConjunctiveQuery chain = SequenceQuery(&vocab_, "RR");
  PrepareResult prepared = engine.Prepare(chain, prepare_options_);
  ASSERT_TRUE(prepared.ok()) << prepared.status.ToString();

  // Occupy the only slot with a cancellable run (cancel tokens never
  // coalesce, so it owns the slot without touching the in-flight table).
  auto cancel = std::make_shared<CancelToken>();
  std::thread holder([&] {
    ExecuteRequest request;
    request.cancel = cancel;
    ExecuteResult result = engine.Execute(*prepared.query, request);
    EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  });
  while (engine.governor_counters().admitted < 1) std::this_thread::yield();

  // The leader (same plan, no cancel token) registers its flight, then
  // parks in the admission queue until the 150 ms timeout sheds it.
  std::atomic<int> leader_rejected{0};
  std::thread leader_thread([&] {
    ExecuteResult result = engine.Execute(*prepared.query);
    if (result.status.code() == StatusCode::kRejected && !result.coalesced) {
      leader_rejected.fetch_add(1);
    }
  });
  // Once the leader is queued its flight is registered, and it stays in
  // flight for the full queue timeout: followers launched now join it.
  while (engine.governor_counters().queued < 1) std::this_thread::yield();
  ASSERT_EQ(EngineTestPeer::InFlightSize(engine), 1u);
  std::atomic<int> followers_rejected{0};
  std::vector<std::thread> followers;
  for (int t = 0; t < 2; ++t) {
    followers.emplace_back([&] {
      ExecuteResult result = engine.Execute(*prepared.query);
      if (result.status.code() == StatusCode::kRejected &&
          result.coalesced) {
        followers_rejected.fetch_add(1);
      }
    });
  }
  leader_thread.join();
  for (std::thread& thread : followers) thread.join();
  cancel->Cancel();
  holder.join();

  EXPECT_EQ(leader_rejected.load(), 1);
  EXPECT_EQ(followers_rejected.load(), 2);
  EXPECT_EQ(engine.governor_counters().coalesced, 2);
  // The shed run published nothing and retired its flight: the failure
  // reached exactly the followers parked on it, never the cache.  (That a
  // later identical request evaluates fresh and memoizes is covered by
  // HitIsByteIdenticalAndTakesNoSlot.)
  EXPECT_EQ(engine.answer_cache_size(), 0u);
  EXPECT_EQ(engine.answer_cache_stats().insertions, 0);
  EXPECT_EQ(EngineTestPeer::InFlightSize(engine), 0u);
  EXPECT_EQ(engine.governor_counters().memory_used, 0u);
}

}  // namespace
}  // namespace owlqr
