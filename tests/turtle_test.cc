#include <gtest/gtest.h>

#include "syntax/turtle.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

TEST(TurtleTest, BasicTriples) {
  Vocabulary vocab;
  DataInstance data(&vocab);
  std::string error;
  ASSERT_TRUE(ParseTurtle(R"(
      @prefix : <http://example.org/> .
      # a comment
      :ann a :Professor .
      :ann :teaches :algebra .
      <http://example.org/bob> a :Professor ;
          :teaches :logic , :sets .
  )",
                          &data, &error))
      << error;
  EXPECT_EQ(data.NumAtoms(), 5);
  int professor = vocab.FindConcept("Professor");
  ASSERT_GE(professor, 0);
  EXPECT_EQ(data.ConceptMembers(professor).size(), 2u);
  int teaches = vocab.FindPredicate("teaches");
  EXPECT_EQ(data.RolePairs(teaches).size(), 3u);
  EXPECT_TRUE(data.HasRoleAssertion(teaches, vocab.FindIndividual("bob"),
                                    vocab.FindIndividual("sets")));
}

TEST(TurtleTest, Errors) {
  Vocabulary vocab;
  DataInstance data(&vocab);
  std::string error;
  EXPECT_FALSE(ParseTurtle(":a :b \"literal\" .", &data, &error));
  error.clear();
  EXPECT_FALSE(ParseTurtle(":a .", &data, &error));
  error.clear();
  EXPECT_FALSE(ParseTurtle(":a :b :c ,", &data, &error));
  error.clear();
  EXPECT_FALSE(ParseTurtle("<http://unterminated", &data, &error));
}

TEST(TurtleTest, RoundTrip) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  DatasetConfig config{"rt", 40, 0.1, 0.2, 7};
  DataInstance data = GenerateDataset(&vocab, *tbox, config);

  std::string ttl = WriteTurtle(data);
  DataInstance parsed(&vocab);
  std::string error;
  ASSERT_TRUE(ParseTurtle(ttl, &parsed, &error)) << error;
  EXPECT_EQ(parsed.NumAtoms(), data.NumAtoms());
  EXPECT_EQ(parsed.num_individuals(), data.num_individuals());
  // Spot-check a concrete edge.
  int r = vocab.FindPredicate("R");
  ASSERT_FALSE(data.RolePairs(r).empty());
  auto [s, o] = data.RolePairs(r)[0];
  EXPECT_TRUE(parsed.HasRoleAssertion(r, s, o));
}

TEST(TurtleTest, BracketedConceptNamesSurvive) {
  // The normal-form concepts A[P], A[P-] appear in generated datasets.
  Vocabulary vocab;
  DataInstance data(&vocab);
  data.AddConceptAssertion(vocab.InternConcept("A[P-]"),
                           vocab.InternIndividual("v0"));
  std::string ttl = WriteTurtle(data);
  DataInstance parsed(&vocab);
  std::string error;
  ASSERT_TRUE(ParseTurtle(ttl, &parsed, &error)) << error;
  EXPECT_TRUE(parsed.HasConceptAssertion(vocab.FindConcept("A[P-]"),
                                         vocab.FindIndividual("v0")));
}

TEST(TurtleTest, FuzzNoCrash) {
  // Parser robustness: arbitrary garbage must fail cleanly, never crash.
  const char* inputs[] = {
      "",      ".",       ";;;",        ":a",        ":a :b",
      "a a a", ":x . :y", "@prefix",    "<>",        ": : : .",
      "####",  ":a a .",  ":a :b :c ;", ":a :b :c ,"};
  for (const char* input : inputs) {
    Vocabulary vocab;
    DataInstance data(&vocab);
    std::string error;
    ParseTurtle(input, &data, &error);  // Outcome irrelevant; no crash.
  }
}

}  // namespace
}  // namespace owlqr
