// Failure-injection tests: misusing the API must abort with a clear check
// message rather than silently producing wrong rewritings.

#include <gtest/gtest.h>

#include "core/rewriters.h"
#include "ndl/linear_evaluator.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

using ApiMisuseDeathTest = ::testing::Test;

TEST(ApiMisuseDeathTest, RewritersRequireNormalizedTBox) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  tbox.AddExistsRhs("A", "P");
  // Normalize() deliberately not called.
  EXPECT_DEATH({ RewritingContext ctx(tbox); }, "normalized");
}

TEST(ApiMisuseDeathTest, LinRejectsCyclicQueries) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("R", "x", "y");
  q.AddBinary("R", "y", "z");
  q.AddBinary("R", "z", "x");
  EXPECT_DEATH(RewriteOmq(&ctx, q, RewriterKind::kLin), "tree-shaped");
  EXPECT_DEATH(RewriteOmq(&ctx, q, RewriterKind::kTw), "tree-shaped");
}

TEST(ApiMisuseDeathTest, LinAndLogRequireFiniteDepth) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  RoleId p = RoleOf(vocab.InternPredicate("P"));
  tbox.AddExistsRhs("A", "P");
  tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(p)),
                           BasicConcept::Exists(p));
  tbox.Normalize();
  RewritingContext ctx(tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("P", "x", "y");
  q.MarkAnswerVariable(q.FindVariable("x"));
  EXPECT_DEATH(RewriteOmq(&ctx, q, RewriterKind::kLin), "finite-depth");
  EXPECT_DEATH(RewriteOmq(&ctx, q, RewriterKind::kLog), "finite-depth");
  // Tw is fine on infinite-depth ontologies.
  NdlProgram tw = RewriteOmq(&ctx, q, RewriterKind::kTw);
  EXPECT_GT(tw.num_clauses(), 0);
}

TEST(ApiMisuseDeathTest, LinearEvaluatorRejectsNonLinearPrograms) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSR");
  NdlProgram log_program = RewriteOmq(&ctx, q, RewriterKind::kLog);
  DataInstance data(&vocab);
  if (!log_program.IsLinear()) {
    EXPECT_DEATH(LinearReachabilityEvaluator(log_program, data), "linear");
  }
}

TEST(ApiMisuseDeathTest, ClauseArityChecked) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};  // Arity mismatch.
  EXPECT_DEATH(program.AddClause(std::move(c)), "");
}

}  // namespace
}  // namespace owlqr
