// Failure-injection tests: misusing the API must fail loudly — invariant
// violations abort with a clear check message, while data-dependent shape
// errors come back as a Status (never an abort) through RewriteOmqOrError.

#include <gtest/gtest.h>

#include <utility>

#include "core/rewriters.h"
#include "ndl/linear_evaluator.h"
#include "util/logging.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace {

using ApiMisuseDeathTest = ::testing::Test;

TEST(ApiMisuseDeathTest, RewritersRequireNormalizedTBox) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  tbox.AddExistsRhs("A", "P");
  // Normalize() deliberately not called.
  EXPECT_DEATH({ RewritingContext ctx(tbox); }, "normalized");
}

TEST(RewriteStatusTest, LinRejectsCyclicQueries) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("R", "x", "y");
  q.AddBinary("R", "y", "z");
  q.AddBinary("R", "z", "x");
  for (RewriterKind kind : {RewriterKind::kLin, RewriterKind::kTw}) {
    RewriteResult result = RewriteOmqOrError(&ctx, q, kind);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status.code(), StatusCode::kUnsupportedShape);
    EXPECT_NE(result.status.message().find("tree-shaped"), std::string::npos)
        << result.status.message();
  }
}

TEST(RewriteStatusTest, LinAndLogRequireFiniteDepth) {
  Vocabulary vocab;
  TBox tbox(&vocab);
  RoleId p = RoleOf(vocab.InternPredicate("P"));
  tbox.AddExistsRhs("A", "P");
  tbox.AddConceptInclusion(BasicConcept::Exists(Inverse(p)),
                           BasicConcept::Exists(p));
  tbox.Normalize();
  RewritingContext ctx(tbox);
  ConjunctiveQuery q(&vocab);
  q.AddBinary("P", "x", "y");
  q.MarkAnswerVariable(q.FindVariable("x"));
  for (RewriterKind kind : {RewriterKind::kLin, RewriterKind::kLog}) {
    RewriteResult result = RewriteOmqOrError(&ctx, q, kind);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status.code(), StatusCode::kUnsupportedShape);
    EXPECT_NE(result.status.message().find("finite-depth"), std::string::npos)
        << result.status.message();
  }
  // Tw is fine on infinite-depth ontologies.
  RewriteResult tw_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kTw);
  ASSERT_TRUE(tw_rw.ok()) << tw_rw.status.message();
  EXPECT_GT(tw_rw.program.num_clauses(), 0);
}

TEST(ApiMisuseDeathTest, LinearEvaluatorRejectsNonLinearPrograms) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSR");
  RewriteResult log_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kLog);
  ASSERT_TRUE(log_rw.ok()) << log_rw.status.message();
  NdlProgram log_program = std::move(log_rw.program);
  DataInstance data(&vocab);
  if (!log_program.IsLinear()) {
    EXPECT_DEATH(LinearReachabilityEvaluator(log_program, data), "linear");
  }
}

TEST(ApiMisuseDeathTest, ClauseArityChecked) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0)}};  // Arity mismatch.
  EXPECT_DEATH(program.AddClause(std::move(c)), "");
}

}  // namespace
}  // namespace owlqr
