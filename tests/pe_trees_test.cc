#include <gtest/gtest.h>

#include "reductions/pe_trees.h"

namespace owlqr {
namespace {

// Theorem 28 / Lemma 26 style check: A^alpha_m |= q_m(a) iff the CNF minus
// the alpha-marked clauses is satisfiable — over every alpha.
void CheckAllAlphas(const Cnf& phi) {
  Vocabulary vocab;
  PeFormula query = MakeTheorem21PeQuery(&vocab, phi);
  int m = static_cast<int>(phi.clauses.size());
  for (unsigned mask = 0; mask < (1u << m); ++mask) {
    std::vector<bool> alpha(m);
    for (int i = 0; i < m; ++i) alpha[i] = (mask >> i) & 1;
    DataInstance data = MakeTreeInstance(&vocab, alpha);
    auto answers = EvaluatePe(query, data);
    bool holds = false;
    int a = vocab.FindIndividual("a");
    for (const auto& tuple : answers) holds = holds || tuple[0] == a;
    EXPECT_EQ(holds, MonotoneSatFunction(phi, alpha)) << "mask " << mask;
  }
}

TEST(PeTreesTest, TwoVariableFourClauses) {
  // Clauses padded to 3 literals: p1, !p1, p2, (!p1 | !p2).
  Cnf phi{2,
          {{1, 1, 1}, {-1, -1, -1}, {2, 2, 2}, {-1, -2, -2}}};
  CheckAllAlphas(phi);
}

TEST(PeTreesTest, MixedClauses) {
  // Unsatisfiable base CNF (as Theorem 28 requires): p2, !p2 both present.
  Cnf phi{3, {{1, 2, 3}, {2, 2, 2}, {-2, -2, -2}, {-3, -3, -3}}};
  ASSERT_FALSE(IsSatisfiable(phi));
  CheckAllAlphas(phi);
}

TEST(PeTreesTest, AllClausesCnf) {
  Cnf phi = MakeAllClausesCnf(2);
  EXPECT_FALSE(IsSatisfiable(phi));
  EXPECT_EQ(phi.clauses.size() & (phi.clauses.size() - 1), 0u);
  for (const auto& clause : phi.clauses) EXPECT_EQ(clause.size(), 3u);
}

TEST(PeTreesTest, QuerySizeIsPolynomial) {
  // The construction is polynomial: size grows roughly linearly in the
  // number of clauses (ell = log m deep paths).
  Vocabulary vocab;
  Cnf small{2, {{1, 1, 1}, {-1, -1, -1}, {2, 2, 2}, {-2, -2, -2}}};
  Cnf large{2, {}};
  for (int i = 0; i < 8; ++i) {
    large.clauses.push_back({1, 1, 1});
    large.clauses.push_back({-1, -1, -1});
  }
  PeFormula q_small = MakeTheorem21PeQuery(&vocab, small);
  PeFormula q_large = MakeTheorem21PeQuery(&vocab, large);
  EXPECT_LT(q_large.Size(), 16 * q_small.Size());
  EXPECT_GE(q_large.AlternationDepth(), 2);
}

}  // namespace
}  // namespace owlqr
