// Differential tests for the dependency-DAG scheduler and the intra-clause
// morsel fan-out: answers and per-predicate tuple counts must be identical
// whether a program is evaluated sequentially, by the DAG scheduler with
// the default morsel threshold, or with the threshold forced low enough
// that every sizeable clause splits into morsels.  Part of the `sanitize`
// binary, so TSan/ASan builds exercise the shard-merge path directly.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "data/data_instance.h"
#include "ndl/evaluator.h"
#include "ndl/program.h"

namespace owlqr {
namespace {

// A dense-ish random role over `n` individuals with `edges` assertions.
DataInstance RandomGraph(Vocabulary* vocab, std::mt19937_64* rng, int n,
                         int edges) {
  DataInstance data(vocab);
  int r = vocab->InternPredicate("R");
  int c = vocab->InternConcept("C");
  std::vector<int> inds;
  for (int i = 0; i < n; ++i) {
    inds.push_back(data.AddIndividual("v" + std::to_string(i)));
  }
  for (int i = 0; i < edges; ++i) {
    data.AddRoleAssertion(r, inds[(*rng)() % inds.size()],
                          inds[(*rng)() % inds.size()]);
  }
  for (int i = 0; i < n / 2; ++i) {
    data.AddConceptAssertion(c, inds[(*rng)() % inds.size()]);
  }
  return data;
}

// Random layered program over a role EDB: each layer's predicates join two
// relations of earlier layers (or the EDB), so middle layers have row
// counts well above a small morsel threshold and the goal depends on a
// genuine DAG rather than a chain.
NdlProgram RandomLayeredProgram(Vocabulary* vocab, std::mt19937_64* rng) {
  NdlProgram program(vocab);
  int r = program.AddRolePredicate(vocab->InternPredicate("R"));
  int c = program.AddConceptPredicate(vocab->InternConcept("C"));
  std::vector<int> pool = {r};
  for (int layer = 0; layer < 3; ++layer) {
    int width = 2 + static_cast<int>((*rng)() % 2);
    std::vector<int> layer_preds;
    for (int k = 0; k < width; ++k) {
      int p = program.AddIdbPredicate(
          "L" + std::to_string(layer) + "_" + std::to_string(k), 2);
      NdlClause clause;
      clause.head = {p, {Term::Var(0), Term::Var(1)}};
      int left = pool[(*rng)() % pool.size()];
      int right = pool[(*rng)() % pool.size()];
      clause.body.push_back({left, {Term::Var(0), Term::Var(2)}});
      clause.body.push_back({right, {Term::Var(2), Term::Var(1)}});
      if ((*rng)() % 2 == 0) {
        clause.body.push_back({c, {Term::Var(0)}});
      }
      program.AddClause(std::move(clause));
      layer_preds.push_back(p);
    }
    pool.insert(pool.end(), layer_preds.begin(), layer_preds.end());
  }
  int goal = program.AddIdbPredicate("Goal", 2);
  for (size_t i = 1; i < pool.size(); ++i) {
    if ((*rng)() % 2 == 0 || i + 1 == pool.size()) {
      NdlClause g;
      g.head = {goal, {Term::Var(0), Term::Var(1)}};
      g.body.push_back({pool[i], {Term::Var(0), Term::Var(1)}});
      program.AddClause(std::move(g));
    }
  }
  program.SetGoal(goal);
  return program;
}

// Sequential, DAG-scheduled, and morsel-forced evaluation must produce the
// same sorted answers and the same per-predicate tuple counts, at every
// thread count.
TEST(SchedulerMorselTest, RandomizedDifferential) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    std::mt19937_64 rng(9000 + seed);
    Vocabulary vocab;
    NdlProgram program = RandomLayeredProgram(&vocab, &rng);
    ASSERT_TRUE(program.IsNonrecursive());
    DataInstance data = RandomGraph(&vocab, &rng, 40, 300);

    EvaluationStats seq_stats;
    auto expected = Evaluator(program, data).Evaluate(&seq_stats);

    for (int threads : {1, 2, 8}) {
      // DAG scheduler with the default morsel threshold (rarely splits at
      // this scale: exercises pure inter-predicate parallelism).
      EvaluationStats dag_stats;
      auto dag =
          Evaluator(program, data).EvaluateParallel(threads, &dag_stats);
      EXPECT_EQ(dag, expected) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(dag_stats.predicate_tuples, seq_stats.predicate_tuples)
          << "seed " << seed << " threads " << threads;

      // Morsel threshold forced low: every clause whose driver scans more
      // than 16 rows fans out into shards that the owner merges.
      EvaluatorLimits limits;
      limits.morsel_rows = 16;
      EvaluationStats morsel_stats;
      auto morsel = Evaluator(program, data, limits)
                        .EvaluateParallel(threads, &morsel_stats);
      EXPECT_EQ(morsel, expected)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(morsel_stats.predicate_tuples, seq_stats.predicate_tuples)
          << "seed " << seed << " threads " << threads;
      if (threads > 1) {
        EXPECT_GE(morsel_stats.morsels, morsel_stats.morsel_batches);
      }
    }
  }
}

// A program whose only task is one heavy scan-driven clause: the scheduler
// has nothing else to hand the other workers, so the clause must fan out
// into morsels (>= 2, since the driver far exceeds morsel_rows) and the
// merged result must match the sequential answer.
TEST(SchedulerMorselTest, SingleHeavyTaskFansOut) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
  c.body.push_back({r, {Term::Var(2), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  std::mt19937_64 rng(4242);
  DataInstance data = RandomGraph(&vocab, &rng, 60, 1200);

  EvaluationStats seq_stats;
  auto expected = Evaluator(program, data).Evaluate(&seq_stats);

  EvaluatorLimits limits;
  limits.morsel_rows = 64;
  EvaluationStats stats;
  auto actual =
      Evaluator(program, data, limits).EvaluateParallel(4, &stats);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(stats.predicate_tuples, seq_stats.predicate_tuples);
  EXPECT_EQ(stats.scheduler_tasks, 1);
  EXPECT_GE(stats.morsel_batches, 1);
  EXPECT_GE(stats.morsels, 2);
}

// Work stealing: carve the driver into one dominating morsel plus a tiny
// remainder.  The worker that drew the remainder goes idle almost
// immediately and must split the straggler's published range instead of
// waiting at the helpers barrier — observable as stats.steals > 0.  The
// exact interleaving is up to the OS scheduler, so the test retries a few
// rounds and requires at least one steal overall (each round also
// differential-checks the answers, so a round without a steal still
// verifies the merge).  The tiny batch_rows keeps the steal threshold
// (two chunks) far below the dominating range.
TEST(SchedulerMorselTest, IdleWorkerStealsFromDominatingRange) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
  c.body.push_back({r, {Term::Var(2), Term::Var(1)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);

  // A complete digraph on 100 vertices: exactly 10000 driver rows (the
  // random generator dedups below the fan-out threshold), 100-way fanout.
  DataInstance data(&vocab);
  std::vector<int> inds;
  for (int i = 0; i < 100; ++i) {
    inds.push_back(data.AddIndividual("v" + std::to_string(i)));
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 100; ++j) {
      data.AddRoleAssertion(vocab.InternPredicate("R"), inds[i], inds[j]);
    }
  }

  EvaluationStats seq_stats;
  auto expected = Evaluator(program, data).Evaluate(&seq_stats);

  long steals = 0;
  for (int round = 0; round < 8 && steals == 0; ++round) {
    EvaluatorLimits limits;
    limits.morsel_rows = 9992;  // One dominating morsel + an 8-row stub.
    limits.batch_rows = 32;     // Chunk size; steals need >= 2 chunks left.
    EvaluationStats stats;
    auto actual =
        Evaluator(program, data, limits).EvaluateParallel(4, &stats);
    ASSERT_EQ(actual, expected) << "round " << round;
    ASSERT_EQ(stats.predicate_tuples, seq_stats.predicate_tuples)
        << "round " << round;
    steals += stats.steals;
  }
  EXPECT_GT(steals, 0)
      << "no idle worker ever stole from the dominating driver range";
}

}  // namespace
}  // namespace owlqr
