#include <gtest/gtest.h>

#include <random>

#include "data/data_instance.h"
#include "ndl/evaluator.h"
#include "ndl/program.h"
#include "ndl/skinny.h"
#include "ndl/transforms.h"

namespace owlqr {
namespace {

// A wide-body program: G(x,y) <- R(x,a) & R(a,b) & R(b,c) & R(c,y) & A(x),
// plus H as an IDB layer so both EDB and IDB binarisation paths trigger.
NdlProgram WideProgram(Vocabulary* vocab) {
  NdlProgram program(vocab);
  int r = program.AddRolePredicate(vocab->InternPredicate("R"));
  int a_pred = program.AddConceptPredicate(vocab->InternConcept("A"));
  int h = program.AddIdbPredicate("H", 2);
  int h2 = program.AddIdbPredicate("H2", 2);
  int h3 = program.AddIdbPredicate("H3", 2);
  int g = program.AddIdbPredicate("G", 2);
  for (int pred : {h, h2, h3}) {
    NdlClause c;
    c.head = {pred, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  {
    // G(x,y) <- H(x,u) & H2(u,v) & H3(v,y) & A(x) & R(x,u).
    NdlClause c;
    c.head = {g, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({h, {Term::Var(0), Term::Var(2)}});
    c.body.push_back({h2, {Term::Var(2), Term::Var(3)}});
    c.body.push_back({h3, {Term::Var(3), Term::Var(1)}});
    c.body.push_back({a_pred, {Term::Var(0)}});
    c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  return program;
}

DataInstance RandomChainData(Vocabulary* vocab, uint64_t seed) {
  DataInstance data(vocab);
  std::mt19937_64 rng(seed);
  std::vector<int> inds;
  for (int i = 0; i < 6; ++i) {
    inds.push_back(data.AddIndividual("n" + std::to_string(i)));
  }
  int r = vocab->InternPredicate("R");
  int a = vocab->InternConcept("A");
  for (int i = 0; i < 10; ++i) {
    data.AddRoleAssertion(r, inds[rng() % inds.size()],
                          inds[rng() % inds.size()]);
  }
  for (int i = 0; i < 3; ++i) {
    data.AddConceptAssertion(a, inds[rng() % inds.size()]);
  }
  return data;
}

TEST(SkinnyTest, WeightFunction) {
  Vocabulary vocab;
  NdlProgram program = WideProgram(&vocab);
  std::vector<long> nu = ComputeWeightFunction(program);
  // EDB predicates weigh 0; H/H2/H3 weigh 1; G sums its IDB children.
  int g = program.goal();
  EXPECT_EQ(nu[g], 3);
  for (int p = 0; p < program.num_predicates(); ++p) {
    if (!program.IsIdb(p)) {
      EXPECT_EQ(nu[p], 0) << program.predicate(p).name;
    } else if (p != g) {
      EXPECT_EQ(nu[p], 1) << program.predicate(p).name;
    }
  }
  EXPECT_GE(SkinnyDepth(program), 2 * program.Depth());
}

TEST(SkinnyTest, TransformIsSkinnyAndEquivalent) {
  Vocabulary vocab;
  NdlProgram program = WideProgram(&vocab);
  NdlProgram skinny = SkinnyTransform(program);
  EXPECT_FALSE(program.IsSkinny());
  EXPECT_TRUE(skinny.IsSkinny());
  EXPECT_TRUE(skinny.IsNonrecursive());
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    DataInstance data = RandomChainData(&vocab, seed);
    Evaluator e1(program, data);
    Evaluator e2(skinny, data);
    EXPECT_EQ(e1.Evaluate(), e2.Evaluate()) << "seed " << seed;
  }
}

TEST(SkinnyTest, WidthDoesNotGrow) {
  Vocabulary vocab;
  NdlProgram program = WideProgram(&vocab);
  NdlProgram skinny = SkinnyTransform(program);
  // Lemma 5: w(Pi') <= w(Pi) (no parameters here, so plain variable counts).
  EXPECT_LE(skinny.Width(), program.Width());
}

TEST(PruneTest, RemovesUndefinedAndUnreachable) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int a_pred = program.AddConceptPredicate(vocab.InternConcept("A"));
  int g = program.AddIdbPredicate("G", 1);
  int dead = program.AddIdbPredicate("Dead", 1);     // No clauses.
  int island = program.AddIdbPredicate("Island", 1); // Unreachable.
  {
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({a_pred, {Term::Var(0)}});
    program.AddClause(std::move(c));
  }
  {
    NdlClause c;  // References the undefined predicate: must go.
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({dead, {Term::Var(0)}});
    program.AddClause(std::move(c));
  }
  {
    NdlClause c;
    c.head = {island, {Term::Var(0)}};
    c.body.push_back({a_pred, {Term::Var(0)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  EXPECT_EQ(PruneProgram(&program), 2);
  EXPECT_EQ(program.num_clauses(), 1);
}

TEST(PruneTest, CascadingRemoval) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int g = program.AddIdbPredicate("G", 0);
  int mid = program.AddIdbPredicate("Mid", 0);
  int dead = program.AddIdbPredicate("Dead", 0);
  {
    NdlClause c;
    c.head = {g, {}};
    c.body.push_back({mid, {}});
    program.AddClause(std::move(c));
  }
  {
    NdlClause c;  // Mid depends on the undefined Dead -> Mid dies -> G dies.
    c.head = {mid, {}};
    c.body.push_back({dead, {}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  EXPECT_EQ(PruneProgram(&program), 2);
  EXPECT_EQ(program.num_clauses(), 0);
}

TEST(SafetyTest, AddsAdomGuards) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int a_pred = program.AddConceptPredicate(vocab.InternConcept("A"));
  int g = program.AddIdbPredicate("G", 2);
  NdlClause c;  // G(x, y) <- A(x): y unbound.
  c.head = {g, {Term::Var(0), Term::Var(1)}};
  c.body.push_back({a_pred, {Term::Var(0)}});
  program.AddClause(std::move(c));
  program.SetGoal(g);
  EXPECT_EQ(EnsureSafety(&program), 1);

  DataInstance data(&vocab);
  data.Assert("A", "a");
  data.Assert("A", "b");
  Evaluator eval(program, data);
  EXPECT_EQ(eval.Evaluate().size(), 4u);  // 2 x active domain of size 2.
}

TEST(InlineTest, SingleUsePredicatesDisappear) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int h = program.AddIdbPredicate("H", 2);
  int g = program.AddIdbPredicate("G", 2);
  {
    NdlClause c;
    c.head = {h, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
    c.body.push_back({r, {Term::Var(2), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  {
    NdlClause c;
    c.head = {g, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({h, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  NdlProgram original = program;  // Keep a copy for comparison.
  EXPECT_EQ(InlineSingleUsePredicates(&program), 1);
  EXPECT_EQ(program.num_clauses(), 1);

  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("R", "b", "c");
  Evaluator e1(original, data);
  Evaluator e2(program, data);
  EXPECT_EQ(e1.Evaluate(), e2.Evaluate());
}

TEST(InlineTest, RespectsOccurrenceCap) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int h = program.AddIdbPredicate("H", 2);
  int g = program.AddIdbPredicate("G", 2);
  {
    NdlClause c;
    c.head = {h, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  // Three uses of H: above the default cap of 2.
  for (int i = 0; i < 3; ++i) {
    NdlClause c;
    c.head = {g, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({h, {Term::Var(0), Term::Var(i == 0 ? 1 : 2)}});
    c.body.push_back({h, {Term::Var(i == 0 ? 1 : 2), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  EXPECT_EQ(InlineSingleUsePredicates(&program, 2), 0);
  EXPECT_EQ(InlineSingleUsePredicates(&program, 100), 1);
}

TEST(InlineTest, RepeatedHeadVariablesUseEqualities) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int h = program.AddIdbPredicate("H", 2);
  int g = program.AddIdbPredicate("G", 1);
  {
    // H(x, x) <- R(x, x) ... head repeats a variable.
    NdlClause c;
    c.head = {h, {Term::Var(0), Term::Var(0)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(0)}});
    program.AddClause(std::move(c));
  }
  {
    // G(x) <- H(x, y) forces x = y on inlining.
    NdlClause c;
    c.head = {g, {Term::Var(0)}};
    c.body.push_back({h, {Term::Var(0), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);
  NdlProgram original = program;
  InlineSingleUsePredicates(&program);
  DataInstance data(&vocab);
  data.Assert("R", "a", "a");
  data.Assert("R", "a", "b");
  Evaluator e1(original, data);
  Evaluator e2(program, data);
  EXPECT_EQ(e1.Evaluate(), e2.Evaluate());
}

}  // namespace
}  // namespace owlqr
