#include <gtest/gtest.h>

#include "chase/certain_answers.h"
#include "core/cost_model.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

TEST(DataStatisticsTest, FromInstance) {
  Vocabulary vocab;
  DataInstance data(&vocab);
  data.Assert("A", "a");
  data.Assert("A", "b");
  data.Assert("R", "a", "b");
  DataStatistics stats = DataStatistics::FromInstance(data);
  EXPECT_EQ(stats.num_individuals, 2);
  EXPECT_EQ(stats.ConceptCount(vocab.FindConcept("A")), 2);
  EXPECT_EQ(stats.PredicateCount(vocab.FindPredicate("R")), 1);
  EXPECT_EQ(stats.ConceptCount(vocab.InternConcept("Unknown")), 0);
}

TEST(CostModelTest, JoinEstimateShrinksWithSharedVariables) {
  Vocabulary vocab;
  NdlProgram program(&vocab);
  int r = program.AddRolePredicate(vocab.InternPredicate("R"));
  int g = program.AddIdbPredicate("G", 2);
  {
    NdlClause c;  // G(x, y) <- R(x, u) & R(u, y).
    c.head = {g, {Term::Var(0), Term::Var(1)}};
    c.body.push_back({r, {Term::Var(0), Term::Var(2)}});
    c.body.push_back({r, {Term::Var(2), Term::Var(1)}});
    program.AddClause(std::move(c));
  }
  program.SetGoal(g);

  DataStatistics stats;
  stats.num_individuals = 100;
  stats.predicate_cardinality[vocab.FindPredicate("R")] = 1000;
  // 1000 * 1000 / 100 = 10000 expected join results.
  EXPECT_NEAR(EstimateEvaluationCost(program, stats), 10000.0, 1.0);
}

TEST(CostModelTest, CostBasedRewriteIsCorrectAndReasonable) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery query = SequenceQuery(&vocab, "RSRRS");

  DatasetConfig config{"t", 60, 0.2, 0.1, 42};
  DataInstance data = GenerateDataset(&vocab, *tbox, config);
  DataStatistics stats = DataStatistics::FromInstance(data);

  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriterKind chosen;
  NdlProgram program = CostBasedRewrite(&ctx, query, stats, options, &chosen);
  // The chosen program is one of the optimal ones and answers correctly.
  EXPECT_TRUE(chosen == RewriterKind::kLin || chosen == RewriterKind::kLog ||
              chosen == RewriterKind::kTw || chosen == RewriterKind::kTwStar);
  auto reference = ComputeCertainAnswers(*tbox, query, data);
  Evaluator eval(program, data);
  EXPECT_EQ(eval.Evaluate(), reference.answers);
}

TEST(CostModelTest, PrefersCheaperProgramOnSkewedData) {
  // On data where R is huge and the witness concepts are tiny, a rewriting
  // whose clauses join through R repeatedly (Lin's slice chain keeps both
  // endpoints) is costed higher than the balanced ones.
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery query = SequenceQuery(&vocab, "RRRRRRRR");

  DataStatistics stats;
  stats.num_individuals = 1000;
  stats.predicate_cardinality[vocab.FindPredicate("R")] = 500000;

  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult lin_rw = RewriteOmqOrError(&ctx, query, RewriterKind::kLin, options);
  OWLQR_CHECK_MSG(lin_rw.ok(), lin_rw.status.message().c_str());
  NdlProgram lin = std::move(lin_rw.program);
  RewriteResult log_p_rw = RewriteOmqOrError(&ctx, query, RewriterKind::kLog, options);
  OWLQR_CHECK_MSG(log_p_rw.ok(), log_p_rw.status.message().c_str());
  NdlProgram log_p = std::move(log_p_rw.program);
  double lin_cost = EstimateEvaluationCost(lin, stats);
  double log_cost = EstimateEvaluationCost(log_p, stats);
  RewriterKind chosen;
  CostBasedRewrite(&ctx, query, stats, options, &chosen);
  if (lin_cost < log_cost) {
    EXPECT_NE(chosen, RewriterKind::kLog);
  }
  // The estimates are positive and finite either way.
  EXPECT_GT(lin_cost, 0);
  EXPECT_GT(log_cost, 0);
}

}  // namespace
}  // namespace owlqr
