#include <gtest/gtest.h>

#include "chase/certain_answers.h"
#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "pe/pe_formula.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace {

TEST(PeFormulaTest, SizeAndAlternation) {
  PeFormula pe;
  int a = pe.AddConceptAtom(0, 0);
  int r = pe.AddRoleAtom(0, 0, 1);
  int inner_or = pe.AddOr({a, r}, {0});
  int b = pe.AddConceptAtom(1, 0);
  int root = pe.AddAnd({inner_or, b}, {0});
  pe.SetRoot(root, {0});
  // And(Or(A, R), B): two alternation blocks.
  EXPECT_EQ(pe.AlternationDepth(), 2);
  EXPECT_EQ(pe.Size(), 2 + 3 + 1 + 2 + 1);
}

TEST(PeFormulaTest, UnfoldSizeMatchesDp) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  for (int len : {3, 5, 7}) {
    ConjunctiveQuery q = SequenceQuery(&vocab, std::string(kSequence1, len));
    RewriteResult lin_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kLin);
    OWLQR_CHECK_MSG(lin_rw.ok(), lin_rw.status.message().c_str());
    NdlProgram lin = std::move(lin_rw.program);
    bool truncated = false;
    PeFormula pe = UnfoldToPe(lin, /*max_nodes=*/1 << 22, &truncated);
    ASSERT_FALSE(truncated);
    // The DP size counts exactly the materialised nodes' symbols.
    EXPECT_EQ(pe.Size(), UnfoldedPeSize(lin)) << "len " << len;
  }
}

TEST(PeFormulaTest, UnfoldedEvaluationAgrees) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSR");
  DataInstance data(&vocab);
  data.Assert("R", "a", "b");
  data.Assert("P", "b", "c");
  data.Assert("R", "b", "d");

  auto reference = ComputeCertainAnswers(*tbox, q, data);
  for (RewriterKind kind : {RewriterKind::kLin, RewriterKind::kLog,
                            RewriterKind::kTw, RewriterKind::kUcq}) {
    RewriteOptions options;
    options.arbitrary_instances = true;
    RewriteResult program_rw = RewriteOmqOrError(&ctx, q, kind, options);
    OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
    NdlProgram program = std::move(program_rw.program);
    bool truncated = false;
    PeFormula pe = UnfoldToPe(program, 1 << 22, &truncated);
    ASSERT_FALSE(truncated);
    EXPECT_EQ(EvaluatePe(pe, data), reference.answers)
        << RewriterName(kind) << " PE unfolding";
  }
}

TEST(PeFormulaTest, UcqUnfoldIsPi2) {
  // The UCQ rewriting is an Or of Ands: alternation depth 2 (a
  // Sigma_2 formula; its PE matrix is the DNF).
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, "RSRRSRR");
  RewriteResult ucq_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kUcq);
  OWLQR_CHECK_MSG(ucq_rw.ok(), ucq_rw.status.message().c_str());
  NdlProgram ucq = std::move(ucq_rw.program);
  PeFormula pe = UnfoldToPe(ucq);
  EXPECT_EQ(pe.AlternationDepth(), 2);
}

TEST(PeFormulaTest, SuccinctnessGapGrows) {
  // Figure 1(b) illustration: the NDL rewriting stays linear in the query,
  // while its PE unfolding grows much faster (the rewriting reuses shared
  // subprograms which unfolding must duplicate).
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  long previous_ratio = 0;
  for (int len : {5, 10, 15}) {
    ConjunctiveQuery q = SequenceQuery(&vocab, std::string(kSequence1, len));
    RewriteResult lin_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kLin);
    OWLQR_CHECK_MSG(lin_rw.ok(), lin_rw.status.message().c_str());
    NdlProgram lin = std::move(lin_rw.program);
    long ndl_size = lin.SizeInSymbols();
    long pe_size = UnfoldedPeSize(lin);
    long ratio = pe_size / std::max(1L, ndl_size);
    EXPECT_GE(ratio, previous_ratio) << "len " << len;
    previous_ratio = ratio;
  }
  EXPECT_GT(previous_ratio, 1);
}

TEST(PeFormulaTest, TruncationReported) {
  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery q = SequenceQuery(&vocab, kSequence1);
  RewriteResult log_program_rw = RewriteOmqOrError(&ctx, q, RewriterKind::kLog);
  OWLQR_CHECK_MSG(log_program_rw.ok(), log_program_rw.status.message().c_str());
  NdlProgram log_program = std::move(log_program_rw.program);
  bool truncated = false;
  PeFormula pe = UnfoldToPe(log_program, /*max_nodes=*/32, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_LE(pe.num_nodes(), 64);
}

}  // namespace
}  // namespace owlqr
