// Reproduces Figure 2 and Table 1: the number of clauses in the
// NDL-rewritings produced by the six algorithms for the 1..15-atom prefixes
// of the three {R,S}-sequences over the Example 11 ontology.
//
// Expected shape: UCQ (~Rapid/Clipper) and PrestoLike (~Presto) grow
// exponentially in the number of independent tree witnesses; Lin, Log, Tw and
// Tw* grow linearly.  The `Clauses` counter is the paper's reported metric.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace owlqr {
namespace bench {
namespace {

void BM_RewritingSize(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  int sequence = static_cast<int>(state.range(0));
  int length = static_cast<int>(state.range(1));
  RewriterKind kind = kTableKinds[state.range(2)];
  std::string word(kSequences[sequence], 0, length);
  ConjunctiveQuery query = SequenceQuery(&s.vocab, word);

  long clauses = 0;
  bool truncated = false;
  for (auto _ : state) {
    RewriteResult rewritten = RewriteOmqOrError(s.ctx.get(), query, kind);
    truncated = rewritten.diag.truncated;
    clauses = rewritten.program.num_clauses();
    benchmark::DoNotOptimize(clauses);
  }
  state.counters["Clauses"] = static_cast<double>(clauses);
  state.counters["Truncated"] = truncated ? 1 : 0;
  state.SetLabel(std::string(RewriterName(kind)) + " " + word);
}

void RegisterAll() {
  for (int sequence = 0; sequence < 3; ++sequence) {
    for (int length = 1; length <= 15; ++length) {
      for (int kind = 0; kind < 6; ++kind) {
        std::string name = "Fig2/seq" + std::to_string(sequence + 1) +
                           "/len" + std::to_string(length) + "/" +
                           RewriterName(kTableKinds[kind]);
        benchmark::RegisterBenchmark(name.c_str(), BM_RewritingSize)
            ->Args({sequence, length, kind})
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
