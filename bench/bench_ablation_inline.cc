// Ablation: Tw vs Tw* (Appendix D.4).  The paper observed that inlining
// predicates defined by a single clause and used at most twice can speed up
// evaluation dramatically (28 s -> 0.9 s in their RDFox run) — but not
// uniformly.  This bench compares program sizes and evaluation on all three
// sequences.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ndl/evaluator.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace bench {
namespace {

void BM_InlineAblation(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  int sequence = static_cast<int>(state.range(0));
  int length = static_cast<int>(state.range(1));
  bool inlined = state.range(2) != 0;
  std::string word(kSequences[sequence], 0, static_cast<size_t>(length));
  ConjunctiveQuery query = SequenceQuery(&s.vocab, word);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(
      s.ctx.get(), query,
      inlined ? RewriterKind::kTwStar : RewriterKind::kTw, options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);

  auto configs = Table2Configs(DatasetScale());
  DataInstance data = GenerateDataset(&s.vocab, *s.tbox, configs[2]);
  EvaluationStats stats;
  for (auto _ : state) {
    EvaluatorLimits limits;
    limits.max_generated_tuples = TupleBudget();
    limits.max_work = 20 * TupleBudget();
    Evaluator eval(program, data, limits);
    auto answers = eval.Evaluate(&stats);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["Clauses"] = static_cast<double>(program.num_clauses());
  state.counters["GeneratedTuples"] =
      static_cast<double>(stats.generated_tuples);
  state.counters["Aborted"] = stats.aborted ? 1 : 0;
  state.SetLabel(std::string(inlined ? "Tw*" : "Tw") + " " + word);
}

void RegisterAll() {
  for (int sequence = 0; sequence < 3; ++sequence) {
    for (int length : {3, 7, 11, 15}) {
      for (int inlined = 0; inlined <= 1; ++inlined) {
        std::string name = "AblationInline/seq" + std::to_string(sequence + 1) +
                           "/len" + std::to_string(length) +
                           (inlined ? "/TwStar" : "/Tw");
        benchmark::RegisterBenchmark(name.c_str(), BM_InlineAblation)
            ->Args({sequence, length, inlined})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
