// Figure 1(b) illustration: the succinctness gap between NDL and PE
// rewritings.  For the OMQ(1,1,2) workload the paper proves polynomial-size
// NDL rewritings exist but polynomial-size PE rewritings do not (for the
// bounded-depth/bounded-leaf classes).  This bench reports, per query
// length, the size of each optimal NDL rewriting next to the size of its PE
// unfolding (computed exactly by dynamic programming, without materialising
// the formula) and the UCQ (= Sigma_2 PE) size.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "pe/pe_formula.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace bench {
namespace {

void BM_PeSuccinctness(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  int length = static_cast<int>(state.range(0));
  RewriterKind kind = kTableKinds[state.range(1)];
  std::string word(kSequence1, 0, static_cast<size_t>(length));
  ConjunctiveQuery query = SequenceQuery(&s.vocab, word);

  long ndl_size = 0;
  long pe_size = 0;
  for (auto _ : state) {
    RewriteResult program_rw = RewriteOmqOrError(s.ctx.get(), query, kind);
    OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
    NdlProgram program = std::move(program_rw.program);
    ndl_size = program.SizeInSymbols();
    pe_size = UnfoldedPeSize(program);
    benchmark::DoNotOptimize(pe_size);
  }
  state.counters["NdlSize"] = static_cast<double>(ndl_size);
  state.counters["PeSize"] = static_cast<double>(pe_size);
  state.counters["Ratio"] =
      static_cast<double>(pe_size) / static_cast<double>(ndl_size);
  state.SetLabel(std::string(RewriterName(kind)) + " " + word);
}

void RegisterAll() {
  for (int length : {3, 6, 9, 12, 15}) {
    for (int kind : {2, 3, 4, 0}) {  // Lin, Log, Tw, UCQ.
      std::string name = "Fig1b/len" + std::to_string(length) + "/" +
                         RewriterName(kTableKinds[kind]);
      benchmark::RegisterBenchmark(name.c_str(), BM_PeSuccinctness)
          ->Args({length, kind})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
