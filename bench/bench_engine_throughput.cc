// Prepared-OMQ engine throughput: N serving threads round-robin over M
// queries against one shared Engine, cold vs warm plan cache.
//
//   cold:  plan cache of capacity 1 with M > 1 queries — every serve misses
//          and pays the full rewrite + * transform + analysis pipeline.
//   warm:  capacity >= M, pre-warmed — every serve hits and goes straight
//          to evaluation over the shared snapshot (no rewrite at all).
//
// The warm/cold real_time ratio at a given thread count is the per-query
// speedup the plan cache buys; the committed baseline (BENCH_engine.json)
// shows >= 5x at 4 threads.  CacheHitRate confirms which regime a row
// measured.
//
// A third scenario, overload/t8, serves 8 threads through a governed warm
// engine (64 MB budget, 4 slots, 2-deep queue with a 5 ms timeout) and
// reports ShedRate plus AdmittedP50Ms/AdmittedP99Ms — load shedding and
// admitted-latency under sustained saturation.
//
// The hot-key pair measures cross-request answer memoization: hotkey/t8 is
// 8 threads serving ONE identical (query, limits) request against a
// memoizing engine while thread 0 applies a fresh fact every 64 serves to
// churn the snapshot version; hotkey_nocache/t8 is the same loop with the
// answer cache and coalescing off.  HitRate/CoalesceRate confirm the
// regime; the committed baseline shows >= 5x real_time at t8.  The
// warm_cachemiss/t1 control serves with a per-iteration-unique limits
// signature through a memoizing engine — every serve pays the key build,
// the probe, the in-flight table and the publish without ever earning a
// hit — and must stay within the noise bar of warm/t1.
//
// The http pair prices the same serving regimes through the full HTTP/1.1
// wire path over loopback (socket, framing, JSON codecs, Service dispatch):
// http_warm/t8 is the memoized hot key end to end, http_overload/t8 is
// unique-keyed saturation against a 2-slot governor (ShedRate > 0 proves
// 429 shedding engages on the wire).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/engine.h"
#include "server/api.h"
#include "server/client.h"
#include "server/http_server.h"
#include "server/registry.h"
#include "store/store.h"
#include "util/logging.h"

namespace owlqr {
namespace bench {
namespace {

// Longer prefixes of sequence 1: rewriting work grows with the prefix, so a
// cold serve is rewrite-dominated the way a live endpoint would be.  The
// dataset is deliberately small and sparse for the same reason: this bench
// isolates the serve pipeline (prepare + plan), not join throughput, which
// the Table 3-5 benches already cover.
constexpr int kMinLength = 8;
constexpr int kNumQueries = 8;

const std::vector<ConjunctiveQuery>& Queries() {
  static const std::vector<ConjunctiveQuery>* queries = [] {
    auto* qs = new std::vector<ConjunctiveQuery>();
    Scenario& s = Scenario::Get();
    for (int i = 0; i < kNumQueries; ++i) {
      std::string word(kSequence1, 0,
                       static_cast<size_t>(kMinLength + i));
      qs->push_back(SequenceQuery(&s.vocab, word));
    }
    return qs;
  }();
  return *queries;
}

const DataInstance& Dataset() {
  static const DataInstance* data = [] {
    Scenario& s = Scenario::Get();
    DatasetConfig config{"engine", 60, 0.03, 0.1, 42};
    return new DataInstance(GenerateDataset(&s.vocab, *s.tbox, config));
  }();
  return *data;
}

PrepareOptions TablePrepareOptions() {
  PrepareOptions options;
  options.auto_kind = false;
  options.kind = RewriterKind::kTw;
  return options;
}

Engine& SharedEngine(bool warm) {
  static Engine* cold_engine = [] {
    EngineOptions options;
    options.plan_cache_capacity = 1;  // M > 1 queries: every serve misses.
    return new Engine(*Scenario::Get().tbox, Dataset(), nullptr, options);
  }();
  static Engine* warm_engine = [] {
    EngineOptions options;
    options.plan_cache_capacity = 2 * kNumQueries;
    auto* engine =
        new Engine(*Scenario::Get().tbox, Dataset(), nullptr, options);
    for (const ConjunctiveQuery& q : Queries()) {
      PrepareResult prepared = engine->Prepare(q, TablePrepareOptions());
      OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    }
    return engine;
  }();
  return warm ? *warm_engine : *cold_engine;
}

void BM_EngineServe(benchmark::State& state, bool warm) {
  // Touch the shared fixtures before timing starts (function-local statics
  // are built on first use, under the first thread to arrive).
  Engine& engine = SharedEngine(warm);
  const std::vector<ConjunctiveQuery>& queries = Queries();
  PrepareOptions prepare_options = TablePrepareOptions();
  ExecuteRequest request;
  request.limits.max_generated_tuples = TupleBudget();
  request.limits.max_work = 20 * TupleBudget();

  long serves = 0;
  long hits = 0;
  long answers = 0;
  size_t next = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    const ConjunctiveQuery& query = queries[next % queries.size()];
    next += static_cast<size_t>(state.threads());
    PrepareResult prepared = engine.Prepare(query, prepare_options);
    OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    ExecuteResult result = engine.Execute(*prepared.query, request);
    benchmark::DoNotOptimize(result.answers);
    ++serves;
    if (prepared.cache_hit) ++hits;
    answers += result.stats.goal_tuples;
  }
  state.counters["CacheHitRate"] = benchmark::Counter(
      serves > 0 ? static_cast<double>(hits) / serves : 0,
      benchmark::Counter::kAvgThreads);
  state.counters["Answers"] = benchmark::Counter(
      static_cast<double>(answers), benchmark::Counter::kAvgThreads);
  state.SetLabel(warm ? "warm cache" : "cold cache");
}

// The governed engine for the overload scenario: warm plan cache plus a
// resource governor — 64 MB budget, 4 execution slots, a 2-deep admission
// queue with a 5 ms timeout.  With 8 serving threads the slot pool is
// permanently saturated, so the bench measures what serving under overload
// actually does: admitted requests keep bounded latency, the overflow is
// shed with kRejected instead of piling up.
Engine& GovernedEngine() {
  static Engine* engine = [] {
    EngineOptions options;
    options.plan_cache_capacity = 2 * kNumQueries;
    options.governor.max_memory_bytes = 64ull << 20;
    options.governor.max_concurrent = 4;
    options.governor.max_queue = 2;
    options.governor.queue_timeout_ms = 5;
    auto* governed =
        new Engine(*Scenario::Get().tbox, Dataset(), nullptr, options);
    for (const ConjunctiveQuery& q : Queries()) {
      PrepareResult prepared = governed->Prepare(q, TablePrepareOptions());
      OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    }
    return governed;
  }();
  return *engine;
}

void BM_EngineOverload(benchmark::State& state) {
  Engine& engine = GovernedEngine();
  const std::vector<ConjunctiveQuery>& queries = Queries();
  PrepareOptions prepare_options = TablePrepareOptions();
  ExecuteRequest request;
  request.limits.max_generated_tuples = TupleBudget();
  request.limits.max_work = 20 * TupleBudget();

  long serves = 0;
  long shed = 0;
  std::vector<double> admitted_ms;
  size_t next = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    const ConjunctiveQuery& query = queries[next % queries.size()];
    next += static_cast<size_t>(state.threads());
    PrepareResult prepared = engine.Prepare(query, prepare_options);
    OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    auto start = std::chrono::steady_clock::now();
    ExecuteResult result = engine.Execute(*prepared.query, request);
    double elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    benchmark::DoNotOptimize(result.answers);
    ++serves;
    if (result.status.code() == StatusCode::kRejected) {
      ++shed;
    } else {
      admitted_ms.push_back(elapsed_ms);
    }
  }
  std::sort(admitted_ms.begin(), admitted_ms.end());
  auto percentile = [&](double p) {
    if (admitted_ms.empty()) return 0.0;
    size_t i = static_cast<size_t>(p * static_cast<double>(
                                           admitted_ms.size() - 1));
    return admitted_ms[i];
  };
  // Per-thread percentiles averaged across threads: an estimate, but a
  // stable one, and regressions in either tail move it.
  state.counters["ShedRate"] = benchmark::Counter(
      serves > 0 ? static_cast<double>(shed) / static_cast<double>(serves)
                 : 0,
      benchmark::Counter::kAvgThreads);
  state.counters["AdmittedP50Ms"] =
      benchmark::Counter(percentile(0.5), benchmark::Counter::kAvgThreads);
  state.counters["AdmittedP99Ms"] =
      benchmark::Counter(percentile(0.99), benchmark::Counter::kAvgThreads);
  state.SetLabel("governed overload");
}

// The warm update path, A/B: each iteration applies ONE fresh role fact
// through ApplyFacts and immediately re-serves the longest (length-15)
// prepared query, unlimited so the answer set is complete.
//
//   warm_apply_delta: ExecuteRequest::incremental — after the seeding run,
//     every serve checks out the retained IDB state and evaluates only the
//     one-row delta through the dependency DAG (DeltaRate confirms it).
//   warm_apply_full:  the same update/serve loop re-evaluating from
//     scratch every time (DeltaRate 0).
//
// The full/delta real_time ratio is what incremental maintenance buys on
// the O(delta)-vs-O(data) update path; the committed baseline shows >= 5x.
constexpr int kApplyPoolSize = 4096;

struct ApplyFixture {
  Engine* engine = nullptr;
  std::shared_ptr<const PreparedQuery> query;
  std::vector<int> pool;  // Pre-interned fresh individuals, 2 per fact.
  size_t next_fact = 0;
  int r_id = 0;
};

ApplyFixture& ApplyEngine(bool incremental) {
  auto make = [](bool inc) {
    auto* f = new ApplyFixture();
    Scenario& s = Scenario::Get();
    EngineOptions options;
    options.plan_cache_capacity = 2 * kNumQueries;
    // A dataset several times the serve-pipeline one: the full re-serve is
    // O(data) and must dominate its own fixed per-serve costs, while the
    // delta serve stays O(delta) — the larger instance is exactly what
    // separates the two regimes.
    DatasetConfig config{inc ? "applyd" : "applyf", 240, 0.03, 0.1, 43};
    DataInstance data = GenerateDataset(&s.vocab, *s.tbox, config);
    f->engine = new Engine(*s.tbox, data, nullptr, options);
    PrepareResult prepared =
        f->engine->Prepare(Queries().back(), TablePrepareOptions());
    OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    f->query = prepared.query;
    f->r_id = s.vocab.InternPredicate("R");
    const char* tag = inc ? "d" : "f";
    for (int i = 0; i < kApplyPoolSize; ++i) {
      f->pool.push_back(
          s.vocab.InternIndividual("apply" + std::to_string(i) + tag));
    }
    // Seed outside the timed loop so the loop measures the steady state:
    // for the delta variant this run captures the retained IDB state the
    // first timed serve checks out.
    ExecuteRequest seed;
    seed.incremental = inc;
    ExecuteResult result = f->engine->Execute(*f->query, seed);
    OWLQR_CHECK_MSG(result.status.ok(), result.status.ToString().c_str());
    return f;
  };
  static ApplyFixture* delta_fixture = make(true);
  static ApplyFixture* full_fixture = make(false);
  return incremental ? *delta_fixture : *full_fixture;
}

void BM_EngineApply(benchmark::State& state, bool incremental) {
  ApplyFixture& fixture = ApplyEngine(incremental);
  ExecuteRequest request;
  request.incremental = incremental;

  long serves = 0;
  long delta_served = 0;
  for (auto _ : state) {
    FactBatch batch;
    size_t i = fixture.next_fact;
    fixture.next_fact += 2;
    batch.roles.push_back({fixture.r_id,
                           fixture.pool[i % kApplyPoolSize],
                           fixture.pool[(i + 1) % kApplyPoolSize]});
    Status apply_status = fixture.engine->ApplyFactsOrError(batch);
    OWLQR_CHECK_MSG(apply_status.ok(), apply_status.ToString().c_str());
    ExecuteResult result = fixture.engine->Execute(*fixture.query, request);
    OWLQR_CHECK_MSG(result.status.ok(), result.status.ToString().c_str());
    benchmark::DoNotOptimize(result.answers);
    ++serves;
    if (result.incremental) ++delta_served;
  }
  state.counters["DeltaRate"] = benchmark::Counter(
      serves > 0 ? static_cast<double>(delta_served) /
                       static_cast<double>(serves)
                 : 0,
      benchmark::Counter::kAvgThreads);
  state.SetLabel(incremental ? "warm apply, delta" : "warm apply, full");
}

// The hot-key scenario: every thread serves the SAME prepared query with
// the SAME (unlimited, thus cacheable) request, the workload shape the
// answer cache exists for.  Thread 0 applies one fresh role fact every
// kChurnEvery of its serves, so the snapshot version keeps moving: each
// bump invalidates the cached entry, the 8 threads race the re-fill (one
// leader evaluates, the rest coalesce), and every serve until the next
// bump is a hit.  The _nocache control runs the identical loop with
// memoization off.
constexpr int kHotPoolSize = 4096;
constexpr int kChurnEvery = 64;

struct HotKeyFixture {
  Engine* engine = nullptr;
  std::shared_ptr<const PreparedQuery> query;
  std::vector<int> pool;  // Pre-interned fresh individuals, 2 per fact.
  size_t next_fact = 0;
  int r_id = 0;
};

HotKeyFixture& HotKeyEngine(bool memoized) {
  auto make = [](bool mem) {
    auto* f = new HotKeyFixture();
    Scenario& s = Scenario::Get();
    EngineOptions options;
    options.plan_cache_capacity = 2 * kNumQueries;
    if (mem) {
      options.answer_cache_capacity = 256;
      options.answer_cache_max_bytes = 64ull << 20;
    } else {
      options.answer_cache_capacity = 0;
      options.coalesce = false;
    }
    f->engine = new Engine(*s.tbox, Dataset(), nullptr, options);
    PrepareResult prepared =
        f->engine->Prepare(Queries().back(), TablePrepareOptions());
    OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    f->query = prepared.query;
    f->r_id = s.vocab.InternPredicate("R");
    const char* tag = mem ? "m" : "n";
    for (int i = 0; i < kHotPoolSize; ++i) {
      f->pool.push_back(
          s.vocab.InternIndividual("hot" + std::to_string(i) + tag));
    }
    return f;
  };
  static HotKeyFixture* memoized_fixture = make(true);
  static HotKeyFixture* plain_fixture = make(false);
  return memoized ? *memoized_fixture : *plain_fixture;
}

void BM_EngineHotKey(benchmark::State& state, bool memoized) {
  HotKeyFixture& fixture = HotKeyEngine(memoized);
  // Unlimited on purpose: only clean, complete runs are cacheable.
  ExecuteRequest request;

  long serves = 0;
  long hits = 0;
  long coalesced = 0;
  for (auto _ : state) {
    if (state.thread_index() == 0 && serves % kChurnEvery == 0) {
      FactBatch batch;
      size_t i = fixture.next_fact;
      fixture.next_fact += 2;
      batch.roles.push_back({fixture.r_id,
                             fixture.pool[i % kHotPoolSize],
                             fixture.pool[(i + 1) % kHotPoolSize]});
      Status apply_status = fixture.engine->ApplyFactsOrError(batch);
      OWLQR_CHECK_MSG(apply_status.ok(), apply_status.ToString().c_str());
    }
    ExecuteResult result = fixture.engine->Execute(*fixture.query, request);
    OWLQR_CHECK_MSG(result.status.ok(), result.status.ToString().c_str());
    benchmark::DoNotOptimize(result.answers);
    ++serves;
    if (result.cached) ++hits;
    if (result.coalesced) ++coalesced;
  }
  state.counters["HitRate"] = benchmark::Counter(
      serves > 0 ? static_cast<double>(hits) / static_cast<double>(serves)
                 : 0,
      benchmark::Counter::kAvgThreads);
  state.counters["CoalesceRate"] = benchmark::Counter(
      serves > 0
          ? static_cast<double>(coalesced) / static_cast<double>(serves)
          : 0,
      benchmark::Counter::kAvgThreads);
  state.SetLabel(memoized ? "hot key, memoized" : "hot key, uncached");
}

// The always-miss control: the warm serve loop against a memoizing engine,
// but with a per-iteration-unique max_work, so the limits signature — and
// with it the memoization key — never repeats.  Every serve pays the key
// build, the cache probe, the in-flight registration and (when the run is
// complete) the publish and an eviction at capacity, and none of it is
// ever repaid with a hit.  The real_time delta against warm/t1 is the raw
// overhead the memoization layer adds to an uncacheable workload.
Engine& CacheMissEngine() {
  static Engine* engine = [] {
    EngineOptions options;
    options.plan_cache_capacity = 2 * kNumQueries;
    options.answer_cache_capacity = 256;
    options.answer_cache_max_bytes = 64ull << 20;
    auto* memoizing =
        new Engine(*Scenario::Get().tbox, Dataset(), nullptr, options);
    for (const ConjunctiveQuery& q : Queries()) {
      PrepareResult prepared = memoizing->Prepare(q, TablePrepareOptions());
      OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    }
    return memoizing;
  }();
  return *engine;
}

void BM_EngineCacheMiss(benchmark::State& state) {
  Engine& engine = CacheMissEngine();
  const std::vector<ConjunctiveQuery>& queries = Queries();
  PrepareOptions prepare_options = TablePrepareOptions();
  ExecuteRequest request;
  request.limits.max_generated_tuples = TupleBudget();

  long serves = 0;
  long hits = 0;
  size_t next = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    const ConjunctiveQuery& query = queries[next % queries.size()];
    // Unique per serve, far above the point where the ceiling could bind:
    // the evaluation work is identical to warm/t1, only the key differs.
    request.limits.max_work = 20 * TupleBudget() + static_cast<long>(next);
    next += static_cast<size_t>(state.threads());
    PrepareResult prepared = engine.Prepare(query, prepare_options);
    OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    ExecuteResult result = engine.Execute(*prepared.query, request);
    benchmark::DoNotOptimize(result.answers);
    ++serves;
    if (result.cached) ++hits;
  }
  state.counters["HitRate"] = benchmark::Counter(
      serves > 0 ? static_cast<double>(hits) / static_cast<double>(serves)
                 : 0,
      benchmark::Counter::kAvgThreads);
  state.SetLabel("warm serve, unique keys");
}

// ---------------------------------------------------------------------------
// HTTP serving throughput: the full wire path — client socket, HTTP/1.1
// framing, JSON codecs, Service dispatch, governed Execute — over loopback,
// against a single-tenant registry (2 carved slots, no admission queue,
// memoizing engine).
//
//   http_warm/t8:     8 keep-alive clients serve ONE fixed (query, limits)
//                     request: after the first evaluation every serve is an
//                     answer-cache hit (or coalesces onto a concurrent
//                     leader), so the row prices the transport + codec
//                     overhead of a memoized answer end to end.
//   http_overload/t8: the same wire path with per-request-unique limits —
//                     every admitted request really evaluates, and with 8
//                     clients against 2 slots the governor must shed;
//                     ShedRate > 0 proves the 429 path engages under
//                     sustained HTTP load.
struct HttpFixture {
  server::EngineRegistry* registry = nullptr;
  api::Service* service = nullptr;
  server::HttpServer* http = nullptr;
  std::string query;
};

HttpFixture& HttpServing() {
  static HttpFixture* fixture = [] {
    auto* f = new HttpFixture();
    // A self-contained tenant (the Scenario fixtures own their vocabulary;
    // a registry tenant must own its own): 4 course blocks of 8 lecturers
    // plus one concept-only member, and a 4-atom path query that walks a
    // block against itself twice — enough per-serve work that overload
    // requests overlap on the two slots.
    std::string ontology =
        "Professor SUB EX teaches\n"
        "EX teaches- SUB Course\n"
        "lectures SUBR teaches\n";
    std::string data;
    for (int c = 0; c < 4; ++c) {
      for (int i = 0; i < 8; ++i) {
        data += "lectures(p" + std::to_string(c * 8 + i) + ", c" +
                std::to_string(c) + ").\n";
      }
    }
    data += "Professor(solo).\n";
    f->query =
        "q(x, w) :- teaches(x, y), teaches(z, y), "
        "teaches(z, v), teaches(w, v)";

    server::RegistryOptions options;
    options.max_tenants = 1;
    options.process_slots = 2;
    options.engine.governor.max_queue = 0;  // Saturated -> shed now.
    options.engine.answer_cache_capacity = 64;
    options.engine.coalesce = true;
    f->registry = new server::EngineRegistry(options);
    Status registered = f->registry->RegisterParsed("bench", ontology, data);
    OWLQR_CHECK_MSG(registered.ok(), registered.ToString().c_str());
    f->service = new api::Service(f->registry);
    server::HttpServerOptions http_options;
    // Thread-per-connection: every benchmark thread keeps one connection.
    http_options.num_workers = 12;
    f->http = new server::HttpServer(f->service, http_options);
    Status started = f->http->Start();
    OWLQR_CHECK_MSG(started.ok(), started.ToString().c_str());
    return f;
  }();
  return *fixture;
}

void BM_HttpServe(benchmark::State& state, bool overload) {
  HttpFixture& fixture = HttpServing();
  server::HttpClient client("127.0.0.1", fixture.http->port());
  long serves = 0;
  long memoized = 0;
  long shed = 0;
  long failures = 0;
  long key = static_cast<long>(state.thread_index()) * 1'000'000;
  for (auto _ : state) {
    api::WireExecuteRequest request;
    request.query = fixture.query;
    if (overload) {
      // Unique limits defeat the answer-cache and coalesce keys, so every
      // admitted request evaluates and saturation really sheds.
      request.exec.limits.max_generated_tuples = 50'000'000 + (++key);
    }
    api::WireExecuteResult result;
    Status status = client.Execute("bench", request, &result);
    benchmark::DoNotOptimize(result.answers);
    ++serves;
    if (status.ok()) {
      if (result.cached || result.coalesced) ++memoized;
    } else if (status.code() == StatusCode::kRejected &&
               result.status.code() == StatusCode::kRejected) {
      ++shed;  // A governed 429 whose body still parsed as a full result.
    } else {
      ++failures;
    }
  }
  OWLQR_CHECK_MSG(failures == 0, "http serve saw transport-level failures");
  state.counters["MemoRate"] = benchmark::Counter(
      serves > 0 ? static_cast<double>(memoized) /
                       static_cast<double>(serves)
                 : 0,
      benchmark::Counter::kAvgThreads);
  state.counters["ShedRate"] = benchmark::Counter(
      serves > 0 ? static_cast<double>(shed) / static_cast<double>(serves)
                 : 0,
      benchmark::Counter::kAvgThreads);
  state.SetLabel(overload ? "http governed overload" : "http warm hot key");
}

// ---------------------------------------------------------------------------
// Durable-store cells (DESIGN.md §14).
//
//   store_warm/t1:    the warm/t1 serve loop against a store-BACKED engine.
//                     Warm executions never touch the store (appends happen
//                     on ApplyFacts, not Execute), so this cell must price
//                     within the warm/t1 noise bar — the durability layer
//                     may not tax the read path.
//   store_append/t4:  4 threads each applying one fresh role fact per
//                     iteration through the WAL (append + fsync + install).
//                     Prices the durable update path under apply-mutex
//                     contention; LogRecords confirms every batch logged.
//   store_recovery/t1: one full cold restart per iteration — open the
//                     store, mmap + CRC-check the segment, replay the log
//                     tail, serve the first answer.  RecoveryMs isolates
//                     the store+replay share of that wall time.

std::string MakeBenchStoreDir(const char* tag) {
  std::string templ = std::string("/tmp/owlqr_bench_") + tag + ".XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  OWLQR_CHECK_MSG(mkdtemp(buf.data()) != nullptr,
                  "mkdtemp failed for the bench store dir");
  return std::string(buf.data());
}

std::shared_ptr<store::DurableStore> OpenBenchStore(const std::string& dir) {
  store::StoreOptions options;
  options.dir = dir;
  std::shared_ptr<store::DurableStore> durable;
  Status status = store::DurableStore::Open(options, &durable);
  OWLQR_CHECK_MSG(status.ok(), status.ToString().c_str());
  return durable;
}

std::unique_ptr<Engine> OpenStoreEngine(const std::string& dir,
                                        const DataInstance& data) {
  EngineOptions options;
  options.plan_cache_capacity = 2 * kNumQueries;
  options.store = OpenBenchStore(dir);
  Status status;
  std::unique_ptr<Engine> engine =
      Engine::Open(*Scenario::Get().tbox, data, nullptr, options, &status);
  OWLQR_CHECK_MSG(engine != nullptr, status.ToString().c_str());
  return engine;
}

Engine& StoreWarmEngine() {
  static Engine* engine = [] {
    auto owned = OpenStoreEngine(MakeBenchStoreDir("warm"), Dataset());
    for (const ConjunctiveQuery& q : Queries()) {
      PrepareResult prepared = owned->Prepare(q, TablePrepareOptions());
      OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    }
    return owned.release();
  }();
  return *engine;
}

void BM_StoreWarmServe(benchmark::State& state) {
  Engine& engine = StoreWarmEngine();
  const std::vector<ConjunctiveQuery>& queries = Queries();
  PrepareOptions prepare_options = TablePrepareOptions();
  ExecuteRequest request;
  request.limits.max_generated_tuples = TupleBudget();
  request.limits.max_work = 20 * TupleBudget();

  long serves = 0;
  long hits = 0;
  size_t next = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    const ConjunctiveQuery& query = queries[next % queries.size()];
    next += static_cast<size_t>(state.threads());
    PrepareResult prepared = engine.Prepare(query, prepare_options);
    OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    ExecuteResult result = engine.Execute(*prepared.query, request);
    benchmark::DoNotOptimize(result.answers);
    ++serves;
    if (prepared.cache_hit) ++hits;
  }
  state.counters["CacheHitRate"] = benchmark::Counter(
      serves > 0 ? static_cast<double>(hits) / serves : 0,
      benchmark::Counter::kAvgThreads);
  state.SetLabel("warm cache, store-backed");
}

constexpr int kStorePoolSize = 8192;

struct StoreAppendFixture {
  Engine* engine = nullptr;
  std::vector<int> pool;  // Pre-interned fresh individuals, 2 per fact.
  std::atomic<size_t> next_fact{0};
  int r_id = 0;
};

StoreAppendFixture& StoreAppendEngine() {
  static StoreAppendFixture* fixture = [] {
    auto* f = new StoreAppendFixture();
    Scenario& s = Scenario::Get();
    f->engine =
        OpenStoreEngine(MakeBenchStoreDir("append"), Dataset()).release();
    f->r_id = s.vocab.InternPredicate("R");
    for (int i = 0; i < kStorePoolSize; ++i) {
      f->pool.push_back(
          s.vocab.InternIndividual("stap" + std::to_string(i)));
    }
    return f;
  }();
  return *fixture;
}

void BM_StoreAppend(benchmark::State& state) {
  StoreAppendFixture& fixture = StoreAppendEngine();
  long applied = 0;
  for (auto _ : state) {
    FactBatch batch;
    const size_t i =
        fixture.next_fact.fetch_add(2, std::memory_order_relaxed);
    batch.roles.push_back({fixture.r_id,
                           fixture.pool[i % kStorePoolSize],
                           fixture.pool[(i + 1) % kStorePoolSize]});
    Status status = fixture.engine->ApplyFactsOrError(batch);
    OWLQR_CHECK_MSG(status.ok(), status.ToString().c_str());
    ++applied;
  }
  benchmark::DoNotOptimize(applied);
  const store::StoreCounters counters = fixture.engine->store()->counters();
  state.counters["LogRecords"] = benchmark::Counter(
      static_cast<double>(counters.log_records),
      benchmark::Counter::kAvgThreads);
  state.counters["LogBytes"] = benchmark::Counter(
      static_cast<double>(counters.log_bytes),
      benchmark::Counter::kAvgThreads);
  state.SetLabel("durable ApplyFacts (append + fsync)");
}

// A store directory with a seeded segment plus a log tail of fresh facts —
// what a restart after some traffic actually recovers.
const std::string& RecoveryStoreDir() {
  static const std::string* dir = [] {
    auto* d = new std::string(MakeBenchStoreDir("recovery"));
    Scenario& s = Scenario::Get();
    auto engine = OpenStoreEngine(*d, Dataset());
    const int r_id = s.vocab.InternPredicate("R");
    for (int b = 0; b < 32; ++b) {
      FactBatch batch;
      batch.roles.push_back(
          {r_id, s.vocab.InternIndividual("rec" + std::to_string(b) + "a"),
           s.vocab.InternIndividual("rec" + std::to_string(b) + "b")});
      Status status = engine->ApplyFactsOrError(batch);
      OWLQR_CHECK_MSG(status.ok(), status.ToString().c_str());
    }
    return d;
  }();
  return *dir;
}

void BM_StoreRecovery(benchmark::State& state) {
  const std::string& dir = RecoveryStoreDir();
  Scenario& s = Scenario::Get();
  const ConjunctiveQuery& query = Queries().front();
  PrepareOptions prepare_options = TablePrepareOptions();
  ExecuteRequest request;
  request.limits.max_generated_tuples = TupleBudget();
  request.limits.max_work = 20 * TupleBudget();

  double recovery_ms = 0;
  double recovered_records = 0;
  for (auto _ : state) {
    DataInstance ignored(&s.vocab);  // Recovery supersedes the seed data.
    std::unique_ptr<Engine> engine = OpenStoreEngine(dir, ignored);
    PrepareResult prepared = engine->Prepare(query, prepare_options);
    OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    ExecuteResult result = engine->Execute(*prepared.query, request);
    OWLQR_CHECK_MSG(result.status.ok(), result.status.ToString().c_str());
    benchmark::DoNotOptimize(result.answers);
    recovery_ms += engine->recovery_ms();
    recovered_records = static_cast<double>(
        engine->store()->counters().recovered_records);
  }
  state.counters["RecoveryMs"] = benchmark::Counter(
      recovery_ms, benchmark::Counter::kAvgIterations);
  state.counters["RecoveredRecords"] =
      benchmark::Counter(recovered_records);
  state.SetLabel("cold restart to first answer");
}

void RegisterAll() {
  for (bool warm : {false, true}) {
    for (int threads : {1, 4}) {
      std::string name = std::string("EngineThroughput/") +
                         (warm ? "warm" : "cold") + "/t" +
                         std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(), BM_EngineServe, warm)
          ->Threads(threads)
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RegisterBenchmark("EngineThroughput/overload/t8",
                               BM_EngineOverload)
      ->Threads(8)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  for (bool memoized : {true, false}) {
    std::string name = std::string("EngineThroughput/hotkey") +
                       (memoized ? "" : "_nocache") + "/t8";
    benchmark::RegisterBenchmark(name.c_str(), BM_EngineHotKey, memoized)
        ->Threads(8)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("EngineThroughput/warm_cachemiss/t1",
                               BM_EngineCacheMiss)
      ->Threads(1)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  for (bool overload : {false, true}) {
    std::string name = std::string("EngineThroughput/http_") +
                       (overload ? "overload" : "warm") + "/t8";
    benchmark::RegisterBenchmark(name.c_str(), BM_HttpServe, overload)
        ->Threads(8)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("EngineThroughput/store_warm/t1",
                               BM_StoreWarmServe)
      ->Threads(1)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  // Fixed iterations: the pre-interned pool bounds the durable append run,
  // and one recovery per iteration is already milliseconds of work.
  benchmark::RegisterBenchmark("EngineThroughput/store_append/t4",
                               BM_StoreAppend)
      ->Threads(4)
      ->Iterations(256)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("EngineThroughput/store_recovery/t1",
                               BM_StoreRecovery)
      ->Iterations(32)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  // Fixed iteration counts: the A/B pair does identical update work per
  // iteration, and the pre-interned individual pool bounds the run.
  for (bool incremental : {true, false}) {
    std::string name = std::string("EngineThroughput/warm_apply_") +
                       (incremental ? "delta" : "full") + "/t1";
    benchmark::RegisterBenchmark(name.c_str(), BM_EngineApply, incremental)
        ->Iterations(256)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
