// Prepared-OMQ engine throughput: N serving threads round-robin over M
// queries against one shared Engine, cold vs warm plan cache.
//
//   cold:  plan cache of capacity 1 with M > 1 queries — every serve misses
//          and pays the full rewrite + * transform + analysis pipeline.
//   warm:  capacity >= M, pre-warmed — every serve hits and goes straight
//          to evaluation over the shared snapshot (no rewrite at all).
//
// The warm/cold real_time ratio at a given thread count is the per-query
// speedup the plan cache buys; the committed baseline (BENCH_engine.json)
// shows >= 5x at 4 threads.  CacheHitRate confirms which regime a row
// measured.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/engine.h"
#include "util/logging.h"

namespace owlqr {
namespace bench {
namespace {

// Longer prefixes of sequence 1: rewriting work grows with the prefix, so a
// cold serve is rewrite-dominated the way a live endpoint would be.  The
// dataset is deliberately small and sparse for the same reason: this bench
// isolates the serve pipeline (prepare + plan), not join throughput, which
// the Table 3-5 benches already cover.
constexpr int kMinLength = 8;
constexpr int kNumQueries = 8;

const std::vector<ConjunctiveQuery>& Queries() {
  static const std::vector<ConjunctiveQuery>* queries = [] {
    auto* qs = new std::vector<ConjunctiveQuery>();
    Scenario& s = Scenario::Get();
    for (int i = 0; i < kNumQueries; ++i) {
      std::string word(kSequence1, 0,
                       static_cast<size_t>(kMinLength + i));
      qs->push_back(SequenceQuery(&s.vocab, word));
    }
    return qs;
  }();
  return *queries;
}

const DataInstance& Dataset() {
  static const DataInstance* data = [] {
    Scenario& s = Scenario::Get();
    DatasetConfig config{"engine", 60, 0.03, 0.1, 42};
    return new DataInstance(GenerateDataset(&s.vocab, *s.tbox, config));
  }();
  return *data;
}

PrepareOptions TablePrepareOptions() {
  PrepareOptions options;
  options.auto_kind = false;
  options.kind = RewriterKind::kTw;
  return options;
}

Engine& SharedEngine(bool warm) {
  static Engine* cold_engine = [] {
    EngineOptions options;
    options.plan_cache_capacity = 1;  // M > 1 queries: every serve misses.
    return new Engine(*Scenario::Get().tbox, Dataset(), nullptr, options);
  }();
  static Engine* warm_engine = [] {
    EngineOptions options;
    options.plan_cache_capacity = 2 * kNumQueries;
    auto* engine =
        new Engine(*Scenario::Get().tbox, Dataset(), nullptr, options);
    for (const ConjunctiveQuery& q : Queries()) {
      PrepareResult prepared = engine->Prepare(q, TablePrepareOptions());
      OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    }
    return engine;
  }();
  return warm ? *warm_engine : *cold_engine;
}

void BM_EngineServe(benchmark::State& state, bool warm) {
  // Touch the shared fixtures before timing starts (function-local statics
  // are built on first use, under the first thread to arrive).
  Engine& engine = SharedEngine(warm);
  const std::vector<ConjunctiveQuery>& queries = Queries();
  PrepareOptions prepare_options = TablePrepareOptions();
  ExecuteRequest request;
  request.limits.max_generated_tuples = TupleBudget();
  request.limits.max_work = 20 * TupleBudget();

  long serves = 0;
  long hits = 0;
  long answers = 0;
  size_t next = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    const ConjunctiveQuery& query = queries[next % queries.size()];
    next += static_cast<size_t>(state.threads());
    PrepareResult prepared = engine.Prepare(query, prepare_options);
    OWLQR_CHECK_MSG(prepared.ok(), prepared.status.ToString().c_str());
    ExecuteResult result = engine.Execute(*prepared.query, request);
    benchmark::DoNotOptimize(result.answers);
    ++serves;
    if (prepared.cache_hit) ++hits;
    answers += result.stats.goal_tuples;
  }
  state.counters["CacheHitRate"] = benchmark::Counter(
      serves > 0 ? static_cast<double>(hits) / serves : 0,
      benchmark::Counter::kAvgThreads);
  state.counters["Answers"] = benchmark::Counter(
      static_cast<double>(answers), benchmark::Counter::kAvgThreads);
  state.SetLabel(warm ? "warm cache" : "cold cache");
}

void RegisterAll() {
  for (bool warm : {false, true}) {
    for (int threads : {1, 4}) {
      std::string name = std::string("EngineThroughput/") +
                         (warm ? "warm" : "cold") + "/t" +
                         std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(), BM_EngineServe, warm)
          ->Threads(threads)
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
