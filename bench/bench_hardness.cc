// The negative results (Sections 4-5) as measurements: how the reference
// answering engine scales on the hardness constructions.
//  - Theorem 15 (hitting set): growing the parameter k.
//  - Theorem 17 (SAT, fixed ontology T-dagger): growing the CNF.
//  - Theorem 22 (hardest LOGCFL language, fixed T-double-dagger): word length.
// Counters report construction sizes (|T| axioms, |q| atoms).

#include <benchmark/benchmark.h>

#include "chase/certain_answers.h"
#include "reductions/hardest_logcfl.h"
#include "reductions/hitting_set.h"
#include "reductions/sat.h"

namespace owlqr {
namespace bench {
namespace {

void BM_HittingSet(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Hypergraph h{4, {{1, 3}, {2, 3}, {1, 2}, {2, 4}}};
  Vocabulary vocab;
  HittingSetOmq omq = MakeHittingSetOmq(&vocab, h, k);
  bool holds = false;
  for (auto _ : state) {
    holds = IsCertainAnswer(*omq.tbox, omq.query, omq.data, {});
    benchmark::DoNotOptimize(holds);
  }
  state.counters["TBoxAxioms"] = omq.tbox->NumAxioms();
  state.counters["QueryAtoms"] = static_cast<double>(omq.query.atoms().size());
  state.counters["Holds"] = holds ? 1 : 0;
}

void BM_SatOmq(benchmark::State& state) {
  int vars = static_cast<int>(state.range(0));
  // The "all distinct pairs" CNF over `vars` variables: satisfiable.
  Cnf phi;
  phi.num_vars = vars;
  for (int i = 1; i <= vars; ++i) {
    for (int j = i + 1; j <= vars; ++j) phi.clauses.push_back({i, j});
  }
  Vocabulary vocab;
  auto tbox = MakeTDagger(&vocab);
  ConjunctiveQuery query = MakeSatQuery(&vocab, *tbox, phi);
  DataInstance data = MakeSatData(&vocab);
  bool holds = false;
  for (auto _ : state) {
    holds = IsCertainAnswer(*tbox, query, data, {});
    benchmark::DoNotOptimize(holds);
  }
  state.counters["TBoxAxioms"] = tbox->NumAxioms();
  state.counters["QueryAtoms"] = static_cast<double>(query.atoms().size());
  state.counters["Holds"] = holds ? 1 : 0;
}

void BM_HardestLanguage(benchmark::State& state) {
  int blocks = static_cast<int>(state.range(0));
  // w = [a#b][ab...]: one choice block repeated; in L.
  std::string word;
  word += "[a#ab]";
  for (int i = 1; i < blocks; ++i) word += "[b#ba]";
  Vocabulary vocab;
  auto tbox = MakeTDoubleDagger(&vocab);
  ConjunctiveQuery query = MakeWordQuery(&vocab, word);
  DataInstance data = MakeWordData(&vocab);
  bool holds = false;
  for (auto _ : state) {
    holds = IsCertainAnswer(*tbox, query, data, {});
    benchmark::DoNotOptimize(holds);
  }
  state.counters["WordLength"] = static_cast<double>(word.size());
  state.counters["QueryAtoms"] = static_cast<double>(query.atoms().size());
  state.counters["Holds"] = holds ? 1 : 0;
  state.counters["InL"] = InHardestLanguage(word) ? 1 : 0;
}

BENCHMARK(BM_HittingSet)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SatOmq)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HardestLanguage)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
