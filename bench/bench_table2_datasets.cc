// Reproduces Table 2: the four Erdos-Renyi datasets (V, p, q, average vertex
// degree, number of atoms).  Counters report the generated statistics; the
// measured time is generation time.  Set OWLQR_SCALE=1 for the paper's sizes
// (default 0.1 keeps CI fast; the average degree is preserved by rescaling).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "data/data_instance.h"

namespace owlqr {
namespace bench {
namespace {

void BM_GenerateDataset(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  auto configs = Table2Configs(DatasetScale());
  const DatasetConfig& config = configs[state.range(0)];

  long atoms = 0;
  long vertices = 0;
  double avg_degree = 0;
  for (auto _ : state) {
    DataInstance data = GenerateDataset(&s.vocab, *s.tbox, config);
    atoms = data.NumAtoms();
    vertices = data.num_individuals();
    long edges = static_cast<long>(
        data.RolePairs(s.vocab.FindPredicate("R")).size());
    avg_degree = vertices > 0 ? static_cast<double>(edges) / vertices : 0;
    benchmark::DoNotOptimize(atoms);
  }
  state.counters["V"] = static_cast<double>(vertices);
  state.counters["p"] = config.edge_probability;
  state.counters["q"] = config.label_probability;
  state.counters["AvgDegree"] = avg_degree;
  state.counters["Atoms"] = static_cast<double>(atoms);
  state.SetLabel("dataset " + config.name);
}

void RegisterAll() {
  for (int i = 0; i < 4; ++i) {
    std::string name = "Table2/dataset" + std::to_string(i + 1);
    benchmark::RegisterBenchmark(name.c_str(), BM_GenerateDataset)
        ->Arg(i)
        ->Unit(benchmark::kMillisecond);
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
