// Reproduces Table 4: evaluation of the six rewritings of Sequence 2
// prefixes over the four Table 2 datasets (see eval_table_common.h).

#include "eval_table_common.h"

namespace owlqr {
namespace bench {
namespace {
int dummy = (RegisterEvalTable("Table4", 1), 0);
}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
