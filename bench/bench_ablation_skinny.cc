// Ablation: the Lemma 5 skinny transformation.  Compares the Log rewriting
// as produced (wide clauses) against its Huffman-binarised skinny form on
// both rewriting size and evaluation time.  The skinny form is what the
// LOGCFL evaluation bound is proved for; this measures its practical cost.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ndl/evaluator.h"
#include "ndl/skinny.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace bench {
namespace {

void BM_SkinnyAblation(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  int length = static_cast<int>(state.range(0));
  bool use_skinny = state.range(1) != 0;
  std::string word(kSequence1, 0, static_cast<size_t>(length));
  ConjunctiveQuery query = SequenceQuery(&s.vocab, word);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(s.ctx.get(), query, RewriterKind::kLog,
                                  options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);
  if (use_skinny) program = SkinnyTransform(program);

  auto configs = Table2Configs(DatasetScale());
  DataInstance data = GenerateDataset(&s.vocab, *s.tbox, configs[0]);
  EvaluationStats stats;
  for (auto _ : state) {
    Evaluator eval(program, data);
    auto answers = eval.Evaluate(&stats);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["Clauses"] = static_cast<double>(program.num_clauses());
  state.counters["Depth"] = static_cast<double>(program.Depth());
  state.counters["SkinnyDepthBound"] =
      static_cast<double>(SkinnyDepth(program));
  state.counters["GeneratedTuples"] =
      static_cast<double>(stats.generated_tuples);
  state.SetLabel(use_skinny ? "Log+skinny" : "Log");
}

void RegisterAll() {
  for (int length : {3, 6, 9, 12, 15}) {
    for (int skinny = 0; skinny <= 1; ++skinny) {
      std::string name = "AblationSkinny/len" + std::to_string(length) +
                         (skinny ? "/skinny" : "/wide");
      benchmark::RegisterBenchmark(name.c_str(), BM_SkinnyAblation)
          ->Args({length, skinny})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
