// Ablation: the splitting strategy (Section 6 discussion).  The three
// optimal rewriters differ only in how they pick splitting points — Lin
// slices by distance from the root, Log splits the tree decomposition
// balanced (Lemma 10), Tw splits at centroids with tree witnesses
// (Lemma 14).  This bench runs all three (plus Tw*) on identical OMQs and
// data so their evaluation profiles can be compared directly.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ndl/evaluator.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace bench {
namespace {

constexpr RewriterKind kOptimalKinds[] = {
    RewriterKind::kLin, RewriterKind::kLog, RewriterKind::kTw,
    RewriterKind::kTwStar};

void BM_SplitAblation(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  int sequence = static_cast<int>(state.range(0));
  int length = static_cast<int>(state.range(1));
  RewriterKind kind = kOptimalKinds[state.range(2)];
  std::string word(kSequences[sequence], 0, static_cast<size_t>(length));
  ConjunctiveQuery query = SequenceQuery(&s.vocab, word);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(s.ctx.get(), query, kind, options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);

  auto configs = Table2Configs(DatasetScale());
  DataInstance data = GenerateDataset(&s.vocab, *s.tbox, configs[1]);
  EvaluationStats stats;
  for (auto _ : state) {
    EvaluatorLimits limits;
    limits.max_generated_tuples = TupleBudget();
    limits.max_work = 20 * TupleBudget();
    Evaluator eval(program, data, limits);
    auto answers = eval.Evaluate(&stats);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["Clauses"] = static_cast<double>(program.num_clauses());
  state.counters["GeneratedTuples"] =
      static_cast<double>(stats.generated_tuples);
  state.counters["Answers"] = static_cast<double>(stats.goal_tuples);
  state.counters["Aborted"] = stats.aborted ? 1 : 0;
  state.SetLabel(std::string(RewriterName(kind)) + " " + word);
}

void RegisterAll() {
  for (int sequence = 0; sequence < 3; ++sequence) {
    for (int length : {5, 10, 15}) {
      for (int kind = 0; kind < 4; ++kind) {
        std::string name = "AblationSplit/seq" + std::to_string(sequence + 1) +
                           "/len" + std::to_string(length) + "/" +
                           RewriterName(kOptimalKinds[kind]);
        benchmark::RegisterBenchmark(name.c_str(), BM_SplitAblation)
            ->Args({sequence, length, kind})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
