#ifndef OWLQR_BENCH_BENCH_COMMON_H_
#define OWLQR_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "core/rewriters.h"
#include "core/rewriting_context.h"
#include "workloads/paper_workloads.h"

namespace owlqr {
namespace bench {

// Bakes the build type of *our* code into every bench report's context:
// the stock `context.library_build_type` reflects how the distro's
// libbenchmark package was compiled (debug on this image, regardless of our
// flags), so baseline hygiene keys on `owlqr_build_type` instead —
// tools/check_bench_json.sh rejects committed baselines that were not
// recorded from a release (NDEBUG) build of this repo.
inline int RegisterBuildTypeContext() {
#ifdef NDEBUG
  benchmark::AddCustomContext("owlqr_build_type", "release");
#else
  benchmark::AddCustomContext("owlqr_build_type", "debug");
#endif
  return 0;
}
inline int build_type_context_registered = RegisterBuildTypeContext();

// The Section 6 scenario: Example 11 ontology plus a shared rewriting
// context.  One static instance per bench binary.
struct Scenario {
  Vocabulary vocab;
  std::unique_ptr<TBox> tbox;
  std::unique_ptr<RewritingContext> ctx;

  Scenario() {
    tbox = MakeExample11TBox(&vocab);
    ctx = std::make_unique<RewritingContext>(*tbox);
  }

  static Scenario& Get() {
    static Scenario* instance = new Scenario();
    return *instance;
  }
};

// The rewriters in the column order of the paper's tables; UCQ stands in for
// Rapid/Clipper and PrestoLike for Presto (see DESIGN.md).
inline constexpr RewriterKind kTableKinds[] = {
    RewriterKind::kUcq, RewriterKind::kPrestoLike, RewriterKind::kLin,
    RewriterKind::kLog, RewriterKind::kTw,          RewriterKind::kTwStar};

inline const char* kSequences[3] = {kSequence1, kSequence2, kSequence3};

// Scale factor for the Table 2 datasets: OWLQR_SCALE in (0, 1], default 0.1
// (set OWLQR_SCALE=1 to reproduce the paper's sizes).
inline double DatasetScale() {
  const char* env = std::getenv("OWLQR_SCALE");
  return env != nullptr ? std::atof(env) : 0.1;
}

// IDB-tuple budget standing in for the paper's 999 s evaluation timeout.
inline long TupleBudget() {
  const char* env = std::getenv("OWLQR_TUPLE_BUDGET");
  return env != nullptr ? std::atol(env) : 2'000'000L;
}

// Per-stage tracing for the table benches: when enabled (the default), each
// cell installs a MetricsRegistry and reports rewrite / transform /
// index-build / join timings as extra benchmark counters, so a
// --benchmark_format=json run is self-profiling.  Set OWLQR_TRACE=0 for the
// untraced configuration used in overhead comparisons.
inline bool TraceEnabled() {
  const char* env = std::getenv("OWLQR_TRACE");
  return env == nullptr || std::atoi(env) != 0;
}

}  // namespace bench
}  // namespace owlqr

#endif  // OWLQR_BENCH_BENCH_COMMON_H_
