#ifndef OWLQR_BENCH_EVAL_TABLE_COMMON_H_
#define OWLQR_BENCH_EVAL_TABLE_COMMON_H_

// Shared driver for Tables 3, 4 and 5: evaluate the six rewritings of every
// 1..15-atom prefix of one query sequence over the four Table 2 datasets.
// Counters per cell: Answers, GeneratedTuples, Clauses, Aborted (the tuple
// budget standing in for the paper's 999 s timeout).  Mirrors the paper's
// setup: rewritings over arbitrary instances, evaluated by materialising all
// IDB predicates.

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>

#include "bench_common.h"
#include "ndl/evaluator.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {
namespace bench {

inline const DataInstance& CachedDataset(int index) {
  static std::map<int, DataInstance>* cache = new std::map<int, DataInstance>();
  auto it = cache->find(index);
  if (it != cache->end()) return it->second;
  Scenario& s = Scenario::Get();
  auto configs = Table2Configs(DatasetScale());
  DataInstance data = GenerateDataset(&s.vocab, *s.tbox, configs[index]);
  return cache->emplace(index, std::move(data)).first->second;
}

inline void BM_EvalCell(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  const char* sequence = kSequences[state.range(0)];
  int length = static_cast<int>(state.range(1));
  RewriterKind kind = kTableKinds[state.range(2)];
  int dataset = static_cast<int>(state.range(3));

  std::string word(sequence, 0, static_cast<size_t>(length));
  ConjunctiveQuery query = SequenceQuery(&s.vocab, word);
  RewriteOptions options;
  options.arbitrary_instances = true;

  // Per-stage trace of this cell (rewrite included); see TraceEnabled().
  MetricsRegistry metrics;
  const bool trace = TraceEnabled();
  if (trace) MetricsRegistry::SetGlobal(&metrics);

  auto rewrite_start = std::chrono::steady_clock::now();
  RewriteResult rewritten = RewriteOmqOrError(s.ctx.get(), query, kind,
                                              options);
  OWLQR_CHECK_MSG(rewritten.ok(), rewritten.status.ToString().c_str());
  const NdlProgram& program = rewritten.program;
  double rewrite_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - rewrite_start)
                          .count();
  const DataInstance& data = CachedDataset(dataset);

  ExecuteRequest request;
  request.limits.max_generated_tuples = TupleBudget();
  request.limits.max_work = 20 * TupleBudget();
  ExecuteResult result;
  for (auto _ : state) {
    Evaluator eval(program, data);
    result = eval.Run(request);
    benchmark::DoNotOptimize(result.answers);
  }
  const EvaluationStats& stats = result.stats;
  state.counters["Answers"] = static_cast<double>(stats.goal_tuples);
  state.counters["GeneratedTuples"] =
      static_cast<double>(stats.generated_tuples);
  state.counters["Clauses"] = static_cast<double>(program.num_clauses());
  state.counters["Aborted"] =
      stats.aborted || rewritten.diag.truncated ? 1 : 0;
  state.counters["RewriteMs"] = rewrite_ms;
  if (trace) {
    MetricsRegistry::SetGlobal(nullptr);
    double transform_ms = 0;
    double join_ms = 0;
    double edb_ms = 0;
    for (const MetricsRegistry::Span& span : metrics.spans()) {
      // Only the top-level transforms the table rewrites use (nested
      // safety/prune spans would double-count).
      if (span.name == "transform/star" ||
          span.name == "transform/linear-star") {
        transform_ms += span.duration_ms;
      } else if (span.name == "evaluate/join") {
        join_ms += span.duration_ms;
      } else if (span.name == "evaluate/edb") {
        edb_ms += span.duration_ms;
      }
    }
    MetricsRegistry::TimerStats index = metrics.timer(
        "evaluator/index_build_ms");
    state.counters["TransformMs"] = transform_ms;
    state.counters["IndexBuildMs"] = index.sum;
    state.counters["JoinMs"] = join_ms;
    state.counters["EdbMs"] = edb_ms;
    state.counters["JoinEmissions"] =
        static_cast<double>(metrics.counter("evaluator/join_emissions"));
    state.counters["DedupNewTuples"] =
        static_cast<double>(metrics.counter("evaluator/new_tuples"));
  }
  state.SetLabel(std::string(RewriterName(kind)) + " " + word + " ds" +
                 std::to_string(dataset + 1));
}

inline void RegisterEvalTable(const char* table, int sequence_index,
                              int max_length = 15) {
  for (int dataset = 0; dataset < 4; ++dataset) {
    for (int length = 1; length <= max_length; ++length) {
      for (int kind = 0; kind < 6; ++kind) {
        std::string name = std::string(table) + "/ds" +
                           std::to_string(dataset + 1) + "/len" +
                           std::to_string(length) + "/" +
                           RewriterName(kTableKinds[kind]);
        benchmark::RegisterBenchmark(name.c_str(), BM_EvalCell)
            ->Args({sequence_index, length, kind, dataset})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace bench
}  // namespace owlqr

#endif  // OWLQR_BENCH_EVAL_TABLE_COMMON_H_
