// Validation of the Section 6 cost-model proposal: per rewriting, the
// model's estimated materialised-tuple count next to the measured one, and
// which strategy the cost-based selector would pick.  The model only needs
// to get the *ordering* right to be useful as a planner.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/cost_model.h"
#include "ndl/evaluator.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace bench {
namespace {

void BM_CostModel(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  int sequence = static_cast<int>(state.range(0));
  int length = static_cast<int>(state.range(1));
  RewriterKind kind = kTableKinds[state.range(2)];
  std::string word(kSequences[sequence], 0, static_cast<size_t>(length));
  ConjunctiveQuery query = SequenceQuery(&s.vocab, word);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(s.ctx.get(), query, kind, options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);

  auto configs = Table2Configs(DatasetScale());
  DataInstance data = GenerateDataset(&s.vocab, *s.tbox, configs[1]);
  DataStatistics stats = DataStatistics::FromInstance(data);
  double estimated = EstimateEvaluationCost(program, stats);

  RewriterKind chosen;
  CostBasedRewrite(s.ctx.get(), query, stats, options, &chosen);

  EvaluationStats measured;
  for (auto _ : state) {
    EvaluatorLimits limits;
    limits.max_generated_tuples = TupleBudget();
    limits.max_work = 20 * TupleBudget();
    Evaluator eval(program, data, limits);
    auto answers = eval.Evaluate(&measured);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["EstimatedTuples"] = estimated;
  state.counters["MeasuredTuples"] =
      static_cast<double>(measured.generated_tuples);
  state.counters["Aborted"] = measured.aborted ? 1 : 0;
  state.SetLabel(std::string(RewriterName(kind)) + " " + word +
                 " (selector picks " + RewriterName(chosen) + ")");
}

void RegisterAll() {
  for (int sequence = 0; sequence < 3; ++sequence) {
    for (int length : {5, 10}) {
      for (int kind : {2, 3, 5}) {  // Lin, Log, Tw*.
        std::string name = "CostModel/seq" + std::to_string(sequence + 1) +
                           "/len" + std::to_string(length) + "/" +
                           RewriterName(kTableKinds[kind]);
        benchmark::RegisterBenchmark(name.c_str(), BM_CostModel)
            ->Args({sequence, length, kind})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
