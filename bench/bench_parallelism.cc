// The parallelisability angle of the paper's complexity results: LOGCFL
// rewritings (Log, Tw) have logarithmic dependence depth — "in theory, such
// algorithms are known to be space efficient and highly parallelisable"
// (Section 1).  This bench reports, per rewriting, the machine-independent
// parallel profile — dependence depth (parallel steps) and level widths
// (available parallelism) — plus the wall-clock of the dependency-DAG
// scheduler (barrier-free, with intra-clause morsel parallelism) at 1 and 4
// threads.  SlowestTaskMs is the critical-path floor a perfectly parallel
// inter-predicate schedule cannot beat — morsels exist to dig below it.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "ndl/evaluator.h"
#include "util/logging.h"
#include <utility>

namespace owlqr {
namespace bench {
namespace {

void BM_Parallelism(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  int length = static_cast<int>(state.range(0));
  RewriterKind kind = kTableKinds[state.range(1)];
  int threads = static_cast<int>(state.range(2));
  const bool batch = state.range(3) != 0;
  std::string word(kSequence1, 0, static_cast<size_t>(length));
  ConjunctiveQuery query = SequenceQuery(&s.vocab, word);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(s.ctx.get(), query, kind, options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);

  auto levels = program.TopologicalLevels();
  size_t max_width = 0;
  size_t total = 0;
  for (const auto& level : levels) {
    max_width = std::max(max_width, level.size());
    total += level.size();
  }

  auto configs = Table2Configs(DatasetScale());
  DataInstance data = GenerateDataset(&s.vocab, *s.tbox, configs[0]);
  EvaluationStats stats;
  for (auto _ : state) {
    EvaluatorLimits limits;
    limits.max_generated_tuples = TupleBudget();
    limits.max_work = 20 * TupleBudget();
    if (!batch) limits.batch_rows = 0;  // Scalar tuple-at-a-time oracle.
    Evaluator eval(program, data, limits);
    auto answers = eval.EvaluateParallel(threads, &stats);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["ParallelDepth"] = static_cast<double>(levels.size());
  state.counters["MaxLevelWidth"] = static_cast<double>(max_width);
  state.counters["IdbPredicates"] = static_cast<double>(total);
  state.counters["GeneratedTuples"] =
      static_cast<double>(stats.generated_tuples);
  state.counters["IndexBuilds"] = static_cast<double>(stats.index_builds);
  state.counters["SchedulerTasks"] =
      static_cast<double>(stats.scheduler_tasks);
  state.counters["MorselBatches"] = static_cast<double>(stats.morsel_batches);
  state.counters["Morsels"] = static_cast<double>(stats.morsels);
  state.counters["SlowestTaskMs"] = stats.slowest_task_ms;
  state.counters["JoinEmissions"] = static_cast<double>(stats.join_emissions);
  state.counters["StealCount"] = static_cast<double>(stats.steals);
  state.counters["BatchRows"] = static_cast<double>(stats.batch_rows);
  state.counters["BatchProbes"] = static_cast<double>(stats.batch_probes);
  state.SetLabel(std::string(RewriterName(kind)) + " " + word + " t" +
                 std::to_string(threads) + (batch ? "" : " scalar"));
}

// Same-binary batch-vs-scalar A/B on the heaviest cell (Tw, len 15), at a
// fixed dataset scale of 0.3 regardless of OWLQR_SCALE: at the default 0.1
// the Table 2 relations and their dedup tables sit entirely in cache, which
// hides the memory-level parallelism (batched hashing, probe prefetch) the
// columnar path exists to exploit.  0.3 spills, so the recorded ratio
// reflects out-of-cache behaviour.  Three iterations average out scheduler
// jitter; batch and scalar legs are registered adjacently so machine drift
// between them stays small.  check_bench_json.sh enforces the t4 floor
// (scalar_time >= 1.5 * batch_time) against these entries.
void BM_BatchAB(benchmark::State& state) {
  Scenario& s = Scenario::Get();
  const int threads = static_cast<int>(state.range(0));
  const bool batch = state.range(1) != 0;
  std::string word(kSequence1, 0, 15);
  ConjunctiveQuery query = SequenceQuery(&s.vocab, word);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult program_rw = RewriteOmqOrError(s.ctx.get(), query, RewriterKind::kTw, options);
  OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
  NdlProgram program = std::move(program_rw.program);
  auto configs = Table2Configs(0.3);
  DataInstance data = GenerateDataset(&s.vocab, *s.tbox, configs[0]);
  EvaluationStats stats;
  auto run = [&]() {
    EvaluatorLimits limits;
    limits.max_generated_tuples = 10'000'000;
    limits.max_work = 200'000'000;
    if (!batch) limits.batch_rows = 0;  // Scalar tuple-at-a-time oracle.
    Evaluator eval(program, data, limits);
    auto answers = eval.EvaluateParallel(threads, &stats);
    benchmark::DoNotOptimize(answers);
  };
  run();  // Untimed warmup: lets the clock governor and caches settle.
  for (auto _ : state) run();
  state.counters["GeneratedTuples"] =
      static_cast<double>(stats.generated_tuples);
  state.counters["JoinEmissions"] = static_cast<double>(stats.join_emissions);
  state.counters["StealCount"] = static_cast<double>(stats.steals);
  state.counters["BatchRows"] = static_cast<double>(stats.batch_rows);
  state.counters["BatchProbes"] = static_cast<double>(stats.batch_probes);
  state.SetLabel("Tw " + word + " t" + std::to_string(threads) +
                 (batch ? " batch" : " scalar") + " scale0.3");
}

void RegisterAll() {
  for (int length : {7, 15}) {
    for (int kind : {2, 3, 4}) {  // Lin, Log, Tw.
      for (int threads : {1, 4}) {
        std::string name = "Parallelism/len" + std::to_string(length) + "/" +
                           RewriterName(kTableKinds[kind]) + "/t" +
                           std::to_string(threads);
        benchmark::RegisterBenchmark(name.c_str(), BM_Parallelism)
            ->Args({length, kind, threads, 1})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  for (int threads : {1, 4}) {
    for (int batch : {1, 0}) {  // Adjacent legs: batch first, then scalar.
      std::string name = "Parallelism/len15/Tw/ab/t" +
                         std::to_string(threads) +
                         (batch != 0 ? "" : "/scalar");
      benchmark::RegisterBenchmark(name.c_str(), BM_BatchAB)
          ->Args({threads, batch})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(5);
    }
  }
}

int dummy = (RegisterAll(), 0);

}  // namespace
}  // namespace bench
}  // namespace owlqr

BENCHMARK_MAIN();
