#!/bin/sh
# Counter-parity gate for the columnar batch executor: the sequential (t1)
# parallelism cells must report exactly the GeneratedTuples / JoinEmissions
# the scalar tuple-at-a-time executor has always produced — the batch
# refactor is required to preserve the emission sequence byte for byte, so
# any drift here means the vectorised joins changed observable behaviour
# (different dedup outcome, different clause order, a lost or double-counted
# emission), not just performance.
#
# Runs the committed expectation against a live binary (OWLQR_SCALE=0.1,
# the default bench scale the values were recorded at).
# Usage: check_counters_identical.sh <bench_parallelism-binary>
# Registered as the ctest test `hygiene/batch_counter_parity`.
set -eu

BIN="${1:?usage: check_counters_identical.sh <bench_parallelism-binary>}"
if [ ! -x "$BIN" ]; then
  echo "FAIL: $BIN not built (cmake --build <dir> --target bench_parallelism)"
  exit 1
fi

# Only the six default-scale sequential cells; the /ab/ A/B cells run at
# their own fixed scale and are validated by check_bench_json.sh instead.
OWLQR_SCALE=0.1 "$BIN" \
    --benchmark_filter='Parallelism/len(7|15)/(Lin|Log|Tw)/t1/' \
    --benchmark_format=json 2>/dev/null | python3 -c '
import json
import sys

# The scalar executor reference values at OWLQR_SCALE=0.1 (per-benchmark
# counters are top-level keys of each benchmarks[] entry).
WANT = {
    "Parallelism/len7/Lin/t1":   (562,   562),
    "Parallelism/len7/Log/t1":   (8589,  15672),
    "Parallelism/len7/Tw/t1":    (29671, 169090),
    "Parallelism/len15/Lin/t1":  (7769,  7769),
    "Parallelism/len15/Log/t1":  (21079, 28808),
    "Parallelism/len15/Tw/t1":   (70710, 353620),
}

data = json.load(sys.stdin)
seen = {}
for b in data.get("benchmarks", []):
    for prefix in WANT:
        if b["name"].startswith(prefix + "/"):
            seen[prefix] = (int(b.get("GeneratedTuples", -1)),
                            int(b.get("JoinEmissions", -1)))

status = 0
for prefix, want in WANT.items():
    got = seen.get(prefix)
    if got is None:
        print(f"FAIL: {prefix} did not run")
        status = 1
    elif got != want:
        print(f"FAIL: {prefix}: (GeneratedTuples, JoinEmissions) = {got}, "
              f"want {want} — the batch executor changed the emission "
              f"sequence")
        status = 1
if status == 0:
    print(f"OK: {len(WANT)} t1 cells match the scalar reference counters")
sys.exit(status)
'
