#!/bin/sh
# Rejects call sites of retired abort-on-error entry points:
#   - `RewriteOmq(...)`: removed; use `RewriteOmqOrError` (non-aborting,
#     returns RewriteResult{status, program, diag}) or the owlqr::Engine
#     facade.
#   - unchecked `Engine::ApplyFacts(...)`: removed; use `ApplyFactsOrError`
#     (returns Status, reports the installed snapshot version via out-param).
# The allowlist is empty and must stay empty: the migration is complete, and
# this check exists so the deprecated spellings never come back.
# Registered as the ctest test `hygiene/deprecated_api`.
set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT" || exit 1

# Intentionally empty.  Grow it only with a written justification in the
# same commit; the stale-entry check below deletes entries automatically
# once a file migrates.
ALLOWLIST="
"

in_allowlist() {
  for entry in $ALLOWLIST; do
    if [ "$1" = "$entry" ]; then
      return 0
    fi
  done
  return 1
}

status=0

# 1. RewriteOmq(...) -- matches the bare name only, not RewriteOmqOrError.
for file in $(grep -rl '\bRewriteOmq(' \
                  --include='*.cc' --include='*.cpp' --include='*.h' \
                  src bench examples tests tools 2>/dev/null | sort); do
  if in_allowlist "$file"; then
    continue
  fi
  echo "FAIL: $file calls removed RewriteOmq(); use RewriteOmqOrError" \
       "or owlqr::Engine instead (see tools/check_deprecated_api.sh)"
  grep -n '\bRewriteOmq(' "$file" | head -5
  status=1
done

# 2. Unchecked Engine::ApplyFacts(...) through an object -- `x.ApplyFacts(`
#    or `x->ApplyFacts(`.  ApplyFactsOrError and the HTTP api::Service /
#    HttpClient verbs of the same name are fine: src/server/ itself is
#    exempt, and elsewhere a receiver whose identifier ends in `client`
#    (`client.ApplyFacts(...)`, `http_client->ApplyFacts(...)`) is the
#    Status-returning wire verb, not the retired Engine shim.
for file in $(grep -rlE '(\.|->)ApplyFacts\(' \
                  --include='*.cc' --include='*.cpp' --include='*.h' \
                  src bench examples tests tools 2>/dev/null | sort); do
  case "$file" in
    src/server/*) continue ;;
  esac
  if in_allowlist "$file"; then
    continue
  fi
  matches=$(grep -nE '(\.|->)ApplyFacts\(' "$file" |
            grep -vE '[A-Za-z0-9_]*[Cc]lient_?(\.|->)ApplyFacts\(')
  [ -z "$matches" ] && continue
  echo "FAIL: $file calls removed unchecked Engine::ApplyFacts();" \
       "use ApplyFactsOrError (see tools/check_deprecated_api.sh)"
  printf '%s\n' "$matches" | head -5
  status=1
done

# Keep the allowlist honest: an entry whose file no longer calls a deprecated
# spelling (or no longer exists) must be removed, so the list only shrinks.
for entry in $ALLOWLIST; do
  if [ ! -f "$entry" ] ||
     ! grep -qE '\bRewriteOmq\(|(\.|->)ApplyFacts\(' "$entry"; then
    echo "FAIL: stale allowlist entry $entry in tools/check_deprecated_api.sh" \
         "(file migrated or removed -- delete the entry)"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "OK: no deprecated RewriteOmq / unchecked ApplyFacts call sites"
fi
exit $status
