#!/bin/sh
# Rejects NEW call sites of the deprecated abort-on-error `RewriteOmq(...)`
# entry point outside src/core/.  New code must use `RewriteOmqOrError`
# (non-aborting, returns RewriteResult{status, program, diag}) or go through
# the owlqr::Engine facade.  Existing callers below are grandfathered; shrink
# this list when migrating a file, never grow it.
# Registered as the ctest test `hygiene/deprecated_api`.
set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT" || exit 1

# Grandfathered callers (relative paths).  src/core/ is exempt wholesale:
# it owns the definition and the deprecated shim itself.
ALLOWLIST="
bench/bench_ablation_inline.cc
bench/bench_ablation_skinny.cc
bench/bench_ablation_split.cc
bench/bench_cost_model.cc
bench/bench_fig1b_pe_succinctness.cc
bench/bench_parallelism.cc
examples/obda_mapping.cpp
examples/paper_example.cpp
examples/university_obda.cpp
tests/api_misuse_test.cc
tests/complexity_properties_test.cc
tests/cost_model_test.cc
tests/dot_test.cc
tests/fig2_regression_test.cc
tests/inconsistency_guard_test.cc
tests/linear_evaluator_test.cc
tests/log_cyclic_test.cc
tests/mapping_parser_test.cc
tests/mapping_test.cc
tests/ndl_parser_test.cc
tests/optimize_test.cc
tests/parallel_evaluator_test.cc
tests/pe_test.cc
tests/rewriter_test.cc
tests/sequence_sweep_test.cc
tests/sql_export_test.cc
"

status=0
for file in $(grep -rl '\bRewriteOmq(' \
                  --include='*.cc' --include='*.cpp' --include='*.h' \
                  src bench examples tests tools 2>/dev/null | sort); do
  case "$file" in
    src/core/*) continue ;;
  esac
  allowed=0
  for entry in $ALLOWLIST; do
    if [ "$file" = "$entry" ]; then
      allowed=1
      break
    fi
  done
  if [ "$allowed" -eq 0 ]; then
    echo "FAIL: $file calls deprecated RewriteOmq(); use RewriteOmqOrError" \
         "or owlqr::Engine instead (see tools/check_deprecated_api.sh)"
    grep -n '\bRewriteOmq(' "$file" | head -5
    status=1
  fi
done

# Keep the allowlist honest: an entry whose file no longer calls RewriteOmq
# (or no longer exists) must be removed, so the list only shrinks.
for entry in $ALLOWLIST; do
  if [ ! -f "$entry" ] || ! grep -q '\bRewriteOmq(' "$entry"; then
    echo "FAIL: stale allowlist entry $entry in tools/check_deprecated_api.sh" \
         "(file migrated or removed -- delete the entry)"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "OK: no new deprecated RewriteOmq call sites outside src/core/"
fi
exit $status
