#!/bin/sh
# Smoke-checks the HTTP serving front end end to end: starts the CLI with
# --serve=0 (ephemeral port) over a governed single-tenant registry, then
# curls every v1 endpoint and validates each response against the DESIGN.md
# §13 schemas -- tenants listing, prepare plan shape, execute answers,
# apply-facts snapshot bump, stats counters, /metrics trace JSON, the error
# envelope for malformed bodies and unknown tenants.  Finally it saturates
# the single execution slot with parallel executes of a heavy join and
# requires at least one 429 whose body still parses as a full execute
# result with status REJECTED.
# Usage: check_http_api.sh <path-to-example_owlqr_cli>
# Registered as the ctest test `hygiene/http_api`.
set -u

CLI="${1:?usage: check_http_api.sh <path-to-example_owlqr_cli>}"

tmp=$(mktemp -d) || exit 1
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

cat > "$tmp/onto.txt" <<'EOF'
Professor SUB EX teaches
EX teaches- SUB Course
lectures SUBR teaches
EOF

# Dense course blocks: the 4-atom path query below walks each lecturer set
# against itself twice, so one execute holds the governor slot long enough
# for the parallel overload phase to shed.
python3 - "$tmp/data.txt" <<'EOF'
import sys
with open(sys.argv[1], "w") as f:
    for c in range(4):
        for i in range(25):
            f.write(f"lectures(p{c * 25 + i}, c{c}).\n")
    f.write("Professor(solo).\n")
EOF

QUERY='q(x, w) :- teaches(x, y), teaches(z, y), teaches(z, v), teaches(w, v)'

"$CLI" "$tmp/onto.txt" "$tmp/data.txt" --serve=0 --threads=12 \
    --max-concurrent=1 --queue-timeout-ms=5 2> "$tmp/serve.log" &
SERVER_PID=$!

# The CLI prints the bound ephemeral port once serving.
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT=$(sed -n 's/.*http:\/\/127\.0\.0\.1:\([0-9]*\).*/\1/p' "$tmp/serve.log")
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server exited during startup"
    cat "$tmp/serve.log"
    exit 1
  fi
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$PORT" ]; then
  echo "FAIL: server never reported its port"
  cat "$tmp/serve.log"
  exit 1
fi
BASE="http://127.0.0.1:$PORT"

# request NAME METHOD PATH [BODY] -> writes $tmp/NAME.body, $tmp/NAME.code
request() {
  name=$1; method=$2; path=$3; body=${4:-}
  if [ "$method" = GET ]; then
    curl -s -o "$tmp/$name.body" -w '%{http_code}' "$BASE$path" \
        > "$tmp/$name.code"
  else
    curl -s -o "$tmp/$name.body" -w '%{http_code}' -X POST \
        -H 'Content-Type: application/json' --data "$body" "$BASE$path" \
        > "$tmp/$name.code"
  fi
}

expect_code() {
  name=$1; want=$2
  got=$(cat "$tmp/$name.code")
  if [ "$got" != "$want" ]; then
    echo "FAIL: $name returned HTTP $got, want $want"
    cat "$tmp/$name.body"
    exit 1
  fi
}

request tenants GET /v1/tenants
expect_code tenants 200
request prepare POST /v1/t/default/prepare "{\"query\": \"$QUERY\"}"
expect_code prepare 200
request execute POST /v1/t/default/execute "{\"query\": \"$QUERY\"}"
expect_code execute 200
request apply POST /v1/t/default/apply-facts \
    '{"roles": [{"role": "lectures", "subject": "fresh", "object": "c0"}]}'
expect_code apply 200
request execute2 POST /v1/t/default/execute "{\"query\": \"$QUERY\"}"
expect_code execute2 200
request stats GET /v1/t/default/stats
expect_code stats 200
request metrics GET /metrics
expect_code metrics 200
request badbody POST /v1/t/default/execute 'this is not json'
expect_code badbody 400
request ghost POST /v1/t/ghost/execute "{\"query\": \"$QUERY\"}"
expect_code ghost 404

python3 - "$tmp" <<'EOF'
import json
import sys

tmp = sys.argv[1]
def load(name):
    with open(f"{tmp}/{name}.body") as f:
        return json.load(f)

tenants = load("tenants")
assert tenants["api_version"] == 1, tenants
entry = tenants["tenants"][0]
assert entry["name"] == "default", entry
int(entry["fingerprint"], 16)  # Lower-case hex.
assert entry["slots"] == 1, entry

prepare = load("prepare")
assert prepare["clauses"] > 0, prepare
assert prepare["rewriter"] in ("lin", "log", "tw", "twstar", "ucq", "presto"), \
    prepare

execute = load("execute")
assert execute["status"]["code"] == "OK", execute["status"]
assert execute["snapshot_version"] == 1, execute
assert len(execute["answers"]) > 0, "no answers"
width = len(execute["answers"][0])
assert all(len(t) == width for t in execute["answers"]), "ragged tuples"

apply = load("apply")
assert apply["snapshot_version"] == 2, apply

execute2 = load("execute2")
assert execute2["snapshot_version"] == 2, execute2
assert len(execute2["answers"]) > len(execute["answers"]), \
    "applied fact did not grow the answers"
assert any("fresh" in t for t in execute2["answers"]), \
    "applied fact missing from answers"

stats = load("stats")
assert stats["tenant"] == "default", stats
assert stats["snapshot_version"] == 2, stats
assert stats["governor"]["admitted"] >= 2, stats["governor"]
assert "plan_cache" in stats and "answer_cache" in stats, stats

metrics = load("metrics")
for key in ("counters", "timers", "spans"):
    assert key in metrics, f"metrics missing {key!r}"

for name, code in (("badbody", "INVALID_ARGUMENT"), ("ghost", "NOT_FOUND")):
    envelope = load(name)
    assert envelope["error"]["code"] == code, envelope
    assert envelope["error"]["http"] in (400, 404), envelope
EOF
[ $? -eq 0 ] || exit 1

# Overload: 8 parallel executes against 1 slot and a 5 ms queue budget --
# some must be shed as 429, and every 429 body must still be a full execute
# result with status REJECTED.
k=0
LOAD_PIDS=""
while [ $k -lt 8 ]; do
  # Unique limits defeat the answer cache and coalescing, so every request
  # competes for the slot.
  request "load$k" POST /v1/t/default/execute \
      "{\"query\": \"$QUERY\", \"limits\": {\"max_generated_tuples\": $((9000000 + k))}}" &
  LOAD_PIDS="$LOAD_PIDS $!"
  k=$((k + 1))
done
for pid in $LOAD_PIDS; do
  wait "$pid"
done

python3 - "$tmp" <<'EOF'
import json
import sys

tmp = sys.argv[1]
codes = []
for k in range(8):
    with open(f"{tmp}/load{k}.code") as f:
        codes.append(f.read().strip())
    with open(f"{tmp}/load{k}.body") as f:
        body = json.load(f)
    if codes[-1] == "429":
        assert body["status"]["code"] == "REJECTED", body["status"]
        assert body["answers"] == [], "shed result carried answers"
    else:
        assert codes[-1] == "200", f"load{k}: HTTP {codes[-1]}"
        assert body["status"]["code"] == "OK", body["status"]
assert "429" in codes, f"no shed under overload: {codes}"
assert "200" in codes, f"nothing admitted under overload: {codes}"
EOF
[ $? -eq 0 ] || exit 1

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
status=$?
SERVER_PID=""
if [ "$status" -ne 0 ]; then
  echo "FAIL: server exited with $status on SIGTERM"
  cat "$tmp/serve.log"
  exit 1
fi

echo "OK: http api serves, validates, bumps snapshots, and sheds under load"
