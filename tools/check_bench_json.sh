#!/bin/sh
# Validates committed benchmark baseline JSONs: each file must parse, hold a
# non-empty "benchmarks" array, every entry must carry a real_time, and the
# recording build must have been a release one (context.owlqr_build_type;
# the stock library_build_type reflects the distro's libbenchmark, not our
# flags).  The parallelism baseline must additionally cover both thread
# counts, report the scheduler and batch-executor counters (JoinEmissions,
# StealCount, BatchRows, BatchProbes), and show the columnar executor
# beating the scalar oracle by >= 1.5x on the Tw/len15 t4 A/B cell — so
# neither a stale pre-scheduler baseline nor a perf regression of the batch
# path can sneak back in.  The engine baseline must cover the cold/warm x
# t1/t4 grid with the expected cache-hit rates, warm serves must be
# substantially faster than cold ones (the whole point of the plan cache),
# and the governed overload scenario must report shedding and
# admitted-latency percentiles.
# Usage: check_bench_json.sh <file.json>...
# Registered as the ctest test `hygiene/bench_json`.
set -u

status=0
for file in "$@"; do
  if [ ! -f "$file" ]; then
    echo "FAIL: $file missing (tools/run_bench_baseline.sh regenerates it)"
    status=1
    continue
  fi
  python3 - "$file" <<'EOF' || status=1
import json
import os
import sys

path = sys.argv[1]
with open(path) as f:
    data = json.load(f)

benches = data.get("benchmarks")
assert isinstance(benches, list) and benches, f"{path}: no benchmarks array"
for b in benches:
    assert "name" in b and "real_time" in b, f"{path}: malformed entry {b}"

build_type = data.get("context", {}).get("owlqr_build_type")
assert build_type == "release", \
    f"{path}: owlqr_build_type is {build_type!r}, want 'release' — " \
    f"regenerate from a Release (NDEBUG) build"

if os.path.basename(path) == "BENCH_parallelism.json":
    names = {b["name"] for b in benches}
    for needle in ("t1", "t4"):
        assert any(needle in n for n in names), \
            f"{path}: missing {needle} configurations"
    sample = next(b for b in benches if "len15" in b["name"])
    for counter in ("SchedulerTasks", "GeneratedTuples", "JoinEmissions",
                    "StealCount", "BatchRows", "BatchProbes"):
        assert counter in sample, f"{path}: missing counter {counter}"
    # The same-binary batch-vs-scalar A/B (Tw/len15 at the fixed A/B scale;
    # see bench_parallelism.cc): both legs must agree on the deterministic
    # counters — same answers, same emission sequence — and at t4 the
    # columnar executor must hold a >= 1.5x advantage over the scalar
    # oracle.  Matched by prefix: fixed-iteration registrations append an
    # /iterations suffix.
    def ab(threads, scalar):
        prefix = f"Parallelism/len15/Tw/ab/{threads}/"
        rows = [b for b in benches if b["name"].startswith(prefix) and
                ("/scalar" in b["name"]) == scalar]
        assert rows, f"{path}: missing {prefix} " \
                     f"{'scalar' if scalar else 'batch'} leg " \
                     f"(regenerate the baseline)"
        return rows[0]
    for threads in ("t1", "t4"):
        batch = ab(threads, scalar=False)
        scalar = ab(threads, scalar=True)
        for counter in ("GeneratedTuples", "JoinEmissions"):
            assert batch.get(counter) == scalar.get(counter), \
                f"{path}: ab/{threads} {counter} differs between batch " \
                f"({batch.get(counter)}) and scalar ({scalar.get(counter)})"
        assert batch.get("BatchRows", 0) > 0, \
            f"{path}: ab/{threads} batch leg reports no BatchRows — " \
            f"the columnar path never ran"
        assert scalar.get("BatchRows", 1) == 0, \
            f"{path}: ab/{threads} scalar leg reports BatchRows — " \
            f"the oracle ran the batch path"
    t4_batch = ab("t4", scalar=False)["real_time"]
    t4_scalar = ab("t4", scalar=True)["real_time"]
    assert t4_scalar >= 1.5 * t4_batch, \
        f"{path}: batch executor advantage below the 1.5x floor at t4 " \
        f"(batch {t4_batch:.1f}, scalar {t4_scalar:.1f}, " \
        f"ratio {t4_scalar / t4_batch:.2f})"

if os.path.basename(path) == "BENCH_engine.json":
    by_name = {b["name"]: b for b in benches}
    for mode, hit_rate in (("cold", 0.0), ("warm", 1.0)):
        for threads in ("t1", "t4"):
            name = f"EngineThroughput/{mode}/{threads}/real_time/threads:" \
                   f"{threads[1:]}"
            assert name in by_name, f"{path}: missing {name}"
            rate = by_name[name].get("CacheHitRate")
            assert rate == hit_rate, \
                f"{path}: {name} CacheHitRate {rate}, want {hit_rate}"
    for threads in ("t1", "t4"):
        cold = by_name[f"EngineThroughput/cold/{threads}/real_time/"
                       f"threads:{threads[1:]}"]["real_time"]
        warm = by_name[f"EngineThroughput/warm/{threads}/real_time/"
                       f"threads:{threads[1:]}"]["real_time"]
        # The committed baseline shows >= 5x; 2x here tolerates noisy
        # regeneration machines while still catching a dead cache.
        assert warm * 2 < cold, \
            f"{path}: warm serve not faster than cold at {threads} " \
            f"(warm {warm}, cold {cold})"
    # The governed-overload scenario: 8 threads against 4 slots must shed
    # some load (a ShedRate of 0 means admission control never engaged) and
    # report both admitted-latency percentiles.
    overload = "EngineThroughput/overload/t8/real_time/threads:8"
    assert overload in by_name, f"{path}: missing {overload}"
    row = by_name[overload]
    for counter in ("ShedRate", "AdmittedP50Ms", "AdmittedP99Ms"):
        assert counter in row, f"{path}: {overload} missing {counter}"
    assert row["ShedRate"] > 0, \
        f"{path}: overload ShedRate is 0 — admission control never shed"
    assert row["AdmittedP50Ms"] <= row["AdmittedP99Ms"], \
        f"{path}: overload latency percentiles out of order"
    # The HTTP serving pair (full wire path over loopback): the warm hot
    # key must actually be memoized, and the unique-keyed overload run
    # must shed on the wire as 429s.
    http_warm = by_name.get("EngineThroughput/http_warm/t8/real_time/"
                            "threads:8")
    assert http_warm is not None, f"{path}: missing http_warm/t8"
    assert http_warm.get("MemoRate", 0) > 0.9, \
        f"{path}: http_warm MemoRate {http_warm.get('MemoRate')} — the " \
        f"served hot key was not memoized"
    http_overload = by_name.get("EngineThroughput/http_overload/t8/"
                                "real_time/threads:8")
    assert http_overload is not None, f"{path}: missing http_overload/t8"
    assert http_overload.get("ShedRate", 0) > 0, \
        f"{path}: http_overload ShedRate is 0 — the wire path never shed"
    # The incremental-maintenance A/B (one ApplyFacts fact + one unlimited
    # serve of the length-15 query per iteration).  Matched by prefix: the
    # fixed-iteration registration appends an /iterations suffix.
    def by_prefix(prefix):
        rows = [b for b in benches if b["name"].startswith(prefix)]
        assert rows, f"{path}: missing {prefix}"
        return rows[0]
    delta = by_prefix("EngineThroughput/warm_apply_delta/t1")
    full = by_prefix("EngineThroughput/warm_apply_full/t1")
    assert delta.get("DeltaRate", 0) > 0.9, \
        f"{path}: warm_apply_delta DeltaRate {delta.get('DeltaRate')} — " \
        f"the delta path never served"
    assert full.get("DeltaRate", 1) == 0.0, \
        f"{path}: warm_apply_full DeltaRate nonzero — the A/B control " \
        f"ran incrementally"
    # The committed baseline shows >= 5x; 2x here tolerates noisy
    # regeneration machines while still catching a dead delta path.
    assert delta["real_time"] * 2 < full["real_time"], \
        f"{path}: delta update path not faster than full re-evaluation " \
        f"(delta {delta['real_time']}, full {full['real_time']})"
    # The hot-key answer-memoization pair: the memoizing scenario must have
    # run in the cache-hit regime despite the version churn (HitRate >= 0.5
    # is the floor; the baseline shows ~1) and report its coalesce rate,
    # while the control must never have hit.  The ratio bar is 5x — the
    # cached path is a map probe against a full evaluation, so even noisy
    # machines clear it by an order of magnitude.
    hot = by_name.get("EngineThroughput/hotkey/t8/real_time/threads:8")
    nohot = by_name.get(
        "EngineThroughput/hotkey_nocache/t8/real_time/threads:8")
    assert hot is not None, f"{path}: missing hotkey/t8"
    assert nohot is not None, f"{path}: missing hotkey_nocache/t8"
    assert hot.get("HitRate", 0) >= 0.5, \
        f"{path}: hotkey HitRate {hot.get('HitRate')} < 0.5 — the answer " \
        f"cache never warmed"
    assert "CoalesceRate" in hot, f"{path}: hotkey missing CoalesceRate"
    assert nohot.get("HitRate", 1) == 0.0, \
        f"{path}: hotkey_nocache HitRate nonzero — the A/B control cached"
    assert hot["real_time"] * 5 < nohot["real_time"], \
        f"{path}: memoized hot-key serve not >= 5x the uncached one " \
        f"(cached {hot['real_time']}, uncached {nohot['real_time']})"
    # The always-miss control: a per-serve-unique limits signature defeats
    # the cache, and the memoization layer's overhead (key build, probe,
    # in-flight table, publish) must stay within the warm serve's noise
    # bar.  Repetition means of the two scenarios are equal to within their
    # ~10% stddev on the baseline machine; 1.25x here tolerates single-shot
    # regeneration noise while still catching an accidentally expensive
    # miss path (a per-serve answer copy, say, would blow straight past it).
    miss = by_name.get(
        "EngineThroughput/warm_cachemiss/t1/real_time/threads:1")
    assert miss is not None, f"{path}: missing warm_cachemiss/t1"
    assert miss.get("HitRate", 1) == 0.0, \
        f"{path}: warm_cachemiss HitRate nonzero — keys repeated"
    warm1 = by_name["EngineThroughput/warm/t1/real_time/threads:1"]
    assert miss["real_time"] <= warm1["real_time"] * 1.25, \
        f"{path}: memoization miss-path overhead above the noise bar " \
        f"(cachemiss {miss['real_time']}, warm {warm1['real_time']})"
    # The durable-store cells (DESIGN.md §14).  Warm executions never touch
    # the store, so the store-backed warm serve must price within the same
    # noise bar as the in-memory one (the baseline machine shows ~1x; 1.25x
    # tolerates regeneration noise while catching a read path that started
    # paying for durability).  The append cell must prove every batch was
    # logged, and the recovery cell must have replayed a real log tail with
    # a nonzero, sub-total store-recovery share.
    store_warm = by_name.get(
        "EngineThroughput/store_warm/t1/real_time/threads:1")
    assert store_warm is not None, f"{path}: missing store_warm/t1"
    assert store_warm.get("CacheHitRate") == 1.0, \
        f"{path}: store_warm CacheHitRate " \
        f"{store_warm.get('CacheHitRate')}, want 1.0"
    # cpu_time, not real_time: both cells are single-threaded, so CPU time
    # is the same price with far less scheduler noise (the baseline machine
    # shows ~5% delta at ~7% cv, vs >30% cv on wall time).
    assert store_warm["cpu_time"] <= warm1["cpu_time"] * 1.25, \
        f"{path}: store-backed warm serve above the in-memory noise bar " \
        f"(store_warm {store_warm['cpu_time']}, warm {warm1['cpu_time']})"
    store_append = by_prefix("EngineThroughput/store_append/t4")
    assert store_append.get("LogRecords", 0) > 0, \
        f"{path}: store_append logged no records — the WAL never engaged"
    assert store_append.get("LogBytes", 0) > 0, \
        f"{path}: store_append reports no log bytes"
    store_recovery = by_prefix("EngineThroughput/store_recovery/t1")
    assert store_recovery.get("RecoveredRecords", 0) > 0, \
        f"{path}: store_recovery replayed no log records — the fixture " \
        f"store has no tail"
    assert store_recovery.get("RecoveryMs", 0) > 0, \
        f"{path}: store_recovery RecoveryMs missing or zero"
    assert store_recovery["RecoveryMs"] <= store_recovery["real_time"], \
        f"{path}: store_recovery RecoveryMs exceeds the whole " \
        f"restart-to-first-answer time"

print(f"OK: {path}: {len(benches)} benchmark entries")
EOF
done
exit $status
