#!/bin/sh
# Validates committed benchmark baseline JSONs: each file must parse, hold a
# non-empty "benchmarks" array, and every entry must carry a real_time.  The
# parallelism baseline must additionally cover both thread counts and report
# the scheduler counters, so a stale pre-scheduler baseline cannot sneak
# back in.  Usage: check_bench_json.sh <file.json>...
# Registered as the ctest test `hygiene/bench_json`.
set -u

status=0
for file in "$@"; do
  if [ ! -f "$file" ]; then
    echo "FAIL: $file missing (tools/run_bench_baseline.sh regenerates it)"
    status=1
    continue
  fi
  python3 - "$file" <<'EOF' || status=1
import json
import os
import sys

path = sys.argv[1]
with open(path) as f:
    data = json.load(f)

benches = data.get("benchmarks")
assert isinstance(benches, list) and benches, f"{path}: no benchmarks array"
for b in benches:
    assert "name" in b and "real_time" in b, f"{path}: malformed entry {b}"

if os.path.basename(path) == "BENCH_parallelism.json":
    names = {b["name"] for b in benches}
    for needle in ("t1", "t4"):
        assert any(needle in n for n in names), \
            f"{path}: missing {needle} configurations"
    sample = next(b for b in benches if "len15" in b["name"])
    for counter in ("SchedulerTasks", "GeneratedTuples"):
        assert counter in sample, f"{path}: missing counter {counter}"

print(f"OK: {path}: {len(benches)} benchmark entries")
EOF
done
exit $status
