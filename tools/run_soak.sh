#!/bin/sh
# Runs the governor soak suite (ctest label `soak`) against a build tree,
# bounded to keep it CI-friendly (~30 s ceiling; the suite itself finishes
# in a few seconds on an idle machine, longer under sanitizers).
#
# The soak is most valuable under ThreadSanitizer:
#   cmake -S . -B build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
#         -DOWLQR_SANITIZE=thread
#   cmake --build build-tsan -j
#   tools/run_soak.sh build-tsan
#
# Usage: run_soak.sh [build-dir]   (default: ./build)
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD="${1:-$ROOT/build}"

if [ ! -d "$BUILD" ]; then
  echo "FAIL: build dir $BUILD not found (cmake -S $ROOT -B $BUILD)" >&2
  exit 1
fi

exec ctest --test-dir "$BUILD" -L soak --timeout 30 --output-on-failure
