#!/bin/sh
# Fails when generated build trees are tracked by git (the PR 1 regression:
# 807 files under build-asan/ and build-tsan/ were committed).  Run from the
# repository root; registered as the ctest test `hygiene/no_tracked_build`.
set -u

cd "$(dirname "$0")/.." || exit 1

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "not a git checkout; skipping tracked-build-artifact check"
  exit 0
fi

tracked=$(git ls-files | grep -E '^build' || true)
if [ -n "$tracked" ]; then
  count=$(printf '%s\n' "$tracked" | wc -l)
  echo "FAIL: $count generated build file(s) tracked by git:"
  printf '%s\n' "$tracked" | head -10
  echo "(run: git rm -r --cached <dir> and keep build*/ in .gitignore)"
  exit 1
fi

echo "OK: no tracked build artifacts"
exit 0
