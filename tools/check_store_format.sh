#!/bin/sh
# Validates a real CLI run's durable store directory against the documented
# on-disk format (DESIGN.md §14), and pins the REPL-persistence contract:
#
#   1. A --repl session with --store-dir applies a '+' fact and exits; the
#      store directory it leaves behind must contain ONLY documented files
#      (CURRENT, LOG, seg-<version>/{META,adom,c*,r*}), every one carrying
#      the versioned 16-byte header — magic "OWQR", the right file-type
#      tag, format version 1, zero reserved bytes.  Unversioned or unknown
#      files fail the check: anything the recovery path would not
#      understand must never be written.
#   2. A SECOND repl session over the same store (and the ORIGINAL data
#      file, which predates the '+' fact) must answer with the added
#      individual — the fact survived the restart out of the store, not
#      out of any input file.  This is the regression test for +fact
#      updates being silently lost on exit.
#   3. A store whose CURRENT is overwritten with unversioned bytes must
#      make the CLI refuse to start (nonzero exit, no crash).
# Usage: check_store_format.sh <path-to-example_owlqr_cli>
# Registered as the ctest test `hygiene/store_format`.
set -u

CLI="${1:?usage: check_store_format.sh <path-to-example_owlqr_cli>}"

tmp=$(mktemp -d) || exit 1
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/onto.txt" <<'EOF'
Professor SUB EX teaches
EX teaches- SUB Course
lectures SUBR teaches
EOF

cat > "$tmp/data.txt" <<'EOF'
Professor(ann).
lectures(bob, algebra).
EOF

# ---- 1: a REPL session that applies a fact and exits --------------------
cat > "$tmp/repl1.txt" <<'EOF'
q(x) :- teaches(x, y), Course(y)
+ lectures(carol, logic).
q(x) :- teaches(x, y), Course(y)
EOF

"$CLI" "$tmp/onto.txt" --repl "$tmp/data.txt" --rewriter=tw \
    "--store-dir=$tmp/store" < "$tmp/repl1.txt" \
    > "$tmp/answers1.txt" 2> "$tmp/stderr1.txt"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: first REPL run exited with $status"
  cat "$tmp/stderr1.txt"
  exit 1
fi
if ! grep -q "carol" "$tmp/answers1.txt"; then
  echo "FAIL: first run never answered with the added individual"
  cat "$tmp/answers1.txt"
  exit 1
fi

python3 - "$tmp/store" <<'EOF'
import os
import re
import struct
import sys

root = sys.argv[1]
MAGIC = b"OWQR"
FORMAT_VERSION = 1
TYPE_LOG, TYPE_META, TYPE_COLUMN, TYPE_CURRENT = 1, 2, 3, 4

def header(path):
    with open(path, "rb") as f:
        raw = f.read(16)
    assert len(raw) == 16, f"{path}: shorter than the 16-byte file header"
    magic, ftype, version, reserved = struct.unpack("<4sIII", raw)
    assert magic == MAGIC, f"{path}: bad magic {magic!r} (unversioned file?)"
    assert version == FORMAT_VERSION, \
        f"{path}: format version {version}, want {FORMAT_VERSION}"
    assert reserved == 0, f"{path}: reserved bytes nonzero ({reserved:#x})"
    return ftype

entries = sorted(os.listdir(root))
assert "CURRENT" in entries, f"{root}: no CURRENT segment pointer"
seg_dirs = [e for e in entries if re.fullmatch(r"seg-\d+", e)]
assert seg_dirs, f"{root}: no segment directory"
for e in entries:
    path = os.path.join(root, e)
    if e == "CURRENT":
        assert header(path) == TYPE_CURRENT, f"{path}: wrong file-type tag"
    elif e == "LOG":
        assert header(path) == TYPE_LOG, f"{path}: wrong file-type tag"
    elif e in seg_dirs:
        assert os.path.isdir(path), f"{path}: seg-* must be a directory"
    else:
        raise AssertionError(f"{root}: undocumented entry {e!r}")

for seg in seg_dirs:
    seg_path = os.path.join(root, seg)
    files = sorted(os.listdir(seg_path))
    assert "META" in files, f"{seg_path}: no META"
    assert "adom" in files, f"{seg_path}: no adom"
    for e in files:
        path = os.path.join(seg_path, e)
        assert os.path.isfile(path), f"{path}: unexpected subdirectory"
        if e == "META":
            assert header(path) == TYPE_META, f"{path}: wrong file-type tag"
        elif e == "adom" or re.fullmatch(r"[cr]\d+", e):
            assert header(path) == TYPE_COLUMN, \
                f"{path}: wrong file-type tag"
        else:
            raise AssertionError(f"{seg_path}: undocumented entry {e!r}")

# CURRENT must point at one of the segment directories actually present.
with open(os.path.join(root, "CURRENT"), "rb") as f:
    raw = f.read()
(name_len,) = struct.unpack_from("<H", raw, 16)
name = raw[18:18 + name_len].decode()
assert name in seg_dirs, \
    f"CURRENT points at {name!r}, which is not on disk ({seg_dirs})"
print(f"OK: store layout valid — {len(seg_dirs)} segment(s), "
      f"CURRENT -> {name}")
EOF
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: store directory format validation failed"
  ls -laR "$tmp/store"
  exit 1
fi

# ---- 2: restart — the '+' fact must come back out of the store ----------
cat > "$tmp/repl2.txt" <<'EOF'
q(x) :- teaches(x, y), Course(y)
EOF

"$CLI" "$tmp/onto.txt" --repl "$tmp/data.txt" --rewriter=tw \
    "--store-dir=$tmp/store" < "$tmp/repl2.txt" \
    > "$tmp/answers2.txt" 2> "$tmp/stderr2.txt"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: restarted REPL run exited with $status"
  cat "$tmp/stderr2.txt"
  exit 1
fi
if ! grep -q "carol" "$tmp/answers2.txt"; then
  echo "FAIL: '+ lectures(carol, logic).' was lost across the restart"
  cat "$tmp/answers2.txt"
  cat "$tmp/stderr2.txt"
  exit 1
fi
if ! grep -q "ann" "$tmp/answers2.txt"; then
  echo "FAIL: restarted store lost the seed data"
  cat "$tmp/answers2.txt"
  exit 1
fi

# ---- 3: an unversioned CURRENT must be refused, not served --------------
printf 'this is not a store file' > "$tmp/store/CURRENT"
"$CLI" "$tmp/onto.txt" --repl "$tmp/data.txt" --rewriter=tw \
    "--store-dir=$tmp/store" < "$tmp/repl2.txt" \
    > "$tmp/answers3.txt" 2> "$tmp/stderr3.txt"
status=$?
if [ "$status" -eq 0 ]; then
  echo "FAIL: CLI served from a store with an unversioned CURRENT"
  cat "$tmp/answers3.txt"
  exit 1
fi
if ! grep -qi "current" "$tmp/stderr3.txt"; then
  echo "FAIL: refusal did not name the corrupt file"
  cat "$tmp/stderr3.txt"
  exit 1
fi

echo "OK: store format versioned throughout; +facts survive restart;"
echo "    corruption refused with a named error"
exit 0
