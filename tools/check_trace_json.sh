#!/bin/sh
# Smoke-checks the --trace-json flag end to end: runs the CLI on a tiny
# quickstart-sized OMQ, then verifies the emitted trace parses as JSON and
# contains the per-stage span names (rewrite, transform, index-build, join)
# plus the governor's admission counter.  A second run under explicit
# governor flags (--max-memory-mb/--max-concurrent/--queue-timeout-ms) must
# produce identical answers and a governed trace.
# Usage: check_trace_json.sh <path-to-example_owlqr_cli>
# Registered as the ctest test `hygiene/trace_json`.
set -u

CLI="${1:?usage: check_trace_json.sh <path-to-example_owlqr_cli>}"

tmp=$(mktemp -d) || exit 1
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/onto.txt" <<'EOF'
Professor SUB EX teaches
EX teaches- SUB Course
lectures SUBR teaches
Dean SUB Professor
EOF

cat > "$tmp/query.txt" <<'EOF'
q(x) :- teaches(x, y), Course(y)
EOF

cat > "$tmp/data.txt" <<'EOF'
Professor(ann).
Dean(dana).
lectures(bob, algebra).
EOF

"$CLI" "$tmp/onto.txt" "$tmp/query.txt" "$tmp/data.txt" --rewriter=tw \
    "--trace-json=$tmp/trace.json" > "$tmp/answers.txt" 2> "$tmp/stderr.txt"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: CLI exited with $status"
  cat "$tmp/stderr.txt"
  exit 1
fi

python3 - "$tmp/trace.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

for key in ("counters", "timers", "spans"):
    assert key in trace, f"trace missing top-level key {key!r}"

names = {span["name"] for span in trace["spans"]}
required = {
    "parse",
    "rewrite",
    "rewrite/tw",
    "transform/star",
    "evaluate",
    "evaluate/edb",
    "evaluate/index-build",
    "evaluate/join",
}
missing = required - names
assert not missing, f"trace missing spans: {sorted(missing)}; got {sorted(names)}"

for span in trace["spans"]:
    assert span["duration_ms"] >= 0, f"unclosed span {span['name']!r}"

assert trace["counters"].get("evaluator/join_emissions", 0) > 0, \
    "evaluator/join_emissions not recorded"
assert trace["timers"].get("evaluator/index_build_ms", {}).get("count", 0) > 0, \
    "evaluator/index_build_ms not recorded"
assert trace["counters"].get("governor/admitted", 0) > 0, \
    "governor/admitted not recorded"
print("OK: trace JSON parses and contains per-stage spans:", len(names), "names")
EOF
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: trace JSON validation failed"
  cat "$tmp/trace.json"
  exit 1
fi

# Second run, governed: the resource flags must not change the answers, and
# the governed serve must still be admitted (and traced).
"$CLI" "$tmp/onto.txt" "$tmp/query.txt" "$tmp/data.txt" --rewriter=tw \
    --max-memory-mb=64 --max-concurrent=2 --queue-timeout-ms=50 \
    "--trace-json=$tmp/trace2.json" > "$tmp/answers2.txt" 2> "$tmp/stderr2.txt"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: governed CLI run exited with $status"
  cat "$tmp/stderr2.txt"
  exit 1
fi
if ! cmp -s "$tmp/answers.txt" "$tmp/answers2.txt"; then
  echo "FAIL: governed run changed the answers"
  diff "$tmp/answers.txt" "$tmp/answers2.txt"
  exit 1
fi

python3 - "$tmp/trace2.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

counters = trace.get("counters", {})
assert counters.get("governor/admitted", 0) > 0, \
    "governed run recorded no governor/admitted"
assert counters.get("governor/rejected", 0) == 0, \
    "single-threaded CLI serve must not be shed"
print("OK: governed trace records admission counters")
EOF
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: governed trace JSON validation failed"
  cat "$tmp/trace2.json"
  exit 1
fi
exit 0
