#!/bin/sh
# Smoke-checks the --trace-json flag end to end: runs the CLI on a tiny
# quickstart-sized OMQ, then verifies the emitted trace parses as JSON and
# contains the per-stage span names (rewrite, transform, index-build, join).
# Usage: check_trace_json.sh <path-to-example_owlqr_cli>
# Registered as the ctest test `hygiene/trace_json`.
set -u

CLI="${1:?usage: check_trace_json.sh <path-to-example_owlqr_cli>}"

tmp=$(mktemp -d) || exit 1
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/onto.txt" <<'EOF'
Professor SUB EX teaches
EX teaches- SUB Course
lectures SUBR teaches
Dean SUB Professor
EOF

cat > "$tmp/query.txt" <<'EOF'
q(x) :- teaches(x, y), Course(y)
EOF

cat > "$tmp/data.txt" <<'EOF'
Professor(ann).
Dean(dana).
lectures(bob, algebra).
EOF

"$CLI" "$tmp/onto.txt" "$tmp/query.txt" "$tmp/data.txt" --rewriter=tw \
    "--trace-json=$tmp/trace.json" > "$tmp/answers.txt" 2> "$tmp/stderr.txt"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: CLI exited with $status"
  cat "$tmp/stderr.txt"
  exit 1
fi

python3 - "$tmp/trace.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

for key in ("counters", "timers", "spans"):
    assert key in trace, f"trace missing top-level key {key!r}"

names = {span["name"] for span in trace["spans"]}
required = {
    "parse",
    "rewrite",
    "rewrite/tw",
    "transform/star",
    "evaluate",
    "evaluate/edb",
    "evaluate/index-build",
    "evaluate/join",
}
missing = required - names
assert not missing, f"trace missing spans: {sorted(missing)}; got {sorted(names)}"

for span in trace["spans"]:
    assert span["duration_ms"] >= 0, f"unclosed span {span['name']!r}"

assert trace["counters"].get("evaluator/join_emissions", 0) > 0, \
    "evaluator/join_emissions not recorded"
assert trace["timers"].get("evaluator/index_build_ms", {}).get("count", 0) > 0, \
    "evaluator/index_build_ms not recorded"
print("OK: trace JSON parses and contains per-stage spans:", len(names), "names")
EOF
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: trace JSON validation failed"
  cat "$tmp/trace.json"
  exit 1
fi
exit 0
