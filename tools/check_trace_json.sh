#!/bin/sh
# Smoke-checks the --trace-json flag end to end: runs the CLI on a tiny
# quickstart-sized OMQ, then verifies the emitted trace parses as JSON and
# contains the per-stage span names (rewrite, transform, index-build, join)
# plus the governor's admission counter and the batch executor's counters
# (ndl/batch_rows, ndl/batch_probes, ndl/selection_density).  A second run
# under explicit
# governor flags (--max-memory-mb/--max-concurrent/--queue-timeout-ms) must
# produce identical answers and a governed trace.  A third run drives the
# --repl with --answer-cache-mb: the same query served twice must hit the
# answer cache with byte-identical answers, a '+' fact must invalidate the
# entry, the answer-cache counters must land in the trace schema, and every
# engine/execute span must carry the snapshot_version its result reported.
# Usage: check_trace_json.sh <path-to-example_owlqr_cli>
# Registered as the ctest test `hygiene/trace_json`.
set -u

CLI="${1:?usage: check_trace_json.sh <path-to-example_owlqr_cli>}"

tmp=$(mktemp -d) || exit 1
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/onto.txt" <<'EOF'
Professor SUB EX teaches
EX teaches- SUB Course
lectures SUBR teaches
Dean SUB Professor
EOF

cat > "$tmp/query.txt" <<'EOF'
q(x) :- teaches(x, y), Course(y)
EOF

cat > "$tmp/data.txt" <<'EOF'
Professor(ann).
Dean(dana).
lectures(bob, algebra).
EOF

"$CLI" "$tmp/onto.txt" "$tmp/query.txt" "$tmp/data.txt" --rewriter=tw \
    "--trace-json=$tmp/trace.json" > "$tmp/answers.txt" 2> "$tmp/stderr.txt"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: CLI exited with $status"
  cat "$tmp/stderr.txt"
  exit 1
fi

python3 - "$tmp/trace.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

for key in ("counters", "timers", "spans"):
    assert key in trace, f"trace missing top-level key {key!r}"

names = {span["name"] for span in trace["spans"]}
required = {
    "parse",
    "rewrite",
    "rewrite/tw",
    "transform/star",
    "evaluate",
    "evaluate/edb",
    "evaluate/index-build",
    "evaluate/join",
}
missing = required - names
assert not missing, f"trace missing spans: {sorted(missing)}; got {sorted(names)}"

for span in trace["spans"]:
    assert span["duration_ms"] >= 0, f"unclosed span {span['name']!r}"

assert trace["counters"].get("evaluator/join_emissions", 0) > 0, \
    "evaluator/join_emissions not recorded"
assert trace["timers"].get("evaluator/index_build_ms", {}).get("count", 0) > 0, \
    "evaluator/index_build_ms not recorded"
assert trace["counters"].get("governor/admitted", 0) > 0, \
    "governor/admitted not recorded"

# The columnar batch executor runs by default (EvaluatorLimits::batch_rows
# > 0), so every serve must account its vectorised work: rows pushed through
# batch levels, index probes issued in bulk, and the per-flush output/candidate
# selection density distribution (1.0 = every candidate survived its checks).
assert trace["counters"].get("ndl/batch_rows", 0) > 0, \
    "ndl/batch_rows not recorded — the batch executor never ran"
assert trace["counters"].get("ndl/batch_probes", 0) > 0, \
    "ndl/batch_probes not recorded — no bulk index probes issued"
density = trace["timers"].get("ndl/selection_density", {})
assert density.get("count", 0) > 0, \
    "ndl/selection_density distribution not recorded"
assert 0.0 <= density.get("min", -1) and density.get("max", -1) >= \
    density.get("min", -1), \
    f"ndl/selection_density bounds malformed: {density}"
print("OK: trace JSON parses and contains per-stage spans:", len(names), "names")
EOF
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: trace JSON validation failed"
  cat "$tmp/trace.json"
  exit 1
fi

# Second run, governed: the resource flags must not change the answers, and
# the governed serve must still be admitted (and traced).
"$CLI" "$tmp/onto.txt" "$tmp/query.txt" "$tmp/data.txt" --rewriter=tw \
    --max-memory-mb=64 --max-concurrent=2 --queue-timeout-ms=50 \
    "--trace-json=$tmp/trace2.json" > "$tmp/answers2.txt" 2> "$tmp/stderr2.txt"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: governed CLI run exited with $status"
  cat "$tmp/stderr2.txt"
  exit 1
fi
if ! cmp -s "$tmp/answers.txt" "$tmp/answers2.txt"; then
  echo "FAIL: governed run changed the answers"
  diff "$tmp/answers.txt" "$tmp/answers2.txt"
  exit 1
fi

python3 - "$tmp/trace2.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

counters = trace.get("counters", {})
assert counters.get("governor/admitted", 0) > 0, \
    "governed run recorded no governor/admitted"
assert counters.get("governor/rejected", 0) == 0, \
    "single-threaded CLI serve must not be shed"
print("OK: governed trace records admission counters")
EOF
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: governed trace JSON validation failed"
  cat "$tmp/trace2.json"
  exit 1
fi

# Third run, memoizing REPL: serve the same query twice (second serve must
# come out of the answer cache, byte-identical), apply one fresh fact (must
# invalidate), then serve again (must see the new individual).
cat > "$tmp/repl.txt" <<'EOF'
q(x) :- teaches(x, y), Course(y)
q(x) :- teaches(x, y), Course(y)
+ lectures(carol, logic).
q(x) :- teaches(x, y), Course(y)
EOF

"$CLI" "$tmp/onto.txt" --repl "$tmp/data.txt" --rewriter=tw \
    --answer-cache-mb=16 "--trace-json=$tmp/trace3.json" \
    < "$tmp/repl.txt" > "$tmp/answers3.txt" 2> "$tmp/stderr3.txt"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: memoizing REPL run exited with $status"
  cat "$tmp/stderr3.txt"
  exit 1
fi

python3 - "$tmp/trace3.json" "$tmp/answers3.txt" "$tmp/stderr3.txt" <<'EOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
with open(sys.argv[2]) as f:
    answers = f.read().splitlines()
with open(sys.argv[3]) as f:
    stderr = f.read()

# The answer-cache counters are part of the trace schema once the cache is
# enabled: two distinct keys missed (first serve, post-invalidation serve),
# one hit, and each clean run was published.
counters = trace.get("counters", {})
assert counters.get("engine/answer_cache_hit", 0) >= 1, \
    "repeated serve never hit the answer cache"
assert counters.get("engine/answer_cache_miss", 0) >= 2, \
    "expected misses on the first and post-invalidation serves"
assert counters.get("engine/answer_cache_insert", 0) >= 2, \
    "clean complete runs were not published to the answer cache"
assert counters.get("governor/answer_cache_hits", 0) >= 1, \
    "governor did not count the answer-cache hit"

# Per-serve answer counts and snapshot versions, in order, from the
# "<N> answers, ... (snapshot v<V>)" result lines.
serves = [(int(m.group(1)), int(m.group(2)))
          for m in re.finditer(r"(\d+) answers.*\(snapshot v(\d+)\)",
                               stderr)]
assert len(serves) == 3, f"expected 3 serves, saw {len(serves)}: {stderr}"
assert "[answer-cached]" in stderr, "no serve was marked [answer-cached]"
assert "answer cache:" in stderr, "missing answer-cache summary line"

# Identical answers on the cached serve; the post-invalidation serve sees
# the new individual.
n1, n2, n3 = (n for n, _ in serves)
block1 = answers[:n1]
block2 = answers[n1:n1 + n2]
block3 = answers[n1 + n2:n1 + n2 + n3]
assert block1 and block1 == block2, \
    f"cached serve differed from the fresh one: {block1} vs {block2}"
assert "carol" in "\n".join(block3), \
    f"post-invalidation serve missed the new fact: {block3}"

# Every engine/execute span reports the snapshot_version its result
# reported — including the cache-hit serve and any serve that re-pinned.
versions = [v for _, v in serves]
spans = [s for s in trace.get("spans", []) if s["name"] == "engine/execute"]
attrs = [s.get("attrs", {}).get("snapshot_version") for s in spans]
assert attrs == versions, \
    f"engine/execute span versions {attrs} != reported versions {versions}"
assert any(s.get("attrs", {}).get("answer_cache_hit") == 1 for s in spans), \
    "no engine/execute span was attributed to an answer-cache hit"

print("OK: memoizing REPL trace — cache hit byte-identical, invalidated on"
      " update, span versions faithful")
EOF
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: memoizing REPL validation failed"
  cat "$tmp/trace3.json"
  cat "$tmp/stderr3.txt"
  exit 1
fi
exit 0
