#!/bin/sh
# Regenerates the committed benchmark baselines at the repository root:
#   BENCH_parallelism.json  -- bench_parallelism (DAG scheduler, t1 vs t4)
#   BENCH_table3.json       -- bench_table3_eval_seq1 (paper Table 3)
#   BENCH_engine.json       -- bench_engine_throughput (plan cache cold/warm
#                              + governed overload/t8 shedding scenario)
# Usage: run_bench_baseline.sh [build-dir]   (default: ./build)
# Run from an idle machine on a Release build (check_bench_json.sh rejects
# debug recordings via context.owlqr_build_type); the table 3 sweep takes
# about a minute at the default OWLQR_SCALE.  The parallelism run includes
# the batch-vs-scalar A/B cells (Parallelism/len15/Tw/ab/*), which must
# show the columnar executor >= 1.5x ahead of the scalar oracle at t4 —
# validated below, so a regeneration on a degraded machine fails loudly
# instead of committing a baseline that trips hygiene/bench_json later.
# Compare a fresh run against the committed files before/after a
# performance change (see EXPERIMENTS.md); tools/check_counters_identical.sh
# separately pins the sequential t1 counters to their historical values.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD="${1:-$ROOT/build}"

for bin in bench_parallelism bench_table3_eval_seq1 bench_engine_throughput; do
  if [ ! -x "$BUILD/bench/$bin" ]; then
    echo "FAIL: $BUILD/bench/$bin not built (cmake --build $BUILD --target $bin)" >&2
    exit 1
  fi
done

echo "Writing $ROOT/BENCH_parallelism.json ..."
"$BUILD/bench/bench_parallelism" \
    --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_parallelism.json" \
    --benchmark_out_format=json > /dev/null

echo "Writing $ROOT/BENCH_table3.json ..."
"$BUILD/bench/bench_table3_eval_seq1" \
    --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_table3.json" \
    --benchmark_out_format=json > /dev/null

echo "Writing $ROOT/BENCH_engine.json ..."
"$BUILD/bench/bench_engine_throughput" \
    --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_engine.json" \
    --benchmark_out_format=json > /dev/null

"$ROOT/tools/check_bench_json.sh" "$ROOT/BENCH_parallelism.json" \
    "$ROOT/BENCH_table3.json" "$ROOT/BENCH_engine.json"
echo "Baselines regenerated."
