// Quickstart: parse an ontology, a conjunctive query and data from text,
// then serve the ontology-mediated query through the prepared-OMQ engine:
// Prepare compiles (and caches) a nonrecursive-datalog plan, Execute runs it
// against the engine's shared data snapshot.  Each of the paper's rewriting
// algorithms is tried; all must agree.
//
//   $ ./example_quickstart

#include <cstdio>

#include "chase/certain_answers.h"
#include "engine/engine.h"
#include "syntax/parser.h"

int main() {
  using namespace owlqr;

  Vocabulary vocab;
  TBox tbox(&vocab);
  std::string error;

  // 1. The ontology: every professor teaches something, and whatever is
  //    taught is a course; "lectures" is a kind of "teaches".
  const char* ontology = R"(
      Professor SUB EX teaches
      EX teaches- SUB Course
      lectures SUBR teaches
      Dean SUB Professor
  )";
  if (!ParseTBox(ontology, &tbox, &error)) {
    std::fprintf(stderr, "ontology error: %s\n", error.c_str());
    return 1;
  }
  tbox.Normalize();

  // 2. The query: who teaches a course?
  auto query = ParseQuery("q(x) :- teaches(x, y), Course(y)", &vocab, &error);
  if (!query.has_value()) {
    std::fprintf(stderr, "query error: %s\n", error.c_str());
    return 1;
  }

  // 3. The data.
  DataInstance data(&vocab);
  if (!ParseData(R"(
        Professor(ann).
        Dean(dana).
        lectures(bob, algebra).
      )",
                 &data, &error)) {
    std::fprintf(stderr, "data error: %s\n", error.c_str());
    return 1;
  }

  // 4. One engine owns the (frozen) TBox and an immutable snapshot of the
  //    data.  Prepare never aborts: an unsupported query shape comes back as
  //    a Status instead.
  Engine engine(tbox, data);
  for (RewriterKind kind :
       {RewriterKind::kLin, RewriterKind::kLog, RewriterKind::kTw,
        RewriterKind::kTwStar, RewriterKind::kUcq,
        RewriterKind::kPrestoLike}) {
    PrepareOptions options;
    options.auto_kind = false;
    options.kind = kind;
    PrepareResult prepared = engine.Prepare(*query, options);
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare error: %s\n",
                   prepared.status.ToString().c_str());
      return 1;
    }
    ExecuteResult result = engine.Execute(*prepared.query);
    std::printf("%-10s (%2d clauses):", RewriterName(kind),
                prepared.query->program().num_clauses());
    for (const auto& tuple : result.answers) {
      std::printf(" %s", vocab.IndividualName(tuple[0]).c_str());
    }
    std::printf("\n");
  }

  // 5. Cross-check against the reference chase engine.  All of them agree:
  //    ann and dana have anonymous (existential) courses, bob a named one.
  auto reference = ComputeCertainAnswers(tbox, *query, data);
  std::printf("reference :");
  for (const auto& tuple : reference.answers) {
    std::printf(" %s", vocab.IndividualName(tuple[0]).c_str());
  }
  std::printf("\n");

  // 6. New facts never mutate a snapshot in place: ApplyFacts swaps in a
  //    copy-on-write successor, and in-flight executions keep reading the
  //    version they pinned.
  FactBatch batch;
  batch.roles.push_back({vocab.InternPredicate("lectures"),
                         vocab.InternIndividual("carol"),
                         vocab.InternIndividual("logic")});
  uint64_t version = 0;
  Status apply_status = engine.ApplyFactsOrError(batch, &version);
  if (!apply_status.ok()) {
    std::fprintf(stderr, "apply error: %s\n", apply_status.ToString().c_str());
    return 1;
  }
  Status status;
  ExecuteResult after = engine.Query(*query, ExecuteRequest{}, &status);
  if (!status.ok()) {
    std::fprintf(stderr, "query error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\nsnapshot v%llu:", static_cast<unsigned long long>(version));
  for (const auto& tuple : after.answers) {
    std::printf(" %s", vocab.IndividualName(tuple[0]).c_str());
  }
  std::printf("\n");

  // 7. Peek at one cached plan (a second Prepare for the same key is a plan
  //    cache hit and skips the rewriting pipeline entirely).
  PrepareOptions lin;
  lin.auto_kind = false;
  lin.kind = RewriterKind::kLin;
  PrepareResult again = engine.Prepare(*query, lin);
  std::printf("\nThe Lin rewriting (%s):\n%s",
              again.cache_hit ? "from the plan cache" : "freshly compiled",
              again.query->program().ToString().c_str());
  return 0;
}
