// Quickstart: parse an ontology, a conjunctive query and data from text,
// rewrite the ontology-mediated query into nonrecursive datalog with each of
// the paper's algorithms, and evaluate the rewritings.
//
//   $ ./example_quickstart

#include <cstdio>

#include "chase/certain_answers.h"
#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "syntax/parser.h"

int main() {
  using namespace owlqr;

  Vocabulary vocab;
  TBox tbox(&vocab);
  std::string error;

  // 1. The ontology: every professor teaches something, and whatever is
  //    taught is a course; "lectures" is a kind of "teaches".
  const char* ontology = R"(
      Professor SUB EX teaches
      EX teaches- SUB Course
      lectures SUBR teaches
      Dean SUB Professor
  )";
  if (!ParseTBox(ontology, &tbox, &error)) {
    std::fprintf(stderr, "ontology error: %s\n", error.c_str());
    return 1;
  }
  tbox.Normalize();

  // 2. The query: who teaches a course?
  auto query = ParseQuery("q(x) :- teaches(x, y), Course(y)", &vocab, &error);
  if (!query.has_value()) {
    std::fprintf(stderr, "query error: %s\n", error.c_str());
    return 1;
  }

  // 3. The data.
  DataInstance data(&vocab);
  if (!ParseData(R"(
        Professor(ann).
        Dean(dana).
        lectures(bob, algebra).
      )",
                 &data, &error)) {
    std::fprintf(stderr, "data error: %s\n", error.c_str());
    return 1;
  }

  // 4. Rewrite and evaluate with each algorithm.  All of them must agree:
  //    ann and dana have anonymous (existential) courses, bob a named one.
  RewritingContext ctx(tbox);
  for (RewriterKind kind :
       {RewriterKind::kLin, RewriterKind::kLog, RewriterKind::kTw,
        RewriterKind::kTwStar, RewriterKind::kUcq,
        RewriterKind::kPrestoLike}) {
    RewriteOptions options;
    options.arbitrary_instances = true;
    NdlProgram program = RewriteOmq(&ctx, *query, kind, options);
    Evaluator eval(program, data);
    auto answers = eval.Evaluate();
    std::printf("%-10s (%2d clauses):", RewriterName(kind),
                program.num_clauses());
    for (const auto& tuple : answers) {
      std::printf(" %s", vocab.IndividualName(tuple[0]).c_str());
    }
    std::printf("\n");
  }

  // 5. Cross-check against the reference chase engine.
  auto reference = ComputeCertainAnswers(tbox, *query, data);
  std::printf("reference :");
  for (const auto& tuple : reference.answers) {
    std::printf(" %s", vocab.IndividualName(tuple[0]).c_str());
  }
  std::printf("\n");

  // 6. Peek at one rewriting.
  std::printf("\nThe Lin rewriting (over complete data instances):\n%s",
              RewriteOmq(&ctx, *query, RewriterKind::kLin).ToString().c_str());
  return 0;
}
