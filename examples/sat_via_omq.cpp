// Theorem 17 as a program: SAT solving by ontology-mediated query answering
// with the *fixed* ontology T-dagger over the one-fact data instance {A(a)}.
// The CNF is encoded purely in the (tree-shaped) query, demonstrating that
// query complexity alone is NP-hard in OWL 2 QL.
//
//   $ ./example_sat_via_omq

#include <cstdio>
#include <string>

#include "chase/certain_answers.h"
#include "reductions/sat.h"

namespace {

std::string CnfToString(const owlqr::Cnf& phi) {
  std::string out;
  for (size_t j = 0; j < phi.clauses.size(); ++j) {
    if (j > 0) out += " & ";
    out += "(";
    for (size_t i = 0; i < phi.clauses[j].size(); ++i) {
      if (i > 0) out += " | ";
      int lit = phi.clauses[j][i];
      if (lit < 0) out += "!";
      out += "p" + std::to_string(std::abs(lit));
    }
    out += ")";
  }
  return out;
}

}  // namespace

int main() {
  using namespace owlqr;

  const Cnf formulas[] = {
      // (p1 | p2) & !p1  -- the paper's running example; satisfiable.
      {2, {{1, 2}, {-1}}},
      // p1 & !p1 -- unsatisfiable.
      {1, {{1}, {-1}}},
      // (p1 | p2) & (!p1 | p3) & (!p2 | !p3) -- satisfiable.
      {3, {{1, 2}, {-1, 3}, {-2, -3}}},
      // All four sign patterns over two variables -- unsatisfiable.
      {2, {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}},
  };

  for (const Cnf& phi : formulas) {
    // The ontology below is the same for every formula: only the query (and
    // never the data) encodes the input.
    Vocabulary vocab;
    auto t_dagger = MakeTDagger(&vocab);
    ConjunctiveQuery query = MakeSatQuery(&vocab, *t_dagger, phi);
    DataInstance data = MakeSatData(&vocab);
    bool certain = IsCertainAnswer(*t_dagger, query, data, {});
    std::printf("phi = %-55s  query: %2zu atoms  =>  %s\n",
                CnfToString(phi).c_str(), query.atoms().size(),
                certain ? "SATISFIABLE" : "unsatisfiable");
    if (certain != IsSatisfiable(phi)) {
      std::fprintf(stderr, "BUG: OMQ answer disagrees with SAT!\n");
      return 1;
    }
  }
  std::printf(
      "\nEvery answer was produced by evaluating the Boolean OMQ "
      "(T-dagger, q_phi) over the single fact A(a).\n");
  return 0;
}
