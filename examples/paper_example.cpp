// The paper's running example (Examples 8 and 11, Appendix A.6): the linear
// query q(x0, x7) = R S R R S R R over the ontology
//     P(x,y) -> S(x,y),  P(x,y) -> R(y,x),
// with all rewritings printed side by side — the "rewritings zoo".
//
//   $ ./example_paper_example

#include <cstdio>

#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "workloads/paper_workloads.h"
#include "util/logging.h"
#include <utility>

int main() {
  using namespace owlqr;

  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  RewritingContext ctx(*tbox);
  ConjunctiveQuery query = SequenceQuery(&vocab, "RSRRSRR");
  std::printf("query:    %s\n", query.ToString().c_str());
  std::printf("ontology: P SUBR S, P SUBR R- (+ normalization)\n");
  std::printf("ontology depth: %d\n\n", ctx.depth());

  for (RewriterKind kind :
       {RewriterKind::kUcq, RewriterKind::kLog, RewriterKind::kLin,
        RewriterKind::kTw, RewriterKind::kTwStar}) {
    RewriteResult program_rw = RewriteOmqOrError(&ctx, query, kind);
    OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
    NdlProgram program = std::move(program_rw.program);
    std::printf("=== %s rewriting (%d clauses, depth %d, width %d) ===\n%s\n",
                RewriterName(kind), program.num_clauses(), program.Depth(),
                program.Width(), program.ToString().c_str());
  }

  // Evaluate over the tiny instance from the rewriter test: R(c0,c1),
  // A[P](c1), R(c1,c4), A[P](c4), R(c4,c7) — the two A[P] facts stand in for
  // the anonymous P-successors that cover the two  R S R  segments.
  DataInstance data(&vocab);
  data.Assert("R", "c0", "c1");
  data.Assert("R", "c1", "c4");
  data.Assert("R", "c4", "c7");
  int a_p = tbox->ExistsConcept(RoleOf(vocab.FindPredicate("P")));
  data.AddConceptAssertion(a_p, vocab.FindIndividual("c1"));
  data.AddConceptAssertion(a_p, vocab.FindIndividual("c4"));

  std::printf("data:\n%s\n", data.ToString().c_str());
  for (RewriterKind kind :
       {RewriterKind::kUcq, RewriterKind::kLog, RewriterKind::kLin,
        RewriterKind::kTw, RewriterKind::kTwStar}) {
    RewriteOptions options;
    options.arbitrary_instances = true;
    RewriteResult program_rw = RewriteOmqOrError(&ctx, query, kind, options);
    OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
    NdlProgram program = std::move(program_rw.program);
    Evaluator eval(program, data);
    auto answers = eval.Evaluate();
    std::printf("%-4s answers:", RewriterName(kind));
    for (const auto& t : answers) {
      std::printf(" (%s, %s)", vocab.IndividualName(t[0]).c_str(),
                  vocab.IndividualName(t[1]).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
