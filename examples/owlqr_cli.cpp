// A command-line OBDA tool: rewrite an ontology-mediated query to
// nonrecursive datalog and (optionally) evaluate it over data.
//
//   $ ./example_owlqr_cli ONTOLOGY QUERY [DATA] [--rewriter=KIND]
//                         [--print-rewriting] [--sql] [--complete-instances]
//                         [--trace-json=PATH]
//
//   ONTOLOGY  file in the ParseTBox syntax (see src/syntax/parser.h)
//   QUERY     file with one query:  q(x) :- R(x, y), A(y)
//   DATA      optional file with facts:  A(a). R(a, b).
//   KIND      lin | log | tw | twstar | ucq | presto | auto   (default auto;
//             auto picks by the paper's Figure 1 classes and, when data is
//             given, by the Section 6 cost model)
//
// --trace-json=PATH records a structured trace of the run (per-stage spans,
// counters, timers; see DESIGN.md section 7) and writes it to PATH as JSON.
//
// Example:
//   ./example_owlqr_cli onto.txt query.txt data.txt --rewriter=lin

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/cost_model.h"
#include "core/omq.h"
#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "syntax/parser.h"
#include "syntax/sql_export.h"
#include "util/metrics.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace owlqr;
  const char* ontology_path = nullptr;
  const char* query_path = nullptr;
  const char* data_path = nullptr;
  std::string rewriter = "auto";
  std::string trace_json_path;
  bool print_rewriting = false;
  bool print_sql = false;
  bool complete_instances = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rewriter=", 11) == 0) {
      rewriter = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      trace_json_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--print-rewriting") == 0) {
      print_rewriting = true;
    } else if (std::strcmp(argv[i], "--sql") == 0) {
      print_sql = true;
    } else if (std::strcmp(argv[i], "--complete-instances") == 0) {
      complete_instances = true;
    } else if (ontology_path == nullptr) {
      ontology_path = argv[i];
    } else if (query_path == nullptr) {
      query_path = argv[i];
    } else if (data_path == nullptr) {
      data_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (ontology_path == nullptr || query_path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s ONTOLOGY QUERY [DATA] [--rewriter=KIND] "
                 "[--print-rewriting] [--complete-instances] "
                 "[--trace-json=PATH]\n",
                 argv[0]);
    return 2;
  }

  // Install the trace collector before any pipeline stage runs so the
  // rewrite/transform/evaluate spans all land in one registry.
  MetricsRegistry metrics;
  if (!trace_json_path.empty()) MetricsRegistry::SetGlobal(&metrics);

  std::string text, error;
  Vocabulary vocab;
  TBox tbox(&vocab);
  size_t parse_span = trace_json_path.empty() ? 0 : metrics.BeginSpan("parse");
  if (!ReadFile(ontology_path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", ontology_path);
    return 1;
  }
  if (!ParseTBox(text, &tbox, &error)) {
    std::fprintf(stderr, "%s: %s\n", ontology_path, error.c_str());
    return 1;
  }
  tbox.Normalize();

  if (!ReadFile(query_path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", query_path);
    return 1;
  }
  auto query = ParseQuery(text, &vocab, &error);
  if (!query.has_value()) {
    std::fprintf(stderr, "%s: %s\n", query_path, error.c_str());
    return 1;
  }

  DataInstance data(&vocab);
  bool have_data = data_path != nullptr;
  if (have_data) {
    if (!ReadFile(data_path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", data_path);
      return 1;
    }
    if (!ParseData(text, &data, &error)) {
      std::fprintf(stderr, "%s: %s\n", data_path, error.c_str());
      return 1;
    }
  }

  if (!trace_json_path.empty()) metrics.EndSpan(parse_span);

  RewritingContext ctx(tbox);
  OmqProfile profile = ProfileOmq(ctx, *query);
  std::fprintf(stderr, "profile: %s\n", profile.ToString().c_str());

  RewriteOptions options;
  options.arbitrary_instances = !complete_instances;
  NdlProgram program(&vocab);
  RewriterKind kind;
  if (rewriter == "auto") {
    if (have_data && profile.tree_shaped && profile.finite_depth()) {
      DataStatistics stats = DataStatistics::FromInstance(data);
      program = CostBasedRewrite(&ctx, *query, stats, options, &kind);
    } else {
      kind = profile.RecommendedRewriter();
      program = RewriteOmq(&ctx, *query, kind, options);
    }
  } else {
    if (rewriter == "lin") {
      kind = RewriterKind::kLin;
    } else if (rewriter == "log") {
      kind = RewriterKind::kLog;
    } else if (rewriter == "tw") {
      kind = RewriterKind::kTw;
    } else if (rewriter == "twstar") {
      kind = RewriterKind::kTwStar;
    } else if (rewriter == "ucq") {
      kind = RewriterKind::kUcq;
    } else if (rewriter == "presto") {
      kind = RewriterKind::kPrestoLike;
    } else {
      std::fprintf(stderr, "unknown rewriter: %s\n", rewriter.c_str());
      return 2;
    }
    program = RewriteOmq(&ctx, *query, kind, options);
  }
  std::fprintf(stderr, "rewriter: %s (%d clauses, depth %d, width %d)\n",
               RewriterName(kind), program.num_clauses(), program.Depth(),
               program.Width());

  if (print_sql) {
    SqlExport sql = ExportSql(program);
    std::printf("%s\n%s\n-- answers: SELECT * FROM %s;\n",
                sql.create_tables.c_str(), sql.create_views.c_str(),
                sql.goal_view.c_str());
  } else if (print_rewriting || !have_data) {
    std::printf("%s", program.ToString().c_str());
  }
  if (have_data) {
    EvaluationStats stats;
    Evaluator eval(program, data);
    auto answers = eval.Evaluate(&stats);
    for (const auto& tuple : answers) {
      for (size_t i = 0; i < tuple.size(); ++i) {
        std::printf("%s%s", i > 0 ? "\t" : "",
                    vocab.IndividualName(tuple[i]).c_str());
      }
      std::printf("\n");
    }
    if (query->IsBoolean()) {
      std::printf("%s\n", answers.empty() ? "false" : "true");
    }
    std::fprintf(stderr, "%ld answers, %ld tuples materialised\n",
                 stats.goal_tuples, stats.generated_tuples);
  }
  if (!trace_json_path.empty()) {
    MetricsRegistry::SetGlobal(nullptr);
    if (!metrics.WriteJsonFile(trace_json_path)) {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   trace_json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s\n", trace_json_path.c_str());
  }
  return 0;
}
