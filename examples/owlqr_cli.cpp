// A command-line OBDA tool built on the prepared-OMQ engine: rewrite an
// ontology-mediated query to nonrecursive datalog and (optionally) evaluate
// it over data.
//
//   $ ./example_owlqr_cli ONTOLOGY QUERY [DATA] [flags]
//   $ ./example_owlqr_cli ONTOLOGY --repl [DATA] [flags]
//
//   ONTOLOGY  file in the ParseTBox syntax (see src/syntax/parser.h)
//   QUERY     file with one query:  q(x) :- R(x, y), A(y)
//   DATA      optional file with facts:  A(a). R(a, b).
//
// Flags:
//   --rewriter=KIND    lin | log | tw | twstar | ucq | presto | auto
//                      (default auto; auto picks by the paper's Figure 1
//                      classes and, when data is given, by the Section 6
//                      cost model)
//   --threads=N        evaluate with N worker threads (default 1)
//   --incremental      maintain answers incrementally across '+' fact
//                      lines in --repl: a repeated query re-uses its
//                      retained result and only evaluates the delta
//                      (falls back to a full run when no state is
//                      retained; answers are identical either way)
//   --max-memory-mb=N  engine-wide memory budget for execution arenas;
//                      an execution that pushes usage past it aborts with
//                      MEMORY_EXCEEDED (default 0 = track only)
//   --max-concurrent=N execution slots; requests beyond N wait in a FIFO
//                      queue (default 0 = unlimited)
//   --queue-timeout-ms=N  how long a request may wait for a slot before
//                      it is shed with REJECTED (default 100)
//   --answer-cache-mb=N  memoize complete answers across requests: a
//                      repeated (query, snapshot version, limits) serves
//                      the cached result without re-evaluating, up to N MB
//                      of retained copies charged against the memory
//                      budget (default 0 = disabled)
//   --no-coalesce      evaluate identical concurrent requests separately
//                      instead of coalescing them onto one execution
//   --store-dir=PATH   durable store (DESIGN.md §14): facts applied via
//                      '+' lines / POST /facts are logged to PATH and
//                      survive restarts; on startup the store's state is
//                      recovered and DATA is only used to seed a fresh
//                      store.  Under --serve each tenant gets its own
//                      store under PATH/<tenant>.
//   --store-fsync=P    always | never: fsync the fact log on every append
//                      (default always; never trades the unsynced suffix
//                      for throughput, recovery stays torn-proof)
//   --store-compact-mb=N  checkpoint into a fresh columnar segment once
//                      the log exceeds N MB (default 64; 0 = never by
//                      size)
//   --print-rewriting  print the NDL program even when DATA is given
//   --sql              print the rewriting as SQL views instead
//   --complete-instances  rewrite for complete instances (no * transform)
//   --trace-json=PATH  write a structured trace of the run to PATH as JSON
//                      (per-stage spans, counters, timers; DESIGN.md §7)
//   --stats-json=PATH  write the engine's end-of-run stats (governor
//                      counters, plan/answer cache) to PATH, in the same
//                      schema the HTTP stats endpoint serves (DESIGN.md
//                      §13)
//   --repl             batch mode: read queries from stdin, one per line,
//                      against one engine (plans are cached across lines);
//                      lines starting with '+' add facts, e.g.  + A(a).
//   --serve=PORT       serve ONTOLOGY [DATA] over HTTP on 127.0.0.1:PORT
//                      (0 picks an ephemeral port) as tenant 'default';
//                      the governor flags above set the process budgets.
//                      Endpoints and schemas: DESIGN.md §13.
//   --help             print this usage and exit
//
// Unsupported query shapes are reported as errors (exit 1), never aborts.
//
// Example:
//   ./example_owlqr_cli onto.txt query.txt data.txt --rewriter=lin

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cost_model.h"
#include "core/omq.h"
#include "core/rewriters.h"
#include "engine/engine.h"
#include "server/api.h"
#include "server/http_server.h"
#include "server/registry.h"
#include "store/store.h"
#include "syntax/parser.h"
#include "syntax/sql_export.h"
#include "util/json.h"
#include "util/metrics.h"

namespace {

using namespace owlqr;

constexpr char kUsage[] =
    "usage: %s ONTOLOGY (QUERY | --repl) [DATA] [flags]\n"
    "flags:\n"
    "  --rewriter=KIND       lin | log | tw | twstar | ucq | presto | auto\n"
    "  --threads=N           evaluate with N worker threads\n"
    "  --incremental         maintain answers incrementally across '+' "
    "lines\n"
    "  --max-memory-mb=N     engine memory budget (0 = track only)\n"
    "  --max-concurrent=N    execution slots (0 = unlimited)\n"
    "  --queue-timeout-ms=N  max wait for a slot before REJECTED\n"
    "  --answer-cache-mb=N   memoize complete answers (0 = disabled)\n"
    "  --no-coalesce         do not coalesce identical concurrent requests\n"
    "  --store-dir=PATH      durable fact log + snapshot store at PATH\n"
    "  --store-fsync=P       always | never (default always)\n"
    "  --store-compact-mb=N  compact once the log exceeds N MB (default "
    "64)\n"
    "  --print-rewriting     print the NDL program even when DATA is given\n"
    "  --sql                 print the rewriting as SQL views\n"
    "  --complete-instances  rewrite for complete data instances\n"
    "  --trace-json=PATH     write a JSON trace of the run to PATH\n"
    "  --stats-json=PATH     write end-of-run engine stats to PATH\n"
    "  --repl                read queries (and '+ fact.' lines) from stdin\n"
    "  --serve=PORT          serve over HTTP on 127.0.0.1:PORT (0 = any)\n"
    "  --help                print this message\n";

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Parses --rewriter=KIND through the core name registry (the same one the
// wire's "rewriter" member uses).  Returns false, with a message listing
// the valid kinds, on an unknown KIND.
bool ParseRewriterKind(const std::string& name, bool* auto_kind,
                       RewriterKind* kind) {
  if (RewriterKindFromName(name, auto_kind, kind)) return true;
  std::fprintf(stderr,
               "unknown rewriter '%s'; valid kinds: lin, log, tw, twstar, "
               "ucq, presto, auto\n",
               name.c_str());
  return false;
}

// Converts a parsed DataInstance into an engine FactBatch (for '+' lines).
FactBatch ToFactBatch(const DataInstance& delta) {
  FactBatch batch;
  for (int concept_id : delta.ActiveConcepts()) {
    for (int a : delta.ConceptMembers(concept_id)) {
      batch.concepts.push_back({concept_id, a});
    }
  }
  for (int role_id : delta.ActivePredicates()) {
    for (auto [a, b] : delta.RolePairs(role_id)) {
      batch.roles.push_back({role_id, a, b});
    }
  }
  return batch;
}

void PrintAnswers(const ConjunctiveQuery& query, const ExecuteResult& result,
                  const Vocabulary& vocab) {
  for (const auto& tuple : result.answers) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i > 0 ? "\t" : "",
                  vocab.IndividualName(tuple[i]).c_str());
    }
    std::printf("\n");
  }
  if (query.IsBoolean()) {
    std::printf("%s\n", result.answers.empty() ? "false" : "true");
  }
  std::fprintf(stderr,
               "%ld answers, %ld tuples materialised (snapshot v%llu)%s%s\n",
               result.stats.goal_tuples, result.stats.generated_tuples,
               static_cast<unsigned long long>(result.snapshot_version),
               result.incremental ? " [incremental]" : "",
               result.cached ? " [answer-cached]" : "");
}

// One prepare+execute round against the engine; returns false on a prepare
// error (already printed).
bool ServeQuery(Engine* engine, const ConjunctiveQuery& query,
                const PrepareOptions& prepare_options,
                const ExecuteRequest& request, bool print_rewriting,
                bool print_sql, bool evaluate) {
  PrepareResult prepared = engine->Prepare(query, prepare_options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "error: %s\n", prepared.status.ToString().c_str());
    return false;
  }
  const NdlProgram& program = prepared.query->program();
  std::fprintf(stderr, "rewriter: %s (%d clauses, depth %d, width %d)%s\n",
               RewriterName(prepared.query->kind()), program.num_clauses(),
               program.Depth(), program.Width(),
               prepared.cache_hit ? " [cached]" : "");
  if (print_sql) {
    SqlExport sql = ExportSql(program);
    std::printf("%s\n%s\n-- answers: SELECT * FROM %s;\n",
                sql.create_tables.c_str(), sql.create_views.c_str(),
                sql.goal_view.c_str());
  } else if (print_rewriting || !evaluate) {
    std::printf("%s", program.ToString().c_str());
  }
  if (evaluate) {
    ExecuteResult result = engine->Execute(*prepared.query, request);
    if (!result.status.ok()) {
      // Governed abort (rejected / cancelled / deadline / memory): report
      // it and whatever partial answers survived.
      std::fprintf(stderr, "error: %s%s\n",
                   result.status.ToString().c_str(),
                   result.partial ? " (partial answers)" : "");
      if (result.status.code() == StatusCode::kRejected) return false;
    }
    PrintAnswers(query, result, *engine->vocabulary());
  }
  return true;
}

// --repl: serve queries from stdin line by line.  Lines starting with '+'
// are fact additions in the ParseData syntax; '#' and blank lines are
// skipped.  Errors are printed and do not end the session.
int RunRepl(Engine* engine, const PrepareOptions& prepare_options,
            const ExecuteRequest& request, bool print_rewriting,
            bool print_sql) {
  std::string line, error;
  while (std::getline(std::cin, line)) {
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    if (line[start] == '+') {
      DataInstance delta(engine->vocabulary());
      if (!ParseData(line.substr(start + 1), &delta, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        continue;
      }
      uint64_t version = 0;
      Status apply_status =
          engine->ApplyFactsOrError(ToFactBatch(delta), &version);
      if (!apply_status.ok()) {
        std::fprintf(stderr, "error: %s\n", apply_status.message().c_str());
        continue;
      }
      std::fprintf(stderr, "snapshot v%llu\n",
                   static_cast<unsigned long long>(version));
      continue;
    }
    auto query = ParseQuery(line, engine->vocabulary(), &error);
    if (!query.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      continue;
    }
    ServeQuery(engine, *query, prepare_options, request, print_rewriting,
               print_sql, /*evaluate=*/true);
  }
  PlanCache::Stats stats = engine->cache_stats();
  std::fprintf(stderr, "plan cache: %ld hits, %ld misses, %ld evictions\n",
               stats.hits, stats.misses, stats.evictions);
  AnswerCache::Stats answers = engine->answer_cache_stats();
  if (answers.hits + answers.misses > 0) {
    std::fprintf(stderr, "answer cache: %ld hits, %ld misses, %ld evictions\n",
                 answers.hits, answers.misses, answers.evictions);
  }
  return 0;
}

// --stats-json: the engine's end-of-run stats through the wire's stats
// serialization (api::AppendEngineStats), so this file and the HTTP stats
// endpoint cannot drift apart.
bool WriteStatsJson(const Engine& engine, const std::string& path) {
  JsonWriter w;
  w.BeginObject();
  api::AppendEngineStats(&w, engine);
  w.EndObject();
  std::string json = w.TakeString();
  json.push_back('\n');
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

// Flipped by SIGINT/SIGTERM, polled by the --serve loop.
std::atomic<int> g_stop{0};

void HandleStopSignal(int) { g_stop.store(1); }

// --serve=PORT: serve ONTOLOGY [DATA] as the single tenant 'default' over
// HTTP until SIGINT/SIGTERM.  The governor flags are process budgets; with
// one tenant the registry's carve hands them over whole.
int RunServe(const char* ontology_path, const char* data_path, int port,
             int threads, long max_memory_mb, int max_concurrent,
             const EngineOptions& engine_template,
             const store::StoreOptions& store_template) {
  std::string ontology_text, data_text;
  if (!ReadFile(ontology_path, &ontology_text)) {
    std::fprintf(stderr, "cannot read %s\n", ontology_path);
    return 1;
  }
  if (data_path != nullptr && !ReadFile(data_path, &data_text)) {
    std::fprintf(stderr, "cannot read %s\n", data_path);
    return 1;
  }

  server::RegistryOptions reg_options;
  reg_options.max_tenants = 1;
  reg_options.process_memory_bytes =
      static_cast<size_t>(max_memory_mb) * 1024 * 1024;
  reg_options.process_slots = max_concurrent;
  reg_options.engine = engine_template;
  reg_options.store = store_template;  // Empty dir = in-memory tenants.
  server::EngineRegistry registry(reg_options);
  std::shared_ptr<server::Tenant> tenant;
  Status registered =
      registry.RegisterParsed("default", ontology_text, data_text, &tenant);
  if (!registered.ok()) {
    std::fprintf(stderr, "error: %s\n", registered.ToString().c_str());
    return 1;
  }

  api::Service service(&registry);
  server::HttpServerOptions http_options;
  http_options.port = port;
  if (threads > 1) http_options.num_workers = threads;
  server::HttpServer http(&service, http_options);
  Status started = http.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serving tenant 'default' (fingerprint %s) on "
               "http://127.0.0.1:%d%s/ -- Ctrl-C stops\n",
               tenant->fingerprint().c_str(), http.port(), api::kApiPrefix);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "stopping\n");
  http.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* ontology_path = nullptr;
  const char* query_path = nullptr;
  const char* data_path = nullptr;
  std::vector<const char*> positionals;
  std::string rewriter = "auto";
  std::string trace_json_path;
  std::string stats_json_path;
  int serve_port = -1;
  bool print_rewriting = false;
  bool print_sql = false;
  bool complete_instances = false;
  bool repl = false;
  bool incremental = false;
  int threads = 1;
  long max_memory_mb = 0;
  int max_concurrent = 0;
  long queue_timeout_ms = -1;
  long answer_cache_mb = 0;
  bool coalesce = true;
  std::string store_dir;
  bool store_fsync = true;
  long store_compact_mb = 64;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(kUsage, argv[0]);
      return 0;
    } else if (std::strncmp(argv[i], "--rewriter=", 11) == 0) {
      rewriter = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      if (threads < 1) {
        std::fprintf(stderr, "--threads needs a positive count, got '%s'\n",
                     argv[i] + 10);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--max-memory-mb=", 16) == 0) {
      max_memory_mb = std::atol(argv[i] + 16);
      if (max_memory_mb < 0) {
        std::fprintf(stderr, "--max-memory-mb needs >= 0, got '%s'\n",
                     argv[i] + 16);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--max-concurrent=", 17) == 0) {
      max_concurrent = std::atoi(argv[i] + 17);
      if (max_concurrent < 0) {
        std::fprintf(stderr, "--max-concurrent needs >= 0, got '%s'\n",
                     argv[i] + 17);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--queue-timeout-ms=", 19) == 0) {
      queue_timeout_ms = std::atol(argv[i] + 19);
      if (queue_timeout_ms < 0) {
        std::fprintf(stderr, "--queue-timeout-ms needs >= 0, got '%s'\n",
                     argv[i] + 19);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--answer-cache-mb=", 18) == 0) {
      answer_cache_mb = std::atol(argv[i] + 18);
      if (answer_cache_mb < 0) {
        std::fprintf(stderr, "--answer-cache-mb needs >= 0, got '%s'\n",
                     argv[i] + 18);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-coalesce") == 0) {
      coalesce = false;
    } else if (std::strncmp(argv[i], "--store-dir=", 12) == 0) {
      store_dir = argv[i] + 12;
      if (store_dir.empty()) {
        std::fprintf(stderr, "--store-dir needs a path\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--store-fsync=", 14) == 0) {
      const char* policy = argv[i] + 14;
      if (std::strcmp(policy, "always") == 0) {
        store_fsync = true;
      } else if (std::strcmp(policy, "never") == 0) {
        store_fsync = false;
      } else {
        std::fprintf(stderr,
                     "--store-fsync needs 'always' or 'never', got '%s'\n",
                     policy);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--store-compact-mb=", 19) == 0) {
      store_compact_mb = std::atol(argv[i] + 19);
      if (store_compact_mb < 0) {
        std::fprintf(stderr, "--store-compact-mb needs >= 0, got '%s'\n",
                     argv[i] + 19);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      trace_json_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
      stats_json_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve_port = std::atoi(argv[i] + 8);
      if (serve_port < 0 || serve_port > 65535) {
        std::fprintf(stderr, "--serve needs a port in [0, 65535], got '%s'\n",
                     argv[i] + 8);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--print-rewriting") == 0) {
      print_rewriting = true;
    } else if (std::strcmp(argv[i], "--sql") == 0) {
      print_sql = true;
    } else if (std::strcmp(argv[i], "--complete-instances") == 0) {
      complete_instances = true;
    } else if (std::strcmp(argv[i], "--repl") == 0) {
      repl = true;
    } else if (std::strcmp(argv[i], "--incremental") == 0) {
      incremental = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr, kUsage, argv[0]);
      return 2;
    } else if (positionals.size() < 3) {
      positionals.push_back(argv[i]);
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  // Assign the positionals only after every flag is parsed: --repl and
  // --serve take ONTOLOGY [DATA] (no query file), and must mean the same
  // thing whether they appear before or after the file arguments.
  bool has_query_positional = !repl && serve_port < 0;
  size_t want = has_query_positional ? 2u : 1u;
  if (positionals.size() < want ||
      positionals.size() > (has_query_positional ? 3u : 2u)) {
    std::fprintf(stderr, kUsage, argv[0]);
    return 2;
  }
  ontology_path = positionals[0];
  if (has_query_positional) {
    query_path = positionals[1];
    if (positionals.size() > 2) data_path = positionals[2];
  } else if (positionals.size() > 1) {
    data_path = positionals[1];
  }

  // The engine configuration depends only on flags; the --serve path hands
  // it to the registry as the per-tenant template.
  EngineOptions engine_options;
  engine_options.governor.max_memory_bytes =
      static_cast<size_t>(max_memory_mb) * 1024 * 1024;
  engine_options.governor.max_concurrent = max_concurrent;
  if (queue_timeout_ms >= 0) {
    engine_options.governor.queue_timeout_ms = queue_timeout_ms;
  }
  if (answer_cache_mb > 0) {
    engine_options.answer_cache_capacity = 256;
    engine_options.answer_cache_max_bytes =
        static_cast<size_t>(answer_cache_mb) * 1024 * 1024;
  }
  engine_options.coalesce = coalesce;

  store::StoreOptions store_options;
  store_options.dir = store_dir;  // Possibly empty (no durability).
  store_options.fsync = store_fsync;
  store_options.compact_log_bytes =
      static_cast<uint64_t>(store_compact_mb) * 1024 * 1024;

  if (serve_port >= 0) {
    return RunServe(ontology_path, data_path, serve_port, threads,
                    max_memory_mb, max_concurrent, engine_options,
                    store_options);
  }

  PrepareOptions prepare_options;
  prepare_options.rewrite.arbitrary_instances = !complete_instances;
  if (!ParseRewriterKind(rewriter, &prepare_options.auto_kind,
                         &prepare_options.kind)) {
    return 2;
  }

  // Install the trace collector before any pipeline stage runs so the
  // parse/rewrite/snapshot/evaluate spans all land in one registry.
  MetricsRegistry metrics;
  if (!trace_json_path.empty()) MetricsRegistry::SetGlobal(&metrics);

  std::string text, error;
  Vocabulary vocab;
  TBox tbox(&vocab);
  size_t parse_span = trace_json_path.empty() ? 0 : metrics.BeginSpan("parse");
  if (!ReadFile(ontology_path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", ontology_path);
    return 1;
  }
  if (!ParseTBox(text, &tbox, &error)) {
    std::fprintf(stderr, "%s: %s\n", ontology_path, error.c_str());
    return 1;
  }
  tbox.Normalize();

  std::optional<ConjunctiveQuery> query;
  if (query_path != nullptr) {
    if (!ReadFile(query_path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", query_path);
      return 1;
    }
    query = ParseQuery(text, &vocab, &error);
    if (!query.has_value()) {
      std::fprintf(stderr, "%s: %s\n", query_path, error.c_str());
      return 1;
    }
  }

  DataInstance data(&vocab);
  const bool have_data = data_path != nullptr;
  if (have_data) {
    if (!ReadFile(data_path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", data_path);
      return 1;
    }
    if (!ParseData(text, &data, &error)) {
      std::fprintf(stderr, "%s: %s\n", data_path, error.c_str());
      return 1;
    }
  }

  if (!trace_json_path.empty()) metrics.EndSpan(parse_span);

  // One engine serves every query of this invocation: ontology frozen and
  // fingerprinted, data snapshotted, plans cached, executions governed.
  // With --store-dir, Engine::Open first recovers durable state (DATA then
  // only seeds a fresh store) and '+' facts survive restarts.
  if (!store_dir.empty()) {
    std::shared_ptr<store::DurableStore> durable;
    Status store_status = store::DurableStore::Open(store_options, &durable);
    if (!store_status.ok()) {
      std::fprintf(stderr, "error: %s\n", store_status.ToString().c_str());
      return 1;
    }
    engine_options.store = std::move(durable);
  }
  Status open_status;
  std::unique_ptr<Engine> engine_owner =
      Engine::Open(tbox, data, nullptr, engine_options, &open_status);
  if (engine_owner == nullptr) {
    std::fprintf(stderr, "error: %s\n", open_status.ToString().c_str());
    return 1;
  }
  Engine& engine = *engine_owner;

  ExecuteRequest request;
  request.num_threads = threads;
  request.incremental = incremental;

  int status = 0;
  if (repl) {
    status = RunRepl(&engine, prepare_options, request, print_rewriting,
                     print_sql);
  } else {
    OmqProfile profile = ProfileOmq(engine.context(), *query);
    std::fprintf(stderr, "profile: %s\n", profile.ToString().c_str());
    // The cost model refines auto-selection when statistics are available
    // and more than one optimal rewriter applies.
    if (prepare_options.auto_kind && have_data && profile.tree_shaped &&
        profile.finite_depth()) {
      DataStatistics stats = DataStatistics::FromInstance(data);
      RewritingContext cost_ctx(engine.tbox());
      RewriterKind chosen;
      CostBasedRewrite(&cost_ctx, *query, stats, prepare_options.rewrite,
                       &chosen);
      prepare_options.auto_kind = false;
      prepare_options.kind = chosen;
    }
    if (!ServeQuery(&engine, *query, prepare_options, request,
                    print_rewriting, print_sql, /*evaluate=*/have_data)) {
      status = 1;
    }
  }

  if (!stats_json_path.empty() && !WriteStatsJson(engine, stats_json_path)) {
    std::fprintf(stderr, "cannot write stats to %s\n",
                 stats_json_path.c_str());
    return 1;
  }
  if (!trace_json_path.empty()) {
    MetricsRegistry::SetGlobal(nullptr);
    if (!metrics.WriteJsonFile(trace_json_path)) {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   trace_json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s\n", trace_json_path.c_str());
  }
  return status;
}
