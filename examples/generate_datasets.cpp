// Writes the Table 2 datasets as Turtle files (the format the paper's
// experiments loaded into RDFox).
//
//   $ ./example_generate_datasets [OUTPUT_DIR] [SCALE]
//
// OUTPUT_DIR defaults to "."; SCALE in (0, 1] defaults to 0.1
// (1.0 reproduces the paper's dataset sizes).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "syntax/turtle.h"
#include "workloads/paper_workloads.h"

int main(int argc, char** argv) {
  using namespace owlqr;
  std::string dir = argc > 1 ? argv[1] : ".";
  double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  Vocabulary vocab;
  auto tbox = MakeExample11TBox(&vocab);
  for (const DatasetConfig& config : Table2Configs(scale)) {
    DataInstance data = GenerateDataset(&vocab, *tbox, config);
    std::string path = dir + "/" + config.name + ".ttl";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << WriteTurtle(data);
    long edges =
        static_cast<long>(data.RolePairs(vocab.FindPredicate("R")).size());
    std::printf("%-12s V=%6d  p=%.4f  q=%.4f  avg degree=%5.1f  atoms=%ld\n",
                path.c_str(), data.num_individuals(),
                config.edge_probability, config.label_probability,
                data.num_individuals() > 0
                    ? static_cast<double>(edges) / data.num_individuals()
                    : 0.0,
                data.NumAtoms());
  }
  return 0;
}
