// A realistic OBDA scenario in the style the paper's introduction motivates:
// a finite-depth university ontology (cf. the NPD FactPages ontology of
// depth 5 cited in Section 6), a generated "database", and several
// tree-shaped user queries answered through the optimal NDL rewritings.
//
//   $ ./example_university_obda

#include <chrono>
#include <cstdio>
#include <random>

#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "syntax/parser.h"
#include "util/logging.h"
#include <utility>

namespace {

using namespace owlqr;
using Clock = std::chrono::steady_clock;

DataInstance GenerateUniversity(Vocabulary* vocab, int departments,
                                int professors_per_dept, uint64_t seed) {
  DataInstance data(vocab);
  std::mt19937_64 rng(seed);
  int member_of = vocab->InternPredicate("memberOf");
  int lectures = vocab->InternPredicate("lectures");
  int enrolled_in = vocab->InternPredicate("enrolledIn");
  int professor = vocab->InternConcept("Professor");
  int dean = vocab->InternConcept("Dean");
  int student = vocab->InternConcept("Student");

  for (int d = 0; d < departments; ++d) {
    int dept = vocab->InternIndividual("dept" + std::to_string(d));
    for (int p = 0; p < professors_per_dept; ++p) {
      int prof = vocab->InternIndividual("prof_" + std::to_string(d) + "_" +
                                         std::to_string(p));
      data.AddConceptAssertion(professor, prof);
      if (p == 0) data.AddConceptAssertion(dean, prof);
      data.AddRoleAssertion(member_of, prof, dept);
      // Half of the professors have explicit courses; the other half only
      // the ontology's existential ones.
      if (rng() % 2 == 0) {
        int course = vocab->InternIndividual("course_" + std::to_string(d) +
                                             "_" + std::to_string(p));
        data.AddRoleAssertion(lectures, prof, course);
        for (int s = 0; s < 3; ++s) {
          int stu = vocab->InternIndividual(
              "student_" + std::to_string(rng() % 50));
          data.AddConceptAssertion(student, stu);
          data.AddRoleAssertion(enrolled_in, stu, course);
        }
      }
    }
  }
  return data;
}

}  // namespace

int main() {
  Vocabulary vocab;
  TBox tbox(&vocab);
  std::string error;
  // Depth-2 ontology: professors teach courses, courses have enrolments.
  const char* ontology = R"(
      Dean SUB Professor
      Professor SUB Employee
      Professor SUB EX teaches
      lectures SUBR teaches
      EX teaches- SUB Course
      Course SUB EX enrolledIn-
      EX enrolledIn SUB Student
      EX memberOf SUB Employee
      memberOf SUBR affiliatedWith
  )";
  if (!ParseTBox(ontology, &tbox, &error)) {
    std::fprintf(stderr, "ontology error: %s\n", error.c_str());
    return 1;
  }
  tbox.Normalize();
  RewritingContext ctx(tbox);

  DataInstance data = GenerateUniversity(&vocab, 20, 12, /*seed=*/7);
  std::printf("university database: %ld atoms, %d individuals\n\n",
              data.NumAtoms(), data.num_individuals());

  const char* queries[] = {
      // Who teaches a course someone is enrolled in?  (Existential courses
      // contribute answers: the ontology guarantees enrolment.)
      "q(x) :- teaches(x, y), Course(y), enrolledIn(z, y)",
      // Employees affiliated with something (memberOf is a subrole).
      "q(x) :- Employee(x), affiliatedWith(x, d)",
      // A linear 2-leaf chain: dean -> course -> student.
      "q(x, z) :- Dean(x), teaches(x, y), enrolledIn(z, y), Student(z)",
  };

  for (const char* text : queries) {
    auto query = ParseQuery(text, &vocab, &error);
    if (!query.has_value()) {
      std::fprintf(stderr, "query error: %s\n", error.c_str());
      return 1;
    }
    std::printf("query: %s\n", text);
    for (RewriterKind kind : {RewriterKind::kLin, RewriterKind::kLog,
                              RewriterKind::kTwStar}) {
      RewriteOptions options;
      options.arbitrary_instances = true;
      auto t0 = Clock::now();
      RewriteResult program_rw = RewriteOmqOrError(&ctx, *query, kind, options);
      OWLQR_CHECK_MSG(program_rw.ok(), program_rw.status.message().c_str());
      NdlProgram program = std::move(program_rw.program);
      auto t1 = Clock::now();
      EvaluationStats stats;
      Evaluator eval(program, data);
      auto answers = eval.Evaluate(&stats);
      auto t2 = Clock::now();
      std::printf(
          "  %-4s: %3d clauses, %4zu answers, %6ld tuples, "
          "rewrite %.2f ms, eval %.2f ms\n",
          RewriterName(kind), program.num_clauses(), answers.size(),
          stats.generated_tuples,
          std::chrono::duration<double, std::milli>(t1 - t0).count(),
          std::chrono::duration<double, std::milli>(t2 - t1).count());
    }
    std::printf("\n");
  }
  return 0;
}
