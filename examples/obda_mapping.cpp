// The full OBDA pipeline of the paper's introduction: a relational source
// database D, a GAV mapping M into the ontology vocabulary, and an
// ontology-mediated query answered two ways —
//   (1) materialise the virtual ABox M(D) and evaluate the rewriting, and
//   (2) unfold the rewriting through M and evaluate directly over D
//       ("so there is no need to materialise M(D)").
//
//   $ ./example_obda_mapping

#include <cstdio>

#include "core/mapping.h"
#include "core/rewriters.h"
#include "ndl/evaluator.h"
#include "syntax/parser.h"
#include "util/logging.h"
#include <utility>

int main() {
  using namespace owlqr;

  Vocabulary vocab;
  TBox tbox(&vocab);
  std::string error;
  if (!ParseTBox(R"(
        Professor SUB EX teaches
        EX teaches- SUB Course
        Dean SUB Professor
      )",
                 &tbox, &error)) {
    std::fprintf(stderr, "ontology: %s\n", error.c_str());
    return 1;
  }
  tbox.Normalize();

  // The source database: a plain HR schema that knows nothing about the
  // ontology.
  TableStore tables(&vocab);
  int staff = tables.AddTable("staff", 2);     // (person, position)
  int courses = tables.AddTable("courses", 2); // (course, lecturer)
  tables.AddRow("staff", {"ann", "professor"});
  tables.AddRow("staff", {"dana", "dean"});
  tables.AddRow("staff", {"eve", "admin"});
  tables.AddRow("courses", {"algebra", "bob"});
  tables.AddRow("courses", {"logic", "ann"});

  // The GAV mapping M.
  GavMapping mapping(&vocab, &tables);
  mapping.AddConceptRule(
      vocab.InternConcept("Professor"), 0,
      {{staff,
        {Term::Var(0), Term::Const(vocab.InternIndividual("professor"))}}});
  mapping.AddConceptRule(
      vocab.InternConcept("Dean"), 0,
      {{staff, {Term::Var(0), Term::Const(vocab.InternIndividual("dean"))}}});
  mapping.AddRoleRule(vocab.InternPredicate("teaches"), 1, 0,
                      {{courses, {Term::Var(0), Term::Var(1)}}});

  auto query = ParseQuery("q(x) :- teaches(x, y), Course(y)", &vocab, &error);
  if (!query.has_value()) {
    std::fprintf(stderr, "query: %s\n", error.c_str());
    return 1;
  }

  RewritingContext ctx(tbox);
  RewriteOptions options;
  options.arbitrary_instances = true;
  RewriteResult rewriting_rw = RewriteOmqOrError(&ctx, *query, RewriterKind::kTwStar, options);
  OWLQR_CHECK_MSG(rewriting_rw.ok(), rewriting_rw.status.message().c_str());
  NdlProgram rewriting = std::move(rewriting_rw.program);

  // Pipeline (1): materialise M(D).
  DataInstance virtual_abox = MaterializeMapping(mapping, tables);
  std::printf("virtual ABox M(D): %ld atoms\n%s\n", virtual_abox.NumAtoms(),
              virtual_abox.ToString().c_str());
  Evaluator over_abox(rewriting, virtual_abox);
  auto via_materialisation = over_abox.Evaluate();

  // Pipeline (2): unfold and evaluate over the raw tables.
  NdlProgram unfolded = UnfoldThroughMapping(rewriting, mapping);
  std::printf("unfolded rewriting over the source schema:\n%s\n",
              unfolded.ToString().c_str());
  DataInstance empty(&vocab);
  Evaluator over_tables(unfolded, empty, tables);
  auto via_unfolding = over_tables.Evaluate();

  std::printf("answers via materialised M(D):");
  for (const auto& t : via_materialisation) {
    std::printf(" %s", vocab.IndividualName(t[0]).c_str());
  }
  std::printf("\nanswers via mapping unfolding: ");
  for (const auto& t : via_unfolding) {
    std::printf(" %s", vocab.IndividualName(t[0]).c_str());
  }
  std::printf("\nagree: %s\n",
              via_materialisation == via_unfolding ? "yes" : "NO (bug!)");
  return via_materialisation == via_unfolding ? 0 : 1;
}
