#ifndef OWLQR_SERVER_REGISTRY_H_
#define OWLQR_SERVER_REGISTRY_H_

// Multi-tenant engine registry: one process serves many ontologies.
//
// A Tenant bundles everything one served ontology needs — its own
// Vocabulary (engines reference the vocabulary for their whole lifetime),
// the Engine built over the frozen TBox + initial data, and the lock that
// makes name<->id translation safe under concurrent requests.  Tenants are
// keyed by the engine's TBox fingerprint (the same FNV-1a hash the plan
// cache keys on), so two registrations of byte-identical ontologies are
// detected as duplicates no matter what names they were given; a
// human-readable alias is kept alongside for addressable URLs.
//
// Resource carving: the registry is configured with a PROCESS-wide memory
// budget and execution-slot count, and carves both equally across
// `max_tenants` at registration time (every tenant gets
// process_total / max_tenants, floored at one slot).  The carve is static —
// an early tenant can never starve a later one by grabbing the whole
// budget, and the sum across tenants never exceeds the process totals.
//
// Thread-safety: Register / Find / List may be called concurrently; the
// returned shared_ptr<Tenant> stays valid for as long as the caller holds
// it, even across later registrations.

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "data/table_store.h"
#include "engine/engine.h"
#include "ontology/vocabulary.h"
#include "util/status.h"

namespace owlqr {
namespace server {

struct RegistryOptions {
  // Registrations beyond this fail with kRejected; the carve divides the
  // process totals by this number, so it also sets each tenant's share.
  size_t max_tenants = 4;
  // Process-wide memory budget for execution-owned allocations, split
  // equally across max_tenants (0 = track only, no limit anywhere).
  size_t process_memory_bytes = 0;
  // Process-wide execution slots, split equally across max_tenants with a
  // floor of one slot per tenant (0 = unlimited everywhere).
  int process_slots = 0;
  // Template for every tenant's engine; the governor's max_memory_bytes and
  // max_concurrent are overwritten by the carve described above.
  EngineOptions engine;
  // Durability template.  store.dir names the ROOT directory; each tenant
  // gets its own DurableStore under <root>/StoreDirNameForTenant(name),
  // opened
  // through Engine::Open (so registering a tenant whose store already holds
  // state recovers it and ignores the registration's data text).  An empty
  // dir (the default) keeps every tenant in-memory.  engine.store must stay
  // null — the registry builds the per-tenant store itself.
  store::StoreOptions store;
};

// The directory name a tenant's DurableStore lives under (relative to the
// registry's store root).  Injective: bytes outside the portable filename
// alphabet — and '%' itself — are percent-encoded as %XX, so distinct
// tenant names ('a/b', 'a:b', 'a_b') can never collide onto one directory
// and silently share (or corrupt) each other's durable state.  "." and ".."
// are fully encoded so an alias can't escape the root.
std::string StoreDirNameForTenant(const std::string& name);

// One served ontology: vocabulary + engine + the vocabulary lock.
class Tenant {
 public:
  Tenant(std::string name, std::unique_ptr<Vocabulary> vocab,
         const TBox& tbox, const DataInstance& data, const TableStore* tables,
         const EngineOptions& options);
  // Adopts an engine built elsewhere (Engine::Open for store-backed
  // tenants).  `vocab` must be the vocabulary the engine references.
  Tenant(std::string name, std::unique_ptr<Vocabulary> vocab,
         std::unique_ptr<Engine> engine);

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& name() const { return name_; }
  // Lower-case hex of the engine's TBox fingerprint — the registry key and
  // the tenant's canonical wire identifier.
  const std::string& fingerprint() const { return fingerprint_; }
  Engine* engine() const { return engine_.get(); }
  Vocabulary* vocabulary() const { return vocab_.get(); }

  // Guards the tenant's vocabulary against the Interner's unsynchronized
  // growth: anything that may intern new names (parsing a query, building a
  // fact batch, Engine::Prepare on a cache miss — rewriting interns fresh
  // IDB predicate names) takes it exclusively; read-only name lookups
  // (serialising answer tuples) take it shared.  Engine::Execute itself
  // never touches the vocabulary and runs outside the lock.
  std::shared_mutex& vocab_mutex() const { return vocab_mutex_; }

 private:
  const std::string name_;
  std::unique_ptr<Vocabulary> vocab_;
  std::unique_ptr<Engine> engine_;
  std::string fingerprint_;
  mutable std::shared_mutex vocab_mutex_;
};

class EngineRegistry {
 public:
  explicit EngineRegistry(const RegistryOptions& options = {});

  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;

  // Builds a tenant from ontology / data text in the src/syntax parser
  // grammar and registers it.  Parse failures come back as
  // kInvalidArgument, a duplicate name or TBox as kInvalidArgument, a full
  // registry as kRejected.  `out` (nullable) receives the tenant.
  Status RegisterParsed(const std::string& name,
                        const std::string& ontology_text,
                        const std::string& data_text,
                        std::shared_ptr<Tenant>* out = nullptr);

  // Registers a tenant from already-built pieces.  `vocab` must be the
  // vocabulary `tbox` and `data` were built against; the tenant takes
  // ownership.  Same failure taxonomy as RegisterParsed.
  Status Register(const std::string& name, std::unique_ptr<Vocabulary> vocab,
                  const TBox& tbox, const DataInstance& data,
                  const TableStore* tables = nullptr,
                  std::shared_ptr<Tenant>* out = nullptr);

  // Lookup by alias or fingerprint hex; null when unknown.
  std::shared_ptr<Tenant> Find(const std::string& name_or_fingerprint) const;

  // Registration-ordered snapshot of every tenant.
  std::vector<std::shared_ptr<Tenant>> List() const;

  size_t size() const;
  const RegistryOptions& options() const { return options_; }

  // The per-tenant shares the carve hands out (what a new registration
  // will be governed by).
  size_t tenant_memory_bytes() const;
  int tenant_slots() const;

 private:
  const RegistryOptions options_;
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Tenant>> tenants_;  // Registration order.
};

}  // namespace server
}  // namespace owlqr

#endif  // OWLQR_SERVER_REGISTRY_H_
