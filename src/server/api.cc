#include "server/api.h"

#include <mutex>
#include <shared_mutex>
#include <utility>

#include "cq/cq.h"
#include "data/snapshot.h"
#include "syntax/parser.h"
#include "util/metrics.h"

namespace owlqr {
namespace api {

namespace {

// Reverse of StatusCodeName; false on an unknown spelling.
bool StatusCodeFromName(const std::string& name, StatusCode* out) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kUnsupportedShape, StatusCode::kNotFound,
      StatusCode::kCancelled,    StatusCode::kDeadlineExceeded,
      StatusCode::kMemoryExceeded,   StatusCode::kRejected,
      StatusCode::kDataLoss,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

// Typed member readers over hostile bodies.  A missing member leaves the
// default in place and returns OK; a member of the wrong JSON type is a
// kInvalidArgument naming the field.
Status ReadString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_string()) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a string");
  }
  *out = v->AsString();
  return Status::Ok();
}

Status ReadBool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_bool()) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a boolean");
  }
  *out = v->AsBool();
  return Status::Ok();
}

Status ReadLong(const JsonValue& obj, const char* key, long* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number()) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a number");
  }
  *out = v->AsLong();
  return Status::Ok();
}

Status ReadInt(const JsonValue& obj, const char* key, int* out) {
  long value = *out;
  Status s = ReadLong(obj, key, &value);
  if (!s.ok()) return s;
  *out = static_cast<int>(value);
  return Status::Ok();
}

Status ReadUInt64(const JsonValue& obj, const char* key, uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number() || v->AsDouble() < 0) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a non-negative number");
  }
  *out = static_cast<uint64_t>(v->AsDouble());
  return Status::Ok();
}

// The string member `key` of `obj`, required and non-empty.
Status RequireString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_string() || v->AsString().empty()) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' (non-empty string) is required");
  }
  *out = v->AsString();
  return Status::Ok();
}

Status RequireObjectBody(const std::string& body, JsonValue* out) {
  std::string error;
  if (!JsonValue::Parse(body, out, &error)) {
    return Status::InvalidArgument("request body is not JSON: " + error);
  }
  if (!out->is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return Status::Ok();
}

void WriteStatusObject(JsonWriter* w, const Status& status) {
  w->Key("status");
  w->BeginObject();
  w->KV("code", StatusCodeName(status.code()));
  w->KV("message", status.message());
  w->EndObject();
}

Response ErrorResponse(Status status) {
  Response response;
  response.body = ErrorBody(status);
  response.status = std::move(status);
  return response;
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kPrepare:
      return "prepare";
    case Verb::kExecute:
      return "execute";
    case Verb::kApplyFacts:
      return "apply-facts";
    case Verb::kStats:
      return "stats";
    case Verb::kTenants:
      return "tenants";
    case Verb::kMetrics:
      return "metrics";
  }
  return "?";
}

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kUnsupportedShape:
      return 422;
    case StatusCode::kRejected:
      return 429;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kMemoryExceeded:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kDataLoss:
      return 500;  // Durable-state failure: not the client's fault.
  }
  return 500;
}

StatusCode StatusCodeForHttp(int http_status) {
  switch (http_status) {
    case 200:
      return StatusCode::kOk;
    case 400:
      return StatusCode::kInvalidArgument;
    case 404:
      return StatusCode::kNotFound;
    case 422:
      return StatusCode::kUnsupportedShape;
    case 429:
      return StatusCode::kRejected;
    case 499:
      return StatusCode::kCancelled;
    // 500 deliberately has no case: kDataLoss encodes to 500 but a bare 500
    // is any internal error, so it falls to the generic 5xx bucket below.
    // A real durable-state failure still decodes as kDataLoss through the
    // error envelope's status-code name (ParseErrorBody).
    case 503:
      return StatusCode::kMemoryExceeded;
    case 504:
      return StatusCode::kDeadlineExceeded;
    default:
      return (http_status >= 400 && http_status < 500)
                 ? StatusCode::kInvalidArgument
                 : StatusCode::kRejected;
  }
}

const char* HttpReasonPhrase(int http_status) {
  switch (http_status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 411:
      return "Length Required";
    case 413:
      return "Payload Too Large";
    case 422:
      return "Unprocessable Content";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 499:
      return "Client Closed Request";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Unknown";
  }
}

std::string ErrorBody(const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.KV("code", StatusCodeName(status.code()));
  w.KV("http", HttpStatusFor(status.code()));
  w.KV("message", status.message());
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

bool ParseErrorBody(const JsonValue& body, Status* out) {
  const JsonValue* error = body.Find("error");
  if (error == nullptr || !error->is_object()) return false;
  const JsonValue* code = error->Find("code");
  if (code == nullptr || !code->is_string()) return false;
  StatusCode status_code;
  if (!StatusCodeFromName(code->AsString(), &status_code)) return false;
  const JsonValue* message = error->Find("message");
  *out = Status(status_code,
                message != nullptr && message->is_string() ? message->AsString()
                                                           : std::string());
  return true;
}

Status ExecuteRequestFromJson(const JsonValue& body, WireExecuteRequest* out) {
  *out = WireExecuteRequest();
  if (!body.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  Status s = RequireString(body, "query", &out->query);
  if (!s.ok()) return s;
  if (!(s = ReadString(body, "rewriter", &out->rewriter)).ok()) return s;
  if (!(s = ReadBool(body, "complete_instances", &out->complete_instances))
           .ok()) {
    return s;
  }
  if (!(s = ReadInt(body, "num_threads", &out->exec.num_threads)).ok()) {
    return s;
  }
  if (!(s = ReadBool(body, "incremental", &out->exec.incremental)).ok()) {
    return s;
  }
  if (!(s = ReadLong(body, "queue_timeout_ms", &out->exec.queue_timeout_ms))
           .ok()) {
    return s;
  }
  const JsonValue* limits = body.Find("limits");
  if (limits != nullptr) {
    if (!limits->is_object()) {
      return Status::InvalidArgument("'limits' must be an object");
    }
    EvaluatorLimits* l = &out->exec.limits;
    if (!(s = ReadLong(*limits, "max_generated_tuples",
                       &l->max_generated_tuples))
             .ok()) {
      return s;
    }
    if (!(s = ReadLong(*limits, "max_work", &l->max_work)).ok()) return s;
    if (!(s = ReadLong(*limits, "deadline_ms", &l->deadline_ms)).ok()) return s;
    if (!(s = ReadLong(*limits, "morsel_rows", &l->morsel_rows)).ok()) return s;
    if (!(s = ReadLong(*limits, "batch_rows", &l->batch_rows)).ok()) return s;
  }
  return Status::Ok();
}

std::string ExecuteRequestToJson(const WireExecuteRequest& wire) {
  JsonWriter w;
  w.BeginObject();
  w.KV("query", wire.query);
  w.KV("rewriter", wire.rewriter);
  w.KV("complete_instances", wire.complete_instances);
  w.KV("num_threads", wire.exec.num_threads);
  w.KV("incremental", wire.exec.incremental);
  w.KV("queue_timeout_ms", wire.exec.queue_timeout_ms);
  w.Key("limits");
  w.BeginObject();
  w.KV("max_generated_tuples", wire.exec.limits.max_generated_tuples);
  w.KV("max_work", wire.exec.limits.max_work);
  w.KV("deadline_ms", wire.exec.limits.deadline_ms);
  w.KV("morsel_rows", wire.exec.limits.morsel_rows);
  w.KV("batch_rows", wire.exec.limits.batch_rows);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

namespace {

// The shared tail of both ExecuteResultToJson overloads: everything after
// the answers array.
template <typename AnswerEmitter>
std::string ExecuteResultJson(const Status& status, uint64_t snapshot_version,
                              bool partial, bool degraded, bool incremental,
                              bool cached, bool coalesced, long goal_tuples,
                              long generated_tuples, long join_emissions,
                              AnswerEmitter&& emit_answers) {
  JsonWriter w;
  w.BeginObject();
  WriteStatusObject(&w, status);
  w.KV("snapshot_version", snapshot_version);
  w.KV("partial", partial);
  w.KV("degraded", degraded);
  w.KV("incremental", incremental);
  w.KV("cached", cached);
  w.KV("coalesced", coalesced);
  w.Key("answers");
  w.BeginArray();
  emit_answers(&w);
  w.EndArray();
  w.Key("stats");
  w.BeginObject();
  w.KV("goal_tuples", goal_tuples);
  w.KV("generated_tuples", generated_tuples);
  w.KV("join_emissions", join_emissions);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace

std::string ExecuteResultToJson(const ExecuteResult& result,
                                const Vocabulary& vocab) {
  return ExecuteResultJson(
      result.status, result.snapshot_version, result.partial, result.degraded,
      result.incremental, result.cached, result.coalesced,
      result.stats.goal_tuples, result.stats.generated_tuples,
      result.stats.join_emissions, [&](JsonWriter* w) {
        for (const std::vector<int>& tuple : result.answers) {
          w->BeginArray();
          for (int id : tuple) w->String(vocab.IndividualName(id));
          w->EndArray();
        }
      });
}

std::string ExecuteResultToJson(const WireExecuteResult& wire) {
  return ExecuteResultJson(
      wire.status, wire.snapshot_version, wire.partial, wire.degraded,
      wire.incremental, wire.cached, wire.coalesced, wire.goal_tuples,
      wire.generated_tuples, wire.join_emissions, [&](JsonWriter* w) {
        for (const std::vector<std::string>& tuple : wire.answers) {
          w->BeginArray();
          for (const std::string& name : tuple) w->String(name);
          w->EndArray();
        }
      });
}

Status ExecuteResultFromJson(const JsonValue& body, WireExecuteResult* out) {
  *out = WireExecuteResult();
  if (!body.is_object()) {
    return Status::InvalidArgument("result body must be a JSON object");
  }
  const JsonValue* status = body.Find("status");
  if (status == nullptr || !status->is_object()) {
    return Status::InvalidArgument("'status' (object) is required");
  }
  const JsonValue* code = status->Find("code");
  StatusCode status_code = StatusCode::kOk;
  if (code == nullptr || !code->is_string() ||
      !StatusCodeFromName(code->AsString(), &status_code)) {
    return Status::InvalidArgument("'status.code' is not a status name");
  }
  std::string message;
  Status s = ReadString(*status, "message", &message);
  if (!s.ok()) return s;
  out->status = Status(status_code, std::move(message));
  if (!(s = ReadUInt64(body, "snapshot_version", &out->snapshot_version))
           .ok()) {
    return s;
  }
  if (!(s = ReadBool(body, "partial", &out->partial)).ok()) return s;
  if (!(s = ReadBool(body, "degraded", &out->degraded)).ok()) return s;
  if (!(s = ReadBool(body, "incremental", &out->incremental)).ok()) return s;
  if (!(s = ReadBool(body, "cached", &out->cached)).ok()) return s;
  if (!(s = ReadBool(body, "coalesced", &out->coalesced)).ok()) return s;
  const JsonValue* answers = body.Find("answers");
  if (answers == nullptr || !answers->is_array()) {
    return Status::InvalidArgument("'answers' (array) is required");
  }
  out->answers.reserve(answers->items().size());
  for (const JsonValue& tuple : answers->items()) {
    if (!tuple.is_array()) {
      return Status::InvalidArgument("'answers' entries must be arrays");
    }
    std::vector<std::string> names;
    names.reserve(tuple.items().size());
    for (const JsonValue& name : tuple.items()) {
      if (!name.is_string()) {
        return Status::InvalidArgument("answer terms must be strings");
      }
      names.push_back(name.AsString());
    }
    out->answers.push_back(std::move(names));
  }
  const JsonValue* stats = body.Find("stats");
  if (stats != nullptr) {
    if (!stats->is_object()) {
      return Status::InvalidArgument("'stats' must be an object");
    }
    if (!(s = ReadLong(*stats, "goal_tuples", &out->goal_tuples)).ok()) {
      return s;
    }
    if (!(s = ReadLong(*stats, "generated_tuples", &out->generated_tuples))
             .ok()) {
      return s;
    }
    if (!(s = ReadLong(*stats, "join_emissions", &out->join_emissions)).ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status FactBatchFromJson(const JsonValue& body, WireFactBatch* out) {
  *out = WireFactBatch();
  if (!body.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  const JsonValue* concepts = body.Find("concepts");
  if (concepts != nullptr) {
    if (!concepts->is_array()) {
      return Status::InvalidArgument("'concepts' must be an array");
    }
    for (const JsonValue& fact : concepts->items()) {
      if (!fact.is_object()) {
        return Status::InvalidArgument("'concepts' entries must be objects");
      }
      WireFactBatch::ConceptFact parsed;
      Status s = RequireString(fact, "concept", &parsed.concept_name);
      if (!s.ok()) return s;
      if (!(s = RequireString(fact, "individual", &parsed.individual)).ok()) {
        return s;
      }
      out->concepts.push_back(std::move(parsed));
    }
  }
  const JsonValue* roles = body.Find("roles");
  if (roles != nullptr) {
    if (!roles->is_array()) {
      return Status::InvalidArgument("'roles' must be an array");
    }
    for (const JsonValue& fact : roles->items()) {
      if (!fact.is_object()) {
        return Status::InvalidArgument("'roles' entries must be objects");
      }
      WireFactBatch::RoleFact parsed;
      Status s = RequireString(fact, "role", &parsed.role);
      if (!s.ok()) return s;
      if (!(s = RequireString(fact, "subject", &parsed.subject)).ok()) return s;
      if (!(s = RequireString(fact, "object", &parsed.object)).ok()) return s;
      out->roles.push_back(std::move(parsed));
    }
  }
  return Status::Ok();
}

std::string FactBatchToJson(const WireFactBatch& batch) {
  JsonWriter w;
  w.BeginObject();
  w.Key("concepts");
  w.BeginArray();
  for (const auto& fact : batch.concepts) {
    w.BeginObject();
    w.KV("concept", fact.concept_name);
    w.KV("individual", fact.individual);
    w.EndObject();
  }
  w.EndArray();
  w.Key("roles");
  w.BeginArray();
  for (const auto& fact : batch.roles) {
    w.BeginObject();
    w.KV("role", fact.role);
    w.KV("subject", fact.subject);
    w.KV("object", fact.object);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string GovernorCountersToJson(const QueryGovernor::Counters& counters) {
  JsonWriter w;
  w.BeginObject();
  w.KV("admitted", counters.admitted);
  w.KV("queued", counters.queued);
  w.KV("rejected_queue_full", counters.rejected_queue_full);
  w.KV("rejected_timeout", counters.rejected_timeout);
  w.KV("cancelled", counters.cancelled);
  w.KV("deadline_exceeded", counters.deadline_exceeded);
  w.KV("memory_exceeded", counters.memory_exceeded);
  w.KV("degraded_retries", counters.degraded_retries);
  w.KV("answer_cache_hits", counters.answer_cache_hits);
  w.KV("coalesced", counters.coalesced);
  w.KV("memory_used", counters.memory_used);
  w.KV("memory_high_water", counters.memory_high_water);
  w.EndObject();
  return w.TakeString();
}

Status GovernorCountersFromJson(const JsonValue& body,
                                QueryGovernor::Counters* out) {
  *out = QueryGovernor::Counters();
  if (!body.is_object()) {
    return Status::InvalidArgument("counters body must be a JSON object");
  }
  Status s;
  if (!(s = ReadLong(body, "admitted", &out->admitted)).ok()) return s;
  if (!(s = ReadLong(body, "queued", &out->queued)).ok()) return s;
  if (!(s = ReadLong(body, "rejected_queue_full", &out->rejected_queue_full))
           .ok()) {
    return s;
  }
  if (!(s = ReadLong(body, "rejected_timeout", &out->rejected_timeout)).ok()) {
    return s;
  }
  if (!(s = ReadLong(body, "cancelled", &out->cancelled)).ok()) return s;
  if (!(s = ReadLong(body, "deadline_exceeded", &out->deadline_exceeded))
           .ok()) {
    return s;
  }
  if (!(s = ReadLong(body, "memory_exceeded", &out->memory_exceeded)).ok()) {
    return s;
  }
  if (!(s = ReadLong(body, "degraded_retries", &out->degraded_retries)).ok()) {
    return s;
  }
  if (!(s = ReadLong(body, "answer_cache_hits", &out->answer_cache_hits))
           .ok()) {
    return s;
  }
  if (!(s = ReadLong(body, "coalesced", &out->coalesced)).ok()) return s;
  uint64_t memory = 0;
  if (!(s = ReadUInt64(body, "memory_used", &memory)).ok()) return s;
  out->memory_used = static_cast<size_t>(memory);
  memory = 0;
  if (!(s = ReadUInt64(body, "memory_high_water", &memory)).ok()) return s;
  out->memory_high_water = static_cast<size_t>(memory);
  return Status::Ok();
}

Service::Service(server::EngineRegistry* registry) : registry_(registry) {}

Response Service::Handle(const Request& request) {
  switch (request.verb) {
    case Verb::kTenants:
      return Tenants();
    case Verb::kMetrics:
      return Metrics();
    default:
      break;
  }
  std::shared_ptr<server::Tenant> tenant = registry_->Find(request.tenant);
  if (tenant == nullptr) {
    return ErrorResponse(
        Status::NotFound("unknown tenant '" + request.tenant + "'"));
  }
  switch (request.verb) {
    case Verb::kPrepare:
      return Prepare(*tenant, request);
    case Verb::kExecute:
      return Execute(*tenant, request);
    case Verb::kApplyFacts:
      return ApplyFacts(*tenant, request);
    case Verb::kStats:
      return Stats(*tenant);
    case Verb::kTenants:
    case Verb::kMetrics:
      break;  // Handled above.
  }
  return ErrorResponse(Status::InvalidArgument("unknown verb"));
}

namespace {

// Parses the prepare/execute body and resolves its rewriter name.  On
// success, `*prepared` holds the plan; parsing and Prepare (which may
// intern fresh IDB names on a cache miss) run under the tenant's exclusive
// vocabulary lock, released before the caller evaluates.
Status PrepareFromWire(server::Tenant& tenant, const std::string& body,
                       WireExecuteRequest* wire,
                       std::shared_ptr<const PreparedQuery>* prepared,
                       bool* cache_hit = nullptr) {
  JsonValue parsed_body;
  Status s = RequireObjectBody(body, &parsed_body);
  if (!s.ok()) return s;
  if (!(s = ExecuteRequestFromJson(parsed_body, wire)).ok()) return s;

  PrepareOptions options;
  if (!RewriterKindFromName(wire->rewriter, &options.auto_kind,
                            &options.kind)) {
    return Status::InvalidArgument(
        "unknown rewriter '" + wire->rewriter +
        "'; valid kinds: lin, log, tw, twstar, ucq, presto, auto");
  }
  options.rewrite.arbitrary_instances = !wire->complete_instances;

  std::unique_lock<std::shared_mutex> vocab_lock(tenant.vocab_mutex());
  std::string error;
  std::optional<ConjunctiveQuery> query =
      ParseQuery(wire->query, tenant.vocabulary(), &error);
  if (!query.has_value()) {
    return Status::InvalidArgument("query: " + error);
  }
  PrepareResult result = tenant.engine()->Prepare(*query, options);
  if (!result.ok()) return result.status;
  *prepared = std::move(result.query);
  if (cache_hit != nullptr) *cache_hit = result.cache_hit;
  return Status::Ok();
}

}  // namespace

Response Service::Prepare(server::Tenant& tenant, const Request& request) {
  WireExecuteRequest wire;
  std::shared_ptr<const PreparedQuery> prepared;
  bool cache_hit = false;
  Status s = PrepareFromWire(tenant, request.body, &wire, &prepared, &cache_hit);
  if (!s.ok()) return ErrorResponse(std::move(s));

  JsonWriter w;
  w.BeginObject();
  // The wire spelling, not the display name: a client can echo it straight
  // back as the next request's "rewriter" member.
  w.KV("rewriter", RewriterWireName(prepared->kind()));
  w.KV("clauses", prepared->program().num_clauses());
  w.KV("cache_hit", cache_hit);
  w.KV("truncated", prepared->diag().truncated);
  w.KV("components", prepared->diag().components);
  w.KV("star_transformed", prepared->diag().star_transformed);
  w.EndObject();
  Response response;
  response.body = w.TakeString();
  return response;
}

Response Service::Execute(server::Tenant& tenant, const Request& request) {
  WireExecuteRequest wire;
  std::shared_ptr<const PreparedQuery> prepared;
  Status s = PrepareFromWire(tenant, request.body, &wire, &prepared);
  if (!s.ok()) return ErrorResponse(std::move(s));

  wire.exec.cancel = request.cancel;
  // Evaluation never touches the vocabulary: no lock held.
  ExecuteResult result = tenant.engine()->Execute(*prepared, wire.exec);

  Response response;
  response.status = result.status;
  {
    // Serialising answers reads individual names: shared lock.
    std::shared_lock<std::shared_mutex> vocab_lock(tenant.vocab_mutex());
    response.body = ExecuteResultToJson(result, *tenant.vocabulary());
  }
  return response;
}

Response Service::ApplyFacts(server::Tenant& tenant, const Request& request) {
  JsonValue parsed_body;
  Status s = RequireObjectBody(request.body, &parsed_body);
  if (!s.ok()) return ErrorResponse(std::move(s));
  WireFactBatch wire;
  if (!(s = FactBatchFromJson(parsed_body, &wire)).ok()) {
    return ErrorResponse(std::move(s));
  }

  // Name resolution interns fresh individuals, and ApplyFactsOrError
  // validates ids against the vocabulary's current sizes, so both run
  // under the exclusive lock.  Execute never takes this lock, so serving
  // reads are unaffected; concurrent ApplyFacts calls serialise here
  // (they already serialise on the engine's snapshot update mutex).
  FactBatch batch;
  uint64_t version = 0;
  {
    std::unique_lock<std::shared_mutex> vocab_lock(tenant.vocab_mutex());
    Vocabulary* vocab = tenant.vocabulary();
    batch.concepts.reserve(wire.concepts.size());
    for (const auto& fact : wire.concepts) {
      int concept_id = vocab->FindConcept(fact.concept_name);
      if (concept_id < 0) {
        return ErrorResponse(Status::InvalidArgument(
            "unknown concept '" + fact.concept_name +
            "' (facts must use names the ontology declares)"));
      }
      batch.concepts.push_back(
          {concept_id, vocab->InternIndividual(fact.individual)});
    }
    batch.roles.reserve(wire.roles.size());
    for (const auto& fact : wire.roles) {
      int role_id = vocab->FindPredicate(fact.role);
      if (role_id < 0) {
        return ErrorResponse(Status::InvalidArgument(
            "unknown role '" + fact.role +
            "' (facts must use names the ontology declares)"));
      }
      batch.roles.push_back({role_id, vocab->InternIndividual(fact.subject),
                             vocab->InternIndividual(fact.object)});
    }
    s = tenant.engine()->ApplyFactsOrError(batch, &version);
  }
  if (!s.ok()) return ErrorResponse(std::move(s));

  JsonWriter w;
  w.BeginObject();
  w.KV("snapshot_version", version);
  w.Key("applied");
  w.BeginObject();
  w.KV("concepts", batch.concepts.size());
  w.KV("roles", batch.roles.size());
  w.EndObject();
  w.EndObject();
  Response response;
  response.body = w.TakeString();
  return response;
}

void AppendEngineStats(JsonWriter* w, const Engine& engine) {
  PlanCache::Stats plans = engine.cache_stats();
  AnswerCache::Stats answers = engine.answer_cache_stats();
  w->KV("snapshot_version", engine.snapshot_version());
  // GovernorCountersToJson is the one serialization of Counters; splice its
  // object here rather than emitting the fields a second way.
  w->Key("governor");
  w->Raw(GovernorCountersToJson(engine.governor_counters()));
  w->Key("plan_cache");
  w->BeginObject();
  w->KV("hits", plans.hits);
  w->KV("misses", plans.misses);
  w->KV("evictions", plans.evictions);
  w->KV("size", engine.cache_size());
  w->EndObject();
  w->Key("answer_cache");
  w->BeginObject();
  w->KV("hits", answers.hits);
  w->KV("misses", answers.misses);
  w->KV("insertions", answers.insertions);
  w->KV("evictions", answers.evictions);
  w->KV("invalidated", answers.invalidated);
  w->KV("size", engine.answer_cache_size());
  w->KV("bytes", engine.answer_cache_bytes());
  w->EndObject();
  w->KV("incremental_state_size", engine.incremental_state_size());
  if (engine.store() != nullptr) {
    const store::StoreCounters counters = engine.store()->counters();
    const std::shared_ptr<const DataSnapshot> snap = engine.snapshot();
    w->Key("store");
    w->BeginObject();
    w->KV("log_bytes", counters.log_bytes);
    w->KV("log_records", counters.log_records);
    w->KV("appended_batches", counters.appended_batches);
    w->KV("log_dropped_bytes", counters.log_dropped_bytes);
    w->KV("segments_written", counters.segments_written);
    w->KV("compactions_failed", counters.compactions_failed);
    w->KV("recovered_records", counters.recovered_records);
    w->KV("recovery_ms", engine.recovery_ms());
    w->KV("resident_columns", snap->ResidentColumns());
    w->KV("cold_columns", snap->ColdColumns());
    w->EndObject();
  }
}

Response Service::Stats(server::Tenant& tenant) {
  JsonWriter w;
  w.BeginObject();
  w.KV("tenant", tenant.name());
  w.KV("fingerprint", tenant.fingerprint());
  AppendEngineStats(&w, *tenant.engine());
  w.EndObject();
  Response response;
  response.body = w.TakeString();
  return response;
}

Response Service::Tenants() {
  JsonWriter w;
  w.BeginObject();
  w.KV("api_version", kApiVersion);
  w.Key("tenants");
  w.BeginArray();
  for (const auto& tenant : registry_->List()) {
    w.BeginObject();
    w.KV("name", tenant->name());
    w.KV("fingerprint", tenant->fingerprint());
    w.KV("snapshot_version", tenant->engine()->snapshot_version());
    w.KV("slots", registry_->tenant_slots());
    w.KV("memory_bytes", registry_->tenant_memory_bytes());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  Response response;
  response.body = w.TakeString();
  return response;
}

Response Service::Metrics() {
  Response response;
  MetricsRegistry* metrics = MetricsRegistry::Global();
  if (metrics != nullptr) {
    response.body = metrics->ToJson();
  } else {
    response.body = "{\"counters\":{},\"timers\":{},\"spans\":[]}";
  }
  return response;
}

}  // namespace api
}  // namespace owlqr
