#include "server/http_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "util/strings.h"

// glibc exposes POLLRDHUP (remote peer closed its write side) only under
// _GNU_SOURCE; the constant itself is ABI-stable on Linux.
#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace owlqr {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

void SetSocketTimeout(int fd, int option, long ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

// Sends all of `data`, ignoring SIGPIPE; false on any send failure.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SendResponse(int fd, int http_status, std::string_view body,
                  bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(http_status) + " " +
                     api::HttpReasonPhrase(http_status) +
                     "\r\nContent-Type: application/json\r\nContent-Length: " +
                     std::to_string(body.size()) +
                     (keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                                 : "\r\nConnection: close\r\n\r\n");
  return SendAll(fd, head) && SendAll(fd, body);
}

// A transport-level error (no Status from the service): the same envelope
// shape the api layer emits, with the code name the HTTP status maps back
// to, so clients parse exactly one error schema.
bool SendError(int fd, int http_status, const std::string& message,
               bool keep_alive) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.KV("code", StatusCodeName(api::StatusCodeForHttp(http_status)));
  w.KV("http", http_status);
  w.KV("message", message);
  w.EndObject();
  w.EndObject();
  return SendResponse(fd, http_status, w.str(), keep_alive);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

struct ParsedHead {
  std::string method;
  std::string target;
  std::string version;
  // Header names lowercased; values whitespace-stripped.
  std::vector<std::pair<std::string, std::string>> headers;

  const std::string* Header(const std::string& lower_name) const {
    for (const auto& [name, value] : headers) {
      if (name == lower_name) return &value;
    }
    return nullptr;
  }
};

// Parses "METHOD SP TARGET SP VERSION\r\n(NAME: VALUE\r\n)*" from `head`
// (which excludes the blank line).  False on any malformation.
bool ParseHead(std::string_view head, ParsedHead* out) {
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return false;
  out->method = std::string(request_line.substr(0, sp1));
  out->target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out->version = std::string(request_line.substr(sp2 + 1));
  if (out->method.empty() || out->target.empty() || out->target[0] != '/') {
    return false;
  }
  while (line_end != std::string_view::npos) {
    size_t line_start = line_end + 2;
    line_end = head.find("\r\n", line_start);
    std::string_view line =
        line_end == std::string_view::npos
            ? head.substr(line_start)
            : head.substr(line_start, line_end - line_start);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    out->headers.emplace_back(
        ToLower(StripWhitespace(line.substr(0, colon))),
        std::string(StripWhitespace(line.substr(colon + 1))));
  }
  return true;
}

// Routing result: the verb plus the tenant path segment.
struct Route {
  bool matched = false;        // Path known.
  bool method_allowed = false;  // ... with this method.
  api::Verb verb = api::Verb::kTenants;
  std::string tenant;
};

Route RouteTarget(const std::string& method, const std::string& target) {
  Route route;
  // Strip any query string: the API carries everything in bodies.
  std::string path = target.substr(0, target.find('?'));
  auto match = [&](const char* expected_method, api::Verb verb) {
    route.matched = true;
    route.verb = verb;
    route.method_allowed = method == expected_method;
  };
  if (path == "/metrics") {
    match("GET", api::Verb::kMetrics);
    return route;
  }
  if (path == "/v1/tenants") {
    match("GET", api::Verb::kTenants);
    return route;
  }
  if (StartsWith(path, "/v1/t/")) {
    std::string rest = path.substr(6);
    size_t slash = rest.find('/');
    if (slash == std::string::npos || slash == 0) return route;
    route.tenant = rest.substr(0, slash);
    std::string leaf = rest.substr(slash + 1);
    if (leaf == "stats") {
      match("GET", api::Verb::kStats);
    } else if (leaf == "prepare") {
      match("POST", api::Verb::kPrepare);
    } else if (leaf == "execute") {
      match("POST", api::Verb::kExecute);
    } else if (leaf == "apply-facts") {
      match("POST", api::Verb::kApplyFacts);
    }
    return route;
  }
  return route;
}

}  // namespace

HttpServer::HttpServer(api::Service* service, const HttpServerOptions& options)
    : service_(service), options_(options) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::InvalidArgument(std::string("socket: ") +
                                   std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // Loopback only.
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listen_fd_, options_.listen_backlog) < 0) {
    Status status = Status::InvalidArgument(
        std::string("bind/listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread(&HttpServer::AcceptLoop, this);
  watcher_ = std::thread(&HttpServer::WatchLoop, this);
  int workers = std::max(options_.num_workers, 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(&HttpServer::WorkerLoop, this);
  }
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Unblock the acceptor, then every worker parked on a connection read.
  shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    for (int fd : active_fds_) shutdown(fd, SHUT_RDWR);
  }
  handoff_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (watcher_.joinable()) watcher_.join();
  workers_.clear();
  for (int fd : handoff_) close(fd);  // Accepted but never served.
  handoff_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // Listener is gone; Stop() is responsible for shutdown.
    }
    {
      std::lock_guard<std::mutex> lock(handoff_mutex_);
      if (handoff_.size() < options_.handoff_capacity) {
        handoff_.push_back(fd);
        handoff_cv_.notify_one();
        continue;
      }
    }
    // Every worker busy and the queue full: shed at the door.
    handoff_shed_.fetch_add(1, std::memory_order_relaxed);
    SetSocketTimeout(fd, SO_SNDTIMEO, options_.io_timeout_ms);
    SendError(fd, 503, "server overloaded (handoff queue full)", false);
    close(fd);
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(handoff_mutex_);
      handoff_cv_.wait(lock, [&] {
        return !handoff_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (handoff_.empty()) return;  // Stopping.
      fd = handoff_.front();
      handoff_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(active_mutex_);
      active_fds_.push_back(fd);
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(active_mutex_);
      active_fds_.erase(
          std::remove(active_fds_.begin(), active_fds_.end(), fd),
          active_fds_.end());
    }
    close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  SetSocketTimeout(fd, SO_RCVTIMEO, options_.io_timeout_ms);
  SetSocketTimeout(fd, SO_SNDTIMEO, options_.io_timeout_ms);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buf;  // Carries pipelined leftovers across requests.
  for (int served = 0; served < options_.max_requests_per_connection;
       ++served) {
    // --- Read the request head (slowloris-bounded). -----------------------
    Clock::time_point head_deadline =
        Clock::now() + std::chrono::milliseconds(options_.header_timeout_ms);
    size_t head_end;
    while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
      if (buf.size() > options_.max_header_bytes) {
        SendError(fd, 431, "request head exceeds " +
                               std::to_string(options_.max_header_bytes) +
                               " bytes", false);
        return;
      }
      long remaining_ms = static_cast<long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              head_deadline - Clock::now())
              .count());
      if (remaining_ms <= 0) {
        // Only complain if the client actually started a request.
        if (!buf.empty()) {
          SendError(fd, 408, "request head not received in time", false);
        }
        return;
      }
      pollfd pfd{fd, POLLIN, 0};
      int ready = poll(&pfd, 1, static_cast<int>(remaining_ms));
      if (ready <= 0) continue;  // Timeout re-checked above; EINTR retried.
      char chunk[4096];
      ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;  // Closed (or reset) between requests: quiet exit.
      buf.append(chunk, static_cast<size_t>(n));
    }
    if (head_end > options_.max_header_bytes) {
      SendError(fd, 431, "request head exceeds " +
                             std::to_string(options_.max_header_bytes) +
                             " bytes", false);
      return;
    }

    ParsedHead head;
    if (!ParseHead(std::string_view(buf).substr(0, head_end), &head)) {
      SendError(fd, 400, "malformed request head", false);
      return;
    }
    buf.erase(0, head_end + 4);

    if (head.version != "HTTP/1.1" && head.version != "HTTP/1.0") {
      SendError(fd, 505, "only HTTP/1.1 is supported", false);
      return;
    }
    const std::string* connection = head.Header("connection");
    bool keep_alive = head.version == "HTTP/1.1"
                          ? (connection == nullptr ||
                             ToLower(*connection) != "close")
                          : (connection != nullptr &&
                             ToLower(*connection) == "keep-alive");
    if (served + 1 == options_.max_requests_per_connection) keep_alive = false;

    // --- Read the body. ---------------------------------------------------
    if (head.Header("transfer-encoding") != nullptr) {
      SendError(fd, 501, "chunked transfer encoding is not implemented",
                false);
      return;
    }
    size_t content_length = 0;
    if (const std::string* cl = head.Header("content-length")) {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(cl->c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || cl->empty()) {
        SendError(fd, 400, "malformed Content-Length", false);
        return;
      }
      content_length = static_cast<size_t>(parsed);
    } else if (head.method == "POST") {
      SendError(fd, 411, "POST requires Content-Length", false);
      return;
    }
    if (content_length > options_.max_body_bytes) {
      SendError(fd, 413, "request body exceeds " +
                             std::to_string(options_.max_body_bytes) +
                             " bytes", false);
      return;
    }
    while (buf.size() < content_length) {
      char chunk[8192];
      ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;  // SO_RCVTIMEO or disconnect mid-body.
      buf.append(chunk, static_cast<size_t>(n));
    }

    // --- Route and dispatch. ----------------------------------------------
    Route route = RouteTarget(head.method, head.target);
    if (!route.matched) {
      if (!SendError(fd, 404, "no such endpoint: " + head.target,
                     keep_alive)) {
        return;
      }
      buf.erase(0, content_length);
      if (!keep_alive) return;
      continue;
    }
    if (!route.method_allowed) {
      if (!SendError(fd, 405,
                     head.method + " is not allowed on " + head.target,
                     keep_alive)) {
        return;
      }
      buf.erase(0, content_length);
      if (!keep_alive) return;
      continue;
    }

    api::Request request;
    request.verb = route.verb;
    request.tenant = std::move(route.tenant);
    request.body = buf.substr(0, content_length);
    buf.erase(0, content_length);

    // Executions can run long: watch for the client hanging up so the
    // evaluation is cancelled instead of finishing for nobody.
    bool watched = route.verb == api::Verb::kExecute;
    if (watched) {
      request.cancel = std::make_shared<CancelToken>();
      WatchForDisconnect(fd, request.cancel);
    }
    api::Response response = service_->Handle(request);
    if (watched) UnwatchDisconnect(fd);

    if (!SendResponse(fd, api::HttpStatusFor(response.status.code()),
                      response.body, keep_alive)) {
      return;
    }
    if (!keep_alive) return;
  }
}

void HttpServer::WatchForDisconnect(int fd,
                                    std::shared_ptr<CancelToken> token) {
  std::lock_guard<std::mutex> lock(watch_mutex_);
  watches_.push_back({fd, std::move(token)});
}

void HttpServer::UnwatchDisconnect(int fd) {
  std::lock_guard<std::mutex> lock(watch_mutex_);
  watches_.erase(std::remove_if(watches_.begin(), watches_.end(),
                                [fd](const Watch& w) { return w.fd == fd; }),
                 watches_.end());
}

void HttpServer::WatchLoop() {
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.watch_poll_ms));
    std::vector<Watch> snapshot;
    {
      std::lock_guard<std::mutex> lock(watch_mutex_);
      snapshot = watches_;
    }
    for (const Watch& watch : snapshot) {
      pollfd pfd{watch.fd, POLLRDHUP, 0};
      if (poll(&pfd, 1, 0) > 0 &&
          (pfd.revents & (POLLRDHUP | POLLERR | POLLHUP | POLLNVAL)) != 0) {
        watch.token->Cancel();
      }
    }
  }
}

}  // namespace server
}  // namespace owlqr
