#include "server/registry.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "data/data_instance.h"
#include "store/fs.h"
#include "syntax/parser.h"

namespace owlqr {
namespace server {

namespace {

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

}  // namespace

// Tenant names become store directory names.  Percent-encoding (instead of
// replacing non-portable bytes with a fixed character) keeps the map
// injective: 'a/b', 'a:b' and 'a_b' each get their own directory, so two
// tenants can never open the same LOG/CURRENT with independent fds and
// interleave appends into each other's durable state.  '%' itself is
// always encoded, which is what makes decoding unambiguous.
std::string StoreDirNameForTenant(const std::string& name) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (ok) {
      out.push_back(c);
    } else {
      const unsigned char b = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0xF]);
    }
  }
  // "." and ".." are portable-alphabet but mean the root / its parent.
  if (out == ".") out = "%2E";
  if (out == "..") out = "%2E%2E";
  return out;
}

Tenant::Tenant(std::string name, std::unique_ptr<Vocabulary> vocab,
               const TBox& tbox, const DataInstance& data,
               const TableStore* tables, const EngineOptions& options)
    : name_(std::move(name)), vocab_(std::move(vocab)) {
  engine_ = std::make_unique<Engine>(tbox, data, tables, options);
  fingerprint_ = FingerprintHex(engine_->tbox_fingerprint());
}

Tenant::Tenant(std::string name, std::unique_ptr<Vocabulary> vocab,
               std::unique_ptr<Engine> engine)
    : name_(std::move(name)),
      vocab_(std::move(vocab)),
      engine_(std::move(engine)) {
  fingerprint_ = FingerprintHex(engine_->tbox_fingerprint());
}

EngineRegistry::EngineRegistry(const RegistryOptions& options)
    : options_(options) {}

size_t EngineRegistry::tenant_memory_bytes() const {
  if (options_.process_memory_bytes == 0) return 0;
  size_t tenants = std::max<size_t>(options_.max_tenants, 1);
  return options_.process_memory_bytes / tenants;
}

int EngineRegistry::tenant_slots() const {
  if (options_.process_slots <= 0) return 0;
  int tenants = static_cast<int>(std::max<size_t>(options_.max_tenants, 1));
  return std::max(options_.process_slots / tenants, 1);
}

Status EngineRegistry::RegisterParsed(const std::string& name,
                                      const std::string& ontology_text,
                                      const std::string& data_text,
                                      std::shared_ptr<Tenant>* out) {
  auto vocab = std::make_unique<Vocabulary>();
  TBox tbox(vocab.get());
  std::string error;
  if (!ParseTBox(ontology_text, &tbox, &error)) {
    return Status::InvalidArgument("ontology: " + error);
  }
  tbox.Normalize();
  DataInstance data(vocab.get());
  if (!data_text.empty() && !ParseData(data_text, &data, &error)) {
    return Status::InvalidArgument("data: " + error);
  }
  return Register(name, std::move(vocab), tbox, data, nullptr, out);
}

Status EngineRegistry::Register(const std::string& name,
                                std::unique_ptr<Vocabulary> vocab,
                                const TBox& tbox, const DataInstance& data,
                                const TableStore* tables,
                                std::shared_ptr<Tenant>* out) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  {
    // Capacity and alias checks up front: engine construction (TBox copy,
    // snapshot build) is too expensive to do first and throw away.  The
    // fingerprint check has to wait until the engine exists; the window in
    // which a concurrent duplicate registration could slip past is closed
    // by re-checking under the lock before publication below.
    std::lock_guard<std::mutex> lock(mutex_);
    if (tenants_.size() >= options_.max_tenants) {
      return Status::Rejected("registry full (" +
                              std::to_string(options_.max_tenants) +
                              " tenants)");
    }
    for (const auto& tenant : tenants_) {
      if (tenant->name() == name) {
        return Status::InvalidArgument("tenant '" + name +
                                       "' already registered");
      }
    }
  }

  EngineOptions engine_options = options_.engine;
  engine_options.governor.max_memory_bytes = tenant_memory_bytes();
  engine_options.governor.max_concurrent = tenant_slots();
  std::shared_ptr<Tenant> tenant;
  if (!options_.store.dir.empty()) {
    // One DurableStore per tenant, rooted under the registry's store dir.
    Status status = store::MakeDir(options_.store.dir);
    if (!status.ok()) return status;
    store::StoreOptions store_options = options_.store;
    store_options.dir =
        options_.store.dir + "/" + StoreDirNameForTenant(name);
    std::shared_ptr<store::DurableStore> tenant_store;
    status = store::DurableStore::Open(store_options, &tenant_store);
    if (!status.ok()) return status;
    engine_options.store = std::move(tenant_store);
    std::unique_ptr<Engine> engine =
        Engine::Open(tbox, data, tables, engine_options, &status);
    if (engine == nullptr) return status;
    tenant = std::make_shared<Tenant>(name, std::move(vocab),
                                      std::move(engine));
  } else {
    tenant = std::make_shared<Tenant>(name, std::move(vocab), tbox, data,
                                      tables, engine_options);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (tenants_.size() >= options_.max_tenants) {
    return Status::Rejected("registry full (" +
                            std::to_string(options_.max_tenants) +
                            " tenants)");
  }
  for (const auto& existing : tenants_) {
    if (existing->name() == name) {
      return Status::InvalidArgument("tenant '" + name +
                                     "' already registered");
    }
    if (existing->fingerprint() == tenant->fingerprint()) {
      return Status::InvalidArgument(
          "TBox already registered as tenant '" + existing->name() +
          "' (fingerprint " + existing->fingerprint() + ")");
    }
  }
  tenants_.push_back(tenant);
  if (out != nullptr) *out = std::move(tenant);
  return Status::Ok();
}

std::shared_ptr<Tenant> EngineRegistry::Find(
    const std::string& name_or_fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tenant : tenants_) {
    if (tenant->name() == name_or_fingerprint ||
        tenant->fingerprint() == name_or_fingerprint) {
      return tenant;
    }
  }
  return nullptr;
}

std::vector<std::shared_ptr<Tenant>> EngineRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_;
}

size_t EngineRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

}  // namespace server
}  // namespace owlqr
