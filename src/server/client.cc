#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/json.h"

namespace owlqr {
namespace server {

namespace {

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpClient::HttpClient(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::Connect() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Rejected(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::Rejected("unparseable host address '" + host_ + "'");
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status =
        Status::Rejected(std::string("connect: ") + std::strerror(errno));
    Disconnect();
    return status;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

Status HttpClient::RoundTrip(const std::string& request, int* http_status,
                             std::string* body) {
  Status status = Connect();
  if (!status.ok()) return status;
  if (!SendAll(fd_, request)) {
    // A stale keep-alive connection the server already closed: reconnect
    // and retry once before reporting the failure.
    Disconnect();
    status = Connect();
    if (!status.ok()) return status;
    if (!SendAll(fd_, request)) {
      Disconnect();
      return Status::Rejected(std::string("send: ") + std::strerror(errno));
    }
  }

  std::string buf;
  size_t head_end;
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    char chunk[8192];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Disconnect();
      return Status::Rejected("connection closed before response head");
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
  std::string head = buf.substr(0, head_end);
  buf.erase(0, head_end + 4);

  // Status line: "HTTP/1.1 200 OK".
  size_t sp = head.find(' ');
  if (sp == std::string::npos) {
    Disconnect();
    return Status::Rejected("malformed response status line");
  }
  *http_status = std::atoi(head.c_str() + sp + 1);

  // Content-Length is the only framing the server emits.
  size_t content_length = 0;
  bool close_after = false;
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos) {
    size_t line_start = pos + 2;
    pos = head.find("\r\n", line_start);
    std::string line = head.substr(
        line_start,
        pos == std::string::npos ? std::string::npos : pos - line_start);
    for (char& c : line) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (line.rfind("content-length:", 0) == 0) {
      content_length = static_cast<size_t>(
          std::strtoull(line.c_str() + 15, nullptr, 10));
    } else if (line.rfind("connection:", 0) == 0 &&
               line.find("close") != std::string::npos) {
      close_after = true;
    }
  }
  while (buf.size() < content_length) {
    char chunk[8192];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Disconnect();
      return Status::Rejected("connection closed mid-body");
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
  *body = buf.substr(0, content_length);
  if (close_after) Disconnect();
  return Status::Ok();
}

Status HttpClient::Get(const std::string& path, int* http_status,
                       std::string* body) {
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nConnection: keep-alive\r\n\r\n";
  return RoundTrip(request, http_status, body);
}

Status HttpClient::Post(const std::string& path,
                        const std::string& request_body, int* http_status,
                        std::string* body) {
  std::string request = "POST " + path + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nContent-Type: application/json\r\n"
                        "Content-Length: " +
                        std::to_string(request_body.size()) +
                        "\r\nConnection: keep-alive\r\n\r\n" + request_body;
  return RoundTrip(request, http_status, body);
}

Status HttpClient::StatusFromResponse(int http_status,
                                      const std::string& body) {
  if (http_status >= 200 && http_status < 300) return Status::Ok();
  JsonValue parsed;
  Status status;
  if (JsonValue::Parse(body, &parsed) &&
      api::ParseErrorBody(parsed, &status)) {
    return status;
  }
  return Status(api::StatusCodeForHttp(http_status),
                "HTTP " + std::to_string(http_status));
}

Status HttpClient::Prepare(const std::string& tenant,
                           const api::WireExecuteRequest& req,
                           std::string* response_body) {
  int http_status = 0;
  std::string body;
  Status status = Post("/v1/t/" + tenant + "/prepare",
                       api::ExecuteRequestToJson(req), &http_status, &body);
  if (!status.ok()) return status;
  if (response_body != nullptr) *response_body = body;
  return StatusFromResponse(http_status, body);
}

Status HttpClient::Execute(const std::string& tenant,
                           const api::WireExecuteRequest& req,
                           api::WireExecuteResult* result) {
  int http_status = 0;
  std::string body;
  Status status = Post("/v1/t/" + tenant + "/execute",
                       api::ExecuteRequestToJson(req), &http_status, &body);
  if (!status.ok()) return status;
  JsonValue parsed;
  if (JsonValue::Parse(body, &parsed)) {
    // Governed outcomes (429/503/504/499) still carry the full result body;
    // prefer its embedded status over the bare HTTP code.
    if (api::ExecuteResultFromJson(parsed, result).ok()) {
      return result->status;
    }
  }
  return StatusFromResponse(http_status, body);
}

Status HttpClient::ApplyFacts(const std::string& tenant,
                              const api::WireFactBatch& batch,
                              uint64_t* snapshot_version) {
  int http_status = 0;
  std::string body;
  Status status = Post("/v1/t/" + tenant + "/apply-facts",
                       api::FactBatchToJson(batch), &http_status, &body);
  if (!status.ok()) return status;
  status = StatusFromResponse(http_status, body);
  if (!status.ok()) return status;
  if (snapshot_version != nullptr) {
    JsonValue parsed;
    if (!JsonValue::Parse(body, &parsed)) {
      return Status::InvalidArgument("apply-facts response is not JSON");
    }
    const JsonValue* version = parsed.Find("snapshot_version");
    if (version == nullptr || !version->is_number()) {
      return Status::InvalidArgument(
          "apply-facts response lacks snapshot_version");
    }
    *snapshot_version = static_cast<uint64_t>(version->AsDouble());
  }
  return Status::Ok();
}

Status HttpClient::Stats(const std::string& tenant,
                         QueryGovernor::Counters* counters,
                         std::string* response_body) {
  int http_status = 0;
  std::string body;
  Status status = Get("/v1/t/" + tenant + "/stats", &http_status, &body);
  if (!status.ok()) return status;
  if (response_body != nullptr) *response_body = body;
  status = StatusFromResponse(http_status, body);
  if (!status.ok()) return status;
  if (counters != nullptr) {
    JsonValue parsed;
    if (!JsonValue::Parse(body, &parsed)) {
      return Status::InvalidArgument("stats response is not JSON");
    }
    const JsonValue* governor = parsed.Find("governor");
    if (governor == nullptr) {
      return Status::InvalidArgument("stats response lacks 'governor'");
    }
    return api::GovernorCountersFromJson(*governor, counters);
  }
  return Status::Ok();
}

}  // namespace server
}  // namespace owlqr
