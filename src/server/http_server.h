#ifndef OWLQR_SERVER_HTTP_SERVER_H_
#define OWLQR_SERVER_HTTP_SERVER_H_

// The HTTP/1.1 transport over api::Service.
//
// Deliberately small: a loopback listening socket, one acceptor thread, a
// bounded handoff queue and a fixed worker pool — no external HTTP library
// (the container has none, and the protocol subset a JSON API needs is
// tiny).  Everything protocol-agnostic lives in server/api.h; this file
// only parses request heads, routes paths to verbs and frames responses.
//
// Backpressure has three layers, outermost first:
//   1. The kernel accept backlog (`listen_backlog`).
//   2. The handoff queue between acceptor and workers: when all workers
//      are busy and the queue is full, the acceptor answers 503 directly
//      and closes — the cheapest possible shed, no worker time spent.
//   3. The engine governor behind api::Service: admission shed / queue
//      timeout comes back as 429 with the error envelope.
//
// Robustness against hostile clients: request heads are capped
// (max_header_bytes -> 431), bodies are capped (max_body_bytes -> 413),
// POST requires Content-Length (411; chunked transfer is not implemented
// -> 501), and a client that trickles its head slower than
// header_timeout_ms gets 408 (slowloris).  A client that disconnects
// mid-execute is noticed by the disconnect watcher, which fires the
// request's CancelToken so the evaluation aborts with kCancelled instead
// of running to completion for nobody.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "server/api.h"
#include "util/status.h"

namespace owlqr {
namespace server {

struct HttpServerOptions {
  // 0 binds an ephemeral port; read the outcome from HttpServer::port().
  int port = 0;
  int num_workers = 4;
  // The kernel listen(2) backlog.
  int listen_backlog = 64;
  // Accepted connections waiting for a free worker; beyond this the
  // acceptor sheds with 503.
  size_t handoff_capacity = 32;
  // Caps on the request head (request line + headers) and body.
  size_t max_header_bytes = 8192;
  size_t max_body_bytes = 4u << 20;
  // The whole request head must arrive within this budget (slowloris).
  long header_timeout_ms = 5000;
  // Per-syscall socket send/receive timeout.
  long io_timeout_ms = 30000;
  // Keep-alive requests served on one connection before the server closes
  // it (bounds how long a worker can be owned by one client).
  int max_requests_per_connection = 1000;
  // Cadence of the disconnect watcher's poll(2) sweep.
  long watch_poll_ms = 50;
};

class HttpServer {
 public:
  // `service` must outlive the server.
  HttpServer(api::Service* service, const HttpServerOptions& options = {});
  ~HttpServer();  // Stops if still running.

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:<port>, starts the acceptor, workers and disconnect
  // watcher.  kInvalidArgument on socket/bind failures (port in use).
  Status Start();

  // Closes the listener, wakes blocked workers by shutting their in-flight
  // connections down, joins every thread.  Idempotent.
  void Stop();

  // The bound port (after Start); 0 before.
  int port() const { return port_; }

  // Connections shed by the handoff queue (layer 2 above) since Start.
  long handoff_shed_count() const {
    return handoff_shed_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void WatchLoop();
  // Serves one connection until close / error / request cap.
  void ServeConnection(int fd);

  // Disconnect watcher registration for an in-flight request.
  void WatchForDisconnect(int fd, std::shared_ptr<CancelToken> token);
  void UnwatchDisconnect(int fd);

  api::Service* const service_;
  const HttpServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<long> handoff_shed_{0};

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::thread watcher_;

  std::mutex handoff_mutex_;
  std::condition_variable handoff_cv_;
  std::deque<int> handoff_;  // Accepted fds awaiting a worker.

  std::mutex active_mutex_;
  std::vector<int> active_fds_;  // Connections currently owned by workers.

  struct Watch {
    int fd;
    std::shared_ptr<CancelToken> token;
  };
  std::mutex watch_mutex_;
  std::vector<Watch> watches_;
};

}  // namespace server
}  // namespace owlqr

#endif  // OWLQR_SERVER_HTTP_SERVER_H_
