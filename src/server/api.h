#ifndef OWLQR_SERVER_API_H_
#define OWLQR_SERVER_API_H_

// The versioned, transport-agnostic serving API (version 1).
//
// Everything a served request is — which verb, which tenant, what JSON body
// — lives in api::Request; everything an answer is lives in api::Response.
// api::Service::Handle maps one to the other against an EngineRegistry.
// The HTTP front end (server/http_server.h) is a thin parser/printer around
// this layer; an embedded caller can Handle() the same requests with no
// socket at all, and both see byte-identical bodies.  (The split follows
// MemoDB's protocol-agnostic Request/Server vs HTTP transport.)
//
// Verbs of API version 1 (HTTP routes in parentheses; {t} is a tenant
// alias or TBox-fingerprint hex):
//
//   kPrepare    (POST /v1/t/{t}/prepare)      compile a query into the plan
//                                             cache; returns plan shape
//   kExecute    (POST /v1/t/{t}/execute)      prepare + evaluate; returns
//                                             answers + stats
//   kApplyFacts (POST /v1/t/{t}/apply-facts)  install a COW snapshot
//                                             extended by the batch
//   kStats      (GET  /v1/t/{t}/stats)        governor / cache counters
//   kTenants    (GET  /v1/tenants)            registry listing
//   kMetrics    (GET  /metrics)               the process MetricsRegistry
//                                             as trace JSON (DESIGN.md §7)
//
// Versioning rule: breaking changes to a body schema or an endpoint path
// bump kApiVersion (and the /v{N}/ prefix); additive fields do not.
// Clients must ignore unknown response members.
//
// Error envelope: any request that fails to produce its verb's result body
// gets {"error": {"code": "<StatusCodeName>", "http": <code>,
// "message": "..."}} with the HTTP status from the Status→HTTP table
// below.  The execute verb is the exception by design: governed outcomes
// (shed, deadline, cancel, memory) still return the FULL execute result
// body — partial answers included — with the table's HTTP status, so a
// client can distinguish "throttled, retry" from "malformed, don't".

#include <memory>
#include <string>
#include <vector>

#include "engine/governor.h"
#include "ndl/evaluator.h"
#include "server/registry.h"
#include "util/budget.h"
#include "util/json.h"
#include "util/status.h"

namespace owlqr {
namespace api {

inline constexpr int kApiVersion = 1;
inline constexpr char kApiPrefix[] = "/v1";

enum class Verb {
  kPrepare,
  kExecute,
  kApplyFacts,
  kStats,
  kTenants,
  kMetrics,
};

const char* VerbName(Verb verb);

// ---------------------------------------------------------------------------
// The Status -> HTTP mapping, the single table both the server's response
// writer and the client's status reconstruction share.
//
//   kOk               -> 200  kInvalidArgument  -> 400
//   kNotFound         -> 404  kUnsupportedShape -> 422
//   kRejected         -> 429  (admission shed / queue timeout: back off)
//   kCancelled        -> 499  (client closed request, nginx convention)
//   kMemoryExceeded   -> 503  (resource pressure: retry against a less
//                              loaded process)
//   kDeadlineExceeded -> 504
// ---------------------------------------------------------------------------
int HttpStatusFor(StatusCode code);
// The inverse, for clients reconstructing a Status from a bare HTTP code.
// Statuses outside the table map conservatively: unknown 4xx ->
// kInvalidArgument (do not retry as-is), anything else -> kRejected
// (retryable with backoff).
StatusCode StatusCodeForHttp(int http_status);
const char* HttpReasonPhrase(int http_status);

// The error envelope body for `status` (see the header comment).
std::string ErrorBody(const Status& status);
// Parses an error envelope back into a Status; false when `body` is not an
// error envelope.
bool ParseErrorBody(const JsonValue& body, Status* out);

// ---------------------------------------------------------------------------
// Wire structs + JSON codecs.  Every codec is total in both directions:
// ToJson always emits the documented schema; FromJson validates hostile
// input and reports kInvalidArgument with a field-naming message.
// ---------------------------------------------------------------------------

// Body of kPrepare and kExecute (prepare ignores the execution members):
//   {"query": "q(x) :- R(x, y)", "rewriter": "auto",
//    "complete_instances": false, "num_threads": 1, "incremental": false,
//    "queue_timeout_ms": -1,
//    "limits": {"max_generated_tuples": 0, "max_work": 0, "deadline_ms": 0,
//               "morsel_rows": 2048, "batch_rows": 1024}}
// Only "query" is required; everything else defaults as shown.
struct WireExecuteRequest {
  std::string query;
  std::string rewriter = "auto";
  bool complete_instances = false;
  // limits / num_threads / queue_timeout_ms / incremental travel inside;
  // `cancel` never crosses the wire (the transport owns disconnects).
  ExecuteRequest exec;
};

Status ExecuteRequestFromJson(const JsonValue& body, WireExecuteRequest* out);
std::string ExecuteRequestToJson(const WireExecuteRequest& wire);

// The execute result body:
//   {"status": {"code": "OK", "message": ""}, "snapshot_version": 3,
//    "partial": false, "degraded": false, "incremental": false,
//    "cached": false, "coalesced": false,
//    "answers": [["ann"], ["bob"]],
//    "stats": {"goal_tuples": 2, "generated_tuples": 17,
//              "join_emissions": 30}}
// Answer tuples are individual names in the engine's sorted answer order —
// the byte-exact wire image of Engine::Execute's id tuples.
struct WireExecuteResult {
  Status status;
  std::vector<std::vector<std::string>> answers;
  uint64_t snapshot_version = 0;
  bool partial = false;
  bool degraded = false;
  bool incremental = false;
  bool cached = false;
  bool coalesced = false;
  long goal_tuples = 0;
  long generated_tuples = 0;
  long join_emissions = 0;
};

// Serialises `result` with ids resolved through `vocab`; the caller must
// hold the tenant's vocab_mutex (shared) — see Tenant::vocab_mutex.
std::string ExecuteResultToJson(const ExecuteResult& result,
                                const Vocabulary& vocab);
std::string ExecuteResultToJson(const WireExecuteResult& wire);
Status ExecuteResultFromJson(const JsonValue& body, WireExecuteResult* out);

// The apply-facts body:
//   {"concepts": [{"concept": "A", "individual": "ann"}, ...],
//    "roles": [{"role": "R", "subject": "ann", "object": "bob"}, ...]}
// Concept and role names must already exist in the tenant's vocabulary
// (a typo must not silently create an unanswerable relation); individuals
// may be fresh and are interned on apply.
struct WireFactBatch {
  struct ConceptFact {
    std::string concept_name;  // Wire key "concept" (a C++20 keyword).
    std::string individual;
  };
  struct RoleFact {
    std::string role;
    std::string subject;
    std::string object;
  };
  std::vector<ConceptFact> concepts;
  std::vector<RoleFact> roles;
};

Status FactBatchFromJson(const JsonValue& body, WireFactBatch* out);
std::string FactBatchToJson(const WireFactBatch& batch);

// Governor counters as a JSON object (one member per Counters field), used
// inside the stats body and round-tripped by the client.
std::string GovernorCountersToJson(const QueryGovernor::Counters& counters);
Status GovernorCountersFromJson(const JsonValue& body,
                                QueryGovernor::Counters* out);

// Emits one engine's operational stats — snapshot_version, governor,
// plan_cache, answer_cache, incremental_state_size — as members of the
// object currently open on `w`.  The one serialization of engine stats:
// Service::Stats wraps it with the tenant's identity, the CLI's
// --stats-json writes it bare.
void AppendEngineStats(JsonWriter* w, const Engine& engine);

// ---------------------------------------------------------------------------
// The protocol-agnostic request/response pair and the dispatcher.
// ---------------------------------------------------------------------------

struct Request {
  Verb verb = Verb::kTenants;
  // Tenant alias or fingerprint hex; ignored by kTenants / kMetrics.
  std::string tenant;
  // Raw JSON body ("" for the bodyless GET verbs).
  std::string body;
  // Fired by the transport when the client goes away mid-request; threaded
  // into Engine::Execute as its cancellation token.
  std::shared_ptr<CancelToken> cancel;
};

struct Response {
  // The dispatch outcome; HttpStatusFor(status.code()) is the HTTP status
  // a transport should put on the wire.
  Status status;
  // JSON: the verb's result body, or the error envelope (except execute's
  // governed outcomes, which carry the full result body — see above).
  std::string body;
};

class Service {
 public:
  explicit Service(server::EngineRegistry* registry);

  // Thread-safe: any number of requests (same or different tenants) may be
  // in flight concurrently.
  Response Handle(const Request& request);

  server::EngineRegistry* registry() const { return registry_; }

 private:
  Response Prepare(server::Tenant& tenant, const Request& request);
  Response Execute(server::Tenant& tenant, const Request& request);
  Response ApplyFacts(server::Tenant& tenant, const Request& request);
  Response Stats(server::Tenant& tenant);
  Response Tenants();
  Response Metrics();

  server::EngineRegistry* const registry_;
};

}  // namespace api
}  // namespace owlqr

#endif  // OWLQR_SERVER_API_H_
