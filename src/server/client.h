#ifndef OWLQR_SERVER_CLIENT_H_
#define OWLQR_SERVER_CLIENT_H_

// Minimal HTTP/1.1 client for the serving API — enough for the soak tests,
// the hygiene check and embedding callers that want typed access without
// shelling out to curl.
//
// One HttpClient owns one keep-alive connection and is NOT thread-safe;
// concurrent callers each construct their own (the soak test runs one per
// worker thread).  The connection is (re-)established lazily on the first
// call and after any transport error, so a server restart costs one failed
// call, not a dead client.
//
// Status discipline: transport failures (connect/send/recv) come back as
// kRejected — the retryable class — with a message naming the syscall.
// Application outcomes are reconstructed from the response: the error
// envelope's code when the body is one, else the Status->HTTP table's
// inverse on the bare HTTP status.  The typed Execute wrapper instead
// surfaces the full WireExecuteResult whenever the body parses as one,
// mirroring the server's "governed outcomes still carry answers" rule.

#include <cstdint>
#include <string>

#include "server/api.h"
#include "util/status.h"

namespace owlqr {
namespace server {

class HttpClient {
 public:
  HttpClient(std::string host, int port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Raw round trips: `*http_status` and `*body` receive whatever the server
  // answered; the returned Status covers the TRANSPORT only (kOk even for a
  // 4xx/5xx response, kRejected when no response came back).
  Status Get(const std::string& path, int* http_status, std::string* body);
  Status Post(const std::string& path, const std::string& request_body,
              int* http_status, std::string* body);

  // Typed wrappers over one tenant's endpoints.  Each returns the
  // application-level Status described in the header comment.
  Status Prepare(const std::string& tenant, const api::WireExecuteRequest& req,
                 std::string* response_body = nullptr);
  Status Execute(const std::string& tenant, const api::WireExecuteRequest& req,
                 api::WireExecuteResult* result);
  Status ApplyFacts(const std::string& tenant, const api::WireFactBatch& batch,
                    uint64_t* snapshot_version = nullptr);
  Status Stats(const std::string& tenant, QueryGovernor::Counters* counters,
               std::string* response_body = nullptr);

  // Closes the connection; the next call reconnects.
  void Disconnect();

 private:
  Status RoundTrip(const std::string& request, int* http_status,
                   std::string* body);
  Status Connect();
  // Reconstructs the application Status from a non-2xx response body.
  static Status StatusFromResponse(int http_status, const std::string& body);

  const std::string host_;
  const int port_;
  int fd_ = -1;
};

}  // namespace server
}  // namespace owlqr

#endif  // OWLQR_SERVER_CLIENT_H_
