#ifndef OWLQR_ONTOLOGY_VOCABULARY_H_
#define OWLQR_ONTOLOGY_VOCABULARY_H_

#include <string>
#include <string_view>

#include "ontology/role.h"
#include "util/interner.h"

namespace owlqr {

// Shared symbol space for a whole OBDA scenario: unary predicates (concept
// names), binary predicates (role names) and individual constants.
//
// Ontologies, queries and data instances reference symbols by id only; a
// Vocabulary is needed to create symbols and to print.  One Vocabulary is
// typically shared by everything in a scenario.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Vocabularies are identity objects shared by pointer; copying one would
  // silently fork the symbol space.
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;

  int InternConcept(std::string_view name) { return concepts_.Intern(name); }
  int InternPredicate(std::string_view name) { return predicates_.Intern(name); }
  int InternIndividual(std::string_view name) { return individuals_.Intern(name); }

  int FindConcept(std::string_view name) const { return concepts_.Find(name); }
  int FindPredicate(std::string_view name) const { return predicates_.Find(name); }
  int FindIndividual(std::string_view name) const { return individuals_.Find(name); }

  const std::string& ConceptName(int id) const { return concepts_.Name(id); }
  const std::string& PredicateName(int id) const { return predicates_.Name(id); }
  const std::string& IndividualName(int id) const { return individuals_.Name(id); }

  // "P" for forward roles, "P-" for inverses.
  std::string RoleName(RoleId role) const {
    std::string name = predicates_.Name(PredicateOf(role));
    if (IsInverse(role)) name += '-';
    return name;
  }

  int num_concepts() const { return concepts_.size(); }
  int num_predicates() const { return predicates_.size(); }
  int num_roles() const { return 2 * predicates_.size(); }
  int num_individuals() const { return individuals_.size(); }

 private:
  Interner concepts_;
  Interner predicates_;
  Interner individuals_;
};

}  // namespace owlqr

#endif  // OWLQR_ONTOLOGY_VOCABULARY_H_
