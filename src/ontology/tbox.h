#ifndef OWLQR_ONTOLOGY_TBOX_H_
#define OWLQR_ONTOLOGY_TBOX_H_

#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ontology/role.h"
#include "ontology/vocabulary.h"

namespace owlqr {

// A basic concept of OWL 2 QL:  tau ::= TOP | A(x) | exists y rho(x, y).
struct BasicConcept {
  enum class Kind { kTop, kAtomic, kExists };

  Kind kind = Kind::kTop;
  // Concept id for kAtomic, RoleId for kExists, unused for kTop.
  int id = 0;

  static BasicConcept Top() { return {Kind::kTop, 0}; }
  static BasicConcept Atomic(int concept_id) {
    return {Kind::kAtomic, concept_id};
  }
  static BasicConcept Exists(RoleId role) { return {Kind::kExists, role}; }

  bool operator==(const BasicConcept& other) const {
    return kind == other.kind && id == other.id;
  }
};

struct ConceptInclusion {
  BasicConcept lhs;
  BasicConcept rhs;
};

struct RoleInclusion {
  RoleId lhs;
  RoleId rhs;
};

struct ConceptDisjointness {
  BasicConcept lhs;
  BasicConcept rhs;
};

struct RoleDisjointness {
  RoleId lhs;
  RoleId rhs;
};

// An OWL 2 QL ontology (description-logic TBox) over a shared Vocabulary.
//
// Axiom forms (Section 2 of the paper):
//   tau(x) -> tau'(x)                  concept inclusion
//   tau(x) & tau'(x) -> false          concept disjointness
//   rho(x,y) -> rho'(x,y)              role inclusion
//   rho(x,y) & rho'(x,y) -> false      role disjointness
//   rho(x,x)                           reflexivity
//   rho(x,x) -> false                  irreflexivity
//
// After `Normalize()` the ontology is in the paper's normal form: for every
// role rho occurring in the TBox, a fresh concept A_rho with
// A_rho(x) <-> exists y rho(x,y) has been introduced, retrievable via
// `ExistsConcept(rho)`.  The rewriters require a normalized TBox.
class TBox {
 public:
  explicit TBox(Vocabulary* vocabulary) : vocabulary_(vocabulary) {}

  Vocabulary* vocabulary() const { return vocabulary_; }

  void AddConceptInclusion(BasicConcept lhs, BasicConcept rhs);
  void AddRoleInclusion(RoleId lhs, RoleId rhs);
  void AddReflexivity(RoleId role);
  void AddConceptDisjointness(BasicConcept lhs, BasicConcept rhs);
  void AddRoleDisjointness(RoleId lhs, RoleId rhs);
  void AddIrreflexivity(RoleId role);

  // Convenience wrappers that intern names in the vocabulary.
  void AddAtomicInclusion(std::string_view sub, std::string_view sup);
  // sub_concept(x) -> exists y role(x, y); `inverse` flips the role.
  void AddExistsRhs(std::string_view sub_concept, std::string_view role,
                    bool inverse = false);
  // exists y role(x, y) -> sup_concept(x); `inverse` flips the role.
  void AddExistsLhs(std::string_view role, std::string_view sup_concept,
                    bool inverse = false);

  // Brings the TBox into normal form; idempotent.  Call after all axioms
  // referencing new roles have been added (adding further axioms with fresh
  // roles requires calling Normalize() again).
  void Normalize();
  bool normalized() const { return normalized_; }

  // The concept A_rho with A_rho <-> exists rho.  Requires `normalized()` and
  // that rho occurs in the TBox.  Returns -1 for roles not in the TBox.
  int ExistsConcept(RoleId role) const;
  // Inverse mapping: the role rho such that `concept_id` is A_rho, or kNoRole.
  RoleId RoleOfExistsConcept(int concept_id) const;

  // All roles occurring in the TBox, closed under inverse (the set R_T).
  const std::vector<RoleId>& roles() const { return roles_; }
  bool MentionsRole(RoleId role) const {
    return mentioned_predicates_.count(PredicateOf(role)) > 0;
  }

  const std::vector<ConceptInclusion>& concept_inclusions() const {
    return concept_inclusions_;
  }
  const std::vector<RoleInclusion>& role_inclusions() const {
    return role_inclusions_;
  }
  const std::vector<RoleId>& reflexive_roles() const {
    return reflexivity_;
  }
  const std::vector<ConceptDisjointness>& concept_disjointness() const {
    return concept_disjointness_;
  }
  const std::vector<RoleDisjointness>& role_disjointness() const {
    return role_disjointness_;
  }
  const std::vector<RoleId>& irreflexive_roles() const {
    return irreflexivity_;
  }

  // Number of axioms (a rough |T| measure used in size accounting).
  int NumAxioms() const;

 private:
  void MentionConcept(const BasicConcept& c);
  void MentionRole(RoleId role);

  Vocabulary* vocabulary_;  // Not owned.
  std::vector<ConceptInclusion> concept_inclusions_;
  std::vector<RoleInclusion> role_inclusions_;
  std::vector<RoleId> reflexivity_;
  std::vector<ConceptDisjointness> concept_disjointness_;
  std::vector<RoleDisjointness> role_disjointness_;
  std::vector<RoleId> irreflexivity_;

  std::set<int> mentioned_predicates_;
  std::vector<RoleId> roles_;  // Sorted; both directions of each predicate.
  bool normalized_ = false;
  std::unordered_map<RoleId, int> exists_concept_;   // rho -> A_rho.
  std::unordered_map<int, RoleId> exists_concept_inverse_;
};

}  // namespace owlqr

#endif  // OWLQR_ONTOLOGY_TBOX_H_
