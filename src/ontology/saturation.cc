#include "ontology/saturation.h"

#include <queue>

namespace owlqr {

namespace {

// Transitive closure (not reflexive) of the adjacency matrix `adj`, in place.
void TransitiveClosure(std::vector<std::vector<bool>>* adj) {
  int n = static_cast<int>(adj->size());
  // BFS from every node; graphs here are small (|vocabulary| sized).
  for (int s = 0; s < n; ++s) {
    std::vector<bool> seen(n, false);
    std::queue<int> queue;
    for (int v = 0; v < n; ++v) {
      if ((*adj)[s][v] && !seen[v]) {
        seen[v] = true;
        queue.push(v);
      }
    }
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop();
      for (int v = 0; v < n; ++v) {
        if ((*adj)[u][v] && !seen[v]) {
          seen[v] = true;
          queue.push(v);
        }
      }
    }
    for (int v = 0; v < n; ++v) (*adj)[s][v] = seen[v];
  }
}

}  // namespace

Saturation::Saturation(const TBox& tbox) {
  const Vocabulary& vocab = *tbox.vocabulary();
  num_concepts_ = vocab.num_concepts();
  num_roles_ = vocab.num_roles();
  num_nodes_ = 1 + num_concepts_ + num_roles_;

  // --- Role closure -------------------------------------------------------
  role_closure_.assign(num_roles_, std::vector<bool>(num_roles_, false));
  for (const RoleInclusion& ri : tbox.role_inclusions()) {
    role_closure_[ri.lhs][ri.rhs] = true;
    role_closure_[Inverse(ri.lhs)][Inverse(ri.rhs)] = true;
  }
  TransitiveClosure(&role_closure_);

  // --- Reflexivity closure ------------------------------------------------
  // rho is reflexive iff some stated-reflexive sigma has sigma <= rho or
  // sigma^- <= rho (note sigma(x,x) and sigma^-(x,x) coincide).
  reflexive_.assign(num_roles_, false);
  for (RoleId sigma : tbox.reflexive_roles()) {
    for (RoleId rho = 0; rho < num_roles_; ++rho) {
      if (rho == sigma || rho == Inverse(sigma) ||
          role_closure_[sigma][rho] || role_closure_[Inverse(sigma)][rho]) {
        reflexive_[rho] = true;
      }
    }
  }

  // --- Concept closure ----------------------------------------------------
  concept_closure_.assign(num_nodes_, std::vector<bool>(num_nodes_, false));
  auto node = [this](const BasicConcept& c) { return ConceptNode(c); };
  for (const ConceptInclusion& ci : tbox.concept_inclusions()) {
    concept_closure_[node(ci.lhs)][node(ci.rhs)] = true;
  }
  // Everything entails TOP.
  for (int u = 0; u < num_nodes_; ++u) concept_closure_[u][0] = true;
  // rho <= rho' gives Erho <= Erho'.
  for (RoleId a = 0; a < num_roles_; ++a) {
    for (RoleId b = 0; b < num_roles_; ++b) {
      if (role_closure_[a][b]) {
        concept_closure_[node(BasicConcept::Exists(a))]
                        [node(BasicConcept::Exists(b))] = true;
      }
    }
  }
  // Reflexive rho gives TOP <= Erho (every element has a rho-loop).
  for (RoleId rho = 0; rho < num_roles_; ++rho) {
    if (reflexive_[rho]) {
      concept_closure_[0][node(BasicConcept::Exists(rho))] = true;
    }
  }
  TransitiveClosure(&concept_closure_);
}

int Saturation::ConceptNode(const BasicConcept& c) const {
  switch (c.kind) {
    case BasicConcept::Kind::kTop:
      return 0;
    case BasicConcept::Kind::kAtomic:
      return c.id < num_concepts_ ? 1 + c.id : -1;
    case BasicConcept::Kind::kExists:
      return c.id < num_roles_ ? 1 + num_concepts_ + c.id : -1;
  }
  return -1;
}

bool Saturation::SubRole(RoleId sub, RoleId sup) const {
  if (sub == sup) return true;
  if (sub >= num_roles_ || sup >= num_roles_) return false;
  return role_closure_[sub][sup];
}

bool Saturation::Reflexive(RoleId role) const {
  return role < num_roles_ && reflexive_[role];
}

bool Saturation::SubConcept(BasicConcept sub, BasicConcept sup) const {
  if (sub == sup) return true;
  if (sup.kind == BasicConcept::Kind::kTop) return true;
  int u = ConceptNode(sub);
  int v = ConceptNode(sup);
  if (u < 0 || v < 0) return false;  // Post-snapshot symbol: only trivial.
  return concept_closure_[u][v];
}

std::vector<RoleId> Saturation::SuperRoles(RoleId a) const {
  std::vector<RoleId> out;
  for (RoleId b = 0; b < num_roles_; ++b) {
    if (SubRole(a, b)) out.push_back(b);
  }
  if (a >= num_roles_) out.push_back(a);  // Trivial only.
  return out;
}

std::vector<int> Saturation::AtomicSuperConcepts(BasicConcept sub) const {
  std::vector<int> out;
  for (int c = 0; c < num_concepts_; ++c) {
    if (SubConcept(sub, BasicConcept::Atomic(c))) out.push_back(c);
  }
  if (sub.kind == BasicConcept::Kind::kAtomic && sub.id >= num_concepts_) {
    out.push_back(sub.id);
  }
  return out;
}

std::vector<RoleId> Saturation::ReflexiveRoles() const {
  std::vector<RoleId> out;
  for (RoleId r = 0; r < num_roles_; ++r) {
    if (reflexive_[r]) out.push_back(r);
  }
  return out;
}

}  // namespace owlqr
