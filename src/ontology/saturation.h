#ifndef OWLQR_ONTOLOGY_SATURATION_H_
#define OWLQR_ONTOLOGY_SATURATION_H_

#include <vector>

#include "ontology/tbox.h"

namespace owlqr {

// Precomputed entailment closure of a TBox (a snapshot: symbols interned in
// the vocabulary after construction are treated as fresh, i.e. only trivially
// entailed).
//
// Answers the entailment questions used throughout the paper:
//   SubRole(a, b)        T |= a(x,y) -> b(x,y)
//   RoleToInverse(a, b)  T |= a(x,y) -> b(y,x)
//   Reflexive(a)         T |= a(x,x)
//   SubConcept(c, d)     T |= c(x) -> d(x)
//
// The closure implements the (complete, for the !-free fragment) DL-Lite_R
// derivation rules: reflexive-transitive role inclusions closed under
// inverses, exists-monotonicity (rho <= rho' gives Erho <= Erho'), and
// TOP <= Erho for reflexive rho.
class Saturation {
 public:
  explicit Saturation(const TBox& tbox);

  bool SubRole(RoleId sub, RoleId sup) const;
  bool RoleToInverse(RoleId sub, RoleId sup) const {
    return SubRole(sub, Inverse(sup));
  }
  bool Reflexive(RoleId role) const;
  bool SubConcept(BasicConcept sub, BasicConcept sup) const;

  // T |= exists y rho(y, x) -> A(x), the form used in canonical models.
  bool InverseExistsImpliesConcept(RoleId rho, int concept_id) const {
    return SubConcept(BasicConcept::Exists(Inverse(rho)),
                      BasicConcept::Atomic(concept_id));
  }

  // All roles b with SubRole(a, b), including a itself.
  std::vector<RoleId> SuperRoles(RoleId a) const;
  // All atomic concepts entailed by `sub` (used by ABox completion).
  std::vector<int> AtomicSuperConcepts(BasicConcept sub) const;
  // All reflexive roles.
  std::vector<RoleId> ReflexiveRoles() const;

  int num_snapshot_concepts() const { return num_concepts_; }
  int num_snapshot_roles() const { return num_roles_; }

 private:
  int ConceptNode(const BasicConcept& c) const;  // -1 if out of snapshot.
  bool Reaches(int from, int to) const {
    return from == to || concept_closure_[from][to];
  }

  int num_concepts_;
  int num_roles_;
  int num_nodes_;  // 1 (TOP) + num_concepts_ + num_roles_.

  // role_closure_[a][b]: a strictly-or-trivially derivable sub-role of b.
  std::vector<std::vector<bool>> role_closure_;
  std::vector<bool> reflexive_;
  // concept_closure_[u][v]: node u entails node v (reflexivity implicit).
  std::vector<std::vector<bool>> concept_closure_;
};

}  // namespace owlqr

#endif  // OWLQR_ONTOLOGY_SATURATION_H_
