#ifndef OWLQR_ONTOLOGY_WORD_GRAPH_H_
#define OWLQR_ONTOLOGY_WORD_GRAPH_H_

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "ontology/saturation.h"
#include "ontology/tbox.h"

namespace owlqr {

// The digraph whose paths are exactly the words of W_T (Section 2).
//
// Nodes are the non-reflexive roles of R_T.  There is an edge rho -> rho' iff
//   T |= exists x rho(x,y) -> exists z rho'(y,z)   (i.e. E(rho^-) <= E(rho'))
// and not T |= rho(x,y) -> rho'(y,x)               (i.e. not rho <= (rho')^-).
// A word rho_1 ... rho_n is in W_T iff every rho_i is a node and every
// consecutive pair is an edge.  The ontology depth is the longest path length
// (number of nodes on it), or kInfiniteDepth if the graph has a cycle.
class WordGraph {
 public:
  static constexpr int kInfiniteDepth = std::numeric_limits<int>::max();

  WordGraph(const TBox& tbox, const Saturation& saturation);

  // Ontology depth d: max length of a word in W_T; 0 if W_T is empty;
  // kInfiniteDepth if W_T is infinite.
  int depth() const { return depth_; }

  const std::vector<RoleId>& nodes() const { return nodes_; }
  bool IsNode(RoleId role) const;
  const std::vector<RoleId>& Successors(RoleId role) const;
  bool HasEdge(RoleId a, RoleId b) const;

 private:
  std::vector<RoleId> nodes_;
  std::map<RoleId, std::vector<RoleId>> successors_;
  int depth_ = 0;
};

// Interning table for words of W_T.  Word 0 is the empty word epsilon; other
// words are represented as (parent word, last role) pairs, so extending and
// comparing words is O(1).
class WordTable {
 public:
  static constexpr int kEpsilon = 0;

  explicit WordTable(const WordGraph* graph);

  // Interns word + role; returns -1 if the extension is not a valid W_T word.
  int Extend(int word, RoleId role);

  int Parent(int word) const { return entries_[word].parent; }
  RoleId LastRole(int word) const { return entries_[word].last_role; }
  RoleId FirstRole(int word) const { return entries_[word].first_role; }
  int Length(int word) const { return entries_[word].length; }
  int size() const { return static_cast<int>(entries_.size()); }

  // Interns and returns all words of length <= max_length (epsilon included).
  // Aborts if more than `limit` words would be created.
  std::vector<int> AllWordsUpTo(int max_length, int limit = 1 << 20);

  // Roles of the word from first to last.
  std::vector<RoleId> Roles(int word) const;

  std::string Name(int word, const Vocabulary& vocabulary) const;

 private:
  struct Entry {
    int parent;
    RoleId last_role;
    RoleId first_role;
    int length;
  };

  const WordGraph* graph_;  // Not owned.
  std::vector<Entry> entries_;
  std::map<std::pair<int, RoleId>, int> index_;
};

}  // namespace owlqr

#endif  // OWLQR_ONTOLOGY_WORD_GRAPH_H_
