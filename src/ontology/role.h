#ifndef OWLQR_ONTOLOGY_ROLE_H_
#define OWLQR_ONTOLOGY_ROLE_H_

namespace owlqr {

// A role is a binary predicate P or its inverse P^-.  Roles are encoded as
// dense integers: role 2*p is the predicate with id p used "forwards", and
// role 2*p + 1 is its inverse.  With this encoding (P^-)^- == P holds by
// construction.
using RoleId = int;

constexpr RoleId kNoRole = -1;

inline RoleId RoleOf(int predicate, bool inverse = false) {
  return 2 * predicate + (inverse ? 1 : 0);
}

inline RoleId Inverse(RoleId role) { return role ^ 1; }

inline bool IsInverse(RoleId role) { return (role & 1) != 0; }

inline int PredicateOf(RoleId role) { return role >> 1; }

}  // namespace owlqr

#endif  // OWLQR_ONTOLOGY_ROLE_H_
