#include "ontology/word_graph.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace owlqr {

WordGraph::WordGraph(const TBox& tbox, const Saturation& saturation) {
  for (RoleId role : tbox.roles()) {
    if (!saturation.Reflexive(role)) nodes_.push_back(role);
  }
  for (RoleId a : nodes_) {
    std::vector<RoleId>& succ = successors_[a];
    for (RoleId b : nodes_) {
      if (saturation.SubConcept(BasicConcept::Exists(Inverse(a)),
                                BasicConcept::Exists(b)) &&
          !saturation.SubRole(a, Inverse(b))) {
        succ.push_back(b);
      }
    }
  }

  // Longest path via DFS with cycle detection (colors: 0 new, 1 on stack,
  // 2 done).  depth_[v] = longest path starting at v, in nodes.
  std::map<RoleId, int> color;
  std::map<RoleId, int> longest;
  bool cyclic = false;
  std::function<int(RoleId)> dfs = [&](RoleId v) -> int {
    if (cyclic) return 0;
    auto it = color.find(v);
    if (it != color.end()) {
      if (it->second == 1) {
        cyclic = true;
        return 0;
      }
      return longest[v];
    }
    color[v] = 1;
    int best = 1;
    for (RoleId w : successors_[v]) {
      best = std::max(best, 1 + dfs(w));
      if (cyclic) break;
    }
    color[v] = 2;
    longest[v] = best;
    return best;
  };
  for (RoleId v : nodes_) {
    depth_ = std::max(depth_, dfs(v));
    if (cyclic) {
      depth_ = kInfiniteDepth;
      break;
    }
  }
}

bool WordGraph::IsNode(RoleId role) const {
  return successors_.count(role) > 0;
}

const std::vector<RoleId>& WordGraph::Successors(RoleId role) const {
  static const std::vector<RoleId> kEmpty;
  auto it = successors_.find(role);
  return it == successors_.end() ? kEmpty : it->second;
}

bool WordGraph::HasEdge(RoleId a, RoleId b) const {
  const std::vector<RoleId>& succ = Successors(a);
  return std::find(succ.begin(), succ.end(), b) != succ.end();
}

WordTable::WordTable(const WordGraph* graph) : graph_(graph) {
  entries_.push_back({/*parent=*/-1, kNoRole, kNoRole, 0});  // epsilon.
}

int WordTable::Extend(int word, RoleId role) {
  OWLQR_CHECK(word >= 0 && word < size());
  if (!graph_->IsNode(role)) return -1;
  if (word != kEpsilon && !graph_->HasEdge(LastRole(word), role)) return -1;
  auto key = std::make_pair(word, role);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  int id = size();
  RoleId first = (word == kEpsilon) ? role : FirstRole(word);
  entries_.push_back({word, role, first, Length(word) + 1});
  index_.emplace(key, id);
  return id;
}

std::vector<int> WordTable::AllWordsUpTo(int max_length, int limit) {
  std::vector<int> result;
  result.push_back(kEpsilon);
  std::vector<int> frontier = {kEpsilon};
  for (int len = 1; len <= max_length; ++len) {
    std::vector<int> next;
    for (int w : frontier) {
      const std::vector<RoleId>& candidates =
          (w == kEpsilon) ? graph_->nodes() : graph_->Successors(LastRole(w));
      for (RoleId role : candidates) {
        int ext = Extend(w, role);
        if (ext >= 0) {
          next.push_back(ext);
          OWLQR_CHECK_MSG(static_cast<int>(result.size()) < limit,
                          "W_T enumeration limit exceeded");
        }
      }
    }
    // Extend() dedups, but the same word may be pushed twice in one level.
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    result.insert(result.end(), next.begin(), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return result;
}

std::vector<RoleId> WordTable::Roles(int word) const {
  std::vector<RoleId> out;
  for (int w = word; w != kEpsilon; w = Parent(w)) out.push_back(LastRole(w));
  std::reverse(out.begin(), out.end());
  return out;
}

std::string WordTable::Name(int word, const Vocabulary& vocabulary) const {
  if (word == kEpsilon) return "eps";
  std::string out;
  for (RoleId r : Roles(word)) {
    if (!out.empty()) out += '.';
    out += vocabulary.RoleName(r);
  }
  return out;
}

}  // namespace owlqr
