#include "ontology/tbox.h"

#include <algorithm>

#include "util/logging.h"

namespace owlqr {

void TBox::MentionConcept(const BasicConcept& c) {
  if (c.kind == BasicConcept::Kind::kExists) MentionRole(c.id);
}

void TBox::MentionRole(RoleId role) {
  int pred = PredicateOf(role);
  if (mentioned_predicates_.insert(pred).second) {
    roles_.push_back(RoleOf(pred, false));
    roles_.push_back(RoleOf(pred, true));
    std::sort(roles_.begin(), roles_.end());
    // New roles need fresh A_rho concepts before the rewriters may run.
    normalized_ = false;
  }
}

void TBox::AddConceptInclusion(BasicConcept lhs, BasicConcept rhs) {
  MentionConcept(lhs);
  MentionConcept(rhs);
  concept_inclusions_.push_back({lhs, rhs});
}

void TBox::AddRoleInclusion(RoleId lhs, RoleId rhs) {
  MentionRole(lhs);
  MentionRole(rhs);
  role_inclusions_.push_back({lhs, rhs});
}

void TBox::AddReflexivity(RoleId role) {
  MentionRole(role);
  reflexivity_.push_back(role);
}

void TBox::AddConceptDisjointness(BasicConcept lhs, BasicConcept rhs) {
  MentionConcept(lhs);
  MentionConcept(rhs);
  concept_disjointness_.push_back({lhs, rhs});
}

void TBox::AddRoleDisjointness(RoleId lhs, RoleId rhs) {
  MentionRole(lhs);
  MentionRole(rhs);
  role_disjointness_.push_back({lhs, rhs});
}

void TBox::AddIrreflexivity(RoleId role) {
  MentionRole(role);
  irreflexivity_.push_back(role);
}

void TBox::AddAtomicInclusion(std::string_view sub, std::string_view sup) {
  AddConceptInclusion(BasicConcept::Atomic(vocabulary_->InternConcept(sub)),
                      BasicConcept::Atomic(vocabulary_->InternConcept(sup)));
}

void TBox::AddExistsRhs(std::string_view sub_concept, std::string_view role,
                        bool inverse) {
  AddConceptInclusion(
      BasicConcept::Atomic(vocabulary_->InternConcept(sub_concept)),
      BasicConcept::Exists(RoleOf(vocabulary_->InternPredicate(role), inverse)));
}

void TBox::AddExistsLhs(std::string_view role, std::string_view sup_concept,
                        bool inverse) {
  AddConceptInclusion(
      BasicConcept::Exists(RoleOf(vocabulary_->InternPredicate(role), inverse)),
      BasicConcept::Atomic(vocabulary_->InternConcept(sup_concept)));
}

void TBox::Normalize() {
  if (normalized_) return;
  for (RoleId role : roles_) {
    if (exists_concept_.count(role) > 0) continue;
    std::string name = "A[" + vocabulary_->RoleName(role) + "]";
    int concept_id = vocabulary_->InternConcept(name);
    exists_concept_[role] = concept_id;
    exists_concept_inverse_[concept_id] = role;
    concept_inclusions_.push_back(
        {BasicConcept::Atomic(concept_id), BasicConcept::Exists(role)});
    concept_inclusions_.push_back(
        {BasicConcept::Exists(role), BasicConcept::Atomic(concept_id)});
  }
  normalized_ = true;
}

int TBox::ExistsConcept(RoleId role) const {
  OWLQR_CHECK_MSG(normalized_, "TBox::Normalize() must be called first");
  auto it = exists_concept_.find(role);
  return it == exists_concept_.end() ? -1 : it->second;
}

RoleId TBox::RoleOfExistsConcept(int concept_id) const {
  auto it = exists_concept_inverse_.find(concept_id);
  return it == exists_concept_inverse_.end() ? kNoRole : it->second;
}

int TBox::NumAxioms() const {
  return static_cast<int>(concept_inclusions_.size() + role_inclusions_.size() +
                          reflexivity_.size() + concept_disjointness_.size() +
                          role_disjointness_.size() + irreflexivity_.size());
}

}  // namespace owlqr
