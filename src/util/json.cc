#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace owlqr {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters after value");
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > JsonValue::kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Literal("true", 4);
      case 'f':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Literal("false", 5);
      case 'n':
        out->type_ = JsonValue::Type::kNull;
        return Literal("null", 4);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->members_[std::move(key)] = std::move(value);
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->items_.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  // Appends `code` (a Unicode scalar value) to `*out` as UTF-8.
  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return false;
          // Surrogate pair: a high surrogate must be followed by \uDCxx.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return Fail("invalid value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Fail("invalid number");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  JsonParser parser(text, error);
  return parser.Run(out);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

}  // namespace owlqr
