#ifndef OWLQR_UTIL_INTERNER_H_
#define OWLQR_UTIL_INTERNER_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace owlqr {

// Bidirectional mapping between strings and dense integer ids.
//
// Ids are assigned in insertion order starting from 0.  The table owns the
// strings; `Name()` references remain valid until the Interner is destroyed
// (names are stored in a deque, so growth never moves them).
class Interner {
 public:
  Interner() = default;

  // Returns the id for `name`, inserting it if not present.
  int Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  // Returns the id for `name`, or -1 if it has never been interned.
  int Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? -1 : it->second;
  }

  bool Contains(std::string_view name) const { return Find(name) >= 0; }

  const std::string& Name(int id) const { return names_[id]; }

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::deque<std::string> names_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace owlqr

#endif  // OWLQR_UTIL_INTERNER_H_
