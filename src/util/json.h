#ifndef OWLQR_UTIL_JSON_H_
#define OWLQR_UTIL_JSON_H_

// The repository's single JSON implementation: a streaming writer and a
// small DOM parser.
//
// JsonWriter replaces the ad-hoc string-concatenation emitters that used to
// live in the metrics registry, the CLI's REPL summary lines and the bench
// harness: every serialization — including the serving layer's wire codecs
// (src/server/api.h) — goes through this one escaper/formatter, so a name
// with a quote or a control character in it can only be handled correctly
// (or incorrectly) in one place.
//
// JsonValue is the matching parser for the serving layer's request bodies
// and the client library's response handling: recursive descent with a
// hard nesting cap (malicious bodies must not overflow the stack), strict
// about structure (trailing garbage is an error) and tolerant of nothing.
// It is not a speed demon and is not meant to be: request bodies are small;
// answers are written, not parsed, on the hot path.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace owlqr {

// Appends `s` to `*out` as a JSON string literal (quotes included).
void AppendJsonString(std::string* out, std::string_view s);

// Appends `v` in a JSON-legal spelling: %.17g round-trips doubles, while
// NaN and infinities (which JSON cannot carry) are clamped to 0 rather than
// emitting a token the reader would reject.
void AppendJsonDouble(std::string* out, double v);

// A push-style writer: begin/end containers, emit keys and values, read the
// result out of str().  The writer tracks whether a comma is due, so callers
// never hand-manage separators.  Misuse (a key outside an object, unbalanced
// End calls) is a programmer error and intentionally unchecked beyond what
// the structure makes impossible — the output of a misused writer will not
// parse, which every test catches immediately.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject() { Separate(); out_.push_back('{'); fresh_ = true; }
  void EndObject() { out_.push_back('}'); fresh_ = false; }
  void BeginArray() { Separate(); out_.push_back('['); fresh_ = true; }
  void EndArray() { out_.push_back(']'); fresh_ = false; }

  // Emits the member key (with its ':'); the next value call supplies the
  // member value.
  void Key(std::string_view key) {
    Separate();
    AppendJsonString(&out_, key);
    out_.push_back(':');
    fresh_ = true;  // Suppress the comma before the value.
  }

  void String(std::string_view s) { Separate(); AppendJsonString(&out_, s); }
  // Splices `json` — which must already be a serialized JSON value — in
  // value position, e.g. to nest an object another writer produced.
  void Raw(std::string_view json) { Separate(); out_ += json; }
  void Int(long long v) { Separate(); out_ += std::to_string(v); }
  void UInt(unsigned long long v) { Separate(); out_ += std::to_string(v); }
  void Double(double v) { Separate(); AppendJsonDouble(&out_, v); }
  void Bool(bool v) { Separate(); out_ += v ? "true" : "false"; }
  void Null() { Separate(); out_ += "null"; }

  // Key/value in one call, for the common object-member case.
  void KV(std::string_view key, std::string_view v) { Key(key); String(v); }
  void KV(std::string_view key, const char* v) { Key(key); String(v); }
  void KV(std::string_view key, long long v) { Key(key); Int(v); }
  void KV(std::string_view key, unsigned long long v) { Key(key); UInt(v); }
  void KV(std::string_view key, int v) { Key(key); Int(v); }
  void KV(std::string_view key, long v) { Key(key); Int(v); }
  void KV(std::string_view key, unsigned long v) { Key(key); UInt(v); }
  void KV(std::string_view key, unsigned int v) { Key(key); UInt(v); }
  void KV(std::string_view key, double v) { Key(key); Double(v); }
  void KV(std::string_view key, bool v) { Key(key); Bool(v); }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void Separate() {
    if (!fresh_ && !out_.empty()) {
      char last = out_.back();
      if (last != '{' && last != '[' && last != ':') out_.push_back(',');
    }
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;  // True right after a container opens or a key.
};

// A parsed JSON document.  Object member order is not preserved (members
// live in a map); duplicate keys keep the last occurrence, matching what
// every mainstream parser does.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  // Parses `text` into `*out`.  The whole input must be one JSON value plus
  // optional trailing whitespace; anything else fails with a position-
  // carrying message in `*error` (nullable).  Nesting beyond kMaxDepth
  // containers fails rather than recursing unboundedly.
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error = nullptr);

  static constexpr int kMaxDepth = 64;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  // Typed accessors with caller-supplied defaults: the wrong type returns
  // the default, never aborts — wire bodies are hostile input.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  long AsLong(long fallback = 0) const {
    return is_number() ? static_cast<long>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }  // "" if not one.

  // Object member lookup; null when this is not an object or the key is
  // absent.
  const JsonValue* Find(const std::string& key) const;
  // Array elements (empty unless is_array()).
  const std::vector<JsonValue>& items() const { return items_; }
  // Object members (empty unless is_object()).
  const std::map<std::string, JsonValue>& members() const { return members_; }
  size_t size() const {
    return is_array() ? items_.size() : members_.size();
  }

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

}  // namespace owlqr

#endif  // OWLQR_UTIL_JSON_H_
