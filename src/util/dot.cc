#include "util/dot.h"

#include <algorithm>
#include <queue>
#include <set>

namespace owlqr {

namespace {

std::string Escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string DependenceGraphToDot(const NdlProgram& program,
                                 bool include_edb) {
  std::string out = "digraph dependence {\n  rankdir=BT;\n";
  for (int p = 0; p < program.num_predicates(); ++p) {
    const PredicateInfo& info = program.predicate(p);
    if (info.kind == PredicateKind::kIdb) {
      std::string attrs = "shape=ellipse";
      if (p == program.goal()) attrs += ", style=bold";
      out += "  p" + std::to_string(p) + " [label=\"" + Escape(info.name) +
             "\", " + attrs + "];\n";
    } else if (include_edb) {
      out += "  p" + std::to_string(p) + " [label=\"" + Escape(info.name) +
             "\", shape=box, style=dashed];\n";
    }
  }
  std::set<std::pair<int, int>> edges;
  for (const NdlClause& clause : program.clauses()) {
    for (const NdlAtom& atom : clause.body) {
      if (!include_edb && !program.IsIdb(atom.predicate)) continue;
      edges.insert({clause.head.predicate, atom.predicate});
    }
  }
  for (auto [from, to] : edges) {
    out += "  p" + std::to_string(from) + " -> p" + std::to_string(to) +
           ";\n";
  }
  out += "}\n";
  return out;
}

std::string CanonicalModelToDot(const CanonicalModel& model,
                                const Vocabulary& vocabulary,
                                int max_elements) {
  std::string out = "digraph canonical_model {\n  rankdir=TB;\n";
  std::queue<int> queue;
  std::set<int> visited;
  for (int e = 0; e < model.num_individuals(); ++e) {
    queue.push(e);
    visited.insert(e);
  }
  while (!queue.empty() && static_cast<int>(visited.size()) <= max_elements) {
    int e = queue.front();
    queue.pop();
    const CanonicalModel::Element& elem = model.element(e);
    if (elem.parent < 0) {
      out += "  e" + std::to_string(e) + " [label=\"" +
             Escape(vocabulary.IndividualName(elem.individual)) +
             "\", shape=box];\n";
    } else {
      out += "  e" + std::to_string(e) + " [label=\"..." +
             Escape(vocabulary.RoleName(elem.last_role)) +
             "\", shape=ellipse, style=dashed];\n";
      out += "  e" + std::to_string(elem.parent) + " -> e" +
             std::to_string(e) + " [label=\"" +
             Escape(vocabulary.RoleName(elem.last_role)) + "\"];\n";
    }
    for (int child : model.Children(e)) {
      if (static_cast<int>(visited.size()) > max_elements) break;
      if (visited.insert(child).second) queue.push(child);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace owlqr
