#include "util/budget.h"

namespace owlqr {

namespace {

// Lock-free high-water maintenance shared by budget and account.
inline void RaiseHighWater(std::atomic<size_t>* high_water, size_t now) {
  size_t seen = high_water->load(std::memory_order_relaxed);
  while (now > seen &&
         !high_water->compare_exchange_weak(seen, now,
                                            std::memory_order_relaxed)) {
  }
}

}  // namespace

bool MemoryBudget::Charge(size_t bytes) {
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  RaiseHighWater(&high_water_, now);
  return limit_ == 0 || now <= limit_;
}

void MemoryBudget::Release(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

MemoryAccount::~MemoryAccount() {
  if (budget_ != nullptr) {
    budget_->Release(used_.load(std::memory_order_relaxed));
  }
}

bool MemoryAccount::Charge(size_t bytes) {
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  RaiseHighWater(&high_water_, now);
  bool ok = limit_ == 0 || now <= limit_;
  if (budget_ != nullptr && !budget_->Charge(bytes)) ok = false;
  return ok;
}

void MemoryAccount::Release(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (budget_ != nullptr) budget_->Release(bytes);
}

}  // namespace owlqr
