#ifndef OWLQR_UTIL_DOT_H_
#define OWLQR_UTIL_DOT_H_

#include <string>

#include "chase/canonical_model.h"
#include "ndl/program.h"

namespace owlqr {

// Graphviz exports for debugging and documentation.

// The dependence graph of an NDL program: one node per IDB predicate
// (EDB predicates as boxes when `include_edb`), edges head -> body.
std::string DependenceGraphToDot(const NdlProgram& program,
                                 bool include_edb = false);

// A canonical-model prefix: individuals as boxes, labelled nulls as
// ellipses, tree edges annotated with their role.  Materialises (lazily) at
// most `max_elements` elements.
std::string CanonicalModelToDot(const CanonicalModel& model,
                                const Vocabulary& vocabulary,
                                int max_elements = 200);

}  // namespace owlqr

#endif  // OWLQR_UTIL_DOT_H_
