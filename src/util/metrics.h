#ifndef OWLQR_UTIL_METRICS_H_
#define OWLQR_UTIL_METRICS_H_

// Observability for the rewrite -> transform -> evaluate pipeline: named
// counters, min/max/sum timers, and scoped RAII spans collected into a
// structured trace that serialises to JSON (see DESIGN.md section 7 for the
// schema).
//
// Collection is opt-in twice over:
//   * compile time: define OWLQR_NO_METRICS and every OWLQR_* macro below
//     compiles to nothing;
//   * run time: with metrics compiled in but no registry installed
//     (MetricsRegistry::Global() == nullptr, the default), each macro costs
//     one relaxed atomic load plus a predictable branch.
//
// Hot loops must not call the registry per iteration: accumulate into a
// local and record once per clause / per index build (the evaluator's join
// inner loop counts emissions in plain ints and flushes after each clause).
// Registry methods themselves are thread-safe and may be called concurrently
// from EvaluateParallel workers.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace owlqr {

class MetricsRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  // Aggregate of all Record() samples under one name.
  struct TimerStats {
    long count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  // One completed (or still open, if duration_ms < 0) scoped span.
  struct Span {
    std::string name;
    double start_ms = 0;     // Offset from the registry's construction.
    double duration_ms = -1;
    int depth = 0;           // Nesting depth within the opening thread.
    unsigned long thread = 0;
    // Small labelled values attached by the span's owner (clause ids, row
    // counts, ...), serialised as a JSON object.
    std::vector<std::pair<std::string, long>> attrs;
  };

  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Adds `delta` to the named counter.
  void Count(const std::string& name, long delta = 1);

  // Records one sample into the named min/max/sum timer.  Values are
  // typically milliseconds but any distribution (per-clause emission counts,
  // index sizes) can be recorded.
  void Record(const std::string& name, double value);

  // Opens a span; the returned token must be passed to EndSpan on the same
  // thread.  Prefer ScopedSpan / OWLQR_SPAN.
  size_t BeginSpan(const std::string& name);
  void EndSpan(size_t token);
  // Attaches a labelled value to a still-open span; re-recording the same
  // key overwrites the earlier value (attrs serialise as a JSON object).
  void SpanAttr(size_t token, const std::string& key, long value);

  // Snapshot accessors (take the registry lock; not for hot paths).
  long counter(const std::string& name) const;
  TimerStats timer(const std::string& name) const;
  std::map<std::string, long> counters() const;
  std::vector<Span> spans() const;

  // Milliseconds elapsed since the registry was constructed.
  double ElapsedMs() const;

  // Serialises {"counters": {...}, "timers": {...}, "spans": [...]} as JSON.
  std::string ToJson() const;
  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

  // The process-wide registry the OWLQR_* macros report to; null (the
  // default) disables collection.  The caller keeps ownership and must
  // SetGlobal(nullptr) before destroying the registry.
  static MetricsRegistry* Global();
  static void SetGlobal(MetricsRegistry* registry);

 private:
  const Clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::map<std::string, long> counters_;
  std::map<std::string, TimerStats> timers_;
  std::vector<Span> spans_;
  std::vector<Clock::time_point> span_starts_;
};

// RAII span against the global registry (or an explicit one); a no-op when
// the registry is null, so it is safe to place on paths that usually run
// untraced.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : ScopedSpan(MetricsRegistry::Global(), name) {}
  ScopedSpan(MetricsRegistry* registry, const char* name)
      : registry_(registry) {
    if (registry_ != nullptr) token_ = registry_->BeginSpan(name);
  }
  ~ScopedSpan() {
    if (registry_ != nullptr) registry_->EndSpan(token_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Attr(const char* key, long value) {
    if (registry_ != nullptr) registry_->SpanAttr(token_, key, value);
  }

 private:
  MetricsRegistry* registry_;
  size_t token_ = 0;
};

}  // namespace owlqr

#define OWLQR_METRICS_CONCAT_INNER(a, b) a##b
#define OWLQR_METRICS_CONCAT(a, b) OWLQR_METRICS_CONCAT_INNER(a, b)

#ifndef OWLQR_NO_METRICS

// Opens a span covering the rest of the enclosing scope.
#define OWLQR_SPAN(name) \
  ::owlqr::ScopedSpan OWLQR_METRICS_CONCAT(owlqr_span_, __LINE__)(name)
// Like OWLQR_SPAN but names the ScopedSpan variable so attributes can be
// attached: OWLQR_NAMED_SPAN(span, "evaluate"); span.Attr("rows", n);
#define OWLQR_NAMED_SPAN(var, name) ::owlqr::ScopedSpan var(name)
#define OWLQR_COUNT(name, delta)                                        \
  do {                                                                  \
    ::owlqr::MetricsRegistry* owlqr_metrics_registry =                  \
        ::owlqr::MetricsRegistry::Global();                             \
    if (owlqr_metrics_registry != nullptr) {                            \
      owlqr_metrics_registry->Count((name), (delta));                   \
    }                                                                   \
  } while (0)
#define OWLQR_RECORD(name, value)                                       \
  do {                                                                  \
    ::owlqr::MetricsRegistry* owlqr_metrics_registry =                  \
        ::owlqr::MetricsRegistry::Global();                             \
    if (owlqr_metrics_registry != nullptr) {                            \
      owlqr_metrics_registry->Record((name), (value));                  \
    }                                                                   \
  } while (0)
// True iff a global registry is installed; guards metric-only work (e.g.
// reading a clock) that would otherwise be wasted.
#define OWLQR_METRICS_ENABLED() (::owlqr::MetricsRegistry::Global() != nullptr)

#else  // OWLQR_NO_METRICS

#define OWLQR_SPAN(name) ((void)0)
#define OWLQR_NAMED_SPAN(var, name) \
  ::owlqr::ScopedSpan var(static_cast<::owlqr::MetricsRegistry*>(nullptr), name)
#define OWLQR_COUNT(name, delta) ((void)0)
#define OWLQR_RECORD(name, value) ((void)0)
#define OWLQR_METRICS_ENABLED() (false)

#endif  // OWLQR_NO_METRICS

#endif  // OWLQR_UTIL_METRICS_H_
