#ifndef OWLQR_UTIL_LOGGING_H_
#define OWLQR_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checking.  The library does not use exceptions; violated
// preconditions abort with a source location.  These checks guard programmer
// errors (API misuse), not data errors, which are reported through return
// values.
#define OWLQR_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "OWLQR_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define OWLQR_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "OWLQR_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // OWLQR_UTIL_LOGGING_H_
