#include "util/metrics.h"

#include <cstdio>
#include <functional>
#include <thread>

namespace owlqr {

namespace {

std::atomic<MetricsRegistry*> g_registry{nullptr};

// Per-thread span nesting depth (purely presentational; a trace viewer
// indents by it).
thread_local int tls_span_depth = 0;

unsigned long ThisThreadId() {
  return static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

// JSON string escaping for metric names (our own literals, but a malformed
// trace file is worse than a few branches here).
void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

MetricsRegistry::MetricsRegistry() : epoch_(Clock::now()) {}

MetricsRegistry* MetricsRegistry::Global() {
  return g_registry.load(std::memory_order_acquire);
}

void MetricsRegistry::SetGlobal(MetricsRegistry* registry) {
  g_registry.store(registry, std::memory_order_release);
}

void MetricsRegistry::Count(const std::string& name, long delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::Record(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  TimerStats& t = timers_[name];
  if (t.count == 0 || value < t.min) t.min = value;
  if (t.count == 0 || value > t.max) t.max = value;
  t.sum += value;
  ++t.count;
}

size_t MetricsRegistry::BeginSpan(const std::string& name) {
  Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  size_t token = spans_.size();
  Span& span = spans_.emplace_back();
  span.name = name;
  span.start_ms =
      std::chrono::duration<double, std::milli>(now - epoch_).count();
  span.depth = tls_span_depth++;
  span.thread = ThisThreadId();
  span_starts_.push_back(now);
  return token;
}

void MetricsRegistry::EndSpan(size_t token) {
  Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (token >= spans_.size()) return;
  spans_[token].duration_ms =
      std::chrono::duration<double, std::milli>(now - span_starts_[token])
          .count();
  --tls_span_depth;
}

void MetricsRegistry::SpanAttr(size_t token, const std::string& key,
                               long value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (token >= spans_.size()) return;
  // Re-recording a key overwrites it (spans serialise attrs as a JSON
  // object, which cannot carry duplicates): an attribute whose value is
  // revised mid-span — e.g. engine/execute's snapshot_version after a
  // degraded retry re-pins — keeps only the final, accurate value.
  for (auto& [existing, existing_value] : spans_[token].attrs) {
    if (existing == key) {
      existing_value = value;
      return;
    }
  }
  spans_[token].attrs.emplace_back(key, value);
}

long MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

MetricsRegistry::TimerStats MetricsRegistry::timer(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  return it != timers_.end() ? it->second : TimerStats{};
}

std::map<std::string, long> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::vector<MetricsRegistry::Span> MetricsRegistry::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

double MetricsRegistry::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - epoch_)
      .count();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    out += "\n    ";
    AppendEscaped(&out, name);
    out += ": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"timers\": {";
  first = true;
  for (const auto& [name, t] : timers_) {
    if (!first) out += ",";
    out += "\n    ";
    AppendEscaped(&out, name);
    out += ": {\"count\": " + std::to_string(t.count) + ", \"sum\": ";
    AppendDouble(&out, t.sum);
    out += ", \"min\": ";
    AppendDouble(&out, t.min);
    out += ", \"max\": ";
    AppendDouble(&out, t.max);
    out += "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": [";
  first = true;
  for (const Span& span : spans_) {
    if (!first) out += ",";
    out += "\n    {\"name\": ";
    AppendEscaped(&out, span.name);
    out += ", \"start_ms\": ";
    AppendDouble(&out, span.start_ms);
    out += ", \"duration_ms\": ";
    AppendDouble(&out, span.duration_ms);
    out += ", \"depth\": " + std::to_string(span.depth);
    out += ", \"thread\": " + std::to_string(span.thread);
    if (!span.attrs.empty()) {
      out += ", \"attrs\": {";
      bool first_attr = true;
      for (const auto& [key, value] : span.attrs) {
        if (!first_attr) out += ", ";
        AppendEscaped(&out, key);
        out += ": " + std::to_string(value);
        first_attr = false;
      }
      out += "}";
    }
    out += "}";
    first = false;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

}  // namespace owlqr
