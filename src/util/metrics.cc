#include "util/metrics.h"

#include <cstdio>
#include <functional>
#include <thread>

#include "util/json.h"

namespace owlqr {

namespace {

std::atomic<MetricsRegistry*> g_registry{nullptr};

// Per-thread span nesting depth (purely presentational; a trace viewer
// indents by it).
thread_local int tls_span_depth = 0;

unsigned long ThisThreadId() {
  return static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

MetricsRegistry::MetricsRegistry() : epoch_(Clock::now()) {}

MetricsRegistry* MetricsRegistry::Global() {
  return g_registry.load(std::memory_order_acquire);
}

void MetricsRegistry::SetGlobal(MetricsRegistry* registry) {
  g_registry.store(registry, std::memory_order_release);
}

void MetricsRegistry::Count(const std::string& name, long delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::Record(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  TimerStats& t = timers_[name];
  if (t.count == 0 || value < t.min) t.min = value;
  if (t.count == 0 || value > t.max) t.max = value;
  t.sum += value;
  ++t.count;
}

size_t MetricsRegistry::BeginSpan(const std::string& name) {
  Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  size_t token = spans_.size();
  Span& span = spans_.emplace_back();
  span.name = name;
  span.start_ms =
      std::chrono::duration<double, std::milli>(now - epoch_).count();
  span.depth = tls_span_depth++;
  span.thread = ThisThreadId();
  span_starts_.push_back(now);
  return token;
}

void MetricsRegistry::EndSpan(size_t token) {
  Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (token >= spans_.size()) return;
  spans_[token].duration_ms =
      std::chrono::duration<double, std::milli>(now - span_starts_[token])
          .count();
  --tls_span_depth;
}

void MetricsRegistry::SpanAttr(size_t token, const std::string& key,
                               long value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (token >= spans_.size()) return;
  // Re-recording a key overwrites it (spans serialise attrs as a JSON
  // object, which cannot carry duplicates): an attribute whose value is
  // revised mid-span — e.g. engine/execute's snapshot_version after a
  // degraded retry re-pins — keeps only the final, accurate value.
  for (auto& [existing, existing_value] : spans_[token].attrs) {
    if (existing == key) {
      existing_value = value;
      return;
    }
  }
  spans_[token].attrs.emplace_back(key, value);
}

long MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

MetricsRegistry::TimerStats MetricsRegistry::timer(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  return it != timers_.end() ? it->second : TimerStats{};
}

std::map<std::string, long> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::vector<MetricsRegistry::Span> MetricsRegistry::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

double MetricsRegistry::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - epoch_)
      .count();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : counters_) w.KV(name, value);
  w.EndObject();
  w.Key("timers");
  w.BeginObject();
  for (const auto& [name, t] : timers_) {
    w.Key(name);
    w.BeginObject();
    w.KV("count", t.count);
    w.KV("sum", t.sum);
    w.KV("min", t.min);
    w.KV("max", t.max);
    w.EndObject();
  }
  w.EndObject();
  w.Key("spans");
  w.BeginArray();
  for (const Span& span : spans_) {
    w.BeginObject();
    w.KV("name", span.name);
    w.KV("start_ms", span.start_ms);
    w.KV("duration_ms", span.duration_ms);
    w.KV("depth", span.depth);
    w.KV("thread", span.thread);
    if (!span.attrs.empty()) {
      w.Key("attrs");
      w.BeginObject();
      for (const auto& [key, value] : span.attrs) w.KV(key, value);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::string out = w.TakeString();
  out.push_back('\n');
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

}  // namespace owlqr
