#ifndef OWLQR_UTIL_BUDGET_H_
#define OWLQR_UTIL_BUDGET_H_

// Resource-governance primitives shared by the evaluator and the engine's
// QueryGovernor (src/engine/governor.h): a cooperative cancellation token,
// a process/engine-wide memory budget, and a per-execution memory account
// that charges against it.
//
// These live in util/ (below ndl/ and engine/) because the evaluator's
// ExecuteRequest carries a CancelToken and its arena-growth paths charge a
// MemoryAccount, while the governor that owns the budget sits above the
// evaluator.
//
// Accounting model: memory is charged *after* an allocation grows (the
// bytes are real either way), so totals always reflect live arenas and a
// release-all on account destruction returns the global budget exactly to
// its prior level.  Charge() therefore never refuses to record — it returns
// false when a limit is now exceeded, and the caller aborts cooperatively.
// Callers batch charges (the evaluator charges arena deltas at its
// limit-flush cadence, never per emission), so the atomics here are cold.

#include <atomic>
#include <cstddef>

namespace owlqr {

// One-way cancellation signal, shared between a caller and the executions
// it wants to be able to abort.  Thread-safe; Cancel() is idempotent.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// A shared memory budget (engine-global when owned by a QueryGovernor).
// Tracks current usage and the high-water mark; limit_bytes == 0 means
// track-only (never exceeded).
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  // Records `bytes` as used and returns false iff usage now exceeds the
  // limit (the bytes stay recorded either way; see the header comment).
  bool Charge(size_t bytes);
  void Release(size_t bytes);

  size_t limit() const { return limit_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> high_water_{0};
};

// Per-execution memory account: its own usage/high-water/limit, forwarding
// every charge to the shared budget (when one is attached).  Destruction
// releases everything still charged back to the budget, so an execution can
// never leak global accounting no matter how it aborted.  Thread-safe: the
// parallel evaluator's workers charge one account concurrently.
class MemoryAccount {
 public:
  // Both arguments optional: null budget = execution-local tracking only,
  // limit_bytes == 0 = no per-execution cap.
  explicit MemoryAccount(MemoryBudget* budget = nullptr,
                         size_t limit_bytes = 0)
      : budget_(budget), limit_(limit_bytes) {}
  ~MemoryAccount();

  MemoryAccount(const MemoryAccount&) = delete;
  MemoryAccount& operator=(const MemoryAccount&) = delete;

  // Returns false iff the per-execution cap or the shared budget is now
  // exceeded (the bytes stay recorded; the caller aborts cooperatively).
  bool Charge(size_t bytes);
  void Release(size_t bytes);

  size_t limit() const { return limit_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  MemoryBudget* budget() const { return budget_; }

 private:
  MemoryBudget* const budget_;  // Not owned; may be null.
  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> high_water_{0};
};

}  // namespace owlqr

#endif  // OWLQR_UTIL_BUDGET_H_
