#ifndef OWLQR_UTIL_STRINGS_H_
#define OWLQR_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace owlqr {

// Joins the elements of `parts` with `sep` between consecutive elements.
template <typename Container>
std::string Join(const Container& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    first = false;
    std::ostringstream os;
    os << p;
    out += os.str();
  }
  return out;
}

// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// True if `text` starts with `prefix`.
inline bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace owlqr

#endif  // OWLQR_UTIL_STRINGS_H_
