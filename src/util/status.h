#ifndef OWLQR_UTIL_STATUS_H_
#define OWLQR_UTIL_STATUS_H_

// Error propagation for the facade layers (engine, rewrite entry points).
//
// The library's internal invariants still abort via OWLQR_CHECK — those are
// programmer errors.  A Status carries the *data-dependent* failures a
// service must survive: a query outside a rewriter's applicability class, an
// unknown rewriter name, a malformed request.  No exceptions, no allocation
// on the OK path.

#include <string>
#include <utility>

namespace owlqr {

enum class StatusCode {
  kOk = 0,
  // The request itself is malformed (unknown rewriter kind, bad option).
  kInvalidArgument,
  // The OMQ is well-formed but outside the algorithm's class (non-tree CQ
  // for Lin/Tw, infinite-depth ontology for Lin/Log).
  kUnsupportedShape,
  // A lookup missed (unknown predicate / query name).
  kNotFound,
  // The execution was cancelled through its CancelToken.
  kCancelled,
  // The execution blew past EvaluatorLimits::deadline_ms.
  kDeadlineExceeded,
  // The execution exceeded its memory account (per-execution cap or the
  // engine's shared budget).
  kMemoryExceeded,
  // Admission control turned the request away (no free execution slot and
  // the wait queue was full, or the queue wait timed out).
  kRejected,
  // Durable state failed an integrity or IO check (store corruption, a
  // failed log append / segment write, an on-disk format mismatch).
  kDataLoss,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status UnsupportedShape(std::string message) {
    return Status(StatusCode::kUnsupportedShape, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status MemoryExceeded(std::string message) {
    return Status(StatusCode::kMemoryExceeded, std::move(message));
  }
  static Status Rejected(std::string message) {
    return Status(StatusCode::kRejected, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>", for logs and CLI error output.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnsupportedShape:
      return "UNSUPPORTED_SHAPE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kMemoryExceeded:
      return "MEMORY_EXCEEDED";
    case StatusCode::kRejected:
      return "REJECTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "?";
}

}  // namespace owlqr

#endif  // OWLQR_UTIL_STATUS_H_
