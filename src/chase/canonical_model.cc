#include "chase/canonical_model.h"

#include <algorithm>
#include <queue>

#include "data/completion.h"
#include "util/logging.h"

namespace owlqr {

CanonicalModel::CanonicalModel(const TBox& tbox, const Saturation& saturation,
                               const WordGraph& word_graph,
                               const DataInstance& data, int max_depth)
    : tbox_(tbox),
      saturation_(saturation),
      word_graph_(word_graph),
      completed_(CompleteInstance(data, tbox, saturation)),
      max_depth_(max_depth) {
  // Level 0: individuals.
  for (int a : completed_.individuals()) {
    element_of_individual_[a] = num_elements();
    elements_.push_back({a, -1, kNoRole, 0});
    children_.emplace_back();
    expanded_.push_back(false);
  }
  num_individuals_ = num_elements();

  // ABox adjacency for RoleSuccessors over individuals.
  for (int predicate : completed_.ActivePredicates()) {
    for (auto [s, o] : completed_.RolePairs(predicate)) {
      subj_to_obj_[predicate][s].push_back(o);
      obj_to_subj_[predicate][o].push_back(s);
    }
  }
}

void CanonicalModel::Expand(int e) const {
  if (expanded_[e]) return;
  expanded_[e] = true;
  const Element elem = elements_[e];
  if (elem.depth >= max_depth_) return;
  if (elem.parent < 0) {
    // A null a.rho exists iff T,A |= exists y rho(a, y) (visible as the
    // assertion A_rho(a) after completion) and rho is non-reflexive (i.e.
    // rho is a word-graph node).
    for (RoleId rho : word_graph_.nodes()) {
      int exists_concept = tbox_.ExistsConcept(rho);
      if (exists_concept < 0) continue;
      if (!completed_.HasConceptAssertion(exists_concept, elem.individual)) {
        continue;
      }
      int child = num_elements();
      elements_.push_back({elem.individual, e, rho, 1});
      children_.emplace_back();
      expanded_.push_back(false);
      children_[e].push_back(child);
    }
  } else {
    for (RoleId rho : word_graph_.Successors(elem.last_role)) {
      int child = num_elements();
      elements_.push_back({elem.individual, e, rho, elem.depth + 1});
      children_.emplace_back();
      expanded_.push_back(false);
      children_[e].push_back(child);
    }
  }
}

const std::vector<int>& CanonicalModel::Children(int e) const {
  Expand(e);
  return children_[e];
}

void CanonicalModel::MaterializeAll() {
  for (int e = 0; e < num_elements(); ++e) Expand(e);
}

const std::vector<int>& CanonicalModel::RepresentativeNulls() const {
  if (representatives_computed_) return representatives_;
  representatives_computed_ = true;
  // BFS over elements, keeping the first (shallowest) occurrence per last
  // letter.  The frontier only expands through *new* letters, so this visits
  // at most |roles| + 1 levels of each letter path.
  std::vector<bool> seen_letter(2 * tbox_.vocabulary()->num_predicates(),
                                false);
  std::queue<int> queue;
  for (int e = 0; e < num_individuals_; ++e) queue.push(e);
  while (!queue.empty()) {
    int e = queue.front();
    queue.pop();
    for (int child : Children(e)) {
      RoleId rho = elements_[child].last_role;
      if (rho < static_cast<int>(seen_letter.size()) && seen_letter[rho]) {
        continue;
      }
      if (rho < static_cast<int>(seen_letter.size())) seen_letter[rho] = true;
      representatives_.push_back(child);
      queue.push(child);
    }
  }
  return representatives_;
}

std::vector<int> CanonicalModel::DepthOneNulls() const {
  std::vector<int> out;
  for (int e = 0; e < num_individuals_; ++e) {
    for (int child : Children(e)) out.push_back(child);
  }
  return out;
}

int CanonicalModel::ElementOfIndividual(int individual) const {
  auto it = element_of_individual_.find(individual);
  return it == element_of_individual_.end() ? -1 : it->second;
}

bool CanonicalModel::HasConcept(int e, int concept_id) const {
  const Element& elem = elements_[e];
  if (elem.parent < 0) {
    return completed_.HasConceptAssertion(concept_id, elem.individual);
  }
  return saturation_.InverseExistsImpliesConcept(elem.last_role, concept_id);
}

bool CanonicalModel::HasBasicConcept(int e, const BasicConcept& c) const {
  switch (c.kind) {
    case BasicConcept::Kind::kTop:
      return true;
    case BasicConcept::Kind::kAtomic:
      return HasConcept(e, c.id);
    case BasicConcept::Kind::kExists: {
      const Element& elem = elements_[e];
      if (elem.parent < 0) {
        int exists_concept = tbox_.ExistsConcept(c.id);
        if (exists_concept >= 0) {
          return completed_.HasConceptAssertion(exists_concept,
                                                elem.individual);
        }
        // Role outside the TBox: only the raw data can witness it.
        int pred = PredicateOf(c.id);
        const auto& map = IsInverse(c.id) ? obj_to_subj_ : subj_to_obj_;
        auto it = map.find(pred);
        return it != map.end() && it->second.count(elem.individual) > 0;
      }
      return saturation_.SubConcept(
          BasicConcept::Exists(Inverse(elem.last_role)), c);
    }
  }
  return false;
}

bool CanonicalModel::HasRole(RoleId rho, int u, int v) const {
  const Element& eu = elements_[u];
  const Element& ev = elements_[v];
  if (eu.parent < 0 && ev.parent < 0) {
    return completed_.HasRoleAssertionForRole(rho, eu.individual,
                                              ev.individual);
  }
  if (u == v) return saturation_.Reflexive(rho);
  if (ev.parent == u) return saturation_.SubRole(ev.last_role, rho);
  if (eu.parent == v) return saturation_.SubRole(eu.last_role, Inverse(rho));
  return false;
}

std::vector<int> CanonicalModel::RoleSuccessors(RoleId rho, int u) const {
  std::vector<int> out;
  const Element& eu = elements_[u];
  if (eu.parent < 0) {
    // ABox successors (the completed instance already contains all derived
    // role atoms, so a direct lookup suffices).
    int pred = PredicateOf(rho);
    const auto& map = IsInverse(rho) ? obj_to_subj_ : subj_to_obj_;
    auto it = map.find(pred);
    if (it != map.end()) {
      auto jt = it->second.find(eu.individual);
      if (jt != it->second.end()) {
        for (int b : jt->second) out.push_back(ElementOfIndividual(b));
      }
    }
  } else {
    if (saturation_.SubRole(eu.last_role, Inverse(rho))) {
      out.push_back(eu.parent);
    }
  }
  if (saturation_.Reflexive(rho)) out.push_back(u);
  for (int child : Children(u)) {
    if (saturation_.SubRole(elements_[child].last_role, rho)) {
      out.push_back(child);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace owlqr
