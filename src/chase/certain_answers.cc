#include "chase/certain_answers.h"

#include <algorithm>
#include <map>
#include <queue>

#include "chase/canonical_model.h"
#include "chase/homomorphism.h"
#include "data/completion.h"
#include "ontology/saturation.h"
#include "ontology/word_graph.h"

namespace owlqr {

namespace {

// BFS distances (in letters, >= 1) of the word-graph nodes from the feasible
// first letters of the completed instance; unreachable letters are absent.
std::map<RoleId, int> LetterDistances(const TBox& tbox,
                                      const WordGraph& word_graph,
                                      const DataInstance& completed) {
  std::map<RoleId, int> dist;
  std::queue<RoleId> queue;
  for (RoleId rho : word_graph.nodes()) {
    int exists_concept = tbox.ExistsConcept(rho);
    if (exists_concept < 0) continue;
    if (!completed.ConceptMembers(exists_concept).empty()) {
      dist[rho] = 1;
      queue.push(rho);
    }
  }
  while (!queue.empty()) {
    RoleId rho = queue.front();
    queue.pop();
    for (RoleId next : word_graph.Successors(rho)) {
      if (dist.count(next) == 0) {
        dist[next] = dist[rho] + 1;
        queue.push(next);
      }
    }
  }
  return dist;
}

// A sufficient materialisation depth for answering a query with
// `num_query_vars` variables over `data`: any homomorphism can be shifted so
// that each fully-anonymous part hangs below the shallowest occurrence of its
// minimal element's last letter (subtrees depend only on that letter), so
// depth max_letter_distance + num_query_vars suffices.
int SufficientDepth(const TBox& tbox, const WordGraph& word_graph,
                    const DataInstance& completed, int num_query_vars) {
  int deepest = 0;
  for (const auto& [rho, d] : LetterDistances(tbox, word_graph, completed)) {
    deepest = std::max(deepest, d);
  }
  return deepest + num_query_vars;
}

}  // namespace

CertainAnswersResult ComputeCertainAnswers(const TBox& tbox,
                                           const ConjunctiveQuery& query,
                                           const DataInstance& data) {
  CertainAnswersResult result;
  if (!IsConsistent(tbox, data)) {
    result.consistent = false;
    return result;
  }
  Saturation saturation(tbox);
  WordGraph word_graph(tbox, saturation);
  DataInstance completed = CompleteInstance(data, tbox, saturation);
  int depth = SufficientDepth(tbox, word_graph, completed, query.num_vars());
  CanonicalModel model(tbox, saturation, word_graph, completed, depth);
  HomomorphismSearch search(query, model);
  result.answers = search.AllAnswers();
  return result;
}

bool IsCertainAnswer(const TBox& tbox, const ConjunctiveQuery& query,
                     const DataInstance& data, const std::vector<int>& answer) {
  if (!IsConsistent(tbox, data)) return true;
  Saturation saturation(tbox);
  WordGraph word_graph(tbox, saturation);
  DataInstance completed = CompleteInstance(data, tbox, saturation);
  int depth = SufficientDepth(tbox, word_graph, completed, query.num_vars());
  CanonicalModel model(tbox, saturation, word_graph, completed, depth);
  HomomorphismSearch search(query, model);
  if (query.IsBoolean()) return answer.empty() && search.Exists();
  return search.ExistsWithAnswer(answer);
}

bool IsConsistent(const TBox& tbox, const DataInstance& data) {
  Saturation saturation(tbox);
  WordGraph word_graph(tbox, saturation);
  DataInstance completed = CompleteInstance(data, tbox, saturation);
  if (completed.individuals().empty()) return true;
  std::map<RoleId, int> letters =
      LetterDistances(tbox, word_graph, completed);

  // Basic concepts holding at nulls with last letter rho are exactly those
  // entailed by exists rho^-; at individuals they are read off the completed
  // instance.
  auto holds_at_individual = [&](const BasicConcept& c, int a) {
    switch (c.kind) {
      case BasicConcept::Kind::kTop:
        return true;
      case BasicConcept::Kind::kAtomic:
        return completed.HasConceptAssertion(c.id, a);
      case BasicConcept::Kind::kExists: {
        int exists_concept = tbox.ExistsConcept(c.id);
        if (exists_concept >= 0) {
          return completed.HasConceptAssertion(exists_concept, a);
        }
        for (auto [s, o] : completed.RolePairs(PredicateOf(c.id))) {
          if ((IsInverse(c.id) ? o : s) == a) return true;
        }
        return false;
      }
    }
    return false;
  };

  for (const ConceptDisjointness& axiom : tbox.concept_disjointness()) {
    for (int a : completed.individuals()) {
      if (holds_at_individual(axiom.lhs, a) &&
          holds_at_individual(axiom.rhs, a)) {
        return false;
      }
    }
    for (const auto& [rho, d] : letters) {
      BasicConcept inv = BasicConcept::Exists(Inverse(rho));
      if (saturation.SubConcept(inv, axiom.lhs) &&
          saturation.SubConcept(inv, axiom.rhs)) {
        return false;
      }
    }
  }
  for (const RoleDisjointness& axiom : tbox.role_disjointness()) {
    // ABox pairs: the completed instance holds all derived role atoms, so a
    // direct extension intersection test is exact.
    for (auto [s, o] : completed.RolePairs(PredicateOf(axiom.lhs))) {
      int a = IsInverse(axiom.lhs) ? o : s;
      int b = IsInverse(axiom.lhs) ? s : o;
      if (completed.HasRoleAssertionForRole(axiom.rhs, a, b)) return false;
    }
    // Tree edges labelled rho participate in every super-role of rho.
    for (const auto& [rho, d] : letters) {
      if (saturation.SubRole(rho, axiom.lhs) &&
          saturation.SubRole(rho, axiom.rhs)) {
        return false;
      }
      if (saturation.SubRole(rho, Inverse(axiom.lhs)) &&
          saturation.SubRole(rho, Inverse(axiom.rhs))) {
        return false;
      }
    }
    // Reflexive loops: sigma1(x,x) and sigma2(x,x) for any element.
    if (saturation.Reflexive(axiom.lhs) && saturation.Reflexive(axiom.rhs)) {
      return false;
    }
  }
  for (RoleId rho : tbox.irreflexive_roles()) {
    if (saturation.Reflexive(rho)) return false;
    for (auto [s, o] : completed.RolePairs(PredicateOf(rho))) {
      if (s == o) return false;
    }
  }
  return true;
}

}  // namespace owlqr
