#ifndef OWLQR_CHASE_CERTAIN_ANSWERS_H_
#define OWLQR_CHASE_CERTAIN_ANSWERS_H_

#include <vector>

#include "cq/cq.h"
#include "data/data_instance.h"
#include "ontology/tbox.h"

namespace owlqr {

struct CertainAnswersResult {
  // False if (T, A) is inconsistent; in that case every tuple over ind(A) is
  // a certain answer and `answers` is left empty.
  bool consistent = true;
  std::vector<std::vector<int>> answers;
};

// Reference OMQ answering engine (ground truth for the rewriters):
// materialises the canonical model C_{T,A} to a provably sufficient depth and
// runs a backtracking homomorphism search.  Intended for modest data sizes.
CertainAnswersResult ComputeCertainAnswers(const TBox& tbox,
                                           const ConjunctiveQuery& query,
                                           const DataInstance& data);

// Decision variant: is `answer` a certain answer to (T, q) over A?
bool IsCertainAnswer(const TBox& tbox, const ConjunctiveQuery& query,
                     const DataInstance& data, const std::vector<int>& answer);

// KB consistency: no disjointness or irreflexivity axiom is violated in the
// canonical model.
bool IsConsistent(const TBox& tbox, const DataInstance& data);

}  // namespace owlqr

#endif  // OWLQR_CHASE_CERTAIN_ANSWERS_H_
