#ifndef OWLQR_CHASE_CANONICAL_MODEL_H_
#define OWLQR_CHASE_CANONICAL_MODEL_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "data/data_instance.h"
#include "ontology/saturation.h"
#include "ontology/tbox.h"
#include "ontology/word_graph.h"

namespace owlqr {

// A lazily materialised prefix of the canonical model C_{T,A} (Section 2),
// up to `max_depth` levels of labelled nulls below each individual.
//
// Elements are dense indices.  Individuals of ind(A) come first; every other
// element is a labelled null a.rho_1...rho_n represented by its parent
// element and the last role rho_n.  The witness-creation rule follows the
// paper exactly: a null a.rho exists iff T,A |= exists y rho(a, y) and rho is
// not reflexive; a null w.rho.rho' exists iff rho -> rho' is a W_T edge.
//
// Children are created on first access (Children / RoleSuccessors), so large
// infinite-depth models cost only what a search actually explores;
// `num_elements()` grows accordingly.  Use MaterializeAll() when a full
// enumeration up to max_depth is required.
class CanonicalModel {
 public:
  struct Element {
    int individual;   // Base individual (vocabulary id).
    int parent;       // Parent element, or -1 for individuals.
    RoleId last_role; // kNoRole for individuals.
    int depth;        // 0 for individuals.
  };

  // `data` need not be complete; it is completed internally.
  CanonicalModel(const TBox& tbox, const Saturation& saturation,
                 const WordGraph& word_graph, const DataInstance& data,
                 int max_depth);

  int num_elements() const { return static_cast<int>(elements_.size()); }
  const Element& element(int e) const { return elements_[e]; }
  bool IsIndividual(int e) const { return elements_[e].parent < 0; }
  int num_individuals() const { return num_individuals_; }
  // Element index of a vocabulary individual; -1 if not in ind(A).
  int ElementOfIndividual(int individual) const;

  // Entailed concept membership C_{T,A} |= A(e).
  bool HasConcept(int e, int concept_id) const;
  bool HasBasicConcept(int e, const BasicConcept& c) const;

  // Entailed role membership C_{T,A} |= rho(u, v).
  bool HasRole(RoleId rho, int u, int v) const;
  // All v with C_{T,A} |= rho(u, v) in the depth-bounded model (children are
  // materialised on demand).
  std::vector<int> RoleSuccessors(RoleId rho, int u) const;

  const std::vector<int>& Children(int e) const;

  // Materialises every element up to max_depth (may be huge for branching
  // infinite-depth ontologies; prefer the lazy accessors).
  void MaterializeAll();

  // One canonical labelled null per reachable last letter rho, at its
  // shallowest occurrence.  Any fully-anonymous homomorphism can be shifted
  // so that its minimal element is one of these (the subtree below a null
  // depends only on its last letter), so these suffice as search seeds for
  // existential variables.
  const std::vector<int>& RepresentativeNulls() const;

  // All depth-1 nulls (materialises level 1).
  std::vector<int> DepthOneNulls() const;

  const DataInstance& completed_data() const { return completed_; }
  const Saturation& saturation() const { return saturation_; }
  const TBox& tbox() const { return tbox_; }
  int max_depth() const { return max_depth_; }

 private:
  // Creates the children of `e` if not yet done.
  void Expand(int e) const;

  const TBox& tbox_;
  const Saturation& saturation_;
  const WordGraph& word_graph_;
  DataInstance completed_;
  int max_depth_;
  int num_individuals_ = 0;
  mutable std::vector<Element> elements_;
  mutable std::vector<std::vector<int>> children_;
  mutable std::vector<bool> expanded_;
  mutable std::vector<int> representatives_;
  mutable bool representatives_computed_ = false;
  std::unordered_map<int, int> element_of_individual_;
  // Completed-ABox adjacency: predicate -> subject -> objects, and inverse.
  std::map<int, std::unordered_map<int, std::vector<int>>> subj_to_obj_;
  std::map<int, std::unordered_map<int, std::vector<int>>> obj_to_subj_;
};

}  // namespace owlqr

#endif  // OWLQR_CHASE_CANONICAL_MODEL_H_
