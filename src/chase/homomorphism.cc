#include "chase/homomorphism.h"

#include <algorithm>
#include <set>

namespace owlqr {

HomomorphismSearch::HomomorphismSearch(const ConjunctiveQuery& query,
                                       const CanonicalModel& model)
    : query_(query), model_(model) {}

// Checks every atom of the query all of whose variables (including `var`)
// are assigned.
bool HomomorphismSearch::CheckVar(const std::vector<int>& assignment,
                                  int var) const {
  for (const CqAtom& atom : query_.atoms()) {
    if (atom.kind == CqAtom::Kind::kUnary) {
      if (atom.arg0 != var) continue;
      if (!model_.HasConcept(assignment[var], atom.symbol)) return false;
    } else {
      if (atom.arg0 != var && atom.arg1 != var) continue;
      int u = assignment[atom.arg0];
      int v = assignment[atom.arg1];
      if (u < 0 || v < 0) continue;
      if (!model_.HasRole(RoleOf(atom.symbol), u, v)) return false;
    }
  }
  return true;
}

bool HomomorphismSearch::SearchFrom(
    std::vector<int>* assignment,
    const std::function<bool(const std::vector<int>&)>& on_answer,
    bool* stop) const {
  // Pick the next variable: prefer one adjacent to an assigned variable
  // (candidates can then be enumerated from role successors).
  int var = -1;
  int via_atom = -1;
  for (size_t i = 0; i < query_.atoms().size() && var < 0; ++i) {
    const CqAtom& atom = query_.atoms()[i];
    if (atom.kind != CqAtom::Kind::kBinary || atom.arg0 == atom.arg1) continue;
    bool a0 = (*assignment)[atom.arg0] >= 0;
    bool a1 = (*assignment)[atom.arg1] >= 0;
    if (a0 != a1) {
      var = a0 ? atom.arg1 : atom.arg0;
      via_atom = static_cast<int>(i);
    }
  }
  if (var < 0) {
    for (int v = 0; v < query_.num_vars() && var < 0; ++v) {
      if ((*assignment)[v] < 0) var = v;
    }
  }
  if (var < 0) {
    // Complete assignment: answer variables must be individuals.
    for (int v : query_.answer_vars()) {
      if (!model_.IsIndividual((*assignment)[v])) return false;
    }
    std::vector<int> answer;
    for (int v : query_.answer_vars()) {
      answer.push_back(model_.element((*assignment)[v]).individual);
    }
    if (!on_answer(answer)) *stop = true;
    return true;
  }

  bool found = false;
  auto try_element = [&](int element) {
    if (*stop) return;
    if (query_.IsAnswerVar(var) && !model_.IsIndividual(element)) return;
    (*assignment)[var] = element;
    if (CheckVar(*assignment, var)) {
      if (SearchFrom(assignment, on_answer, stop)) found = true;
    }
    (*assignment)[var] = -1;
  };

  if (via_atom >= 0) {
    const CqAtom& atom = query_.atoms()[via_atom];
    bool forward = (*assignment)[atom.arg0] >= 0;
    RoleId rho = forward ? RoleOf(atom.symbol) : Inverse(RoleOf(atom.symbol));
    int anchor = forward ? (*assignment)[atom.arg0] : (*assignment)[atom.arg1];
    for (int candidate : model_.RoleSuccessors(rho, anchor)) {
      try_element(candidate);
      if (*stop) break;
    }
  } else {
    // `var` starts a fresh connected component (none of its variables is
    // assigned).  A complete seeding: some variable w of the component maps
    // to an individual (try every (w, individual) pair), or the whole
    // component lies in the anonymous part — then it can be shifted so that
    // its minimal-depth element is a representative null (subtrees depend
    // only on the last letter), i.e. some w maps to a representative.
    // Seeding any w anchors the rest of the component via role successors.
    std::vector<int> component = FreeComponentOf(*assignment, var);
    for (int w : component) {
      for (int candidate = 0; candidate < model_.num_individuals();
           ++candidate) {
        if (*stop) return found;
        TrySeed(w, candidate, assignment, on_answer, stop, &found);
      }
      if (query_.IsAnswerVar(w)) continue;
      for (int candidate : model_.RepresentativeNulls()) {
        if (*stop) return found;
        TrySeed(w, candidate, assignment, on_answer, stop, &found);
      }
    }
  }
  return found;
}

void HomomorphismSearch::TrySeed(
    int w, int element, std::vector<int>* assignment,
    const std::function<bool(const std::vector<int>&)>& on_answer, bool* stop,
    bool* found) const {
  if (query_.IsAnswerVar(w) && !model_.IsIndividual(element)) return;
  (*assignment)[w] = element;
  if (CheckVar(*assignment, w)) {
    if (SearchFrom(assignment, on_answer, stop)) *found = true;
  }
  (*assignment)[w] = -1;
}

std::vector<int> HomomorphismSearch::FreeComponentOf(
    const std::vector<int>& assignment, int var) const {
  std::vector<int> component = {var};
  std::vector<bool> in_component(query_.num_vars(), false);
  in_component[var] = true;
  for (size_t i = 0; i < component.size(); ++i) {
    int u = component[i];
    for (const CqAtom& atom : query_.atoms()) {
      if (atom.kind != CqAtom::Kind::kBinary) continue;
      if (atom.arg0 != u && atom.arg1 != u) continue;
      int other = atom.arg0 == u ? atom.arg1 : atom.arg0;
      if (!in_component[other] && assignment[other] < 0) {
        in_component[other] = true;
        component.push_back(other);
      }
    }
  }
  return component;
}

bool HomomorphismSearch::Search(
    std::vector<int> assignment,
    const std::function<bool(const std::vector<int>&)>& on_answer) const {
  bool stop = false;
  return SearchFrom(&assignment, on_answer, &stop);
}

bool HomomorphismSearch::ExistsWithAnswer(const std::vector<int>& answer) const {
  std::vector<int> assignment(query_.num_vars(), -1);
  const std::vector<int>& vars = query_.answer_vars();
  if (answer.size() != vars.size()) return false;
  for (size_t i = 0; i < vars.size(); ++i) {
    int element = model_.ElementOfIndividual(answer[i]);
    if (element < 0) return false;
    if (assignment[vars[i]] >= 0 && assignment[vars[i]] != element) {
      return false;
    }
    assignment[vars[i]] = element;
  }
  for (int v : vars) {
    if (!CheckVar(assignment, v)) return false;
  }
  bool found = false;
  bool stop = false;
  std::vector<int> a = assignment;
  SearchFrom(&a, [&found](const std::vector<int>&) {
    found = true;
    return false;  // Stop at the first homomorphism.
  }, &stop);
  return found;
}

bool HomomorphismSearch::Exists() const {
  bool found = false;
  Search(std::vector<int>(query_.num_vars(), -1),
         [&found](const std::vector<int>&) {
           found = true;
           return false;
         });
  return found;
}

std::vector<std::vector<int>> HomomorphismSearch::AllAnswers() const {
  std::set<std::vector<int>> answers;
  Search(std::vector<int>(query_.num_vars(), -1),
         [&answers](const std::vector<int>& answer) {
           answers.insert(answer);
           return true;
         });
  return std::vector<std::vector<int>>(answers.begin(), answers.end());
}

}  // namespace owlqr
