#ifndef OWLQR_CHASE_HOMOMORPHISM_H_
#define OWLQR_CHASE_HOMOMORPHISM_H_

#include <functional>
#include <vector>

#include "chase/canonical_model.h"
#include "cq/cq.h"

namespace owlqr {

// Backtracking search for homomorphisms from a CQ into a (materialised)
// canonical model.  Answer variables may only be mapped to individuals.
class HomomorphismSearch {
 public:
  HomomorphismSearch(const ConjunctiveQuery& query, const CanonicalModel& model);

  // True iff some homomorphism maps the answer variables to the elements of
  // `answer` (vocabulary individual ids, in answer-variable order).
  bool ExistsWithAnswer(const std::vector<int>& answer) const;

  // True iff any homomorphism exists (Boolean evaluation).
  bool Exists() const;

  // All answer tuples (vocabulary individual ids), sorted and deduplicated.
  // For a Boolean query, returns {()} if satisfied and {} otherwise.
  std::vector<std::vector<int>> AllAnswers() const;

 private:
  // Runs the search with `assignment` partially filled (element indices,
  // -1 = unassigned).  Calls `on_answer` for every complete homomorphism
  // found; if it returns false, the search stops early.
  bool Search(std::vector<int> assignment,
              const std::function<bool(const std::vector<int>&)>& on_answer) const;
  bool SearchFrom(std::vector<int>* assignment,
                  const std::function<bool(const std::vector<int>&)>& on_answer,
                  bool* stop) const;
  bool CheckVar(const std::vector<int>& assignment, int var) const;
  // Assigns w -> element, verifies the atoms on w, and continues the search.
  void TrySeed(int w, int element, std::vector<int>* assignment,
               const std::function<bool(const std::vector<int>&)>& on_answer,
               bool* stop, bool* found) const;
  // The unassigned variables connected to `var` via binary atoms.
  std::vector<int> FreeComponentOf(const std::vector<int>& assignment,
                                   int var) const;

  const ConjunctiveQuery& query_;
  const CanonicalModel& model_;
};

}  // namespace owlqr

#endif  // OWLQR_CHASE_HOMOMORPHISM_H_
