#ifndef OWLQR_CQ_GAIFMAN_H_
#define OWLQR_CQ_GAIFMAN_H_

#include <vector>

#include "cq/cq.h"

namespace owlqr {

// The Gaifman graph of a CQ: vertices are the variables, and {u, v} is an
// edge iff some binary atom P(u, v) or P(v, u) with u != v occurs in the
// query (self-loops do not contribute edges).
class GaifmanGraph {
 public:
  explicit GaifmanGraph(const ConjunctiveQuery& query);

  int num_vertices() const { return static_cast<int>(adjacency_.size()); }
  const std::vector<int>& Neighbors(int v) const { return adjacency_[v]; }
  int Degree(int v) const { return static_cast<int>(adjacency_[v].size()); }
  bool HasEdge(int u, int v) const;
  int num_edges() const { return num_edges_; }

  bool IsConnected() const;
  // Tree: connected and |E| = |V| - 1 (single vertex counts as a tree).
  bool IsTree() const;
  // Leaves of a tree: vertices of degree <= 1.  A single-vertex query has one
  // leaf; a linear query (paper terminology) is a tree with two leaves.
  int NumLeaves() const;
  bool IsLinear() const { return IsTree() && NumLeaves() <= 2; }

  // Vertex sets of the connected components, in discovery order.
  std::vector<std::vector<int>> Components() const;

  // BFS layers from `root`: result[d] lists the vertices at distance d.
  // Unreachable vertices are omitted.
  std::vector<std::vector<int>> BfsLayers(int root) const;

 private:
  std::vector<std::vector<int>> adjacency_;
  int num_edges_ = 0;
};

}  // namespace owlqr

#endif  // OWLQR_CQ_GAIFMAN_H_
