#ifndef OWLQR_CQ_SPLITTING_H_
#define OWLQR_CQ_SPLITTING_H_

#include <vector>

namespace owlqr {

// Plain undirected tree over nodes 0..n-1, used for the splitting lemmas.
struct SimpleTree {
  std::vector<std::vector<int>> adjacency;

  int n() const { return static_cast<int>(adjacency.size()); }
  void Resize(int nodes) { adjacency.assign(nodes, {}); }
  void AddEdge(int a, int b) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
};

// Lemma 14: a node of `tree` restricted to the connected node subset `subset`
// whose removal splits the subset into components of size <= ceil(|subset|/2)
// (in fact, the returned centroid achieves <= floor(|subset|/2)).
int SubtreeCentroid(const SimpleTree& tree, const std::vector<int>& subset);

// Centroid of the whole tree.
int TreeCentroid(const SimpleTree& tree);

// Connected components of `subset` \ {removed} in the induced subgraph,
// each sorted ascending.
std::vector<std::vector<int>> SubsetComponents(const SimpleTree& tree,
                                               const std::vector<int>& subset,
                                               int removed);

// Boundary nodes of the connected subset `component`: nodes with a tree edge
// leaving the subset (Section 3.2).
std::vector<int> BoundaryNodes(const SimpleTree& tree,
                               const std::vector<int>& component);

// Lemma 10: given a connected subset D of the tree with deg(D) <= 2, returns
// a node t in D splitting D into subtrees of size <= |D|/2 and degree <= 2
// plus possibly one subtree of size < |D|-1 and degree 1.  Aborts if no node
// qualifies (which Lemma 10 rules out).
int FindLemma10Splitter(const SimpleTree& tree, const std::vector<int>& d);

}  // namespace owlqr

#endif  // OWLQR_CQ_SPLITTING_H_
