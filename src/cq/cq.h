#ifndef OWLQR_CQ_CQ_H_
#define OWLQR_CQ_CQ_H_

#include <string>
#include <string_view>
#include <vector>

#include "ontology/vocabulary.h"

namespace owlqr {

// One atom of a conjunctive query: A(x) or P(x, y), where A is a concept id
// and P a (binary) predicate id of the shared Vocabulary.  Constants are not
// allowed in CQs (as in the paper, w.l.o.g.).
struct CqAtom {
  enum class Kind { kUnary, kBinary };

  Kind kind;
  int symbol;  // Concept id (kUnary) or predicate id (kBinary).
  int arg0;
  int arg1;  // Unused for kUnary.

  static CqAtom Unary(int concept_id, int var) {
    return {Kind::kUnary, concept_id, var, -1};
  }
  static CqAtom Binary(int predicate_id, int u, int v) {
    return {Kind::kBinary, predicate_id, u, v};
  }

  bool operator==(const CqAtom& o) const {
    return kind == o.kind && symbol == o.symbol && arg0 == o.arg0 &&
           arg1 == o.arg1;
  }
};

// A conjunctive query q(x) = exists y phi(x, y).  Variables are dense ids
// 0..num_vars()-1 with printable names; answer variables are a subset in a
// fixed answer order.
class ConjunctiveQuery {
 public:
  explicit ConjunctiveQuery(Vocabulary* vocabulary)
      : vocabulary_(vocabulary) {}

  Vocabulary* vocabulary() const { return vocabulary_; }

  // Returns the id of the (new or existing) variable called `name`.
  int AddVariable(std::string_view name);
  // Marks an existing variable as an answer variable (idempotent); the order
  // of first marking defines the answer-tuple order.
  void MarkAnswerVariable(int var);

  void AddUnaryAtom(int concept_id, int var);
  void AddBinaryAtom(int predicate_id, int u, int v);

  // Convenience by-name builders (intern in the vocabulary / variable table).
  void AddUnary(std::string_view concept_name, std::string_view var);
  void AddBinary(std::string_view predicate_name, std::string_view u,
                 std::string_view v);

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::string& VarName(int var) const { return var_names_[var]; }
  int FindVariable(std::string_view name) const;

  const std::vector<CqAtom>& atoms() const { return atoms_; }
  const std::vector<int>& answer_vars() const { return answer_vars_; }
  bool IsAnswerVar(int var) const;
  bool IsBoolean() const { return answer_vars_.empty(); }

  // All unary/binary atoms mentioning `var`.
  std::vector<CqAtom> AtomsOn(int var) const;

  std::string ToString() const;

 private:
  Vocabulary* vocabulary_;  // Not owned.
  std::vector<std::string> var_names_;
  std::vector<int> answer_vars_;
  std::vector<CqAtom> atoms_;
};

}  // namespace owlqr

#endif  // OWLQR_CQ_CQ_H_
