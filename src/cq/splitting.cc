#include "cq/splitting.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace owlqr {

namespace {

std::vector<char> Membership(int n, const std::vector<int>& subset) {
  std::vector<char> in(n, 0);
  for (int v : subset) in[v] = 1;
  return in;
}

}  // namespace

std::vector<std::vector<int>> SubsetComponents(const SimpleTree& tree,
                                               const std::vector<int>& subset,
                                               int removed) {
  std::vector<char> in = Membership(tree.n(), subset);
  if (removed >= 0) in[removed] = 0;
  std::vector<char> seen(tree.n(), 0);
  std::vector<std::vector<int>> components;
  for (int start : subset) {
    if (!in[start] || seen[start]) continue;
    std::vector<int> component;
    std::queue<int> queue;
    queue.push(start);
    seen[start] = 1;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop();
      component.push_back(u);
      for (int v : tree.adjacency[u]) {
        if (in[v] && !seen[v]) {
          seen[v] = 1;
          queue.push(v);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

std::vector<int> BoundaryNodes(const SimpleTree& tree,
                               const std::vector<int>& component) {
  std::vector<char> in = Membership(tree.n(), component);
  std::vector<int> boundary;
  for (int u : component) {
    for (int v : tree.adjacency[u]) {
      if (!in[v]) {
        boundary.push_back(u);
        break;
      }
    }
  }
  return boundary;
}

int SubtreeCentroid(const SimpleTree& tree, const std::vector<int>& subset) {
  OWLQR_CHECK(!subset.empty());
  int n = static_cast<int>(subset.size());
  int best = -1;
  int best_max = n + 1;
  for (int candidate : subset) {
    int max_comp = 0;
    for (const std::vector<int>& comp :
         SubsetComponents(tree, subset, candidate)) {
      max_comp = std::max(max_comp, static_cast<int>(comp.size()));
    }
    if (max_comp < best_max) {
      best_max = max_comp;
      best = candidate;
    }
  }
  OWLQR_CHECK(2 * best_max <= n + 1);  // Lemma 14 guarantee (<= ceil(n/2)).
  return best;
}

int TreeCentroid(const SimpleTree& tree) {
  std::vector<int> all(tree.n());
  for (int i = 0; i < tree.n(); ++i) all[i] = i;
  return SubtreeCentroid(tree, all);
}

int FindLemma10Splitter(const SimpleTree& tree, const std::vector<int>& d) {
  OWLQR_CHECK(!d.empty());
  int n = static_cast<int>(d.size());
  if (n == 1) return d[0];
  int best = -1;
  int best_max = -1;
  for (int candidate : d) {
    std::vector<std::vector<int>> comps = SubsetComponents(tree, d, candidate);
    int oversize = 0;  // Components with size > n/2.
    bool ok = true;
    int max_comp = 0;
    for (const std::vector<int>& comp : comps) {
      int size = static_cast<int>(comp.size());
      max_comp = std::max(max_comp, size);
      int deg = static_cast<int>(BoundaryNodes(tree, comp).size());
      if (deg > 2) {
        ok = false;
        break;
      }
      if (2 * size > n) {
        ++oversize;
        // The single oversize component must have degree <= 1 and be smaller
        // than n - 1.
        if (deg > 1 || size >= n - 1) {
          ok = false;
          break;
        }
      }
    }
    if (!ok || oversize > 1) continue;
    if (best < 0 || max_comp < best_max) {
      best = candidate;
      best_max = max_comp;
    }
  }
  OWLQR_CHECK_MSG(best >= 0, "Lemma 10 splitter not found (deg(D) > 2?)");
  return best;
}

}  // namespace owlqr
