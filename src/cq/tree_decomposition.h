#ifndef OWLQR_CQ_TREE_DECOMPOSITION_H_
#define OWLQR_CQ_TREE_DECOMPOSITION_H_

#include <optional>
#include <vector>

#include "cq/cq.h"
#include "cq/gaifman.h"

namespace owlqr {

// A tree decomposition (T, lambda) of a CQ's Gaifman graph.  Nodes are dense
// indices; `bags[t]` is the sorted variable set lambda(t) and `adjacency`
// describes the (undirected) tree T.
struct TreeDecomposition {
  std::vector<std::vector<int>> bags;
  std::vector<std::vector<int>> adjacency;

  int num_nodes() const { return static_cast<int>(bags.size()); }
  int AddBag(std::vector<int> bag);
  void AddEdge(int s, int t);

  // max |bag| - 1.
  int width() const;

  // Checks the three tree-decomposition conditions against `query` (every
  // variable covered, every atom's variables inside some bag, connectivity of
  // occurrence) and that the decomposition graph is a tree.
  bool Validate(const ConjunctiveQuery& query) const;
};

// The natural width-1 decomposition of a connected tree-shaped query: one bag
// per Gaifman edge (Example 8).  Requires graph.IsTree().
TreeDecomposition DecomposeTreeQuery(const ConjunctiveQuery& query,
                                     const GaifmanGraph& graph);

// Min-fill heuristic decomposition; valid for any query, width may exceed the
// true treewidth.
TreeDecomposition MinFillDecomposition(const ConjunctiveQuery& query);

// Branch-and-bound decomposition of width <= max_width, or nullopt if the
// treewidth exceeds max_width.  Exponential: meant for queries with at most
// ~20 variables.
std::optional<TreeDecomposition> ExactDecomposition(
    const ConjunctiveQuery& query, int max_width);

// Exact treewidth via ExactDecomposition (iterative deepening).
int ExactTreewidth(const ConjunctiveQuery& query);

}  // namespace owlqr

#endif  // OWLQR_CQ_TREE_DECOMPOSITION_H_
