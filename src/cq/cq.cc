#include "cq/cq.h"

#include <algorithm>

#include "util/logging.h"

namespace owlqr {

int ConjunctiveQuery::AddVariable(std::string_view name) {
  int existing = FindVariable(name);
  if (existing >= 0) return existing;
  var_names_.emplace_back(name);
  return num_vars() - 1;
}

void ConjunctiveQuery::MarkAnswerVariable(int var) {
  OWLQR_CHECK(var >= 0 && var < num_vars());
  if (!IsAnswerVar(var)) answer_vars_.push_back(var);
}

void ConjunctiveQuery::AddUnaryAtom(int concept_id, int var) {
  OWLQR_CHECK(var >= 0 && var < num_vars());
  atoms_.push_back(CqAtom::Unary(concept_id, var));
}

void ConjunctiveQuery::AddBinaryAtom(int predicate_id, int u, int v) {
  OWLQR_CHECK(u >= 0 && u < num_vars() && v >= 0 && v < num_vars());
  atoms_.push_back(CqAtom::Binary(predicate_id, u, v));
}

void ConjunctiveQuery::AddUnary(std::string_view concept_name,
                                std::string_view var) {
  AddUnaryAtom(vocabulary_->InternConcept(concept_name), AddVariable(var));
}

void ConjunctiveQuery::AddBinary(std::string_view predicate_name,
                                 std::string_view u, std::string_view v) {
  int pu = AddVariable(u);
  int pv = AddVariable(v);
  AddBinaryAtom(vocabulary_->InternPredicate(predicate_name), pu, pv);
}

int ConjunctiveQuery::FindVariable(std::string_view name) const {
  for (int i = 0; i < num_vars(); ++i) {
    if (var_names_[i] == name) return i;
  }
  return -1;
}

bool ConjunctiveQuery::IsAnswerVar(int var) const {
  return std::find(answer_vars_.begin(), answer_vars_.end(), var) !=
         answer_vars_.end();
}

std::vector<CqAtom> ConjunctiveQuery::AtomsOn(int var) const {
  std::vector<CqAtom> out;
  for (const CqAtom& atom : atoms_) {
    if (atom.arg0 == var || (atom.kind == CqAtom::Kind::kBinary &&
                             atom.arg1 == var)) {
      out.push_back(atom);
    }
  }
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "q(";
  for (size_t i = 0; i < answer_vars_.size(); ++i) {
    if (i > 0) out += ", ";
    out += var_names_[answer_vars_[i]];
  }
  out += ") :- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    const CqAtom& a = atoms_[i];
    if (a.kind == CqAtom::Kind::kUnary) {
      out += vocabulary_->ConceptName(a.symbol) + "(" + var_names_[a.arg0] + ")";
    } else {
      out += vocabulary_->PredicateName(a.symbol) + "(" + var_names_[a.arg0] +
             ", " + var_names_[a.arg1] + ")";
    }
  }
  return out;
}

}  // namespace owlqr
