#include "cq/tree_decomposition.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "util/logging.h"

namespace owlqr {

int TreeDecomposition::AddBag(std::vector<int> bag) {
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  bags.push_back(std::move(bag));
  adjacency.emplace_back();
  return num_nodes() - 1;
}

void TreeDecomposition::AddEdge(int s, int t) {
  adjacency[s].push_back(t);
  adjacency[t].push_back(s);
}

int TreeDecomposition::width() const {
  int w = 0;
  for (const std::vector<int>& bag : bags) {
    w = std::max(w, static_cast<int>(bag.size()) - 1);
  }
  return w;
}

bool TreeDecomposition::Validate(const ConjunctiveQuery& query) const {
  if (num_nodes() == 0) return query.num_vars() == 0;
  // The decomposition graph must be a tree.
  int edges = 0;
  for (const std::vector<int>& nbrs : adjacency) {
    edges += static_cast<int>(nbrs.size());
  }
  edges /= 2;
  if (edges != num_nodes() - 1) return false;
  std::vector<bool> seen(num_nodes(), false);
  std::queue<int> queue;
  queue.push(0);
  seen[0] = true;
  int reached = 0;
  while (!queue.empty()) {
    int t = queue.front();
    queue.pop();
    ++reached;
    for (int u : adjacency[t]) {
      if (!seen[u]) {
        seen[u] = true;
        queue.push(u);
      }
    }
  }
  if (reached != num_nodes()) return false;

  auto bag_contains = [&](int t, int v) {
    return std::binary_search(bags[t].begin(), bags[t].end(), v);
  };
  // Every atom's variable set lies in some bag (this subsumes variable
  // coverage since every variable occurs in an atom or is covered below).
  for (const CqAtom& atom : query.atoms()) {
    bool covered = false;
    for (int t = 0; t < num_nodes() && !covered; ++t) {
      covered = bag_contains(t, atom.arg0) &&
                (atom.kind == CqAtom::Kind::kUnary || bag_contains(t, atom.arg1));
    }
    if (!covered) return false;
  }
  for (int v = 0; v < query.num_vars(); ++v) {
    // Coverage and connectivity of occurrence.
    std::vector<int> holders;
    for (int t = 0; t < num_nodes(); ++t) {
      if (bag_contains(t, v)) holders.push_back(t);
    }
    if (holders.empty()) return false;
    std::set<int> holder_set(holders.begin(), holders.end());
    std::set<int> visited;
    std::queue<int> bfs;
    bfs.push(holders[0]);
    visited.insert(holders[0]);
    while (!bfs.empty()) {
      int t = bfs.front();
      bfs.pop();
      for (int u : adjacency[t]) {
        if (holder_set.count(u) > 0 && visited.insert(u).second) bfs.push(u);
      }
    }
    if (visited.size() != holder_set.size()) return false;
  }
  return true;
}

TreeDecomposition DecomposeTreeQuery(const ConjunctiveQuery& query,
                                     const GaifmanGraph& graph) {
  (void)query;  // The decomposition is determined by the Gaifman graph.
  OWLQR_CHECK_MSG(graph.IsTree(), "query Gaifman graph must be a tree");
  TreeDecomposition td;
  int n = graph.num_vertices();
  if (n == 0) return td;
  if (n == 1) {
    td.AddBag({0});
    return td;
  }
  // Root the tree at 0; one bag {parent(v), v} per non-root vertex.
  std::vector<int> parent(n, -1);
  std::vector<int> order;
  std::vector<bool> seen(n, false);
  std::queue<int> queue;
  queue.push(0);
  seen[0] = true;
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop();
    order.push_back(u);
    for (int v : graph.Neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        parent[v] = u;
        queue.push(v);
      }
    }
  }
  std::vector<int> bag_of(n, -1);  // Bag index for non-root vertex v.
  for (int v : order) {
    if (parent[v] < 0) continue;
    bag_of[v] = td.AddBag({parent[v], v});
  }
  int root_hub = -1;
  for (int v : order) {
    if (parent[v] < 0) continue;
    if (parent[v] == 0) {
      // Children of the root form a star (their bags share the root var).
      if (root_hub < 0) {
        root_hub = bag_of[v];
      } else {
        td.AddEdge(root_hub, bag_of[v]);
      }
    } else {
      td.AddEdge(bag_of[v], bag_of[parent[v]]);
    }
  }
  return td;
}

namespace {

// Builds the "moral"-style graph for elimination: one clique per atom (for
// binary atoms, an edge).
std::vector<std::set<int>> BuildEliminationGraph(const ConjunctiveQuery& q) {
  std::vector<std::set<int>> adj(q.num_vars());
  for (const CqAtom& atom : q.atoms()) {
    if (atom.kind == CqAtom::Kind::kBinary && atom.arg0 != atom.arg1) {
      adj[atom.arg0].insert(atom.arg1);
      adj[atom.arg1].insert(atom.arg0);
    }
  }
  return adj;
}

TreeDecomposition DecompositionFromOrder(const ConjunctiveQuery& query,
                                         const std::vector<int>& order) {
  int n = query.num_vars();
  std::vector<std::set<int>> adj = BuildEliminationGraph(query);
  std::vector<int> position(n);
  for (int i = 0; i < n; ++i) position[order[i]] = i;

  TreeDecomposition td;
  std::vector<int> bag_of(n, -1);
  std::vector<std::vector<int>> bag_vars(n);
  for (int i = 0; i < n; ++i) {
    int v = order[i];
    std::vector<int> bag = {v};
    for (int u : adj[v]) bag.push_back(u);
    bag_vars[i] = bag;
    bag_of[v] = td.AddBag(bag);
    // Connect the neighbors into a clique and remove v.
    std::vector<int> nbrs(adj[v].begin(), adj[v].end());
    for (size_t a = 0; a < nbrs.size(); ++a) {
      adj[nbrs[a]].erase(v);
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[nbrs[a]].insert(nbrs[b]);
        adj[nbrs[b]].insert(nbrs[a]);
      }
    }
  }
  // Connect bag i to the bag of the earliest-eliminated remaining neighbor.
  for (int i = 0; i < n; ++i) {
    int v = order[i];
    int best = -1;
    for (int u : bag_vars[i]) {
      if (u == v) continue;
      if (best < 0 || position[u] < position[best]) best = u;
    }
    if (best >= 0) {
      td.AddEdge(bag_of[v], bag_of[best]);
    } else if (i + 1 < n) {
      td.AddEdge(bag_of[v], bag_of[order[i + 1]]);  // Keep the tree connected.
    }
  }
  return td;
}

}  // namespace

TreeDecomposition MinFillDecomposition(const ConjunctiveQuery& query) {
  int n = query.num_vars();
  if (n == 0) return TreeDecomposition();
  std::vector<std::set<int>> adj = BuildEliminationGraph(query);
  std::vector<bool> eliminated(n, false);
  std::vector<int> order;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    long best_fill = -1;
    for (int v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      long fill = 0;
      std::vector<int> nbrs(adj[v].begin(), adj[v].end());
      for (size_t a = 0; a < nbrs.size(); ++a) {
        for (size_t b = a + 1; b < nbrs.size(); ++b) {
          if (adj[nbrs[a]].count(nbrs[b]) == 0) ++fill;
        }
      }
      if (best < 0 || fill < best_fill) {
        best = v;
        best_fill = fill;
      }
    }
    order.push_back(best);
    eliminated[best] = true;
    std::vector<int> nbrs(adj[best].begin(), adj[best].end());
    for (size_t a = 0; a < nbrs.size(); ++a) {
      adj[nbrs[a]].erase(best);
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[nbrs[a]].insert(nbrs[b]);
        adj[nbrs[b]].insert(nbrs[a]);
      }
    }
    adj[best].clear();
  }
  return DecompositionFromOrder(query, order);
}

namespace {

// Depth-first search for an elimination order of width <= max_width.
bool SearchOrder(std::vector<std::set<int>>& adj, std::vector<bool>& done,
                 int remaining, int max_width, std::vector<int>* order,
                 std::set<std::vector<bool>>* visited) {
  if (remaining == 0) return true;
  if (visited->count(done) > 0) return false;
  int n = static_cast<int>(adj.size());
  for (int v = 0; v < n; ++v) {
    if (done[v] || static_cast<int>(adj[v].size()) > max_width) continue;
    // Eliminate v.
    std::vector<int> nbrs(adj[v].begin(), adj[v].end());
    std::vector<std::pair<int, int>> added;
    for (size_t a = 0; a < nbrs.size(); ++a) {
      adj[nbrs[a]].erase(v);
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        if (adj[nbrs[a]].insert(nbrs[b]).second) {
          adj[nbrs[b]].insert(nbrs[a]);
          added.emplace_back(nbrs[a], nbrs[b]);
        }
      }
    }
    done[v] = true;
    order->push_back(v);
    if (SearchOrder(adj, done, remaining - 1, max_width, order, visited)) {
      return true;
    }
    // Undo.
    order->pop_back();
    done[v] = false;
    for (auto [a, b] : added) {
      adj[a].erase(b);
      adj[b].erase(a);
    }
    for (int u : nbrs) adj[u].insert(v);
  }
  visited->insert(done);
  return false;
}

}  // namespace

std::optional<TreeDecomposition> ExactDecomposition(
    const ConjunctiveQuery& query, int max_width) {
  int n = query.num_vars();
  if (n == 0) return TreeDecomposition();
  std::vector<std::set<int>> adj = BuildEliminationGraph(query);
  std::vector<bool> done(n, false);
  std::vector<int> order;
  std::set<std::vector<bool>> visited;
  if (!SearchOrder(adj, done, n, max_width, &order, &visited)) {
    return std::nullopt;
  }
  return DecompositionFromOrder(query, order);
}

int ExactTreewidth(const ConjunctiveQuery& query) {
  for (int w = 0;; ++w) {
    if (ExactDecomposition(query, w).has_value()) return w;
  }
}

}  // namespace owlqr
