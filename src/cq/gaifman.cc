#include "cq/gaifman.h"

#include <algorithm>
#include <queue>

namespace owlqr {

GaifmanGraph::GaifmanGraph(const ConjunctiveQuery& query) {
  adjacency_.assign(query.num_vars(), {});
  for (const CqAtom& atom : query.atoms()) {
    if (atom.kind != CqAtom::Kind::kBinary || atom.arg0 == atom.arg1) continue;
    adjacency_[atom.arg0].push_back(atom.arg1);
    adjacency_[atom.arg1].push_back(atom.arg0);
  }
  for (std::vector<int>& nbrs : adjacency_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  for (const std::vector<int>& nbrs : adjacency_) {
    num_edges_ += static_cast<int>(nbrs.size());
  }
  num_edges_ /= 2;
}

bool GaifmanGraph::HasEdge(int u, int v) const {
  const std::vector<int>& nbrs = adjacency_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool GaifmanGraph::IsConnected() const {
  if (num_vertices() == 0) return true;
  return static_cast<int>(Components().size()) <= 1;
}

bool GaifmanGraph::IsTree() const {
  return IsConnected() && num_edges_ == num_vertices() - 1;
}

int GaifmanGraph::NumLeaves() const {
  if (num_vertices() == 1) return 1;
  int leaves = 0;
  for (int v = 0; v < num_vertices(); ++v) {
    if (Degree(v) <= 1) ++leaves;
  }
  return leaves;
}

std::vector<std::vector<int>> GaifmanGraph::Components() const {
  std::vector<std::vector<int>> components;
  std::vector<bool> seen(num_vertices(), false);
  for (int start = 0; start < num_vertices(); ++start) {
    if (seen[start]) continue;
    std::vector<int> component;
    std::queue<int> queue;
    queue.push(start);
    seen[start] = true;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop();
      component.push_back(u);
      for (int v : adjacency_[u]) {
        if (!seen[v]) {
          seen[v] = true;
          queue.push(v);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

std::vector<std::vector<int>> GaifmanGraph::BfsLayers(int root) const {
  std::vector<std::vector<int>> layers;
  std::vector<int> dist(num_vertices(), -1);
  dist[root] = 0;
  std::vector<int> frontier = {root};
  while (!frontier.empty()) {
    layers.push_back(frontier);
    std::vector<int> next;
    for (int u : frontier) {
      for (int v : adjacency_[u]) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          next.push_back(v);
        }
      }
    }
    std::sort(next.begin(), next.end());
    frontier = std::move(next);
  }
  return layers;
}

}  // namespace owlqr
