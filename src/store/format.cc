#include "store/format.h"

#include <cstring>

#include "util/logging.h"

namespace owlqr {
namespace store {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const Crc32Table& table = Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string* out, const std::string& s) {
  OWLQR_CHECK_MSG(s.size() <= 0xFFFF, "store: name longer than 65535 bytes");
  PutU16(out, static_cast<uint16_t>(s.size()));
  out->append(s);
}

bool ByteReader::ReadU16(uint16_t* out) {
  if (remaining() < 2) return false;
  *out = static_cast<uint16_t>(data[pos]) |
         static_cast<uint16_t>(data[pos + 1]) << 8;
  pos += 2;
  return true;
}

bool ByteReader::ReadU32(uint32_t* out) {
  if (remaining() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
  }
  pos += 4;
  *out = v;
  return true;
}

bool ByteReader::ReadU64(uint64_t* out) {
  if (remaining() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
  }
  pos += 8;
  *out = v;
  return true;
}

bool ByteReader::ReadString(std::string* out) {
  uint16_t len;
  if (!ReadU16(&len)) return false;
  if (remaining() < len) return false;
  out->assign(reinterpret_cast<const char*>(data + pos), len);
  pos += len;
  return true;
}

bool ByteReader::ReadBytes(size_t n, const uint8_t** out) {
  if (remaining() < n) return false;
  *out = data + pos;
  pos += n;
  return true;
}

void AppendFileHeader(std::string* out, FileType type) {
  out->append(kMagic, sizeof(kMagic));
  PutU32(out, static_cast<uint32_t>(type));
  PutU32(out, kFormatVersion);
  PutU32(out, 0);  // Reserved.
}

Status CheckFileHeader(const uint8_t* data, size_t size, FileType type,
                       const std::string& what) {
  if (size < kFileHeaderBytes) {
    return Status::DataLoss(what + ": file shorter than the 16-byte header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss(what + ": bad magic (not a store file)");
  }
  ByteReader reader(data + 4, kFileHeaderBytes - 4);
  uint32_t tag = 0;
  uint32_t version = 0;
  uint32_t reserved = 0;
  reader.ReadU32(&tag);
  reader.ReadU32(&version);
  reader.ReadU32(&reserved);
  if (tag != static_cast<uint32_t>(type)) {
    return Status::DataLoss(what + ": wrong file-type tag " +
                            std::to_string(tag));
  }
  if (version != kFormatVersion) {
    return Status::DataLoss(what + ": format version " +
                            std::to_string(version) + ", this build reads " +
                            std::to_string(kFormatVersion));
  }
  if (reserved != 0) {
    return Status::DataLoss(what + ": reserved header bytes are not zero");
  }
  return Status::Ok();
}

}  // namespace store
}  // namespace owlqr
