#include "store/log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "store/format.h"
#include "store/fs.h"
#include "util/metrics.h"

namespace owlqr {
namespace store {

namespace {

// Decodes one record payload.  False on any truncation or count lie — the
// caller treats the whole record as invalid.
bool DecodePayload(const uint8_t* data, size_t size, LogRecord* out) {
  ByteReader reader(data, size);
  uint32_t n_concepts = 0;
  uint32_t n_roles = 0;
  if (!reader.ReadU64(&out->version) || !reader.ReadU32(&n_concepts) ||
      !reader.ReadU32(&n_roles)) {
    return false;
  }
  // Each fact costs at least one u16 length per string; refuse counts that
  // could not possibly fit the remaining bytes before reserving anything.
  if (static_cast<uint64_t>(n_concepts) * 4 + static_cast<uint64_t>(n_roles) * 6 >
      reader.remaining()) {
    return false;
  }
  out->batch.concepts.reserve(n_concepts);
  for (uint32_t i = 0; i < n_concepts; ++i) {
    NamedFactBatch::ConceptFact fact;
    if (!reader.ReadString(&fact.concept_name) ||
        !reader.ReadString(&fact.individual)) {
      return false;
    }
    out->batch.concepts.push_back(std::move(fact));
  }
  out->batch.roles.reserve(n_roles);
  for (uint32_t i = 0; i < n_roles; ++i) {
    NamedFactBatch::RoleFact fact;
    if (!reader.ReadString(&fact.role) || !reader.ReadString(&fact.subject) ||
        !reader.ReadString(&fact.object)) {
      return false;
    }
    out->batch.roles.push_back(std::move(fact));
  }
  // Trailing slack inside a record means the length prefix lied.
  return reader.remaining() == 0;
}

}  // namespace

void EncodeLogRecord(const LogRecord& record, std::string* out) {
  std::string payload;
  PutU64(&payload, record.version);
  PutU32(&payload, static_cast<uint32_t>(record.batch.concepts.size()));
  PutU32(&payload, static_cast<uint32_t>(record.batch.roles.size()));
  for (const NamedFactBatch::ConceptFact& fact : record.batch.concepts) {
    PutString(&payload, fact.concept_name);
    PutString(&payload, fact.individual);
  }
  for (const NamedFactBatch::RoleFact& fact : record.batch.roles) {
    PutString(&payload, fact.role);
    PutString(&payload, fact.subject);
    PutString(&payload, fact.object);
  }
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

Status ScanLog(const uint8_t* data, size_t size,
               std::vector<LogRecord>* records, size_t* valid_end,
               size_t* dropped_bytes) {
  records->clear();
  *valid_end = 0;
  *dropped_bytes = 0;
  Status header = CheckFileHeader(data, size, FileType::kLog, "store.log");
  if (!header.ok()) return header;

  size_t pos = kFileHeaderBytes;
  size_t prefix_end = pos;
  uint64_t last_version = 0;
  while (pos + 8 <= size) {
    ByteReader reader(data + pos, 8);
    uint32_t payload_len = 0;
    uint32_t crc = 0;
    reader.ReadU32(&payload_len);
    reader.ReadU32(&crc);
    if (payload_len < kMinLogPayloadBytes ||
        payload_len > kMaxLogPayloadBytes ||
        payload_len > size - pos - 8) {
      break;  // A lying length prefix: the torn tail starts here.
    }
    const uint8_t* payload = data + pos + 8;
    if (Crc32(payload, payload_len) != crc) break;
    LogRecord record;
    if (!DecodePayload(payload, payload_len, &record)) break;
    // Versions must be strictly ascending along the log; a record out of
    // order survived its CRC but cannot be replayed soundly, so the prefix
    // ends before it.
    if (record.version <= last_version) break;
    last_version = record.version;
    records->push_back(std::move(record));
    pos += 8 + payload_len;
    prefix_end = pos;
  }
  *valid_end = prefix_end;
  *dropped_bytes = size - prefix_end;
  return Status::Ok();
}

Status FactLog::Open(const std::string& path, bool fsync,
                     std::unique_ptr<FactLog>* out,
                     std::vector<LogRecord>* recovered,
                     uint64_t* dropped_bytes) {
  out->reset();
  recovered->clear();
  *dropped_bytes = 0;

  size_t valid_end = kFileHeaderBytes;
  bool fresh = !PathExists(path);
  if (fresh) {
    std::string header;
    AppendFileHeader(&header, FileType::kLog);
    // The header is synced even under fsync=never: a torn header makes the
    // whole log unreadable forever, which is worse than the lost-suffix
    // contract the flag buys.  One-time cost per store.
    Status s = WriteFileDurable(path, header, /*fsync=*/true);
    if (!s.ok()) return s;
  } else {
    std::string contents;
    Status s = ReadWholeFile(path, &contents);
    if (!s.ok()) return s;
    size_t dropped = 0;
    s = ScanLog(reinterpret_cast<const uint8_t*>(contents.data()),
                contents.size(), recovered, &valid_end, &dropped);
    if (!s.ok()) return s;
    *dropped_bytes = dropped;
  }

  // O_APPEND: every write lands at the kernel's idea of EOF, so a rollback
  // ftruncate after a failed append can never leave the next record past a
  // zero-filled hole (the scan would stop at the hole and silently lose
  // every acknowledged record after it).
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return Status::DataLoss("store: open " + path + ": " +
                            std::strerror(errno));
  }
  // Truncate-repair: drop the torn tail now so the next append lands
  // directly after the last valid record.
  if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
    Status s = Status::DataLoss("store: truncate " + path + ": " +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status s = Status::DataLoss("store: seek " + path + ": " +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (*dropped_bytes > 0) {
    OWLQR_COUNT("store/log_dropped_bytes",
                static_cast<long>(*dropped_bytes));
  }
  out->reset(new FactLog(path, fd, fsync, valid_end, recovered->size()));
  return Status::Ok();
}

FactLog::~FactLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status FactLog::Append(const LogRecord& record) {
  std::string encoded;
  EncodeLogRecord(record, &encoded);
  size_t written = 0;
  while (written < encoded.size()) {
    ssize_t n =
        ::write(fd_, encoded.data() + written, encoded.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::DataLoss("store: append " + path_ + ": " +
                                  std::strerror(errno));
      // Roll the file back to the last durable record so a partial write
      // cannot sit under a later successful append, and reposition the fd
      // (ftruncate does not move the offset; O_APPEND also covers this).
      (void)::ftruncate(fd_, static_cast<off_t>(bytes_));
      (void)::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET);
      return s;
    }
    written += static_cast<size_t>(n);
  }
  if (fsync_ && ::fsync(fd_) != 0) {
    Status s = Status::DataLoss("store: fsync " + path_ + ": " +
                                std::strerror(errno));
    (void)::ftruncate(fd_, static_cast<off_t>(bytes_));
    (void)::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET);
    return s;
  }
  bytes_ += encoded.size();
  ++records_;
  OWLQR_COUNT("store/log_appends", 1);
  OWLQR_COUNT("store/log_appended_bytes", static_cast<long>(encoded.size()));
  return Status::Ok();
}

Status FactLog::Reset() {
  if (::ftruncate(fd_, static_cast<off_t>(kFileHeaderBytes)) != 0) {
    return Status::DataLoss("store: truncate " + path_ + ": " +
                            std::strerror(errno));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return Status::DataLoss("store: seek " + path_ + ": " +
                            std::strerror(errno));
  }
  if (fsync_ && ::fsync(fd_) != 0) {
    return Status::DataLoss("store: fsync " + path_ + ": " +
                            std::strerror(errno));
  }
  bytes_ = kFileHeaderBytes;
  records_ = 0;
  return Status::Ok();
}

}  // namespace store
}  // namespace owlqr
