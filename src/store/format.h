#ifndef OWLQR_STORE_FORMAT_H_
#define OWLQR_STORE_FORMAT_H_

// The versioned on-disk format shared by every file a DurableStore writes
// (DESIGN.md §14): the common 16-byte file header, the little-endian
// primitive codecs, and the CRC32 used by the fact log's record checksums
// and the segment files' payload checksums.
//
// Every decoder here is total over hostile bytes: a malformed header or a
// truncated primitive comes back as a field-naming Status (or a false from
// ByteReader), never as UB — the corruption fuzz suite drives these paths
// directly.

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace owlqr {
namespace store {

// Every store file starts with the same 16-byte header:
//
//   bytes 0..3   magic "OWQR"
//   bytes 4..7   file-type tag (FileType, little-endian u32)
//   bytes 8..11  format version (little-endian u32)
//   bytes 12..15 reserved, must be zero (checked on read, so corruption
//                anywhere in the header is always detected)
inline constexpr char kMagic[4] = {'O', 'W', 'Q', 'R'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kFileHeaderBytes = 16;

enum class FileType : uint32_t {
  kLog = 1,          // The append-only fact log ("LOG").
  kSegmentMeta = 2,  // A segment's META file.
  kColumn = 3,       // A segment column file (adom / c<ID> / r<ID>).
  kCurrent = 4,      // The CURRENT segment pointer.
};

// CRC32 (reflected, polynomial 0xEDB88320 — the zlib/IEEE one).
uint32_t Crc32(const void* data, size_t size);

// Little-endian appenders onto a byte buffer.
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
// Length-prefixed (u16) string; names longer than 65535 bytes are a caller
// error (the parser's identifiers are far shorter) and are truncated-proof:
// PutString CHECK-fails on oversize rather than writing a lying prefix.
void PutString(std::string* out, const std::string& s);

// Bounds-checked little-endian cursor over a byte range.  Every Read
// returns false (leaving the cursor unspecified) instead of reading out of
// bounds.
struct ByteReader {
  ByteReader(const uint8_t* data, size_t size) : data(data), size(size) {}

  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }
  bool ReadU16(uint16_t* out);
  bool ReadU32(uint32_t* out);
  bool ReadU64(uint64_t* out);
  bool ReadString(std::string* out);
  // Hands back a pointer into the buffer; false when fewer than n bytes
  // remain.
  bool ReadBytes(size_t n, const uint8_t** out);
};

// Appends the 16-byte file header for `type`.
void AppendFileHeader(std::string* out, FileType type);

// Validates the header at the start of `data`: magic, type tag, format
// version (an unknown or future version is refused, never guessed at), and
// the reserved bytes.  `what` names the file in error messages
// ("store.log", "segment.meta", ...).
Status CheckFileHeader(const uint8_t* data, size_t size, FileType type,
                       const std::string& what);

}  // namespace store
}  // namespace owlqr

#endif  // OWLQR_STORE_FORMAT_H_
