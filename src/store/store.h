#ifndef OWLQR_STORE_STORE_H_
#define OWLQR_STORE_STORE_H_

// The pluggable durability seam (DESIGN.md §14.1).  owlqr::store::Store is
// what the Engine talks to: recover state at open, append one record per
// acknowledged ApplyFacts batch, checkpoint a snapshot when the log grows
// past its budget.  DurableStore is the default backend — one directory per
// engine holding
//
//   LOG              the append-only checksummed fact log (store/log.h)
//   CURRENT          the durable pointer naming the live segment directory
//   seg-<version>/   one columnar snapshot segment (store/segment.h)
//
// Compaction protocol (all steps durable before the next begins):
//   1. write seg-<V>/ for the current snapshot (columns first, META last)
//   2. install CURRENT -> seg-<V> via tmp + rename + dir fsync
//   3. reset LOG to empty, then delete the previous segment directory
// A crash between any two steps leaves a recoverable store: an orphan
// segment directory is overwritten next time, a stale LOG prefix is
// skipped by version at recovery, a leftover old segment is just garbage.
//
// Recovery state machine:
//   CURRENT present        -> open + CRC-check the segment, scan the LOG,
//                             replay records with version > segment version
//   no CURRENT, no LOG     -> fresh store (the engine seeds a checkpoint)
//   LOG without CURRENT    -> data loss: facts were acknowledged against a
//                             baseline that no longer exists

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/snapshot.h"
#include "ontology/vocabulary.h"
#include "store/log.h"
#include "store/segment.h"
#include "util/status.h"

namespace owlqr {
namespace store {

struct StoreOptions {
  // Root directory for this engine's durable state.
  std::string dir;
  // fsync the log on every append.  Off trades crash durability for
  // throughput — recovery still never serves a torn record, it just may
  // lose the unsynced log suffix.  Checkpoint files (segment columns, META,
  // CURRENT) and the log header are always synced regardless: losing them
  // would make the store permanently unopenable, not merely stale.
  bool fsync = true;
  // Checkpoint once the log holds this many bytes (0 = never by size;
  // explicit Engine::Checkpoint still works).
  uint64_t compact_log_bytes = 64ull << 20;
};

// A consistent sample of the store's meters, for /metrics and trace JSON.
struct StoreCounters {
  uint64_t log_bytes = 0;            // Current log size (incl. header).
  uint64_t log_records = 0;          // Records in the current log.
  uint64_t appended_batches = 0;     // Appends since this process opened.
  uint64_t log_dropped_bytes = 0;    // Torn tail dropped at recovery.
  uint64_t segments_written = 0;     // Checkpoints completed.
  uint64_t compactions_failed = 0;   // Checkpoints that returned an error.
  uint64_t recovered_records = 0;    // Log-tail records replayed at open.
  double recovery_ms = 0;            // Store-side Recover() wall time.
};

// What Recover hands the engine: either a fresh store (seed it with a
// checkpoint before appending) or a rebuilt base snapshot plus the log
// tail to replay through the normal ApplyFacts delta path.
struct RecoveredState {
  bool fresh = false;
  std::shared_ptr<const DataSnapshot> base;  // Null when fresh.
  std::vector<LogRecord> tail;               // Versions > base->version().
};

class Store {
 public:
  virtual ~Store() = default;

  // Loads durable state.  `tbox_fingerprint` must match the fingerprint the
  // store was created with (a store is bound to one ontology); `vocab` is
  // grown with the stored symbol names.  `max_resident_bytes` caps the
  // column bytes loaded eagerly into the base snapshot (0 = everything
  // resident); the rest stays cold behind the snapshot's ColumnSource.
  // Called exactly once, before any other method.
  virtual Status Recover(Vocabulary* vocab, uint64_t tbox_fingerprint,
                         size_t max_resident_bytes, RecoveredState* out) = 0;

  // Durably appends one acknowledged batch.  The engine calls this BETWEEN
  // building the new snapshot and installing it — a failure here means the
  // version is never acknowledged.
  virtual Status AppendBatch(uint64_t version, const NamedFactBatch& batch) = 0;

  // Writes a full segment for `snapshot`, switches CURRENT to it and resets
  // the log.  Failure is non-fatal to serving (the old segment + log still
  // recover); the engine just counts it and retries later.
  virtual Status Checkpoint(const DataSnapshot& snapshot,
                            const Vocabulary& vocab) = 0;

  // True once the log has outgrown the compaction budget.
  virtual bool ShouldCompact() const = 0;

  virtual StoreCounters counters() const = 0;
};

class DurableStore : public Store {
 public:
  // Validates / creates the directory.  Cheap: all IO happens in Recover.
  static Status Open(const StoreOptions& options,
                     std::shared_ptr<DurableStore>* out);

  Status Recover(Vocabulary* vocab, uint64_t tbox_fingerprint,
                 size_t max_resident_bytes, RecoveredState* out) override;
  Status AppendBatch(uint64_t version, const NamedFactBatch& batch) override;
  Status Checkpoint(const DataSnapshot& snapshot,
                    const Vocabulary& vocab) override;
  bool ShouldCompact() const override;
  StoreCounters counters() const override;

  const StoreOptions& options() const { return options_; }

 private:
  explicit DurableStore(StoreOptions options)
      : options_(std::move(options)) {}

  // Reads + validates CURRENT; empty string when the file doesn't exist.
  Status ReadCurrent(std::string* segment_name) const;
  Status WriteCurrent(const std::string& segment_name);

  const StoreOptions options_;
  uint64_t tbox_fingerprint_ = 0;

  // Guards the log handle and counters.  The engine already serializes
  // Append/Checkpoint under its apply mutex; this mutex exists so stats
  // reads are safe against them.
  mutable std::mutex mutex_;
  std::unique_ptr<FactLog> log_;
  std::string current_segment_;  // Directory name CURRENT points at.
  StoreCounters counters_;
};

}  // namespace store
}  // namespace owlqr

#endif  // OWLQR_STORE_STORE_H_
