#include "store/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace owlqr {
namespace store {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return Status::Ok();
  if (errno == EEXIST && IsDirectory(path)) return Status::Ok();
  return Status::DataLoss(Errno("store: mkdir", path));
}

Status ListDir(const std::string& dir, std::vector<std::string>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::DataLoss(Errno("store: opendir", dir));
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    out->push_back(std::move(name));
  }
  ::closedir(d);
  return Status::Ok();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  out->clear();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::DataLoss(Errno("store: open", path));
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::DataLoss(Errno("store: read", path));
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::DataLoss(Errno("store: open dir", dir));
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::DataLoss(Errno("store: fsync dir", dir));
  return Status::Ok();
}

Status WriteFileDurable(const std::string& path, const std::string& contents,
                        bool fsync) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::DataLoss(Errno("store: create", tmp));
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::DataLoss(Errno("store: write", tmp));
    }
    written += static_cast<size_t>(n);
  }
  if (fsync && ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::DataLoss(Errno("store: fsync", tmp));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::DataLoss(Errno("store: close", tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::DataLoss(Errno("store: rename", path));
  }
  if (fsync) {
    size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash == 0 ? 1 : slash);
    return FsyncDir(dir);
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::DataLoss(Errno("store: unlink", path));
  }
  return Status::Ok();
}

Status RemoveDirRecursive(const std::string& dir) {
  std::vector<std::string> entries;
  Status s = ListDir(dir, &entries);
  if (!s.ok()) return s;
  for (const std::string& name : entries) {
    const std::string path = dir + "/" + name;
    if (!IsDirectory(path)) {
      s = RemoveFile(path);
      if (!s.ok()) return s;
    }
  }
  if (::rmdir(dir.c_str()) != 0 && errno != ENOENT) {
    return Status::DataLoss(Errno("store: rmdir", dir));
  }
  return Status::Ok();
}

MappedFile::MappedFile(MappedFile&& o) noexcept
    : data_(o.data_), size_(o.size_), opened_(o.opened_) {
  o.data_ = nullptr;
  o.size_ = 0;
  o.opened_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& o) noexcept {
  if (this != &o) {
    Close();
    data_ = o.data_;
    size_ = o.size_;
    opened_ = o.opened_;
    o.data_ = nullptr;
    o.size_ = 0;
    o.opened_ = false;
  }
  return *this;
}

MappedFile::~MappedFile() { Close(); }

Status MappedFile::Open(const std::string& path) {
  Close();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::DataLoss(Errno("store: open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::DataLoss(Errno("store: stat", path));
  }
  size_ = static_cast<size_t>(st.st_size);
  opened_ = true;
  if (size_ == 0) {
    // mmap of length 0 is EINVAL; an empty mapping is just no bytes.
    ::close(fd);
    data_ = nullptr;
    return Status::Ok();
  }
  void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping holds its own reference.
  if (mapped == MAP_FAILED) {
    size_ = 0;
    opened_ = false;
    return Status::DataLoss(Errno("store: mmap", path));
  }
  data_ = static_cast<uint8_t*>(mapped);
  return Status::Ok();
}

void MappedFile::Close() {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  opened_ = false;
}

}  // namespace store
}  // namespace owlqr
