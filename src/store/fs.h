#ifndef OWLQR_STORE_FS_H_
#define OWLQR_STORE_FS_H_

// POSIX file plumbing for the durable store: whole-file reads, durable
// (tmp + fsync + rename + directory-fsync) writes, and a read-only mmap
// wrapper.  Every failure surfaces as a Status naming the path — the store
// never aborts the process over an IO error.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace owlqr {
namespace store {

bool PathExists(const std::string& path);
bool IsDirectory(const std::string& path);

// mkdir, tolerating an already-existing directory.  Creates one level only
// (callers create parents explicitly, so a typo'd --store-dir fails loudly
// instead of fabricating a deep tree).
Status MakeDir(const std::string& path);

// Names (not paths) of the entries in `dir`, excluding "." / "..".
Status ListDir(const std::string& dir, std::vector<std::string>* out);

Status ReadWholeFile(const std::string& path, std::string* out);

// Writes `contents` to `path` via a temporary sibling + rename, fsyncing
// the file (when `fsync`) and the containing directory, so a crash leaves
// either the old file or the new one — never a torn mix.
Status WriteFileDurable(const std::string& path, const std::string& contents,
                        bool fsync);

// fsync on a directory fd, making a rename / create inside it durable.
Status FsyncDir(const std::string& dir);

Status RemoveFile(const std::string& path);
// Removes a directory and the regular files directly inside it (segment
// directories are flat; anything deeper is left in place and fails the
// rmdir with a Status).
Status RemoveDirRecursive(const std::string& dir);

// Read-only mmap of a whole file.  The mapping stays valid for the
// object's lifetime even if the file is later unlinked (compaction removes
// old segments while snapshots still reference them); truncating a mapped
// file out from under the process is the one thing that can still SIGBUS,
// which is why the store never truncates segment files in place.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& o) noexcept;
  MappedFile& operator=(MappedFile&& o) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  Status Open(const std::string& path);
  void Close();

  bool valid() const { return data_ != nullptr || size_ == 0; }
  bool open() const { return opened_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool opened_ = false;
};

}  // namespace store
}  // namespace owlqr

#endif  // OWLQR_STORE_FS_H_
