#include "store/segment.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "store/format.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {
namespace store {

namespace {

// Sanity ceilings for DecodeMeta: large enough for any real scenario, small
// enough that a lying count can't drive a multi-gigabyte reserve.  Actual
// contents are still bounds-checked element by element.
constexpr uint64_t kMaxNameTable = 64u << 20;  // 64M symbols.
constexpr uint64_t kMaxColumns = 64u << 20;

std::string ColumnFileName(const ColumnInfo& col) {
  return (col.role ? "r" : "c") + std::to_string(col.stored_id);
}

// The cell payload of one in-memory relation, as segment file bytes.
std::string EncodeColumnFile(const Rows& rows, uint32_t* crc_out) {
  std::string out;
  AppendFileHeader(&out, FileType::kColumn);
  const size_t cell_bytes = rows.size() * static_cast<size_t>(rows.arity) *
                            sizeof(int32_t);
  out.append(reinterpret_cast<const char*>(rows.cells.data()), cell_bytes);
  *crc_out = Crc32(out.data() + kFileHeaderBytes, cell_bytes);
  return out;
}

void PutNameTable(std::string* out, const std::vector<std::string>& names) {
  PutU32(out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) PutString(out, name);
}

bool ReadNameTable(ByteReader* r, std::vector<std::string>* out,
                   const char* field, Status* status) {
  uint32_t n = 0;
  if (!r->ReadU32(&n) || n > kMaxNameTable) {
    *status = Status::DataLoss(std::string("segment META: bad ") + field +
                               " count");
    return false;
  }
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    if (!r->ReadString(&name)) {
      *status = Status::DataLoss(std::string("segment META: truncated ") +
                                 field + " table");
      return false;
    }
    out->push_back(std::move(name));
  }
  return true;
}

}  // namespace

void EncodeMeta(const SegmentMeta& meta, std::string* out) {
  const size_t start = out->size();  // The caller may have a header here.
  PutU64(out, meta.snapshot_version);
  PutU64(out, meta.tbox_fingerprint);
  PutNameTable(out, meta.concept_names);
  PutNameTable(out, meta.predicate_names);
  PutNameTable(out, meta.individual_names);
  PutU64(out, meta.num_adom);
  PutU32(out, meta.adom_crc);
  PutU32(out, static_cast<uint32_t>(meta.columns.size()));
  for (const ColumnInfo& col : meta.columns) {
    PutU32(out, col.role ? 1 : 0);
    PutU32(out, col.stored_id);
    PutU32(out, col.arity);
    PutU64(out, col.num_rows);
    PutU32(out, col.crc);
  }
  // Trailing CRC over everything above (this call's bytes only), so a
  // flipped bit anywhere in the directory itself is caught before any
  // column is trusted.
  PutU32(out, Crc32(out->data() + start, out->size() - start));
}

Status DecodeMeta(const uint8_t* data, size_t size, SegmentMeta* out) {
  *out = SegmentMeta();
  if (size < sizeof(uint32_t)) {
    return Status::DataLoss("segment META: too short for its checksum");
  }
  const size_t body = size - sizeof(uint32_t);
  ByteReader tail(data + body, sizeof(uint32_t));
  uint32_t stored_crc = 0;
  tail.ReadU32(&stored_crc);
  if (Crc32(data, body) != stored_crc) {
    return Status::DataLoss("segment META: checksum mismatch");
  }

  ByteReader r(data, body);
  Status status;
  if (!r.ReadU64(&out->snapshot_version) ||
      !r.ReadU64(&out->tbox_fingerprint)) {
    return Status::DataLoss("segment META: truncated header fields");
  }
  if (!ReadNameTable(&r, &out->concept_names, "concept-name", &status) ||
      !ReadNameTable(&r, &out->predicate_names, "predicate-name", &status) ||
      !ReadNameTable(&r, &out->individual_names, "individual-name", &status)) {
    return status;
  }
  if (!r.ReadU64(&out->num_adom) || !r.ReadU32(&out->adom_crc)) {
    return Status::DataLoss("segment META: truncated adom fields");
  }
  uint32_t n_columns = 0;
  if (!r.ReadU32(&n_columns) || n_columns > kMaxColumns) {
    return Status::DataLoss("segment META: bad column count");
  }
  out->columns.reserve(n_columns);
  for (uint32_t i = 0; i < n_columns; ++i) {
    ColumnInfo col;
    uint32_t role_tag = 0;
    if (!r.ReadU32(&role_tag) || role_tag > 1 || !r.ReadU32(&col.stored_id) ||
        !r.ReadU32(&col.arity) || !r.ReadU64(&col.num_rows) ||
        !r.ReadU32(&col.crc)) {
      return Status::DataLoss("segment META: truncated column directory");
    }
    col.role = role_tag == 1;
    if (col.arity != (col.role ? 2u : 1u)) {
      return Status::DataLoss("segment META: column " + ColumnFileName(col) +
                              " has arity " + std::to_string(col.arity));
    }
    const std::vector<std::string>& table =
        col.role ? out->predicate_names : out->concept_names;
    if (col.stored_id >= table.size()) {
      return Status::DataLoss("segment META: column " + ColumnFileName(col) +
                              " names an id outside its name table");
    }
    out->columns.push_back(col);
  }
  if (r.remaining() != 0) {
    return Status::DataLoss("segment META: trailing bytes after directory");
  }
  return Status::Ok();
}

Status WriteSegment(const std::string& dir, const DataSnapshot& snapshot,
                    const Vocabulary& vocab, uint64_t tbox_fingerprint,
                    bool fsync) {
  OWLQR_NAMED_SPAN(span, "store/write-segment");
  Status status = MakeDir(dir);
  if (!status.ok()) return status;

  SegmentMeta meta;
  meta.snapshot_version = snapshot.version();
  meta.tbox_fingerprint = tbox_fingerprint;
  meta.concept_names.reserve(vocab.num_concepts());
  for (int id = 0; id < vocab.num_concepts(); ++id) {
    meta.concept_names.push_back(vocab.ConceptName(id));
  }
  meta.predicate_names.reserve(vocab.num_predicates());
  for (int id = 0; id < vocab.num_predicates(); ++id) {
    meta.predicate_names.push_back(vocab.PredicateName(id));
  }
  meta.individual_names.reserve(vocab.num_individuals());
  for (int id = 0; id < vocab.num_individuals(); ++id) {
    meta.individual_names.push_back(vocab.IndividualName(id));
  }

  // The active domain, as a header + raw i32 file like every column.
  {
    const std::vector<int>& adom = snapshot.active_domain();
    std::string file;
    AppendFileHeader(&file, FileType::kColumn);
    file.append(reinterpret_cast<const char*>(adom.data()),
                adom.size() * sizeof(int32_t));
    meta.num_adom = adom.size();
    meta.adom_crc = Crc32(file.data() + kFileHeaderBytes,
                          file.size() - kFileHeaderBytes);
    status = WriteFileDurable(dir + "/adom", file, fsync);
    if (!status.ok()) return status;
  }

  // One column file per non-empty relation.  Stored ids are the live ids at
  // write time (the name tables above make them portable); cold columns are
  // streamed from the snapshot's ColumnSource without being published.
  const auto emit = [&](bool role, int id,
                        const EdbRelation& rel) -> Status {
    if (rel.rows().size() == 0) return Status::Ok();
    ColumnInfo col;
    col.role = role;
    col.stored_id = static_cast<uint32_t>(id);
    col.arity = role ? 2 : 1;
    col.num_rows = rel.rows().size();
    const std::string file = EncodeColumnFile(rel.rows(), &col.crc);
    Status st = WriteFileDurable(dir + "/" + ColumnFileName(col), file, fsync);
    if (!st.ok()) return st;
    meta.columns.push_back(col);
    return Status::Ok();
  };
  for (const auto& [id, rel] : snapshot.concepts()) {
    status = emit(false, id, *rel);
    if (!status.ok()) return status;
  }
  for (const auto& [id, rel] : snapshot.roles()) {
    status = emit(true, id, *rel);
    if (!status.ok()) return status;
  }
  if (snapshot.column_source() != nullptr) {
    const ColumnSource& source = *snapshot.column_source();
    for (int id : snapshot.cold_concepts()) {
      status = emit(false, id, *source.LoadColumn(false, id));
      if (!status.ok()) return status;
    }
    for (int id : snapshot.cold_roles()) {
      status = emit(true, id, *source.LoadColumn(true, id));
      if (!status.ok()) return status;
    }
  }

  std::string meta_file;
  AppendFileHeader(&meta_file, FileType::kSegmentMeta);
  EncodeMeta(meta, &meta_file);
  status = WriteFileDurable(dir + "/META", meta_file, fsync);
  if (!status.ok()) return status;

  span.Attr("columns", static_cast<long>(meta.columns.size()));
  span.Attr("version", static_cast<long>(meta.snapshot_version));
  OWLQR_COUNT("store/segments_written", 1);
  return Status::Ok();
}

Status SegmentReader::Open(const std::string& dir,
                           std::shared_ptr<SegmentReader>* out) {
  OWLQR_NAMED_SPAN(span, "store/open-segment");
  std::shared_ptr<SegmentReader> reader(new SegmentReader());
  reader->dir_ = dir;

  std::string meta_bytes;
  Status status = ReadWholeFile(dir + "/META", &meta_bytes);
  if (!status.ok()) return status;
  const uint8_t* meta_data =
      reinterpret_cast<const uint8_t*>(meta_bytes.data());
  status = CheckFileHeader(meta_data, meta_bytes.size(),
                           FileType::kSegmentMeta, "segment META");
  if (!status.ok()) return status;
  status = DecodeMeta(meta_data + kFileHeaderBytes,
                      meta_bytes.size() - kFileHeaderBytes, &reader->meta_);
  if (!status.ok()) return status;

  // Map and CRC-check every column file now.  Recovery eats the cost once;
  // in exchange a cold-column fault during query evaluation can never fail.
  const auto check_column = [&](const std::string& path, MappedFile* map,
                                uint64_t num_rows, uint32_t arity,
                                uint32_t crc, const std::string& what) {
    Status st = map->Open(path);
    if (!st.ok()) return st;
    st = CheckFileHeader(map->data(), map->size(), FileType::kColumn, what);
    if (!st.ok()) return st;
    const size_t want = num_rows * static_cast<size_t>(arity) *
                        sizeof(int32_t);
    if (map->size() - kFileHeaderBytes != want) {
      return Status::DataLoss(what + ": " +
                              std::to_string(map->size() - kFileHeaderBytes) +
                              " cell bytes, META promised " +
                              std::to_string(want));
    }
    if (Crc32(map->data() + kFileHeaderBytes, want) != crc) {
      return Status::DataLoss(what + ": cell checksum mismatch");
    }
    // Cells are stored individual ids: bound them here, so a hostile file
    // with a self-consistent checksum still can't index the remap tables
    // out of bounds later.
    const int32_t* cells =
        reinterpret_cast<const int32_t*>(map->data() + kFileHeaderBytes);
    const int32_t limit =
        static_cast<int32_t>(reader->meta_.individual_names.size());
    for (size_t c = 0; c < want / sizeof(int32_t); ++c) {
      if (cells[c] < 0 || cells[c] >= limit) {
        return Status::DataLoss(what + ": cell " + std::to_string(c) +
                                " holds individual id " +
                                std::to_string(cells[c]) + ", table has " +
                                std::to_string(limit));
      }
    }
    return Status::Ok();
  };

  status = check_column(dir + "/adom", &reader->adom_map_, reader->meta_.num_adom,
                        1, reader->meta_.adom_crc, "segment adom");
  if (!status.ok()) return status;

  reader->column_maps_.resize(reader->meta_.columns.size());
  for (size_t i = 0; i < reader->meta_.columns.size(); ++i) {
    const ColumnInfo& col = reader->meta_.columns[i];
    const std::string name = ColumnFileName(col);
    status = check_column(dir + "/" + name, &reader->column_maps_[i],
                          col.num_rows, col.arity, col.crc,
                          "segment column " + name);
    if (!status.ok()) return status;
  }

  span.Attr("columns", static_cast<long>(reader->meta_.columns.size()));
  *out = std::move(reader);
  return Status::Ok();
}

Status SegmentReader::Bind(Vocabulary* vocab) {
  OWLQR_CHECK_MSG(!bound_, "SegmentReader::Bind called twice");
  bound_ = true;

  // Intern (not Find): a stored symbol the current ontology no longer
  // mentions is still data and must round-trip — interning is idempotent
  // for symbols that already exist.
  std::vector<int> concept_live(meta_.concept_names.size());
  for (size_t i = 0; i < meta_.concept_names.size(); ++i) {
    concept_live[i] = vocab->InternConcept(meta_.concept_names[i]);
  }
  std::vector<int> predicate_live(meta_.predicate_names.size());
  for (size_t i = 0; i < meta_.predicate_names.size(); ++i) {
    predicate_live[i] = vocab->InternPredicate(meta_.predicate_names[i]);
  }
  individual_live_.resize(meta_.individual_names.size());
  identity_individuals_ = true;
  for (size_t i = 0; i < meta_.individual_names.size(); ++i) {
    individual_live_[i] = vocab->InternIndividual(meta_.individual_names[i]);
    if (individual_live_[i] != static_cast<int>(i)) {
      identity_individuals_ = false;
    }
  }

  live_.reserve(meta_.columns.size());
  for (size_t i = 0; i < meta_.columns.size(); ++i) {
    const ColumnInfo& col = meta_.columns[i];
    LiveColumn live;
    live.role = col.role;
    live.live_id = col.role ? predicate_live[col.stored_id]
                            : concept_live[col.stored_id];
    live.arity = col.arity;
    live.num_rows = col.num_rows;
    live.bytes = static_cast<size_t>(col.num_rows) * col.arity *
                 sizeof(int32_t);
    live.index = i;
    auto& by_live = col.role ? role_by_live_ : concept_by_live_;
    if (!by_live.emplace(live.live_id, i).second) {
      return Status::DataLoss("segment META: two columns bind to live " +
                              std::string(col.role ? "role " : "concept ") +
                              std::to_string(live.live_id));
    }
    live_.push_back(live);
  }
  return Status::Ok();
}

std::vector<int> SegmentReader::LiveActiveDomain() const {
  OWLQR_CHECK_MSG(bound_, "SegmentReader used before Bind");
  const int32_t* cells =
      reinterpret_cast<const int32_t*>(adom_map_.data() + kFileHeaderBytes);
  std::vector<int> out(cells, cells + meta_.num_adom);
  if (!identity_individuals_) {
    for (int& id : out) id = individual_live_[id];
    std::sort(out.begin(), out.end());
  }
  return out;
}

std::shared_ptr<const EdbRelation> SegmentReader::LoadColumn(bool role,
                                                             int id) const {
  OWLQR_CHECK_MSG(bound_, "SegmentReader used before Bind");
  const auto& by_live = role ? role_by_live_ : concept_by_live_;
  auto it = by_live.find(id);
  OWLQR_CHECK_MSG(it != by_live.end(),
                  "LoadColumn for an id the segment never advertised");
  const ColumnInfo& col = meta_.columns[it->second];
  const MappedFile& map = column_maps_[it->second];
  const int32_t* cells =
      reinterpret_cast<const int32_t*>(map.data() + kFileHeaderBytes);

  auto rel = std::make_shared<EdbRelation>(static_cast<int>(col.arity));
  if (identity_individuals_) {
    // Fast path: stored ids == live ids, adopt the mmap'd arena verbatim.
    rel->mutable_rows()->AdoptColumn(static_cast<int>(col.arity), cells,
                                     col.num_rows);
  } else {
    const size_t n_cells = col.num_rows * static_cast<size_t>(col.arity);
    std::vector<int> remapped(n_cells);
    for (size_t i = 0; i < n_cells; ++i) {
      remapped[i] = individual_live_[cells[i]];
    }
    // Remapping is injective (both sides are interned name tables), so the
    // rows stay distinct and AdoptColumn's no-duplicate contract holds.
    rel->mutable_rows()->AdoptColumn(static_cast<int>(col.arity),
                                     remapped.data(), col.num_rows);
  }
  return rel;
}

}  // namespace store
}  // namespace owlqr
