#ifndef OWLQR_STORE_SEGMENT_H_
#define OWLQR_STORE_SEGMENT_H_

// Columnar snapshot segments (DESIGN.md §14.3): a checkpoint of one whole
// DataSnapshot as a flat directory of mmap-able column files.
//
//   seg-<version>/META   name tables (stored id -> name), the TBox
//                        fingerprint, the per-column directory with CRCs,
//                        and its own trailing CRC
//   seg-<version>/adom   the sorted active domain (i32 cells)
//   seg-<version>/c<ID>  concept <stored ID>'s extension, the verbatim
//                        Rows cells arena (i32, row-major)
//   seg-<version>/r<ID>  role (predicate) <stored ID>'s extension, ditto
//
// Cells are little-endian i32 exactly as the in-memory arena lays them
// out, so loading a column is one Rows::AdoptColumn (memcpy + presized
// dedup build), not a row-by-row rebuild.  Cell values are STORED
// individual ids — indexes into META's individual name table — because a
// restarted process may intern ids differently; SegmentReader::Bind
// re-interns every stored name against the live vocabulary and detects the
// (overwhelmingly common) identity mapping, under which AdoptColumn adopts
// the mmap'd cells verbatim.  A non-identity binding remaps cell-by-cell —
// slower, still exact.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/snapshot.h"
#include "ontology/vocabulary.h"
#include "store/fs.h"
#include "util/status.h"

namespace owlqr {
namespace store {

struct ColumnInfo {
  bool role = false;       // false = concept column, true = role column.
  uint32_t stored_id = 0;  // Index into the matching META name table.
  uint32_t arity = 0;
  uint64_t num_rows = 0;
  uint32_t crc = 0;  // CRC32 of the column file's cell payload.
};

struct SegmentMeta {
  uint64_t snapshot_version = 0;
  uint64_t tbox_fingerprint = 0;
  std::vector<std::string> concept_names;     // Stored concept id -> name.
  std::vector<std::string> predicate_names;   // Stored predicate id -> name.
  std::vector<std::string> individual_names;  // Stored individual id -> name.
  uint64_t num_adom = 0;
  uint32_t adom_crc = 0;
  std::vector<ColumnInfo> columns;
};

// Encodes / decodes the META payload (the bytes between the file header
// and nothing — the trailing CRC is part of the encoding).  DecodeMeta is
// total over hostile bytes.
void EncodeMeta(const SegmentMeta& meta, std::string* out);
Status DecodeMeta(const uint8_t* data, size_t size, SegmentMeta* out);

// Writes a complete segment for `snapshot` into `dir` (created if needed):
// every column file first, META last, each through the durable
// tmp+fsync+rename path.  Cold columns are streamed from the snapshot's
// ColumnSource without being published into the snapshot.  The caller owns
// making the segment visible (the CURRENT pointer) afterwards.
Status WriteSegment(const std::string& dir, const DataSnapshot& snapshot,
                    const Vocabulary& vocab, uint64_t tbox_fingerprint,
                    bool fsync);

// A validated, mmap'd segment.  Open() maps and CRC-checks every file up
// front — corruption surfaces at recovery as a field-naming Status, and a
// later cold-column fault can no longer fail (which is what lets
// DataSnapshot::Concept stay Status-free).  Bind() then resolves stored
// names against the live vocabulary; after Bind the reader serves as the
// snapshot's ColumnSource.
class SegmentReader : public ColumnSource {
 public:
  static Status Open(const std::string& dir,
                     std::shared_ptr<SegmentReader>* out);

  const SegmentMeta& meta() const { return meta_; }

  // Interns every stored name into `vocab` and builds the stored->live id
  // remaps.  Must be called exactly once, before any column load.
  Status Bind(Vocabulary* vocab);

  // The active domain in live ids, sorted.
  std::vector<int> LiveActiveDomain() const;

  // One column as the recovery planner sees it, in live-id terms.
  struct LiveColumn {
    bool role = false;
    int live_id = 0;
    uint32_t arity = 0;
    uint64_t num_rows = 0;
    size_t bytes = 0;  // Cell payload bytes (the resident cost ballpark).
    size_t index = 0;  // Into meta().columns.
  };
  const std::vector<LiveColumn>& live_columns() const { return live_; }

  // ColumnSource: loads column `id` (a live id Bind advertised).  Never
  // fails — Open validated every byte this reads.
  std::shared_ptr<const EdbRelation> LoadColumn(bool role,
                                                int id) const override;

 private:
  SegmentReader() = default;

  std::string dir_;
  SegmentMeta meta_;
  MappedFile adom_map_;
  std::vector<MappedFile> column_maps_;  // Parallel to meta_.columns.

  bool bound_ = false;
  bool identity_individuals_ = false;
  std::vector<int> individual_live_;  // Stored individual id -> live id.
  std::unordered_map<int, size_t> concept_by_live_;
  std::unordered_map<int, size_t> role_by_live_;
  std::vector<LiveColumn> live_;
};

}  // namespace store
}  // namespace owlqr

#endif  // OWLQR_STORE_SEGMENT_H_
