#ifndef OWLQR_STORE_LOG_H_
#define OWLQR_STORE_LOG_H_

// The append-only, checksummed fact log (DESIGN.md §14.2): one record per
// non-no-op ApplyFacts batch, written and fsynced BEFORE the new snapshot
// version is installed, so every acknowledged version is recoverable.
//
// Records carry fact NAMES, not vocabulary ids: ids are assigned in intern
// order and a restarted process may intern in a different order (a changed
// data file, a different request interleaving), so an id-addressed log
// would silently rebind facts.  Recovery resolves names against the live
// vocabulary instead.
//
// Record layout (after the common file header):
//
//   u32 payload_len   u32 crc32(payload)   payload
//
//   payload: u64 version, u32 n_concepts, u32 n_roles,
//            n_concepts x (str concept, str individual),
//            n_roles    x (str role, str subject, str object)
//   (str = u16 length + bytes)
//
// Recovery scans from the front and keeps the longest valid prefix: the
// first record whose length lies past the file end, whose CRC mismatches,
// or whose payload under-runs its declared length ends the scan, and the
// file is truncated back to the prefix — the torn tail of a mid-append
// crash is dropped, never re-served.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace owlqr {
namespace store {

// A FactBatch by names (see the header comment for why names).
struct NamedFactBatch {
  struct ConceptFact {
    std::string concept_name;
    std::string individual;
  };
  struct RoleFact {
    std::string role;
    std::string subject;
    std::string object;
  };
  std::vector<ConceptFact> concepts;
  std::vector<RoleFact> roles;
};

struct LogRecord {
  uint64_t version = 0;
  NamedFactBatch batch;
};

// A single record's payload must at least hold version + the two counts; a
// record claiming more than kMaxLogPayloadBytes (or more than the file
// holds) is treated as the torn tail, so a lying 4 GiB length prefix can
// neither allocate nor scan past the mapping.
inline constexpr size_t kMinLogPayloadBytes = 16;
inline constexpr size_t kMaxLogPayloadBytes = 1ull << 30;

// Scans a whole log-file image: validates the file header, decodes the
// longest valid record prefix into `records`, and reports where that
// prefix ends (`valid_end`, a byte offset; kFileHeaderBytes for an empty
// log) plus how many trailing bytes were dropped.  Only a bad file header
// is a non-OK status — a torn or corrupt tail is NORMAL after a crash and
// is reported through `dropped_bytes`.
Status ScanLog(const uint8_t* data, size_t size,
               std::vector<LogRecord>* records, size_t* valid_end,
               size_t* dropped_bytes);

// Encodes one record (length prefix + CRC + payload) for appending.
void EncodeLogRecord(const LogRecord& record, std::string* out);

class FactLog {
 public:
  // Opens (creating if absent) the log at `path`.  An existing file is
  // scanned; `recovered` receives its valid record prefix and the file is
  // truncated back to that prefix.  `fsync` fixes the durability policy of
  // every later Append.
  static Status Open(const std::string& path, bool fsync,
                     std::unique_ptr<FactLog>* out,
                     std::vector<LogRecord>* recovered,
                     uint64_t* dropped_bytes);

  FactLog(const FactLog&) = delete;
  FactLog& operator=(const FactLog&) = delete;
  ~FactLog();

  // Appends one record (and fsyncs, under the kAlways policy).  On any
  // write error the log tries to truncate back to the last durable record
  // so a later append cannot land after a torn one.
  Status Append(const LogRecord& record);

  // Truncates to an empty (header-only) log.  Compaction calls this after
  // the new segment and CURRENT pointer are durable.
  Status Reset();

  uint64_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }
  const std::string& path() const { return path_; }

 private:
  FactLog(std::string path, int fd, bool fsync, uint64_t bytes,
          uint64_t records)
      : path_(std::move(path)),
        fd_(fd),
        fsync_(fsync),
        bytes_(bytes),
        records_(records) {}

  const std::string path_;
  int fd_ = -1;
  const bool fsync_;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
};

}  // namespace store
}  // namespace owlqr

#endif  // OWLQR_STORE_LOG_H_
