#include "store/store.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "store/format.h"
#include "store/fs.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {
namespace store {

namespace {

std::string SegmentDirName(uint64_t version) {
  return "seg-" + std::to_string(version);
}

}  // namespace

Status DurableStore::Open(const StoreOptions& options,
                          std::shared_ptr<DurableStore>* out) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("store directory must not be empty");
  }
  Status status = MakeDir(options.dir);
  if (!status.ok()) return status;
  out->reset(new DurableStore(options));
  return Status::Ok();
}

Status DurableStore::ReadCurrent(std::string* segment_name) const {
  segment_name->clear();
  const std::string path = options_.dir + "/CURRENT";
  if (!PathExists(path)) return Status::Ok();
  std::string bytes;
  Status status = ReadWholeFile(path, &bytes);
  if (!status.ok()) return status;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  status = CheckFileHeader(data, bytes.size(), FileType::kCurrent, "CURRENT");
  if (!status.ok()) return status;
  ByteReader r(data + kFileHeaderBytes, bytes.size() - kFileHeaderBytes);
  std::string name;
  uint32_t crc = 0;
  if (!r.ReadString(&name) || !r.ReadU32(&crc) || r.remaining() != 0) {
    return Status::DataLoss("CURRENT: truncated or oversized payload");
  }
  if (Crc32(name.data(), name.size()) != crc) {
    return Status::DataLoss("CURRENT: segment-name checksum mismatch");
  }
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::DataLoss("CURRENT: invalid segment name '" + name + "'");
  }
  *segment_name = std::move(name);
  return Status::Ok();
}

Status DurableStore::WriteCurrent(const std::string& segment_name) {
  std::string bytes;
  AppendFileHeader(&bytes, FileType::kCurrent);
  PutString(&bytes, segment_name);
  PutU32(&bytes, Crc32(segment_name.data(), segment_name.size()));
  // CURRENT is the commit point of a checkpoint, so it is synced even under
  // fsync=never — losing unsynced log suffix is the policy the flag buys,
  // losing the pointer to an already-written segment is not.
  return WriteFileDurable(options_.dir + "/CURRENT", bytes, /*fsync=*/true);
}

Status DurableStore::Recover(Vocabulary* vocab, uint64_t tbox_fingerprint,
                             size_t max_resident_bytes, RecoveredState* out) {
  OWLQR_NAMED_SPAN(span, "store/recover");
  const auto t0 = std::chrono::steady_clock::now();
  *out = RecoveredState();
  tbox_fingerprint_ = tbox_fingerprint;

  std::string segment_name;
  Status status = ReadCurrent(&segment_name);
  if (!status.ok()) return status;
  const std::string log_path = options_.dir + "/LOG";

  if (segment_name.empty()) {
    if (PathExists(log_path)) {
      // Facts were acknowledged against a baseline segment that no longer
      // exists; replaying them against nothing would silently drop the
      // baseline's facts.
      return Status::DataLoss(
          "store has a LOG but no CURRENT segment pointer");
    }
    // Fresh store.  The LOG is NOT created here: the engine must first
    // checkpoint its seed snapshot (Checkpoint creates the log), so a crash
    // before that seed leaves the directory fresh instead of in the
    // LOG-without-CURRENT data-loss state.
    out->fresh = true;
    return Status::Ok();
  }

  std::shared_ptr<SegmentReader> segment;
  status = SegmentReader::Open(options_.dir + "/" + segment_name, &segment);
  if (!status.ok()) return status;
  if (segment->meta().tbox_fingerprint != tbox_fingerprint) {
    return Status::DataLoss(
        "store segment was checkpointed under a different ontology "
        "(TBox fingerprint mismatch)");
  }
  status = segment->Bind(vocab);
  if (!status.ok()) return status;

  // Residency plan: smallest columns first until the budget is spent, so a
  // tight budget keeps the many small predicate extensions hot and leaves
  // the few giant ones to fault in on demand.
  std::vector<size_t> order(segment->live_columns().size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return segment->live_columns()[a].bytes < segment->live_columns()[b].bytes;
  });
  std::unordered_map<int, std::shared_ptr<const EdbRelation>> concepts;
  std::unordered_map<int, std::shared_ptr<const EdbRelation>> roles;
  std::vector<int> cold_concepts;
  std::vector<int> cold_roles;
  long num_atoms = 0;
  size_t resident_bytes = 0;
  for (size_t idx : order) {
    const SegmentReader::LiveColumn& col = segment->live_columns()[idx];
    num_atoms += static_cast<long>(col.num_rows);
    const bool fits = max_resident_bytes == 0 ||
                      resident_bytes + col.bytes <= max_resident_bytes;
    if (fits) {
      resident_bytes += col.bytes;
      auto& target = col.role ? roles : concepts;
      target.emplace(col.live_id, segment->LoadColumn(col.role, col.live_id));
    } else {
      (col.role ? cold_roles : cold_concepts).push_back(col.live_id);
    }
  }
  std::sort(cold_concepts.begin(), cold_concepts.end());
  std::sort(cold_roles.begin(), cold_roles.end());

  out->base = DataSnapshot::FromColumns(
      segment->meta().snapshot_version, num_atoms, segment->LiveActiveDomain(),
      std::move(concepts), std::move(roles), std::move(cold_concepts),
      std::move(cold_roles), segment);

  // Open (creating if missing — a crash can land between the CURRENT
  // install and the log creation) and scan the log, keeping only the tail
  // past the segment: a prefix at or below the segment version is the
  // normal residue of a crash between the CURRENT install and the log
  // reset.
  std::vector<LogRecord> recovered;
  uint64_t dropped = 0;
  std::unique_ptr<FactLog> log;
  status = FactLog::Open(log_path, options_.fsync, &log, &recovered, &dropped);
  if (!status.ok()) return status;
  const uint64_t base_version = segment->meta().snapshot_version;
  for (LogRecord& record : recovered) {
    if (record.version <= base_version) continue;
    out->tail.push_back(std::move(record));
  }

  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    log_ = std::move(log);
    current_segment_ = segment_name;
    counters_.log_bytes = log_->bytes();
    counters_.log_records = log_->records();
    counters_.log_dropped_bytes = dropped;
    counters_.recovered_records = out->tail.size();
    counters_.recovery_ms = ms;
  }
  span.Attr("tail_records", static_cast<long>(out->tail.size()));
  span.Attr("resident_bytes", static_cast<long>(resident_bytes));
  OWLQR_RECORD("store/recovery_ms", ms);
  return Status::Ok();
}

Status DurableStore::AppendBatch(uint64_t version,
                                 const NamedFactBatch& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (log_ == nullptr) {
    return Status::DataLoss(
        "store log is not open (seed checkpoint has not completed)");
  }
  LogRecord record;
  record.version = version;
  record.batch = batch;
  Status status = log_->Append(record);
  if (!status.ok()) return status;
  counters_.log_bytes = log_->bytes();
  counters_.log_records = log_->records();
  ++counters_.appended_batches;
  return Status::Ok();
}

Status DurableStore::Checkpoint(const DataSnapshot& snapshot,
                                const Vocabulary& vocab) {
  OWLQR_NAMED_SPAN(span, "store/checkpoint");
  const std::string name = SegmentDirName(snapshot.version());
  const std::string dir = options_.dir + "/" + name;
  std::string previous;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    previous = current_segment_;
  }
  const auto fail = [&](Status status) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.compactions_failed;
    return status;
  };

  if (name != previous && PathExists(dir)) {
    // A leftover from a checkpoint that crashed before its CURRENT install;
    // it was never visible, so rewrite it from scratch.
    Status status = RemoveDirRecursive(dir);
    if (!status.ok()) return fail(std::move(status));
  }
  // Segment files are synced even under fsync=never: CURRENT is always
  // durable, so a crash must not leave it pointing at a segment whose data
  // never reached disk — recovery would fail with DataLoss on every open,
  // which is strictly worse than the flag's lost-log-suffix contract.
  // Checkpoints are rare, so the cost is bounded.
  Status status = WriteSegment(dir, snapshot, vocab, tbox_fingerprint_,
                               /*fsync=*/true);
  if (!status.ok()) return fail(std::move(status));
  status = WriteCurrent(name);
  if (!status.ok()) return fail(std::move(status));

  std::lock_guard<std::mutex> lock(mutex_);
  current_segment_ = name;
  if (log_ == nullptr) {
    // First checkpoint of a fresh store: the log starts empty now that a
    // baseline exists for its records to be relative to.
    std::vector<LogRecord> recovered;
    uint64_t dropped = 0;
    status = FactLog::Open(options_.dir + "/LOG", options_.fsync, &log_,
                           &recovered, &dropped);
    if (!status.ok()) {
      ++counters_.compactions_failed;
      return status;
    }
  } else {
    status = log_->Reset();
    if (!status.ok()) {
      // The new segment is installed, so every log record is now <= its
      // version and recovery skips them — a failed reset wastes bytes but
      // loses nothing.
      ++counters_.compactions_failed;
      return status;
    }
  }
  counters_.log_bytes = log_->bytes();
  counters_.log_records = log_->records();
  ++counters_.segments_written;

  if (!previous.empty() && previous != name) {
    // Best-effort: the old segment is garbage now (live snapshots keep
    // their columns through the surviving mmap, not the directory entry).
    RemoveDirRecursive(options_.dir + "/" + previous).ok();
  }
  span.Attr("version", static_cast<long>(snapshot.version()));
  return Status::Ok();
}

bool DurableStore::ShouldCompact() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.compact_log_bytes > 0 && log_ != nullptr &&
         log_->bytes() >= options_.compact_log_bytes;
}

StoreCounters DurableStore::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace store
}  // namespace owlqr
