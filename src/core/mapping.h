#ifndef OWLQR_CORE_MAPPING_H_
#define OWLQR_CORE_MAPPING_H_

#include <vector>

#include "data/data_instance.h"
#include "data/table_store.h"
#include "ndl/program.h"

namespace owlqr {

// The OBDA mapping layer of the paper's introduction: a GAV mapping M
// connects the ontology vocabulary to an arbitrary relational schema, and a
// rewriting q' over the ontology vocabulary "can be further unfolded using M
// to obtain an FO-query that can be evaluated directly over the original
// dataset D (so there is no need to materialise M(D))".

// One atom over a source table; arguments are rule-local variables or
// individual constants (constants act as filters, e.g. a role column).
struct MappingAtom {
  int table = -1;
  std::vector<Term> args;
};

// A GAV rule: Concept(x) <- body  or  Role(x, y) <- body, where x (and y)
// are rule-local variables that must occur in the body.
struct MappingRule {
  bool is_concept = true;
  int symbol = -1;             // Concept id or binary predicate id.
  std::vector<int> head_vars;  // Size 1 (concept) or 2 (role).
  std::vector<MappingAtom> body;
};

class GavMapping {
 public:
  GavMapping(Vocabulary* vocabulary, TableStore* tables)
      : vocabulary_(vocabulary), tables_(tables) {}

  Vocabulary* vocabulary() const { return vocabulary_; }
  TableStore* tables() const { return tables_; }

  void AddConceptRule(int concept_id, int head_var,
                      std::vector<MappingAtom> body);
  void AddRoleRule(int predicate_id, int head_var0, int head_var1,
                   std::vector<MappingAtom> body);

  const std::vector<MappingRule>& rules() const { return rules_; }

 private:
  void Validate(const MappingRule& rule) const;

  Vocabulary* vocabulary_;  // Not owned.
  TableStore* tables_;      // Not owned.
  std::vector<MappingRule> rules_;
};

// The virtual ABox M(D): applies every rule to the tables and collects the
// produced unary/binary atoms.  For testing and for materialisation-based
// pipelines; the point of UnfoldThroughMapping is to avoid this.
DataInstance MaterializeMapping(const GavMapping& mapping,
                                const TableStore& tables);

// Unfolds a rewriting over the ontology vocabulary into a program over the
// source tables: every concept/role EDB atom becomes an IDB predicate
// defined by the matching mapping rules (predicates without rules become
// empty), and active-domain atoms are redirected to the individuals of the
// virtual ABox.  Evaluate the result with
// Evaluator(program, empty_instance, tables).
NdlProgram UnfoldThroughMapping(const NdlProgram& program,
                                const GavMapping& mapping);

}  // namespace owlqr

#endif  // OWLQR_CORE_MAPPING_H_
