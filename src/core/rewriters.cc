#include "core/rewriters.h"

#include <map>
#include <utility>

#include "core/lin_rewriter.h"
#include "core/log_rewriter.h"
#include "core/tw_rewriter.h"
#include "cq/gaifman.h"
#include "ndl/transforms.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

const char* RewriterName(RewriterKind kind) {
  switch (kind) {
    case RewriterKind::kLog:
      return "Log";
    case RewriterKind::kLin:
      return "Lin";
    case RewriterKind::kTw:
      return "Tw";
    case RewriterKind::kTwStar:
      return "Tw*";
    case RewriterKind::kUcq:
      return "UCQ";
    case RewriterKind::kPrestoLike:
      return "PrestoLike";
  }
  return "?";
}

const char* RewriterWireName(RewriterKind kind) {
  switch (kind) {
    case RewriterKind::kLog:
      return "log";
    case RewriterKind::kLin:
      return "lin";
    case RewriterKind::kTw:
      return "tw";
    case RewriterKind::kTwStar:
      return "twstar";
    case RewriterKind::kUcq:
      return "ucq";
    case RewriterKind::kPrestoLike:
      return "presto";
  }
  return "?";
}

bool RewriterKindFromName(const std::string& name, bool* auto_kind,
                          RewriterKind* kind) {
  *auto_kind = false;
  if (name == "auto") {
    *auto_kind = true;
  } else if (name == "lin") {
    *kind = RewriterKind::kLin;
  } else if (name == "log") {
    *kind = RewriterKind::kLog;
  } else if (name == "tw") {
    *kind = RewriterKind::kTw;
  } else if (name == "twstar") {
    *kind = RewriterKind::kTwStar;
  } else if (name == "ucq") {
    *kind = RewriterKind::kUcq;
  } else if (name == "presto") {
    *kind = RewriterKind::kPrestoLike;
  } else {
    return false;
  }
  return true;
}

int MergeProgram(NdlProgram* dst, const NdlProgram& src,
                 const std::string& prefix) {
  std::vector<int> pred_map(src.num_predicates());
  for (int p = 0; p < src.num_predicates(); ++p) {
    const PredicateInfo& info = src.predicate(p);
    switch (info.kind) {
      case PredicateKind::kIdb: {
        int q = dst->AddIdbPredicate(prefix + info.name, info.arity);
        dst->mutable_predicate(q).parameter_positions =
            info.parameter_positions;
        pred_map[p] = q;
        break;
      }
      case PredicateKind::kConceptEdb:
        pred_map[p] = dst->AddConceptPredicate(info.external_id);
        break;
      case PredicateKind::kRoleEdb:
        pred_map[p] = dst->AddRolePredicate(info.external_id);
        break;
      case PredicateKind::kTableEdb:
        pred_map[p] = dst->AddTablePredicate(info.name, info.arity,
                                             info.external_id);
        break;
      case PredicateKind::kEquality:
        pred_map[p] = dst->EqualityPredicate();
        break;
      case PredicateKind::kAdom:
        pred_map[p] = dst->AdomPredicate();
        break;
    }
  }
  for (const NdlClause& clause : src.clauses()) {
    NdlClause c;
    c.head = {pred_map[clause.head.predicate], clause.head.args};
    for (const NdlAtom& atom : clause.body) {
      c.body.push_back({pred_map[atom.predicate], atom.args});
    }
    dst->AddClause(std::move(c));
  }
  return src.goal() >= 0 ? pred_map[src.goal()] : -1;
}

namespace {

NdlProgram RewriteConnected(RewritingContext* ctx,
                            const ConjunctiveQuery& query, RewriterKind kind,
                            const RewriteOptions& options,
                            RewriteDiagnostics* diag) {
  switch (kind) {
    case RewriterKind::kLog:
      return LogRewrite(ctx, query);
    case RewriterKind::kLin:
      return LinRewrite(ctx, query);
    case RewriterKind::kTw:
      return TwRewrite(ctx, query);
    case RewriterKind::kTwStar: {
      NdlProgram program = TwRewrite(ctx, query);
      InlineSingleUsePredicates(&program);
      return program;
    }
    case RewriterKind::kUcq: {
      bool truncated = false;
      NdlProgram program =
          UcqRewrite(ctx, query, options.baseline, &truncated);
      diag->truncated |= truncated;
      return program;
    }
    case RewriterKind::kPrestoLike: {
      bool truncated = false;
      NdlProgram program =
          PrestoLikeRewrite(ctx, query, options.baseline, &truncated);
      diag->truncated |= truncated;
      return program;
    }
  }
  OWLQR_CHECK(false);
  return NdlProgram(query.vocabulary());
}

// The rewrite pipeline itself; shape validation happens before this (so the
// sub-rewriters' internal checks never fire through the facade entry point,
// while the legacy shim reaches them exactly as before).
NdlProgram RewriteOmqImpl(RewritingContext* ctx,
                          const ConjunctiveQuery& query, RewriterKind kind,
                          const RewriteOptions& options,
                          RewriteDiagnostics* diag) {
  OWLQR_NAMED_SPAN(span, "rewrite");
  span.Attr("kind", static_cast<long>(kind));
  GaifmanGraph graph(query);
  NdlProgram complete_program(query.vocabulary());
  if (graph.IsConnected() && query.num_vars() > 0) {
    diag->components = 1;
    complete_program = RewriteConnected(ctx, query, kind, options, diag);
  } else {
    // Rewrite each connected component separately and conjoin the goals.
    std::vector<std::vector<int>> components = graph.Components();
    diag->components = static_cast<int>(components.size());
    NdlProgram merged(query.vocabulary());
    NdlClause top;
    std::vector<Term> goal_args;
    for (int x : query.answer_vars()) goal_args.push_back(Term::Var(x));
    int goal = merged.AddIdbPredicate(
        "G", static_cast<int>(goal_args.size()));
    merged.mutable_predicate(goal).parameter_positions.assign(
        goal_args.size(), true);
    top.head = {goal, goal_args};
    for (size_t c = 0; c < components.size(); ++c) {
      // Build the component sub-CQ with its own variable numbering.
      ConjunctiveQuery sub(query.vocabulary());
      std::map<int, int> var_map;  // Original var -> sub var.
      std::vector<int> original_answer_order;
      for (int v : components[c]) {
        var_map[v] = sub.AddVariable(query.VarName(v));
      }
      for (int x : query.answer_vars()) {
        if (var_map.count(x) > 0) {
          sub.MarkAnswerVariable(var_map[x]);
          original_answer_order.push_back(x);
        }
      }
      for (const CqAtom& atom : query.atoms()) {
        if (var_map.count(atom.arg0) == 0) continue;
        if (atom.kind == CqAtom::Kind::kUnary) {
          sub.AddUnaryAtom(atom.symbol, var_map[atom.arg0]);
        } else {
          sub.AddBinaryAtom(atom.symbol, var_map[atom.arg0],
                            var_map[atom.arg1]);
        }
      }
      NdlProgram sub_program =
          RewriteConnected(ctx, sub, kind, options, diag);
      int sub_goal = MergeProgram(&merged, sub_program,
                                  "c" + std::to_string(c) + "_");
      NdlAtom atom;
      atom.predicate = sub_goal;
      for (int x : original_answer_order) atom.args.push_back(Term::Var(x));
      top.body.push_back(std::move(atom));
    }
    merged.AddClause(std::move(top));
    merged.SetGoal(goal);
    EnsureSafety(&merged);
    complete_program = std::move(merged);
  }

  if (!options.arbitrary_instances) return complete_program;
  diag->star_transformed = true;
  // The component-conjoining top clause is not linear, so Lemma 3 only
  // applies to connected Lin rewritings.
  if (kind == RewriterKind::kLin && complete_program.IsLinear()) {
    return LinearStarTransform(complete_program, ctx->tbox(),
                               ctx->saturation());
  }
  return StarTransform(complete_program, ctx->tbox(), ctx->saturation());
}

}  // namespace

Status ValidateOmqShape(const RewritingContext& ctx,
                        const ConjunctiveQuery& query, RewriterKind kind) {
  const bool needs_tree =
      kind == RewriterKind::kLin || kind == RewriterKind::kTw ||
      kind == RewriterKind::kTwStar;
  const bool needs_finite_depth =
      kind == RewriterKind::kLin || kind == RewriterKind::kLog;
  if (needs_finite_depth && ctx.depth() == WordGraph::kInfiniteDepth) {
    return Status::UnsupportedShape(
        std::string(RewriterName(kind)) +
        " rewriting requires a finite-depth ontology");
  }
  if (needs_tree) {
    // RewriteOmq rewrites each connected component separately, so the class
    // constraint is per component: every component must be a tree (edges
    // within a component = half the sum of its degrees).
    GaifmanGraph graph(query);
    for (const std::vector<int>& component : graph.Components()) {
      int degree_sum = 0;
      for (int v : component) degree_sum += graph.Degree(v);
      if (degree_sum / 2 != static_cast<int>(component.size()) - 1) {
        return Status::UnsupportedShape(
            std::string(RewriterName(kind)) +
            " rewriting requires a tree-shaped CQ (a connected component "
            "of the query has a cycle)");
      }
    }
  }
  return Status::Ok();
}

RewriteResult RewriteOmqOrError(RewritingContext* ctx,
                                const ConjunctiveQuery& query,
                                RewriterKind kind,
                                const RewriteOptions& options) {
  RewriteDiagnostics diag;
  Status status = ValidateOmqShape(*ctx, query, kind);
  if (!status.ok()) {
    return {std::move(status), NdlProgram(query.vocabulary()), diag};
  }
  NdlProgram program = RewriteOmqImpl(ctx, query, kind, options, &diag);
  return {Status::Ok(), std::move(program), diag};
}

}  // namespace owlqr
