#include "core/rewriters.h"

#include <map>

#include "core/lin_rewriter.h"
#include "core/log_rewriter.h"
#include "core/tw_rewriter.h"
#include "cq/gaifman.h"
#include "ndl/transforms.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

const char* RewriterName(RewriterKind kind) {
  switch (kind) {
    case RewriterKind::kLog:
      return "Log";
    case RewriterKind::kLin:
      return "Lin";
    case RewriterKind::kTw:
      return "Tw";
    case RewriterKind::kTwStar:
      return "Tw*";
    case RewriterKind::kUcq:
      return "UCQ";
    case RewriterKind::kPrestoLike:
      return "PrestoLike";
  }
  return "?";
}

int MergeProgram(NdlProgram* dst, const NdlProgram& src,
                 const std::string& prefix) {
  std::vector<int> pred_map(src.num_predicates());
  for (int p = 0; p < src.num_predicates(); ++p) {
    const PredicateInfo& info = src.predicate(p);
    switch (info.kind) {
      case PredicateKind::kIdb: {
        int q = dst->AddIdbPredicate(prefix + info.name, info.arity);
        dst->mutable_predicate(q).parameter_positions =
            info.parameter_positions;
        pred_map[p] = q;
        break;
      }
      case PredicateKind::kConceptEdb:
        pred_map[p] = dst->AddConceptPredicate(info.external_id);
        break;
      case PredicateKind::kRoleEdb:
        pred_map[p] = dst->AddRolePredicate(info.external_id);
        break;
      case PredicateKind::kTableEdb:
        pred_map[p] = dst->AddTablePredicate(info.name, info.arity,
                                             info.external_id);
        break;
      case PredicateKind::kEquality:
        pred_map[p] = dst->EqualityPredicate();
        break;
      case PredicateKind::kAdom:
        pred_map[p] = dst->AdomPredicate();
        break;
    }
  }
  for (const NdlClause& clause : src.clauses()) {
    NdlClause c;
    c.head = {pred_map[clause.head.predicate], clause.head.args};
    for (const NdlAtom& atom : clause.body) {
      c.body.push_back({pred_map[atom.predicate], atom.args});
    }
    dst->AddClause(std::move(c));
  }
  return src.goal() >= 0 ? pred_map[src.goal()] : -1;
}

namespace {

NdlProgram RewriteConnected(RewritingContext* ctx,
                            const ConjunctiveQuery& query, RewriterKind kind,
                            const RewriteOptions& options) {
  switch (kind) {
    case RewriterKind::kLog:
      return LogRewrite(ctx, query);
    case RewriterKind::kLin:
      return LinRewrite(ctx, query);
    case RewriterKind::kTw:
      return TwRewrite(ctx, query);
    case RewriterKind::kTwStar: {
      NdlProgram program = TwRewrite(ctx, query);
      InlineSingleUsePredicates(&program);
      return program;
    }
    case RewriterKind::kUcq:
      return UcqRewrite(ctx, query, options.baseline, options.truncated);
    case RewriterKind::kPrestoLike:
      return PrestoLikeRewrite(ctx, query, options.baseline,
                               options.truncated);
  }
  OWLQR_CHECK(false);
  return NdlProgram(query.vocabulary());
}

}  // namespace

NdlProgram RewriteOmq(RewritingContext* ctx, const ConjunctiveQuery& query,
                      RewriterKind kind, const RewriteOptions& options) {
  OWLQR_NAMED_SPAN(span, "rewrite");
  span.Attr("kind", static_cast<long>(kind));
  GaifmanGraph graph(query);
  NdlProgram complete_program(query.vocabulary());
  if (graph.IsConnected() && query.num_vars() > 0) {
    complete_program = RewriteConnected(ctx, query, kind, options);
  } else {
    // Rewrite each connected component separately and conjoin the goals.
    std::vector<std::vector<int>> components = graph.Components();
    NdlProgram merged(query.vocabulary());
    NdlClause top;
    std::vector<Term> goal_args;
    for (int x : query.answer_vars()) goal_args.push_back(Term::Var(x));
    int goal = merged.AddIdbPredicate(
        "G", static_cast<int>(goal_args.size()));
    merged.mutable_predicate(goal).parameter_positions.assign(
        goal_args.size(), true);
    top.head = {goal, goal_args};
    for (size_t c = 0; c < components.size(); ++c) {
      // Build the component sub-CQ with its own variable numbering.
      ConjunctiveQuery sub(query.vocabulary());
      std::map<int, int> var_map;  // Original var -> sub var.
      std::vector<int> original_answer_order;
      for (int v : components[c]) {
        var_map[v] = sub.AddVariable(query.VarName(v));
      }
      for (int x : query.answer_vars()) {
        if (var_map.count(x) > 0) {
          sub.MarkAnswerVariable(var_map[x]);
          original_answer_order.push_back(x);
        }
      }
      for (const CqAtom& atom : query.atoms()) {
        if (var_map.count(atom.arg0) == 0) continue;
        if (atom.kind == CqAtom::Kind::kUnary) {
          sub.AddUnaryAtom(atom.symbol, var_map[atom.arg0]);
        } else {
          sub.AddBinaryAtom(atom.symbol, var_map[atom.arg0],
                            var_map[atom.arg1]);
        }
      }
      NdlProgram sub_program = RewriteConnected(ctx, sub, kind, options);
      int sub_goal = MergeProgram(&merged, sub_program,
                                  "c" + std::to_string(c) + "_");
      NdlAtom atom;
      atom.predicate = sub_goal;
      for (int x : original_answer_order) atom.args.push_back(Term::Var(x));
      top.body.push_back(std::move(atom));
    }
    merged.AddClause(std::move(top));
    merged.SetGoal(goal);
    EnsureSafety(&merged);
    complete_program = std::move(merged);
  }

  if (!options.arbitrary_instances) return complete_program;
  // The component-conjoining top clause is not linear, so Lemma 3 only
  // applies to connected Lin rewritings.
  if (kind == RewriterKind::kLin && complete_program.IsLinear()) {
    return LinearStarTransform(complete_program, ctx->tbox(),
                               ctx->saturation());
  }
  return StarTransform(complete_program, ctx->tbox(), ctx->saturation());
}

}  // namespace owlqr
