#ifndef OWLQR_CORE_REWRITERS_H_
#define OWLQR_CORE_REWRITERS_H_

#include <string>

#include "core/rewriting_context.h"
#include "core/ucq_rewriter.h"
#include "cq/cq.h"
#include "ndl/program.h"
#include "util/status.h"

namespace owlqr {

// The rewriting algorithms compared in the paper's experiments (Section 6):
// the paper's Log (3.2), Lin (3.3), Tw (3.4), the inlined Tw* variant
// (Appendix D.4), and the two baseline stand-ins (UCQ ~ Rapid/Clipper,
// PrestoLike ~ Presto).
enum class RewriterKind { kLog, kLin, kTw, kTwStar, kUcq, kPrestoLike };

const char* RewriterName(RewriterKind kind);

struct RewriteOptions {
  // Produce a rewriting over arbitrary data instances (applies the *
  // transformation, or Lemma 3 for Lin) instead of complete ones.
  bool arbitrary_instances = false;
  BaselineOptions baseline;
};

// What a rewrite did, beyond the program it produced.  This replaces the
// former RewriteOptions::truncated bool* out-param: everything a caller
// used to fish out through pointers now arrives in one value.
struct RewriteDiagnostics {
  // A baseline rewriter (UCQ / PrestoLike) hit its clause cap and the
  // program covers only a subset of the rewriting.
  bool truncated = false;
  // Connected components the CQ was split into (1 for connected queries).
  int components = 1;
  // The * transformation (or Lemma 3 for Lin) was applied.
  bool star_transformed = false;
};

// A rewrite outcome: `program` is meaningful only when `status.ok()`.
struct RewriteResult {
  Status status;
  NdlProgram program;
  RewriteDiagnostics diag;

  bool ok() const { return status.ok(); }
};

// Checks the OMQ (ctx->tbox(), query) against `kind`'s applicability class
// without rewriting anything: Lin and Tw need every connected component of
// the CQ to be tree-shaped, Lin and Log need a finite-depth ontology.
// Returns OK when RewriteOmqOrError would not fail on shape grounds.
Status ValidateOmqShape(const RewritingContext& ctx,
                        const ConjunctiveQuery& query, RewriterKind kind);

// Parses the lower-case rewriter spelling shared by the CLI flags and the
// wire codecs: "lin", "log", "tw", "twstar", "ucq", "presto", or "auto".
// "auto" sets *auto_kind and leaves *kind untouched; the others clear
// *auto_kind and set *kind.  Returns false on an unknown name.
bool RewriterKindFromName(const std::string& name, bool* auto_kind,
                          RewriterKind* kind);

// The inverse spelling: the lower-case name RewriterKindFromName accepts
// for `kind` (RewriterName is the paper-styled display name, "Tw*" etc.).
const char* RewriterWireName(RewriterKind kind);

// Rewrites the OMQ (ctx->tbox(), query) with the chosen algorithm.
// Disconnected queries are handled by rewriting each connected component and
// conjoining the component goals.  Queries outside the algorithm's class are
// reported through the result's status — nothing aborts.
RewriteResult RewriteOmqOrError(RewritingContext* ctx,
                                const ConjunctiveQuery& query,
                                RewriterKind kind,
                                const RewriteOptions& options = {});

// Merges `src` into `dst`, prefixing IDB predicate names with `prefix`.
// Returns the predicate in `dst` corresponding to src's goal.
int MergeProgram(NdlProgram* dst, const NdlProgram& src,
                 const std::string& prefix);

}  // namespace owlqr

#endif  // OWLQR_CORE_REWRITERS_H_
