#ifndef OWLQR_CORE_REWRITERS_H_
#define OWLQR_CORE_REWRITERS_H_

#include <string>

#include "core/rewriting_context.h"
#include "core/ucq_rewriter.h"
#include "cq/cq.h"
#include "ndl/program.h"

namespace owlqr {

// The rewriting algorithms compared in the paper's experiments (Section 6):
// the paper's Log (3.2), Lin (3.3), Tw (3.4), the inlined Tw* variant
// (Appendix D.4), and the two baseline stand-ins (UCQ ~ Rapid/Clipper,
// PrestoLike ~ Presto).
enum class RewriterKind { kLog, kLin, kTw, kTwStar, kUcq, kPrestoLike };

const char* RewriterName(RewriterKind kind);

struct RewriteOptions {
  // Produce a rewriting over arbitrary data instances (applies the *
  // transformation, or Lemma 3 for Lin) instead of complete ones.
  bool arbitrary_instances = false;
  BaselineOptions baseline;
  bool* truncated = nullptr;  // Set for the baselines when capped.
};

// Rewrites the OMQ (ctx->tbox(), query) with the chosen algorithm.
// Disconnected queries are handled by rewriting each connected component and
// conjoining the component goals.  Aborts if the query shape or the ontology
// depth does not fit the algorithm's class (e.g. Lin/Tw need tree-shaped
// CQs; Log/Lin need finite depth).
NdlProgram RewriteOmq(RewritingContext* ctx, const ConjunctiveQuery& query,
                      RewriterKind kind, const RewriteOptions& options = {});

// Merges `src` into `dst`, prefixing IDB predicate names with `prefix`.
// Returns the predicate in `dst` corresponding to src's goal.
int MergeProgram(NdlProgram* dst, const NdlProgram& src,
                 const std::string& prefix);

}  // namespace owlqr

#endif  // OWLQR_CORE_REWRITERS_H_
