#ifndef OWLQR_CORE_TREE_WITNESS_H_
#define OWLQR_CORE_TREE_WITNESS_H_

#include <map>
#include <memory>
#include <vector>

#include "chase/canonical_model.h"
#include "core/rewriting_context.h"
#include "cq/cq.h"

namespace owlqr {

// A tree witness t = (tr, ti) for an OMQ (Section 3.4): ti is a nonempty set
// of existential variables that can be mapped to labelled nulls of the
// canonical model of {A_rho(a)}, tr the remaining variables of the covered
// atoms (mapped to the root a).  `generators` lists every rho witnessing it.
struct TreeWitness {
  std::vector<int> ti;          // Sorted.
  std::vector<int> tr;          // Sorted.
  std::vector<int> atoms;       // q_t: indices of covered atoms, sorted.
  std::vector<RoleId> generators;
};

// Enumerates tree witnesses of (T, q) restricted to the atom set
// `atom_indices` and the answer-variable set `answer_vars` (variables that
// must not enter ti).  If `required_var` >= 0, only witnesses with
// required_var in ti are produced.  Witnesses with tr = {} are skipped unless
// `include_detached` is set.
//
// Canonical models C_{T, {A_rho(a)}} are built once per rho and cached in
// this enumerator; reuse one instance across subqueries of the same OMQ.
class TreeWitnessEnumerator {
 public:
  TreeWitnessEnumerator(RewritingContext* ctx, const ConjunctiveQuery& query);

  std::vector<TreeWitness> Enumerate(const std::vector<int>& atom_indices,
                                     const std::vector<int>& answer_vars,
                                     int required_var,
                                     bool include_detached = false);

 private:
  const CanonicalModel& ModelFor(RoleId rho);
  void Search(const std::vector<int>& atom_indices,
              const std::vector<int>& answer_vars,
              const CanonicalModel& model, std::vector<int>* assignment,
              std::map<std::vector<int>, std::vector<RoleId>>* found,
              RoleId rho);

  RewritingContext* ctx_;
  const ConjunctiveQuery& query_;
  std::map<RoleId, std::unique_ptr<CanonicalModel>> models_;
  std::unique_ptr<DataInstance> seed_data_;  // Reused template individual.
  int seed_individual_ = -1;
};

}  // namespace owlqr

#endif  // OWLQR_CORE_TREE_WITNESS_H_
