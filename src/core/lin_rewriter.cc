#include "core/lin_rewriter.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/type_compat.h"
#include "cq/gaifman.h"
#include "ndl/transforms.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

namespace {

class LinRewriterImpl {
 public:
  LinRewriterImpl(RewritingContext* ctx, const ConjunctiveQuery& query,
                  int root)
      : ctx_(*ctx), query_(query), root_(root), program_(query.vocabulary()) {}

  NdlProgram Run() {
    OWLQR_CHECK_MSG(ctx_.depth() != WordGraph::kInfiniteDepth,
                    "Lin rewriting requires a finite-depth ontology");
    GaifmanGraph graph(query_);
    OWLQR_CHECK_MSG(graph.IsTree(), "Lin rewriting requires a tree-shaped CQ");
    if (root_ < 0) {
      root_ = query_.answer_vars().empty() ? 0 : query_.answer_vars()[0];
    }
    all_words_ = ctx_.words().AllWordsUpTo(ctx_.depth());
    slices_ = graph.BfsLayers(root_);
    int m = static_cast<int>(slices_.size()) - 1;

    // x^n and z^n_exists per slice; x^n are the answer variables occurring in
    // q_n (atoms entirely within slices >= n).
    std::vector<std::vector<int>> x_n(m + 1);
    std::vector<std::vector<int>> z_exists(m + 1);
    {
      std::vector<int> slice_of(query_.num_vars(), -1);
      for (int n = 0; n <= m; ++n) {
        for (int v : slices_[n]) slice_of[v] = n;
      }
      for (int n = 0; n <= m; ++n) {
        std::set<int> answers;
        for (const CqAtom& atom : query_.atoms()) {
          int lo = slice_of[atom.arg0];
          if (atom.kind == CqAtom::Kind::kBinary) {
            lo = std::min(lo, slice_of[atom.arg1]);
          }
          if (lo < n) continue;
          if (query_.IsAnswerVar(atom.arg0)) answers.insert(atom.arg0);
          if (atom.kind == CqAtom::Kind::kBinary &&
              query_.IsAnswerVar(atom.arg1)) {
            answers.insert(atom.arg1);
          }
        }
        for (int x : query_.answer_vars()) {
          if (answers.count(x) > 0) x_n[n].push_back(x);
        }
        for (int v : slices_[n]) {
          if (!query_.IsAnswerVar(v)) z_exists[n].push_back(v);
        }
      }
    }

    auto predicate_for = [&](int n, const TypeMap& w) {
      std::string name = "G" + std::to_string(n) + "[" +
                         w.Name(ctx_.words(), *query_.vocabulary()) + "]";
      int arity = static_cast<int>(z_exists[n].size() + x_n[n].size());
      int pred = program_.AddIdbPredicate(name, arity);
      std::vector<bool> params(z_exists[n].size(), false);
      params.insert(params.end(), x_n[n].size(), true);
      program_.mutable_predicate(pred).parameter_positions = std::move(params);
      return pred;
    };
    auto head_atom = [&](int pred, int n) {
      NdlAtom atom;
      atom.predicate = pred;
      for (int v : z_exists[n]) atom.args.push_back(Term::Var(v));
      for (int v : x_n[n]) atom.args.push_back(Term::Var(v));
      return atom;
    };

    // Bottom slice M: G^w_M <- At^w(z^M) for locally compatible w.
    std::map<TypeMap, int> kept;  // Types of the current slice -> predicate.
    {
      EnumerateCompatibleTypes(
          ctx_, query_, slices_[m], all_words_, TypeMap(),
          [&](const TypeMap& w) {
            int pred = predicate_for(m, w);
            NdlClause clause;
            clause.head = head_atom(pred, m);
            EmitTypeAtoms(ctx_, query_, w, slices_[m], &program_,
                          &clause.body);
            program_.AddClause(std::move(clause));
            kept.emplace(w, pred);
          });
    }

    // Slices M-1 .. 0.
    for (int n = m - 1; n >= 0; --n) {
      std::map<TypeMap, int> next_kept;
      std::vector<int> pair_dom = slices_[n];
      pair_dom.insert(pair_dom.end(), slices_[n + 1].begin(),
                      slices_[n + 1].end());
      EnumerateCompatibleTypes(
          ctx_, query_, slices_[n], all_words_, TypeMap(),
          [&](const TypeMap& w) {
            int pred = -1;
            for (const auto& [s, child_pred] : kept) {
              TypeMap merged = TypeMap::Union(w, s);
              // Compatibility of the pair (w, s) with (z^n, z^{n+1}):
              // exactly the type conditions over the union of the slices.
              if (!TypeCompatible(ctx_, query_, merged, pair_dom)) continue;
              if (pred < 0) {
                pred = predicate_for(n, w);
                next_kept.emplace(w, pred);
              }
              NdlClause clause;
              clause.head = head_atom(pred, n);
              EmitTypeAtoms(ctx_, query_, merged, pair_dom, &program_,
                            &clause.body);
              clause.body.push_back(head_atom(child_pred, n + 1));
              program_.AddClause(std::move(clause));
            }
          });
      kept = std::move(next_kept);
    }

    // Goal: G(x) <- G^w_0(z^0_exists, x^0) for every kept type.
    int goal = program_.AddIdbPredicate(
        "G", static_cast<int>(query_.answer_vars().size()));
    program_.mutable_predicate(goal).parameter_positions.assign(
        query_.answer_vars().size(), true);
    for (const auto& [w, pred] : kept) {
      NdlClause clause;
      clause.head.predicate = goal;
      for (int x : query_.answer_vars()) {
        clause.head.args.push_back(Term::Var(x));
      }
      clause.body.push_back(head_atom(pred, 0));
      program_.AddClause(std::move(clause));
    }
    program_.SetGoal(goal);
    EnsureSafety(&program_);
    PruneProgram(&program_);
    return std::move(program_);
  }

 private:
  RewritingContext& ctx_;
  const ConjunctiveQuery& query_;
  int root_;
  NdlProgram program_;
  std::vector<int> all_words_;
  std::vector<std::vector<int>> slices_;
};

}  // namespace

NdlProgram LinRewrite(RewritingContext* ctx, const ConjunctiveQuery& query,
                      int root) {
  OWLQR_NAMED_SPAN(span, "rewrite/lin");
  NdlProgram program = LinRewriterImpl(ctx, query, root).Run();
  span.Attr("clauses", program.num_clauses());
  return program;
}

}  // namespace owlqr
