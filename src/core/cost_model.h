#ifndef OWLQR_CORE_COST_MODEL_H_
#define OWLQR_CORE_COST_MODEL_H_

#include <map>

#include "core/rewriters.h"
#include "data/data_instance.h"
#include "ndl/program.h"

namespace owlqr {

// Section 6 proposes an "adaptable splitting strategy that would work
// similarly to query execution planners in DBMSs and use statistical
// information about the relational tables" with a cost function over
// alternative rewritings.  This module implements that proposal: a textbook
// cardinality model over the data statistics, used to pick among the optimal
// rewriters per OMQ.

struct DataStatistics {
  long num_individuals = 0;
  std::map<int, long> concept_cardinality;    // concept id -> #facts.
  std::map<int, long> predicate_cardinality;  // predicate id -> #facts.

  static DataStatistics FromInstance(const DataInstance& data);

  long ConceptCount(int concept_id) const;
  long PredicateCount(int predicate_id) const;
};

// Estimated number of tuples materialised when evaluating the program
// bottom-up over data with these statistics: per clause, the product of the
// body-atom cardinalities discounted by 1/|adom| for every repeated variable
// occurrence (attribute-independence assumption), summed over clauses and
// reachable IDB predicates.
double EstimateEvaluationCost(const NdlProgram& program,
                              const DataStatistics& stats);

// Rewrites the OMQ with every applicable optimal strategy (Lin / Log / Tw /
// Tw*), estimates each cost, and returns the cheapest program.  `chosen`
// receives the selected strategy.
NdlProgram CostBasedRewrite(RewritingContext* ctx,
                            const ConjunctiveQuery& query,
                            const DataStatistics& stats,
                            const RewriteOptions& options = {},
                            RewriterKind* chosen = nullptr);

}  // namespace owlqr

#endif  // OWLQR_CORE_COST_MODEL_H_
