#ifndef OWLQR_CORE_OMQ_H_
#define OWLQR_CORE_OMQ_H_

#include <string>

#include "core/rewriters.h"
#include "core/rewriting_context.h"
#include "cq/cq.h"

namespace owlqr {

// The combined-complexity landscape of Figure 1(a).
enum class ComplexityClass { kNl, kLogCfl, kNp };

const char* ComplexityClassName(ComplexityClass c);

// Structural parameters of an OMQ (T, q): the coordinates of Figure 1.
struct OmqProfile {
  int ontology_depth = 0;        // WordGraph::kInfiniteDepth if infinite.
  bool tree_shaped = false;      // Gaifman graph is a tree.
  int num_leaves = 0;            // For tree-shaped queries.
  int treewidth = 0;             // Exact for <= 20 variables, else min-fill.
  bool treewidth_exact = true;
  bool connected = false;

  bool finite_depth() const;

  // Membership in the paper's three tractable classes (for these concrete
  // parameter values).
  bool InOmqDT() const { return finite_depth(); }        // OMQ(d, t, inf).
  bool InOmqDL() const { return finite_depth() && tree_shaped; }
  bool InOmqL() const { return tree_shaped; }            // OMQ(inf, 1, l).

  // The combined complexity of answering per Figure 1(a), treating the
  // profile's own d / t / l as the fixed bounds.
  ComplexityClass Complexity() const;

  // The cheapest applicable optimal rewriter: Lin for OMQ(d,1,l) (NL), else
  // Log for finite depth, else Tw for tree-shaped CQs; UCQ as a last resort.
  RewriterKind RecommendedRewriter() const;

  std::string ToString() const;
};

// Computes the profile of (ctx->tbox(), query).
OmqProfile ProfileOmq(const RewritingContext& ctx,
                      const ConjunctiveQuery& query);

}  // namespace owlqr

#endif  // OWLQR_CORE_OMQ_H_
