#include "core/tw_rewriter.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "chase/homomorphism.h"
#include "core/tree_witness.h"
#include "cq/gaifman.h"
#include "cq/splitting.h"
#include "ndl/transforms.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

namespace {

// A subquery of the decomposition: a subset of the original atoms plus its
// answer variables (original answer variables and promoted split/root vars).
struct SubQuery {
  std::vector<int> atoms;        // Sorted atom indices.
  std::vector<int> answer_vars;  // Sorted variable ids.

  bool operator<(const SubQuery& o) const {
    return std::tie(atoms, answer_vars) < std::tie(o.atoms, o.answer_vars);
  }
};

class TwRewriterImpl {
 public:
  TwRewriterImpl(RewritingContext* ctx, const ConjunctiveQuery& query)
      : ctx_(*ctx),
        query_(query),
        program_(query.vocabulary()),
        witnesses_(ctx, query) {}

  NdlProgram Run() {
    SubQuery top;
    for (size_t i = 0; i < query_.atoms().size(); ++i) {
      top.atoms.push_back(static_cast<int>(i));
    }
    top.answer_vars = query_.answer_vars();
    std::sort(top.answer_vars.begin(), top.answer_vars.end());

    int goal = GetPredicate(top);
    // For Boolean queries, add G <- A(x) for every unary predicate A with
    // T, {A(a)} |= q (fully-anonymous matches).
    if (query_.IsBoolean()) {
      for (int concept_id = 0;
           concept_id < query_.vocabulary()->num_concepts(); ++concept_id) {
        if (!EntailedFromSingleton(concept_id)) continue;
        NdlClause clause;
        clause.head = {goal, {}};
        clause.body.push_back(
            {program_.AddConceptPredicate(concept_id), {Term::Var(0)}});
        program_.AddClause(std::move(clause));
      }
    }
    program_.SetGoal(goal);
    EnsureSafety(&program_);
    PruneProgram(&program_);
    return std::move(program_);
  }

 private:
  // Variables of a subquery, sorted.
  std::vector<int> VarsOf(const SubQuery& sq) const {
    std::set<int> vars;
    for (int ai : sq.atoms) {
      const CqAtom& atom = query_.atoms()[ai];
      vars.insert(atom.arg0);
      if (atom.kind == CqAtom::Kind::kBinary) vars.insert(atom.arg1);
    }
    return {vars.begin(), vars.end()};
  }

  // T, {A(a)} |= q_ (the full Boolean query)?
  bool EntailedFromSingleton(int concept_id) {
    DataInstance data(query_.vocabulary());
    data.AddConceptAssertion(concept_id,
                             query_.vocabulary()->InternIndividual("_tw_root"));
    CanonicalModel model(ctx_.tbox(), ctx_.saturation(), ctx_.word_graph(),
                         data, query_.num_vars() + 1);
    return HomomorphismSearch(query_, model).Exists();
  }

  // Connected components (by shared variables) of an atom set.
  std::vector<std::vector<int>> AtomComponents(
      const std::vector<int>& atoms) const {
    std::map<int, std::vector<int>> var_to_atoms;
    for (int ai : atoms) {
      const CqAtom& atom = query_.atoms()[ai];
      var_to_atoms[atom.arg0].push_back(ai);
      if (atom.kind == CqAtom::Kind::kBinary) {
        var_to_atoms[atom.arg1].push_back(ai);
      }
    }
    std::set<int> unseen(atoms.begin(), atoms.end());
    std::vector<std::vector<int>> components;
    while (!unseen.empty()) {
      std::vector<int> stack = {*unseen.begin()};
      unseen.erase(unseen.begin());
      std::vector<int> component;
      while (!stack.empty()) {
        int ai = stack.back();
        stack.pop_back();
        component.push_back(ai);
        const CqAtom& atom = query_.atoms()[ai];
        for (int v : {atom.arg0, atom.arg1}) {
          if (v < 0) continue;
          for (int aj : var_to_atoms[v]) {
            if (unseen.erase(aj) > 0) stack.push_back(aj);
          }
        }
      }
      std::sort(component.begin(), component.end());
      components.push_back(std::move(component));
    }
    return components;
  }

  int GetPredicate(const SubQuery& sq) {
    auto it = memo_.find(sq);
    if (it != memo_.end()) return it->second;
    std::string name = "Gq" + std::to_string(memo_.size());
    int pred = program_.AddIdbPredicate(
        name, static_cast<int>(sq.answer_vars.size()));
    std::vector<bool> params;
    for (int v : sq.answer_vars) params.push_back(query_.IsAnswerVar(v));
    program_.mutable_predicate(pred).parameter_positions = std::move(params);
    memo_.emplace(sq, pred);

    std::vector<int> vars = VarsOf(sq);
    std::vector<int> existential;
    for (int v : vars) {
      if (!std::binary_search(sq.answer_vars.begin(), sq.answer_vars.end(),
                              v)) {
        existential.push_back(v);
      }
    }

    auto head_atom = [&]() {
      NdlAtom head;
      head.predicate = pred;
      for (int v : sq.answer_vars) head.args.push_back(Term::Var(v));
      return head;
    };
    auto edb_atom = [&](const CqAtom& atom) {
      if (atom.kind == CqAtom::Kind::kUnary) {
        return NdlAtom{program_.AddConceptPredicate(atom.symbol),
                       {Term::Var(atom.arg0)}};
      }
      return NdlAtom{program_.AddRolePredicate(atom.symbol),
                     {Term::Var(atom.arg0), Term::Var(atom.arg1)}};
    };

    if (existential.empty()) {
      // Base case: Gq(x) <- q(x).
      NdlClause clause;
      clause.head = head_atom();
      for (int ai : sq.atoms) {
        clause.body.push_back(edb_atom(query_.atoms()[ai]));
      }
      program_.AddClause(std::move(clause));
      return pred;
    }

    // Choose the splitting variable z_q (Lemma 14); for two-variable
    // subqueries it must be existential.
    int zq;
    if (vars.size() == 2) {
      zq = existential[0];
    } else {
      // Centroid of the Gaifman tree of the subquery.
      std::map<int, int> compact;
      for (size_t i = 0; i < vars.size(); ++i) compact[vars[i]] = i;
      SimpleTree tree;
      tree.Resize(static_cast<int>(vars.size()));
      std::set<std::pair<int, int>> edges;
      for (int ai : sq.atoms) {
        const CqAtom& atom = query_.atoms()[ai];
        if (atom.kind != CqAtom::Kind::kBinary || atom.arg0 == atom.arg1) {
          continue;
        }
        int u = compact[atom.arg0], v = compact[atom.arg1];
        if (edges.insert({std::min(u, v), std::max(u, v)}).second) {
          tree.AddEdge(u, v);
        }
      }
      zq = vars[TreeCentroid(tree)];
    }

    // Decomposition clause: Gq(x) <- atoms on zq alone & Gq_i(x_i).
    {
      NdlClause clause;
      clause.head = head_atom();
      std::set<int> used_atoms;
      for (int ai : sq.atoms) {
        const CqAtom& atom = query_.atoms()[ai];
        bool only_zq =
            atom.arg0 == zq &&
            (atom.kind == CqAtom::Kind::kUnary || atom.arg1 == zq);
        if (only_zq) {
          clause.body.push_back(edb_atom(atom));
          used_atoms.insert(ai);
        }
      }
      // Neighbour subqueries: components of the subquery without zq, plus
      // the edges to zq.
      std::map<int, std::vector<int>> component_atoms;  // keyed by rep var.
      // Union-find over variables excluding zq.
      std::map<int, int> parent;
      std::function<int(int)> find = [&](int v) -> int {
        auto pit = parent.find(v);
        if (pit == parent.end() || pit->second == v) {
          parent[v] = v;
          return v;
        }
        return parent[v] = find(pit->second);
      };
      for (int ai : sq.atoms) {
        const CqAtom& atom = query_.atoms()[ai];
        if (atom.kind != CqAtom::Kind::kBinary) continue;
        if (atom.arg0 == zq || atom.arg1 == zq) continue;
        parent[find(atom.arg0)] = find(atom.arg1);
      }
      for (int ai : sq.atoms) {
        if (used_atoms.count(ai) > 0) continue;
        const CqAtom& atom = query_.atoms()[ai];
        int anchor;
        if (atom.kind == CqAtom::Kind::kBinary &&
            (atom.arg0 == zq || atom.arg1 == zq)) {
          anchor = find(atom.arg0 == zq ? atom.arg1 : atom.arg0);
        } else {
          anchor = find(atom.arg0);
        }
        component_atoms[anchor].push_back(ai);
      }
      for (auto& [anchor, atoms] : component_atoms) {
        SubQuery child;
        std::sort(atoms.begin(), atoms.end());
        child.atoms = atoms;
        std::set<int> child_vars;
        for (int ai : atoms) {
          const CqAtom& atom = query_.atoms()[ai];
          child_vars.insert(atom.arg0);
          if (atom.kind == CqAtom::Kind::kBinary) {
            child_vars.insert(atom.arg1);
          }
        }
        for (int v : child_vars) {
          if (v == zq ||
              std::binary_search(sq.answer_vars.begin(), sq.answer_vars.end(),
                                 v)) {
            child.answer_vars.push_back(v);
          }
        }
        int child_pred = GetPredicate(child);
        NdlAtom atom;
        atom.predicate = child_pred;
        for (int v : child.answer_vars) atom.args.push_back(Term::Var(v));
        clause.body.push_back(std::move(atom));
      }
      program_.AddClause(std::move(clause));
    }

    // Tree-witness clauses: one per witness t with zq in ti, tr != {}, and
    // per generating role.
    for (const TreeWitness& tw :
         witnesses_.Enumerate(sq.atoms, sq.answer_vars, zq)) {
      // Connected components of the remaining atoms.
      std::vector<int> rest;
      std::set_difference(sq.atoms.begin(), sq.atoms.end(), tw.atoms.begin(),
                          tw.atoms.end(), std::back_inserter(rest));
      std::vector<NdlAtom> child_atoms;
      for (const std::vector<int>& comp : AtomComponents(rest)) {
        SubQuery child;
        child.atoms = comp;
        std::set<int> child_vars;
        for (int ai : comp) {
          const CqAtom& atom = query_.atoms()[ai];
          child_vars.insert(atom.arg0);
          if (atom.kind == CqAtom::Kind::kBinary) {
            child_vars.insert(atom.arg1);
          }
        }
        for (int v : child_vars) {
          if (std::binary_search(tw.tr.begin(), tw.tr.end(), v) ||
              std::binary_search(sq.answer_vars.begin(), sq.answer_vars.end(),
                                 v)) {
            child.answer_vars.push_back(v);
          }
        }
        int child_pred = GetPredicate(child);
        NdlAtom atom;
        atom.predicate = child_pred;
        for (int v : child.answer_vars) atom.args.push_back(Term::Var(v));
        child_atoms.push_back(std::move(atom));
      }
      int z0 = tw.tr[0];
      for (RoleId rho : tw.generators) {
        int exists_concept = ctx_.tbox().ExistsConcept(rho);
        NdlClause clause;
        clause.head = head_atom();
        clause.body.push_back(
            {program_.AddConceptPredicate(exists_concept), {Term::Var(z0)}});
        for (size_t i = 1; i < tw.tr.size(); ++i) {
          clause.body.push_back({program_.EqualityPredicate(),
                                 {Term::Var(tw.tr[i]), Term::Var(z0)}});
        }
        for (const NdlAtom& atom : child_atoms) clause.body.push_back(atom);
        program_.AddClause(std::move(clause));
      }
    }
    return pred;
  }

  RewritingContext& ctx_;
  const ConjunctiveQuery& query_;
  NdlProgram program_;
  TreeWitnessEnumerator witnesses_;
  std::map<SubQuery, int> memo_;
};

}  // namespace

NdlProgram TwRewrite(RewritingContext* ctx, const ConjunctiveQuery& query) {
  GaifmanGraph graph(query);
  OWLQR_CHECK_MSG(graph.IsTree(), "Tw rewriting requires a tree-shaped CQ");
  OWLQR_NAMED_SPAN(span, "rewrite/tw");
  NdlProgram program = TwRewriterImpl(ctx, query).Run();
  span.Attr("clauses", program.num_clauses());
  return program;
}

}  // namespace owlqr
