#ifndef OWLQR_CORE_REWRITING_CONTEXT_H_
#define OWLQR_CORE_REWRITING_CONTEXT_H_

#include "ontology/saturation.h"
#include "ontology/tbox.h"
#include "ontology/word_graph.h"

namespace owlqr {

// Precomputed reasoning state shared by all rewriters of one ontology:
// entailment closure, the W_T graph and the word interning table.
//
// The TBox must be normalized and must outlive the context.
class RewritingContext {
 public:
  explicit RewritingContext(const TBox& tbox);

  RewritingContext(const RewritingContext&) = delete;
  RewritingContext& operator=(const RewritingContext&) = delete;

  const TBox& tbox() const { return tbox_; }
  const Saturation& saturation() const { return saturation_; }
  const WordGraph& word_graph() const { return word_graph_; }
  WordTable& words() { return words_; }
  const WordTable& words() const { return words_; }

  // Ontology depth (WordGraph::kInfiniteDepth if infinite).
  int depth() const { return word_graph_.depth(); }

 private:
  const TBox& tbox_;
  Saturation saturation_;
  WordGraph word_graph_;
  WordTable words_;
};

}  // namespace owlqr

#endif  // OWLQR_CORE_REWRITING_CONTEXT_H_
