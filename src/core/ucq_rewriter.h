#ifndef OWLQR_CORE_UCQ_REWRITER_H_
#define OWLQR_CORE_UCQ_REWRITER_H_

#include "core/rewriting_context.h"
#include "cq/cq.h"
#include "ndl/program.h"

namespace owlqr {

struct BaselineOptions {
  // Stop emitting clauses beyond this bound (mimics the timeouts of the
  // third-party engines on long queries); `truncated` reports whether the
  // bound was hit, in which case the program is not a complete rewriting.
  long max_clauses = 1'000'000;
};

// Baseline 1: the classical tree-witness UCQ rewriting (the PerfectRef-style
// output produced by engines such as Rapid and Clipper on these inputs).
// One clause per independent set of tree witnesses per choice of generators;
// exponential in the number of non-conflicting witnesses.  Sound and
// complete over complete data instances (combine with StarTransform for
// arbitrary ones).
NdlProgram UcqRewrite(RewritingContext* ctx, const ConjunctiveQuery& query,
                      const BaselineOptions& options = {},
                      bool* truncated = nullptr);

// Baseline 2: a Presto-style NDL rewriting: the UCQ above with every
// disjunct decomposed into a chain of auxiliary predicates that eliminate
// one atom at a time (no cross-disjunct sharing).
NdlProgram PrestoLikeRewrite(RewritingContext* ctx,
                             const ConjunctiveQuery& query,
                             const BaselineOptions& options = {},
                             bool* truncated = nullptr);

}  // namespace owlqr

#endif  // OWLQR_CORE_UCQ_REWRITER_H_
