#include "core/tree_witness.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace owlqr {

TreeWitnessEnumerator::TreeWitnessEnumerator(RewritingContext* ctx,
                                             const ConjunctiveQuery& query)
    : ctx_(ctx), query_(query) {
  seed_individual_ =
      query.vocabulary()->InternIndividual("_tw_root");
}

const CanonicalModel& TreeWitnessEnumerator::ModelFor(RoleId rho) {
  auto it = models_.find(rho);
  if (it != models_.end()) return *it->second;
  DataInstance data(query_.vocabulary());
  int exists_concept = ctx_->tbox().ExistsConcept(rho);
  OWLQR_CHECK(exists_concept >= 0);
  data.AddConceptAssertion(exists_concept, seed_individual_);
  int depth = query_.num_vars() + 1;
  auto model = std::make_unique<CanonicalModel>(
      ctx_->tbox(), ctx_->saturation(), ctx_->word_graph(), data, depth);
  const CanonicalModel& ref = *model;
  models_.emplace(rho, std::move(model));
  return ref;
}

namespace {

// True iff the atom holds under the (total on its variables) assignment.
bool AtomHolds(const CqAtom& atom, const std::vector<int>& assignment,
               const CanonicalModel& model) {
  if (atom.kind == CqAtom::Kind::kUnary) {
    return model.HasConcept(assignment[atom.arg0], atom.symbol);
  }
  return model.HasRole(RoleOf(atom.symbol), assignment[atom.arg0],
                       assignment[atom.arg1]);
}

}  // namespace

void TreeWitnessEnumerator::Search(
    const std::vector<int>& atom_indices, const std::vector<int>& answer_vars,
    const CanonicalModel& model, std::vector<int>* assignment,
    std::map<std::vector<int>, std::vector<RoleId>>* found, RoleId rho) {
  int root = model.ElementOfIndividual(seed_individual_);
  // Find an obligation: an atom touching a null-assigned variable with some
  // variable unassigned, or (verification) fully assigned with a null.
  for (int ai : atom_indices) {
    const CqAtom& atom = query_.atoms()[ai];
    std::vector<int> vars = {atom.arg0};
    if (atom.kind == CqAtom::Kind::kBinary && atom.arg1 != atom.arg0) {
      vars.push_back(atom.arg1);
    }
    bool touches_null = false;
    int open = -1;
    for (int v : vars) {
      int e = (*assignment)[v];
      if (e >= 0 && !model.IsIndividual(e)) touches_null = true;
      if (e < 0) open = v;
    }
    if (!touches_null) continue;
    if (open < 0) {
      if (!AtomHolds(atom, *assignment, model)) return;  // Dead branch.
      continue;
    }
    // Branch on the open variable of this obligation.
    std::vector<int> candidates;
    if (atom.kind == CqAtom::Kind::kUnary) {
      // Cannot happen: unary atoms have one variable, which is the null one.
      OWLQR_CHECK(false);
    } else {
      RoleId role = RoleOf(atom.symbol);
      if ((*assignment)[atom.arg0] >= 0) {
        candidates = model.RoleSuccessors(role, (*assignment)[atom.arg0]);
      } else {
        candidates =
            model.RoleSuccessors(Inverse(role), (*assignment)[atom.arg1]);
      }
    }
    bool open_is_answer =
        std::binary_search(answer_vars.begin(), answer_vars.end(), open);
    for (int candidate : candidates) {
      if (open_is_answer && candidate != root) continue;
      (*assignment)[open] = candidate;
      // Verify unary atoms and self-loops on `open` if it became a null.
      bool ok = true;
      if (!model.IsIndividual(candidate)) {
        for (int aj : atom_indices) {
          const CqAtom& other = query_.atoms()[aj];
          if (other.kind == CqAtom::Kind::kUnary && other.arg0 == open) {
            ok = ok && AtomHolds(other, *assignment, model);
          } else if (other.kind == CqAtom::Kind::kBinary &&
                     other.arg0 == open && other.arg1 == open) {
            ok = ok && AtomHolds(other, *assignment, model);
          }
        }
      }
      if (ok) Search(atom_indices, answer_vars, model, assignment, found, rho);
      (*assignment)[open] = -1;
    }
    return;  // All extensions of this obligation explored.
  }
  // No obligations left: every atom touching a null is fully mapped and
  // holds.  Record the witness.
  std::vector<int> ti;
  for (int v = 0; v < query_.num_vars(); ++v) {
    if ((*assignment)[v] >= 0 && !model.IsIndividual((*assignment)[v])) {
      ti.push_back(v);
    }
  }
  if (ti.empty()) return;
  std::vector<RoleId>& gens = (*found)[ti];
  if (std::find(gens.begin(), gens.end(), rho) == gens.end()) {
    gens.push_back(rho);
  }
}

std::vector<TreeWitness> TreeWitnessEnumerator::Enumerate(
    const std::vector<int>& atom_indices, const std::vector<int>& answer_vars,
    int required_var, bool include_detached) {
  std::map<std::vector<int>, std::vector<RoleId>> found;
  // Seed variables: all existential variables of the subquery.  Even with a
  // required ti-variable we must seed every variable, because the required
  // one may sit deeper than the depth-1 seeds below; the requirement is
  // enforced by the final filter.
  std::vector<int> seeds;
  {
    std::set<int> vars;
    for (int ai : atom_indices) {
      const CqAtom& atom = query_.atoms()[ai];
      vars.insert(atom.arg0);
      if (atom.kind == CqAtom::Kind::kBinary) vars.insert(atom.arg1);
    }
    for (int v : vars) {
      if (!std::binary_search(answer_vars.begin(), answer_vars.end(), v)) {
        seeds.push_back(v);
      }
    }
  }
  // Seeding: for the witnesses we emit (tr != {}), some atom connects a
  // tr-variable (mapped to the root) to a ti-variable, which therefore sits
  // at a *depth-1* null; seeding every variable at every depth-1 null is
  // complete and avoids materialising deep branching models.  Detached
  // witnesses (tr = {}) can be shifted so that their minimal element is a
  // representative null, so those are added as extra seeds when requested.
  for (RoleId rho : ctx_->tbox().roles()) {
    if (ctx_->tbox().ExistsConcept(rho) < 0) continue;
    const CanonicalModel& model = ModelFor(rho);
    std::vector<int> seed_elements = model.DepthOneNulls();
    if (include_detached) {
      for (int e : model.RepresentativeNulls()) seed_elements.push_back(e);
      std::sort(seed_elements.begin(), seed_elements.end());
      seed_elements.erase(
          std::unique(seed_elements.begin(), seed_elements.end()),
          seed_elements.end());
    }
    for (int seed : seeds) {
      if (std::binary_search(answer_vars.begin(), answer_vars.end(), seed)) {
        continue;
      }
      std::vector<int> assignment(query_.num_vars(), -1);
      for (int e : seed_elements) {
        assignment[seed] = e;
        // Check unary atoms and self-loops on the seed.
        bool ok = true;
        for (int ai : atom_indices) {
          const CqAtom& atom = query_.atoms()[ai];
          bool on_seed =
              (atom.kind == CqAtom::Kind::kUnary && atom.arg0 == seed) ||
              (atom.kind == CqAtom::Kind::kBinary && atom.arg0 == seed &&
               atom.arg1 == seed);
          if (on_seed) ok = ok && AtomHolds(atom, assignment, model);
        }
        if (ok) {
          Search(atom_indices, answer_vars, model, &assignment, &found, rho);
        }
        assignment[seed] = -1;
      }
    }
  }

  std::vector<TreeWitness> witnesses;
  for (auto& [ti, generators] : found) {
    if (required_var >= 0 &&
        !std::binary_search(ti.begin(), ti.end(), required_var)) {
      continue;
    }
    TreeWitness tw;
    tw.ti = ti;
    tw.generators = std::move(generators);
    std::set<int> tr;
    for (int ai : atom_indices) {
      const CqAtom& atom = query_.atoms()[ai];
      bool touches = std::binary_search(ti.begin(), ti.end(), atom.arg0) ||
                     (atom.kind == CqAtom::Kind::kBinary &&
                      std::binary_search(ti.begin(), ti.end(), atom.arg1));
      if (!touches) continue;
      tw.atoms.push_back(ai);
      for (int v : {atom.arg0, atom.arg1}) {
        if (v >= 0 && !std::binary_search(ti.begin(), ti.end(), v)) {
          tr.insert(v);
        }
      }
    }
    tw.tr.assign(tr.begin(), tr.end());
    if (tw.tr.empty() && !include_detached) continue;
    witnesses.push_back(std::move(tw));
  }
  return witnesses;
}

}  // namespace owlqr
