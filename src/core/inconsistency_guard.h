#ifndef OWLQR_CORE_INCONSISTENCY_GUARD_H_
#define OWLQR_CORE_INCONSISTENCY_GUARD_H_

#include "core/rewriting_context.h"
#include "ndl/program.h"

namespace owlqr {

// The paper drops bottom axioms "without loss of generality" because
// rewritings can "incorporate subqueries that check whether the left-hand
// side of an axiom with bottom holds and output all tuples of constants if
// this is the case" (Section 2).  This implements that trick for NDL.
//
// AddInconsistencyGuard rewires `program` (a rewriting over *arbitrary* data
// instances) so that its goal also derives every tuple over ind(A)^arity
// whenever some disjointness or irreflexivity axiom fires:
//
//   _incon()  <- <violation subquery>          (one clause per axiom)
//   G'(x...)  <- G(x...)
//   G'(x...)  <- _incon() & TOP(x1) & ... & TOP(xn)
//
// Violations are detected through the entailment closure, so raw (not
// completed) data suffices.  Anonymous-part clashes are tested per reachable
// tree letter.  Returns the new goal predicate.
int AddInconsistencyGuard(RewritingContext* ctx, NdlProgram* program);

}  // namespace owlqr

#endif  // OWLQR_CORE_INCONSISTENCY_GUARD_H_
