#ifndef OWLQR_CORE_LOG_REWRITER_H_
#define OWLQR_CORE_LOG_REWRITER_H_

#include "core/rewriting_context.h"
#include "cq/cq.h"
#include "cq/tree_decomposition.h"
#include "ndl/program.h"

namespace owlqr {

// The Log rewriting of Section 3.2 for OMQ(d, t, inf): ontologies of finite
// depth d with CQs of treewidth <= t.  Splits the tree decomposition
// recursively by Lemma 10 and introduces one IDB predicate G^w_D per subtree
// D and boundary type w.  The resulting NDL query is skinny-reducible: it has
// logarithmic skinny depth and width <= 3(t+1), and evaluates in LOGCFL.
//
// The returned program is a rewriting over *complete* data instances; apply
// StarTransform for arbitrary instances.  Requires a connected query and a
// finite-depth ontology.
NdlProgram LogRewrite(RewritingContext* ctx, const ConjunctiveQuery& query,
                      const TreeDecomposition& decomposition);

// Convenience overload using the natural decomposition for tree-shaped
// queries and the min-fill decomposition otherwise.
NdlProgram LogRewrite(RewritingContext* ctx, const ConjunctiveQuery& query);

}  // namespace owlqr

#endif  // OWLQR_CORE_LOG_REWRITER_H_
