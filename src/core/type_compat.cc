#include "core/type_compat.h"

#include <algorithm>
#include <set>

namespace owlqr {

bool UnaryAtomCompatible(const RewritingContext& ctx, int concept_id, int wz) {
  if (wz == WordTable::kEpsilon) return true;  // Checked by the data atoms.
  return ctx.saturation().InverseExistsImpliesConcept(
      ctx.words().LastRole(wz), concept_id);
}

bool BinaryAtomCompatible(const RewritingContext& ctx, int predicate_id,
                          int wy, int wz) {
  const WordTable& words = ctx.words();
  RoleId p = RoleOf(predicate_id);
  // (i) Both epsilon: checked by the data atoms of At.
  if (wy == WordTable::kEpsilon && wz == WordTable::kEpsilon) return true;
  // (ii) Same element and a reflexive P.
  if (wy == wz && ctx.saturation().Reflexive(p)) return true;
  // (iii) A tree edge covered by P: z = y.rho with rho <= P, or y = z.rho
  // with rho <= P^- (i.e. rho(z, y) entails P(y, z)).
  if (wz != WordTable::kEpsilon && words.Parent(wz) == wy &&
      ctx.saturation().SubRole(words.LastRole(wz), p)) {
    return true;
  }
  if (wy != WordTable::kEpsilon && words.Parent(wy) == wz &&
      ctx.saturation().SubRole(words.LastRole(wy), Inverse(p))) {
    return true;
  }
  return false;
}

bool TypeCompatible(const RewritingContext& ctx, const ConjunctiveQuery& query,
                    const TypeMap& type, const std::vector<int>& dom) {
  auto in_dom = [&dom](int v) {
    return std::find(dom.begin(), dom.end(), v) != dom.end();
  };
  for (int z : dom) {
    if (query.IsAnswerVar(z) && type.Get(z) != WordTable::kEpsilon) {
      return false;
    }
  }
  for (const CqAtom& atom : query.atoms()) {
    if (atom.kind == CqAtom::Kind::kUnary) {
      if (!in_dom(atom.arg0)) continue;
      if (!UnaryAtomCompatible(ctx, atom.symbol, type.Get(atom.arg0))) {
        return false;
      }
    } else {
      if (!in_dom(atom.arg0) || !in_dom(atom.arg1)) continue;
      if (!BinaryAtomCompatible(ctx, atom.symbol, type.Get(atom.arg0),
                                type.Get(atom.arg1))) {
        return false;
      }
    }
  }
  return true;
}

void EmitTypeAtoms(const RewritingContext& ctx, const ConjunctiveQuery& query,
                   const TypeMap& type, const std::vector<int>& dom,
                   NdlProgram* out, std::vector<NdlAtom>* body) {
  auto in_dom = [&dom](int v) {
    return std::find(dom.begin(), dom.end(), v) != dom.end();
  };
  std::set<std::pair<int, std::pair<int, int>>> emitted;
  auto push1 = [&](int predicate, int v0) {
    if (emitted.insert({predicate, {v0, -1}}).second) {
      body->push_back({predicate, {Term::Var(v0)}});
    }
  };
  auto push2 = [&](int predicate, int v0, int v1) {
    if (emitted.insert({predicate, {v0, v1}}).second) {
      body->push_back({predicate, {Term::Var(v0), Term::Var(v1)}});
    }
  };
  for (const CqAtom& atom : query.atoms()) {
    if (atom.kind == CqAtom::Kind::kUnary) {
      if (!in_dom(atom.arg0)) continue;
      if (type.Get(atom.arg0) == WordTable::kEpsilon) {
        push1(out->AddConceptPredicate(atom.symbol), atom.arg0);
      }
    } else {
      if (!in_dom(atom.arg0) || !in_dom(atom.arg1)) continue;
      int wy = type.Get(atom.arg0);
      int wz = type.Get(atom.arg1);
      if (wy == WordTable::kEpsilon && wz == WordTable::kEpsilon) {
        push2(out->AddRolePredicate(atom.symbol), atom.arg0, atom.arg1);
      } else if (atom.arg0 != atom.arg1) {
        push2(out->EqualityPredicate(), atom.arg0, atom.arg1);
      }
    }
  }
  // (c) A_rho(z) for non-epsilon words: the base individual must entail
  // exists rho for the first letter rho.
  for (int z : dom) {
    int w = type.Get(z);
    if (w == WordTable::kEpsilon || w < 0) continue;
    int exists_concept = ctx.tbox().ExistsConcept(ctx.words().FirstRole(w));
    push1(out->AddConceptPredicate(exists_concept), z);
  }
}

void EnumerateCompatibleTypes(
    const RewritingContext& ctx, const ConjunctiveQuery& query,
    const std::vector<int>& vars, const std::vector<int>& all_words,
    const TypeMap& constraint,
    const std::function<void(const TypeMap&)>& yield) {
  TypeMap current;
  std::function<void(size_t)> recurse = [&](size_t i) {
    if (i == vars.size()) {
      if (TypeCompatible(ctx, query, current, vars)) yield(current);
      return;
    }
    int v = vars[i];
    int forced = constraint.Get(v);
    if (forced >= 0) {
      current.Set(v, forced);
      recurse(i + 1);
      return;
    }
    if (query.IsAnswerVar(v)) {
      current.Set(v, WordTable::kEpsilon);
      recurse(i + 1);
      return;
    }
    for (int w : all_words) {
      current.Set(v, w);
      recurse(i + 1);
    }
  };
  recurse(0);
  (void)yield;
}

}  // namespace owlqr
