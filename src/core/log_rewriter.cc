#include "core/log_rewriter.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/type_compat.h"
#include "cq/gaifman.h"
#include "cq/splitting.h"
#include "ndl/transforms.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

namespace {

// One subtree D of the recursive splitting (the set D with predecessor
// relation of Section 3.2).
struct Subtree {
  std::vector<int> nodes;          // Decomposition-tree nodes, sorted.
  int sigma = -1;                  // Splitting node sigma(D).
  std::vector<int> children;       // Indices of the D' with D' < D.
  std::vector<int> boundary_vars;  // The variable set dD, sorted.
  std::vector<int> answer_vars;    // x_D, in answer order.
};

class LogRewriterImpl {
 public:
  LogRewriterImpl(RewritingContext* ctx, const ConjunctiveQuery& query,
                  const TreeDecomposition& td)
      : ctx_(*ctx), query_(query), td_(td), program_(query.vocabulary()) {}

  NdlProgram Run() {
    OWLQR_CHECK_MSG(ctx_.depth() != WordGraph::kInfiniteDepth,
                    "Log rewriting requires a finite-depth ontology");
    all_words_ = ctx_.words().AllWordsUpTo(ctx_.depth());
    decomposition_tree_.Resize(td_.num_nodes());
    for (int t = 0; t < td_.num_nodes(); ++t) {
      for (int u : td_.adjacency[t]) {
        if (t < u) decomposition_tree_.AddEdge(t, u);
      }
    }
    std::vector<int> all_nodes(td_.num_nodes());
    for (int i = 0; i < td_.num_nodes(); ++i) all_nodes[i] = i;
    int root = BuildSubtree(all_nodes);

    int goal = GetPredicate(root, TypeMap());
    program_.SetGoal(goal);
    EnsureSafety(&program_);
    PruneProgram(&program_);
    return std::move(program_);
  }

 private:
  // Builds the Subtree record for node set `nodes` (connected, deg <= 2) and
  // recursively for its split components.  Returns the registry index.
  int BuildSubtree(std::vector<int> nodes) {
    Subtree subtree;
    subtree.nodes = nodes;

    // Boundary variables: lambda(t) /\ lambda(t') for boundary t in D and
    // neighbours t' outside D.
    std::set<int> in_d(nodes.begin(), nodes.end());
    std::set<int> boundary;
    for (int t : nodes) {
      for (int u : decomposition_tree_.adjacency[t]) {
        if (in_d.count(u) > 0) continue;
        for (int v : td_.bags[t]) {
          if (std::binary_search(td_.bags[u].begin(), td_.bags[u].end(), v)) {
            boundary.insert(v);
          }
        }
      }
    }
    subtree.boundary_vars.assign(boundary.begin(), boundary.end());

    // x_D: answer variables occurring in q_D.  We take all variables of D's
    // bags — a superset of the atom variables that also covers degenerate
    // isolated variables (bound through the active domain by EnsureSafety).
    std::set<int> vars_in_d;
    for (int t : nodes) {
      vars_in_d.insert(td_.bags[t].begin(), td_.bags[t].end());
    }
    for (int x : query_.answer_vars()) {
      if (vars_in_d.count(x) > 0) subtree.answer_vars.push_back(x);
    }

    if (nodes.size() == 1) {
      subtree.sigma = nodes[0];
    } else {
      subtree.sigma = FindLemma10Splitter(decomposition_tree_, nodes);
      for (std::vector<int>& comp :
           SubsetComponents(decomposition_tree_, nodes, subtree.sigma)) {
        subtree.children.push_back(BuildSubtree(std::move(comp)));
      }
    }
    registry_.push_back(std::move(subtree));
    return static_cast<int>(registry_.size()) - 1;
  }

  // Predicate G^w_D; generates its clauses on first request.
  int GetPredicate(int d, const TypeMap& w) {
    auto key = std::make_pair(d, w);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const Subtree& subtree = registry_[d];
    std::string name =
        "G_D" + std::to_string(d) + "[" +
        w.Name(ctx_.words(), *query_.vocabulary()) + "]";
    int arity = static_cast<int>(subtree.boundary_vars.size() +
                                 subtree.answer_vars.size());
    int pred = program_.AddIdbPredicate(name, arity);
    // Parameter positions: the answer-variable arguments (both the x_D block
    // and boundary variables that happen to be answer variables).
    std::vector<bool> params;
    for (int v : subtree.boundary_vars) params.push_back(query_.IsAnswerVar(v));
    for (size_t i = 0; i < subtree.answer_vars.size(); ++i) params.push_back(true);
    program_.mutable_predicate(pred).parameter_positions = std::move(params);
    memo_.emplace(key, pred);

    const std::vector<int>& bag = td_.bags[subtree.sigma];
    EnumerateCompatibleTypes(
        ctx_, query_, bag, all_words_, w, [&](const TypeMap& s) {
          NdlClause clause;
          clause.head.predicate = pred;
          for (int v : subtree.boundary_vars) {
            clause.head.args.push_back(Term::Var(v));
          }
          for (int v : subtree.answer_vars) {
            clause.head.args.push_back(Term::Var(v));
          }
          EmitTypeAtoms(ctx_, query_, s, bag, &program_, &clause.body);
          TypeMap merged = TypeMap::Union(s, w);
          for (int child : subtree.children) {
            const Subtree& cs = registry_[child];
            TypeMap cw = merged.Restrict(cs.boundary_vars);
            int child_pred = GetPredicate(child, cw);
            NdlAtom atom;
            atom.predicate = child_pred;
            for (int v : cs.boundary_vars) atom.args.push_back(Term::Var(v));
            for (int v : cs.answer_vars) atom.args.push_back(Term::Var(v));
            clause.body.push_back(std::move(atom));
          }
          program_.AddClause(std::move(clause));
        });
    return pred;
  }

  RewritingContext& ctx_;
  const ConjunctiveQuery& query_;
  const TreeDecomposition& td_;
  NdlProgram program_;
  SimpleTree decomposition_tree_;
  std::vector<int> all_words_;
  std::vector<Subtree> registry_;
  std::map<std::pair<int, TypeMap>, int> memo_;
};

}  // namespace

NdlProgram LogRewrite(RewritingContext* ctx, const ConjunctiveQuery& query,
                      const TreeDecomposition& decomposition) {
  OWLQR_CHECK_MSG(GaifmanGraph(query).IsConnected(),
                  "LogRewrite requires a connected query");
  OWLQR_CHECK(decomposition.num_nodes() > 0);
  OWLQR_NAMED_SPAN(span, "rewrite/log");
  NdlProgram program = LogRewriterImpl(ctx, query, decomposition).Run();
  span.Attr("clauses", program.num_clauses());
  return program;
}

NdlProgram LogRewrite(RewritingContext* ctx, const ConjunctiveQuery& query) {
  GaifmanGraph graph(query);
  TreeDecomposition td = graph.IsTree() ? DecomposeTreeQuery(query, graph)
                                        : MinFillDecomposition(query);
  return LogRewrite(ctx, query, td);
}

}  // namespace owlqr
