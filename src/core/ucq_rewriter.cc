#include "core/ucq_rewriter.h"

#include <algorithm>
#include <set>

#include "chase/homomorphism.h"
#include "core/tree_witness.h"
#include "ndl/transforms.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

namespace {

bool AtomsIntersect(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

class UcqRewriterImpl {
 public:
  UcqRewriterImpl(RewritingContext* ctx, const ConjunctiveQuery& query,
                  const BaselineOptions& options)
      : ctx_(*ctx),
        query_(query),
        options_(options),
        program_(query.vocabulary()),
        witnesses_(ctx, query) {}

  NdlProgram Run(bool* truncated) {
    truncated_ = false;
    goal_ = program_.AddIdbPredicate(
        "G", static_cast<int>(query_.answer_vars().size()));
    program_.mutable_predicate(goal_).parameter_positions.assign(
        query_.answer_vars().size(), true);

    std::vector<int> all_atoms(query_.atoms().size());
    for (size_t i = 0; i < all_atoms.size(); ++i) {
      all_atoms[i] = static_cast<int>(i);
    }
    std::vector<int> answer_vars = query_.answer_vars();
    std::sort(answer_vars.begin(), answer_vars.end());
    all_witnesses_ =
        witnesses_.Enumerate(all_atoms, answer_vars, /*required_var=*/-1);

    std::vector<int> chosen;
    EmitSubsets(0, &chosen);

    // Fully-anonymous matches of Boolean queries.
    if (query_.IsBoolean()) {
      for (int concept_id = 0;
           concept_id < query_.vocabulary()->num_concepts(); ++concept_id) {
        DataInstance data(query_.vocabulary());
        data.AddConceptAssertion(
            concept_id, query_.vocabulary()->InternIndividual("_tw_root"));
        CanonicalModel model(ctx_.tbox(), ctx_.saturation(), ctx_.word_graph(),
                             data, query_.num_vars() + 1);
        if (!HomomorphismSearch(query_, model).Exists()) continue;
        NdlClause clause;
        clause.head = {goal_, {}};
        clause.body.push_back(
            {program_.AddConceptPredicate(concept_id), {Term::Var(0)}});
        program_.AddClause(std::move(clause));
      }
    }
    program_.SetGoal(goal_);
    EnsureSafety(&program_);
    if (truncated != nullptr) *truncated = truncated_;
    return std::move(program_);
  }

 private:
  // Enumerates independent witness subsets; for each, emits one clause per
  // combination of generators.
  void EmitSubsets(size_t next, std::vector<int>* chosen) {
    if (truncated_) return;
    if (next == all_witnesses_.size()) {
      EmitClausesFor(*chosen);
      return;
    }
    // Without witness `next`.
    EmitSubsets(next + 1, chosen);
    // With it, if independent of the current choice.
    for (int c : *chosen) {
      if (AtomsIntersect(all_witnesses_[c].atoms,
                         all_witnesses_[next].atoms)) {
        return;
      }
    }
    chosen->push_back(static_cast<int>(next));
    EmitSubsets(next + 1, chosen);
    chosen->pop_back();
  }

  void EmitClausesFor(const std::vector<int>& chosen) {
    // Uncovered atoms.
    std::set<int> covered;
    for (int c : chosen) {
      covered.insert(all_witnesses_[c].atoms.begin(),
                     all_witnesses_[c].atoms.end());
    }
    std::vector<NdlAtom> base_body;
    for (size_t i = 0; i < query_.atoms().size(); ++i) {
      if (covered.count(static_cast<int>(i)) > 0) continue;
      const CqAtom& atom = query_.atoms()[i];
      if (atom.kind == CqAtom::Kind::kUnary) {
        base_body.push_back({program_.AddConceptPredicate(atom.symbol),
                             {Term::Var(atom.arg0)}});
      } else {
        base_body.push_back({program_.AddRolePredicate(atom.symbol),
                             {Term::Var(atom.arg0), Term::Var(atom.arg1)}});
      }
    }
    // One clause per combination of generators.
    std::vector<size_t> generator_index(chosen.size(), 0);
    while (true) {
      if (program_.num_clauses() >= options_.max_clauses) {
        truncated_ = true;
        return;
      }
      NdlClause clause;
      clause.head.predicate = goal_;
      for (int x : query_.answer_vars()) {
        clause.head.args.push_back(Term::Var(x));
      }
      clause.body = base_body;
      for (size_t k = 0; k < chosen.size(); ++k) {
        const TreeWitness& tw = all_witnesses_[chosen[k]];
        RoleId rho = tw.generators[generator_index[k]];
        int z0 = tw.tr[0];
        clause.body.push_back(
            {program_.AddConceptPredicate(ctx_.tbox().ExistsConcept(rho)),
             {Term::Var(z0)}});
        for (size_t i = 1; i < tw.tr.size(); ++i) {
          clause.body.push_back({program_.EqualityPredicate(),
                                 {Term::Var(tw.tr[i]), Term::Var(z0)}});
        }
      }
      program_.AddClause(std::move(clause));
      // Advance the generator combination.
      size_t k = 0;
      while (k < chosen.size()) {
        if (++generator_index[k] <
            all_witnesses_[chosen[k]].generators.size()) {
          break;
        }
        generator_index[k] = 0;
        ++k;
      }
      if (k == chosen.size()) break;
    }
  }

  RewritingContext& ctx_;
  const ConjunctiveQuery& query_;
  BaselineOptions options_;
  NdlProgram program_;
  TreeWitnessEnumerator witnesses_;
  std::vector<TreeWitness> all_witnesses_;
  int goal_ = -1;
  bool truncated_ = false;
};

}  // namespace

NdlProgram UcqRewrite(RewritingContext* ctx, const ConjunctiveQuery& query,
                      const BaselineOptions& options, bool* truncated) {
  OWLQR_NAMED_SPAN(span, "rewrite/ucq");
  NdlProgram program = UcqRewriterImpl(ctx, query, options).Run(truncated);
  span.Attr("clauses", program.num_clauses());
  return program;
}

NdlProgram PrestoLikeRewrite(RewritingContext* ctx,
                             const ConjunctiveQuery& query,
                             const BaselineOptions& options, bool* truncated) {
  OWLQR_NAMED_SPAN(span, "rewrite/presto");
  NdlProgram ucq = UcqRewrite(ctx, query, options, truncated);
  // Decompose every disjunct into a left-deep chain of auxiliary predicates,
  // one atom absorbed per step (the Presto "eliminate one variable at a
  // time" style, without cross-disjunct sharing).
  NdlProgram out(query.vocabulary());
  std::vector<int> pred_map(ucq.num_predicates());
  for (int p = 0; p < ucq.num_predicates(); ++p) {
    const PredicateInfo& info = ucq.predicate(p);
    switch (info.kind) {
      case PredicateKind::kIdb: {
        int q = out.AddIdbPredicate(info.name, info.arity);
        out.mutable_predicate(q).parameter_positions = info.parameter_positions;
        pred_map[p] = q;
        break;
      }
      case PredicateKind::kConceptEdb:
        pred_map[p] = out.AddConceptPredicate(info.external_id);
        break;
      case PredicateKind::kRoleEdb:
        pred_map[p] = out.AddRolePredicate(info.external_id);
        break;
      case PredicateKind::kTableEdb:
        pred_map[p] = out.AddTablePredicate(info.name, info.arity,
                                            info.external_id);
        break;
      case PredicateKind::kEquality:
        pred_map[p] = out.EqualityPredicate();
        break;
      case PredicateKind::kAdom:
        pred_map[p] = out.AdomPredicate();
        break;
    }
  }
  out.SetGoal(pred_map[ucq.goal()]);
  int chain_id = 0;
  for (const NdlClause& clause : ucq.clauses()) {
    if (clause.body.size() <= 2) {
      NdlClause c;
      c.head = {pred_map[clause.head.predicate], clause.head.args};
      for (const NdlAtom& atom : clause.body) {
        c.body.push_back({pred_map[atom.predicate], atom.args});
      }
      out.AddClause(std::move(c));
      continue;
    }
    std::string base = "_pr" + std::to_string(chain_id++);
    // Vars needed after step i: head vars + vars of atoms > i.
    std::set<int> needed;
    for (const Term& t : clause.head.args) {
      if (!t.is_constant) needed.insert(t.value);
    }
    NdlAtom previous{-1, {}};
    std::set<int> carried;
    for (size_t i = 0; i + 1 < clause.body.size(); ++i) {
      const NdlAtom& atom = clause.body[i];
      for (const Term& t : atom.args) {
        if (!t.is_constant) carried.insert(t.value);
      }
      std::set<int> later = needed;
      for (size_t j = i + 1; j < clause.body.size(); ++j) {
        for (const Term& t : clause.body[j].args) {
          if (!t.is_constant) later.insert(t.value);
        }
      }
      std::vector<Term> args;
      for (int v : carried) {
        if (later.count(v) > 0) args.push_back(Term::Var(v));
      }
      int pred = out.AddIdbPredicate(base + "_" + std::to_string(i),
                                     static_cast<int>(args.size()));
      NdlClause step;
      step.head = {pred, args};
      if (previous.predicate >= 0) step.body.push_back(previous);
      step.body.push_back({pred_map[atom.predicate], atom.args});
      out.AddClause(std::move(step));
      previous = {pred, args};
      carried.clear();
      for (const Term& t : args) carried.insert(t.value);
    }
    NdlClause last;
    last.head = {pred_map[clause.head.predicate], clause.head.args};
    last.body.push_back(previous);
    last.body.push_back({pred_map[clause.body.back().predicate],
                         clause.body.back().args});
    out.AddClause(std::move(last));
  }
  EnsureSafety(&out);
  span.Attr("clauses", out.num_clauses());
  return out;
}

}  // namespace owlqr
