#include "core/rewriting_context.h"

#include "util/logging.h"

namespace owlqr {

RewritingContext::RewritingContext(const TBox& tbox)
    : tbox_(tbox),
      saturation_(tbox),
      word_graph_(tbox, saturation_),
      words_(&word_graph_) {
  OWLQR_CHECK_MSG(tbox.normalized(), "rewriters require a normalized TBox");
}

}  // namespace owlqr
