#include "core/inconsistency_guard.h"

#include <map>
#include <set>

#include "util/logging.h"

namespace owlqr {

namespace {

// Role atom rho(x, y) over raw EDB predicates.
NdlAtom RawRoleAtom(NdlProgram* program, RoleId rho, Term x, Term y) {
  int pred = program->AddRolePredicate(PredicateOf(rho));
  if (IsInverse(rho)) std::swap(x, y);
  return {pred, {x, y}};
}

// Creates (memoised) a unary IDB predicate holding exactly the individuals
// with T, A |= tau(a), defined from the entailment closure over raw data.
class HoldsPredicates {
 public:
  HoldsPredicates(RewritingContext* ctx, NdlProgram* program)
      : ctx_(*ctx), program_(*program) {}

  int For(const BasicConcept& tau) {
    auto key = std::make_pair(static_cast<int>(tau.kind), tau.id);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    int pred = program_.AddIdbPredicate(
        "_holds" + std::to_string(memo_.size()), 1);
    memo_.emplace(key, pred);
    const Saturation& sat = ctx_.saturation();
    Term x = Term::Var(0), y = Term::Var(1);
    auto emit = [&](NdlAtom atom) {
      NdlClause c;
      c.head = {pred, {x}};
      c.body.push_back(std::move(atom));
      program_.AddClause(std::move(c));
    };
    // tau itself, when atomic and outside the snapshot.
    if (tau.kind == BasicConcept::Kind::kAtomic) {
      emit({program_.AddConceptPredicate(tau.id), {x}});
    }
    for (int b = 0; b < sat.num_snapshot_concepts(); ++b) {
      if (tau.kind == BasicConcept::Kind::kAtomic && b == tau.id) continue;
      if (sat.SubConcept(BasicConcept::Atomic(b), tau)) {
        emit({program_.AddConceptPredicate(b), {x}});
      }
    }
    for (RoleId rho = 0; rho < sat.num_snapshot_roles(); ++rho) {
      if (sat.SubConcept(BasicConcept::Exists(rho), tau)) {
        emit(RawRoleAtom(&program_, rho, x, y));
      }
    }
    if (tau.kind == BasicConcept::Kind::kExists &&
        static_cast<int>(tau.id) >= sat.num_snapshot_roles()) {
      emit(RawRoleAtom(&program_, tau.id, x, y));
    }
    if (sat.SubConcept(BasicConcept::Top(), tau)) {
      emit({program_.AdomPredicate(), {x}});
    }
    return pred;
  }

 private:
  RewritingContext& ctx_;
  NdlProgram& program_;
  std::map<std::pair<int, int>, int> memo_;
};

}  // namespace

int AddInconsistencyGuard(RewritingContext* ctx, NdlProgram* program) {
  const TBox& tbox = ctx->tbox();
  const Saturation& sat = ctx->saturation();
  const WordGraph& word_graph = ctx->word_graph();
  OWLQR_CHECK(program->goal() >= 0);

  int incon = program->AddIdbPredicate("_incon", 0);
  HoldsPredicates holds(ctx, program);
  Term x = Term::Var(0), y = Term::Var(1);

  auto emit_incon = [&](std::vector<NdlAtom> body) {
    NdlClause c;
    c.head = {incon, {}};
    c.body = std::move(body);
    program->AddClause(std::move(c));
  };
  // Fires when a null with last letter `rho` exists: some individual entails
  // exists rho0 for a word-graph start rho0 reaching rho.
  std::set<RoleId> anonymous_letters_emitted;
  auto emit_anonymous_clash = [&](RoleId rho) {
    if (!anonymous_letters_emitted.insert(rho).second) return;
    for (RoleId start : word_graph.nodes()) {
      // Reachability start ->* rho in the word graph.
      std::set<RoleId> seen = {start};
      std::vector<RoleId> stack = {start};
      bool reaches = start == rho;
      while (!stack.empty() && !reaches) {
        RoleId cur = stack.back();
        stack.pop_back();
        for (RoleId next : word_graph.Successors(cur)) {
          if (next == rho) reaches = true;
          if (seen.insert(next).second) stack.push_back(next);
        }
      }
      if (reaches) {
        emit_incon({{holds.For(BasicConcept::Exists(start)), {x}}});
      }
    }
  };

  // Concept disjointness.
  for (const ConceptDisjointness& axiom : tbox.concept_disjointness()) {
    emit_incon({{holds.For(axiom.lhs), {x}}, {holds.For(axiom.rhs), {x}}});
    for (RoleId rho : word_graph.nodes()) {
      BasicConcept inv = BasicConcept::Exists(Inverse(rho));
      if (sat.SubConcept(inv, axiom.lhs) && sat.SubConcept(inv, axiom.rhs)) {
        emit_anonymous_clash(rho);
      }
    }
  }
  // Role disjointness.
  for (const RoleDisjointness& axiom : tbox.role_disjointness()) {
    for (RoleId a = 0; a < sat.num_snapshot_roles(); ++a) {
      if (!sat.SubRole(a, axiom.lhs)) continue;
      for (RoleId b = 0; b < sat.num_snapshot_roles(); ++b) {
        if (!sat.SubRole(b, axiom.rhs)) continue;
        emit_incon({RawRoleAtom(program, a, x, y),
                    RawRoleAtom(program, b, x, y)});
      }
      // sigma2 reflexive: sigma2(x, x) everywhere, so a self-loop in a
      // suffices (and vice versa below via symmetry of the enumeration).
      if (sat.Reflexive(axiom.rhs)) {
        emit_incon({RawRoleAtom(program, a, x, x)});
      }
    }
    if (sat.Reflexive(axiom.lhs)) {
      for (RoleId b = 0; b < sat.num_snapshot_roles(); ++b) {
        if (sat.SubRole(b, axiom.rhs)) {
          emit_incon({RawRoleAtom(program, b, x, x)});
        }
      }
      if (sat.Reflexive(axiom.rhs)) {
        emit_incon({{program->AdomPredicate(), {x}}});
      }
    }
    for (RoleId rho : word_graph.nodes()) {
      if ((sat.SubRole(rho, axiom.lhs) && sat.SubRole(rho, axiom.rhs)) ||
          (sat.SubRole(rho, Inverse(axiom.lhs)) &&
           sat.SubRole(rho, Inverse(axiom.rhs)))) {
        emit_anonymous_clash(rho);
      }
    }
  }
  // Irreflexivity.
  for (RoleId rho : tbox.irreflexive_roles()) {
    if (sat.Reflexive(rho)) {
      emit_incon({{program->AdomPredicate(), {x}}});
    }
    for (RoleId a = 0; a < sat.num_snapshot_roles(); ++a) {
      if (sat.SubRole(a, rho)) emit_incon({RawRoleAtom(program, a, x, x)});
    }
  }

  // New goal: the old answers, plus everything once _incon holds.
  const PredicateInfo& old_goal = program->predicate(program->goal());
  int guarded = program->AddIdbPredicate(old_goal.name + "_guarded",
                                         old_goal.arity);
  program->mutable_predicate(guarded).parameter_positions =
      old_goal.parameter_positions;
  {
    NdlClause pass;
    pass.head.predicate = guarded;
    NdlClause all;
    all.head.predicate = guarded;
    all.body.push_back({incon, {}});
    for (int i = 0; i < old_goal.arity; ++i) {
      pass.head.args.push_back(Term::Var(i));
      all.head.args.push_back(Term::Var(i));
      all.body.push_back({program->AdomPredicate(), {Term::Var(i)}});
    }
    pass.body.push_back({program->goal(),
                         std::vector<Term>(pass.head.args)});
    program->AddClause(std::move(pass));
    program->AddClause(std::move(all));
  }
  program->SetGoal(guarded);
  return guarded;
}

}  // namespace owlqr
