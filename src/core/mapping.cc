#include "core/mapping.h"

#include <functional>
#include <map>
#include <set>

#include "util/logging.h"

namespace owlqr {

void GavMapping::Validate(const MappingRule& rule) const {
  std::set<int> body_vars;
  for (const MappingAtom& atom : rule.body) {
    OWLQR_CHECK(atom.table >= 0 && atom.table < tables_->num_tables());
    OWLQR_CHECK(static_cast<int>(atom.args.size()) ==
                tables_->TableArity(atom.table));
    for (const Term& t : atom.args) {
      if (!t.is_constant) body_vars.insert(t.value);
    }
  }
  for (int v : rule.head_vars) {
    OWLQR_CHECK_MSG(body_vars.count(v) > 0,
                    "mapping head variable must occur in the body");
  }
}

void GavMapping::AddConceptRule(int concept_id, int head_var,
                                std::vector<MappingAtom> body) {
  MappingRule rule;
  rule.is_concept = true;
  rule.symbol = concept_id;
  rule.head_vars = {head_var};
  rule.body = std::move(body);
  Validate(rule);
  rules_.push_back(std::move(rule));
}

void GavMapping::AddRoleRule(int predicate_id, int head_var0, int head_var1,
                             std::vector<MappingAtom> body) {
  MappingRule rule;
  rule.is_concept = false;
  rule.symbol = predicate_id;
  rule.head_vars = {head_var0, head_var1};
  rule.body = std::move(body);
  Validate(rule);
  rules_.push_back(std::move(rule));
}

namespace {

// Enumerates all assignments of a rule's variables satisfying its body over
// the tables; calls `emit` with the (variable -> individual) map.
void EnumerateRuleMatches(
    const MappingRule& rule, const TableStore& tables,
    const std::function<void(const std::map<int, int>&)>& emit) {
  std::map<int, int> binding;
  std::function<void(size_t)> recurse = [&](size_t atom_index) {
    if (atom_index == rule.body.size()) {
      emit(binding);
      return;
    }
    const MappingAtom& atom = rule.body[atom_index];
    for (const std::vector<int>& row : tables.Rows(atom.table)) {
      std::vector<int> bound_here;
      bool ok = true;
      for (size_t i = 0; i < atom.args.size() && ok; ++i) {
        const Term& t = atom.args[i];
        if (t.is_constant) {
          ok = t.value == row[i];
        } else {
          auto it = binding.find(t.value);
          if (it != binding.end()) {
            ok = it->second == row[i];
          } else {
            binding.emplace(t.value, row[i]);
            bound_here.push_back(t.value);
          }
        }
      }
      if (ok) recurse(atom_index + 1);
      for (int v : bound_here) binding.erase(v);
    }
  };
  recurse(0);
}

}  // namespace

DataInstance MaterializeMapping(const GavMapping& mapping,
                                const TableStore& tables) {
  DataInstance out(mapping.vocabulary());
  for (const MappingRule& rule : mapping.rules()) {
    EnumerateRuleMatches(rule, tables, [&](const std::map<int, int>& b) {
      if (rule.is_concept) {
        out.AddConceptAssertion(rule.symbol, b.at(rule.head_vars[0]));
      } else {
        out.AddRoleAssertion(rule.symbol, b.at(rule.head_vars[0]),
                             b.at(rule.head_vars[1]));
      }
    });
  }
  return out;
}

NdlProgram UnfoldThroughMapping(const NdlProgram& program,
                                const GavMapping& mapping) {
  const TableStore& tables = *mapping.tables();
  NdlProgram out(program.vocabulary());
  // The virtual active domain: individuals of M(D).
  int madom = out.AddIdbPredicate("_madom", 1);

  std::vector<int> pred_map(program.num_predicates());
  std::set<int> mapped_preds;  // Fresh IDBs standing for ontology EDBs.
  for (int p = 0; p < program.num_predicates(); ++p) {
    const PredicateInfo& info = program.predicate(p);
    switch (info.kind) {
      case PredicateKind::kIdb: {
        int q = out.AddIdbPredicate(info.name, info.arity);
        out.mutable_predicate(q).parameter_positions = info.parameter_positions;
        pred_map[p] = q;
        break;
      }
      case PredicateKind::kConceptEdb:
      case PredicateKind::kRoleEdb:
        pred_map[p] = out.AddIdbPredicate(info.name + "~M", info.arity);
        mapped_preds.insert(p);
        break;
      case PredicateKind::kTableEdb:
        pred_map[p] = out.AddTablePredicate(info.name, info.arity,
                                            info.external_id);
        break;
      case PredicateKind::kEquality:
        pred_map[p] = out.EqualityPredicate();
        break;
      case PredicateKind::kAdom:
        pred_map[p] = madom;
        break;
    }
  }
  for (const NdlClause& clause : program.clauses()) {
    NdlClause c;
    c.head = {pred_map[clause.head.predicate], clause.head.args};
    for (const NdlAtom& atom : clause.body) {
      c.body.push_back({pred_map[atom.predicate], atom.args});
    }
    out.AddClause(std::move(c));
  }
  if (program.goal() >= 0) out.SetGoal(pred_map[program.goal()]);

  // Defining clauses from the mapping rules.
  auto rule_body_atoms = [&](const MappingRule& rule) {
    std::vector<NdlAtom> body;
    for (const MappingAtom& atom : rule.body) {
      NdlAtom a;
      a.predicate = out.AddTablePredicate(tables.TableName(atom.table),
                                          tables.TableArity(atom.table),
                                          atom.table);
      a.args = atom.args;
      body.push_back(std::move(a));
    }
    return body;
  };
  for (int p : mapped_preds) {
    const PredicateInfo& info = program.predicate(p);
    for (const MappingRule& rule : mapping.rules()) {
      if (rule.is_concept != (info.kind == PredicateKind::kConceptEdb)) {
        continue;
      }
      if (rule.symbol != info.external_id) continue;
      NdlClause c;
      c.head.predicate = pred_map[p];
      for (int v : rule.head_vars) c.head.args.push_back(Term::Var(v));
      c.body = rule_body_atoms(rule);
      out.AddClause(std::move(c));
    }
  }
  // _madom: every individual mentioned by some mapped atom.
  for (const MappingRule& rule : mapping.rules()) {
    for (int v : rule.head_vars) {
      NdlClause c;
      c.head = {madom, {Term::Var(v)}};
      c.body = rule_body_atoms(rule);
      out.AddClause(std::move(c));
    }
  }
  return out;
}

}  // namespace owlqr
