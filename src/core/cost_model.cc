#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "cq/gaifman.h"
#include "util/logging.h"

namespace owlqr {

DataStatistics DataStatistics::FromInstance(const DataInstance& data) {
  DataStatistics stats;
  stats.num_individuals = data.num_individuals();
  for (int c : data.ActiveConcepts()) {
    stats.concept_cardinality[c] =
        static_cast<long>(data.ConceptMembers(c).size());
  }
  for (int p : data.ActivePredicates()) {
    stats.predicate_cardinality[p] =
        static_cast<long>(data.RolePairs(p).size());
  }
  return stats;
}

long DataStatistics::ConceptCount(int concept_id) const {
  auto it = concept_cardinality.find(concept_id);
  return it == concept_cardinality.end() ? 0 : it->second;
}

long DataStatistics::PredicateCount(int predicate_id) const {
  auto it = predicate_cardinality.find(predicate_id);
  return it == predicate_cardinality.end() ? 0 : it->second;
}

double EstimateEvaluationCost(const NdlProgram& program,
                              const DataStatistics& stats) {
  constexpr double kCap = 1e18;
  double adom = std::max<long>(1, stats.num_individuals);
  std::vector<double> estimate(program.num_predicates(), 0.0);

  for (int p : program.TopologicalOrder()) {
    double total = 0;
    for (int ci : program.ClausesFor(p)) {
      const NdlClause& clause = program.clause(ci);
      double product = 1.0;
      std::map<int, int> occurrences;
      for (const NdlAtom& atom : clause.body) {
        const PredicateInfo& info = program.predicate(atom.predicate);
        double card = 0;
        switch (info.kind) {
          case PredicateKind::kConceptEdb:
            card = static_cast<double>(stats.ConceptCount(info.external_id));
            break;
          case PredicateKind::kRoleEdb:
            card =
                static_cast<double>(stats.PredicateCount(info.external_id));
            break;
          case PredicateKind::kTableEdb:
            // Mapping-layer tables are not part of the OMQ cost model;
            // treat them like base relations of unknown (domain) size.
          case PredicateKind::kEquality:
          case PredicateKind::kAdom:
            card = adom;
            break;
          case PredicateKind::kIdb:
            card = estimate[atom.predicate];
            break;
        }
        product = std::min(kCap, product * std::max(card, 0.0));
        for (const Term& t : atom.args) {
          if (!t.is_constant) ++occurrences[t.value];
        }
      }
      // Independence discount: each repeated occurrence of a variable keeps
      // a 1/|adom| fraction of the cross product.
      for (const auto& [var, count] : occurrences) {
        for (int i = 1; i < count; ++i) product /= adom;
      }
      // Projection to the head cannot exceed adom^arity.
      double head_bound =
          std::pow(adom, static_cast<double>(clause.head.args.size()));
      total = std::min(kCap, total + std::min(product, head_bound));
    }
    estimate[p] = total;
  }

  // Cost = total materialised tuples across the predicates the goal needs.
  double cost = 0;
  std::vector<bool> reachable(program.num_predicates(), false);
  if (program.goal() >= 0) {
    std::vector<int> stack = {program.goal()};
    reachable[program.goal()] = true;
    while (!stack.empty()) {
      int p = stack.back();
      stack.pop_back();
      cost = std::min(kCap, cost + estimate[p]);
      for (int ci : program.ClausesFor(p)) {
        for (const NdlAtom& atom : program.clause(ci).body) {
          if (program.IsIdb(atom.predicate) && !reachable[atom.predicate]) {
            reachable[atom.predicate] = true;
            stack.push_back(atom.predicate);
          }
        }
      }
    }
  }
  return cost;
}

NdlProgram CostBasedRewrite(RewritingContext* ctx,
                            const ConjunctiveQuery& query,
                            const DataStatistics& stats,
                            const RewriteOptions& options,
                            RewriterKind* chosen) {
  GaifmanGraph graph(query);
  bool tree = graph.IsTree();
  bool finite = ctx->depth() != WordGraph::kInfiniteDepth;
  std::vector<RewriterKind> candidates;
  if (finite && tree) candidates.push_back(RewriterKind::kLin);
  if (finite) candidates.push_back(RewriterKind::kLog);
  if (tree) {
    candidates.push_back(RewriterKind::kTw);
    candidates.push_back(RewriterKind::kTwStar);
  }
  OWLQR_CHECK_MSG(!candidates.empty(),
                  "no optimal rewriter applies (cyclic CQ, infinite depth)");

  double best_cost = 0;
  int best = -1;
  std::vector<NdlProgram> programs;
  for (size_t i = 0; i < candidates.size(); ++i) {
    // The candidate list above applies exactly the validator's applicability
    // conditions, so a shape failure here is an invariant violation.
    RewriteResult rewrite = RewriteOmqOrError(ctx, query, candidates[i], options);
    OWLQR_CHECK_MSG(rewrite.ok(), rewrite.status.message().c_str());
    programs.push_back(std::move(rewrite.program));
    double cost = EstimateEvaluationCost(programs.back(), stats);
    if (best < 0 || cost < best_cost) {
      best = static_cast<int>(i);
      best_cost = cost;
    }
  }
  if (chosen != nullptr) *chosen = candidates[best];
  return std::move(programs[best]);
}

}  // namespace owlqr
