#ifndef OWLQR_CORE_LIN_REWRITER_H_
#define OWLQR_CORE_LIN_REWRITER_H_

#include "core/rewriting_context.h"
#include "cq/cq.h"
#include "ndl/program.h"

namespace owlqr {

// The Lin rewriting of Section 3.3 for OMQ(d, 1, l): ontologies of finite
// depth with tree-shaped CQs with at most l leaves.  Slices the query by BFS
// distance from a root variable and introduces one IDB predicate G^w_n per
// slice n and slice type w.  The resulting program is a *linear* NDL query of
// width <= 2l; evaluation is in NL.
//
// The returned program is a rewriting over complete data instances; apply
// LinearStarTransform (Lemma 3) for arbitrary instances.  Requires a
// connected tree-shaped query and a finite-depth ontology.  `root` fixes the
// slice root variable (-1 = first answer variable, or variable 0).
NdlProgram LinRewrite(RewritingContext* ctx, const ConjunctiveQuery& query,
                      int root = -1);

}  // namespace owlqr

#endif  // OWLQR_CORE_LIN_REWRITER_H_
