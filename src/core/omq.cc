#include "core/omq.h"

#include <sstream>

#include "cq/gaifman.h"
#include "cq/tree_decomposition.h"

namespace owlqr {

const char* ComplexityClassName(ComplexityClass c) {
  switch (c) {
    case ComplexityClass::kNl:
      return "NL";
    case ComplexityClass::kLogCfl:
      return "LOGCFL";
    case ComplexityClass::kNp:
      return "NP";
  }
  return "?";
}

bool OmqProfile::finite_depth() const {
  return ontology_depth != WordGraph::kInfiniteDepth;
}

ComplexityClass OmqProfile::Complexity() const {
  // Figure 1(a): bounded depth + bounded-leaf trees -> NL (as for plain
  // CQs); bounded depth + bounded treewidth, or any depth + bounded-leaf
  // trees -> LOGCFL; otherwise NP.
  if (finite_depth() && tree_shaped) return ComplexityClass::kNl;
  if (finite_depth()) return ComplexityClass::kLogCfl;
  if (tree_shaped) return ComplexityClass::kLogCfl;
  return ComplexityClass::kNp;
}

RewriterKind OmqProfile::RecommendedRewriter() const {
  if (finite_depth() && tree_shaped) return RewriterKind::kLin;
  if (finite_depth()) return RewriterKind::kLog;
  if (tree_shaped) return RewriterKind::kTw;
  return RewriterKind::kUcq;
}

std::string OmqProfile::ToString() const {
  std::ostringstream os;
  os << "OMQ(";
  if (finite_depth()) {
    os << ontology_depth;
  } else {
    os << "inf";
  }
  os << ", " << treewidth << (treewidth_exact ? "" : "~");
  if (tree_shaped) {
    os << ", " << num_leaves << " leaves";
  } else {
    os << ", not tree-shaped";
  }
  os << ") in " << ComplexityClassName(Complexity());
  return os.str();
}

OmqProfile ProfileOmq(const RewritingContext& ctx,
                      const ConjunctiveQuery& query) {
  OmqProfile profile;
  profile.ontology_depth = ctx.depth();
  GaifmanGraph graph(query);
  profile.connected = graph.IsConnected();
  profile.tree_shaped = graph.IsTree();
  profile.num_leaves = profile.tree_shaped ? graph.NumLeaves() : 0;
  if (profile.tree_shaped) {
    profile.treewidth = query.num_vars() > 1 ? 1 : 0;
    profile.treewidth_exact = true;
  } else if (query.num_vars() <= 20) {
    profile.treewidth = ExactTreewidth(query);
    profile.treewidth_exact = true;
  } else {
    profile.treewidth = MinFillDecomposition(query).width();
    profile.treewidth_exact = false;
  }
  return profile;
}

}  // namespace owlqr
