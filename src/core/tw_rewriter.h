#ifndef OWLQR_CORE_TW_REWRITER_H_
#define OWLQR_CORE_TW_REWRITER_H_

#include "core/rewriting_context.h"
#include "cq/cq.h"
#include "ndl/program.h"

namespace owlqr {

// The Tw rewriting of Section 3.4 for OMQ(inf, 1, l): arbitrary ontologies
// with tree-shaped CQs with at most l leaves.  Recursively splits the query
// at a centroid variable z_q (Lemma 14); for each subquery it emits a
// decomposition clause plus one clause per tree witness containing z_q.  The
// resulting NDL query has logarithmic depth and width <= l + 1, and evaluates
// in LOGCFL.
//
// Works for ontologies of any (including infinite) depth.  The returned
// program is a rewriting over complete data instances; apply StarTransform
// for arbitrary instances.  Requires a connected tree-shaped query.
NdlProgram TwRewrite(RewritingContext* ctx, const ConjunctiveQuery& query);

}  // namespace owlqr

#endif  // OWLQR_CORE_TW_REWRITER_H_
